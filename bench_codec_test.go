// Persistence + serving benchmarks: scheme encode/decode through the
// schemeio wire codec and batched query serving through internal/serve.
// CI archives these as BENCH_codec.json (see DESIGN.md "Bench
// trajectory") next to the evaluator, core and weighted suites:
//
//	go test -run '^$' -bench '^(BenchmarkEncodeScheme|BenchmarkDecodeScheme|BenchmarkServeBatch)$' \
//	    -benchtime 1x . | go run ./cmd/benchjson > BENCH_codec.json
//
// The graphs are the seeded random connected family the core suite
// sweeps; serving drives seeded stretch queries — the evaluator's pair
// workload, shaped as a server batch.
package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/netserve"
	"repro/internal/routing"
	"repro/internal/scheme/landmark"
	"repro/internal/scheme/table"
	"repro/internal/schemeio"
	"repro/internal/serve"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

// benchCodecSchemes builds the two scheme regimes the codec suite
// sweeps — tables (dense Θ(n log n) rows) and landmark (sparse o(n)
// state) — on one graph, returning the dense table so callers can
// reuse it as the serving oracle instead of building a second one.
func benchCodecSchemes(b *testing.B, n int) (*graph.Graph, *shortest.APSP, map[string]routing.Scheme) {
	b.Helper()
	g := benchGraph(n)
	apsp := shortest.NewAPSP(g)
	tb, err := table.New(g, apsp, table.MinPort)
	if err != nil {
		b.Fatal(err)
	}
	lm, err := landmark.New(g, apsp, landmark.Options{Seed: 17})
	if err != nil {
		b.Fatal(err)
	}
	return g, apsp, map[string]routing.Scheme{"tables": tb, "landmark": lm}
}

func BenchmarkEncodeScheme(b *testing.B) {
	for _, n := range []int{512, 2048} {
		g, _, schemes := benchCodecSchemes(b, n)
		for _, name := range []string{"tables", "landmark"} {
			s := schemes[name]
			b.Run(fmt.Sprintf("%s/n=%d", name, n), func(b *testing.B) {
				b.ReportAllocs()
				var bytes int
				for i := 0; i < b.N; i++ {
					enc, err := schemeio.Encode(g, s)
					if err != nil {
						b.Fatal(err)
					}
					bytes = len(enc.Bytes)
				}
				b.ReportMetric(float64(bytes), "bytes")
			})
		}
	}
}

func BenchmarkDecodeScheme(b *testing.B) {
	for _, n := range []int{512, 2048} {
		g, _, schemes := benchCodecSchemes(b, n)
		for _, name := range []string{"tables", "landmark"} {
			enc, err := schemeio.Encode(g, schemes[name])
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/n=%d", name, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := schemeio.Decode(enc.Bytes, g); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkNetServeRoundTrip measures the full framed wire path — one
// TCP round trip of a batch through a loopback netserve server backed
// by the allocation-lean handler (NewServerInto + ServeBatchInto) and
// the pooled cluster client. allocs/op is the headline: a warm
// connection's read-decode-serve-encode loop runs out of per-connection
// scratch and sync.Pool'd bit codecs, so per-batch allocations must
// stay flat in batch size (only route hop slices and response decode
// copies remain).
func BenchmarkNetServeRoundTrip(b *testing.B) {
	const n = 2048
	g, apsp, schemes := benchCodecSchemes(b, n)
	sv := serve.New(g, schemes["tables"], apsp, serve.Options{Workers: 2})
	srv := netserve.NewServerInto(sv.ServeBatchInto, netserve.Options{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cluster, err := netserve.DialCluster([]string{addr.String()}, n, netserve.ClusterOptions{Deadline: 30 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	r := xrand.New(99)
	for _, batch := range []int{64, 1024} {
		qs := make([]serve.Query, batch)
		for i := range qs {
			u := graph.NodeID(r.Intn(n))
			v := graph.NodeID(r.Intn(n))
			if u == v {
				v = graph.NodeID((int(v) + 1) % n)
			}
			qs[i] = serve.Query{Op: serve.Op(i % 3), U: u, V: v}
		}
		// Warm up outside the timer: pooled connection dialed, scratch
		// buffers grown to steady-state size.
		for _, res := range cluster.ServeBatch(qs) {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out := cluster.ServeBatch(qs)
				if out[0].Err != nil {
					b.Fatal(out[0].Err)
				}
			}
			b.ReportMetric(float64(batch), "queries")
		})
	}
}

// BenchmarkServeBatch drives one loaded (decoded) tables scheme with a
// seeded 100k-query stretch batch over the dense distance backend (the
// build-once serve-many configuration), across the worker ladder — the
// routeserve -bench workload as a repeatable benchmark.
func BenchmarkServeBatch(b *testing.B) {
	const n = 2048
	const batch = 100000
	g, apsp, schemes := benchCodecSchemes(b, n)
	enc, err := schemeio.Encode(g, schemes["tables"])
	if err != nil {
		b.Fatal(err)
	}
	loaded, err := schemeio.Decode(enc.Bytes, g)
	if err != nil {
		b.Fatal(err)
	}
	r := xrand.New(99)
	qs := make([]serve.Query, batch)
	for i := range qs {
		u := graph.NodeID(r.Intn(n))
		v := graph.NodeID(r.Intn(n))
		if u == v {
			v = graph.NodeID((int(v) + 1) % n)
		}
		qs[i] = serve.Query{Op: serve.OpStretch, U: u, V: v}
	}
	for _, workers := range []int{1, 4, 8} {
		sv := serve.New(g, loaded, apsp, serve.Options{Workers: workers})
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := sv.ServeBatch(qs)
				for j := range res {
					if res[j].Err != nil {
						b.Fatal(res[j].Err)
					}
				}
			}
			b.ReportMetric(float64(batch), "queries")
		})
	}
}
