// Repository-level benchmarks: one benchmark per paper artifact
// (Table 1, Figure 1, Equations 1–2, Lemmas 1–2, Theorem 1, and the
// quantitative prose claims of Section 1), each driving the same
// experiment code as the routelab CLI, plus micro-benchmarks for the
// machinery the experiments are built from.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks report, besides ns/op, custom metrics that
// carry the reproduced quantity (bits per router, class counts, ...), so
// `bench_output.txt` doubles as the numeric record for EXPERIMENTS.md.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/coding"
	"repro/internal/core"
	"repro/internal/evaluate"
	"repro/internal/exp"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/scheme/interval"
	"repro/internal/scheme/landmark"
	"repro/internal/scheme/table"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

// runExperiment drives a registered experiment once per iteration.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := exp.Get(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- one bench per paper artifact (see DESIGN.md experiment index) ---

// BenchmarkTable1MemoryVsStretch regenerates the empirical analogue of
// the paper's Table 1 (experiment E1).
func BenchmarkTable1MemoryVsStretch(b *testing.B) { runExperiment(b, "E1") }

// BenchmarkFigure1Petersen regenerates Figure 1 (experiment E2).
func BenchmarkFigure1Petersen(b *testing.B) { runExperiment(b, "E2") }

// BenchmarkEq1EnumerateCanonical regenerates the worked example 3M23
// (experiment E3).
func BenchmarkEq1EnumerateCanonical(b *testing.B) { runExperiment(b, "E3") }

// BenchmarkEq2ConstraintGraphs regenerates the seven graphs of
// constraints (experiment E4).
func BenchmarkEq2ConstraintGraphs(b *testing.B) { runExperiment(b, "E4") }

// BenchmarkTheorem1LowerBound regenerates the headline Theorem 1 sweep
// (experiment E5).
func BenchmarkTheorem1LowerBound(b *testing.B) { runExperiment(b, "E5") }

// BenchmarkLemma1Counting regenerates the Lemma 1 counting check
// (experiment E6).
func BenchmarkLemma1Counting(b *testing.B) { runExperiment(b, "E6") }

// BenchmarkHypercubeEcube regenerates the Section 1 hypercube claim
// (experiment E7).
func BenchmarkHypercubeEcube(b *testing.B) { runExperiment(b, "E7") }

// BenchmarkCompleteGraphLabelings regenerates the Section 1 complete
// graph claim (experiment E8).
func BenchmarkCompleteGraphLabelings(b *testing.B) { runExperiment(b, "E8") }

// BenchmarkIntervalRouting regenerates the Section 1 interval-routing
// claims (experiment E9).
func BenchmarkIntervalRouting(b *testing.B) { runExperiment(b, "E9") }

// BenchmarkLandmarkTradeoff regenerates the large-stretch rows of Table 1
// (experiment E10).
func BenchmarkLandmarkTradeoff(b *testing.B) { runExperiment(b, "E10") }

// BenchmarkShortestPathLowerBound regenerates the stretch-1 regime
// (experiment E11).
func BenchmarkShortestPathLowerBound(b *testing.B) { runExperiment(b, "E11") }

// BenchmarkSpannerTradeoff regenerates the spanner size-vs-stretch table
// (experiment E12, the substrate of reference [11]).
func BenchmarkSpannerTradeoff(b *testing.B) { runExperiment(b, "E12") }

// BenchmarkForcednessCensus regenerates the forced-pair census
// (experiment E13).
func BenchmarkForcednessCensus(b *testing.B) { runExperiment(b, "E13") }

// BenchmarkOracleHierarchy regenerates the k-level stretch/state sweep
// (experiment E14, Table 1's middle rows).
func BenchmarkOracleHierarchy(b *testing.B) { runExperiment(b, "E14") }

// BenchmarkHeaderSizes regenerates the header pricing table (experiment
// E15, the cost of the model's unbounded headers).
func BenchmarkHeaderSizes(b *testing.B) { runExperiment(b, "E15") }

// BenchmarkOptimalIntervalRouting regenerates the exhaustive labeling
// table (experiment E16, reference [5]).
func BenchmarkOptimalIntervalRouting(b *testing.B) { runExperiment(b, "E16") }

// BenchmarkWeightedTables regenerates the non-uniform-cost table
// (experiment E17, the Table 1 comments' weighted regime).
func BenchmarkWeightedTables(b *testing.B) { runExperiment(b, "E17") }

// BenchmarkEvaluate measures the concurrent all-pairs stretch evaluator
// on a Theorem-1-scale instance (the n = 1024 padded constraint graph
// with shortest-path tables): all n(n-1) ordered pairs are routed per
// iteration. The workers=K/workers=1 time ratio is the parallel speedup
// on this machine; exhaustive reports are bit-identical across the
// sub-benchmarks by construction.
func BenchmarkEvaluate(b *testing.B) {
	pr, err := core.ChooseParams(1024, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	ins, err := core.BuildInstance(pr, 9)
	if err != nil {
		b.Fatal(err)
	}
	g := ins.CG.G
	apsp := shortest.NewAPSPParallel(g, 0)
	s, err := table.New(g, apsp, table.MinPort)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var pairs int
			for i := 0; i < b.N; i++ {
				rep, err := evaluate.Stretch(g, s, apsp, evaluate.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				pairs = rep.Pairs
			}
			b.ReportMetric(float64(pairs), "pairs")
		})
	}
}

// BenchmarkEvaluateStreaming measures the beyond-RAM distance backends
// on the same instance as BenchmarkEvaluate: stream recomputes each
// claimed row by per-worker BFS (O(workers·n) distance memory), cache
// streams through a bounded row LRU. The reports are bit-identical to
// the dense sub-benchmarks — the time/memory tradeoff is the entire
// difference, and its trajectory is archived by CI as
// BENCH_evaluate.json (see DESIGN.md).
func BenchmarkEvaluateStreaming(b *testing.B) {
	pr, err := core.ChooseParams(1024, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	ins, err := core.BuildInstance(pr, 9)
	if err != nil {
		b.Fatal(err)
	}
	g := ins.CG.G
	s, err := table.New(g, shortest.NewAPSPParallel(g, 0), table.MinPort)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []evaluate.DistMode{evaluate.DistStream, evaluate.DistCache} {
		for _, workers := range []int{1, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", mode, workers), func(b *testing.B) {
				b.ReportAllocs()
				opt := evaluate.Options{Workers: workers, DistMode: mode}
				var rows int
				for i := 0; i < b.N; i++ {
					rep, err := evaluate.Stretch(g, s, nil, opt)
					if err != nil {
						b.Fatal(err)
					}
					if rep.Pairs == 0 {
						b.Fatal("no pairs measured")
					}
					osrc, err := opt.Source(g, nil)
					if err != nil {
						b.Fatal(err)
					}
					rows = osrc.ResidentRows(workers)
				}
				b.ReportMetric(float64(rows), "residentrows")
			})
		}
	}
}

// BenchmarkEvaluateSampled measures the deterministic sampling mode: the
// same instance as BenchmarkEvaluate at 1% pair coverage, the regime that
// makes graphs far beyond exhaustive n² reach measurable.
func BenchmarkEvaluateSampled(b *testing.B) {
	pr, err := core.ChooseParams(1024, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	ins, err := core.BuildInstance(pr, 9)
	if err != nil {
		b.Fatal(err)
	}
	g := ins.CG.G
	apsp := shortest.NewAPSPParallel(g, 0)
	s, err := table.New(g, apsp, table.MinPort)
	if err != nil {
		b.Fatal(err)
	}
	n := g.Order()
	opt := evaluate.Options{Sample: n * (n - 1) / 100, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := evaluate.Stretch(g, s, apsp, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateMemory measures the worker-pool router metering on the
// same instance (LocalBits encodes a table row per router).
func BenchmarkEvaluateMemory(b *testing.B) {
	pr, err := core.ChooseParams(1024, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	ins, err := core.BuildInstance(pr, 9)
	if err != nil {
		b.Fatal(err)
	}
	s, err := table.New(ins.CG.G, nil, table.MinPort)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evaluate.Memory(ins.CG.G, s, evaluate.Options{})
	}
}

// --- headline numbers as custom bench metrics ---

// BenchmarkTheorem1PerRouterBits reports the Theorem 1 quantities for
// n = 1024, eps = 0.5 as bench metrics: lower-bound, measured and upper
// bits per constrained router.
func BenchmarkTheorem1PerRouterBits(b *testing.B) {
	pr, err := core.ChooseParams(1024, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	var lb, measured, upper float64
	for i := 0; i < b.N; i++ {
		ins, err := core.BuildInstance(pr, 9)
		if err != nil {
			b.Fatal(err)
		}
		bound := core.LowerBound(pr)
		s, err := table.New(ins.CG.G, nil, table.MinPort)
		if err != nil {
			b.Fatal(err)
		}
		lb = bound.PerRouter
		upper = bound.UpperPerNode
		measured = float64(routing.SumBitsOver(s, ins.CG.A)) / float64(pr.P)
	}
	b.ReportMetric(lb, "LBbits/router")
	b.ReportMetric(measured, "measuredbits/router")
	b.ReportMetric(upper, "upperbits/router")
}

// --- micro-benchmarks for the substrates ---

func benchGraph(n int) *graph.Graph {
	return gen.RandomConnected(n, 8.0/float64(n), xrand.New(1))
}

func BenchmarkTableBuild512(b *testing.B) {
	g := benchGraph(512)
	apsp := shortest.NewAPSP(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := table.New(g, apsp, table.MinPort); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIntervalBuild512(b *testing.B) {
	g := benchGraph(512)
	apsp := shortest.NewAPSP(g)
	labels := interval.DFSLabels(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := interval.New(g, apsp, interval.Options{Labels: labels, Policy: interval.RunGreedy}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLandmarkBuild512(b *testing.B) {
	g := benchGraph(512)
	apsp := shortest.NewAPSP(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := landmark.New(g, apsp, landmark.Options{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCanonicalize2x5(b *testing.B) {
	m := core.RandomMatrix(2, 5, 3, xrand.New(4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Canonicalize()
	}
}

func BenchmarkEnumerate3M23(b *testing.B) {
	b.ReportAllocs()
	var classes int
	for i := 0; i < b.N; i++ {
		classes = len(core.Enumerate(3, 2, 3))
	}
	b.ReportMetric(float64(classes), "classes")
}

func BenchmarkConstraintGraphBuild(b *testing.B) {
	m := core.RandomMatrix(16, 256, 12, xrand.New(5))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildConstraintGraph(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTheorem1Instance1024(b *testing.B) {
	pr, err := core.ChooseParams(1024, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildInstance(pr, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPermutationRank(b *testing.B) {
	perm := xrand.New(6).Perm(255)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coding.RankPermutation(perm)
	}
}

func BenchmarkTableRowEncode(b *testing.B) {
	g := benchGraph(1024)
	s, err := table.New(g, nil, table.MinPort)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.EncodeRow(graph.NodeID(i % 1024))
	}
}
