// Kernel conformance suite for the MS-BFS batch kernel: the property
// that lets `-kernel batch` replace one-BFS-per-row anywhere without
// changing a recorded number is
//
//	MSBFSInto(g, sources)[i] == BFSInto(g, sources[i])  element-for-element
//
// for EVERY source, on every conformance family and on the adversarial
// shapes a word-parallel frontier gets wrong first (disconnected
// graphs, stars, long paths, a single vertex, orders that are not a
// multiple of 64). The suite partitions the sources at batch widths 1,
// 63, 64 and 65 — below, at, and across the word boundary — checks the
// batched APSP builder at three worker counts against the serial
// reference, and runs a race canary over the batched StreamSource (the
// CI configuration runs this file under `go test -race`).
package repro

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

// msbfsConfGraphs returns the kernel conformance corpus: every routing
// conformance family plus the adversarial shapes for a bit-parallel
// frontier. Seeded generators keep the corpus reproducible.
func msbfsConfGraphs() []struct {
	name string
	g    *graph.Graph
} {
	twoComponents := graph.New(130) // two paths of 65: ragged AND disconnected
	for v := 0; v < 64; v++ {
		twoComponents.AddEdge(graph.NodeID(v), graph.NodeID(v+1))
		twoComponents.AddEdge(graph.NodeID(65+v), graph.NodeID(65+v+1))
	}
	gs := []struct {
		name string
		g    *graph.Graph
	}{
		{"single vertex", graph.New(1)},
		{"path(130)", gen.Path(130)},
		{"star(65)", gen.Star(65)},
		{"two components 65+65", twoComponents},
		{"random(63,seed5)", gen.RandomConnected(63, 0.1, xrand.New(5))},
		{"random(65,seed6)", gen.RandomConnected(65, 0.1, xrand.New(6))},
		{"random(200,seed7)", gen.RandomConnected(200, 0.05, xrand.New(7))},
		{"random(200,seed8)", gen.RandomConnected(200, 0.05, xrand.New(8))},
	}
	for _, f := range confFamilies() {
		gs = append(gs, struct {
			name string
			g    *graph.Graph
		}{f.name, f.g})
	}
	return gs
}

// scalarReference computes the per-source reference rows with the
// scalar kernel the repository has always used.
func scalarReference(g *graph.Graph) [][]int32 {
	n := g.Order()
	rows := make([][]int32, n)
	var queue []graph.NodeID
	for v := 0; v < n; v++ {
		rows[v], queue = shortest.BFSInto(g, graph.NodeID(v), nil, queue)
	}
	return rows
}

// TestMSBFSKernelConformance is the headline property: batched rows
// equal scalar rows element-for-element for every source, at batch
// widths below, at, and across the 64-lane word boundary, with dist and
// scratch buffers reused across batches exactly as the claiming workers
// reuse them.
func TestMSBFSKernelConformance(t *testing.T) {
	for _, tc := range msbfsConfGraphs() {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.g
			n := g.Order()
			want := scalarReference(g)
			for _, width := range []int{1, 63, 64, 65} {
				var (
					dist []int32
					scr  *shortest.MSBFSScratch
					srcs []graph.NodeID
				)
				for start := 0; start < n; start += width {
					end := start + width
					if end > n {
						end = n
					}
					srcs = srcs[:0]
					for v := start; v < end; v++ {
						srcs = append(srcs, graph.NodeID(v))
					}
					dist, scr = shortest.MSBFSInto(g, srcs, dist, scr)
					for i, s := range srcs {
						got := dist[i*n : (i+1)*n]
						if !reflect.DeepEqual(got, want[s]) {
							t.Fatalf("width=%d: lane %d (source %d) differs from scalar BFS", width, i, s)
						}
					}
				}
			}
		})
	}
}

// TestMSBFSAPSPWorkerConformance pins the batch claim protocol end to
// end: a batched table build equals the serial scalar reference
// bit-for-bit at three worker counts, on every conformance graph.
func TestMSBFSAPSPWorkerConformance(t *testing.T) {
	for _, tc := range msbfsConfGraphs() {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.g
			ref := shortest.NewAPSP(g)
			for _, workers := range []int{1, 3, 8} {
				a := shortest.NewAPSPWith(g, shortest.APSPOptions{Workers: workers, Kernel: shortest.KernelBatch})
				for u := 0; u < g.Order(); u++ {
					if !reflect.DeepEqual(a.Row(graph.NodeID(u)), ref.Row(graph.NodeID(u))) {
						t.Fatalf("workers=%d: row %d differs from serial NewAPSP", workers, u)
					}
				}
			}
		})
	}
}

// TestBatchedStreamSourceConcurrentRace hammers one shared batched
// StreamSource from 8 goroutines with interleaved, block-crossing row
// requests — under `go test -race` (the CI configuration) this is the
// data-race canary for the 64-row prefetch readers sharing a frozen
// CSR arena — and checks every returned row against scalar BFS.
func TestBatchedStreamSourceConcurrentRace(t *testing.T) {
	g := gen.RandomConnected(200, 0.05, xrand.New(9))
	n := g.Order()
	want := scalarReference(g)
	src, err := shortest.NewStreamSourceKernel(g, shortest.KernelBatch)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rd := src.NewReader() // readers are per-goroutine; the source is shared
			for i := 0; i < 150; i++ {
				v := (i*13 + w*31) % n // stride crosses prefetch blocks constantly
				if !reflect.DeepEqual(rd.Row(graph.NodeID(v)), want[v]) {
					errs <- "batched stream row mismatch under concurrency"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
