// Cross-scheme conformance matrix: one table-driven suite running every
// routing scheme in internal/scheme (and the distance oracle of
// internal/oracle) against the generator families, asserting for each
// cell the contracts the rest of the repository builds on:
//
//   - universality: routing.Validate — every ordered pair delivers;
//   - realized stretch >= 1 and each scheme's guarantee holds (tables
//     and the structured stretch-1 schemes are exactly 1, landmark <= 3,
//     the k-level oracle within [1, 2k-1]);
//   - backend independence: dense, streaming and cached distance
//     backends produce bit-identical evaluation reports at several
//     worker counts, exhaustive and sampled, all equal to the serial
//     reference — the invariant that lets `-distmode stream` replace the
//     O(n²) table with O(workers·n) rows without changing a single
//     recorded number.
package repro

import (
	"reflect"
	"testing"

	"repro/internal/evaluate"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/routing"
	"repro/internal/scheme/ecube"
	"repro/internal/scheme/interval"
	"repro/internal/scheme/kcomplete"
	"repro/internal/scheme/landmark"
	"repro/internal/scheme/table"
	"repro/internal/scheme/tree"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

// confFamily is one row block of the matrix.
type confFamily struct {
	name       string
	g          *graph.Graph
	cubeDim    int  // > 0: e-cube applies
	isTree     bool // tree scheme applies with guarantee 1
	isComplete bool // kcomplete schemes apply
}

func confFamilies() []confFamily {
	return []confFamily{
		{name: "random(64,.1)", g: gen.RandomConnected(64, 0.1, xrand.New(41))},
		{name: "tree(63)", g: gen.RandomTree(63, xrand.New(42)), isTree: true},
		{name: "torus 8x8", g: gen.Torus2D(8, 8)},
		{name: "hypercube H6", g: gen.Hypercube(6), cubeDim: 6},
		{name: "K24", g: gen.Complete(24), isComplete: true},
		{name: "outerplanar(60)", g: gen.MaximalOuterplanar(60, xrand.New(43))},
		{name: "petersen", g: gen.Petersen()},
	}
}

// confScheme is one column: a scheme plus its stretch guarantee.
type confScheme struct {
	s routing.Scheme
	// maxStretch is the guaranteed bound; exact schemes use 1 and the
	// suite asserts equality for them (a stretch-1 scheme reporting 0.9
	// would be a distance bug, not a pleasant surprise).
	maxStretch float64
	exact      bool
}

func confSchemes(t *testing.T, f confFamily, apsp *shortest.APSP) []confScheme {
	t.Helper()
	g := f.g
	tb, err := table.New(g, apsp, table.MinPort)
	if err != nil {
		t.Fatalf("%s: tables: %v", f.name, err)
	}
	iv, err := interval.New(g, apsp, interval.Options{Labels: interval.DFSLabels(g), Policy: interval.RunGreedy})
	if err != nil {
		t.Fatalf("%s: interval: %v", f.name, err)
	}
	lm, err := landmark.New(g, apsp, landmark.Options{Seed: 17})
	if err != nil {
		t.Fatalf("%s: landmark: %v", f.name, err)
	}
	out := []confScheme{
		{s: tb, maxStretch: 1, exact: true},
		{s: iv, maxStretch: 1, exact: true},
		{s: lm, maxStretch: 3},
	}
	if f.cubeDim > 0 {
		ec, err := ecube.New(g, f.cubeDim)
		if err != nil {
			t.Fatalf("%s: ecube: %v", f.name, err)
		}
		out = append(out, confScheme{s: ec, maxStretch: 1, exact: true})
	}
	if f.isTree {
		tr, err := tree.New(g, 0)
		if err != nil {
			t.Fatalf("%s: tree: %v", f.name, err)
		}
		out = append(out, confScheme{s: tr, maxStretch: 1, exact: true})
	}
	if f.isComplete {
		fr, err := kcomplete.NewFriendly(g)
		if err != nil {
			t.Fatalf("%s: kcomplete: %v", f.name, err)
		}
		out = append(out, confScheme{s: fr, maxStretch: 1, exact: true})
	}
	return out
}

// confWorkers are the pool sizes the backend-identity assertions sweep.
var confWorkers = []int{1, 2, 5}

// backendOptions enumerates the (backend, workers) grid for one run
// shape (exhaustive or sampled).
func backendOptions(base evaluate.Options) []evaluate.Options {
	var out []evaluate.Options
	for _, mode := range []evaluate.DistMode{evaluate.DistDense, evaluate.DistStream, evaluate.DistCache} {
		for _, w := range confWorkers {
			o := base
			o.DistMode = mode
			o.Workers = w
			if mode == evaluate.DistCache {
				o.CacheRows = 7 // small enough to force evictions on every family
			}
			out = append(out, o)
		}
	}
	return out
}

// TestConformanceMatrix is the matrix itself.
func TestConformanceMatrix(t *testing.T) {
	for _, f := range confFamilies() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			apsp := shortest.NewAPSP(f.g)
			for _, cs := range confSchemes(t, f, apsp) {
				name := cs.s.Name()
				// Universality: every ordered pair must deliver.
				if err := routing.Validate(f.g, cs.s); err != nil {
					t.Fatalf("%s: validate: %v", name, err)
				}
				// Serial reference, dense rows.
				serial, err := routing.MeasureStretch(f.g, cs.s, apsp)
				if err != nil {
					t.Fatalf("%s: serial: %v", name, err)
				}
				if serial.Max < 1 {
					t.Fatalf("%s: stretch %v < 1 — distances broken", name, serial.Max)
				}
				if cs.exact {
					if serial.Max != 1 {
						t.Fatalf("%s: guaranteed stretch-1 scheme measured %v", name, serial.Max)
					}
				} else if serial.Max > cs.maxStretch {
					t.Fatalf("%s: stretch %v exceeds guarantee %v", name, serial.Max, cs.maxStretch)
				}
				// Backend x workers grid: every exhaustive report equals
				// the serial reference and every other cell exactly.
				var ref *evaluate.Report
				for _, o := range backendOptions(evaluate.Options{}) {
					rep, err := evaluate.Stretch(f.g, cs.s, nil, o)
					if err != nil {
						t.Fatalf("%s: %s workers=%d: %v", name, o.DistMode, o.Workers, err)
					}
					if got := rep.StretchReport(); got != serial {
						t.Fatalf("%s: %s workers=%d: report %+v != serial %+v", name, o.DistMode, o.Workers, got, serial)
					}
					if ref == nil {
						ref = rep
					} else if !reflect.DeepEqual(rep, ref) {
						t.Fatalf("%s: %s workers=%d: full report diverges across backends", name, o.DistMode, o.Workers)
					}
				}
				// Sampled grid: same identity on a strict subset of pairs.
				ref = nil
				for _, o := range backendOptions(evaluate.Options{Sample: 300, Seed: 7}) {
					rep, err := evaluate.Stretch(f.g, cs.s, nil, o)
					if err != nil {
						t.Fatalf("%s: sampled %s workers=%d: %v", name, o.DistMode, o.Workers, err)
					}
					if ref == nil {
						ref = rep
					} else if !reflect.DeepEqual(rep, ref) {
						t.Fatalf("%s: sampled %s workers=%d: report diverges across backends", name, o.DistMode, o.Workers)
					}
				}
				if f.g.Order()*(f.g.Order()-1) > 300 && !ref.Sampled {
					t.Fatalf("%s: sampled run did not sample", name)
				}
			}
		})
	}
}

// TestConformanceOracle runs the distance-oracle column of the matrix:
// for every family and k in {2, 3}, every query must lie within
// [d, (2k-1)·d] of the true distance.
func TestConformanceOracle(t *testing.T) {
	for _, f := range confFamilies() {
		apsp := shortest.NewAPSP(f.g)
		n := f.g.Order()
		for _, k := range []int{2, 3} {
			o, err := oracle.New(f.g, apsp, oracle.Options{K: k, Seed: 5})
			if err != nil {
				t.Fatalf("%s: oracle k=%d: %v", f.name, k, err)
			}
			bound := int32(2*k - 1)
			for u := 0; u < n; u++ {
				for v := 0; v < n; v++ {
					if u == v {
						continue
					}
					d := apsp.Dist(graph.NodeID(u), graph.NodeID(v))
					q := o.Query(graph.NodeID(u), graph.NodeID(v))
					if q < d || q > bound*d {
						t.Fatalf("%s: oracle k=%d: query %d->%d = %d outside [%d, %d]",
							f.name, k, u, v, q, d, bound*d)
					}
				}
			}
		}
	}
}

// TestConformanceStreamedLandmark pins the beyond-RAM construction path
// end to end at matrix scale: a landmark scheme built without the dense
// table must produce evaluation reports bit-identical to the dense-built
// scheme on every backend.
func TestConformanceStreamedLandmark(t *testing.T) {
	for _, f := range confFamilies() {
		apsp := shortest.NewAPSP(f.g)
		dense, err := landmark.New(f.g, apsp, landmark.Options{Seed: 17})
		if err != nil {
			t.Fatalf("%s: dense: %v", f.name, err)
		}
		streamed, err := landmark.NewStreamed(f.g, landmark.Options{Seed: 17}, 3)
		if err != nil {
			t.Fatalf("%s: streamed: %v", f.name, err)
		}
		want, err := evaluate.Stretch(f.g, dense, apsp, evaluate.Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		got, err := evaluate.Stretch(f.g, streamed, nil, evaluate.Options{Workers: 2, DistMode: evaluate.DistStream})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: streamed-built landmark diverges from dense-built", f.name)
		}
		if !reflect.DeepEqual(routing.MeasureMemory(f.g, streamed), routing.MeasureMemory(f.g, dense)) {
			t.Fatalf("%s: streamed-built landmark memory diverges", f.name)
		}
	}
}
