// Network-serving conformance suite: an in-process loopback cluster —
// real TCP, real frames, real scatter/gather — must answer exactly
// like the serial in-process serve.Server, for every cell of
//
//	shard count {1, 2, 5} x distance backend {dense, stream, cache}
//	x scheme {tables, landmark},
//
// exhaustively over a small graph and sampled over a larger one. The
// equality asserted is the strongest the wire offers: both result sets
// are serialized with netserve.EncodeResponse and compared byte for
// byte, so answers, per-query error messages and the integer-only
// stretch encoding must all agree — the network analogue of the
// dense==stream==cache bit-identity the evaluator matrix pins.
//
// TestNetServeConcurrentRace is the serving race canary (8 client
// goroutines against a 3-shard cluster with a concurrent graceful
// shutdown mid-stream), run under CI's `go test -race` like the serve
// and MS-BFS canaries before it.
package repro

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/evaluate"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/netserve"
	"repro/internal/routing"
	"repro/internal/scheme/landmark"
	"repro/internal/scheme/table"
	"repro/internal/schemeio"
	"repro/internal/serve"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

// netConfShards are the cluster sizes the matrix sweeps.
var netConfShards = []int{1, 2, 5}

// netConfQueries builds a deterministic query stream cycling the three
// ops over the given pairs; u==v pairs ride along so the per-query
// error path (stretch of a zero-distance pair) is part of the matrix.
func netConfQueries(pairs [][2]graph.NodeID) []serve.Query {
	qs := make([]serve.Query, len(pairs))
	for i, p := range pairs {
		qs[i] = serve.Query{Op: serve.Op(i % 3), U: p[0], V: p[1]}
	}
	return qs
}

func exhaustivePairs(n int) [][2]graph.NodeID {
	pairs := make([][2]graph.NodeID, 0, n*n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			pairs = append(pairs, [2]graph.NodeID{graph.NodeID(u), graph.NodeID(v)})
		}
	}
	return pairs
}

func sampledPairs(n, count int, seed uint64) [][2]graph.NodeID {
	r := xrand.New(seed)
	pairs := make([][2]graph.NodeID, count)
	for i := range pairs {
		pairs[i] = [2]graph.NodeID{graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n))}
	}
	return pairs
}

// netConfSource builds one distance source for the given backend —
// called once for the serial baseline and once per shard, so every
// shard owns its reader state exactly as a deployed cluster would.
func netConfSource(t *testing.T, g *graph.Graph, apsp *shortest.APSP, mode evaluate.DistMode) shortest.DistanceSource {
	t.Helper()
	src, err := evaluate.Options{DistMode: mode, CacheRows: 32}.Source(g, apsp)
	if err != nil {
		t.Fatalf("source (%v): %v", mode, err)
	}
	return src
}

func netConfSchemes(t *testing.T, g *graph.Graph, apsp *shortest.APSP) map[string]routing.Scheme {
	t.Helper()
	tb, err := table.New(g, apsp, table.MinPort)
	if err != nil {
		t.Fatalf("tables: %v", err)
	}
	lm, err := landmark.New(g, apsp, landmark.Options{Seed: 17})
	if err != nil {
		t.Fatalf("landmark: %v", err)
	}
	return map[string]routing.Scheme{"tables": tb, "landmark": lm}
}

// startLoopbackCluster brings up k shard servers over fn and dials the
// aggregator. Each shard gets its own distance source instance.
func startLoopbackCluster(t *testing.T, g *graph.Graph, fn routing.Scheme, apsp *shortest.APSP, mode evaluate.DistMode, k int) (*netserve.Group, *netserve.Cluster) {
	t.Helper()
	group, err := netserve.ListenGroup(k, func(int) netserve.BatchHandler {
		sv := serve.New(g, fn, netConfSource(t, g, apsp, mode), serve.Options{Workers: 2})
		return sv.ServeBatch
	}, netserve.Options{})
	if err != nil {
		t.Fatalf("ListenGroup(%d): %v", k, err)
	}
	cluster, err := netserve.DialCluster(group.Addrs(), g.Order(), netserve.ClusterOptions{Deadline: 30 * time.Second})
	if err != nil {
		group.Close()
		t.Fatalf("DialCluster(%d): %v", k, err)
	}
	return group, cluster
}

// assertNetEqual compares a cluster's answers to the serial baseline
// by encoding both through the wire codec: byte equality is exactly
// "same answer, same error message, same stretch arithmetic" per
// positional slot.
func assertNetEqual(t *testing.T, label string, serial, clustered []serve.Result) {
	t.Helper()
	if len(serial) != len(clustered) {
		t.Fatalf("%s: %d cluster results for %d serial", label, len(clustered), len(serial))
	}
	want, err := netserve.EncodeResponse(serial)
	if err != nil {
		t.Fatalf("%s: encode serial: %v", label, err)
	}
	got, err := netserve.EncodeResponse(clustered)
	if err != nil {
		t.Fatalf("%s: encode clustered: %v", label, err)
	}
	if bytes.Equal(want, got) {
		return
	}
	// Locate the first diverging slot for a readable failure.
	for i := range serial {
		se, ce := "", ""
		if serial[i].Err != nil {
			se = serial[i].Err.Error()
		}
		if clustered[i].Err != nil {
			ce = clustered[i].Err.Error()
		}
		if se != ce || serial[i].Len != clustered[i].Len || serial[i].Dist != clustered[i].Dist ||
			serial[i].Stretch != clustered[i].Stretch || len(serial[i].Hops) != len(clustered[i].Hops) {
			t.Fatalf("%s: slot %d diverges:\n serial    %+v (err %q)\n clustered %+v (err %q)",
				label, i, serial[i], se, clustered[i], ce)
		}
	}
	t.Fatalf("%s: encodings diverge with no per-slot diff (encoding bug)", label)
}

func TestNetServeConformanceMatrix(t *testing.T) {
	shapes := []struct {
		name  string
		g     *graph.Graph
		pairs func(n int) [][2]graph.NodeID
	}{
		{
			name:  "exhaustive random(48,.12)",
			g:     gen.RandomConnected(48, 0.12, xrand.New(61)),
			pairs: exhaustivePairs,
		},
		{
			name: "sampled random(400,.025)",
			g:    gen.RandomConnected(400, 0.025, xrand.New(62)),
			pairs: func(n int) [][2]graph.NodeID {
				return sampledPairs(n, 2400, 63)
			},
		},
	}
	for _, shape := range shapes {
		g := shape.g
		n := g.Order()
		apsp := shortest.NewAPSPParallel(g, 0)
		qs := netConfQueries(shape.pairs(n))
		for schemeName, fn := range netConfSchemes(t, g, apsp) {
			for _, mode := range []evaluate.DistMode{evaluate.DistDense, evaluate.DistStream, evaluate.DistCache} {
				// Serial baseline once per (scheme, backend): the cluster
				// must reproduce it at every shard count.
				serial := serve.New(g, fn, netConfSource(t, g, apsp, mode), serve.Options{Workers: 2}).ServeBatch(qs)
				for _, k := range netConfShards {
					label := fmt.Sprintf("%s/%s/%v/shards=%d", shape.name, schemeName, mode, k)
					t.Run(label, func(t *testing.T) {
						group, cluster := startLoopbackCluster(t, g, fn, apsp, mode, k)
						defer group.Close()
						defer cluster.Close()
						assertNetEqual(t, label, serial, cluster.ServeBatch(qs))
						// A second pass reuses pooled connections — the
						// steady-state path must answer identically too.
						assertNetEqual(t, label+"/pooled", serial[:300], cluster.ServeBatch(qs[:300]))
					})
				}
			}
		}
	}
}

// TestNetServeMappedStore runs one shards x distmode cell of the
// conformance matrix against a memory-mapped scheme store: the tables
// scheme is framed into a v2 container on disk, reopened through
// schemeio.OpenMapped, and a 2-shard loopback cluster serves out of the
// mapping (router rows decoded lazily on first touch) while the serial
// baseline serves the original in-heap scheme. Wire-level byte equality
// of the answers is the -mmap serving acceptance gate end to end: same
// TCP path, same frames, different container reader.
func TestNetServeMappedStore(t *testing.T) {
	g := gen.RandomConnected(64, 0.1, xrand.New(81))
	apsp := shortest.NewAPSPParallel(g, 0)
	fn, err := table.New(g, apsp, table.MinPort)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/store.rsf2"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := schemeio.WriteFileV2(f, g, fn); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	m, err := schemeio.OpenMapped(path)
	if err != nil {
		t.Fatalf("OpenMapped: %v", err)
	}
	defer m.Close()

	qs := netConfQueries(exhaustivePairs(g.Order()))
	serial := serve.New(g, fn, netConfSource(t, g, apsp, evaluate.DistStream), serve.Options{Workers: 2}).ServeBatch(qs)
	group, cluster := startLoopbackCluster(t, m.Graph(), m.Scheme(), apsp, evaluate.DistStream, 2)
	defer group.Close()
	defer cluster.Close()
	assertNetEqual(t, "mapped/tables/stream/shards=2", serial, cluster.ServeBatch(qs))
	// Steady state over pooled connections, straight out of the mapping.
	assertNetEqual(t, "mapped/tables/stream/shards=2/pooled", serial[:300], cluster.ServeBatch(qs[:300]))
	if err := m.Verify(); err != nil {
		t.Fatalf("post-serving Verify: %v", err)
	}
}

// TestNetServeConcurrentRace: 8 client goroutines stream batches
// against a 3-shard loopback cluster; mid-stream, the whole cluster is
// gracefully drained. Before the drain begins every answer must match
// the serial baseline; after it, every answer must either still match
// or be an explicit error (refusal or transport) — never a wrong
// value, never a hang, never a data race.
func TestNetServeConcurrentRace(t *testing.T) {
	g := gen.RandomConnected(96, 0.08, xrand.New(71))
	apsp := shortest.NewAPSPParallel(g, 0)
	fn, err := table.New(g, apsp, table.MinPort)
	if err != nil {
		t.Fatal(err)
	}
	group, cluster := startLoopbackCluster(t, g, fn, apsp, evaluate.DistDense, 3)
	defer group.Close()
	defer cluster.Close()

	qs := netConfQueries(sampledPairs(g.Order(), 256, 72))
	serial := serve.New(g, fn, apsp, serve.Options{}).ServeBatch(qs)
	wantBytes, err := netserve.EncodeResponse(serial)
	if err != nil {
		t.Fatal(err)
	}

	var draining sync.WaitGroup // clients signal reaching the midpoint
	stop := make(chan struct{}) // closed once the drain has started
	errs := make(chan error, 8)
	var wg sync.WaitGroup
	draining.Add(8)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			armed := false
			// An early return must still unblock the drain, or a failing
			// client would deadlock the test instead of failing it.
			defer func() {
				if !armed {
					draining.Done()
				}
			}()
			for b := 0; b < 40; b++ {
				if b == 10 && !armed {
					draining.Done() // midpoint: unblock the drain
					armed = true
				}
				out := cluster.ServeBatch(qs)
				gotErr := false
				for i := range out {
					if out[i].Err != nil {
						if serial[i].Err != nil && out[i].Err.Error() == serial[i].Err.Error() {
							continue // the baseline's own per-query error
						}
						gotErr = true // transport/refusal during drain
						break
					}
				}
				if gotErr {
					select {
					case <-stop: // drain underway: errors are expected; stop
						return
					default:
						errs <- fmt.Errorf("client %d batch %d: error before drain", c, b)
						return
					}
				}
				got, err := netserve.EncodeResponse(out)
				if err != nil {
					errs <- fmt.Errorf("client %d batch %d: encode: %w", c, b, err)
					return
				}
				if !bytes.Equal(got, wantBytes) {
					errs <- fmt.Errorf("client %d batch %d: answers diverge from serial baseline", c, b)
					return
				}
			}
		}(c)
	}
	draining.Wait()
	close(stop)
	if err := group.Close(); err != nil {
		errs <- fmt.Errorf("drain: %w", err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
