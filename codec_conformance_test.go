// Round-trip rows of the conformance matrix: every routing scheme on
// every conformance family is pushed through the schemeio wire codec
// and the decoded instance must be indistinguishable from the built
// one under the full measurement pipeline —
//
//   - evaluation bit-identity: the decoded scheme's evaluate.Report
//     equals the built scheme's exactly, under the hop AND the weighted
//     metric, exhaustive and sampled, at several worker counts
//     (mirroring conformance_test.go / weighted_conformance_test.go);
//   - memory bit-identity: LocalBits and the full memory report are
//     unchanged by a round trip — persistence cannot move the paper's
//     measured quantity;
//   - LocalBits cross-check: the per-router serialized payload stays
//     within a documented factor-2-plus-64-bit corridor of LocalBits on
//     every family (DESIGN.md "Scheme persistence wire format"), so the
//     Kolmogorov stand-in and the real encoding cannot silently
//     diverge;
//   - canonical bytes: re-encoding a decoded scheme reproduces the
//     blob byte for byte.
package repro

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/evaluate"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/scheme/kcomplete"
	"repro/internal/scheme/table"
	"repro/internal/schemeio"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

// codecCell is one (graph, scheme) instance of the round-trip matrix.
// The graph rides along because the adversarial complete-graph scheme
// scrambles port labelings and therefore lives on its own clone.
type codecCell struct {
	g *graph.Graph
	s routing.Scheme
}

// codecCells assembles every codec-covered scheme of one family: the
// shared conformance columns plus the adversarial K_n scheme (on a
// clone — Scramble is a port-labeling mutation) and, on the first
// family, the weighted table variant, which rides the same wire kind.
func codecCells(t *testing.T, f confFamily, apsp *shortest.APSP, w shortest.Weights) []codecCell {
	t.Helper()
	var cells []codecCell
	for _, cs := range confSchemes(t, f, apsp) {
		cells = append(cells, codecCell{f.g, cs.s})
	}
	if f.isComplete {
		ga := f.g.Clone()
		adv, err := kcomplete.Scramble(ga, xrand.New(23))
		if err != nil {
			t.Fatalf("%s: scramble: %v", f.name, err)
		}
		cells = append(cells, codecCell{ga, adv})
	}
	wtb, err := table.NewWeighted(f.g, w, nil, table.MinPort)
	if err != nil {
		t.Fatalf("%s: weighted tables: %v", f.name, err)
	}
	cells = append(cells, codecCell{f.g, wtb})
	return cells
}

// TestCodecConformanceMatrix is the round-trip matrix itself.
func TestCodecConformanceMatrix(t *testing.T) {
	for _, f := range confFamilies() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			apsp := shortest.NewAPSP(f.g)
			w := shortest.RandomWeights(f.g, 9, xrand.New(91))
			for _, c := range codecCells(t, f, apsp, w) {
				name := c.s.Name()
				// The adversarial clone has its own port labeling, so its
				// weights (and distance tables) are its own too.
				cg, cw := c.g, w
				var capsp *shortest.APSP
				if cg == f.g {
					capsp = apsp
				} else {
					capsp = shortest.NewAPSP(cg)
					cw = shortest.RandomWeights(cg, 9, xrand.New(91))
				}
				enc, err := schemeio.Encode(cg, c.s)
				if err != nil {
					t.Fatalf("%s: encode: %v", name, err)
				}
				dec, err := schemeio.Decode(enc.Bytes, cg)
				if err != nil {
					t.Fatalf("%s: decode: %v", name, err)
				}
				// Memory bit-identity.
				if !reflect.DeepEqual(evaluate.Memory(cg, dec, evaluate.Options{}), evaluate.Memory(cg, c.s, evaluate.Options{})) {
					t.Fatalf("%s: decoded memory report diverges", name)
				}
				// Canonical bytes.
				re, err := schemeio.Encode(cg, dec)
				if err != nil {
					t.Fatalf("%s: re-encode: %v", name, err)
				}
				if !bytes.Equal(re.Bytes, enc.Bytes) {
					t.Fatalf("%s: re-encoded bytes diverge", name)
				}
				// Evaluation bit-identity: hop and weighted metric,
				// exhaustive and sampled, at the conformance worker grid.
				for _, base := range []evaluate.Options{{}, {Sample: 300, Seed: 7}} {
					for _, workers := range confWorkers {
						o := base
						o.Workers = workers
						want, err := evaluate.Stretch(cg, c.s, capsp, o)
						if err != nil {
							t.Fatalf("%s workers=%d: %v", name, workers, err)
						}
						got, err := evaluate.Stretch(cg, dec, capsp, o)
						if err != nil {
							t.Fatalf("%s workers=%d: decoded: %v", name, workers, err)
						}
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("%s workers=%d sampled=%v: decoded hop report diverges", name, workers, base.Sample > 0)
						}
						wantW, err := evaluate.WeightedStretch(cg, c.s, cw, nil, o)
						if err != nil {
							t.Fatalf("%s workers=%d weighted: %v", name, workers, err)
						}
						gotW, err := evaluate.WeightedStretch(cg, dec, cw, nil, o)
						if err != nil {
							t.Fatalf("%s workers=%d weighted: decoded: %v", name, workers, err)
						}
						if !reflect.DeepEqual(gotW, wantW) {
							t.Fatalf("%s workers=%d sampled=%v: decoded weighted report diverges", name, workers, base.Sample > 0)
						}
					}
				}
			}
		})
	}
}

// TestMappedReaderConformanceMatrix extends the round-trip matrix to
// the zero-copy container: every codec-covered scheme of every family
// is framed into a v2 container, reopened through the mapped reader
// (lazy per-router decode, table rows straight out of the mapping),
// and the mapped scheme must be indistinguishable from the heap-decoded
// one under the full measurement pipeline — evaluate.Report equality
// under the hop AND the weighted metric, memory report equality, and
// per-router LocalBits equality. This is the acceptance gate that -mmap
// routing is bit-identical to -load routing.
func TestMappedReaderConformanceMatrix(t *testing.T) {
	for _, f := range confFamilies() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			apsp := shortest.NewAPSP(f.g)
			w := shortest.RandomWeights(f.g, 9, xrand.New(91))
			for _, c := range codecCells(t, f, apsp, w) {
				name := c.s.Name()
				cg, cw := c.g, w
				var capsp *shortest.APSP
				if cg == f.g {
					capsp = apsp
				} else {
					capsp = shortest.NewAPSP(cg)
					cw = shortest.RandomWeights(cg, 9, xrand.New(91))
				}
				var buf bytes.Buffer
				if err := schemeio.WriteFileV2(&buf, cg, c.s); err != nil {
					t.Fatalf("%s: write v2: %v", name, err)
				}
				m, err := schemeio.MapBytes(buf.Bytes())
				if err != nil {
					t.Fatalf("%s: map: %v", name, err)
				}
				// Heap baseline decoded from the same container bytes, so
				// the comparison isolates the reader, not the framing.
				hg, hs, err := schemeio.ReadFile(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatalf("%s: heap read: %v", name, err)
				}
				if hg.Order() != cg.Order() {
					t.Fatalf("%s: heap graph order diverges", name)
				}
				ms := m.Scheme()
				// Per-router LocalBits and the aggregate memory report must
				// agree between the two readers.
				for x := 0; x < cg.Order(); x++ {
					if got, want := ms.LocalBits(graph.NodeID(x)), hs.LocalBits(graph.NodeID(x)); got != want {
						t.Fatalf("%s: router %d: mapped LocalBits %d, heap %d", name, x, got, want)
					}
				}
				if !reflect.DeepEqual(evaluate.Memory(cg, ms, evaluate.Options{}), evaluate.Memory(cg, hs, evaluate.Options{})) {
					t.Fatalf("%s: mapped memory report diverges from heap", name)
				}
				// Full evaluate-report equality, hop and weighted metric.
				for _, workers := range []int{1, 4} {
					o := evaluate.Options{Workers: workers}
					want, err := evaluate.Stretch(cg, hs, capsp, o)
					if err != nil {
						t.Fatalf("%s workers=%d: heap: %v", name, workers, err)
					}
					got, err := evaluate.Stretch(cg, ms, capsp, o)
					if err != nil {
						t.Fatalf("%s workers=%d: mapped: %v", name, workers, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s workers=%d: mapped hop report diverges from heap", name, workers)
					}
					wantW, err := evaluate.WeightedStretch(cg, hs, cw, nil, o)
					if err != nil {
						t.Fatalf("%s workers=%d weighted: heap: %v", name, workers, err)
					}
					gotW, err := evaluate.WeightedStretch(cg, ms, cw, nil, o)
					if err != nil {
						t.Fatalf("%s workers=%d weighted: mapped: %v", name, workers, err)
					}
					if !reflect.DeepEqual(gotW, wantW) {
						t.Fatalf("%s workers=%d: mapped weighted report diverges from heap", name, workers)
					}
				}
				if err := m.Verify(); err != nil {
					t.Fatalf("%s: post-evaluation Verify: %v", name, err)
				}
			}
		})
	}
}

// TestCodecLocalBitsCrossCheck pins the documented corridor between the
// two bit meters: for every router of every scheme on every family,
// wire(x) <= 2*LocalBits(x) + 64 and LocalBits(x) <= 2*wire(x) + 64.
// The slack absorbs per-scheme framing (varint counts, byte padding)
// and the schemes whose router state is implicit in the graph (e-cube,
// friendly K_n: wire(x) = 0 while LocalBits = O(log n)); the factor
// catches any real divergence between the Kolmogorov stand-in and the
// encoding that actually ships.
func TestCodecLocalBitsCrossCheck(t *testing.T) {
	const factor, slack = 2, 64
	for _, f := range confFamilies() {
		apsp := shortest.NewAPSP(f.g)
		w := shortest.RandomWeights(f.g, 9, xrand.New(91))
		for _, c := range codecCells(t, f, apsp, w) {
			enc, err := schemeio.Encode(c.g, c.s)
			if err != nil {
				t.Fatalf("%s/%s: %v", f.name, c.s.Name(), err)
			}
			lc := c.s.(routing.LocalCoder)
			for x := 0; x < c.g.Order(); x++ {
				wb := enc.RouterBits[x]
				lb := lc.LocalBits(graph.NodeID(x))
				if wb > factor*lb+slack {
					t.Fatalf("%s/%s: router %d serialized in %d bits, LocalBits only %d — meters diverged",
						f.name, c.s.Name(), x, wb, lb)
				}
				if lb > factor*wb+slack {
					t.Fatalf("%s/%s: router %d meters %d LocalBits but serialized in %d bits — meters diverged",
						f.name, c.s.Name(), x, lb, wb)
				}
			}
		}
	}
}
