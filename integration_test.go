// Integration tests: end-to-end pipelines across modules, exactly as the
// examples and experiments compose them. Unit tests certify parts; these
// certify the joints.
package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/scheme/ecube"
	"repro/internal/scheme/interval"
	"repro/internal/scheme/kcomplete"
	"repro/internal/scheme/landmark"
	"repro/internal/scheme/table"
	"repro/internal/scheme/tree"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

// TestPipelineTheorem1EndToEnd runs the complete Theorem 1 pipeline the
// way examples/lowerbound does: parameters -> instance -> forcedness ->
// bound -> tables -> measurement -> rebuild.
func TestPipelineTheorem1EndToEnd(t *testing.T) {
	pr, err := core.ChooseParams(300, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := core.BuildInstance(pr, 123)
	if err != nil {
		t.Fatal(err)
	}
	if ins.CG.G.Order() != 300 {
		t.Fatalf("instance order %d", ins.CG.G.Order())
	}
	forced, err := ins.CG.ForcedMatrix(1.99)
	if err != nil {
		t.Fatal(err)
	}
	if !forced.Equal(ins.M) {
		t.Fatal("forced matrix mismatch")
	}
	b := core.LowerBound(pr)
	s, err := table.New(ins.CG.G, nil, table.MinPort)
	if err != nil {
		t.Fatal(err)
	}
	measured := float64(routing.SumBitsOver(s, ins.CG.A)) / float64(pr.P)
	if measured < b.PerRouter {
		t.Fatalf("measured %v below bound %v", measured, b.PerRouter)
	}
	if _, err := ins.VerifyRebuild(s); err != nil {
		t.Fatal(err)
	}
	// The tables must actually route on the instance with stretch 1.
	rep, err := routing.MeasureStretch(ins.CG.G, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Max != 1.0 {
		t.Fatalf("instance tables stretch %v", rep.Max)
	}
}

// TestAllSchemesDeliverEverywhere validates universality of every scheme
// on its home graph in one sweep.
func TestAllSchemesDeliverEverywhere(t *testing.T) {
	r := xrand.New(55)

	gRand := gen.RandomConnected(48, 0.12, r.Split())
	apsp := shortest.NewAPSP(gRand)
	if s, err := table.New(gRand, apsp, table.MinPort); err != nil {
		t.Fatal(err)
	} else if err := routing.Validate(gRand, s); err != nil {
		t.Fatal(err)
	}
	if s, err := interval.New(gRand, apsp, interval.Options{Labels: interval.DFSLabels(gRand), Policy: interval.RunGreedy}); err != nil {
		t.Fatal(err)
	} else if err := routing.Validate(gRand, s); err != nil {
		t.Fatal(err)
	}
	if s, err := landmark.New(gRand, apsp, landmark.Options{Seed: 5}); err != nil {
		t.Fatal(err)
	} else if err := routing.Validate(gRand, s); err != nil {
		t.Fatal(err)
	}

	gCube := gen.Hypercube(5)
	if s, err := ecube.New(gCube, 5); err != nil {
		t.Fatal(err)
	} else if err := routing.Validate(gCube, s); err != nil {
		t.Fatal(err)
	}
	if s, err := interval.NewHypercube1IRS(gCube, 5); err != nil {
		t.Fatal(err)
	} else if err := routing.Validate(gCube, s); err != nil {
		t.Fatal(err)
	}

	gK := gen.Complete(16)
	if s, err := kcomplete.NewFriendly(gK); err != nil {
		t.Fatal(err)
	} else if err := routing.Validate(gK, s); err != nil {
		t.Fatal(err)
	}
	gK2 := gen.Complete(16)
	if s, err := kcomplete.Scramble(gK2, r.Split()); err != nil {
		t.Fatal(err)
	} else if err := routing.Validate(gK2, s); err != nil {
		t.Fatal(err)
	}

	gTree := gen.RandomTree(48, r.Split())
	if s, err := tree.New(gTree, 0); err != nil {
		t.Fatal(err)
	} else if err := routing.Validate(gTree, s); err != nil {
		t.Fatal(err)
	}
}

// TestMemoryHierarchyOrdering checks the paper's qualitative Table 1
// ordering on one graph: specialized schemes < landmark < tables in
// MEM_local, with the stretch ordering reversed.
func TestMemoryHierarchyOrdering(t *testing.T) {
	g := gen.Hypercube(6)
	apsp := shortest.NewAPSP(g)
	tb, err := table.New(g, apsp, table.MinPort)
	if err != nil {
		t.Fatal(err)
	}
	ec, err := ecube.New(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	lm, err := landmark.New(g, apsp, landmark.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tbBits := routing.MeasureMemory(g, tb).LocalBits
	ecBits := routing.MeasureMemory(g, ec).LocalBits
	lmBits := routing.MeasureMemory(g, lm).LocalBits
	if !(ecBits < lmBits && lmBits < tbBits) {
		t.Fatalf("memory ordering violated: ecube %d, landmark %d, tables %d", ecBits, lmBits, tbBits)
	}
}

// TestConstraintGraphAdversaryInvariance: relabeling the ports of NON-
// constrained vertices never changes the forced matrix — Definition 1
// only pins the ports of A.
func TestConstraintGraphAdversaryInvariance(t *testing.T) {
	m := core.RandomMatrix(3, 8, 3, xrand.New(31))
	cg, err := core.BuildConstraintGraph(m)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(32)
	inA := make(map[graph.NodeID]bool)
	for _, a := range cg.A {
		inA[a] = true
	}
	for u := 0; u < cg.G.Order(); u++ {
		if inA[graph.NodeID(u)] {
			continue
		}
		if d := cg.G.Degree(graph.NodeID(u)); d > 1 {
			cg.G.PermutePorts(graph.NodeID(u), r.Perm(d))
		}
	}
	got, err := cg.ForcedMatrix(1.9)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("scrambling non-constrained ports changed the forced matrix")
	}
}

// TestWeightedPipelineOnInstance: the Theorem 1 instance also supports
// the weighted machinery (uniform weights reproduce the hop tables).
func TestWeightedPipelineOnInstance(t *testing.T) {
	pr := core.Params{N: 80, Eps: 0.5, P: 4, Q: 30, D: 4}
	ins, err := core.BuildInstance(pr, 77)
	if err != nil {
		t.Fatal(err)
	}
	w := shortest.UniformWeights(ins.CG.G)
	s, err := table.NewWeighted(ins.CG.G, w, nil, table.MinPort)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ins.VerifyRebuild(s); err != nil {
		t.Fatal(err)
	}
}
