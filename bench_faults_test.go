// Fault-repair benchmarks: the incremental dirty-set path (refresh +
// row repair) against the from-scratch rebuild it is bit-identical to,
// plus the generation-patch round trip a serving shard pays to move
// from generation g to g+1. CI archives these as BENCH_faults.json
// (see DESIGN.md "Bench trajectory") next to the other suites:
//
//	go test -run '^$' -bench '^(BenchmarkFaultRepair|BenchmarkFaultRebuild|BenchmarkDeltaApply)$' \
//	    -benchtime 1x . | go run ./cmd/benchjson > BENCH_faults.json
//
// Read FaultRepair against FaultRebuild at the same (n, kills). Wall
// time tracks the dirty-cone size, and the conservative dirty
// criterion (|d(v,a)-d(v,b)| = 1 for a removed edge {a,b}) marks
// nearly every root dirty on small-diameter and bipartite families —
// so the repair's wins are the allocation economy (in-place row
// refresh vs a from-scratch n² APSP + scheme: ~100x fewer bytes) and
// the patch record DeltaApply prices (changed rows only vs a full
// re-encode), not raw time on these workloads.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/scheme/table"
	"repro/internal/schemeio"
	"repro/internal/shortest"
)

const benchKills = 8

// benchFaultPlan draws the suite's seeded connectivity-preserving plan
// on the shared benchmark graph family.
func benchFaultPlan(b *testing.B, g *graph.Graph) *faults.Plan {
	b.Helper()
	plan, err := faults.NewPlan(g, faults.Options{
		Mode: faults.KillEdges, Count: benchKills, Seed: 0xbe7cf, KeepConnected: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	return plan
}

// BenchmarkFaultRepair times the incremental path: edge removal,
// dirty-set APSP row refresh, and table row repair — everything a
// serving process runs between "fault detected" and "generation g+1
// ready". The pre-fault state is rebuilt outside the timer each
// iteration (repair mutates it).
func BenchmarkFaultRepair(b *testing.B) {
	for _, n := range []int{512, 2048} {
		base := benchGraph(n)
		plan := benchFaultPlan(b, base)
		b.Run(fmt.Sprintf("n=%d/kills=%d", n, benchKills), func(b *testing.B) {
			b.ReportAllocs()
			var dirtyRows, changedRows int
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				work := base.Clone()
				apsp := shortest.NewAPSP(work)
				sch, err := table.New(work, apsp, table.MinPort)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for _, e := range plan.Edges {
					work.RemoveEdge(e[0], e[1])
				}
				work.Freeze()
				dirty := faults.DirtyRoots(apsp, plan.Edges)
				apsp.RefreshRows(work, dirty)
				changed, err := sch.Repair(apsp, dirty, table.MinPort)
				if err != nil {
					b.Fatal(err)
				}
				dirtyRows, changedRows = len(dirty), len(changed)
			}
			b.ReportMetric(float64(dirtyRows), "dirty_rows")
			b.ReportMetric(float64(changedRows), "changed_rows")
		})
	}
}

// BenchmarkFaultRebuild is the from-scratch baseline: apply the same
// plan and rebuild APSP + scheme on the faulted topology.
func BenchmarkFaultRebuild(b *testing.B) {
	for _, n := range []int{512, 2048} {
		base := benchGraph(n)
		plan := benchFaultPlan(b, base)
		b.Run(fmt.Sprintf("n=%d/kills=%d", n, benchKills), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				work := base.Clone()
				b.StartTimer()
				plan.Apply(work)
				apsp := shortest.NewAPSP(work)
				if _, err := table.New(work, apsp, table.MinPort); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDeltaApply times what a serving shard pays to adopt a new
// generation from the wire: decode the patch (including the canonical
// re-encode gate) and apply it copy-on-write to the generation-g pair.
// bytes reports the patch size next to the full_bytes re-encode.
func BenchmarkDeltaApply(b *testing.B) {
	for _, n := range []int{512, 2048} {
		base := benchGraph(n)
		plan := benchFaultPlan(b, base)
		apsp := shortest.NewAPSP(base)
		sch, err := table.New(base, apsp, table.MinPort)
		if err != nil {
			b.Fatal(err)
		}
		// Build the patch on a private clone; base/sch stay generation g.
		work := base.Clone()
		apspW := shortest.NewAPSP(work)
		repaired, err := table.New(work, apspW, table.MinPort)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range plan.Edges {
			work.RemoveEdge(e[0], e[1])
		}
		work.Freeze()
		dirty := faults.DirtyRoots(apspW, plan.Edges)
		apspW.RefreshRows(work, dirty)
		changed, err := repaired.Repair(apspW, dirty, table.MinPort)
		if err != nil {
			b.Fatal(err)
		}
		d, err := schemeio.NewDelta(1, plan.Edges, repaired, changed)
		if err != nil {
			b.Fatal(err)
		}
		blob, err := schemeio.EncodeDelta(base, d)
		if err != nil {
			b.Fatal(err)
		}
		full, err := schemeio.Encode(work, repaired)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d/kills=%d", n, benchKills), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dec, err := schemeio.DecodeDelta(blob, base)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := schemeio.ApplyDelta(base, sch, dec); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(blob)), "bytes")
			b.ReportMetric(float64(len(full.Bytes)), "full_bytes")
		})
	}
}
