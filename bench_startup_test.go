// Cold-start benchmarks for the scheme container: how long from a
// persisted file to a servable (graph, scheme) pair, and what it costs
// in heap. Three readers are swept at two scheme sizes:
//
//   - v1-full: the uvarint-framed v1 container through the streaming
//     decoder — every router payload decoded up front;
//   - v2-full: the aligned v2 container through the heap reader — same
//     eager decode, plus section checksums;
//   - v2-mapped: the v2 container through schemeio.OpenMapped — O(index)
//     validation now, router payloads decoded lazily on first touch, so
//     cold-start cost is independent of scheme size.
//
// CI archives these as BENCH_startup.json (see DESIGN.md "Bench
// trajectory"); EXPERIMENTS.md E22 reads the v1-full vs v2-mapped ratio
// off that document. The acceptance floor is mapped open >= 5x faster
// than v1 full decode at the largest benchmarked scheme:
//
//	go test -run '^$' -bench '^BenchmarkLoadContainer$' -benchtime 100x . \
//	    | go run ./cmd/benchjson > BENCH_startup.json
package repro

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/scheme/table"
	"repro/internal/schemeio"
	"repro/internal/shortest"
)

// benchContainerFiles persists one tables scheme in both container
// versions under dir, returning the two paths. Tables are the dense
// regime — Θ(n log n) row bits — where eager versus lazy decode
// separates most.
func benchContainerFiles(b *testing.B, dir string, n int) (v1Path, v2Path string) {
	b.Helper()
	g := benchGraph(n)
	apsp := shortest.NewAPSP(g)
	s, err := table.New(g, apsp, table.MinPort)
	if err != nil {
		b.Fatal(err)
	}
	v1Path = fmt.Sprintf("%s/n%d.rsf", dir, n)
	v2Path = fmt.Sprintf("%s/n%d.rsf2", dir, n)
	f1, err := os.Create(v1Path)
	if err != nil {
		b.Fatal(err)
	}
	if err := schemeio.WriteFile(f1, g, s); err != nil {
		b.Fatal(err)
	}
	if err := f1.Close(); err != nil {
		b.Fatal(err)
	}
	f2, err := os.Create(v2Path)
	if err != nil {
		b.Fatal(err)
	}
	if err := schemeio.WriteFileV2(f2, g, s); err != nil {
		b.Fatal(err)
	}
	if err := f2.Close(); err != nil {
		b.Fatal(err)
	}
	return v1Path, v2Path
}

func BenchmarkLoadContainer(b *testing.B) {
	dir := b.TempDir()
	for _, n := range []int{512, 2048} {
		v1Path, v2Path := benchContainerFiles(b, dir, n)
		fullLoad := func(path string) func(b *testing.B) {
			return func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					f, err := os.Open(path)
					if err != nil {
						b.Fatal(err)
					}
					if _, _, err := schemeio.ReadFile(f); err != nil {
						b.Fatal(err)
					}
					f.Close()
				}
				reportFileBytes(b, path)
			}
		}
		b.Run(fmt.Sprintf("v1-full/n=%d", n), fullLoad(v1Path))
		b.Run(fmt.Sprintf("v2-full/n=%d", n), fullLoad(v2Path))
		b.Run(fmt.Sprintf("v2-mapped/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m, err := schemeio.OpenMapped(v2Path)
				if err != nil {
					b.Fatal(err)
				}
				// The open IS the measured cold start: directory, graph
				// and index validated, scheme payload untouched. The
				// scheme must still be in hand before Close.
				if m.Scheme() == nil {
					b.Fatal("no scheme")
				}
				m.Close()
			}
			reportFileBytes(b, v2Path)
		})
	}
}

func reportFileBytes(b *testing.B, path string) {
	st, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(st.Size()), "filebytes")
}
