// Interval: the interval routing scheme of references [14,15] — the
// paper's canonical example of a universal compact routing scheme — on
// the graph families Section 1 singles out: trees, outerplanar graphs and
// unit circular-arc graphs support ~1 interval per arc (O(d log n) bits),
// while adversarial topologies need many intervals.
//
//	go run ./examples/interval
package main

import (
	"fmt"
	"log"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/scheme/interval"
	"repro/internal/scheme/tree"
	"repro/internal/xrand"
)

func main() {
	r := xrand.New(123)

	fmt.Printf("%-24s %6s %8s %10s %12s %10s\n",
		"graph", "n", "k-IRS", "intervals", "MEM_local", "stretch")
	families := []struct {
		name   string
		g      *graph.Graph
		useDFS bool
	}{
		{"tree", gen.RandomTree(120, r.Split()), true},
		{"caterpillar", gen.Caterpillar(60, 60), true},
		{"outerplanar", gen.MaximalOuterplanar(120, r.Split()), false},
		{"unit-interval", gen.UnitInterval(120, 0.7, r.Split()), false},
		{"unit-circular-arc", gen.UnitCircularArc(120, 0.04, r.Split()), false},
		{"random (adversarial)", gen.RandomConnected(120, 0.06, r.Split()), false},
	}
	for _, f := range families {
		var labels []int32
		if f.useDFS {
			labels = interval.DFSLabels(f.g)
		}
		s, err := interval.New(f.g, nil, interval.Options{Labels: labels, Policy: interval.RunGreedy})
		if err != nil {
			log.Fatal(err)
		}
		sr, err := routing.MeasureStretch(f.g, s, nil)
		if err != nil {
			log.Fatal(err)
		}
		mr := routing.MeasureMemory(f.g, s)
		fmt.Printf("%-24s %6d %8d %10d %12d %10.2f\n",
			f.name, f.g.Order(), s.MaxIntervalsPerArc(), s.TotalIntervals(), mr.LocalBits, sr.Max)
	}

	// The dedicated tree scheme: exactly one interval per arc by DFS
	// construction, O(d log n) bits as the paper's Section 1 states.
	g := gen.RandomTree(120, r.Split())
	ts, err := tree.New(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	mr := routing.MeasureMemory(g, ts)
	fmt.Printf("\ndedicated tree 1-IRS on a fresh 120-vertex tree: MEM_local=%d bits, MEM_global=%d bits\n",
		mr.LocalBits, mr.GlobalBits)
	fmt.Println("(matches the acyclic-graphs row of the paper's Table 1: O(d log n) per router)")
}
