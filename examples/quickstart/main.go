// Quickstart: build a network, install two universal routing schemes,
// route a few messages, and compare their memory requirements — the
// MEM_local / MEM_global quantities the paper is about.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/scheme/landmark"
	"repro/internal/scheme/table"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

func main() {
	// A random connected network of 80 routers.
	g := gen.RandomConnected(80, 0.07, xrand.New(42))
	apsp := shortest.NewAPSP(g)
	fmt.Printf("network: n=%d routers, m=%d links, diameter=%d\n\n",
		g.Order(), g.Size(), apsp.Diameter())

	// Scheme 1: full shortest-path routing tables (stretch 1, the memory
	// hog that Theorem 1 proves unavoidable below stretch 2).
	tables, err := table.New(g, apsp, table.MinPort)
	if err != nil {
		log.Fatal(err)
	}

	// Scheme 2: landmark routing (stretch <= 3, sublinear state).
	lm, err := landmark.New(g, apsp, landmark.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Route a message under both schemes.
	src, dst := graph.NodeID(3), graph.NodeID(71)
	for _, s := range []routing.Scheme{tables, lm} {
		hops, err := routing.Route(g, s, src, dst, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %d -> %d: %d hops (distance %d):",
			s.Name(), src, dst, routing.PathLen(hops), apsp.Dist(src, dst))
		for _, h := range hops {
			fmt.Printf(" %d", h.Node)
		}
		fmt.Println()
	}
	fmt.Println()

	// Compare stretch and memory over ALL pairs.
	for _, s := range []routing.Scheme{tables, lm} {
		sr, err := routing.MeasureStretch(g, s, apsp)
		if err != nil {
			log.Fatal(err)
		}
		mr := routing.MeasureMemory(g, s)
		fmt.Printf("%-16s stretch max=%.2f mean=%.2f | MEM_local=%d bits MEM_global=%d bits\n",
			s.Name(), sr.Max, sr.Mean, mr.LocalBits, mr.GlobalBits)
	}
	fmt.Println("\nthe tradeoff of the paper's Table 1: below stretch 2 you pay Theta(n log n)")
	fmt.Println("bits at some router (Theorem 1); at stretch 3 the landmark scheme escapes it.")
}
