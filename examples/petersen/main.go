// Petersen: reproduce Figure 1 of the paper — a 5×5 shortest-path matrix
// of constraints on the Petersen graph — and verify exhaustively that
// every entry is forced: whatever routing function a scheme instals, if
// it routes along shortest paths it MUST answer exactly these ports.
//
//	go run ./examples/petersen
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/scheme/table"
	"repro/internal/shortest"
)

func main() {
	g := gen.Petersen()
	apsp := shortest.NewAPSP(g)

	fmt.Println("Petersen graph: 10 vertices, 15 edges, strongly regular (10,3,0,1).")
	fmt.Printf("unique shortest paths between all pairs: %v\n",
		core.UniqueShortestPaths(g, apsp))
	fmt.Printf("all ordered pairs have a forced first arc at stretch 1: %v\n\n",
		core.AllPairsForced(g, apsp, 1.0))

	// Figure 1's sets: constrained vertices on the outer cycle, targets on
	// the pentagram. (The paper's concrete labels differ; by strong
	// regularity any disjoint choice works.)
	A := []graph.NodeID{0, 1, 2, 3, 4}
	B := []graph.NodeID{5, 6, 7, 8, 9}
	m, err := core.ConstraintMatrixOf(g, apsp, A, B, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("matrix of constraints (entry = forced port of a_i toward b_j):")
	fmt.Println(headered(m))

	// The executable content of Definition 1: build ANY shortest-path
	// routing function and check it answers exactly the matrix.
	tables, err := table.New(g, apsp, table.MinPort)
	if err != nil {
		log.Fatal(err)
	}
	rebuilt, err := core.Rebuild(tables, A, B, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nshortest-path routing tables answer the same matrix: %v\n", rebuilt.Equal(m))

	// And the routes themselves.
	fmt.Println("\nsample forced routes:")
	for _, pair := range [][2]graph.NodeID{{0, 7}, {2, 9}, {4, 5}} {
		hops, err := routing.Route(g, tables, pair[0], pair[1], 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d -> %d via port %d:", pair[0], pair[1], hops[0].Port)
		for _, h := range hops {
			fmt.Printf(" %d", h.Node)
		}
		fmt.Println()
	}
}

func headered(m *core.Matrix) string {
	s := "      b1 b2 b3 b4 b5\n"
	for i := 0; i < m.P; i++ {
		s += fmt.Sprintf("  a%d |", i+1)
		for j := 0; j < m.Q; j++ {
			s += fmt.Sprintf(" %d ", m.At(i, j)+1)
		}
		if i < m.P-1 {
			s += "\n"
		}
	}
	return s
}
