// Tradeoff: sweep the stretch/memory plane of the paper's Table 1 on one
// network — how much router memory does each stretch budget cost?
//
// The program runs routing tables (s=1), interval routing (s=1), and
// landmark routing with several landmark densities (s<=3), plus the
// specialized schemes where the topology admits them, and prints one line
// per point of the tradeoff.
//
//	go run ./examples/tradeoff [-n 128]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/gen"
	"repro/internal/routing"
	"repro/internal/scheme/interval"
	"repro/internal/scheme/landmark"
	"repro/internal/scheme/table"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

func main() {
	n := flag.Int("n", 128, "network order")
	flag.Parse()

	g := gen.RandomConnected(*n, 6.0/float64(*n), xrand.New(7))
	apsp := shortest.NewAPSP(g)
	fmt.Printf("network: n=%d m=%d diameter=%d\n\n", g.Order(), g.Size(), apsp.Diameter())
	fmt.Printf("%-28s %8s %8s %12s %12s\n", "scheme", "s(max)", "s(mean)", "MEM_local", "MEM_global")

	show := func(s routing.Scheme) {
		sr, err := routing.MeasureStretch(g, s, apsp)
		if err != nil {
			log.Fatal(err)
		}
		mr := routing.MeasureMemory(g, s)
		fmt.Printf("%-28s %8.2f %8.2f %12d %12d\n", s.Name(), sr.Max, sr.Mean, mr.LocalBits, mr.GlobalBits)
	}

	tb, err := table.New(g, apsp, table.MinPort)
	if err != nil {
		log.Fatal(err)
	}
	show(tb)

	iv, err := interval.New(g, apsp, interval.Options{Labels: interval.DFSLabels(g), Policy: interval.RunGreedy})
	if err != nil {
		log.Fatal(err)
	}
	show(iv)

	for _, k := range []int{0, *n / 16, *n / 8, *n / 4} {
		lm, err := landmark.New(g, apsp, landmark.Options{NumLandmarks: k, Seed: uint64(k) + 3})
		if err != nil {
			log.Fatal(err)
		}
		lmName := fmt.Sprintf("landmark(|L|=%d)", lm.NumLandmarks())
		sr, err := routing.MeasureStretch(g, lm, apsp)
		if err != nil {
			log.Fatal(err)
		}
		mr := routing.MeasureMemory(g, lm)
		fmt.Printf("%-28s %8.2f %8.2f %12d %12d\n", lmName, sr.Max, sr.Mean, mr.LocalBits, mr.GlobalBits)
	}

	fmt.Println("\nTable 1's shape: memory is Theta(n log n) per router while s < 2 (and")
	fmt.Println("Theorem 1 proves no universal scheme can do better), then falls once the")
	fmt.Println("stretch budget reaches 3.")
}
