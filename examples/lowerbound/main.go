// Lowerbound: walk through the proof of Theorem 1 on a concrete instance.
//
// The program (1) draws an incompressible matrix M, (2) builds the padded
// n-vertex graph of constraints G_n, (3) verifies that EVERY stretch-<2
// routing function is forced to answer M at the constrained routers,
// (4) evaluates the counting lower bound on their total memory, and
// (5) measures an actual routing-table implementation against it.
//
//	go run ./examples/lowerbound [-n 512] [-eps 0.5]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/scheme/table"
)

func main() {
	n := flag.Int("n", 512, "network order")
	eps := flag.Float64("eps", 0.5, "Theorem 1 epsilon (0 < eps < 1)")
	flag.Parse()

	pr, err := core.ChooseParams(*n, *eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Theorem 1 instance: n=%d eps=%.2f  =>  p=%d constrained routers, q=%d targets, alphabet d=%d\n",
		pr.N, pr.Eps, pr.P, pr.Q, pr.D)

	ins, err := core.BuildInstance(pr, 2024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph of constraints: order %d (padded to exactly n), connected=%v\n\n",
		ins.CG.G.Order(), ins.CG.G.Connected())

	// Step 1: the constraints are real — the forced matrix at stretch 1.99
	// equals M.
	forced, err := ins.CG.ForcedMatrix(1.99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("every routing function of stretch < 2 must realize M: %v\n", forced.Equal(ins.M))

	// Step 2: the counting bound.
	b := core.LowerBound(pr)
	fmt.Printf("\ncounting argument (Lemma 1 + MB + MC):\n")
	fmt.Printf("  log2 |dMpq|  >= %.0f bits   (pq log2 d - log2 p! - log2 q! - p log2 d!)\n", b.Log2Classes)
	fmt.Printf("  MB (labels of B) = %.0f bits, MC (canonicalizer) = %.0f bits\n", b.MB, b.MC)
	fmt.Printf("  => sum over the %d constrained routers >= %.0f bits\n", pr.P, b.TotalBits)
	fmt.Printf("  => some router needs >= %.0f bits; routing tables pay <= %.0f\n", b.PerRouter, b.UpperPerNode)

	// Step 3: measure a real implementation.
	tb, err := table.New(ins.CG.G, nil, table.MinPort)
	if err != nil {
		log.Fatal(err)
	}
	sum := routing.SumBitsOver(tb, ins.CG.A)
	max := routing.MaxBitsOver(tb, ins.CG.A)
	fmt.Printf("\nmeasured shortest-path tables at constrained routers:\n")
	fmt.Printf("  mean %.0f bits, max %d bits  (lower bound %.0f, upper %.0f)\n",
		float64(sum)/float64(pr.P), max, b.PerRouter, b.UpperPerNode)

	// Step 4: the rebuild step of the Kolmogorov argument — the routers'
	// behaviour alone determines M.
	rebuilt, err := ins.VerifyRebuild(tb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrebuilding M from the routers' port answers: success=%v\n", rebuilt.Equal(ins.M))
	fmt.Println("\nconclusion: the routing information at n^eps routers cannot be compressed")
	fmt.Println("below Theta(n log n) bits each, for ANY universal scheme of stretch < 2.")
}
