// Hierarchy: walk the full memory/stretch curve of the paper's Table 1
// on one network, from the Θ(n log n) bits of stretch-1 tables (optimal
// below stretch 2, by Theorem 1) through the stretch-3 landmark scheme to
// k-level hierarchies with stretch 2k-1 and ~k·n^(1/k) entries per node.
//
//	go run ./examples/hierarchy [-n 256]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/routing"
	"repro/internal/scheme/landmark"
	"repro/internal/scheme/table"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

func main() {
	n := flag.Int("n", 256, "network order")
	flag.Parse()

	g := gen.RandomConnected(*n, 6.0/float64(*n), xrand.New(11))
	apsp := shortest.NewAPSP(g)
	fmt.Printf("network: n=%d m=%d diameter=%d\n\n", g.Order(), g.Size(), apsp.Diameter())
	fmt.Printf("%-26s %14s %14s %16s\n", "structure", "stretch bound", "worst router", "measured stretch")

	// Stretch 1: full routing tables.
	tb, err := table.New(g, apsp, table.MinPort)
	if err != nil {
		log.Fatal(err)
	}
	sr, err := routing.MeasureStretch(g, tb, apsp)
	if err != nil {
		log.Fatal(err)
	}
	mr := routing.MeasureMemory(g, tb)
	fmt.Printf("%-26s %14s %13db %16.2f\n", "routing tables", "1", mr.LocalBits, sr.Max)

	// Stretch <= 3: the landmark ROUTING scheme (k = 2 of the hierarchy).
	lm, err := landmark.New(g, apsp, landmark.Options{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	sr, err = routing.MeasureStretch(g, lm, apsp)
	if err != nil {
		log.Fatal(err)
	}
	mr = routing.MeasureMemory(g, lm)
	fmt.Printf("%-26s %14s %13db %16.2f\n", "landmark routing (k=2)", "3", mr.LocalBits, sr.Max)

	// k >= 2: the distance-oracle hierarchy (state shrinks with k).
	for _, k := range []int{2, 3, 4, 5} {
		o, err := oracle.New(g, apsp, oracle.Options{K: k, Seed: uint64(k)})
		if err != nil {
			log.Fatal(err)
		}
		worst := 0.0
		maxBits := 0
		for u := 0; u < *n; u++ {
			if b := o.LocalBits(graph.NodeID(u)); b > maxBits {
				maxBits = b
			}
			for v := 0; v < *n; v++ {
				if u == v {
					continue
				}
				est := o.Query(graph.NodeID(u), graph.NodeID(v))
				if s := float64(est) / float64(apsp.Dist(graph.NodeID(u), graph.NodeID(v))); s > worst {
					worst = s
				}
			}
		}
		fmt.Printf("%-26s %14d %13db %16.2f\n",
			fmt.Sprintf("oracle hierarchy (k=%d)", k), 2*k-1, maxBits, worst)
	}

	fmt.Println("\nthe curve of the paper's Table 1: state per router collapses as the")
	fmt.Println("stretch budget grows — and Theorem 1 proves the top row (s < 2) is stuck")
	fmt.Println("at Theta(n log n) bits no matter how clever the scheme.")
}
