// Property tests for the CSR graph core against every conformance
// family: the flat Arcs/BackPorts accessors, the ForEachArc shim and the
// port-indexed Neighbor/BackPort lookups must agree arc-for-arc — same
// order, same ports — before a Freeze, after it, and after post-freeze
// mutation. This pins the tentpole invariant the whole stack leans on:
// freezing moves where the rows live, never what they say.
package repro

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/evaluate"
	"repro/internal/graph"
	"repro/internal/scheme/table"
	"repro/internal/shortest"
)

// arcSnapshot records one vertex's arcs as seen through ForEachArc.
type arcSnapshot struct {
	ports     []graph.Port
	neighbors []graph.NodeID
	backs     []graph.Port
}

func snapshotArcs(g *graph.Graph) []arcSnapshot {
	snap := make([]arcSnapshot, g.Order())
	for u := 0; u < g.Order(); u++ {
		ui := graph.NodeID(u)
		s := &snap[u]
		g.ForEachArc(ui, func(p graph.Port, v graph.NodeID) {
			s.ports = append(s.ports, p)
			s.neighbors = append(s.neighbors, v)
			s.backs = append(s.backs, g.BackPort(ui, p))
		})
	}
	return snap
}

// checkAccessorsAgree asserts Arcs/BackPorts match a ForEachArc snapshot
// arc-for-arc, and that Neighbor/BackPort agree with both.
func checkAccessorsAgree(t *testing.T, name string, g *graph.Graph, snap []arcSnapshot) {
	t.Helper()
	for u := 0; u < g.Order(); u++ {
		ui := graph.NodeID(u)
		arcs := g.Arcs(ui)
		backs := g.BackPorts(ui)
		s := snap[u]
		if len(arcs) != len(s.neighbors) || len(backs) != len(s.backs) || len(arcs) != g.Degree(ui) {
			t.Fatalf("%s: vertex %d: slice lengths %d/%d vs snapshot %d (degree %d)",
				name, u, len(arcs), len(backs), len(s.neighbors), g.Degree(ui))
		}
		for i := range arcs {
			p := graph.Port(i + 1)
			if s.ports[i] != p {
				t.Fatalf("%s: vertex %d: ForEachArc yielded port %d at position %d", name, u, s.ports[i], i)
			}
			if arcs[i] != s.neighbors[i] || arcs[i] != g.Neighbor(ui, p) {
				t.Fatalf("%s: vertex %d port %d: Arcs=%d snapshot=%d Neighbor=%d",
					name, u, p, arcs[i], s.neighbors[i], g.Neighbor(ui, p))
			}
			if backs[i] != s.backs[i] || backs[i] != g.BackPort(ui, p) {
				t.Fatalf("%s: vertex %d port %d: BackPorts=%d snapshot=%d BackPort=%d",
					name, u, p, backs[i], s.backs[i], g.BackPort(ui, p))
			}
		}
	}
}

// TestCSRAccessorsAgreeEverywhere runs the agreement property on every
// conformance graph family, across the whole freeze lifecycle.
func TestCSRAccessorsAgreeEverywhere(t *testing.T) {
	for _, f := range confFamilies() {
		g := f.g
		before := snapshotArcs(g)
		checkAccessorsAgree(t, f.name+"/pre-freeze", g, before)

		g.Freeze()
		if !g.Frozen() {
			t.Fatalf("%s: Freeze did not set the frozen flag", f.name)
		}
		checkAccessorsAgree(t, f.name+"/frozen", g, before)
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: frozen graph fails Validate: %v", f.name, err)
		}
		g.Freeze() // idempotent
		checkAccessorsAgree(t, f.name+"/refrozen", g, before)

		// Post-freeze mutation: append a fresh vertex and edge; the row
		// views must reallocate without corrupting the arena neighbors.
		w := g.AddNode()
		g.AddEdge(0, w)
		if g.Frozen() {
			t.Fatalf("%s: mutation left the graph marked frozen", f.name)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: post-freeze mutation fails Validate: %v", f.name, err)
		}
		after := snapshotArcs(g)
		checkAccessorsAgree(t, f.name+"/mutated", g, after)
		arcs0 := g.Arcs(0)
		if arcs0[len(arcs0)-1] != w {
			t.Fatalf("%s: new arc 0->%d not visible through Arcs", f.name, w)
		}
		for i, v := range before[0].neighbors {
			if arcs0[i] != v {
				t.Fatalf("%s: post-freeze append moved old arc %d of vertex 0", f.name, i)
			}
		}

		g.Freeze() // re-compact the mutated graph
		checkAccessorsAgree(t, f.name+"/recompacted", g, after)
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: re-frozen graph fails Validate: %v", f.name, err)
		}
	}
}

// TestCSRPermutePortsAfterFreeze pins PermutePorts' interaction with the
// arena: relabeling a frozen vertex must keep back pointers mutually
// consistent (Validate) and clear the frozen flag.
func TestCSRPermutePortsAfterFreeze(t *testing.T) {
	for _, f := range confFamilies() {
		g := f.g
		g.Freeze()
		d := g.Degree(0)
		if d < 2 {
			continue
		}
		perm := make([]int, d)
		for i := range perm {
			perm[i] = (i + 1) % d // rotate ports
		}
		g.PermutePorts(0, perm)
		if g.Frozen() {
			t.Fatalf("%s: PermutePorts left the graph marked frozen", f.name)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: PermutePorts on frozen graph breaks invariants: %v", f.name, err)
		}
	}
}

// TestEvaluatorWorkerCountsStreamRace routes a shared frozen graph
// through the streaming evaluator at several worker counts — under
// `go test -race` (the CI configuration) this doubles as the data-race
// canary for concurrent CSR reads — and asserts the reports are
// bit-identical across worker counts, dense vs stream.
func TestEvaluatorWorkerCountsStreamRace(t *testing.T) {
	for _, f := range confFamilies() {
		g := f.g
		apsp := shortest.NewAPSPParallel(g, 0)
		s, err := table.New(g, apsp, table.MinPort)
		if err != nil {
			t.Fatalf("%s: tables: %v", f.name, err)
		}
		ref, err := evaluate.Stretch(g, s, apsp, evaluate.Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s: reference run: %v", f.name, err)
		}
		for _, workers := range []int{2, 4, 8} {
			for _, opt := range []evaluate.Options{
				{Workers: workers, DistMode: evaluate.DistDense},
				{Workers: workers, DistMode: evaluate.DistStream},
				// The batched stream backend serves 64-row prefetch blocks
				// and the evaluator claims 64-row-aligned chunks — same
				// report, and under -race the concurrent-claim canary for
				// the MS-BFS readers.
				{Workers: workers, DistMode: evaluate.DistStream, Kernel: shortest.KernelBatch},
			} {
				rep, err := evaluate.Stretch(g, s, apsp, opt)
				if err != nil {
					t.Fatalf("%s: workers=%d mode=%s kernel=%s: %v", f.name, workers, opt.DistMode, opt.Kernel, err)
				}
				if *rep != *ref {
					t.Fatalf("%s: workers=%d mode=%s kernel=%s report differs from serial reference:\n%+v\nvs\n%+v",
						f.name, workers, opt.DistMode, opt.Kernel, rep, ref)
				}
			}
		}
	}
}

// TestAPSPParallelMatchesSerial pins the table-construction contract
// after the kernel switch: NewAPSPParallel (whose auto kernel now
// resolves to the MS-BFS batch) stays bit-identical to the serial
// scalar NewAPSP at every worker count, on every conformance family —
// and so does each explicit kernel through NewAPSPWith.
func TestAPSPParallelMatchesSerial(t *testing.T) {
	for _, f := range confFamilies() {
		g := f.g
		ref := shortest.NewAPSP(g)
		check := func(label string, a *shortest.APSP) {
			t.Helper()
			for u := 0; u < g.Order(); u++ {
				if !reflect.DeepEqual(a.Row(graph.NodeID(u)), ref.Row(graph.NodeID(u))) {
					t.Fatalf("%s: %s: row %d differs from serial NewAPSP", f.name, label, u)
				}
			}
		}
		for _, w := range []int{1, 3, 8} {
			check(fmt.Sprintf("parallel workers=%d", w), shortest.NewAPSPParallel(g, w))
			for _, k := range []shortest.Kernel{shortest.KernelScalar, shortest.KernelBatch} {
				check(fmt.Sprintf("kernel=%s workers=%d", k, w),
					shortest.NewAPSPWith(g, shortest.APSPOptions{Workers: w, Kernel: k}))
			}
		}
	}
}
