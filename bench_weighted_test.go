// Weighted-kernel benchmarks: the Dijkstra hot loops the weighted metric
// funnels through — single-row traversal with caller-owned scratch,
// weighted all-pairs table construction (serial and worker-pool), and
// the weighted streaming evaluator that composes them. CI archives these
// as BENCH_weighted.json (see DESIGN.md "Bench trajectory") next to the
// core and evaluator suites:
//
//	go test -run '^$' -bench 'BenchmarkDijkstra|BenchmarkWeightedAPSP|BenchmarkWeightedEvaluateStreaming' \
//	    -benchtime 1x . | go run ./cmd/benchjson > BENCH_weighted.json
//
// The graphs are the same seeded random connected family the core suite
// sweeps, under symmetric integer costs uniform on [1, 16].
package repro

import (
	"fmt"
	"testing"

	"repro/internal/evaluate"
	"repro/internal/graph"
	"repro/internal/scheme/table"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

func benchWeights(g *graph.Graph) shortest.Weights {
	return shortest.RandomWeights(g, 16, xrand.New(2))
}

// BenchmarkDijkstra measures one single-source weighted traversal with
// caller-owned scratch — the per-row cost of the weighted streaming
// backends, the Dijkstra analogue of BenchmarkBFS.
func BenchmarkDijkstra(b *testing.B) {
	for _, n := range []int{2048, 4096} {
		g := benchGraph(n)
		w := benchWeights(g)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var dist []int32
			var pq shortest.DijkstraHeap
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dist, pq = shortest.DijkstraInto(g, w, graph.NodeID(i%n), dist, pq)
			}
			_ = dist
		})
	}
}

// BenchmarkWeightedAPSP measures weighted all-pairs table construction,
// serial and worker-pool, mirroring BenchmarkAPSP.
func BenchmarkWeightedAPSP(b *testing.B) {
	for _, n := range []int{512, 2048} {
		g := benchGraph(n)
		w := benchWeights(g)
		b.Run(fmt.Sprintf("serial/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := shortest.NewWeightedAPSP(g, w); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("parallel/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := shortest.NewWeightedAPSPParallel(g, w, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWeightedEvaluateStreaming measures the weighted streaming
// all-pairs evaluator — per-worker Dijkstra row recomputation under
// minimum-cost tables, the workload of the E19 sweep. The sampled
// sub-benchmark claims every source row so the row recomputation cost
// stays fully represented while the wall time stays CI-friendly.
func BenchmarkWeightedEvaluateStreaming(b *testing.B) {
	const n = 2048
	g := benchGraph(n)
	w := benchWeights(g)
	s, err := table.NewWeighted(g, w, nil, table.MinPort)
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name   string
		sample int
	}{
		{"sampled256k", 1 << 18},
		{"exhaustive", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			opt := evaluate.Options{DistMode: evaluate.DistStream, Sample: bc.sample, Seed: 1}
			for i := 0; i < b.N; i++ {
				rep, err := evaluate.WeightedStretch(g, s, w, nil, opt)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Pairs == 0 {
					b.Fatal("no pairs measured")
				}
			}
		})
	}
}
