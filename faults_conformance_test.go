// Fault-repair conformance matrix: for every conformance family, kill a
// connectivity-preserving batch of seeded edges and pin the incremental
// repair paths (dirty-set APSP refresh + table/landmark Repair) against
// a from-scratch rebuild on the post-fault graph. "Bit-identical" is
// checked at full strength: refreshed distance rows, encoded wire bytes,
// exhaustive evaluation reports and memory reports must all be equal —
// the acceptance bar of the dynamic-topology milestone.
package repro

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/evaluate"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/scheme/landmark"
	"repro/internal/scheme/table"
	"repro/internal/schemeio"
	"repro/internal/shortest"
)

// killPlan returns a connectivity-preserving edge-kill plan of roughly
// frac of the family's edges (at least 1), or nil when the family has no
// removable edge at all — on a tree every edge is a bridge, so the
// repairable-fault matrix is vacuous there (the measurement matrix still
// covers trees with unconstrained kills).
func killPlan(t *testing.T, g *graph.Graph, frac float64, seed uint64) *faults.Plan {
	t.Helper()
	k := int(frac * float64(g.Size()))
	if k < 1 {
		k = 1
	}
	for ; k >= 1; k-- {
		plan, err := faults.NewPlan(g, faults.Options{
			Mode: faults.KillEdges, Count: k, Seed: seed, KeepConnected: true,
		})
		if err == nil {
			return plan
		}
	}
	return nil
}

// assertSchemesIdentical pins every observable of the repaired scheme
// against the from-scratch rebuild: wire bytes, exhaustive stretch
// report, memory report.
func assertSchemesIdentical(t *testing.T, fam string, g *graph.Graph, apsp *shortest.APSP, repaired, fresh routing.Scheme) {
	t.Helper()
	encR, err := schemeio.Encode(g, repaired)
	if err != nil {
		t.Fatalf("%s: encode repaired: %v", fam, err)
	}
	encF, err := schemeio.Encode(g, fresh)
	if err != nil {
		t.Fatalf("%s: encode fresh: %v", fam, err)
	}
	if !bytes.Equal(encR.Bytes, encF.Bytes) {
		t.Fatalf("%s: repaired scheme encodes to different bytes than rebuild", fam)
	}
	opt := evaluate.Options{}
	repR, err := evaluate.Stretch(g, repaired, apsp, opt)
	if err != nil {
		t.Fatalf("%s: evaluate repaired: %v", fam, err)
	}
	repF, err := evaluate.Stretch(g, fresh, apsp, opt)
	if err != nil {
		t.Fatalf("%s: evaluate fresh: %v", fam, err)
	}
	if !reflect.DeepEqual(repR, repF) {
		t.Fatalf("%s: evaluation reports differ:\nrepaired: %+v\nfresh:    %+v", fam, repR, repF)
	}
	memR := evaluate.Memory(g, repaired, opt)
	memF := evaluate.Memory(g, fresh, opt)
	if !reflect.DeepEqual(memR, memF) {
		t.Fatalf("%s: memory reports differ", fam)
	}
}

// TestFaultRepairTableBitIdentical sweeps the conformance families under
// both table policies.
func TestFaultRepairTableBitIdentical(t *testing.T) {
	for _, f := range confFamilies() {
		for _, pol := range []table.Policy{table.MinPort, table.RunGreedy} {
			base := f.g.Clone()
			plan := killPlan(t, base, 0.08, 0xfa017+uint64(pol))
			if plan == nil {
				continue // every edge is a bridge (tree family)
			}

			// Repair path: scheme built pre-fault on the working graph.
			work := base.Clone()
			apsp := shortest.NewAPSP(work)
			sch, err := table.New(work, apsp, pol)
			if err != nil {
				t.Fatalf("%s: build: %v", f.name, err)
			}
			for _, e := range plan.Edges {
				work.RemoveEdge(e[0], e[1])
			}
			work.Freeze()
			dirty := faults.DirtyRoots(apsp, plan.Edges)
			apsp.RefreshRows(work, dirty)
			changed, err := sch.Repair(apsp, dirty, pol)
			if err != nil {
				t.Fatalf("%s: repair: %v", f.name, err)
			}

			// Rebuild path: from scratch on an identically faulted clone.
			faulted := base.Clone()
			plan.Apply(faulted)
			apspF := shortest.NewAPSP(faulted)
			for v := 0; v < faulted.Order(); v++ {
				if !reflect.DeepEqual(apsp.Row(graph.NodeID(v)), apspF.Row(graph.NodeID(v))) {
					t.Fatalf("%s: refreshed APSP row %d differs from rebuild (dirty set unsound?)", f.name, v)
				}
			}
			fresh, err := table.New(faulted, apspF, pol)
			if err != nil {
				t.Fatalf("%s: rebuild: %v", f.name, err)
			}
			assertSchemesIdentical(t, f.name, work, apsp, sch, fresh)
			if len(plan.Edges) > 0 && len(changed) == 0 && len(dirty) > 0 {
				// Not an invariant violation (a removal can leave every
				// chosen port intact), but on these families at 8% kills
				// at least one row always moves; a silent no-op would mean
				// the repair skipped everything.
				t.Logf("%s: repair changed no rows (dirty=%d)", f.name, len(dirty))
			}
		}
	}
}

// TestFaultRepairLandmarkBitIdentical does the same for the landmark
// scheme, whose repair touches nearest/lmPort/cluster/pathPorts.
func TestFaultRepairLandmarkBitIdentical(t *testing.T) {
	for _, f := range confFamilies() {
		base := f.g.Clone()
		plan := killPlan(t, base, 0.08, 0x1a5d)
		if plan == nil {
			continue // every edge is a bridge (tree family)
		}

		work := base.Clone()
		apsp := shortest.NewAPSP(work)
		sch, err := landmark.New(work, apsp, landmark.Options{Seed: 17})
		if err != nil {
			t.Fatalf("%s: build: %v", f.name, err)
		}
		for _, e := range plan.Edges {
			work.RemoveEdge(e[0], e[1])
		}
		work.Freeze()
		dirty := faults.DirtyRoots(apsp, plan.Edges)
		apsp.RefreshRows(work, dirty)
		if err := sch.Repair(apsp, dirty); err != nil {
			t.Fatalf("%s: repair: %v", f.name, err)
		}

		faulted := base.Clone()
		plan.Apply(faulted)
		apspF := shortest.NewAPSP(faulted)
		fresh, err := landmark.New(faulted, apspF, landmark.Options{Seed: 17})
		if err != nil {
			t.Fatalf("%s: rebuild: %v", f.name, err)
		}
		assertSchemesIdentical(t, f.name, work, apsp, sch, fresh)
	}
}

// TestFaultMeasureUnrepaired pins the measurement harness itself: an
// UNREPAIRED table scheme on a faulted graph must fail exactly at the
// walks that cross removed edges, classified as dead-port, and must
// detect every disconnection when kills are free to split the graph.
func TestFaultMeasureUnrepaired(t *testing.T) {
	for _, f := range confFamilies() {
		base := f.g.Clone()
		apsp := shortest.NewAPSP(base)
		sch, err := table.New(base, apsp, table.MinPort)
		if err != nil {
			t.Fatalf("%s: build: %v", f.name, err)
		}
		pre, err := faults.Measure(base, sch, apsp, 0)
		if err != nil {
			t.Fatalf("%s: pre measure: %v", f.name, err)
		}
		if pre.DeliveryRate() != 1 || pre.Disconnected != 0 {
			t.Fatalf("%s: pre-fault sweep not clean: %+v", f.name, pre)
		}
		// Unconstrained kills: disconnection is allowed and must be
		// detected, never falsely delivered.
		plan, err := faults.NewPlan(base, faults.Options{
			Mode: faults.KillEdges, Count: 3, Seed: 0xdead, KeepConnected: false,
		})
		if err != nil {
			t.Fatalf("%s: plan: %v", f.name, err)
		}
		for _, e := range plan.Edges {
			base.RemoveEdge(e[0], e[1])
		}
		base.Freeze()
		post, err := faults.Measure(base, sch, shortest.NewAPSP(base), 0)
		if err != nil {
			t.Fatalf("%s: post measure: %v", f.name, err)
		}
		if post.FalseDeliver != 0 {
			t.Fatalf("%s: %d disconnected pairs claimed delivered", f.name, post.FalseDeliver)
		}
		if post.DetectionRate() != 1 {
			t.Fatalf("%s: missed disconnections: %+v", f.name, post)
		}
		failed := 0
		for _, c := range post.Failures {
			failed += c
		}
		if failed != post.Pairs-post.Delivered {
			t.Fatalf("%s: failure classification does not cover all failures: %+v", f.name, post)
		}
		if post.Delivered < post.Connected {
			// Stale tables on survived pairs fail only by walking into a
			// hole: dead-port must dominate the classification.
			if post.Failures[routing.ReasonDeadPort] == 0 {
				t.Fatalf("%s: undelivered survivors but no dead-port failures: %+v", f.name, post)
			}
		}
	}
}
