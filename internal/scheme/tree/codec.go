package tree

import (
	"fmt"

	"repro/internal/coding"
	"repro/internal/graph"
)

// Wire codec for the tree interval scheme (schemeio kind "tree"). The
// payload is the root, the DFS label permutation (shared section), and
// per router exactly the state LocalBits meters: the parent port plus
// one (lo, hi) DFS interval per child port. Subtree sizes are not
// serialized — they are recomputed as 1 + Σ child interval widths, the
// identity that holds on every valid encoding.

// EncodePayload appends the wire payload and returns per-router payload
// bits (parent port + child intervals; the shared dfn permutation is
// not attributed) plus the absolute bit offset of router 0's span —
// the per-router sections follow the root and dfn contiguously.
func (s *Scheme) EncodePayload(w *coding.BitWriter) (rb []int, routerStart int) {
	n := len(s.dfn)
	wn := coding.BitsFor(uint64(n))
	w.WriteUvarint(uint64(s.root))
	for v := 0; v < n; v++ {
		w.WriteBits(uint64(s.dfn[v]), wn)
	}
	routerStart = w.Len()
	rb = make([]int, n)
	for x := 0; x < n; x++ {
		start := w.Len()
		deg := s.g.Degree(graph.NodeID(x))
		wp := coding.BitsFor(uint64(deg + 1))
		w.WriteBits(uint64(s.parentPort[x]), wp)
		for k := 0; k < deg; k++ {
			if graph.Port(k+1) == s.parentPort[x] {
				continue
			}
			w.WriteBits(uint64(s.lo[x][k]), wn)
			w.WriteBits(uint64(s.hi[x][k]), wn)
		}
		rb[x] = w.Len() - start
	}
	return rb, routerStart
}

// DecodePayload parses a payload written by EncodePayload against the
// tree the scheme was built on. The dfn vector must be a permutation,
// parent ports must be valid (and absent exactly at the root), and
// child intervals must satisfy lo <= hi < n — malformed bytes error,
// never panic, and all allocations are sized by g.
func DecodePayload(r *coding.BitReader, g *graph.Graph) (*Scheme, error) {
	n := g.Order()
	wn := coding.BitsFor(uint64(n))
	rootU, err := r.ReadUvarint()
	if err != nil {
		return nil, fmt.Errorf("tree: root: %w", err)
	}
	if rootU >= uint64(n) { // uint64 compare: int() first would wrap 2^63 negative past the bound
		return nil, fmt.Errorf("tree: root %d out of range [0,%d)", rootU, n)
	}
	s := &Scheme{
		g: g, root: graph.NodeID(rootU),
		dfn:        make([]int32, n),
		size:       make([]int32, n),
		lo:         make([][]int32, n),
		hi:         make([][]int32, n),
		parentPort: make([]graph.Port, n),
		bits:       make([]int, n),
		hdr:        make([]header, n),
	}
	for lab := range s.hdr {
		s.hdr[lab] = header(lab)
	}
	seen := make([]bool, n)
	for v := 0; v < n; v++ {
		lab, err := r.ReadBits(wn)
		if err != nil {
			return nil, fmt.Errorf("tree: dfn of %d: %w", v, err)
		}
		// Compare in uint64: the label's bit width is derived from n, but
		// the bound must not depend on that arithmetic staying below 63.
		if lab >= uint64(n) || seen[lab] {
			return nil, fmt.Errorf("tree: dfn is not a permutation (vertex %d)", v)
		}
		seen[lab] = true
		s.dfn[v] = int32(lab)
	}
	for x := 0; x < n; x++ {
		deg := g.Degree(graph.NodeID(x))
		wp := coding.BitsFor(uint64(deg + 1))
		pp, err := r.ReadBits(wp)
		if err != nil {
			return nil, fmt.Errorf("tree: parent port of %d: %w", x, err)
		}
		if int(pp) > deg {
			return nil, fmt.Errorf("tree: parent port %d of %d exceeds degree %d", pp, x, deg)
		}
		if (pp == 0) != (graph.NodeID(x) == s.root) {
			return nil, fmt.Errorf("tree: vertex %d has parent port %d but root is %d", x, pp, s.root)
		}
		s.parentPort[x] = graph.Port(pp)
		s.lo[x] = make([]int32, deg)
		s.hi[x] = make([]int32, deg)
		size := int32(1)
		nChild := 0
		for k := 0; k < deg; k++ {
			if graph.Port(k+1) == s.parentPort[x] {
				s.lo[x][k], s.hi[x][k] = -1, -1
				continue
			}
			lo, err := r.ReadBits(wn)
			if err != nil {
				return nil, fmt.Errorf("tree: interval at %d port %d: %w", x, k+1, err)
			}
			hi, err := r.ReadBits(wn)
			if err != nil {
				return nil, fmt.Errorf("tree: interval at %d port %d: %w", x, k+1, err)
			}
			if int(hi) >= n || lo > hi {
				return nil, fmt.Errorf("tree: bad interval [%d,%d] at %d port %d", lo, hi, x, k+1)
			}
			s.lo[x][k], s.hi[x][k] = int32(lo), int32(hi)
			size += int32(hi-lo) + 1
			// On every valid encoding, child subtrees partition a subset
			// of the n labels: a size past n can only come from a corrupt
			// blob, so reject it as soon as it shows instead of shipping
			// garbage routing state (checking per child also keeps the
			// int32 accumulation far from overflow).
			if size > int32(n) {
				return nil, fmt.Errorf("tree: subtree size %d at %d exceeds order %d", size, x, n)
			}
			nChild++
		}
		s.size[x] = size
		s.bits[x] = s.localBits(deg, nChild)
	}
	return s, nil
}
