package tree

import (
	"testing"
	"testing/quick"

	"repro/internal/coding"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/xrand"
)

func TestTreeRoutingShortestProperty(t *testing.T) {
	check := func(seed uint64, nn uint8, rootSel uint8) bool {
		n := int(nn%60) + 1
		g := gen.RandomTree(n, xrand.New(seed))
		root := graph.NodeID(int(rootSel) % n)
		s, err := New(g, root)
		if err != nil {
			return false
		}
		rep, err := routing.MeasureStretch(g, s, nil)
		if err != nil {
			return false
		}
		return n == 1 || rep.Max == 1.0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeRejectsCycle(t *testing.T) {
	if _, err := New(gen.Cycle(5), 0); err == nil {
		t.Fatal("cycle accepted as a tree")
	}
}

func TestTreeRejectsForest(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	// 3 vertices... this forest has n=4, edges=2 != 3.
	if _, err := New(g, 0); err == nil {
		t.Fatal("forest accepted as a tree")
	}
}

func TestDFSLabelsAreContiguousIntervals(t *testing.T) {
	g := gen.RandomTree(40, xrand.New(8))
	s, err := New(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Every vertex label must be unique and in [0, n).
	seen := make([]bool, 40)
	for v := 0; v < 40; v++ {
		l := s.Label(graph.NodeID(v))
		if l < 0 || l >= 40 || seen[l] {
			t.Fatalf("bad DFS label %d at vertex %d", l, v)
		}
		seen[l] = true
	}
}

func TestPathTreeMemory(t *testing.T) {
	// On a path, every router keeps O(1) intervals: bits = O(log n).
	g := gen.Path(128)
	s, err := New(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep := routing.MeasureMemory(g, s)
	// own interval (2*8) + parent port (1) + one child interval (2*8).
	if rep.LocalBits > 40 {
		t.Fatalf("path router needs %d bits, want O(log n) ~ <= 40", rep.LocalBits)
	}
}

func TestStarTreeMemory(t *testing.T) {
	// The center of a star keeps one interval per leaf: Θ(d log n), the
	// paper's O(d log n) bound for interval routing with d = n-1.
	n := 64
	g := gen.Star(n)
	s, err := New(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	wn := coding.BitsFor(uint64(n))
	center := s.LocalBits(0)
	if center < (n-1)*2*wn {
		t.Fatalf("star center stores %d bits, expected at least %d", center, (n-1)*2*wn)
	}
	leaf := s.LocalBits(1)
	if leaf > 4*wn {
		t.Fatalf("star leaf stores %d bits, expected O(log n)", leaf)
	}
}

func TestSingletonTree(t *testing.T) {
	g := graph.New(1)
	s, err := New(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := routing.Validate(g, s); err != nil {
		t.Fatal(err)
	}
}

func TestCaterpillarRouting(t *testing.T) {
	g := gen.Caterpillar(10, 15)
	s, err := New(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := routing.Validate(g, s); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryTreeRouting(t *testing.T) {
	g := gen.CompleteBinaryTree(31)
	s, err := New(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := routing.MeasureStretch(g, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Max != 1.0 {
		t.Fatalf("binary tree stretch %v", rep.Max)
	}
}
