// Package tree implements shortest-path interval routing on trees
// (Santoro–Khatib [14] / van Leeuwen–Tan [15] in the paper's reference
// list): vertices are renamed by DFS preorder so that every subtree is a
// contiguous interval, and each router keeps one interval per child port.
// This realizes the paper's Section 1 claim that acyclic graphs admit
// routing functions with MEM_local = O(d log n) using one interval per
// arc.
package tree

import (
	"fmt"

	"repro/internal/coding"
	"repro/internal/graph"
	"repro/internal/routing"
)

// Scheme is a 1-interval routing scheme on a tree.
type Scheme struct {
	g    *graph.Graph
	root graph.NodeID
	dfn  []int32 // DFS preorder number of each vertex
	size []int32 // subtree size
	// child[x][k] = interval of port k+1 (start,end inclusive DFS numbers),
	// or (-1,-1) when port k+1 leads to the parent.
	lo, hi     [][]int32
	parentPort []graph.Port
	bits       []int
	hdr        []header // hdr[lab] = header(lab); Init hands out pointers, so no per-route boxing
}

// New builds the scheme for the given tree, rooted at root. It fails if g
// is not a tree (n-1 edges, connected).
func New(g *graph.Graph, root graph.NodeID) (*Scheme, error) {
	n := g.Order()
	if g.Size() != n-1 {
		return nil, fmt.Errorf("tree: graph has %d edges, a tree on %d vertices needs %d", g.Size(), n, n-1)
	}
	if !g.Connected() {
		return nil, graph.ErrNotConnected
	}
	g.Freeze()
	s := &Scheme{
		g: g, root: root,
		dfn:        make([]int32, n),
		size:       make([]int32, n),
		lo:         make([][]int32, n),
		hi:         make([][]int32, n),
		parentPort: make([]graph.Port, n),
		hdr:        make([]header, n),
	}
	for lab := range s.hdr {
		s.hdr[lab] = header(lab)
	}
	for i := range s.dfn {
		s.dfn[i] = -1
	}
	// Iterative DFS assigning preorder numbers and subtree sizes.
	type frame struct {
		node graph.NodeID
		from graph.Port // port at node leading back to parent (NoPort at root)
		next graph.Port // next port to explore
	}
	counter := int32(0)
	stack := []frame{{node: root, from: graph.NoPort, next: 1}}
	s.dfn[root] = counter
	counter++
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if int(f.next) > g.Degree(f.node) {
			// Done with this node: subtree size is counter - dfn.
			s.size[f.node] = counter - s.dfn[f.node]
			stack = stack[:len(stack)-1]
			continue
		}
		p := f.next
		f.next++
		if p == f.from {
			continue
		}
		v := g.Neighbor(f.node, p)
		if s.dfn[v] != -1 {
			return nil, fmt.Errorf("tree: cycle detected at %d", v)
		}
		s.dfn[v] = counter
		counter++
		stack = append(stack, frame{node: v, from: g.BackPort(f.node, p), next: 1})
	}
	// Fill per-port intervals.
	for x := 0; x < n; x++ {
		arcs := g.Arcs(graph.NodeID(x))
		d := len(arcs)
		s.lo[x] = make([]int32, d)
		s.hi[x] = make([]int32, d)
		for k, v := range arcs {
			if s.dfn[v] > s.dfn[x] && s.dfn[v] < s.dfn[x]+s.size[x] {
				// v is a child: its subtree is [dfn[v], dfn[v]+size[v]-1].
				s.lo[x][k] = s.dfn[v]
				s.hi[x][k] = s.dfn[v] + s.size[v] - 1
			} else {
				s.lo[x][k] = -1
				s.hi[x][k] = -1
				s.parentPort[x] = graph.Port(k + 1)
			}
		}
	}
	// Local code: own interval (2 values) + per child port its interval
	// (2 values each) + the parent port index. Fixed widths of
	// ceil(log2 n) and ceil(log2 (deg+1)).
	s.bits = make([]int, n)
	for x := 0; x < n; x++ {
		d := g.Degree(graph.NodeID(x))
		nChild := 0
		for k := 0; k < d; k++ {
			if s.lo[x][k] >= 0 {
				nChild++
			}
		}
		s.bits[x] = s.localBits(d, nChild)
	}
	return s, nil
}

// localBits computes the metered local code size of a router with the
// given degree and child count — one formula shared by New and the
// wire decoder, so the meter and a decoded scheme can never drift
// apart.
func (s *Scheme) localBits(deg, nChild int) int {
	wn := coding.BitsFor(uint64(len(s.dfn)))
	return 2*wn + coding.BitsFor(uint64(deg+1)) + nChild*2*wn
}

// Name implements routing.Scheme.
func (s *Scheme) Name() string { return "tree-interval" }

// Label returns the DFS preorder label the scheme assigned to v; headers
// carry labels, and external callers (the generic interval scheme, the
// landmark scheme) reuse this relabeling.
func (s *Scheme) Label(v graph.NodeID) int32 { return s.dfn[v] }

type header int32 // DFS label of the destination; carried as *header to avoid boxing

// Init implements routing.Function.
func (s *Scheme) Init(src, dst graph.NodeID) routing.Header { return &s.hdr[s.dfn[dst]] }

// Port implements routing.Function: deliver on own label, descend into the
// child interval containing the label, otherwise climb to the parent.
func (s *Scheme) Port(x graph.NodeID, h routing.Header) graph.Port {
	lab := int32(*h.(*header))
	if lab == s.dfn[x] {
		return graph.NoPort
	}
	if lab > s.dfn[x] && lab < s.dfn[x]+s.size[x] {
		for k := range s.lo[x] {
			if lab >= s.lo[x][k] && lab <= s.hi[x][k] {
				return graph.Port(k + 1)
			}
		}
	}
	return s.parentPort[x]
}

// Next implements routing.Function.
func (s *Scheme) Next(x graph.NodeID, h routing.Header) routing.Header { return h }

// LocalBits implements routing.LocalCoder.
func (s *Scheme) LocalBits(x graph.NodeID) int { return s.bits[x] }

var _ routing.Scheme = (*Scheme)(nil)

// HeaderBits implements routing.HeaderSizer: the destination's DFS label.
func (s *Scheme) HeaderBits(h routing.Header) int {
	return coding.BitsFor(uint64(len(s.dfn)))
}
