// Package ecube implements dimension-order (e-cube) routing on the
// d-dimensional hypercube — the paper's Section 1 example of a graph
// family whose local memory requirement is only Θ(log n):
// MEM_local(H, 1) = O(log n) (Dally & Seitz [3] in the paper's reference
// list).
//
// The scheme relies on the dimension-aligned port labeling produced by
// gen.Hypercube (port i+1 flips bit i). Each router stores nothing but its
// own identifier: the next port is the lowest bit in which the current
// node differs from the destination, which the router computes from its
// id and the header. LocalBits is therefore exactly d = log2 n bits.
package ecube

import (
	"fmt"
	"math/bits"

	"repro/internal/graph"
	"repro/internal/routing"
)

// Scheme routes on the hypercube of dimension d.
type Scheme struct {
	d   int
	hdr []header // hdr[v] = header(v); Init hands out pointers, so no per-route boxing
}

// New returns an e-cube scheme for H_d whose order is g.Order() = 2^d.
// It verifies that g's port labeling is dimension-aligned, which is the
// contract the scheme's Θ(log n) memory depends on.
func New(g *graph.Graph, d int) (*Scheme, error) {
	if g.Order() != 1<<d {
		return nil, fmt.Errorf("ecube: graph order %d is not 2^%d", g.Order(), d)
	}
	for u := 0; u < g.Order(); u++ {
		if g.Degree(graph.NodeID(u)) != d {
			return nil, fmt.Errorf("ecube: vertex %d has degree %d, want %d", u, g.Degree(graph.NodeID(u)), d)
		}
		for bit := 0; bit < d; bit++ {
			want := graph.NodeID(u ^ (1 << bit))
			if got := g.Neighbor(graph.NodeID(u), graph.Port(bit+1)); got != want {
				return nil, fmt.Errorf("ecube: port %d at %d leads to %d, want bit-flip %d",
					bit+1, u, got, want)
			}
		}
	}
	s := &Scheme{d: d, hdr: make([]header, g.Order())}
	for v := range s.hdr {
		s.hdr[v] = header(v)
	}
	return s, nil
}

// Name implements routing.Scheme.
func (s *Scheme) Name() string { return "ecube" }

type header graph.NodeID // carried as *header to avoid boxing

// Init implements routing.Function: the header is the destination id.
func (s *Scheme) Init(src, dst graph.NodeID) routing.Header { return &s.hdr[dst] }

// Port implements routing.Function: correct the lowest differing bit.
func (s *Scheme) Port(x graph.NodeID, h routing.Header) graph.Port {
	diff := uint32(x) ^ uint32(graph.NodeID(*h.(*header)))
	if diff == 0 {
		return graph.NoPort
	}
	return graph.Port(bits.TrailingZeros32(diff) + 1)
}

// Next implements routing.Function.
func (s *Scheme) Next(x graph.NodeID, h routing.Header) routing.Header { return h }

// LocalBits implements routing.LocalCoder: the router stores its own d-bit
// identifier and nothing else.
func (s *Scheme) LocalBits(x graph.NodeID) int { return s.d }

var _ routing.Scheme = (*Scheme)(nil)

// HeaderBits implements routing.HeaderSizer: the destination identifier,
// d bits on the d-cube.
func (s *Scheme) HeaderBits(h routing.Header) int { return s.d }
