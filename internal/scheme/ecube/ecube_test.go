package ecube

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/xrand"
)

func TestEcubeShortestOnHypercubes(t *testing.T) {
	for d := 1; d <= 6; d++ {
		g := gen.Hypercube(d)
		s, err := New(g, d)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		rep, err := routing.MeasureStretch(g, s, nil)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if rep.Max != 1.0 {
			t.Fatalf("d=%d: e-cube stretch %v, want 1", d, rep.Max)
		}
	}
}

func TestEcubeLocalBitsLogN(t *testing.T) {
	// The paper's Section 1: MEM_local(H, 1) = Θ(log n). e-cube stores
	// exactly d = log2 n bits per router.
	for d := 2; d <= 8; d++ {
		g := gen.Hypercube(d)
		s, err := New(g, d)
		if err != nil {
			t.Fatal(err)
		}
		rep := routing.MeasureMemory(g, s)
		if rep.LocalBits != d {
			t.Fatalf("d=%d: LocalBits %d, want %d", d, rep.LocalBits, d)
		}
	}
}

func TestEcubeRejectsWrongOrder(t *testing.T) {
	g := gen.Cycle(6)
	if _, err := New(g, 3); err == nil {
		t.Fatal("accepted a non-hypercube order")
	}
}

func TestEcubeRejectsScrambledPorts(t *testing.T) {
	g := gen.Hypercube(3)
	r := xrand.New(1)
	// Scramble until some vertex's labeling actually changes.
	for u := 0; u < g.Order(); u++ {
		g.PermutePorts(graph.NodeID(u), r.Perm(3))
	}
	if _, err := New(g, 3); err == nil {
		t.Fatal("accepted a hypercube with scrambled ports")
	}
}

func TestEcubeDimensionOrder(t *testing.T) {
	// Routing from 000..0 to 111..1 must fix bits lowest-first.
	g := gen.Hypercube(3)
	s, err := New(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	hops, err := routing.Route(g, s, 0, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantNodes := []graph.NodeID{0, 1, 3, 7}
	if len(hops) != len(wantNodes) {
		t.Fatalf("path length %d, want %d", len(hops), len(wantNodes))
	}
	for i, h := range hops {
		if h.Node != wantNodes[i] {
			t.Fatalf("hop %d at %d, want %d", i, h.Node, wantNodes[i])
		}
	}
}

func TestTrivialCube(t *testing.T) {
	g := gen.Hypercube(0)
	s, err := New(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.LocalBits(0) != 0 {
		t.Fatal("H_0 router should need 0 bits")
	}
}
