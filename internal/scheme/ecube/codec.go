package ecube

import (
	"fmt"

	"repro/internal/coding"
	"repro/internal/graph"
)

// Wire codec for e-cube routing. The whole scheme is determined by the
// cube dimension, so the payload is a single varint; decoding re-runs
// New's verification that g really is the dimension-aligned hypercube
// (the contract the scheme's correctness rests on), so a blob pointed
// at the wrong graph errors instead of silently misrouting.

// EncodePayload appends the dimension and returns the per-router bits
// (all zero: routers store only their own id, which the graph carries)
// plus the bit offset past the dimension, where the empty spans sit.
func (s *Scheme) EncodePayload(w *coding.BitWriter) (rb []int, routerStart int) {
	w.WriteUvarint(uint64(s.d))
	return make([]int, len(s.hdr)), w.Len()
}

// DecodePayload parses the dimension and revalidates the labeling.
func DecodePayload(r *coding.BitReader, g *graph.Graph) (*Scheme, error) {
	d, err := r.ReadUvarint()
	if err != nil {
		return nil, fmt.Errorf("ecube: dimension: %w", err)
	}
	if d > 30 {
		return nil, fmt.Errorf("ecube: dimension %d out of range", d)
	}
	return New(g, int(d))
}
