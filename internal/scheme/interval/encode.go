package interval

import (
	"fmt"

	"repro/internal/coding"
	"repro/internal/graph"
)

// EncodeNode serializes router x's interval tables with the fixed coding
// strategy whose cost LocalBits reports:
//
//	own label                     ceil(log2 n) bits
//	per port (1..deg):            gamma(#intervals+1)
//	  per interval:               two labels of ceil(log2 n) bits each
//
// Intervals are cyclic [lo, hi] (wrapping past n-1); a destination label
// is routed on the unique port whose interval set covers it.
func (s *Scheme) EncodeNode(x graph.NodeID) []byte {
	w := coding.NewBitWriter()
	w.WriteBits(uint64(s.label[x]), coding.BitsFor(uint64(len(s.label))))
	s.writeIntervalSection(w, x)
	return w.Bytes()
}

// writeIntervalSection appends router x's per-port interval lists — the
// body shared by EncodeNode (the metered per-router code) and the wire
// codec's EncodePayload, so the two layouts cannot drift apart.
func (s *Scheme) writeIntervalSection(w *coding.BitWriter, x graph.NodeID) {
	wn := coding.BitsFor(uint64(len(s.label)))
	for k, cnt := range s.ivals[x] {
		ivs := s.intervalsOf(x, graph.Port(k+1))
		if len(ivs) != cnt {
			panic(fmt.Sprintf("interval: interval count mismatch at (%d, port %d): %d vs %d",
				x, k+1, len(ivs), cnt))
		}
		w.WriteGamma(uint64(cnt) + 1)
		for _, iv := range ivs {
			w.WriteBits(uint64(iv[0]), wn)
			w.WriteBits(uint64(iv[1]), wn)
		}
	}
}

// DecodeNode parses EncodeNode's output back into a per-label port
// assignment (NoPort at the router's own label). deg is the router's
// degree and n the graph order — both part of the fixed local structure.
func DecodeNode(buf []byte, n, deg int) (own int32, assign []graph.Port, err error) {
	wn := coding.BitsFor(uint64(n))
	r := coding.NewBitReader(buf, len(buf)*8)
	v, err := r.ReadBits(wn)
	if err != nil {
		return 0, nil, err
	}
	if v >= uint64(n) {
		return 0, nil, fmt.Errorf("interval: corrupt own label %d >= n=%d", v, n)
	}
	own = int32(v)
	assign = make([]graph.Port, n)
	for k := 0; k < deg; k++ {
		cnt, err := r.ReadGamma()
		if err != nil {
			return 0, nil, err
		}
		for i := uint64(0); i < cnt-1; i++ {
			lo64, err := r.ReadBits(wn)
			if err != nil {
				return 0, nil, err
			}
			hi64, err := r.ReadBits(wn)
			if err != nil {
				return 0, nil, err
			}
			lo, hi := int32(lo64), int32(hi64)
			if lo >= int32(n) || hi >= int32(n) {
				return 0, nil, fmt.Errorf("interval: corrupt endpoint %d/%d", lo, hi)
			}
			for lab := lo; ; lab = (lab + 1) % int32(n) {
				if lab != own {
					assign[lab] = graph.Port(k + 1)
				}
				if lab == hi {
					break
				}
			}
		}
	}
	return own, assign, nil
}

// intervalsOf reconstructs the cyclic intervals of labels assigned to
// port p at x: maximal runs in cyclic label order, with the router's own
// label absorbed into an adjacent run (it is a wildcard — see
// countIntervals).
func (s *Scheme) intervalsOf(x graph.NodeID, p graph.Port) [][2]int32 {
	n := int32(len(s.label))
	own := s.label[x]
	row := s.assign[x]
	inSet := func(lab int32) bool { return lab != own && row[lab] == p }
	covered := func(lab int32) bool { return inSet(lab) || lab == own }
	var out [][2]int32
	// Find run starts: covered positions whose predecessor (skipping the
	// wildcard backwards) is not in the set. Simpler: scan cyclically for
	// boundaries where inSet turns on, then extend through wildcards that
	// are followed by more set members.
	visited := make([]bool, n)
	for start := int32(0); start < n; start++ {
		if !inSet(start) || visited[start] {
			continue
		}
		// Walk backwards over covered positions to find the run head.
		lo := start
		for i := int32(0); i < n; i++ {
			prev := (lo - 1 + n) % n
			if covered(prev) && prev != start {
				lo = prev
			} else {
				break
			}
		}
		// Trim a leading wildcard that has no set member before it.
		if lo == own {
			lo = (lo + 1) % n
		}
		// Walk forward to the run tail.
		hi := start
		for i := int32(0); i < n; i++ {
			next := (hi + 1) % n
			if covered(next) && next != lo {
				hi = next
			} else {
				break
			}
		}
		if hi == own {
			hi = (hi - 1 + n) % n
		}
		// Mark set members inside [lo, hi] visited.
		for lab := lo; ; lab = (lab + 1) % n {
			if inSet(lab) {
				visited[lab] = true
			}
			if lab == hi {
				break
			}
		}
		out = append(out, [2]int32{lo, hi})
	}
	return out
}
