// Package interval implements the (k-)interval routing scheme (Santoro &
// Khatib, van Leeuwen & Tan — references [14,15] of the paper): every
// router groups the destination labels assigned to each outgoing arc into
// cyclic intervals and stores only the interval endpoints.
//
// The shortest-path interval routing scheme is the paper's running
// example of a UNIVERSAL scheme: for every network some assignment of
// destinations to shortest-path arcs exists (so the scheme applies to all
// graphs), but the number of intervals per arc — and hence the memory —
// degrades on adversarial topologies, which is exactly the regime
// Theorem 1 formalizes. On trees, outerplanar and unit circular-arc
// graphs one interval per arc suffices, giving the O(d log n) rows of
// Table 1.
package interval

import (
	"fmt"

	"repro/internal/coding"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/shortest"
)

// Policy selects how destinations are assigned to shortest-path arcs.
type Policy int

const (
	// MinPort assigns each destination the lowest shortest-path port.
	MinPort Policy = iota
	// RunGreedy walks destinations in cyclic label order and keeps the
	// previous port when it is still a shortest-path arc, merging runs and
	// hence reducing interval counts. This is the package's default and
	// the subject of an ablation benchmark.
	RunGreedy
)

// Scheme is an interval routing scheme instance.
type Scheme struct {
	g      *graph.Graph
	label  []int32 // label[v] = external label of vertex v
	invlab []graph.NodeID
	assign [][]graph.Port // assign[x][label] = port at x for that destination label
	ivals  [][]int        // ivals[x][k] = number of cyclic intervals of port k+1
	bits   []int
	hdr    []header // hdr[lab] = header(lab); Init hands out pointers, so no per-route boxing
}

// Options configure construction.
type Options struct {
	// Labels maps vertex id -> label; nil means identity. A good labeling
	// (DFS order on trees, outer-cycle order on outerplanar graphs) is
	// what turns many intervals into one.
	Labels []int32
	Policy Policy
}

// New builds a shortest-path interval routing scheme on g. apsp may be
// nil.
func New(g *graph.Graph, apsp *shortest.APSP, opt Options) (*Scheme, error) {
	if apsp == nil {
		apsp = shortest.NewAPSP(g)
	}
	if !apsp.Connected() {
		return nil, graph.ErrNotConnected
	}
	g.Freeze()
	n := g.Order()
	s := &Scheme{
		g:      g,
		label:  make([]int32, n),
		invlab: make([]graph.NodeID, n),
		assign: make([][]graph.Port, n),
		ivals:  make([][]int, n),
		bits:   make([]int, n),
		hdr:    make([]header, n),
	}
	for lab := range s.hdr {
		s.hdr[lab] = header(lab)
	}
	if opt.Labels != nil {
		if len(opt.Labels) != n {
			return nil, fmt.Errorf("interval: label vector has length %d, want %d", len(opt.Labels), n)
		}
		seen := make([]bool, n)
		for v, lab := range opt.Labels {
			if lab < 0 || int(lab) >= n || seen[lab] {
				return nil, fmt.Errorf("interval: labels are not a permutation (vertex %d)", v)
			}
			seen[lab] = true
			s.label[v] = lab
			s.invlab[lab] = graph.NodeID(v)
		}
	} else {
		for v := 0; v < n; v++ {
			s.label[v] = int32(v)
			s.invlab[v] = graph.NodeID(v)
		}
	}
	for x := 0; x < n; x++ {
		xi := graph.NodeID(x)
		arcs := g.Arcs(xi)
		row := make([]graph.Port, n) // indexed by label
		prev := graph.NoPort
		// Scan destinations in cyclic label order starting just after x's
		// own label, so RunGreedy merges across the natural wrap point.
		start := int(s.label[x]) + 1
		for t := 0; t < n; t++ {
			lab := int32((start + t) % n)
			v := s.invlab[lab]
			if v == xi {
				continue
			}
			// The d(·,v) column equals the contiguous row of v by symmetry.
			rowV := apsp.Row(v)
			dxv := rowV[x]
			chosen := graph.NoPort
			if opt.Policy == RunGreedy && prev != graph.NoPort {
				if rowV[arcs[prev-1]]+1 == dxv {
					chosen = prev
				}
			}
			if chosen == graph.NoPort {
				for i, w := range arcs {
					if rowV[w]+1 == dxv {
						chosen = graph.Port(i + 1)
						break
					}
				}
			}
			if chosen == graph.NoPort {
				return nil, fmt.Errorf("interval: no shortest first arc %d->%d", x, v)
			}
			row[lab] = chosen
			prev = chosen
		}
		s.assign[x] = row
		s.ivals[x] = countIntervals(row, s.label[x], len(arcs))
		s.bits[x] = s.localBits(x)
	}
	return s, nil
}

// localBits computes the metered local code size of router x from its
// interval counts: own label + per arc a gamma interval count (making
// the code self-delimiting) + two label endpoints per interval. One
// formula shared by New and the wire decoder, so the meter and a
// decoded scheme can never drift apart.
func (s *Scheme) localBits(x int) int {
	wn := coding.BitsFor(uint64(len(s.label)))
	b := wn
	for _, c := range s.ivals[x] {
		b += coding.GammaLen(uint64(c + 1))
		b += c * 2 * wn
	}
	return b
}

// countIntervals returns, per port (index k = port-1), the number of
// maximal cyclic runs of labels assigned to that port. The router's own
// label own acts as a wildcard joining its two neighbors' runs, since a
// message for the router itself is delivered before any table lookup.
func countIntervals(row []graph.Port, own int32, deg int) []int {
	n := len(row)
	counts := make([]int, deg)
	for k := 0; k < deg; k++ {
		p := graph.Port(k + 1)
		runs := 0
		inRun := false
		first := -1 // first non-wildcard position, for wrap handling
		last := -1
		for t := 0; t < n; t++ {
			lab := int32(t)
			if lab == own {
				continue // wildcard: does not break a run
			}
			if first == -1 {
				first = t
			}
			last = t
			// A run breaks when a non-wildcard label of another port
			// intervenes; wildcards in between were skipped above, but
			// positions are not consecutive then — that is fine: cyclic
			// intervals may cover the wildcard label.
			if row[lab] == p {
				if !inRun {
					runs++
					inRun = true
				}
			} else {
				inRun = false
			}
		}
		// Merge wrap-around: if both the first and last non-wildcard
		// labels belong to p, the two runs are one cyclic interval.
		if runs > 1 && first != -1 && row[first] == p && row[last] == p {
			runs--
		}
		counts[k] = runs
	}
	return counts
}

// Name implements routing.Scheme.
func (s *Scheme) Name() string { return "interval" }

type header int32 // destination label; carried as *header to avoid boxing

// Init implements routing.Function.
func (s *Scheme) Init(src, dst graph.NodeID) routing.Header { return &s.hdr[s.label[dst]] }

// Port implements routing.Function.
func (s *Scheme) Port(x graph.NodeID, h routing.Header) graph.Port {
	lab := int32(*h.(*header))
	if lab == s.label[x] {
		return graph.NoPort
	}
	return s.assign[x][lab]
}

// Next implements routing.Function.
func (s *Scheme) Next(x graph.NodeID, h routing.Header) routing.Header { return h }

// LocalBits implements routing.LocalCoder.
func (s *Scheme) LocalBits(x graph.NodeID) int { return s.bits[x] }

// MaxIntervalsPerArc returns the k of this k-IRS instance: the largest
// number of cyclic intervals any single arc needs.
func (s *Scheme) MaxIntervalsPerArc() int {
	m := 0
	for _, per := range s.ivals {
		for _, c := range per {
			if c > m {
				m = c
			}
		}
	}
	return m
}

// TotalIntervals returns the total interval count over all arcs — the
// global compactness measure of references [5,8] of the paper.
func (s *Scheme) TotalIntervals() int {
	t := 0
	for _, per := range s.ivals {
		for _, c := range per {
			t += c
		}
	}
	return t
}

// IntervalsAt returns the per-port interval counts of router x.
func (s *Scheme) IntervalsAt(x graph.NodeID) []int { return s.ivals[x] }

var _ routing.Scheme = (*Scheme)(nil)

// DFSLabels returns a DFS-preorder labeling of g (from vertex 0 following
// lowest ports first): the classical labeling that yields one interval
// per arc on trees and few intervals on tree-like graphs.
func DFSLabels(g *graph.Graph) []int32 {
	n := g.Order()
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	counter := int32(0)
	type frame struct {
		node graph.NodeID
		next graph.Port
	}
	stack := []frame{{node: 0, next: 1}}
	labels[0] = counter
	counter++
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if int(f.next) > g.Degree(f.node) {
			stack = stack[:len(stack)-1]
			continue
		}
		p := f.next
		f.next++
		v := g.Neighbor(f.node, p)
		if labels[v] != -1 {
			continue
		}
		labels[v] = counter
		counter++
		stack = append(stack, frame{node: v, next: 1})
	}
	return labels
}

// HeaderBits implements routing.HeaderSizer: interval headers carry only
// the destination label.
func (s *Scheme) HeaderBits(h routing.Header) int {
	return coding.BitsFor(uint64(len(s.label)))
}
