package interval

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/xrand"
)

func TestHypercube1IRSOneIntervalPerArc(t *testing.T) {
	for d := 1; d <= 7; d++ {
		g := gen.Hypercube(d)
		s, err := NewHypercube1IRS(g, d)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if k := s.MaxIntervalsPerArc(); k != 1 {
			t.Fatalf("d=%d: %d intervals per arc, want exactly 1", d, k)
		}
	}
}

func TestHypercube1IRSShortest(t *testing.T) {
	g := gen.Hypercube(5)
	s, err := NewHypercube1IRS(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := routing.MeasureStretch(g, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Max != 1.0 {
		t.Fatalf("hypercube 1-IRS stretch %v", rep.Max)
	}
}

func TestHypercube1IRSMemoryLogSquared(t *testing.T) {
	// d arcs × 1 interval × 2 log n bits = O(log^2 n) per router.
	d := 8
	g := gen.Hypercube(d)
	s, err := NewHypercube1IRS(g, d)
	if err != nil {
		t.Fatal(err)
	}
	mem := routing.MeasureMemory(g, s)
	if mem.LocalBits > 4*d*d+8*d {
		t.Fatalf("H_%d 1-IRS needs %d bits, want O(d^2)", d, mem.LocalBits)
	}
}

func TestHypercube1IRSRejectsWrongGraph(t *testing.T) {
	if _, err := NewHypercube1IRS(gen.Cycle(8), 3); err == nil {
		t.Fatal("cycle accepted as hypercube")
	}
	g := gen.Hypercube(3)
	g.PermutePorts(0, []int{1, 0, 2})
	if _, err := NewHypercube1IRS(g, 3); err == nil {
		t.Fatal("scrambled hypercube accepted")
	}
}

func TestEncodeDecodeNodeRoundTrip(t *testing.T) {
	check := func(seed uint64, nn uint8) bool {
		n := int(nn%25) + 3
		g := gen.RandomConnected(n, 0.25, xrand.New(seed))
		s, err := New(g, nil, Options{Policy: RunGreedy})
		if err != nil {
			return false
		}
		for x := 0; x < n; x++ {
			buf := s.EncodeNode(graph.NodeID(x))
			own, assign, err := DecodeNode(buf, n, g.Degree(graph.NodeID(x)))
			if err != nil {
				return false
			}
			if own != s.label[x] {
				return false
			}
			for lab := 0; lab < n; lab++ {
				if int32(lab) == own {
					continue
				}
				if assign[lab] != s.assign[x][lab] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeNodeSizeMatchesLocalBits(t *testing.T) {
	g := gen.RandomConnected(30, 0.2, xrand.New(6))
	s, err := New(g, nil, Options{Policy: RunGreedy})
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 30; x++ {
		buf := s.EncodeNode(graph.NodeID(x))
		bits := s.LocalBits(graph.NodeID(x))
		if len(buf) != (bits+7)/8 {
			t.Fatalf("node %d: %d bytes vs %d declared bits", x, len(buf), bits)
		}
	}
}

func TestHypercube1IRSEncodeRoundTrip(t *testing.T) {
	d := 5
	g := gen.Hypercube(d)
	s, err := NewHypercube1IRS(g, d)
	if err != nil {
		t.Fatal(err)
	}
	n := g.Order()
	for x := 0; x < n; x++ {
		buf := s.EncodeNode(graph.NodeID(x))
		own, assign, err := DecodeNode(buf, n, d)
		if err != nil {
			t.Fatal(err)
		}
		if own != int32(x) {
			t.Fatalf("own label %d, want %d", own, x)
		}
		for lab := 0; lab < n; lab++ {
			if lab == x {
				continue
			}
			if assign[lab] != s.assign[x][lab] {
				t.Fatalf("node %d label %d: port %d vs %d", x, lab, assign[lab], s.assign[x][lab])
			}
		}
	}
}
