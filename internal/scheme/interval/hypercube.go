package interval

import (
	"fmt"

	"repro/internal/coding"
	"repro/internal/graph"
	"repro/internal/shortest"
)

// NewHypercube1IRS builds the classical one-interval-per-arc routing
// scheme on the d-dimensional hypercube with dimension-aligned port
// labels (gen.Hypercube's labeling).
//
// The port assignment corrects the HIGHEST differing bit (instead of
// e-cube's lowest): the destinations of port i+1 at vertex u are exactly
// the labels that agree with u above bit i and differ at bit i — a
// contiguous block of 2^i integers. Under identity labels every arc
// therefore carries exactly one (linear) interval, realizing the paper's
// hypercube row of Table 1 within the interval-routing framework: the
// Θ(log n) of e-cube and the O(d log n) = O(log² n) of 1-IRS both beat
// tables exponentially.
func NewHypercube1IRS(g *graph.Graph, d int) (*Scheme, error) {
	n := 1 << d
	if g.Order() != n {
		return nil, fmt.Errorf("interval: graph order %d is not 2^%d", g.Order(), d)
	}
	for u := 0; u < n; u++ {
		for bit := 0; bit < d; bit++ {
			if g.Neighbor(graph.NodeID(u), graph.Port(bit+1)) != graph.NodeID(u^(1<<bit)) {
				return nil, fmt.Errorf("interval: ports of %d are not dimension-aligned", u)
			}
		}
	}
	g.Freeze()
	s := &Scheme{
		g:      g,
		label:  make([]int32, n),
		invlab: make([]graph.NodeID, n),
		assign: make([][]graph.Port, n),
		ivals:  make([][]int, n),
		bits:   make([]int, n),
		hdr:    make([]header, n),
	}
	for v := 0; v < n; v++ {
		s.label[v] = int32(v)
		s.invlab[v] = graph.NodeID(v)
		s.hdr[v] = header(v)
	}
	for x := 0; x < n; x++ {
		row := make([]graph.Port, n)
		for v := 0; v < n; v++ {
			if v == x {
				continue
			}
			diff := uint32(x) ^ uint32(v)
			hi := 31
			for diff>>uint(hi)&1 == 0 {
				hi--
			}
			row[v] = graph.Port(hi + 1)
		}
		s.assign[x] = row
		s.ivals[x] = countIntervals(row, int32(x), d)
		wn := coding.BitsFor(uint64(n))
		b := wn
		for _, c := range s.ivals[x] {
			b += coding.GammaLen(uint64(c + 1))
			b += c * 2 * wn
		}
		s.bits[x] = b
	}
	// Correctness guard: highest-bit correction is a shortest-path rule
	// (each hop clears the top differing bit), checked here against BFS
	// to keep the constructor self-certifying on small cubes.
	if d <= 7 {
		apsp := shortest.NewAPSP(g)
		for x := 0; x < n; x++ {
			for v := 0; v < n; v++ {
				if v == x {
					continue
				}
				w := g.Neighbor(graph.NodeID(x), s.assign[x][v])
				if apsp.Dist(w, graph.NodeID(v))+1 != apsp.Dist(graph.NodeID(x), graph.NodeID(v)) {
					return nil, fmt.Errorf("interval: hypercube assignment is not shortest at (%d,%d)", x, v)
				}
			}
		}
	}
	return s, nil
}
