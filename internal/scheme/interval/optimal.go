package interval

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/shortest"
)

// OptimalLabels searches for the vertex labeling minimizing the maximum
// number of cyclic intervals per arc (the compactness objective of
// Fraigniaud & Gavoille's "Optimal interval routing" — reference [5] of
// the paper). It tries every labeling with vertex 0 pinned to label 0
// (cyclic rotations of a labeling are equivalent for cyclic intervals),
// assigning ports with the RunGreedy policy, and returns the best
// labeling with its k value.
//
// The search is (n-1)!-exponential and limited to n <= 9; it exists to
// certify small cases exactly (e.g. that a family really is 1-IRS, or
// that some graph needs k >= 2 under EVERY labeling), the same role the
// reference's lower-bound examples play.
func OptimalLabels(g *graph.Graph, apsp *shortest.APSP) ([]int32, int, error) {
	n := g.Order()
	if n > 9 {
		return nil, 0, fmt.Errorf("interval: optimal labeling search is factorial; n=%d exceeds the supported 9", n)
	}
	if apsp == nil {
		apsp = shortest.NewAPSP(g)
	}
	if !apsp.Connected() {
		return nil, 0, graph.ErrNotConnected
	}
	if n == 1 {
		return []int32{0}, 0, nil
	}
	bestK := int(^uint(0) >> 1)
	var bestLabels []int32
	labels := make([]int32, n)
	used := make([]bool, n)
	labels[0] = 0
	var rec func(v int)
	rec = func(v int) {
		if bestK == 1 {
			return // cannot do better than one interval per arc
		}
		if v == n {
			s, err := New(g, apsp, Options{Labels: append([]int32(nil), labels...), Policy: RunGreedy})
			if err != nil {
				return
			}
			if k := s.MaxIntervalsPerArc(); k < bestK {
				bestK = k
				bestLabels = append([]int32(nil), labels...)
			}
			return
		}
		for lab := 1; lab < n; lab++ {
			if used[lab] {
				continue
			}
			used[lab] = true
			labels[v] = int32(lab)
			rec(v + 1)
			used[lab] = false
		}
	}
	rec(1)
	if bestLabels == nil {
		return nil, 0, fmt.Errorf("interval: no labeling found")
	}
	return bestLabels, bestK, nil
}

// IRSNumber returns the smallest k found such that g admits a
// shortest-path k-IRS: exhaustive over labelings, greedy over the
// per-destination port choice. It is therefore an UPPER bound on the true
// interval routing number of references [4,5,15] (exact whenever it
// returns 1, since 1 cannot be improved).
func IRSNumber(g *graph.Graph, apsp *shortest.APSP) (int, error) {
	_, k, err := OptimalLabels(g, apsp)
	return k, err
}
