package interval

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/xrand"
)

func TestIntervalRoutesShortestProperty(t *testing.T) {
	check := func(seed uint64, nn uint8, pol uint8) bool {
		n := int(nn%30) + 2
		g := gen.RandomConnected(n, 0.2, xrand.New(seed))
		s, err := New(g, nil, Options{Policy: Policy(pol % 2)})
		if err != nil {
			return false
		}
		rep, err := routing.MeasureStretch(g, s, nil)
		if err != nil {
			return false
		}
		return rep.Max == 1.0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeWithDFSLabelsIsOneIRS(t *testing.T) {
	// The classical result: trees admit 1-interval routing under DFS
	// labels. Our generic builder must find it.
	check := func(seed uint64, nn uint8) bool {
		n := int(nn%50) + 2
		g := gen.RandomTree(n, xrand.New(seed))
		s, err := New(g, nil, Options{Labels: DFSLabels(g), Policy: RunGreedy})
		if err != nil {
			return false
		}
		return s.MaxIntervalsPerArc() <= 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCycleIsOneIRS(t *testing.T) {
	// Cyclic intervals make rings 1-IRS with identity labels.
	for _, n := range []int{3, 4, 7, 16} {
		g := gen.Cycle(n)
		s, err := New(g, nil, Options{Policy: RunGreedy})
		if err != nil {
			t.Fatal(err)
		}
		if k := s.MaxIntervalsPerArc(); k > 1 {
			t.Fatalf("C_%d needs %d intervals per arc, want 1", n, k)
		}
	}
}

func TestCompleteGraphIsOneIRS(t *testing.T) {
	g := gen.Complete(9)
	s, err := New(g, nil, Options{Policy: RunGreedy})
	if err != nil {
		t.Fatal(err)
	}
	if k := s.MaxIntervalsPerArc(); k > 1 {
		t.Fatalf("K_9 needs %d intervals per arc, want 1", k)
	}
}

func TestHypercubeIntervalsBounded(t *testing.T) {
	// Hypercubes admit a 1-IRS under highest-differing-bit port
	// assignment, but the generic greedy builder does not search for it;
	// assert only the sanity bound k <= n/2 that any shortest-path
	// assignment satisfies on H_4 (each arc serves at most half the cube).
	g := gen.Hypercube(4)
	s, err := New(g, nil, Options{Policy: RunGreedy})
	if err != nil {
		t.Fatal(err)
	}
	if k := s.MaxIntervalsPerArc(); k > 8 {
		t.Fatalf("H_4 needs %d intervals per arc, expected <= 8", k)
	}
}

func TestOuterplanarCycleLabels(t *testing.T) {
	// Outerplanar graphs from our generator are labeled along the outer
	// cycle; interval routing should stay compact (small k).
	g := gen.MaximalOuterplanar(24, xrand.New(2))
	s, err := New(g, nil, Options{Policy: RunGreedy})
	if err != nil {
		t.Fatal(err)
	}
	if k := s.MaxIntervalsPerArc(); k > 3 {
		t.Fatalf("outerplanar k-IRS k = %d, expected small", k)
	}
}

func TestUnitIntervalGraphCompact(t *testing.T) {
	g := gen.UnitInterval(30, 0.6, xrand.New(4))
	s, err := New(g, nil, Options{Policy: RunGreedy})
	if err != nil {
		t.Fatal(err)
	}
	if k := s.MaxIntervalsPerArc(); k > 2 {
		t.Fatalf("unit interval graph k-IRS k = %d, expected <= 2", k)
	}
}

func TestPoliciesBothRouteShortest(t *testing.T) {
	// RunGreedy is a heuristic for FEWER intervals, not a guarantee on
	// every graph; what both policies must always provide is a valid
	// shortest-path assignment with positive interval counts.
	check := func(seed uint64, nn uint8) bool {
		n := int(nn%25) + 5
		g := gen.RandomConnected(n, 0.3, xrand.New(seed))
		for _, pol := range []Policy{MinPort, RunGreedy} {
			s, err := New(g, nil, Options{Policy: pol})
			if err != nil {
				return false
			}
			if s.TotalIntervals() < g.Order()-1 {
				return false // every router needs at least one interval somewhere
			}
			rep, err := routing.MeasureStretch(g, s, nil)
			if err != nil || rep.Max != 1.0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestRunGreedyWinsOnCycle(t *testing.T) {
	// Deterministic regression: on even cycles MinPort fragments the
	// antipodal destinations while RunGreedy keeps one run per direction.
	g := gen.Cycle(16)
	a, err := New(g, nil, Options{Policy: MinPort})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(g, nil, Options{Policy: RunGreedy})
	if err != nil {
		t.Fatal(err)
	}
	if b.TotalIntervals() > a.TotalIntervals() {
		t.Fatalf("RunGreedy %d intervals vs MinPort %d on C_16",
			b.TotalIntervals(), a.TotalIntervals())
	}
}

func TestLabelsValidation(t *testing.T) {
	g := gen.Cycle(4)
	if _, err := New(g, nil, Options{Labels: []int32{0, 1, 2}}); err == nil {
		t.Fatal("short label vector accepted")
	}
	if _, err := New(g, nil, Options{Labels: []int32{0, 1, 1, 2}}); err == nil {
		t.Fatal("non-permutation labels accepted")
	}
}

func TestRejectsDisconnected(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if _, err := New(g, nil, Options{}); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestIntervalsAtAccounting(t *testing.T) {
	g := gen.Cycle(8)
	s, err := New(g, nil, Options{Policy: RunGreedy})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for x := 0; x < 8; x++ {
		for _, c := range s.IntervalsAt(graph.NodeID(x)) {
			total += c
		}
	}
	if total != s.TotalIntervals() {
		t.Fatal("TotalIntervals disagrees with per-node sums")
	}
}

func TestDFSLabelsPermutation(t *testing.T) {
	check := func(seed uint64, nn uint8) bool {
		n := int(nn%40) + 2
		g := gen.RandomConnected(n, 0.2, xrand.New(seed))
		labels := DFSLabels(g)
		seen := make([]bool, n)
		for _, l := range labels {
			if l < 0 || int(l) >= n || seen[l] {
				return false
			}
			seen[l] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLocalBitsReflectIntervals(t *testing.T) {
	// A path's middle routers: 2 arcs, 1 interval each => small code. A
	// random dense graph's routers pay per interval.
	gp := gen.Path(64)
	sp, err := New(gp, nil, Options{Labels: DFSLabels(gp), Policy: RunGreedy})
	if err != nil {
		t.Fatal(err)
	}
	mem := routing.MeasureMemory(gp, sp)
	if mem.LocalBits > 64 {
		t.Fatalf("path interval router uses %d bits, want O(log n)", mem.LocalBits)
	}
}
