package interval

import (
	"testing"

	"repro/internal/graph"
)

// FuzzDecodeNode drives the interval-table decoder with adversarial
// bytes: any successful parse must yield in-range ports and an in-range
// own label; errors are fine, panics and hangs are not.
func FuzzDecodeNode(f *testing.F) {
	f.Add([]byte{0x00, 0x12, 0x34, 0x56}, 8, 3)
	f.Add([]byte{0xff, 0xff, 0xff}, 5, 2)
	f.Add([]byte{0x2a}, 3, 1)
	f.Fuzz(func(t *testing.T, data []byte, n, deg int) {
		if n < 2 || n > 48 || deg < 1 || deg > 12 {
			return
		}
		own, assign, err := DecodeNode(data, n, deg)
		if err != nil {
			return
		}
		if own < 0 || own >= int32(n) {
			t.Fatalf("own label %d out of range", own)
		}
		for lab, p := range assign {
			if p == graph.NoPort {
				continue
			}
			if p < 1 || int(p) > deg {
				t.Fatalf("label %d decoded to port %d out of [1,%d]", lab, p, deg)
			}
		}
	})
}
