package interval

import (
	"fmt"

	"repro/internal/coding"
	"repro/internal/graph"
)

// Wire codec for the interval routing scheme (schemeio kind
// "interval"). The payload mirrors what LocalBits meters: the label
// permutation (shared section, n fixed-width values), then per router,
// per port, the cyclic intervals themselves — a gamma-coded count
// followed by two label endpoints per interval, the same layout as the
// per-router EncodeNode code (whose own-label prefix moves into the
// shared section here). Destination-to-port assignment is
// reconstructed by expanding the intervals, so a decoded scheme routes
// bit-identically and recomputes the identical ivals / LocalBits from
// the expanded rows.

// EncodePayload appends the wire payload and returns per-router payload
// bits (the interval sections; the shared label permutation is not
// attributed to any router) plus the absolute bit offset of router 0's
// span — the per-router sections follow the permutation contiguously.
func (s *Scheme) EncodePayload(w *coding.BitWriter) (rb []int, routerStart int) {
	n := len(s.label)
	wn := coding.BitsFor(uint64(n))
	for v := 0; v < n; v++ {
		w.WriteBits(uint64(s.label[v]), wn)
	}
	routerStart = w.Len()
	rb = make([]int, n)
	for x := 0; x < n; x++ {
		start := w.Len()
		s.writeIntervalSection(w, graph.NodeID(x))
		rb[x] = w.Len() - start
	}
	return rb, routerStart
}

// DecodePayload parses a payload written by EncodePayload against the
// graph the scheme was built on. Labels must be a permutation, interval
// endpoints must be in-range labels, and the total expanded coverage
// per router is capped at n labels — so malformed bytes error without
// panicking or doing super-linear work per router.
func DecodePayload(r *coding.BitReader, g *graph.Graph) (*Scheme, error) {
	n := g.Order()
	wn := coding.BitsFor(uint64(n))
	s := &Scheme{
		g:      g,
		label:  make([]int32, n),
		invlab: make([]graph.NodeID, n),
		assign: make([][]graph.Port, n),
		ivals:  make([][]int, n),
		bits:   make([]int, n),
		hdr:    make([]header, n),
	}
	for lab := range s.hdr {
		s.hdr[lab] = header(lab)
	}
	seen := make([]bool, n)
	for v := 0; v < n; v++ {
		lab, err := r.ReadBits(wn)
		if err != nil {
			return nil, fmt.Errorf("interval: label of %d: %w", v, err)
		}
		// Compare in uint64: the label's bit width is derived from n, but
		// the bound must not depend on that arithmetic staying below 63.
		if lab >= uint64(n) || seen[lab] {
			return nil, fmt.Errorf("interval: labels are not a permutation (vertex %d)", v)
		}
		seen[lab] = true
		s.label[v] = int32(lab)
		s.invlab[lab] = graph.NodeID(v)
	}
	for x := 0; x < n; x++ {
		own := s.label[x]
		deg := g.Degree(graph.NodeID(x))
		row := make([]graph.Port, n)
		covered := 0
		for k := 0; k < deg; k++ {
			cnt, err := r.ReadGamma()
			if err != nil {
				return nil, fmt.Errorf("interval: interval count at %d port %d: %w", x, k+1, err)
			}
			// Compare in uint64: converting a count >= 2^63 first would
			// wrap negative and slip past the cap as "zero intervals".
			if cnt-1 > uint64(n) {
				return nil, fmt.Errorf("interval: %d intervals at %d port %d exceed order %d", cnt-1, x, k+1, n)
			}
			c := int(cnt - 1)
			for i := 0; i < c; i++ {
				a, err := r.ReadBits(wn)
				if err != nil {
					return nil, fmt.Errorf("interval: endpoint at %d port %d: %w", x, k+1, err)
				}
				b, err := r.ReadBits(wn)
				if err != nil {
					return nil, fmt.Errorf("interval: endpoint at %d port %d: %w", x, k+1, err)
				}
				if int(a) >= n || int(b) >= n {
					return nil, fmt.Errorf("interval: endpoint out of range at %d port %d", x, k+1)
				}
				for lab := int32(a); ; lab = (lab + 1) % int32(n) {
					if lab != own {
						if covered++; covered > n {
							return nil, fmt.Errorf("interval: intervals at %d cover more than %d labels", x, n)
						}
						row[lab] = graph.Port(k + 1)
					}
					if lab == int32(b) {
						break
					}
				}
			}
		}
		s.assign[x] = row
		s.ivals[x] = countIntervals(row, own, deg)
		s.bits[x] = s.localBits(x)
	}
	return s, nil
}
