package interval

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/xrand"
)

func TestOptimalLabelsTreesAre1IRS(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		g := gen.RandomTree(7, xrand.New(seed))
		_, k, err := OptimalLabels(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		if k != 1 {
			t.Fatalf("tree (seed %d) got optimal k = %d, want 1", seed, k)
		}
	}
}

func TestOptimalLabelsCycle(t *testing.T) {
	g := gen.Cycle(7)
	_, k, err := OptimalLabels(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Fatalf("C_7 optimal k = %d, want 1", k)
	}
}

func TestOptimalLabelsComplete(t *testing.T) {
	g := gen.Complete(6)
	_, k, err := OptimalLabels(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Fatalf("K_6 optimal k = %d, want 1", k)
	}
}

func TestOptimalLabelsPetersenSubset(t *testing.T) {
	// 3x3 grid: known to admit a 1-IRS (row-major snake labeling).
	g := gen.Grid2D(3, 3)
	labels, k, err := OptimalLabels(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Fatalf("3x3 grid optimal k = %d, want 1", k)
	}
	// The returned labeling must actually route correctly.
	s, err := New(g, nil, Options{Labels: labels, Policy: RunGreedy})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := routing.MeasureStretch(g, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Max != 1.0 {
		t.Fatalf("optimal labeling routes with stretch %v", rep.Max)
	}
}

func TestOptimalLabelsRefusesLargeGraphs(t *testing.T) {
	g := gen.Cycle(12)
	if _, _, err := OptimalLabels(g, nil); err == nil {
		t.Fatal("factorial search accepted n = 12")
	}
}

func TestOptimalNeverWorseThanHeuristics(t *testing.T) {
	for seed := uint64(1); seed < 8; seed++ {
		g := gen.RandomConnected(8, 0.4, xrand.New(seed))
		_, kOpt, err := OptimalLabels(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		sDFS, err := New(g, nil, Options{Labels: DFSLabels(g), Policy: RunGreedy})
		if err != nil {
			t.Fatal(err)
		}
		if kOpt > sDFS.MaxIntervalsPerArc() {
			t.Fatalf("seed %d: optimal k=%d worse than DFS heuristic k=%d",
				seed, kOpt, sDFS.MaxIntervalsPerArc())
		}
	}
}

func TestIRSNumberSingleton(t *testing.T) {
	g := graph.New(1)
	if _, _, err := OptimalLabels(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalLabelsDeterministic(t *testing.T) {
	g := gen.RandomConnected(7, 0.4, xrand.New(9))
	l1, k1, err := OptimalLabels(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	l2, k2, err := OptimalLabels(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("optimal search nondeterministic in k")
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatal("optimal search nondeterministic in labels")
		}
	}
}
