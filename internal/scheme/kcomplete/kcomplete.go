// Package kcomplete implements the paper's complete-graph example
// (Section 1): on K_n the local memory requirement depends entirely on
// who chooses the port labeling.
//
//   - Friendly labeling (ports sorted by neighbor id): the port toward v
//     is computable from the router's own id in O(log n) bits, so
//     MEM_local(K_n, 1) = O(log n).
//   - Adversarial labeling (a permutation π_x of the ports of each x
//     chosen by an adversary): reaching every neighbor requires knowing
//     the full permutation, ceil(log2 (n-1)!) = Θ(n log n) bits.
//
// Both schemes route with stretch 1 (one hop). The Adversarial scheme
// stores each router's inverse permutation and meters it at the exact
// information-theoretic cost of the Lehmer code from package coding.
package kcomplete

import (
	"fmt"

	"repro/internal/coding"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/xrand"
)

// Friendly is the O(log n) scheme on a neighbor-sorted K_n.
type Friendly struct {
	n   int
	hdr []header // hdr[v] = header(v); Init hands out pointers, so no per-route boxing
}

// NewFriendly checks that g is K_n with ports sorted by neighbor id and
// returns the scheme.
func NewFriendly(g *graph.Graph) (*Friendly, error) {
	n := g.Order()
	for u := 0; u < n; u++ {
		if g.Degree(graph.NodeID(u)) != n-1 {
			return nil, fmt.Errorf("kcomplete: vertex %d has degree %d, want %d", u, g.Degree(graph.NodeID(u)), n-1)
		}
		for v := 0; v < n; v++ {
			if v == u {
				continue
			}
			if got := portFor(u, v); g.Neighbor(graph.NodeID(u), got) != graph.NodeID(v) {
				return nil, fmt.Errorf("kcomplete: ports of %d are not neighbor-sorted", u)
			}
		}
	}
	return &Friendly{n: n, hdr: makeHeaders(n)}, nil
}

// makeHeaders precomputes the boxed-once header array both schemes hand
// pointers into.
func makeHeaders(n int) []header {
	hdr := make([]header, n)
	for v := range hdr {
		hdr[v] = header(v)
	}
	return hdr
}

// portFor computes the neighbor-sorted port from u toward v: neighbors of
// u are 0..n-1 except u in increasing order.
func portFor(u, v int) graph.Port {
	if v < u {
		return graph.Port(v + 1)
	}
	return graph.Port(v)
}

// Name implements routing.Scheme.
func (s *Friendly) Name() string { return "Kn-friendly" }

type header graph.NodeID // carried as *header to avoid boxing

// Init implements routing.Function.
func (s *Friendly) Init(src, dst graph.NodeID) routing.Header { return &s.hdr[dst] }

// Port implements routing.Function.
func (s *Friendly) Port(x graph.NodeID, h routing.Header) graph.Port {
	dst := graph.NodeID(*h.(*header))
	if x == dst {
		return graph.NoPort
	}
	return portFor(int(x), int(dst))
}

// Next implements routing.Function.
func (s *Friendly) Next(x graph.NodeID, h routing.Header) routing.Header { return h }

// LocalBits implements routing.LocalCoder: the router stores its own id.
func (s *Friendly) LocalBits(x graph.NodeID) int {
	return coding.BitsFor(uint64(s.n))
}

// Adversarial is the Θ(n log n) scheme: the adversary scrambled every
// router's ports, so each router must store the port-to-neighbor
// permutation.
type Adversarial struct {
	n     int
	perms [][]int // perms[x][v'] = port index toward sorted-neighbor v'
	bits  int     // per-router Lehmer cost, identical for all routers
	hdr   []header
}

// Scramble permutes the ports of every vertex of the complete graph g
// uniformly at random (the adversary's move) and returns the Adversarial
// scheme bound to the scrambled labeling.
func Scramble(g *graph.Graph, r *xrand.Rand) (*Adversarial, error) {
	n := g.Order()
	s := &Adversarial{n: n, perms: make([][]int, n), hdr: makeHeaders(n)}
	for u := 0; u < n; u++ {
		if g.Degree(graph.NodeID(u)) != n-1 {
			return nil, fmt.Errorf("kcomplete: vertex %d has degree %d, want %d", u, g.Degree(graph.NodeID(u)), n-1)
		}
		g.PermutePorts(graph.NodeID(u), r.Perm(n-1))
	}
	// Each router records, for the i-th neighbor in sorted order, the port
	// that now reaches it: exactly the permutation it must memorize.
	for u := 0; u < n; u++ {
		perm := make([]int, n-1)
		i := 0
		for v := 0; v < n; v++ {
			if v == u {
				continue
			}
			perm[i] = int(g.PortTo(graph.NodeID(u), graph.NodeID(v)) - 1)
			i++
		}
		s.perms[u] = perm
	}
	s.bits = coding.PermutationBits(n-1) + coding.BitsFor(uint64(n))
	return s, nil
}

// Name implements routing.Scheme.
func (s *Adversarial) Name() string { return "Kn-adversarial" }

// Init implements routing.Function.
func (s *Adversarial) Init(src, dst graph.NodeID) routing.Header { return &s.hdr[dst] }

// Port implements routing.Function.
func (s *Adversarial) Port(x graph.NodeID, h routing.Header) graph.Port {
	dst := graph.NodeID(*h.(*header))
	if x == dst {
		return graph.NoPort
	}
	idx := int(dst)
	if dst > x {
		idx--
	}
	return graph.Port(s.perms[x][idx] + 1)
}

// Next implements routing.Function.
func (s *Adversarial) Next(x graph.NodeID, h routing.Header) routing.Header { return h }

// LocalBits implements routing.LocalCoder: the Lehmer code of the port
// permutation plus the router's own id — ceil(log2 (n-1)!) + ceil(log2 n)
// bits, i.e. Θ(n log n).
func (s *Adversarial) LocalBits(x graph.NodeID) int { return s.bits }

// Perm exposes router x's stored permutation (sorted-neighbor index →
// port index); tests round-trip it through the Lehmer coder.
func (s *Adversarial) Perm(x graph.NodeID) []int { return s.perms[x] }

var (
	_ routing.Scheme = (*Friendly)(nil)
	_ routing.Scheme = (*Adversarial)(nil)
)
