package kcomplete

import (
	"testing"

	"repro/internal/coding"
	"repro/internal/combinat"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/xrand"
)

func TestFriendlyRoutesOneHop(t *testing.T) {
	g := gen.Complete(12)
	s, err := NewFriendly(g)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := routing.MeasureStretch(g, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Max != 1.0 || rep.MaxHops != 1 {
		t.Fatalf("friendly K_n routing: stretch %v maxhops %d", rep.Max, rep.MaxHops)
	}
}

func TestFriendlyLogMemory(t *testing.T) {
	g := gen.Complete(64)
	s, err := NewFriendly(g)
	if err != nil {
		t.Fatal(err)
	}
	if b := s.LocalBits(0); b != 6 {
		t.Fatalf("friendly LocalBits = %d, want log2 64 = 6", b)
	}
}

func TestFriendlyRejectsScrambled(t *testing.T) {
	g := gen.Complete(8)
	r := xrand.New(5)
	// Find a scramble that really changes vertex 0's labeling.
	g.PermutePorts(0, []int{1, 0, 2, 3, 4, 5, 6})
	if _, err := NewFriendly(g); err == nil {
		t.Fatal("accepted scrambled complete graph")
	}
	_ = r
}

func TestFriendlyRejectsNonComplete(t *testing.T) {
	g := gen.Cycle(5)
	if _, err := NewFriendly(g); err == nil {
		t.Fatal("accepted a cycle")
	}
}

func TestAdversarialRoutesOneHop(t *testing.T) {
	g := gen.Complete(10)
	s, err := Scramble(g, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := routing.MeasureStretch(g, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Max != 1.0 || rep.MaxHops != 1 {
		t.Fatalf("adversarial K_n routing: stretch %v maxhops %d", rep.Max, rep.MaxHops)
	}
}

func TestAdversarialMemoryIsPermutationCost(t *testing.T) {
	n := 20
	g := gen.Complete(n)
	s, err := Scramble(g, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	want := coding.PermutationBits(n-1) + coding.BitsFor(uint64(n))
	if got := s.LocalBits(3); got != want {
		t.Fatalf("adversarial LocalBits = %d, want %d", got, want)
	}
	// The Θ(n log n) separation of the paper's Section 1 example: the
	// adversarial cost must be within one bit of log2((n-1)!) ≈ n log n,
	// and vastly above the friendly O(log n).
	exact := combinat.Log2Factorial(n - 1)
	if float64(coding.PermutationBits(n-1)) < exact || float64(coding.PermutationBits(n-1)) > exact+1 {
		t.Fatal("permutation bits out of information-theoretic range")
	}
	// A scrambled graph no longer admits the friendly scheme.
	if _, err := NewFriendly(g); err == nil {
		t.Fatal("scrambled graph accepted by the friendly scheme")
	}
}

func TestAdversarialPermRoundTrip(t *testing.T) {
	n := 9
	g := gen.Complete(n)
	s, err := Scramble(g, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < n; x++ {
		perm := s.Perm(graph.NodeID(x))
		w := coding.NewBitWriter()
		w.WritePermutation(perm)
		r := coding.NewBitReader(w.Bytes(), w.Len())
		back, err := r.ReadPermutation(n - 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := range perm {
			if perm[i] != back[i] {
				t.Fatalf("router %d permutation not recoverable from its code", x)
			}
		}
	}
}

func TestScrambleDeterministic(t *testing.T) {
	g1 := gen.Complete(8)
	g2 := gen.Complete(8)
	s1, _ := Scramble(g1, xrand.New(3))
	s2, _ := Scramble(g2, xrand.New(3))
	for x := 0; x < 8; x++ {
		p1, p2 := s1.Perm(graph.NodeID(x)), s2.Perm(graph.NodeID(x))
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatal("scramble not deterministic under fixed seed")
			}
		}
	}
}

func TestMemoryGapFriendlyVsAdversarial(t *testing.T) {
	n := 32
	gf := gen.Complete(n)
	f, err := NewFriendly(gf)
	if err != nil {
		t.Fatal(err)
	}
	ga := gen.Complete(n)
	a, err := Scramble(ga, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	fb := routing.MeasureMemory(gf, f).LocalBits
	ab := routing.MeasureMemory(ga, a).LocalBits
	if ab < 10*fb {
		t.Fatalf("expected a wide memory gap, got friendly=%d adversarial=%d", fb, ab)
	}
}
