package kcomplete

import (
	"fmt"

	"repro/internal/coding"
	"repro/internal/graph"
)

// Wire codecs for the two complete-graph schemes. The friendly scheme
// stores nothing beyond what the graph already pins down, so its
// payload is empty and decoding re-runs NewFriendly's labeling check —
// the decoder program IS the fixed coding strategy there. The
// adversarial scheme serializes each router's port permutation at the
// exact information-theoretic cost LocalBits meters: the Lehmer rank in
// ceil(log2 (n-1)!) bits per router.

// EncodePayload implements the scheme codec: the friendly payload is
// empty (per-router wire bits are all zero, every span starts — and
// ends — where the payload would).
func (s *Friendly) EncodePayload(w *coding.BitWriter) (rb []int, routerStart int) {
	return make([]int, s.n), w.Len()
}

// DecodeFriendlyPayload rebuilds the friendly scheme by revalidating
// that g is the neighbor-sorted K_n — the decode-side counterpart of
// the empty payload.
func DecodeFriendlyPayload(r *coding.BitReader, g *graph.Graph) (*Friendly, error) {
	return NewFriendly(g)
}

// EncodePayload appends each router's Lehmer-coded port permutation and
// returns the per-router bits (PermutationBits(n-1) each) plus the
// absolute bit offset of router 0's code.
func (s *Adversarial) EncodePayload(w *coding.BitWriter) (rb []int, routerStart int) {
	routerStart = w.Len()
	rb = make([]int, s.n)
	for x := 0; x < s.n; x++ {
		start := w.Len()
		w.WritePermutation(s.perms[x])
		rb[x] = w.Len() - start
	}
	return rb, routerStart
}

// DecodeAdversarialPayload parses the Lehmer codes back into the
// per-router permutations. Ranks outside [0, (n-1)!) and truncation
// error, never panic.
func DecodeAdversarialPayload(r *coding.BitReader, g *graph.Graph) (*Adversarial, error) {
	n := g.Order()
	for u := 0; u < n; u++ {
		if g.Degree(graph.NodeID(u)) != n-1 {
			return nil, fmt.Errorf("kcomplete: vertex %d has degree %d, want %d", u, g.Degree(graph.NodeID(u)), n-1)
		}
	}
	s := &Adversarial{n: n, perms: make([][]int, n), hdr: makeHeaders(n)}
	for x := 0; x < n; x++ {
		perm, err := r.ReadPermutation(n - 1)
		if err != nil {
			return nil, fmt.Errorf("kcomplete: permutation of %d: %w", x, err)
		}
		s.perms[x] = perm
	}
	s.bits = coding.PermutationBits(n-1) + coding.BitsFor(uint64(n))
	return s, nil
}
