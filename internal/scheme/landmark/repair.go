package landmark

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/shortest"
)

// Repair re-derives, in place, exactly the scheme state a set of edge
// removals can have invalidated — the incremental counterpart of a full
// New on the post-fault graph, bit-identical to it by construction. The
// landmark SET never moves: it is a pure function of (n, seed), both
// unchanged by faults, so only the derived tables are suspect:
//
//   - nearest[v] reads v's distance row: recompute for dirty roots only.
//   - lmPort[x][i] reads landmark i's row and x's live arcs: recompute
//     when the landmark is dirty or the stored port went dead. A stored
//     port that is alive under an unchanged row is still the lowest
//     qualifying arc, because removals only delete candidates.
//   - cluster[x] membership reads row(x) and row(v): rebuilt for dirty
//     x, re-tested per dirty v elsewhere, and dead member ports are
//     rescanned.
//   - pathPorts[v] reads row(v): recomputed when v is dirty or its
//     nearest landmark moved; otherwise the stored walk is replayed and
//     recomputed only if it crosses a removed edge (exact, by the same
//     candidates-only-disappear argument).
//
// apsp must already be refreshed on the post-fault graph (see
// shortest.RefreshRows) and dirty must contain every root whose distance
// row changed (internal/faults.DirtyRoots). Vertex removals are not
// repairable — they disconnect the pair space, which reports as an
// unreachable dirty row.
func (s *Scheme) Repair(apsp *shortest.APSP, dirty []graph.NodeID) error {
	g := s.g
	g.Freeze()
	n := g.Order()
	if apsp.Order() != n {
		return fmt.Errorf("landmark: repair order mismatch: apsp %d, scheme %d", apsp.Order(), n)
	}
	inD := make([]bool, n)
	for _, v := range dirty {
		if int(v) < 0 || int(v) >= n {
			return fmt.Errorf("landmark: dirty root %d outside [0,%d)", v, n)
		}
		inD[v] = true
	}
	// Connectivity gate: clean rows were finite at build time; a dirty row
	// holding Unreachable means the fault disconnected the graph and no
	// scheme exists to repair toward.
	for v := 0; v < n; v++ {
		if !inD[v] {
			continue
		}
		for _, d := range apsp.Row(graph.NodeID(v)) {
			if d == shortest.Unreachable {
				return graph.ErrNotConnected
			}
		}
	}
	// nearest: a function of v's own row.
	nearestChanged := make([]bool, n)
	for v := 0; v < n; v++ {
		if !inD[v] {
			continue
		}
		best := s.landmarks[0]
		bd := apsp.Dist(graph.NodeID(v), best)
		for _, l := range s.landmarks[1:] {
			if d := apsp.Dist(graph.NodeID(v), l); d < bd {
				best, bd = l, d
			}
		}
		if s.nearest[v] != best {
			s.nearest[v] = best
			nearestChanged[v] = true
		}
	}
	// lmPort: per (router, landmark) pair.
	for x := 0; x < n; x++ {
		xi := graph.NodeID(x)
		arcs := g.Arcs(xi)
		for i, l := range s.landmarks {
			if l == xi {
				continue
			}
			p := s.lmPort[x][i]
			if inD[l] || arcs[p-1] == graph.DeadEnd {
				s.lmPort[x][i] = firstArc(g, apsp.Row(l), xi)
			}
		}
	}
	// clusters.
	for x := 0; x < n; x++ {
		xi := graph.NodeID(x)
		if inD[x] {
			// row(x) moved: membership of every v is suspect — rebuild.
			rowX := apsp.Row(xi)
			cl := make(map[graph.NodeID]graph.Port)
			for v := 0; v < n; v++ {
				vi := graph.NodeID(v)
				if vi == xi {
					continue
				}
				if rowX[v] < apsp.Dist(vi, s.nearest[v]) {
					cl[vi] = firstArc(g, apsp.Row(vi), xi)
				}
			}
			s.cluster[x] = cl
			continue
		}
		arcs := g.Arcs(xi)
		for v, p := range s.cluster[x] {
			if !inD[v] && arcs[p-1] == graph.DeadEnd {
				s.cluster[x][v] = firstArc(g, apsp.Row(v), xi)
			}
		}
		rowX := apsp.Row(xi)
		for v := 0; v < n; v++ {
			vi := graph.NodeID(v)
			if !inD[v] || vi == xi {
				continue
			}
			if rowX[v] < apsp.Dist(vi, s.nearest[v]) {
				s.cluster[x][vi] = firstArc(g, apsp.Row(vi), xi)
			} else {
				delete(s.cluster[x], vi)
			}
		}
	}
	// pathPorts: replay the stored walk; recompute on any dead crossing.
	for v := 0; v < n; v++ {
		vi := graph.NodeID(v)
		if !inD[v] && !nearestChanged[v] {
			ok := true
			x := s.nearest[v]
			for _, p := range s.pathPorts[v] {
				w := g.Arcs(x)[p-1]
				if w == graph.DeadEnd {
					ok = false
					break
				}
				x = w
			}
			if ok {
				continue
			}
		}
		rowV := apsp.Row(vi)
		l := s.nearest[v]
		var pp []graph.Port
		x := l
		for x != vi {
			p := firstArc(g, rowV, x)
			pp = append(pp, p)
			x = g.Arcs(x)[p-1]
		}
		s.pathPorts[v] = pp
	}
	s.fillBits()
	return nil
}
