package landmark

import (
	"fmt"
	"sort"

	"repro/internal/coding"
	"repro/internal/graph"
)

// Wire codec for the landmark scheme (schemeio kind "landmark"). Shared
// sections: the sorted landmark set (gap-coded varints), each vertex's
// nearest-landmark index, and each destination's source-routed address
// path l(v) -> v (header material, free in the paper's model and so not
// attributed to any router). Per-router sections — exactly the state
// fillBits meters — are the landmark port table and the sorted cluster
// entries. Cluster maps are serialized in increasing vertex order so
// encoding is deterministic: encode(decode(b)) == b for every valid b.

// EncodePayload appends the wire payload and returns per-router payload
// bits (landmark ports + cluster section of each router) plus the
// absolute bit offset of router 0's span — the per-router sections sit
// contiguously between the shared prologue and the pathPorts epilogue.
func (s *Scheme) EncodePayload(w *coding.BitWriter) (rb []int, routerStart int) {
	n := s.g.Order()
	wn := coding.BitsFor(uint64(n))
	k := len(s.landmarks)
	wk := coding.BitsFor(uint64(k))
	w.WriteUvarint(uint64(k))
	prev := int64(-1)
	for _, l := range s.landmarks {
		w.WriteUvarint(uint64(int64(l) - prev - 1))
		prev = int64(l)
	}
	for v := 0; v < n; v++ {
		w.WriteBits(uint64(s.lmIndex[s.nearest[v]]), wk)
	}
	routerStart = w.Len()
	rb = make([]int, n)
	for x := 0; x < n; x++ {
		start := w.Len()
		deg := s.g.Degree(graph.NodeID(x))
		wp := coding.BitsFor(uint64(deg + 1)) // lmPort may be NoPort at a landmark itself
		wc := coding.BitsFor(uint64(deg))     // cluster ports are 1..deg
		for _, p := range s.lmPort[x] {
			w.WriteBits(uint64(p), wp)
		}
		members := make([]graph.NodeID, 0, len(s.cluster[x]))
		for v := range s.cluster[x] {
			members = append(members, v)
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		w.WriteUvarint(uint64(len(members)))
		for _, v := range members {
			w.WriteBits(uint64(v), wn)
			w.WriteBits(uint64(s.cluster[x][v]-1), wc)
		}
		rb[x] = w.Len() - start
	}
	for v := 0; v < n; v++ {
		pp := s.pathPorts[v]
		w.WriteUvarint(uint64(len(pp)))
		x := s.nearest[v]
		for _, p := range pp {
			w.WriteBits(uint64(p-1), coding.BitsFor(uint64(s.g.Degree(x))))
			x = s.g.Arcs(x)[p-1]
		}
	}
	return rb, routerStart
}

// DecodePayload parses a payload written by EncodePayload against the
// graph the scheme was built on. Landmark sets, cluster sizes and path
// lengths are capped by the graph order, every port is range-checked at
// the vertex it belongs to, and each address path must actually walk
// from the destination's landmark to the destination — malformed bytes
// error, never panic or over-allocate.
func DecodePayload(r *coding.BitReader, g *graph.Graph) (*Scheme, error) {
	n := g.Order()
	wn := coding.BitsFor(uint64(n))
	kU, err := r.ReadUvarint()
	if err != nil {
		return nil, fmt.Errorf("landmark: landmark count: %w", err)
	}
	// Range guards on varint counts compare in uint64: converting first
	// would let values >= 2^63 wrap negative and slip past the bound
	// into a make() panic.
	if kU < 1 || kU > uint64(n) {
		return nil, fmt.Errorf("landmark: landmark count %d outside [1,%d]", kU, n)
	}
	k := int(kU)
	g.Freeze()
	s := &Scheme{
		g:         g,
		landmarks: make([]graph.NodeID, k),
		lmIndex:   make(map[graph.NodeID]int, k),
		nearest:   make([]graph.NodeID, n),
		lmPort:    make([][]graph.Port, n),
		cluster:   make([]map[graph.NodeID]graph.Port, n),
		pathPorts: make([][]graph.Port, n),
		bits:      make([]int, n),
	}
	prev := int64(-1)
	for i := 0; i < k; i++ {
		gap, err := r.ReadUvarint()
		if err != nil {
			return nil, fmt.Errorf("landmark: landmark %d: %w", i, err)
		}
		if gap >= uint64(n) {
			return nil, fmt.Errorf("landmark: landmark gap %d exceeds order %d", gap, n)
		}
		l := prev + 1 + int64(gap)
		if l >= int64(n) {
			return nil, fmt.Errorf("landmark: landmark %d = %d out of range [0,%d)", i, l, n)
		}
		s.landmarks[i] = graph.NodeID(l)
		s.lmIndex[graph.NodeID(l)] = i
		prev = l
	}
	wk := coding.BitsFor(uint64(k))
	for v := 0; v < n; v++ {
		idx, err := r.ReadBits(wk)
		if err != nil {
			return nil, fmt.Errorf("landmark: nearest of %d: %w", v, err)
		}
		if idx >= uint64(k) {
			return nil, fmt.Errorf("landmark: nearest index %d of %d exceeds %d landmarks", idx, v, k)
		}
		s.nearest[v] = s.landmarks[idx]
	}
	for x := 0; x < n; x++ {
		xi := graph.NodeID(x)
		deg := g.Degree(xi)
		wp := coding.BitsFor(uint64(deg + 1))
		wc := coding.BitsFor(uint64(deg))
		ports := make([]graph.Port, k)
		for i := range ports {
			p, err := r.ReadBits(wp)
			if err != nil {
				return nil, fmt.Errorf("landmark: lmPort at %d: %w", x, err)
			}
			if int(p) > deg {
				return nil, fmt.Errorf("landmark: lmPort %d at %d exceeds degree %d", p, x, deg)
			}
			ports[i] = graph.Port(p)
		}
		s.lmPort[x] = ports
		cnt, err := r.ReadUvarint()
		if err != nil {
			return nil, fmt.Errorf("landmark: cluster size of %d: %w", x, err)
		}
		if cnt >= uint64(n) {
			return nil, fmt.Errorf("landmark: cluster size %d of %d exceeds order %d", cnt, x, n)
		}
		cl := make(map[graph.NodeID]graph.Port, cnt)
		prevV := int64(-1)
		for j := uint64(0); j < cnt; j++ {
			v, err := r.ReadBits(wn)
			if err != nil {
				return nil, fmt.Errorf("landmark: cluster entry of %d: %w", x, err)
			}
			p, err := r.ReadBits(wc)
			if err != nil {
				return nil, fmt.Errorf("landmark: cluster port of %d: %w", x, err)
			}
			if int(v) >= n || int(p)+1 > deg {
				return nil, fmt.Errorf("landmark: bad cluster entry (%d, port %d) at %d", v, p+1, x)
			}
			// Entries are canonically sorted; out-of-order or duplicate
			// vertices would decode to a scheme that re-encodes to
			// different bytes, so reject them like any other corruption.
			if int64(v) <= prevV {
				return nil, fmt.Errorf("landmark: cluster entries of %d not strictly increasing", x)
			}
			prevV = int64(v)
			cl[graph.NodeID(v)] = graph.Port(p + 1)
		}
		s.cluster[x] = cl
	}
	for v := 0; v < n; v++ {
		vi := graph.NodeID(v)
		plen, err := r.ReadUvarint()
		if err != nil {
			return nil, fmt.Errorf("landmark: path length of %d: %w", v, err)
		}
		if plen >= uint64(n) {
			return nil, fmt.Errorf("landmark: path length %d of %d exceeds order %d", plen, v, n)
		}
		x := s.nearest[v]
		var pp []graph.Port
		if plen > 0 {
			pp = make([]graph.Port, 0, plen)
		}
		for j := uint64(0); j < plen; j++ {
			deg := g.Degree(x)
			p, err := r.ReadBits(coding.BitsFor(uint64(deg)))
			if err != nil {
				return nil, fmt.Errorf("landmark: path of %d: %w", v, err)
			}
			if p+1 > uint64(deg) {
				return nil, fmt.Errorf("landmark: path port %d at %d exceeds degree %d", p+1, x, deg)
			}
			pp = append(pp, graph.Port(p+1))
			x = g.Arcs(x)[p]
		}
		if x != vi {
			return nil, fmt.Errorf("landmark: address path of %d ends at %d", v, x)
		}
		s.pathPorts[v] = pp
	}
	s.fillBits()
	return s, nil
}
