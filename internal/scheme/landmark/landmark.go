// Package landmark implements a hierarchical landmark (pivot) routing
// scheme in the style of Peleg–Upfal [12,13] and Awerbuch et al. [1,2]
// from the paper's reference list: stretch at most 3 with o(n) routable
// state per router.
//
// This is the repository's representative of Table 1's large-stretch
// regime — the schemes showing that once s >= 3 is tolerated, the
// Θ(n log n) local lower bound of Theorem 1 (which holds for every s < 2)
// evaporates. The construction follows the classical two-level recipe:
//
//   - a landmark set L is sampled; every vertex v records its nearest
//     landmark l(v);
//   - every router stores a shortest-path port toward EVERY landmark, and
//     toward every vertex of its cluster C(x) = {v : d(x,v) < d(v, l(v))}
//     (vertices that are closer to x than to their own landmark);
//   - the address of v is (v, l(v), path(l(v) -> v)); addresses travel in
//     headers, which the paper's model leaves unbounded and free.
//
// Routing s -> t: while the current router x has t in its cluster it
// follows the stored direct port (clusters are closed under moving toward
// t, so this never gets stuck); otherwise it forwards toward l(t); once at
// l(t) the header's source-routed path finishes the job. Total length is
// at most d(s,t) + 2 d(t, l(t)) <= 3 d(s,t) whenever the direct mode does
// not apply, since then d(t, l(t)) <= d(s,t).
package landmark

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/coding"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

// Scheme is a landmark routing scheme instance. It never retains the
// distance table it was built from: all routing state is the o(n)
// per-router tables below, so a scheme built by NewStreamed keeps peak
// distance memory at O(|L|·n + workers·n) for its whole lifetime.
type Scheme struct {
	g         *graph.Graph
	landmarks []graph.NodeID
	lmIndex   map[graph.NodeID]int
	nearest   []graph.NodeID // nearest[v] = l(v)
	lmPort    [][]graph.Port // lmPort[x][i] = port at x toward landmarks[i]
	cluster   []map[graph.NodeID]graph.Port
	pathPorts [][]graph.Port // pathPorts[v] = ports of the path l(v) -> v
	bits      []int
}

// Options configure construction.
type Options struct {
	// NumLandmarks <= 0 selects the classical ceil(sqrt(n log2 n)).
	NumLandmarks int
	Seed         uint64
}

// newShell allocates a Scheme and samples its sorted landmark set — the
// construction steps shared verbatim by New and NewStreamed, so both
// paths draw the identical landmark set for identical Options. The graph
// is frozen to its CSR layout here: both constructors and every later
// route simulation iterate flat arcs.
func newShell(g *graph.Graph, opt Options) *Scheme {
	g.Freeze()
	n := g.Order()
	k := opt.NumLandmarks
	if k <= 0 {
		k = int(math.Ceil(math.Sqrt(float64(n) * math.Log2(float64(n)+1))))
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	r := xrand.New(opt.Seed ^ 0xa5a5a5a5)
	s := &Scheme{
		g:         g,
		lmIndex:   make(map[graph.NodeID]int, k),
		nearest:   make([]graph.NodeID, n),
		lmPort:    make([][]graph.Port, n),
		cluster:   make([]map[graph.NodeID]graph.Port, n),
		pathPorts: make([][]graph.Port, n),
		bits:      make([]int, n),
	}
	for _, v := range r.Sample(n, k) {
		s.landmarks = append(s.landmarks, graph.NodeID(v))
	}
	sort.Slice(s.landmarks, func(i, j int) bool { return s.landmarks[i] < s.landmarks[j] })
	for i, l := range s.landmarks {
		s.lmIndex[l] = i
	}
	return s
}

// fillBits computes the local code sizes from the finished tables:
// gamma(|L|) + |L| ports (fixed width per own degree) + gamma(|C|) +
// |C| (vertex id + port) entries + own id.
func (s *Scheme) fillBits() {
	n := s.g.Order()
	wn := coding.BitsFor(uint64(n))
	for x := 0; x < n; x++ {
		wp := coding.BitsFor(uint64(s.g.Degree(graph.NodeID(x)) + 1))
		b := wn
		b += coding.GammaLen(uint64(len(s.landmarks) + 1))
		b += len(s.landmarks) * wp
		b += coding.GammaLen(uint64(len(s.cluster[x]) + 1))
		b += len(s.cluster[x]) * (wn + wp)
		s.bits[x] = b
	}
}

// New samples landmarks and builds all tables from a dense all-pairs
// table. apsp may be nil. NewStreamed builds the bit-identical scheme
// without ever materializing the n² table.
func New(g *graph.Graph, apsp *shortest.APSP, opt Options) (*Scheme, error) {
	if apsp == nil {
		apsp = shortest.NewAPSP(g)
	}
	if !apsp.Connected() {
		return nil, graph.ErrNotConnected
	}
	n := g.Order()
	s := newShell(g, opt)
	// Nearest landmark of every vertex (ties to the smallest id).
	for v := 0; v < n; v++ {
		best := s.landmarks[0]
		bd := apsp.Dist(graph.NodeID(v), best)
		for _, l := range s.landmarks[1:] {
			if d := apsp.Dist(graph.NodeID(v), l); d < bd {
				best, bd = l, d
			}
		}
		s.nearest[v] = best
	}
	// Per-router tables.
	for x := 0; x < n; x++ {
		xi := graph.NodeID(x)
		ports := make([]graph.Port, len(s.landmarks))
		for i, l := range s.landmarks {
			if l == xi {
				ports[i] = graph.NoPort
				continue
			}
			ports[i] = firstArc(g, apsp.Row(l), xi)
		}
		s.lmPort[x] = ports
		rowX := apsp.Row(xi)
		cl := make(map[graph.NodeID]graph.Port)
		for v := 0; v < n; v++ {
			vi := graph.NodeID(v)
			if vi == xi {
				continue
			}
			if rowX[v] < apsp.Dist(vi, s.nearest[v]) {
				cl[vi] = firstArc(g, apsp.Row(vi), xi)
			}
		}
		s.cluster[x] = cl
	}
	// Source-routed suffix path l(v) -> v carried in v's address.
	for v := 0; v < n; v++ {
		vi := graph.NodeID(v)
		rowV := apsp.Row(vi)
		l := s.nearest[v]
		var pp []graph.Port
		x := l
		for x != vi {
			p := firstArc(g, rowV, x)
			pp = append(pp, p)
			x = g.Arcs(x)[p-1]
		}
		s.pathPorts[v] = pp
	}
	s.fillBits()
	return s, nil
}

// firstArc returns the lowest port of u whose endpoint is one step closer
// to the root of the distance row rowV (the d(·,v) column, which equals
// v's row by symmetry) — the same canonical tie-break as
// shortest.FirstArcs and BFSTreeInto.
func firstArc(g *graph.Graph, rowV []int32, u graph.NodeID) graph.Port {
	du := rowV[u]
	for i, w := range g.Arcs(u) {
		if w == graph.DeadEnd {
			continue // hole left by a removed edge
		}
		if rowV[w]+1 == du {
			return graph.Port(i + 1)
		}
	}
	panic(fmt.Sprintf("landmark: no shortest first arc at %d", u))
}

// Name implements routing.Scheme.
func (s *Scheme) Name() string { return "landmark" }

// header carries the destination's full address plus the position in the
// source-routed suffix once it has been engaged (-1 before). It travels
// as *header — one allocation per route at Init, owned by that walk —
// so the per-hop Next rewrite never re-boxes the struct.
type header struct {
	dst     graph.NodeID
	lm      graph.NodeID
	pathPos int
}

// Init implements routing.Function: the source attaches t's address.
func (s *Scheme) Init(src, dst graph.NodeID) routing.Header {
	return &header{dst: dst, lm: s.nearest[dst], pathPos: -1}
}

// Port implements routing.Function.
func (s *Scheme) Port(x graph.NodeID, h routing.Header) graph.Port {
	hd := h.(*header)
	if x == hd.dst {
		return graph.NoPort
	}
	if hd.pathPos >= 0 {
		// Source-routed suffix from the landmark.
		return s.pathPorts[hd.dst][hd.pathPos]
	}
	if p, ok := s.cluster[x][hd.dst]; ok {
		return p // direct mode: t is in x's cluster
	}
	if x == hd.lm {
		// Arrived at l(t): engage the address path.
		return s.pathPorts[hd.dst][0]
	}
	return s.lmPort[x][s.lmIndex[hd.lm]]
}

// Next implements routing.Function: advance the path cursor when the
// suffix is engaged. The header is owned by the current walk, so the
// cursor advances in place.
func (s *Scheme) Next(x graph.NodeID, h routing.Header) routing.Header {
	hd := h.(*header)
	if hd.pathPos >= 0 {
		hd.pathPos++
		return hd
	}
	if _, ok := s.cluster[x][hd.dst]; ok {
		return hd // direct mode keeps plain header
	}
	if x == hd.lm {
		hd.pathPos = 1 // position consumed by Port above was 0
	}
	return hd
}

// LocalBits implements routing.LocalCoder.
func (s *Scheme) LocalBits(x graph.NodeID) int { return s.bits[x] }

// NumLandmarks returns the size of the landmark set.
func (s *Scheme) NumLandmarks() int { return len(s.landmarks) }

// MaxCluster returns the largest cluster size — the quantity that governs
// the scheme's memory and that landmark sampling keeps near n/|L|.
func (s *Scheme) MaxCluster() int {
	m := 0
	for _, c := range s.cluster {
		if len(c) > m {
			m = len(c)
		}
	}
	return m
}

var _ routing.Scheme = (*Scheme)(nil)

// HeaderBits implements routing.HeaderSizer. A landmark header is the
// destination's full address: its id, its landmark's id, and — once the
// source-routed suffix is engaged — the remaining port list. This is the
// cost the paper's model leaves uncharged by allowing unbounded headers.
func (s *Scheme) HeaderBits(h routing.Header) int {
	hd := h.(*header)
	wn := coding.BitsFor(uint64(len(s.nearest)))
	wp := coding.BitsFor(uint64(s.g.MaxDegree() + 1))
	bits := 2 * wn
	remaining := len(s.pathPorts[hd.dst])
	if hd.pathPos >= 0 {
		remaining -= hd.pathPos
		if remaining < 0 {
			remaining = 0
		}
	}
	bits += coding.GammaLen(uint64(remaining+1)) + remaining*wp
	return bits
}
