package landmark

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/xrand"
)

func TestLandmarkDeliversEverywhere(t *testing.T) {
	g := gen.RandomConnected(60, 0.08, xrand.New(5))
	s, err := New(g, nil, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := routing.Validate(g, s); err != nil {
		t.Fatal(err)
	}
}

func TestLandmarkStretchAtMost3Property(t *testing.T) {
	check := func(seed uint64, nn uint8) bool {
		n := int(nn%50) + 4
		g := gen.RandomConnected(n, 0.1, xrand.New(seed))
		s, err := New(g, nil, Options{Seed: seed})
		if err != nil {
			return false
		}
		rep, err := routing.MeasureStretch(g, s, nil)
		if err != nil {
			return false
		}
		return rep.Max <= 3.0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLandmarkStretchOnStructuredGraphs(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"torus": gen.Torus2D(6, 6),
		"cube":  gen.Hypercube(5),
		"tree":  gen.RandomTree(50, xrand.New(2)),
	} {
		s, err := New(g, nil, Options{Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rep, err := routing.MeasureStretch(g, s, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Max > 3.0 {
			t.Fatalf("%s: landmark stretch %v > 3", name, rep.Max)
		}
	}
}

func TestLandmarkMemoryBelowTables(t *testing.T) {
	// The Table 1 story: at stretch <= 3 the landmark scheme's worst
	// router must undercut full tables on a large graph.
	g := gen.RandomConnected(300, 0.03, xrand.New(9))
	s, err := New(g, nil, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	mem := routing.MeasureMemory(g, s)
	// Full tables would cost at least (n-1) * 1 bits > 299; the landmark
	// scheme should be comfortably below n log n / 4 on this sparse graph.
	tableBits := (g.Order() - 1) * 3
	if mem.LocalBits >= tableBits {
		t.Fatalf("landmark max router %d bits, tables floor %d", mem.LocalBits, tableBits)
	}
}

func TestNumLandmarksDefault(t *testing.T) {
	g := gen.RandomConnected(100, 0.05, xrand.New(1))
	s, err := New(g, nil, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	k := s.NumLandmarks()
	// ceil(sqrt(100 * log2 101)) = ceil(sqrt(666)) = 26.
	if k < 20 || k > 32 {
		t.Fatalf("default landmark count %d out of expected band", k)
	}
}

func TestExplicitLandmarkCount(t *testing.T) {
	g := gen.RandomConnected(50, 0.1, xrand.New(3))
	s, err := New(g, nil, Options{NumLandmarks: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumLandmarks() != 5 {
		t.Fatalf("landmark count %d, want 5", s.NumLandmarks())
	}
	if err := routing.Validate(g, s); err != nil {
		t.Fatal(err)
	}
}

func TestAllNodesLandmarks(t *testing.T) {
	// Degenerate case |L| = n: every cluster is empty and routing is pure
	// landmark tables; still correct, stretch 1 (l(t) = t).
	g := gen.Cycle(12)
	s, err := New(g, nil, Options{NumLandmarks: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := routing.MeasureStretch(g, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Max != 1.0 {
		t.Fatalf("all-landmark scheme stretch %v, want 1", rep.Max)
	}
}

func TestSingleLandmark(t *testing.T) {
	g := gen.RandomConnected(30, 0.1, xrand.New(6))
	s, err := New(g, nil, Options{NumLandmarks: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := routing.MeasureStretch(g, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Max > 3.0 {
		t.Fatalf("single-landmark stretch %v > 3", rep.Max)
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	g1 := gen.RandomConnected(40, 0.1, xrand.New(7))
	g2 := gen.RandomConnected(40, 0.1, xrand.New(7))
	s1, _ := New(g1, nil, Options{Seed: 9})
	s2, _ := New(g2, nil, Options{Seed: 9})
	if s1.NumLandmarks() != s2.NumLandmarks() || s1.MaxCluster() != s2.MaxCluster() {
		t.Fatal("landmark construction not deterministic")
	}
}

func TestClusterDefinition(t *testing.T) {
	// Clusters exclude every vertex at distance >= its landmark distance;
	// with |L| = n clusters are empty.
	g := gen.Cycle(10)
	s, err := New(g, nil, Options{NumLandmarks: 10, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxCluster() != 0 {
		t.Fatalf("clusters should be empty when every node is a landmark, got max %d", s.MaxCluster())
	}
}

// TestStreamedBitIdenticalToDense pins the NewStreamed contract: for the
// same Options it must reproduce New exactly — landmark set, nearest
// assignments, every table entry and every LocalBits value — across
// families and worker counts, without the n² table.
func TestStreamedBitIdenticalToDense(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"random(70,.09)": gen.RandomConnected(70, 0.09, xrand.New(21)),
		"tree(65)":       gen.RandomTree(65, xrand.New(22)),
		"torus 7x7":      gen.Torus2D(7, 7),
		"petersen":       gen.Petersen(),
	}
	for name, g := range graphs {
		for _, opt := range []Options{{Seed: 3}, {Seed: 9, NumLandmarks: 5}} {
			dense, err := New(g, nil, opt)
			if err != nil {
				t.Fatalf("%s: dense: %v", name, err)
			}
			for _, workers := range []int{1, 3, 8} {
				st, err := NewStreamed(g, opt, workers)
				if err != nil {
					t.Fatalf("%s workers=%d: streamed: %v", name, workers, err)
				}
				if !reflect.DeepEqual(st.landmarks, dense.landmarks) {
					t.Fatalf("%s workers=%d: landmark sets differ", name, workers)
				}
				if !reflect.DeepEqual(st.nearest, dense.nearest) {
					t.Fatalf("%s workers=%d: nearest differ", name, workers)
				}
				if !reflect.DeepEqual(st.lmPort, dense.lmPort) {
					t.Fatalf("%s workers=%d: lmPort differ", name, workers)
				}
				if !reflect.DeepEqual(st.cluster, dense.cluster) {
					t.Fatalf("%s workers=%d: clusters differ", name, workers)
				}
				if !reflect.DeepEqual(st.pathPorts, dense.pathPorts) {
					t.Fatalf("%s workers=%d: pathPorts differ", name, workers)
				}
				if !reflect.DeepEqual(st.bits, dense.bits) {
					t.Fatalf("%s workers=%d: LocalBits differ", name, workers)
				}
			}
		}
	}
}

// TestStreamedDisconnectedErrors mirrors New's connectivity contract.
func TestStreamedDisconnectedErrors(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if _, err := NewStreamed(g, Options{Seed: 1}, 2); err == nil {
		t.Fatal("streamed construction accepted a disconnected graph")
	}
}
