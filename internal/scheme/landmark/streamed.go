package landmark

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/graph"
	"repro/internal/shortest"
)

// NewStreamed builds the scheme bit-identically to New — same landmarks,
// nearest assignments, ports, clusters, address paths and LocalBits for
// the same Options — without ever materializing the n² distance table.
// It is the construction path behind `-distmode stream|cache` at orders
// where the dense table no longer fits in RAM.
//
// The trick is to turn every column access of New into a row access of
// some BFS we are willing to keep: distances to landmarks come from |L|
// landmark-rooted BFS rows (O(|L|·n) memory, and the lmPort tables the
// scheme must store are Θ(|L|·n) anyway), while cluster membership and
// cluster/address ports — which New reads as d(·,v) columns — come from
// one v-rooted BFS row at a time, sharded over a worker pool with
// per-worker scratch (O(workers·n) memory). Undirected symmetry
// d(x,v) = d(v,x) is what makes the per-v row carry exactly the column
// New reads. workers <= 0 selects GOMAXPROCS.
func NewStreamed(g *graph.Graph, opt Options, workers int) (*Scheme, error) {
	n := g.Order()
	if n == 0 {
		return nil, graph.ErrNotConnected
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	// Connectivity gate, same contract as New: one row instead of n.
	row0 := shortest.BFS(g, 0)
	for _, d := range row0 {
		if d == shortest.Unreachable {
			return nil, graph.ErrNotConnected
		}
	}
	s := newShell(g, opt)
	k := len(s.landmarks)

	// Landmark-rooted rows: distToLm[i][v] = d(landmarks[i], v) = d(v, l_i).
	distToLm := make([][]int32, k)
	parallelFor(workers, k, func(_ int, i int) {
		distToLm[i] = shortest.BFS(g, s.landmarks[i])
	})

	// Nearest landmark (ties to the smallest id: landmarks are sorted and
	// the comparison is strict, exactly as in New).
	for v := 0; v < n; v++ {
		bi := 0
		bd := distToLm[0][v]
		for i := 1; i < k; i++ {
			if d := distToLm[i][v]; d < bd {
				bi, bd = i, d
			}
		}
		s.nearest[v] = s.landmarks[bi]
	}

	// lmPort[x][i]: lowest port whose endpoint is one step closer to
	// landmark i — New's firstArc with the apsp column replaced by the
	// landmark row.
	parallelFor(workers, n, func(_ int, x int) {
		xi := graph.NodeID(x)
		ports := make([]graph.Port, k)
		for i := range ports {
			if s.landmarks[i] == xi {
				ports[i] = graph.NoPort
				continue
			}
			ports[i] = rowFirstArc(g, distToLm[i], xi)
		}
		s.lmPort[x] = ports
	})

	// Per-destination sweep: one BFS row from v answers every d(·,v)
	// column New reads — cluster membership d(x,v) < d(v,l(v)), the
	// cluster port at each member x, and the address path l(v) -> v.
	// Cluster entries are collected per destination and folded into the
	// per-router maps serially afterwards (map values are keyed lookups,
	// so insertion order cannot matter).
	type member struct {
		x graph.NodeID
		p graph.Port
	}
	contrib := make([][]member, n)
	rowSrc := shortest.NewStreamSource(g)
	readers := make([]shortest.RowReader, workers)
	for i := range readers {
		readers[i] = rowSrc.NewReader()
	}
	parallelFor(workers, n, func(w int, v int) {
		vi := graph.NodeID(v)
		dv := readers[w].Row(vi)
		bound := distToLm[s.lmIndex[s.nearest[v]]][v]
		var ms []member
		for x := 0; x < n; x++ {
			xi := graph.NodeID(x)
			if xi == vi || dv[x] >= bound {
				continue
			}
			ms = append(ms, member{x: xi, p: rowFirstArc(g, dv, xi)})
		}
		contrib[v] = ms
		var pp []graph.Port
		x := s.nearest[v]
		for x != vi {
			p := rowFirstArc(g, dv, x)
			pp = append(pp, p)
			x = g.Neighbor(x, p)
		}
		s.pathPorts[v] = pp
	})
	for x := 0; x < n; x++ {
		s.cluster[x] = make(map[graph.NodeID]graph.Port)
	}
	for v := 0; v < n; v++ {
		for _, m := range contrib[v] {
			s.cluster[m.x][graph.NodeID(v)] = m.p
		}
	}
	s.fillBits()
	return s, nil
}

// rowFirstArc is New's firstArc against a single distance row dv rooted
// at the destination: the lowest port of u whose endpoint is one step
// closer to the root of dv.
func rowFirstArc(g *graph.Graph, dv []int32, u graph.NodeID) graph.Port {
	du := dv[u]
	chosen := graph.NoPort
	g.ForEachArc(u, func(p graph.Port, w graph.NodeID) {
		if chosen == graph.NoPort && dv[w]+1 == du {
			chosen = p
		}
	})
	if chosen == graph.NoPort {
		panic(fmt.Sprintf("landmark: no shortest first arc at %d", u))
	}
	return chosen
}

// parallelFor runs body(worker, i) for i in [0, n) over a pool, giving
// each worker a stable index so bodies can address per-call, per-worker
// scratch without synchronization.
func parallelFor(workers, n int, body func(worker, i int)) {
	var wg sync.WaitGroup
	next := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range next {
				body(w, i)
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
