package landmark

import (
	"runtime"
	"sync"

	"repro/internal/graph"
	"repro/internal/shortest"
)

// NewStreamed builds the scheme bit-identically to New — same landmarks,
// nearest assignments, ports, clusters, address paths and LocalBits for
// the same Options — without ever materializing the n² distance table.
// It is the construction path behind `-distmode stream|cache` at orders
// where the dense table no longer fits in RAM.
//
// The trick is to turn every column access of New into a read of some
// BFS tree we are willing to keep: shortest.BFSTreeInto computes, in one
// closure-free pass per root, both the distance row and the canonical
// first-arc vector (the lowest port of each vertex one step closer to
// the root — exactly New's firstArc tie-break, by symmetry of d).
//
//   - |L| landmark-rooted trees give the distance-to-landmark rows AND
//     the whole lmPort table (O(|L|·n) memory, which the lmPort tables
//     the scheme must store are anyway);
//   - one destination-rooted tree at a time, sharded over a worker pool
//     into per-worker scratch (O(workers·n) memory), answers cluster
//     membership, the cluster port at every member, and the address path
//     l(v) -> v — all direct reads of the parent vector, no per-member
//     arc scan.
//
// workers <= 0 selects GOMAXPROCS.
func NewStreamed(g *graph.Graph, opt Options, workers int) (*Scheme, error) {
	n := g.Order()
	if n == 0 {
		return nil, graph.ErrNotConnected
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	// Connectivity gate, same contract as New: one row instead of n.
	row0 := shortest.BFS(g, 0)
	for _, d := range row0 {
		if d == shortest.Unreachable {
			return nil, graph.ErrNotConnected
		}
	}
	s := newShell(g, opt) // freezes g: workers below only read the CSR arcs
	k := len(s.landmarks)

	// Landmark-rooted trees: distToLm[i][v] = d(landmarks[i], v) = d(v, l_i),
	// lmParent[i][v] = lowest port of v one step closer to l_i (NoPort at
	// the landmark itself). Queues are per-worker scratch; the dist and
	// parent vectors are retained by construction.
	distToLm := make([][]int32, k)
	lmParent := make([][]graph.Port, k)
	queues := make([][]graph.NodeID, workers)
	parallelFor(workers, k, func(w int, i int) {
		distToLm[i], lmParent[i], queues[w] = shortest.BFSTreeInto(g, s.landmarks[i], nil, nil, queues[w])
	})

	// Nearest landmark (ties to the smallest id: landmarks are sorted and
	// the comparison is strict, exactly as in New).
	for v := 0; v < n; v++ {
		bi := 0
		bd := distToLm[0][v]
		for i := 1; i < k; i++ {
			if d := distToLm[i][v]; d < bd {
				bi, bd = i, d
			}
		}
		s.nearest[v] = s.landmarks[bi]
	}

	// lmPort is the transpose of the landmark parent vectors: lmPort[x][i]
	// is the canonical first arc of x toward landmark i, which BFSTreeInto
	// already resolved (and left NoPort at the landmark itself, as New
	// stores it).
	parallelFor(workers, n, func(_ int, x int) {
		ports := make([]graph.Port, k)
		for i := range ports {
			ports[i] = lmParent[i][x]
		}
		s.lmPort[x] = ports
	})

	// Per-destination sweep: one first-arc tree rooted at v answers every
	// d(·,v) column New reads — cluster membership d(x,v) < d(v,l(v)), the
	// cluster port at each member x (the parent vector at x), and the
	// address path l(v) -> v (follow parents from l(v)). Cluster entries
	// are collected per destination and folded into the per-router maps
	// serially afterwards (map values are keyed lookups, so insertion
	// order cannot matter).
	type member struct {
		x graph.NodeID
		p graph.Port
	}
	contrib := make([][]member, n)
	dists := make([][]int32, workers)
	parents := make([][]graph.Port, workers)
	parallelFor(workers, n, func(w int, v int) {
		vi := graph.NodeID(v)
		dists[w], parents[w], queues[w] = shortest.BFSTreeInto(g, vi, dists[w], parents[w], queues[w])
		dv, par := dists[w], parents[w]
		bound := distToLm[s.lmIndex[s.nearest[v]]][v]
		var ms []member
		for x := 0; x < n; x++ {
			xi := graph.NodeID(x)
			if xi == vi || dv[x] >= bound {
				continue
			}
			ms = append(ms, member{x: xi, p: par[x]})
		}
		contrib[v] = ms
		var pp []graph.Port
		x := s.nearest[v]
		for x != vi {
			p := par[x]
			pp = append(pp, p)
			x = g.Arcs(x)[p-1]
		}
		s.pathPorts[v] = pp
	})
	for x := 0; x < n; x++ {
		s.cluster[x] = make(map[graph.NodeID]graph.Port)
	}
	for v := 0; v < n; v++ {
		for _, m := range contrib[v] {
			s.cluster[m.x][graph.NodeID(v)] = m.p
		}
	}
	s.fillBits()
	return s, nil
}

// parallelFor runs body(worker, i) for i in [0, n) over a pool, giving
// each worker a stable index so bodies can address per-call, per-worker
// scratch without synchronization.
func parallelFor(workers, n int, body func(worker, i int)) {
	var wg sync.WaitGroup
	next := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range next {
				body(w, i)
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
