package table

import (
	"testing"

	"repro/internal/graph"
)

// FuzzDecodeRow feeds adversarial byte strings to the table-row decoder:
// it must return a row or an error, never panic or loop, and any
// successful parse must contain only in-range ports.
func FuzzDecodeRow(f *testing.F) {
	f.Add([]byte{0x00, 0x12, 0x34}, 8, 1, 3)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}, 12, 0, 4)
	f.Add([]byte{0x80, 0x01}, 5, 2, 2)
	f.Fuzz(func(t *testing.T, data []byte, n, x, deg int) {
		if n < 2 || n > 64 || deg < 1 || deg > 16 || x < 0 || x >= n {
			return
		}
		row, err := DecodeRow(data, n, graph.NodeID(x), deg)
		if err != nil {
			return
		}
		for v, p := range row {
			if v == x {
				if p != graph.NoPort {
					t.Fatalf("own entry must be NoPort, got %d", p)
				}
				continue
			}
			if p < 1 || int(p) > deg {
				// RLE may legally leave a suffix of zero entries when the
				// stream ends early only if it errored; a nil error with an
				// out-of-range port is a decoder bug — except trailing
				// zeros from an under-full stream, which DecodeRow treats
				// as an error path. Flag anything else.
				if p != graph.NoPort {
					t.Fatalf("decoded port %d out of [1,%d] at %d", p, deg, v)
				}
			}
		}
	})
}
