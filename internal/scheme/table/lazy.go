package table

// Lazy is the mapped-container view of a routing-table scheme: instead
// of materializing every router's row at load time (O(n^2) ports, the
// dominant cost of opening a big table file), it keeps only the
// per-router bit-offset index from the container and decodes rows on
// first touch, a stripe of routers at a time, into one contiguous
// arena per stripe. A shard that is only ever asked about a slice of
// the source space therefore pays decode cost proportional to the
// routers it actually routes through, and the payload bytes themselves
// stay wherever the container backing put them (typically a read-only
// mmap of page cache).
//
// Correctness discipline matches the heap reader: each row span is
// decoded with a reader confined to exactly [offs[x], offs[x+1]) bits,
// must consume the span exactly, and must re-encode bit-identically
// under the canonical row coder — the per-span restatement of Decode's
// "decodes successfully == re-encodes byte-identically" gate. A stripe
// that fails any check is poisoned, not fatal: its routers answer
// NoPort, so a corrupt span surfaces as a per-route RouteError from the
// simulator ("delivered at wrong node"), never as a panic or a wrong
// delivery.

import (
	"fmt"
	"sync"

	"repro/internal/coding"
	"repro/internal/graph"
	"repro/internal/routing"
)

// lazyStripe is the number of routers decoded together on first touch.
// 256 rows amortize the payload fetch and scratch-writer warm-up while
// keeping the worst-case wasted decode (touch one router, decode 256)
// far below the O(n) rows a heap load pays per router.
const lazyStripe = 256

// Lazy routes from a table payload resolved on demand. It implements
// routing.Scheme and routing.HeaderSizer and is safe for concurrent
// readers: stripe decoding is guarded by a per-stripe sync.Once, and
// decoded state is read-only afterwards.
type Lazy struct {
	g       *graph.Graph
	n       int
	offs    []uint64               // absolute bit offsets; router x spans [offs[x], offs[x+1])
	payload func() ([]byte, error) // resolves the full scheme-section bytes (checksummed by the caller)
	hdr     []header               // shared Init pointers, as in Scheme

	stripes []stripeState

	blobOnce sync.Once
	blob     []byte
	blobErr  error
}

// stripeState holds one stripe's decode-once cell. rows is the arena:
// (hi-lo)*n ports, row x at [(x-lo)*n, (x-lo+1)*n).
type stripeState struct {
	once sync.Once
	rows []graph.Port
	err  error
}

// NewLazy wraps a table payload for lazy routing on g. offs are the
// n+1 absolute bit offsets of the router spans inside the payload
// (container index section); payload resolves the scheme-section bytes
// on first use and may be called once from any goroutine.
func NewLazy(g *graph.Graph, offs []uint64, payload func() ([]byte, error)) (*Lazy, error) {
	g.Freeze()
	n := g.Order()
	if len(offs) != n+1 {
		return nil, fmt.Errorf("table: lazy index has %d offsets, graph order %d needs %d", len(offs), n, n+1)
	}
	for x := 0; x < n; x++ {
		if offs[x] > offs[x+1] {
			return nil, fmt.Errorf("table: lazy index offset %d decreases", x+1)
		}
	}
	l := &Lazy{
		g:       g,
		n:       n,
		offs:    offs,
		payload: payload,
		hdr:     make([]header, n),
		stripes: make([]stripeState, (n+lazyStripe-1)/lazyStripe),
	}
	for v := range l.hdr {
		l.hdr[v] = header(v)
	}
	return l, nil
}

// resolveBlob fetches the payload bytes once.
func (l *Lazy) resolveBlob() ([]byte, error) {
	l.blobOnce.Do(func() { l.blob, l.blobErr = l.payload() })
	return l.blob, l.blobErr
}

// decodeStripe materializes stripe si: every row in [lo, hi) decoded
// from its indexed span into one arena, each span verified for exact
// consumption and canonical re-encoding.
func (l *Lazy) decodeStripe(si int) ([]graph.Port, error) {
	blob, err := l.resolveBlob()
	if err != nil {
		return nil, err
	}
	lo := si * lazyStripe
	hi := lo + lazyStripe
	if hi > l.n {
		hi = l.n
	}
	arena := make([]graph.Port, (hi-lo)*l.n)
	scratch := coding.NewBitWriter()
	for x := lo; x < hi; x++ {
		off, end := l.offs[x], l.offs[x+1]
		if end > uint64(len(blob))*8 {
			return nil, fmt.Errorf("table: router %d span ends at bit %d, payload has %d", x, end, len(blob)*8)
		}
		row := arena[(x-lo)*l.n : (x-lo+1)*l.n]
		deg := l.g.Degree(graph.NodeID(x))
		r := coding.NewBitReaderAt(blob, int(off), int(end))
		if err := decodeRowInto(r, row, graph.NodeID(x), deg); err != nil {
			return nil, fmt.Errorf("table: router %d: %w", x, err)
		}
		if r.Pos() != int(end) {
			return nil, fmt.Errorf("table: router %d code is %d bits, index says %d", x, r.Pos()-int(off), end-off)
		}
		// Canonical gate, per span: the bits must be the one encoding the
		// fixed row coder produces for this row.
		bits := encodedRowBits(row, graph.NodeID(x), deg)
		scratch.Reset()
		writeRowCode(scratch, row, graph.NodeID(x), deg, bits)
		if scratch.Len() != int(end-off) || !bitsEqualAt(blob, int(off), scratch.Bytes(), scratch.Len()) {
			return nil, fmt.Errorf("table: router %d span is not the canonical row encoding", x)
		}
	}
	return arena, nil
}

// row returns router x's decoded row, or nil when its stripe is
// poisoned by a decode error.
func (l *Lazy) row(x graph.NodeID) []graph.Port {
	si := int(x) / lazyStripe
	st := &l.stripes[si]
	st.once.Do(func() { st.rows, st.err = l.decodeStripe(si) })
	if st.err != nil {
		return nil
	}
	lo := si * lazyStripe
	return st.rows[(int(x)-lo)*l.n : (int(x)-lo+1)*l.n]
}

// Preload decodes every stripe (and hence verifies the whole payload),
// returning the first error. Tests and eager callers use it; serving
// never needs to.
func (l *Lazy) Preload() error {
	for si := range l.stripes {
		st := &l.stripes[si]
		st.once.Do(func() { st.rows, st.err = l.decodeStripe(si) })
		if st.err != nil {
			return st.err
		}
	}
	return nil
}

// Name implements routing.Scheme, reporting the same name as the heap
// reader so evaluation reports compare equal.
func (l *Lazy) Name() string { return "routing-tables" }

// Init implements routing.Function.
func (l *Lazy) Init(src, dst graph.NodeID) routing.Header { return &l.hdr[dst] }

// Port implements routing.Function. A poisoned stripe answers NoPort,
// turning payload corruption into per-route errors.
func (l *Lazy) Port(x graph.NodeID, h routing.Header) graph.Port {
	dst := graph.NodeID(*h.(*header))
	if x == dst {
		return graph.NoPort
	}
	row := l.row(x)
	if row == nil {
		return graph.NoPort
	}
	return row[dst]
}

// Next implements routing.Function.
func (l *Lazy) Next(x graph.NodeID, h routing.Header) routing.Header { return h }

// LocalBits implements routing.LocalCoder straight off the index: a
// table router's wire span is exactly its LocalBits code, so the
// memory report needs no decoding at all.
func (l *Lazy) LocalBits(x graph.NodeID) int { return int(l.offs[x+1] - l.offs[x]) }

// HeaderBits implements routing.HeaderSizer.
func (l *Lazy) HeaderBits(h routing.Header) int { return coding.BitsFor(uint64(l.n)) }

var (
	_ routing.Scheme      = (*Lazy)(nil)
	_ routing.HeaderSizer = (*Lazy)(nil)
)

// bitsEqualAt reports whether nbits bits of a starting at bit aOff
// equal the first nbits of b.
func bitsEqualAt(a []byte, aOff int, b []byte, nbits int) bool {
	ra := coding.NewBitReaderAt(a, aOff, aOff+nbits)
	rb := coding.NewBitReader(b, nbits)
	for rem := nbits; rem > 0; {
		k := rem
		if k > 64 {
			k = 64
		}
		va, errA := ra.ReadBits(k)
		vb, errB := rb.ReadBits(k)
		if errA != nil || errB != nil || va != vb {
			return false
		}
		rem -= k
	}
	return true
}
