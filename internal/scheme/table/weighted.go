package table

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/shortest"
)

// NewWeighted builds minimum-cost routing tables under non-uniform
// symmetric arc costs — the regime the paper's Table 1 comments attribute
// to the schemes of references [1] and [2]. The table layout, coding and
// routing behaviour are identical to the unweighted scheme; only the
// notion of "shortest" changes, so Theorem 1's conclusion (tables are
// uncompressible below stretch 2) covers this scheme as well.
//
// apsp, when non-nil, must be the weighted all-pairs table for (g, w) —
// mirroring New's contract — so callers that already hold one (the E19
// sweep, memreq's dense weighted path) don't pay a second n² build; nil
// computes it here.
func NewWeighted(g *graph.Graph, w shortest.Weights, apsp *shortest.APSP, pol Policy) (*Scheme, error) {
	if apsp == nil {
		var err error
		apsp, err = shortest.NewWeightedAPSP(g, w) // validates w
		if err != nil {
			return nil, err
		}
	} else if err := w.Validate(g); err != nil {
		return nil, err
	}
	if !apsp.Connected() {
		return nil, graph.ErrNotConnected
	}
	n := g.Order()
	s := newScheme(g, n)
	for x := 0; x < n; x++ {
		xi := graph.NodeID(x)
		arcs := g.Arcs(xi)
		wx := w[x]
		row := make([]graph.Port, n)
		prev := graph.NoPort
		for v := 0; v < n; v++ {
			if v == x {
				continue
			}
			// Weighted distances are symmetric (Weights.Validate enforces
			// symmetric costs), so the d(·,v) column is the row of v.
			// Membership sums run in int64, like WeightedFirstArcs: with
			// near-MaxInt32 costs the int32 sum d(nb,v) + w(x,nb) can wrap
			// negative and hide (or fake) a minimum-cost first arc.
			rowV := apsp.Row(graph.NodeID(v))
			dxv := int64(rowV[x])
			chosen := graph.NoPort
			if pol == RunGreedy && prev != graph.NoPort {
				if int64(rowV[arcs[prev-1]])+int64(wx[prev-1]) == dxv {
					chosen = prev
				}
			}
			if chosen == graph.NoPort {
				for i, nb := range arcs {
					if int64(rowV[nb])+int64(wx[i]) == dxv {
						chosen = graph.Port(i + 1)
						break
					}
				}
			}
			if chosen == graph.NoPort {
				return nil, fmt.Errorf("table: no minimum-cost first arc %d->%d", x, v)
			}
			row[v] = chosen
			prev = chosen
		}
		s.ports[x] = row
		s.bits[x] = encodedRowBits(row, xi, len(arcs))
	}
	return s, nil
}
