package table

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/shortest"
)

// NewWeighted builds minimum-cost routing tables under non-uniform
// symmetric arc costs — the regime the paper's Table 1 comments attribute
// to the schemes of references [1] and [2]. The table layout, coding and
// routing behaviour are identical to the unweighted scheme; only the
// notion of "shortest" changes, so Theorem 1's conclusion (tables are
// uncompressible below stretch 2) covers this scheme as well.
func NewWeighted(g *graph.Graph, w shortest.Weights, pol Policy) (*Scheme, error) {
	apsp, err := shortest.NewWeightedAPSP(g, w)
	if err != nil {
		return nil, err
	}
	if !apsp.Connected() {
		return nil, graph.ErrNotConnected
	}
	n := g.Order()
	s := &Scheme{g: g, ports: make([][]graph.Port, n), bits: make([]int, n)}
	for x := 0; x < n; x++ {
		row := make([]graph.Port, n)
		prev := graph.NoPort
		for v := 0; v < n; v++ {
			if v == x {
				continue
			}
			dxv := apsp.Dist(graph.NodeID(x), graph.NodeID(v))
			chosen := graph.NoPort
			if pol == RunGreedy && prev != graph.NoPort {
				nb := g.Neighbor(graph.NodeID(x), prev)
				if apsp.Dist(nb, graph.NodeID(v))+w[x][prev-1] == dxv {
					chosen = prev
				}
			}
			if chosen == graph.NoPort {
				g.ForEachArc(graph.NodeID(x), func(p graph.Port, nb graph.NodeID) {
					if chosen == graph.NoPort && apsp.Dist(nb, graph.NodeID(v))+w[x][p-1] == dxv {
						chosen = p
					}
				})
			}
			if chosen == graph.NoPort {
				return nil, fmt.Errorf("table: no minimum-cost first arc %d->%d", x, v)
			}
			row[v] = chosen
			prev = chosen
		}
		s.ports[x] = row
		s.bits[x] = encodedRowBits(row, graph.NodeID(x), g.Degree(graph.NodeID(x)))
	}
	return s, nil
}
