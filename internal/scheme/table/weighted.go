package table

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/shortest"
)

// NewWeighted builds minimum-cost routing tables under non-uniform
// symmetric arc costs — the regime the paper's Table 1 comments attribute
// to the schemes of references [1] and [2]. The table layout, coding and
// routing behaviour are identical to the unweighted scheme; only the
// notion of "shortest" changes, so Theorem 1's conclusion (tables are
// uncompressible below stretch 2) covers this scheme as well.
func NewWeighted(g *graph.Graph, w shortest.Weights, pol Policy) (*Scheme, error) {
	apsp, err := shortest.NewWeightedAPSP(g, w)
	if err != nil {
		return nil, err
	}
	if !apsp.Connected() {
		return nil, graph.ErrNotConnected
	}
	n := g.Order()
	s := newScheme(g, n)
	for x := 0; x < n; x++ {
		xi := graph.NodeID(x)
		arcs := g.Arcs(xi)
		wx := w[x]
		row := make([]graph.Port, n)
		prev := graph.NoPort
		for v := 0; v < n; v++ {
			if v == x {
				continue
			}
			// Weighted distances are symmetric (Weights.Validate enforces
			// symmetric costs), so the d(·,v) column is the row of v.
			rowV := apsp.Row(graph.NodeID(v))
			dxv := rowV[x]
			chosen := graph.NoPort
			if pol == RunGreedy && prev != graph.NoPort {
				if rowV[arcs[prev-1]]+wx[prev-1] == dxv {
					chosen = prev
				}
			}
			if chosen == graph.NoPort {
				for i, nb := range arcs {
					if rowV[nb]+wx[i] == dxv {
						chosen = graph.Port(i + 1)
						break
					}
				}
			}
			if chosen == graph.NoPort {
				return nil, fmt.Errorf("table: no minimum-cost first arc %d->%d", x, v)
			}
			row[v] = chosen
			prev = chosen
		}
		s.ports[x] = row
		s.bits[x] = encodedRowBits(row, xi, len(arcs))
	}
	return s, nil
}
