package table

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

func TestTablesRouteShortest(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"petersen": gen.Petersen(),
		"grid":     gen.Grid2D(4, 5),
		"cube":     gen.Hypercube(4),
		"random":   gen.RandomConnected(30, 0.15, xrand.New(1)),
	} {
		s, err := New(g, nil, MinPort)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rep, err := routing.MeasureStretch(g, s, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Max != 1.0 {
			t.Fatalf("%s: routing tables have stretch %v, want 1", name, rep.Max)
		}
	}
}

func TestTablesRejectDisconnected(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if _, err := New(g, nil, MinPort); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestPortEntryMatchesRouting(t *testing.T) {
	g := gen.RandomConnected(20, 0.2, xrand.New(3))
	s, err := New(g, nil, MinPort)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 20; u++ {
		for v := 0; v < 20; v++ {
			if u == v {
				continue
			}
			h := s.Init(graph.NodeID(u), graph.NodeID(v))
			if s.Port(graph.NodeID(u), h) != s.PortEntry(graph.NodeID(u), graph.NodeID(v)) {
				t.Fatalf("Port and PortEntry disagree at (%d,%d)", u, v)
			}
		}
	}
}

func TestRunGreedyStillShortest(t *testing.T) {
	g := gen.RandomConnected(25, 0.2, xrand.New(9))
	s, err := New(g, nil, RunGreedy)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := routing.MeasureStretch(g, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Max != 1.0 {
		t.Fatalf("RunGreedy tables have stretch %v", rep.Max)
	}
}

func TestRunGreedyBoundedByRaw(t *testing.T) {
	// RunGreedy is a compression HEURISTIC: it may win or lose against
	// MinPort on individual graphs (greedy run extension is not globally
	// optimal), but every node's code is bounded by the raw row plus the
	// flag bit under either policy — that is the guarantee.
	check := func(seed uint64, nn uint8) bool {
		n := int(nn%20) + 4
		g := gen.RandomConnected(n, 0.3, xrand.New(seed))
		apsp := shortest.NewAPSP(g)
		for _, pol := range []Policy{MinPort, RunGreedy} {
			s, err := New(g, apsp, pol)
			if err != nil {
				return false
			}
			for x := 0; x < n; x++ {
				raw := (n - 1) * bitsForDeg(g.Degree(graph.NodeID(x)))
				if s.LocalBits(graph.NodeID(x)) > raw+1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func bitsForDeg(d int) int {
	w := 0
	for v := d - 1; v > 0; v >>= 1 {
		w++
	}
	return w
}

func TestRunGreedyWinsOnRunFriendlyGraph(t *testing.T) {
	// Deterministic regression for the heuristic's purpose: on a star
	// with a long tail, destinations served by the same port are label-
	// contiguous, and RunGreedy compresses at least as well as MinPort.
	g := gen.Caterpillar(32, 32)
	apsp := shortest.NewAPSP(g)
	a, err := New(g, apsp, MinPort)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(g, apsp, RunGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if routing.MeasureMemory(g, b).GlobalBits > routing.MeasureMemory(g, a).GlobalBits {
		t.Fatal("RunGreedy lost to MinPort on a run-friendly graph")
	}
}

func TestLocalBitsScale(t *testing.T) {
	// On a random dense graph the raw coding dominates:
	// bits per node ≈ (n-1)·ceil(log2 deg) plus the flag.
	g := gen.Complete(17)
	s, err := New(g, nil, MinPort)
	if err != nil {
		t.Fatal(err)
	}
	// K_n tables are a single run (port toward v is the direct edge — all
	// different), so raw coding: 16 entries * 4 bits + 1.
	want := 16*4 + 1
	for x := 0; x < 17; x++ {
		if got := s.LocalBits(graph.NodeID(x)); got > want {
			t.Fatalf("LocalBits(%d) = %d, exceeds raw bound %d", x, got, want)
		}
	}
}

func TestCycleTablesCompress(t *testing.T) {
	// On a cycle each router's table is two long runs (clockwise half,
	// counterclockwise half), so RLE wins by a wide margin.
	g := gen.Cycle(64)
	s, err := New(g, nil, MinPort)
	if err != nil {
		t.Fatal(err)
	}
	rep := routing.MeasureMemory(g, s)
	raw := 63*1 + 1 // 63 destinations, 1 bit per port (degree 2)
	if rep.LocalBits >= raw {
		t.Fatalf("cycle tables did not compress: %d >= %d", rep.LocalBits, raw)
	}
}

func TestEncodeDecodeRowRoundTrip(t *testing.T) {
	check := func(seed uint64, nn uint8) bool {
		n := int(nn%25) + 4
		g := gen.RandomConnected(n, 0.25, xrand.New(seed))
		s, err := New(g, nil, MinPort)
		if err != nil {
			return false
		}
		for x := 0; x < n; x++ {
			buf := s.EncodeRow(graph.NodeID(x))
			row, err := DecodeRow(buf, n, graph.NodeID(x), g.Degree(graph.NodeID(x)))
			if err != nil {
				return false
			}
			for v := 0; v < n; v++ {
				if v == x {
					continue
				}
				if row[v] != s.PortEntry(graph.NodeID(x), graph.NodeID(v)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodedSizeMatchesLocalBits(t *testing.T) {
	g := gen.RandomConnected(30, 0.2, xrand.New(17))
	s, err := New(g, nil, MinPort)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 30; x++ {
		buf := s.EncodeRow(graph.NodeID(x))
		bits := s.LocalBits(graph.NodeID(x))
		// The byte buffer is the bit count rounded up to a byte.
		if len(buf) != (bits+7)/8 {
			t.Fatalf("node %d: %d bytes encoded vs %d bits declared", x, len(buf), bits)
		}
	}
}

func TestName(t *testing.T) {
	g := gen.Cycle(4)
	s, _ := New(g, nil, MinPort)
	if s.Name() == "" {
		t.Fatal("empty scheme name")
	}
}
