package table

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/shortest"
)

// Repair re-derives, in place, exactly the table entries a set of edge
// removals can have invalidated, and returns the routers whose rows
// changed (ascending). It is the incremental counterpart of a full New
// on the post-fault graph, bit-identical to it by construction:
//
//   - Entry (x,v) is a function of the distance row of v and the live
//     arcs of x. Removals only DELETE candidates from the lowest-port
//     scan, so an entry can change only when v's row changed (v is in
//     the dirty set) or the stored port itself went dead (possible only
//     at endpoints of removed edges, whose arc lists carry holes).
//   - Under RunGreedy an entry additionally depends on the previous
//     destination's chosen port, so any change cascades: subsequent
//     entries of that row are re-derived until one re-derives to its
//     stored value, at which point the chain state matches the build
//     again and the sparse scan resumes.
//
// apsp must already be refreshed on the post-fault graph (see
// shortest.RefreshRows), dirty must contain every root whose distance
// row changed (internal/faults.DirtyRoots computes a sound superset),
// and pol must be the policy the scheme was built with — the scheme does
// not record it, and repairing under the wrong policy diverges from the
// rebuild. Vertex removals are not repairable (a removed vertex
// disconnects the pair space and New on the post-fault graph errors);
// Repair returns an error when any destination became unreachable.
func (s *Scheme) Repair(apsp *shortest.APSP, dirty []graph.NodeID, pol Policy) ([]graph.NodeID, error) {
	g := s.g
	g.Freeze()
	n := g.Order()
	if apsp.Order() != n {
		return nil, fmt.Errorf("table: repair order mismatch: apsp %d, scheme %d", apsp.Order(), n)
	}
	inD := make([]bool, n)
	ds := make([]graph.NodeID, 0, len(dirty))
	for _, v := range dirty {
		if int(v) < 0 || int(v) >= n {
			return nil, fmt.Errorf("table: dirty root %d outside [0,%d)", v, n)
		}
		if !inD[v] {
			inD[v] = true
			ds = append(ds, v)
		}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	var changed []graph.NodeID
	for x := 0; x < n; x++ {
		xi := graph.NodeID(x)
		arcs := g.Arcs(xi)
		hasHole := false
		for _, w := range arcs {
			if w == graph.DeadEnd {
				hasHole = true
				break
			}
		}
		if !hasHole && len(ds) == 0 {
			continue
		}
		rowChanged, err := s.repairRow(apsp, xi, arcs, ds, inD, hasHole, pol)
		if err != nil {
			return nil, err
		}
		if rowChanged {
			s.bits[x] = encodedRowBits(s.ports[x], xi, len(arcs))
			changed = append(changed, xi)
		}
	}
	return changed, nil
}

// repairRow re-derives the suspect entries of router x's row. hasHole
// flags x as an endpoint of a removed edge: every entry must then be
// checked for a dead stored port, so the walk is dense; otherwise only
// the dirty destinations ds are visited (plus, under RunGreedy, the
// cascade tail after a change).
func (s *Scheme) repairRow(apsp *shortest.APSP, x graph.NodeID, arcs []graph.NodeID, ds []graph.NodeID, inD []bool, hasHole bool, pol Policy) (bool, error) {
	row := s.ports[x]
	n := len(row)
	rowChanged := false
	cascade := false
	idx := 0 // next unconsumed position in ds during sparse scans
	v := -1
	for {
		if hasHole || cascade {
			v++
		} else {
			// Sparse: jump to the next dirty destination.
			for idx < len(ds) && int(ds[idx]) <= v {
				idx++
			}
			if idx >= len(ds) {
				break
			}
			v = int(ds[idx])
			idx++
		}
		if v >= n {
			break
		}
		if graph.NodeID(v) == x {
			continue
		}
		old := row[v]
		dead := old != graph.NoPort && arcs[old-1] == graph.DeadEnd
		if !cascade && !inD[v] && !dead {
			continue
		}
		rowV := apsp.Row(graph.NodeID(v))
		dxv := rowV[x]
		chosen := graph.NoPort
		if pol == RunGreedy {
			if prev := prevEntry(row, x, v); prev != graph.NoPort {
				if w := arcs[prev-1]; w != graph.DeadEnd && rowV[w]+1 == dxv {
					chosen = prev
				}
			}
		}
		if chosen == graph.NoPort {
			for i, w := range arcs {
				if w == graph.DeadEnd {
					continue
				}
				if rowV[w]+1 == dxv {
					chosen = graph.Port(i + 1)
					break
				}
			}
		}
		if chosen == graph.NoPort {
			return false, fmt.Errorf("table: no shortest first arc %d->%d", x, v)
		}
		if chosen != old {
			row[v] = chosen
			rowChanged = true
			cascade = pol == RunGreedy
		} else if cascade {
			// Chain state equals the build's again; later entries see the
			// same prev they were built with.
			cascade = false
		}
	}
	return rowChanged, nil
}

// prevEntry returns the stored port of the destination immediately
// before v in label order, skipping x — the RunGreedy chain state the
// builder's walk would carry into position v. Entries before v are final
// by the time this is read, so it equals the builder's prev exactly.
func prevEntry(row []graph.Port, x graph.NodeID, v int) graph.Port {
	for u := v - 1; u >= 0; u-- {
		if graph.NodeID(u) == x {
			continue
		}
		return row[u]
	}
	return graph.NoPort
}

// WithRows returns a copy-on-write patch of s bound to g: routers[i]'s
// row is replaced by rows[i] (which the new scheme takes ownership of),
// every other row is shared with s. This is how a serving shard applies
// a schemeio fault delta — O(changed) new state instead of an O(n²)
// rebuild. Routers must be ascending and unique; every patched port must
// be a live port of g (a delta that steers into a dead slot is
// corrupt).
func (s *Scheme) WithRows(g *graph.Graph, routers []graph.NodeID, rows [][]graph.Port) (*Scheme, error) {
	g.Freeze()
	n := g.Order()
	if n != len(s.ports) {
		return nil, fmt.Errorf("table: patch order mismatch: graph %d, scheme %d", n, len(s.ports))
	}
	if len(routers) != len(rows) {
		return nil, fmt.Errorf("table: %d routers but %d rows", len(routers), len(rows))
	}
	c := &Scheme{g: g, ports: make([][]graph.Port, n), bits: make([]int, n), hdr: s.hdr}
	copy(c.ports, s.ports)
	copy(c.bits, s.bits)
	last := graph.NodeID(-1)
	for i, x := range routers {
		if x <= last || int(x) >= n {
			return nil, fmt.Errorf("table: patched router %d out of order or range", x)
		}
		last = x
		row := rows[i]
		if len(row) != n {
			return nil, fmt.Errorf("table: patched row of %d has %d entries, want %d", x, len(row), n)
		}
		arcs := g.Arcs(x)
		for v, p := range row {
			if graph.NodeID(v) == x {
				if p != graph.NoPort {
					return nil, fmt.Errorf("table: patched row of %d stores port %d at itself", x, p)
				}
				continue
			}
			if p < 1 || int(p) > len(arcs) {
				return nil, fmt.Errorf("table: patched row of %d has invalid port %d toward %d", x, p, v)
			}
			if arcs[p-1] == graph.DeadEnd {
				return nil, fmt.Errorf("table: patched row of %d routes %d into dead port %d", x, v, p)
			}
		}
		c.ports[x] = row
		c.bits[x] = encodedRowBits(row, x, len(arcs))
	}
	return c, nil
}
