package table

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

func randomWeights(g *graph.Graph, r *xrand.Rand, maxW int) shortest.Weights {
	w := shortest.UniformWeights(g)
	for u := 0; u < g.Order(); u++ {
		g.ForEachArc(graph.NodeID(u), func(p graph.Port, v graph.NodeID) {
			if graph.NodeID(u) < v {
				c := int32(r.Intn(maxW) + 1)
				w[u][p-1] = c
				w[v][g.BackPort(graph.NodeID(u), p)-1] = c
			}
		})
	}
	return w
}

func TestWeightedTablesOptimalProperty(t *testing.T) {
	check := func(seed uint64, nn uint8) bool {
		n := int(nn%25) + 3
		r := xrand.New(seed)
		g := gen.RandomConnected(n, 0.25, r)
		w := randomWeights(g, r, 7)
		s, err := NewWeighted(g, w, nil, MinPort)
		if err != nil {
			return false
		}
		rep, err := routing.MeasureWeightedStretch(g, s, w, nil)
		if err != nil {
			return false
		}
		return rep.Max == 1.0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedTablesAvoidHeavyEdge(t *testing.T) {
	g := gen.Cycle(4)
	w := shortest.UniformWeights(g)
	p01 := g.PortTo(0, 1)
	w[0][p01-1] = 10
	w[1][g.BackPort(0, p01)-1] = 10
	s, err := NewWeighted(g, w, nil, MinPort)
	if err != nil {
		t.Fatal(err)
	}
	hops, err := routing.Route(g, s, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if routing.PathLen(hops) != 3 {
		t.Fatalf("weighted route 0->1 has %d hops, want 3 (around the heavy edge)", routing.PathLen(hops))
	}
}

func TestWeightedTablesUniformEqualsUnweighted(t *testing.T) {
	g := gen.RandomConnected(25, 0.2, xrand.New(9))
	w := shortest.UniformWeights(g)
	a, err := New(g, nil, MinPort)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWeighted(g, w, nil, MinPort)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 25; u++ {
		for v := 0; v < 25; v++ {
			if u == v {
				continue
			}
			if a.PortEntry(graph.NodeID(u), graph.NodeID(v)) != b.PortEntry(graph.NodeID(u), graph.NodeID(v)) {
				t.Fatalf("uniform weighted tables differ at (%d,%d)", u, v)
			}
		}
	}
}

func TestWeightedTablesHopStretchCanExceedOne(t *testing.T) {
	// Under non-uniform costs the min-cost route may be longer in hops —
	// that is the point of the weighted metric.
	g := gen.Cycle(4)
	w := shortest.UniformWeights(g)
	p01 := g.PortTo(0, 1)
	w[0][p01-1] = 10
	w[1][g.BackPort(0, p01)-1] = 10
	s, err := NewWeighted(g, w, nil, MinPort)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := routing.MeasureStretch(g, s, nil) // hop-metric stretch
	if err != nil {
		t.Fatal(err)
	}
	if rep.Max <= 1.0 {
		t.Fatalf("hop stretch %v, expected > 1 when avoiding the heavy edge", rep.Max)
	}
}
