package table

import (
	"repro/internal/coding"
	"repro/internal/graph"
)

// Wire codec for the routing-table scheme (schemeio kind "table"). The
// payload is the concatenation, in router order, of the exact
// self-delimiting row codes LocalBits meters (EncodeRow: one flag bit,
// then the raw or run-length-compressed row) — so the serialized form
// IS the fixed coding strategy, byte for byte, and per-router wire bits
// equal LocalBits exactly. Both hop (New) and weighted (NewWeighted)
// tables serialize through this codec: the wire format stores ports,
// not metrics.

// EncodePayload appends the scheme's wire payload after the schemeio
// header and returns the per-router payload bits (here: exactly
// LocalBits(x) for every router) plus the absolute bit offset where
// router 0's span begins — rows are contiguous in router order, so the
// pair (routerStart, rb) locates every row for random access.
func (s *Scheme) EncodePayload(w *coding.BitWriter) (rb []int, routerStart int) {
	routerStart = w.Len()
	rb = make([]int, len(s.ports))
	for x := range s.ports {
		start := w.Len()
		s.encodeRowTo(w, graph.NodeID(x))
		rb[x] = w.Len() - start
	}
	return rb, routerStart
}

// AppendRowCode appends router x's self-delimiting row code to a shared
// writer — the streaming form of EncodeRow the schemeio delta codec
// interleaves with its own framing.
func (s *Scheme) AppendRowCode(w *coding.BitWriter, x graph.NodeID) {
	s.encodeRowTo(w, x)
}

// AppendPortRowCode appends the fixed row coding of a standalone row
// (one port per destination, NoPort at x) for a router of the given
// degree — the scheme-free form a decoded delta re-encodes through.
func AppendPortRowCode(w *coding.BitWriter, row []graph.Port, x graph.NodeID, deg int) {
	writeRowCode(w, row, x, deg, encodedRowBits(row, x, deg))
}

// DecodeRowFrom parses one self-delimiting row code from a shared
// reader — the streaming inverse of AppendRowCode.
func DecodeRowFrom(r *coding.BitReader, n int, x graph.NodeID, deg int) ([]graph.Port, error) {
	return decodeRowFrom(r, n, x, deg)
}

// DecodePayload parses a payload written by EncodePayload against the
// graph the scheme was built on, returning a scheme that routes
// bit-identically to the encoded one. Malformed bytes (out-of-range
// ports, overrunning runs, truncation) error, never panic; every
// allocation is sized by g, not by attacker-controlled counts.
func DecodePayload(r *coding.BitReader, g *graph.Graph) (*Scheme, error) {
	n := g.Order()
	s := newScheme(g, n)
	for x := 0; x < n; x++ {
		xi := graph.NodeID(x)
		deg := g.Degree(xi)
		row, err := decodeRowFrom(r, n, xi, deg)
		if err != nil {
			return nil, err
		}
		s.ports[x] = row
		s.bits[x] = encodedRowBits(row, xi, deg)
	}
	return s, nil
}
