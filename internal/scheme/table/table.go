// Package table implements full shortest-path routing tables — the
// universal scheme whose O(n log n) bits per router is the upper bound
// that Theorem 1 of the paper proves asymptotically optimal for every
// stretch factor below 2.
//
// Every router x stores one output port per destination. The local code
// measured by LocalBits is the shorter of two self-delimiting encodings:
// the raw row ((n-1)·ceil(log2 deg(x)) bits) and a run-length compressed
// row (useful on graphs whose tables happen to be regular, e.g. cycles).
// One flag bit records the choice, so the decoder is fixed in advance as
// the coding-strategy definition requires.
package table

import (
	"fmt"

	"repro/internal/coding"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/shortest"
)

// Policy selects which shortest-path first arc a table prefers when
// several exist.
type Policy int

const (
	// MinPort always picks the lowest feasible port. Deterministic and
	// adversary-friendly: on the constraint graphs it reproduces exactly
	// the matrix entries, as the forced pairs admit a single port anyway.
	MinPort Policy = iota
	// RunGreedy scans destinations in label order and keeps the previous
	// destination's port when it is still a shortest first arc, maximizing
	// run lengths for the RLE encoder. Used by the compression ablation.
	RunGreedy
)

// Scheme is a routing-table scheme instance bound to one graph.
type Scheme struct {
	g     *graph.Graph
	ports [][]graph.Port // ports[x][v] = output port at x toward v; NoPort at v==x
	bits  []int          // memoized LocalBits
	hdr   []header       // hdr[v] = header(v); Init hands out pointers, so no per-route boxing
}

// newScheme allocates the shared shell of New and NewWeighted, freezing
// the graph to its CSR layout so construction scans and later route
// simulations iterate flat arcs.
func newScheme(g *graph.Graph, n int) *Scheme {
	g.Freeze()
	s := &Scheme{g: g, ports: make([][]graph.Port, n), bits: make([]int, n), hdr: make([]header, n)}
	for v := range s.hdr {
		s.hdr[v] = header(v)
	}
	return s
}

// New builds shortest-path routing tables for g under the given policy.
// apsp may be nil.
func New(g *graph.Graph, apsp *shortest.APSP, pol Policy) (*Scheme, error) {
	if apsp == nil {
		apsp = shortest.NewAPSP(g)
	}
	n := g.Order()
	if !apsp.Connected() {
		return nil, graph.ErrNotConnected
	}
	s := newScheme(g, n)
	for x := 0; x < n; x++ {
		xi := graph.NodeID(x)
		arcs := g.Arcs(xi)
		row := make([]graph.Port, n)
		prev := graph.NoPort
		for v := 0; v < n; v++ {
			if v == x {
				continue
			}
			// The d(·,v) column equals the contiguous row of v by symmetry.
			rowV := apsp.Row(graph.NodeID(v))
			dxv := rowV[x]
			chosen := graph.NoPort
			if pol == RunGreedy && prev != graph.NoPort {
				if w := arcs[prev-1]; w != graph.DeadEnd && rowV[w]+1 == dxv {
					chosen = prev
				}
			}
			if chosen == graph.NoPort {
				for i, w := range arcs {
					if w == graph.DeadEnd {
						continue // hole left by a removed edge
					}
					if rowV[w]+1 == dxv {
						chosen = graph.Port(i + 1)
						break
					}
				}
			}
			if chosen == graph.NoPort {
				return nil, fmt.Errorf("table: no shortest first arc %d->%d", x, v)
			}
			row[v] = chosen
			prev = chosen
		}
		s.ports[x] = row
		s.bits[x] = encodedRowBits(row, xi, len(arcs))
	}
	return s, nil
}

// Name implements routing.Scheme.
func (s *Scheme) Name() string { return "routing-tables" }

// header is just the destination id; tables never rewrite headers. Init
// returns a pointer into the scheme's precomputed hdr array: storing a
// pointer in the Header interface costs no allocation, while boxing the
// integer value itself would allocate once per routed pair.
type header graph.NodeID

// Init implements routing.Function.
func (s *Scheme) Init(src, dst graph.NodeID) routing.Header { return &s.hdr[dst] }

// Port implements routing.Function.
func (s *Scheme) Port(x graph.NodeID, h routing.Header) graph.Port {
	dst := graph.NodeID(*h.(*header))
	if x == dst {
		return graph.NoPort
	}
	return s.ports[x][dst]
}

// Next implements routing.Function.
func (s *Scheme) Next(x graph.NodeID, h routing.Header) routing.Header { return h }

// PortEntry returns the stored port at x toward v (NoPort when x == v),
// without simulating. The constraint-rebuild experiment reads tables
// through this.
func (s *Scheme) PortEntry(x, v graph.NodeID) graph.Port { return s.ports[x][v] }

// RowCopy returns a copy of router x's full port row (NoPort at x) —
// the shape WithRows and the schemeio delta codec consume.
func (s *Scheme) RowCopy(x graph.NodeID) []graph.Port {
	row := make([]graph.Port, len(s.ports[x]))
	copy(row, s.ports[x])
	return row
}

// LocalBits implements routing.LocalCoder.
func (s *Scheme) LocalBits(x graph.NodeID) int { return s.bits[x] }

// encodedRowBits computes the exact bit cost of the fixed row coding:
//
//	1 flag bit
//	raw:  (n-1) * ceil(log2 deg) bits
//	rle:  per run, gamma(runLength) + ceil(log2 deg) bits
//
// whichever is shorter. Degree and n are not charged: they are part of the
// router's wiring, known to the fixed decoder.
func encodedRowBits(row []graph.Port, x graph.NodeID, deg int) int {
	w := coding.BitsFor(uint64(deg))
	n := len(row)
	raw := (n - 1) * w
	rle := 0
	i := 0
	for i < n {
		if graph.NodeID(i) == x {
			i++
			continue
		}
		j := i
		for j < n && (graph.NodeID(j) == x || row[j] == row[i]) {
			j++
		}
		runLen := j - i
		if graph.NodeID(x) > graph.NodeID(i) && graph.NodeID(x) < graph.NodeID(j) {
			runLen-- // x itself sits inside the run and is skipped
		}
		rle += coding.GammaLen(uint64(runLen)) + w
		i = j
	}
	if rle < raw {
		return 1 + rle
	}
	return 1 + raw
}

// EncodeRow serializes router x's table row with the fixed coding
// strategy; DecodeRow inverts it. These are used by round-trip tests to
// certify that LocalBits counts a code that really determines the local
// routing behaviour (the Kolmogorov requirement), and the wire codec
// (codec.go) concatenates the same self-delimiting row codes.
func (s *Scheme) EncodeRow(x graph.NodeID) []byte {
	w := coding.NewBitWriter()
	s.encodeRowTo(w, x)
	return w.Bytes()
}

// encodeRowTo appends router x's row code to a shared writer. The code
// is self-delimiting given (n, x, deg), so rows concatenate on the wire
// without per-row framing.
func (s *Scheme) encodeRowTo(w *coding.BitWriter, x graph.NodeID) {
	writeRowCode(w, s.ports[x], x, s.g.Degree(x), s.bits[x])
}

// writeRowCode appends one row code, choosing the branch that bits (a
// memoized encodedRowBits result for this row) priced cheaper — the
// free-function form the lazy reader's canonical re-encode check shares
// with encodeRowTo.
func writeRowCode(w *coding.BitWriter, row []graph.Port, x graph.NodeID, deg, bits int) {
	wbits := coding.BitsFor(uint64(deg))
	n := len(row)
	raw := (n - 1) * wbits
	if bits-1 < raw {
		w.WriteBit(1) // RLE
		i := 0
		for i < n {
			if graph.NodeID(i) == x {
				i++
				continue
			}
			j := i
			for j < n && (graph.NodeID(j) == x || row[j] == row[i]) {
				j++
			}
			runLen := j - i
			if graph.NodeID(x) > graph.NodeID(i) && graph.NodeID(x) < graph.NodeID(j) {
				runLen--
			}
			w.WriteGamma(uint64(runLen))
			w.WriteBits(uint64(row[i]-1), wbits)
			i = j
		}
	} else {
		w.WriteBit(0) // raw
		for v := 0; v < n; v++ {
			if graph.NodeID(v) == x {
				continue
			}
			w.WriteBits(uint64(row[v]-1), wbits)
		}
	}
}

// DecodeRow parses a row encoded by EncodeRow back into a port-per-
// destination slice (NoPort at x).
func DecodeRow(buf []byte, n int, x graph.NodeID, deg int) ([]graph.Port, error) {
	return decodeRowFrom(coding.NewBitReader(buf, len(buf)*8), n, x, deg)
}

// decodeRowFrom parses one self-delimiting row code from a shared
// reader — the streaming form DecodeRow and the wire codec both use.
func decodeRowFrom(r *coding.BitReader, n int, x graph.NodeID, deg int) ([]graph.Port, error) {
	row := make([]graph.Port, n)
	if err := decodeRowInto(r, row, x, deg); err != nil {
		return nil, err
	}
	return row, nil
}

// decodeRowInto parses one row code into a caller-provided row of n
// entries — the arena form the lazy mapped reader uses to decode a
// whole stripe of routers into one contiguous block. row must arrive
// zeroed (NoPort everywhere); on success every entry except row[x] is
// assigned.
func decodeRowInto(r *coding.BitReader, row []graph.Port, x graph.NodeID, deg int) error {
	wbits := coding.BitsFor(uint64(deg))
	n := len(row)
	flag, err := r.ReadBit()
	if err != nil {
		return err
	}
	if flag == 0 {
		for v := 0; v < n; v++ {
			if graph.NodeID(v) == x {
				continue
			}
			b, err := r.ReadBits(wbits)
			if err != nil {
				return err
			}
			if int(b) >= deg {
				return fmt.Errorf("table: decoded port %d exceeds degree %d", b+1, deg)
			}
			row[v] = graph.Port(b + 1)
		}
		return nil
	}
	// RLE: runs cover destinations in label order, skipping x.
	v := 0
	for v < n {
		if graph.NodeID(v) == x {
			v++
			continue
		}
		runLen, err := r.ReadGamma()
		if err != nil {
			return err
		}
		pbits, err := r.ReadBits(wbits)
		if err != nil {
			return err
		}
		if int(pbits) >= deg {
			return fmt.Errorf("table: decoded port %d exceeds degree %d", pbits+1, deg)
		}
		p := graph.Port(pbits + 1)
		for k := uint64(0); k < runLen; {
			if v >= n {
				return fmt.Errorf("table: RLE overruns row")
			}
			if graph.NodeID(v) == x {
				v++
				continue
			}
			row[v] = p
			v++
			k++
		}
	}
	return nil
}

var _ routing.Scheme = (*Scheme)(nil)

// HeaderBits implements routing.HeaderSizer: table headers carry only the
// destination identifier.
func (s *Scheme) HeaderBits(h routing.Header) int {
	return coding.BitsFor(uint64(len(s.ports)))
}
