package netserve

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/scheme/table"
	"repro/internal/serve"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

// hotShardFixture builds the two scheme generations of the shard
// hot-swap test — generation 1 on the pre-fault graph, generation 2 the
// incrementally repaired scheme on the faulted clone — plus a query
// batch the two answer differently.
func hotShardFixture(t testing.TB) (sv1, sv2 *serve.Server, qs []serve.Query, want1, want2 []serve.Result) {
	t.Helper()
	base := gen.RandomConnected(36, 0.14, xrand.New(77))
	apsp := shortest.NewAPSP(base)
	sch, err := table.New(base, apsp, table.MinPort)
	if err != nil {
		t.Fatal(err)
	}
	sv1 = serve.New(base, sch, apsp, serve.Options{Workers: 2})

	plan, err := faults.NewPlan(base, faults.Options{
		Mode: faults.KillEdges, Count: 4, Seed: 0xbead, KeepConnected: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	work := base.Clone()
	apspW := shortest.NewAPSP(work)
	repaired, err := table.New(work, apspW, table.MinPort)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range plan.Edges {
		work.RemoveEdge(e[0], e[1])
	}
	work.Freeze()
	dirty := faults.DirtyRoots(apspW, plan.Edges)
	apspW.RefreshRows(work, dirty)
	if _, err := repaired.Repair(apspW, dirty, table.MinPort); err != nil {
		t.Fatal(err)
	}
	sv2 = serve.New(work, repaired, apspW, serve.Options{Workers: 2})

	r := xrand.New(13)
	n := base.Order()
	for len(qs) < 120 {
		u, v := graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n))
		if u == v {
			continue
		}
		qs = append(qs, serve.Query{Op: serve.OpLen, U: u, V: v})
	}
	want1 = sv1.ServeBatch(qs)
	want2 = sv2.ServeBatch(qs)
	if reflect.DeepEqual(want1, want2) {
		t.Fatal("generations answer identically; tearing would be invisible")
	}
	return sv1, sv2, qs, want1, want2
}

// TestShardHotSwapMidStream is the network-side drain contract: a shard
// whose handler routes through serve.HotServer keeps answering framed
// batches while the scheme generation is swapped underneath it.
// Every client batch must come back complete (zero dropped batches)
// and equal ONE generation's answer vector in full — a response mixing
// generations is a torn batch. Runs under `go test -race` in CI.
func TestShardHotSwapMidStream(t *testing.T) {
	sv1, sv2, qs, want1, want2 := hotShardFixture(t)
	hot := serve.NewHot(sv1)
	srv := NewServerInto(func(qs []serve.Query, out []serve.Result) []serve.Result {
		rs, _ := hot.ServeBatchInto(qs, out)
		return rs
	}, Options{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients = 4
	var (
		wg      sync.WaitGroup
		stop    atomic.Bool
		batches atomic.Int64
		failed  atomic.Value
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := DialCluster([]string{addr.String()}, 36, ClusterOptions{Deadline: 5 * time.Second})
			if err != nil {
				failed.CompareAndSwap(nil, "dial: "+err.Error())
				return
			}
			defer cl.Close()
			var out []serve.Result
			for !stop.Load() {
				out = cl.ServeBatchInto(qs, out)
				if len(out) != len(qs) {
					failed.CompareAndSwap(nil, "dropped batch: short result set")
					return
				}
				m1, m2 := true, true
				for i := range out {
					if out[i].Err != nil {
						failed.CompareAndSwap(nil, "query error mid-stream: "+out[i].Err.Error())
						return
					}
					if out[i].Len != want1[i].Len {
						m1 = false
					}
					if out[i].Len != want2[i].Len {
						m2 = false
					}
				}
				if !m1 && !m2 {
					failed.CompareAndSwap(nil, "torn batch: response mixes generations")
					return
				}
				batches.Add(1)
			}
		}()
	}
	// Swap generations while the clients stream, pacing on progress.
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; i < 20; i++ {
		target := batches.Load() + 1
		for batches.Load() < target && failed.Load() == nil && time.Now().Before(deadline) {
			time.Sleep(200 * time.Microsecond)
		}
		next := sv2
		if hot.Generation()%2 == 0 {
			next = sv1
		}
		hot.Swap(next)
	}
	stop.Store(true)
	wg.Wait()
	if msg := failed.Load(); msg != nil {
		t.Fatal(msg)
	}
	if hot.Generation() != 21 {
		t.Fatalf("final generation %d, want 21", hot.Generation())
	}
	if batches.Load() < 20 {
		t.Fatalf("only %d batches completed across the swap storm", batches.Load())
	}
}
