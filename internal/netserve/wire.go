// Package netserve puts a network front end on internal/serve: a TCP
// server speaking a length-prefixed binary query protocol, a shard map
// partitioning the router ID space across k serving shards, and a
// scatter/gather client that fans a batch out to the owning shards and
// reassembles the answers in request order.
//
// The wire format reuses the envelope idioms of internal/coding's
// scheme persistence layer — a magic/version prefix, LEB128 uvarints,
// explicit size caps checked before any allocation — and upholds the
// same contracts the schemeio fuzzers pin:
//
//   - error-never-panic: arbitrary bytes fed to a decoder return an
//     error, never panic, and never allocate proportionally to an
//     attacker-controlled count that has not passed its cap;
//   - canonical bytes: every accepted message re-encodes to the
//     identical byte string, so "decodes successfully" and "re-encodes
//     byte-identically" are the same property on the network boundary
//     exactly as on the persistence boundary;
//   - per-query errors: a failed query is a tagged result inside an
//     ordinary reply; whole-message refusals exist only for transport
//     concerns (overload, malformed frames, shutdown).
//
// Float stretch values never cross the wire: a stretch reply carries
// the integer (Len, Dist) pair and both sides compute
// float64(Len)/float64(Dist), so network answers are bit-identical to
// the in-process serve.Server whatever the platform.
package netserve

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/coding"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/serve"
)

// bitWriterPool and bitReaderPool recycle the codec scratch of the hot
// path — one writer per in-flight encode, one reader per in-flight
// decode, returned after the bytes are flushed or fully copied out.
// Warm servers and clients encode and decode with zero codec
// allocation; EncodeRequest/EncodeResponse keep allocating fresh
// writers because their returned bytes escape.
var (
	bitWriterPool = sync.Pool{New: func() any { return coding.NewBitWriter() }}
	bitReaderPool = sync.Pool{New: func() any { return coding.NewBitReader(nil, 0) }}
)

const (
	// MsgMagic opens every message payload ("NS": netserve).
	MsgMagic uint64 = 0x4e53
	// ProtoVersion is the protocol version; decoders reject any other.
	ProtoVersion = 1

	// Message types, carried after the envelope.
	msgQuery  = 1 // client -> server: a batch of queries
	msgReply  = 2 // server -> client: positional results for one batch
	msgRefuse = 3 // server -> client: whole-message refusal

	// MaxBatchQueries caps the query count one frame may carry. The
	// count is attacker-controlled; the cap is checked before the
	// batch slice is allocated.
	MaxBatchQueries = 1 << 16
	// MaxErrBytes caps one serialized error message. Longer server-side
	// error strings are truncated at encode time, so the cap never
	// rejects a legitimate reply.
	MaxErrBytes = 1 << 10
	// MaxRouteLen caps route lengths and hop counts in replies
	// (routing's default hop budget is 4n+4 with n capped by
	// coding.MaxWireOrder, so honest replies stay far below it).
	MaxRouteLen = 1 << 26
	// MaxFrameBytes caps one length-prefixed frame on the stream —
	// the outermost allocation gate, mirroring schemeio.MaxFileSection.
	MaxFrameBytes = 1 << 26
)

// RefuseCode says why a server refused a whole message instead of
// answering it. Codes are part of the wire format: never renumber.
type RefuseCode uint8

const (
	// RefuseOverloaded: the admission-control semaphore is full. The
	// client should back off; the connection stays usable.
	RefuseOverloaded RefuseCode = 1
	// RefuseMalformed: the frame did not decode; the server closes the
	// connection after sending this (stream state is unrecoverable).
	RefuseMalformed RefuseCode = 2
	// RefuseShutdown: the server is draining and takes no new work.
	RefuseShutdown RefuseCode = 3
)

// String names the code for errors and logs.
func (c RefuseCode) String() string {
	switch c {
	case RefuseOverloaded:
		return "overloaded"
	case RefuseMalformed:
		return "malformed"
	case RefuseShutdown:
		return "shutdown"
	default:
		return fmt.Sprintf("refuse-%d", uint8(c))
	}
}

// Refusal is a decoded whole-message refusal. It implements error so
// DecodeResponse can return it through the ordinary error path while
// callers distinguish it (errors.As) from a malformed frame.
type Refusal struct {
	Code RefuseCode
	Msg  string
}

// Error implements error.
func (r *Refusal) Error() string {
	if r.Msg == "" {
		return fmt.Sprintf("netserve: server refused batch: %s", r.Code)
	}
	return fmt.Sprintf("netserve: server refused batch: %s (%s)", r.Code, r.Msg)
}

// QueryError is a per-query error that crossed the wire: the remote
// server's error message, verbatim. Keeping the message byte-exact is
// what lets a gathered cluster reply re-encode to the same bytes the
// shard sent — and lets the conformance suite compare sharded answers
// to the serial server by encoding both.
type QueryError struct{ Msg string }

// Error implements error.
func (e *QueryError) Error() string { return e.Msg }

// writeEnvelope opens a message: magic, version, type.
func writeEnvelope(w *coding.BitWriter, msgType uint64) {
	w.WriteBits(MsgMagic, 16)
	w.WriteUvarint(ProtoVersion)
	w.WriteUvarint(msgType)
}

// readEnvelope validates the message prefix and returns the type.
func readEnvelope(r *coding.BitReader) (uint64, error) {
	m, err := r.ReadBits(16)
	if err != nil {
		return 0, fmt.Errorf("netserve: message truncated: %w", err)
	}
	if m != MsgMagic {
		return 0, fmt.Errorf("netserve: bad message magic %#x (want %#x)", m, MsgMagic)
	}
	v, err := r.ReadUvarint()
	if err != nil {
		return 0, fmt.Errorf("netserve: protocol version: %w", err)
	}
	if v != ProtoVersion {
		return 0, fmt.Errorf("netserve: unsupported protocol version %d (this peer speaks %d)", v, ProtoVersion)
	}
	t, err := r.ReadUvarint()
	if err != nil {
		return 0, fmt.Errorf("netserve: message type: %w", err)
	}
	return t, nil
}

// finishPayload enforces the schemeio end-of-payload discipline: at
// most 7 trailing bits, all zero — the encoder's byte padding. A set
// pad bit or trailing bytes would let two byte strings alias one
// message, breaking the canonical-bytes contract.
func finishPayload(r *coding.BitReader) error {
	if r.Remaining() >= 8 {
		return fmt.Errorf("netserve: %d trailing bytes after message", r.Remaining()/8)
	}
	for r.Remaining() > 0 {
		b, err := r.ReadBit()
		if err != nil {
			return err
		}
		if b != 0 {
			return fmt.Errorf("netserve: nonzero padding bit after message")
		}
	}
	return nil
}

// EncodeRequest serializes a query batch. Batches must be non-empty,
// at most MaxBatchQueries long, with ops in the known set and node IDs
// inside [0, coding.MaxWireOrder) — the same ranges DecodeRequest
// enforces, so encode-side validation and decode-side acceptance agree
// bit for bit.
func EncodeRequest(qs []serve.Query) ([]byte, error) {
	w := coding.NewBitWriter()
	if err := AppendRequest(w, qs); err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}

// AppendRequest is EncodeRequest onto a caller-owned writer (reset
// first for a standalone message) — the pooled-scratch form the
// cluster's shard calls use so a warm client encodes with no writer
// allocation.
//
//repolint:hotpath
func AppendRequest(w *coding.BitWriter, qs []serve.Query) error {
	if len(qs) == 0 {
		return fmt.Errorf("netserve: empty query batch")
	}
	if len(qs) > MaxBatchQueries {
		return fmt.Errorf("netserve: batch of %d queries exceeds limit %d", len(qs), MaxBatchQueries)
	}
	writeEnvelope(w, msgQuery)
	w.WriteUvarint(uint64(len(qs)))
	for i, q := range qs {
		if q.Op > serve.OpStretch {
			return fmt.Errorf("netserve: query %d: unknown op %d", i, q.Op)
		}
		if q.U < 0 || uint64(q.U) >= coding.MaxWireOrder || q.V < 0 || uint64(q.V) >= coding.MaxWireOrder {
			return fmt.Errorf("netserve: query %d: pair %d->%d outside wire range [0,%d)", i, q.U, q.V, coding.MaxWireOrder)
		}
		w.WriteUvarint(uint64(q.Op))
		w.WriteUvarint(uint64(q.U))
		w.WriteUvarint(uint64(q.V))
	}
	return nil
}

// DecodeRequest parses a query batch. Malformed bytes error without
// panicking; the count cap is checked before the batch allocation; an
// accepted batch re-encodes to the identical bytes.
func DecodeRequest(payload []byte) ([]serve.Query, error) {
	return DecodeRequestInto(payload, nil)
}

// DecodeRequestInto is DecodeRequest with a caller-recycled query
// slice: scratch's backing array is reused when it is big enough
// (queries are plain values, nothing from earlier batches survives in
// them). The server's per-connection loop passes each batch's slice
// back in, so a warm connection decodes requests with zero slice
// allocation.
//
//repolint:hotpath
func DecodeRequestInto(payload []byte, scratch []serve.Query) ([]serve.Query, error) {
	r := bitReaderPool.Get().(*coding.BitReader)
	defer bitReaderPool.Put(r)
	r.Reset(payload, len(payload)*8)
	t, err := readEnvelope(r)
	if err != nil {
		return nil, err
	}
	if t != msgQuery {
		return nil, fmt.Errorf("netserve: message type %d is not a query batch", t)
	}
	count, err := r.ReadUvarint()
	if err != nil {
		return nil, fmt.Errorf("netserve: query count: %w", err)
	}
	if count == 0 {
		return nil, fmt.Errorf("netserve: empty query batch")
	}
	if count > MaxBatchQueries {
		return nil, fmt.Errorf("netserve: batch of %d queries exceeds limit %d", count, MaxBatchQueries)
	}
	var qs []serve.Query
	if uint64(cap(scratch)) >= count {
		qs = scratch[:count]
	} else {
		qs = make([]serve.Query, count)
	}
	for i := range qs {
		op, err := r.ReadUvarint()
		if err != nil {
			return nil, fmt.Errorf("netserve: query %d op: %w", i, err)
		}
		if op > uint64(serve.OpStretch) {
			return nil, fmt.Errorf("netserve: query %d: unknown op %d", i, op)
		}
		u, err := r.ReadUvarint()
		if err != nil {
			return nil, fmt.Errorf("netserve: query %d source: %w", i, err)
		}
		v, err := r.ReadUvarint()
		if err != nil {
			return nil, fmt.Errorf("netserve: query %d destination: %w", i, err)
		}
		if u >= coding.MaxWireOrder || v >= coding.MaxWireOrder {
			return nil, fmt.Errorf("netserve: query %d: pair %d->%d outside wire range [0,%d)", i, u, v, coding.MaxWireOrder)
		}
		qs[i] = serve.Query{Op: serve.Op(op), U: graph.NodeID(u), V: graph.NodeID(v)}
	}
	if err := finishPayload(r); err != nil {
		return nil, err
	}
	return qs, nil
}

// Per-result tags inside a reply. The tag is derived from the result
// shape at encode time and reproduced exactly at decode time, so the
// mapping is a bijection and replies stay canonical.
const (
	tagErr     = 0 // Err != nil: error message string
	tagLen     = 1 // OpLen answer: Len
	tagRoute   = 2 // OpRoute answer: Len + hop sequence
	tagStretch = 3 // OpStretch answer: Len + Dist (stretch recomputed)
)

// EncodeResponse serializes positional results. Error messages longer
// than MaxErrBytes are truncated (the cap must never make an honest
// reply unsendable); everything else must be in range, which it is for
// every result an in-process serve.Server produces on a graph the wire
// header could carry.
func EncodeResponse(rs []serve.Result) ([]byte, error) {
	w := coding.NewBitWriter()
	if err := AppendResponse(w, rs); err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}

// AppendResponse is EncodeResponse onto a caller-owned writer (reset
// first for a standalone message) — the pooled-scratch form the
// server's reply path uses: encode into a pooled writer, flush the
// frame, return the writer. Zero encode allocation per warm batch.
//
//repolint:hotpath
func AppendResponse(w *coding.BitWriter, rs []serve.Result) error {
	if len(rs) == 0 {
		return fmt.Errorf("netserve: empty result batch")
	}
	if len(rs) > MaxBatchQueries {
		return fmt.Errorf("netserve: batch of %d results exceeds limit %d", len(rs), MaxBatchQueries)
	}
	writeEnvelope(w, msgReply)
	w.WriteUvarint(uint64(len(rs)))
	for i, res := range rs {
		switch {
		case res.Err != nil:
			w.WriteUvarint(tagErr)
			writeString(w, res.Err.Error())
		case res.Hops != nil:
			if res.Len < 0 || res.Len > MaxRouteLen || len(res.Hops) > MaxRouteLen {
				return fmt.Errorf("netserve: result %d: route of %d hops (len %d) exceeds limit %d", i, len(res.Hops), res.Len, MaxRouteLen)
			}
			w.WriteUvarint(tagRoute)
			w.WriteUvarint(uint64(res.Len))
			w.WriteUvarint(uint64(len(res.Hops)))
			for _, h := range res.Hops {
				if h.Node < 0 || uint64(h.Node) >= coding.MaxWireOrder || h.Port < 0 || uint64(h.Port) >= coding.MaxWireOrder {
					return fmt.Errorf("netserve: result %d: hop %d[%d] outside wire range", i, h.Node, h.Port)
				}
				w.WriteUvarint(uint64(h.Node))
				w.WriteUvarint(uint64(h.Port))
			}
		case res.Dist != 0:
			if res.Len < 0 || res.Len > MaxRouteLen || res.Dist < 0 {
				return fmt.Errorf("netserve: result %d: stretch answer (len %d, dist %d) out of range", i, res.Len, res.Dist)
			}
			w.WriteUvarint(tagStretch)
			w.WriteUvarint(uint64(res.Len))
			w.WriteUvarint(uint64(res.Dist))
		default:
			if res.Len < 0 || res.Len > MaxRouteLen {
				return fmt.Errorf("netserve: result %d: len %d out of range", i, res.Len)
			}
			w.WriteUvarint(tagLen)
			w.WriteUvarint(uint64(res.Len))
		}
	}
	return nil
}

// DecodeResponse parses a reply. A refusal frame decodes successfully
// into a *Refusal returned through the error path (errors.As separates
// it from a genuinely malformed frame). Accepted replies re-encode to
// the identical bytes: per-query errors come back as *QueryError
// carrying the remote message verbatim, and a stretch answer's float
// is recomputed from the integers on the wire.
//
//repolint:hotpath
func DecodeResponse(payload []byte) ([]serve.Result, error) {
	r := bitReaderPool.Get().(*coding.BitReader)
	defer bitReaderPool.Put(r)
	r.Reset(payload, len(payload)*8)
	t, err := readEnvelope(r)
	if err != nil {
		return nil, err
	}
	if t == msgRefuse {
		code, err := r.ReadUvarint()
		if err != nil {
			return nil, fmt.Errorf("netserve: refusal code: %w", err)
		}
		if code == 0 || code > uint64(RefuseShutdown) {
			return nil, fmt.Errorf("netserve: unknown refusal code %d", code)
		}
		msg, err := readString(r)
		if err != nil {
			return nil, fmt.Errorf("netserve: refusal message: %w", err)
		}
		if err := finishPayload(r); err != nil {
			return nil, err
		}
		return nil, &Refusal{Code: RefuseCode(code), Msg: msg}
	}
	if t != msgReply {
		return nil, fmt.Errorf("netserve: message type %d is not a reply", t)
	}
	count, err := r.ReadUvarint()
	if err != nil {
		return nil, fmt.Errorf("netserve: result count: %w", err)
	}
	if count == 0 {
		return nil, fmt.Errorf("netserve: empty result batch")
	}
	if count > MaxBatchQueries {
		return nil, fmt.Errorf("netserve: batch of %d results exceeds limit %d", count, MaxBatchQueries)
	}
	rs := make([]serve.Result, count)
	for i := range rs {
		tag, err := r.ReadUvarint()
		if err != nil {
			return nil, fmt.Errorf("netserve: result %d tag: %w", i, err)
		}
		switch tag {
		case tagErr:
			msg, err := readString(r)
			if err != nil {
				return nil, fmt.Errorf("netserve: result %d error: %w", i, err)
			}
			rs[i] = serve.Result{Err: &QueryError{Msg: msg}}
		case tagLen:
			l, err := r.ReadUvarint()
			if err != nil {
				return nil, fmt.Errorf("netserve: result %d len: %w", i, err)
			}
			if l > MaxRouteLen {
				return nil, fmt.Errorf("netserve: result %d: len %d exceeds limit %d", i, l, MaxRouteLen)
			}
			rs[i] = serve.Result{Len: int(l)}
		case tagRoute:
			l, err := r.ReadUvarint()
			if err != nil {
				return nil, fmt.Errorf("netserve: result %d len: %w", i, err)
			}
			hops, err := r.ReadUvarint()
			if err != nil {
				return nil, fmt.Errorf("netserve: result %d hop count: %w", i, err)
			}
			if l > MaxRouteLen || hops > MaxRouteLen {
				return nil, fmt.Errorf("netserve: result %d: route of %d hops (len %d) exceeds limit %d", i, hops, l, MaxRouteLen)
			}
			hs := make([]routing.Hop, hops)
			for j := range hs {
				node, err := r.ReadUvarint()
				if err != nil {
					return nil, fmt.Errorf("netserve: result %d hop %d node: %w", i, j, err)
				}
				port, err := r.ReadUvarint()
				if err != nil {
					return nil, fmt.Errorf("netserve: result %d hop %d port: %w", i, j, err)
				}
				if node >= coding.MaxWireOrder || port >= coding.MaxWireOrder {
					return nil, fmt.Errorf("netserve: result %d: hop %d[%d] outside wire range", i, node, port)
				}
				hs[j] = routing.Hop{Node: graph.NodeID(node), Port: graph.Port(port)}
			}
			rs[i] = serve.Result{Len: int(l), Hops: hs}
		case tagStretch:
			l, err := r.ReadUvarint()
			if err != nil {
				return nil, fmt.Errorf("netserve: result %d len: %w", i, err)
			}
			d, err := r.ReadUvarint()
			if err != nil {
				return nil, fmt.Errorf("netserve: result %d dist: %w", i, err)
			}
			if l > MaxRouteLen {
				return nil, fmt.Errorf("netserve: result %d: len %d exceeds limit %d", i, l, MaxRouteLen)
			}
			if d == 0 || d > math.MaxInt32 {
				return nil, fmt.Errorf("netserve: result %d: distance %d outside [1,%d]", i, d, math.MaxInt32)
			}
			rs[i] = serve.Result{Len: int(l), Dist: int32(d), Stretch: float64(l) / float64(d)}
		default:
			return nil, fmt.Errorf("netserve: result %d: unknown tag %d", i, tag)
		}
	}
	if err := finishPayload(r); err != nil {
		return nil, err
	}
	return rs, nil
}

// EncodeRefusal serializes a whole-message refusal. Messages longer
// than MaxErrBytes are truncated like per-query errors.
func EncodeRefusal(code RefuseCode, msg string) []byte {
	w := coding.NewBitWriter()
	writeEnvelope(w, msgRefuse)
	w.WriteUvarint(uint64(code))
	writeString(w, msg)
	return w.Bytes()
}

// writeString appends a uvarint-length-prefixed byte string, truncated
// to MaxErrBytes so the decode-side cap never rejects an honest peer.
func writeString(w *coding.BitWriter, s string) {
	if len(s) > MaxErrBytes {
		s = s[:MaxErrBytes]
	}
	w.WriteUvarint(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		w.WriteBits(uint64(s[i]), 8)
	}
}

// readString consumes a length-prefixed byte string, cap-checked
// before allocation.
func readString(r *coding.BitReader) (string, error) {
	n, err := r.ReadUvarint()
	if err != nil {
		return "", err
	}
	if n > MaxErrBytes {
		return "", fmt.Errorf("netserve: message string of %d bytes exceeds limit %d", n, MaxErrBytes)
	}
	buf := make([]byte, n)
	for i := range buf {
		b, err := r.ReadBits(8)
		if err != nil {
			return "", err
		}
		buf[i] = byte(b)
	}
	return string(buf), nil
}
