package netserve

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/coding"
	"repro/internal/serve"
)

// ClusterOptions configure the scatter/gather client.
type ClusterOptions struct {
	// Deadline bounds one sub-batch round trip to one shard. A shard
	// that has not answered by then is a straggler: its queries get
	// per-query errors, the rest of the batch is unaffected.
	// Default 5s.
	Deadline time.Duration
}

// Cluster is the thin router/aggregator front over k shard servers:
// ServeBatch scatters a batch to the shards owning each query's source
// router, gathers the sub-replies, and reassembles them in request
// order. It has the exact signature and positional contract of
// serve.(*Server).ServeBatch, so the conformance suite can compare the
// two byte for byte — and so a Cluster can itself be the handler of a
// front Server, which is how routeserve exposes a sharded cluster
// behind one listen address.
//
// Failure semantics (the first-error rule, per shard): the first
// transport-level failure on a shard — dial, write, deadline, refusal,
// short reply — stamps every query that batch sent to that shard with
// that one error. Other shards' answers are delivered untouched; the
// batch as a whole never fails.
type Cluster struct {
	m     ShardMap
	opt   ClusterOptions
	pools []*connPool
}

// DialCluster connects to the shard servers at addrs, one address per
// shard in ShardMap order, over the router space [0, n). Every address
// is probed so a dead shard fails here, not mid-batch.
func DialCluster(addrs []string, n int, opt ClusterOptions) (*Cluster, error) {
	m, err := NewShardMap(n, len(addrs))
	if err != nil {
		return nil, err
	}
	if opt.Deadline <= 0 {
		opt.Deadline = 5 * time.Second
	}
	c := &Cluster{m: m, opt: opt}
	for i, addr := range addrs {
		conn, err := probeDial(addr)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("netserve: shard %d at %s: %w", i, addr, err)
		}
		p := &connPool{addr: addr}
		p.put(newPooledConn(conn))
		c.pools = append(c.pools, p)
	}
	return c, nil
}

// Shards returns the shard count.
func (c *Cluster) Shards() int { return c.m.K }

// Map returns the ownership partition.
func (c *Cluster) Map() ShardMap { return c.m }

// ServeBatch answers every query positionally, scattering to owning
// shards concurrently. Per-query errors (wrong op, unreachable pair)
// travel inside shard replies; shard-level failures become per-query
// errors on that shard's queries only.
func (c *Cluster) ServeBatch(qs []serve.Query) []serve.Result {
	return c.ServeBatchInto(qs, nil)
}

// ServeBatchInto is ServeBatch with a caller-recycled result buffer,
// mirroring serve.(*Server).ServeBatchInto: every position is
// overwritten (stamped locally, or written by exactly one shard
// goroutine), so reuse never leaks stale answers. This is the handler
// a front Server plugs in via NewServerInto.
//
//repolint:hotpath
func (c *Cluster) ServeBatchInto(qs []serve.Query, out []serve.Result) []serve.Result {
	if cap(out) >= len(qs) {
		out = out[:len(qs)]
	} else {
		out = make([]serve.Result, len(qs))
	}
	if len(qs) == 0 {
		return out
	}
	// Scatter plan: indices into qs per owning shard. Sources outside
	// [0, n) have no owner; they are answered locally with the serial
	// server's exact message, so a sharded cluster and a serve.Server
	// reject nonsense identically.
	perShard := make([][]int, c.m.K)
	for i, q := range qs {
		if q.U < 0 || int(q.U) >= c.m.N || q.V < 0 || int(q.V) >= c.m.N {
			//repolint:alloc-ok rejection path: allocates only for invalid queries
			out[i] = serve.Result{Err: fmt.Errorf("serve: pair %d->%d outside [0,%d)", q.U, q.V, c.m.N)}
			continue
		}
		s := c.m.Owner(q.U)
		perShard[s] = append(perShard[s], i)
	}
	var wg sync.WaitGroup
	for s, idxs := range perShard {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		//repolint:alloc-ok one fan-out goroutine per non-empty shard per batch, not per query
		go func(shard int, idxs []int) {
			defer wg.Done()
			sub := make([]serve.Query, len(idxs))
			for j, i := range idxs {
				sub[j] = qs[i]
			}
			rs, err := c.callShard(shard, sub)
			if err != nil {
				// First-error rule: one failure stamps the whole
				// sub-batch — order preserved, other shards unaffected.
				for _, i := range idxs {
					out[i] = serve.Result{Err: err}
				}
				return
			}
			for j, i := range idxs {
				out[i] = rs[j]
			}
		}(s, idxs)
	}
	wg.Wait()
	return out
}

// callShard runs one framed round trip against one shard under the
// cluster deadline. The connection returns to the shard's pool only
// after a fully successful exchange; any failure discards it, so a
// poisoned stream can never serve a later batch.
func (c *Cluster) callShard(shard int, sub []serve.Query) ([]serve.Result, error) {
	// Encode into a pooled writer: the request bytes stay valid across
	// the one stale-connection retry because the writer is held until
	// this call returns.
	w := bitWriterPool.Get().(*coding.BitWriter)
	defer bitWriterPool.Put(w)
	w.Reset()
	if err := AppendRequest(w, sub); err != nil {
		return nil, fmt.Errorf("netserve: shard %d: %w", shard, err)
	}
	req := w.Bytes()
	pc, fresh, err := c.pools[shard].get()
	if err != nil {
		return nil, fmt.Errorf("netserve: shard %d: dial: %w", shard, err)
	}
	rs, err := pc.roundTrip(req, c.opt.Deadline)
	if err != nil && !fresh {
		// A pooled connection may have been idle-reaped by the server
		// (ReadTimeout) between batches; retry exactly once on a fresh
		// dial before declaring the shard unhealthy. Fresh-dial
		// failures are genuine and never retried.
		pc.close()
		if pc, _, err = c.pools[shard].dialFresh(); err != nil {
			return nil, fmt.Errorf("netserve: shard %d: dial: %w", shard, err)
		}
		rs, err = pc.roundTrip(req, c.opt.Deadline)
	}
	if err != nil {
		pc.close()
		return nil, fmt.Errorf("netserve: shard %d: %w", shard, err)
	}
	if len(rs) != len(sub) {
		pc.close()
		return nil, fmt.Errorf("netserve: shard %d: %d results for %d queries", shard, len(rs), len(sub))
	}
	c.pools[shard].put(pc)
	return rs, nil
}

// Close closes every pooled connection. In-flight batches on other
// goroutines fail their round trips and report per-query errors.
func (c *Cluster) Close() error {
	for _, p := range c.pools {
		p.closeAll()
	}
	return nil
}

// pooledConn pairs a connection with its buffered reader (buffered
// bytes belong to the connection, so the pair must travel together)
// and its reply-frame scratch (one goroutine owns a pooled connection
// at a time, so the scratch needs no lock).
type pooledConn struct {
	conn         net.Conn
	br           *bufio.Reader
	bw           *bufio.Writer
	frameScratch []byte
}

func newPooledConn(conn net.Conn) *pooledConn {
	return &pooledConn{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
}

// roundTrip writes one request frame and reads one reply frame under
// deadline, decoding it. A decoded Refusal is returned as the error.
func (pc *pooledConn) roundTrip(req []byte, deadline time.Duration) ([]serve.Result, error) {
	pc.conn.SetDeadline(time.Now().Add(deadline))
	if err := writeFrame(pc.bw, req); err != nil {
		return nil, err
	}
	if err := pc.bw.Flush(); err != nil {
		return nil, err
	}
	payload, err := readFrameInto(pc.br, &pc.frameScratch)
	if err != nil {
		return nil, err
	}
	// DecodeResponse copies everything it keeps (strings, hop slices),
	// so the scratch-aliasing payload may be overwritten next round trip.
	return DecodeResponse(payload)
}

func (pc *pooledConn) close() { pc.conn.Close() }

// connPool is a per-shard stack of idle connections. Concurrent
// batches each pop (or dial) their own connection, so pipelining never
// happens on one stream; the protocol stays strictly request/reply.
type connPool struct {
	addr string

	mu     sync.Mutex
	idle   []*pooledConn
	closed bool
}

// get pops an idle connection or dials a fresh one. fresh reports
// which, so the caller knows whether a stale-connection retry applies.
func (p *connPool) get() (pc *pooledConn, fresh bool, err error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, false, fmt.Errorf("cluster closed")
	}
	if n := len(p.idle); n > 0 {
		pc = p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return pc, false, nil
	}
	p.mu.Unlock()
	return p.dialFresh()
}

func (p *connPool) dialFresh() (*pooledConn, bool, error) {
	conn, err := probeDial(p.addr)
	if err != nil {
		return nil, true, err
	}
	return newPooledConn(conn), true, nil
}

func (p *connPool) put(pc *pooledConn) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		pc.close()
		return
	}
	p.idle = append(p.idle, pc)
	p.mu.Unlock()
}

func (p *connPool) closeAll() {
	p.mu.Lock()
	p.closed = true
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	for _, pc := range idle {
		pc.close()
	}
}
