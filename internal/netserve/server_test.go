package netserve

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/serve"
)

// echoHandler answers each query with Len = U*1000 + V — a cheap,
// deterministic stand-in for a serve.Server that makes positional
// mixups visible (the conformance suite at the repository root runs
// the real schemes; these tests probe the transport behaviors).
func echoHandler(qs []serve.Query) []serve.Result {
	rs := make([]serve.Result, len(qs))
	for i, q := range qs {
		if q.Op == serve.OpStretch {
			rs[i] = serve.Result{Err: fmt.Errorf("echo: no oracle for %d->%d", q.U, q.V)}
			continue
		}
		rs[i] = serve.Result{Len: int(q.U)*1000 + int(q.V)}
	}
	return rs
}

func echoLen(q serve.Query) int { return int(q.U)*1000 + int(q.V) }

func testQueries(n, count int) []serve.Query {
	qs := make([]serve.Query, count)
	for i := range qs {
		qs[i] = serve.Query{Op: serve.OpLen, U: graph.NodeID(i % n), V: graph.NodeID((i * 7) % n)}
	}
	return qs
}

func TestClusterEndToEnd(t *testing.T) {
	const n = 30
	group, err := ListenGroup(3, func(int) BatchHandler { return echoHandler }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer group.Close()
	c, err := DialCluster(group.Addrs(), n, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	qs := testQueries(n, 500)
	qs = append(qs, serve.Query{Op: serve.OpLen, U: 99, V: 0}) // out of range: answered locally
	out := c.ServeBatch(qs)
	for i := 0; i < 500; i++ {
		if out[i].Err != nil || out[i].Len != echoLen(qs[i]) {
			t.Fatalf("query %d: got %+v", i, out[i])
		}
	}
	if out[500].Err == nil || !strings.Contains(out[500].Err.Error(), "outside [0,30)") {
		t.Fatalf("out-of-range query: got %+v", out[500])
	}
	// A second batch reuses pooled connections.
	out = c.ServeBatch(qs[:10])
	for i := range out {
		if out[i].Err != nil {
			t.Fatalf("pooled batch query %d: %v", i, out[i].Err)
		}
	}
}

// TestShardHangDeadline pins the straggler contract: a shard that
// accepts frames and never answers trips the cluster deadline, its
// queries get per-query errors, and every other shard's answers arrive
// untouched, in request order.
func TestShardHangDeadline(t *testing.T) {
	const n = 20
	healthy := NewServer(echoHandler, Options{})
	addr0, err := healthy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	// The hanging shard: accepts, reads forever, never writes a byte.
	hang, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hang.Close()
	go func() {
		for {
			conn, err := hang.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 4096)
				for {
					if _, err := conn.Read(buf); err != nil {
						conn.Close()
						return
					}
				}
			}()
		}
	}()
	c, err := DialCluster([]string{addr0.String(), hang.Addr().String()}, n, ClusterOptions{Deadline: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	lo1, _ := c.Map().Range(1)
	qs := testQueries(n, 200)
	start := time.Now()
	out := c.ServeBatch(qs)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("batch took %s; straggler deadline did not fire", elapsed)
	}
	for i, q := range qs {
		if q.U >= lo1 { // owned by the hanging shard
			if out[i].Err == nil || !strings.Contains(out[i].Err.Error(), "shard 1") {
				t.Fatalf("query %d (src %d): got %+v, want shard 1 deadline error", i, q.U, out[i])
			}
		} else if out[i].Err != nil || out[i].Len != echoLen(q) {
			t.Fatalf("query %d (src %d): got %+v, want healthy answer", i, q.U, out[i])
		}
	}
}

// TestShardKilledMidBatch pins partial-result gathering: a shard whose
// connection dies after reading the request yields per-query errors
// for exactly its queries; order and the other shard's answers are
// preserved.
func TestShardKilledMidBatch(t *testing.T) {
	const n = 20
	healthy := NewServer(echoHandler, Options{})
	addr0, err := healthy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	// The dying shard: reads one frame, then slams the connection shut.
	die, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer die.Close()
	go func() {
		for {
			conn, err := die.Accept()
			if err != nil {
				return
			}
			go func() {
				readFrame(bufio.NewReader(conn)) //nolint:errcheck // killed-shard simulation
				conn.Close()
			}()
		}
	}()
	c, err := DialCluster([]string{addr0.String(), die.Addr().String()}, n, ClusterOptions{Deadline: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	lo1, _ := c.Map().Range(1)
	qs := testQueries(n, 200)
	out := c.ServeBatch(qs)
	dead, alive := 0, 0
	for i, q := range qs {
		if q.U >= lo1 {
			if out[i].Err == nil || !strings.Contains(out[i].Err.Error(), "shard 1") {
				t.Fatalf("query %d: got %+v, want shard 1 error", i, out[i])
			}
			dead++
		} else {
			if out[i].Err != nil || out[i].Len != echoLen(q) {
				t.Fatalf("query %d: got %+v, want healthy answer", i, out[i])
			}
			alive++
		}
	}
	if dead == 0 || alive == 0 {
		t.Fatalf("degenerate split dead=%d alive=%d", dead, alive)
	}
}

// TestAdmissionOverload pins the backpressure contract: with the
// semaphore full, new frames are answered RefuseOverloaded immediately
// instead of queueing behind the stuck batch.
func TestAdmissionOverload(t *testing.T) {
	release := make(chan struct{})
	blocking := func(qs []serve.Query) []serve.Result {
		<-release
		return echoHandler(qs)
	}
	srv := NewServer(blocking, Options{MaxInFlight: 1})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	req, err := EncodeRequest(testQueries(4, 8))
	if err != nil {
		t.Fatal(err)
	}
	send := func() ([]serve.Result, error) {
		conn, err := net.Dial("tcp", addr.String())
		if err != nil {
			return nil, err
		}
		defer conn.Close()
		pc := newPooledConn(conn)
		return pc.roundTrip(req, 5*time.Second)
	}
	// Occupy the only slot.
	firstDone := make(chan error, 1)
	go func() {
		_, err := send()
		firstDone <- err
	}()
	// Wait until the blocked batch actually holds the semaphore.
	deadline := time.Now().Add(2 * time.Second)
	for len(srv.sem) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first batch never acquired the admission slot")
		}
		time.Sleep(time.Millisecond)
	}
	// Every concurrent frame now gets an explicit refusal, promptly.
	for i := 0; i < 3; i++ {
		start := time.Now()
		_, err := send()
		var ref *Refusal
		if !errors.As(err, &ref) || ref.Code != RefuseOverloaded {
			t.Fatalf("saturated send %d: got %v, want RefuseOverloaded", i, err)
		}
		if time.Since(start) > time.Second {
			t.Fatalf("saturated send %d blocked %s instead of being rejected", i, time.Since(start))
		}
	}
	close(release)
	if err := <-firstDone; err != nil {
		t.Fatalf("admitted batch failed: %v", err)
	}
}

// TestGracefulDrain pins the shutdown contract: a batch in flight when
// Close begins still gets its full response; new work is refused.
func TestGracefulDrain(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	slow := func(qs []serve.Query) []serve.Result {
		close(entered)
		<-release
		return echoHandler(qs)
	}
	srv := NewServer(slow, Options{DrainTimeout: 5 * time.Second})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pc := newPooledConn(conn)
	req, _ := EncodeRequest(testQueries(4, 4))
	type reply struct {
		rs  []serve.Result
		err error
	}
	got := make(chan reply, 1)
	go func() {
		rs, err := pc.roundTrip(req, 10*time.Second)
		got <- reply{rs, err}
	}()
	<-entered // the batch is mid-handler; now drain
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	time.Sleep(20 * time.Millisecond) // let Close mark the server draining
	close(release)
	r := <-got
	if r.err != nil || len(r.rs) != 4 {
		t.Fatalf("in-flight batch during drain: got %d results, err %v", len(r.rs), r.err)
	}
	if err := <-closed; err != nil {
		t.Fatalf("graceful close: %v", err)
	}
	// The drained server accepts no new connections.
	if c2, err := net.Dial("tcp", addr.String()); err == nil {
		c2.Close()
		t.Fatal("drained server still accepting")
	}
}

// TestMalformedFrameRefused pins the malformed-input path end to end:
// a frame whose payload does not decode draws RefuseMalformed (and the
// stream, still synchronized, keeps serving).
func TestMalformedFrameRefused(t *testing.T) {
	srv := NewServer(echoHandler, Options{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pc := newPooledConn(conn)
	_, err = pc.roundTrip([]byte{0xde, 0xad, 0xbe, 0xef}, 2*time.Second)
	var ref *Refusal
	if !errors.As(err, &ref) || ref.Code != RefuseMalformed {
		t.Fatalf("got %v, want RefuseMalformed", err)
	}
	// Same connection, valid frame: still served.
	req, _ := EncodeRequest(testQueries(4, 2))
	rs, err := pc.roundTrip(req, 2*time.Second)
	if err != nil || len(rs) != 2 {
		t.Fatalf("post-refusal batch: %v (%d results)", err, len(rs))
	}
}

// TestServerConcurrentClients hammers one server from many goroutines
// while counting served batches — a transport-level race canary run
// under CI's -race (the scheme-level canary lives in the root suite).
func TestServerConcurrentClients(t *testing.T) {
	var served atomic.Int64
	counting := func(qs []serve.Query) []serve.Result {
		served.Add(1)
		return echoHandler(qs)
	}
	srv := NewServer(counting, Options{MaxInFlight: 16})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	const clients, batches = 8, 20
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr.String())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			pc := newPooledConn(conn)
			qs := testQueries(16, 32)
			req, _ := EncodeRequest(qs)
			for b := 0; b < batches; b++ {
				rs, err := pc.roundTrip(req, 5*time.Second)
				if err != nil {
					errs <- fmt.Errorf("client %d batch %d: %w", w, b, err)
					return
				}
				for i := range rs {
					if rs[i].Len != echoLen(qs[i]) {
						errs <- fmt.Errorf("client %d: positional mixup at %d", w, i)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := served.Load(); got != clients*batches {
		t.Fatalf("served %d batches, want %d", got, clients*batches)
	}
}
