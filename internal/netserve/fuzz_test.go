package netserve

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/routing"
	"repro/internal/serve"
)

// The wire-protocol fuzzers mirror the schemeio fuzzer contract on the
// network boundary: arbitrary bytes must error, never panic, never
// allocate past a cap that has not been checked; and every ACCEPTED
// message must re-encode to the identical byte string, so the decoders
// admit exactly the canonical spellings their encoders produce.

func FuzzDecodeRequest(f *testing.F) {
	seed, _ := EncodeRequest([]serve.Query{
		{Op: serve.OpRoute, U: 3, V: 9},
		{Op: serve.OpStretch, U: 0, V: 1},
	})
	f.Add(seed)
	f.Add(seed[:len(seed)-1]) // truncated
	f.Add([]byte{})
	f.Add([]byte{0x4e, 0x53, 0x01, 0x01, 0xff, 0xff, 0xff, 0xff, 0x7f}) // huge count
	f.Add(EncodeRefusal(RefuseOverloaded, "x"))                         // wrong type
	f.Fuzz(func(t *testing.T, data []byte) {
		qs, err := DecodeRequest(data)
		if err != nil {
			return
		}
		re, err := EncodeRequest(qs)
		if err != nil {
			t.Fatalf("accepted request does not re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted request re-encodes differently:\n in  %x\n out %x", data, re)
		}
	})
}

func FuzzDecodeResponse(f *testing.F) {
	seed, _ := EncodeResponse([]serve.Result{
		{Len: 4},
		{Len: 6, Dist: 3, Stretch: 2},
		{Len: 1, Hops: []routing.Hop{{Node: 2, Port: 1}, {Node: 5, Port: 0}}},
		{Err: errors.New("serve: pair 1->1 undefined")},
	})
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add(EncodeRefusal(RefuseShutdown, "server draining"))
	f.Add(EncodeRefusal(RefuseOverloaded, ""))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rs, err := DecodeResponse(data)
		if err != nil {
			var ref *Refusal
			if errors.As(err, &ref) {
				// A refusal is a valid decode travelling the error path;
				// it must re-encode byte-identically like any message.
				if re := EncodeRefusal(ref.Code, ref.Msg); !bytes.Equal(re, data) {
					t.Fatalf("accepted refusal re-encodes differently:\n in  %x\n out %x", data, re)
				}
			}
			return
		}
		re, err := EncodeResponse(rs)
		if err != nil {
			t.Fatalf("accepted reply does not re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted reply re-encodes differently:\n in  %x\n out %x", data, re)
		}
	})
}
