package netserve

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/coding"
	"repro/internal/routing"
	"repro/internal/serve"
)

func TestRequestRoundTrip(t *testing.T) {
	qs := []serve.Query{
		{Op: serve.OpRoute, U: 0, V: 17},
		{Op: serve.OpLen, U: 5, V: 5},
		{Op: serve.OpStretch, U: coding.MaxWireOrder - 1, V: 1},
	}
	b, err := EncodeRequest(qs)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeRequest(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(qs) {
		t.Fatalf("got %d queries, want %d", len(got), len(qs))
	}
	for i := range qs {
		if got[i] != qs[i] {
			t.Errorf("query %d: got %+v want %+v", i, got[i], qs[i])
		}
	}
	re, err := EncodeRequest(got)
	if err != nil || !bytes.Equal(re, b) {
		t.Fatalf("re-encode differs (err %v)", err)
	}
}

func TestRequestRejections(t *testing.T) {
	if _, err := EncodeRequest(nil); err == nil {
		t.Error("empty batch encoded")
	}
	if _, err := EncodeRequest([]serve.Query{{Op: 9, U: 0, V: 1}}); err == nil {
		t.Error("unknown op encoded")
	}
	if _, err := EncodeRequest([]serve.Query{{Op: serve.OpLen, U: coding.MaxWireOrder, V: 1}}); err == nil {
		t.Error("out-of-range source encoded")
	}
	if _, err := EncodeRequest([]serve.Query{{Op: serve.OpLen, U: -1, V: 1}}); err == nil {
		t.Error("negative source encoded")
	}
	if _, err := DecodeRequest(nil); err == nil {
		t.Error("empty payload decoded")
	}
	// An oversized declared count must be rejected by the cap before the
	// batch slice is allocated: a 16-byte payload claiming 2^40 queries.
	w := coding.NewBitWriter()
	writeEnvelope(w, msgQuery)
	w.WriteUvarint(1 << 40)
	if _, err := DecodeRequest(w.Bytes()); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("oversized count: got %v, want cap error", err)
	}
	// Reply payload handed to the request decoder is a type error.
	resp, _ := EncodeResponse([]serve.Result{{Len: 3}})
	if _, err := DecodeRequest(resp); err == nil {
		t.Error("reply decoded as request")
	}
}

func TestResponseRoundTrip(t *testing.T) {
	rs := []serve.Result{
		{Len: 4},
		{Len: 2, Dist: 2, Stretch: 1.0},
		{Len: 7, Dist: 3, Stretch: float64(7) / float64(3)},
		{Len: 2, Hops: []routing.Hop{{Node: 1, Port: 2}, {Node: 9, Port: 1}, {Node: 3, Port: 0}}},
		{Len: 0, Hops: []routing.Hop{}},
		{Err: errors.New("serve: pair 3->3 undefined")},
		{Err: errors.New("")},
	}
	b, err := EncodeResponse(rs)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeResponse(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(rs) {
		t.Fatalf("got %d results, want %d", len(got), len(rs))
	}
	for i, want := range rs {
		g := got[i]
		if (g.Err == nil) != (want.Err == nil) {
			t.Fatalf("result %d: err presence mismatch", i)
		}
		if want.Err != nil {
			if g.Err.Error() != want.Err.Error() {
				t.Errorf("result %d: err %q want %q", i, g.Err, want.Err)
			}
			continue
		}
		if g.Len != want.Len || g.Dist != want.Dist || g.Stretch != want.Stretch {
			t.Errorf("result %d: got %+v want %+v", i, g, want)
		}
		if (g.Hops == nil) != (want.Hops == nil) || len(g.Hops) != len(want.Hops) {
			t.Fatalf("result %d: hops shape mismatch", i)
		}
		for j := range want.Hops {
			if g.Hops[j] != want.Hops[j] {
				t.Errorf("result %d hop %d: got %v want %v", i, j, g.Hops[j], want.Hops[j])
			}
		}
	}
	re, err := EncodeResponse(got)
	if err != nil || !bytes.Equal(re, b) {
		t.Fatalf("re-encode differs (err %v)", err)
	}
}

func TestResponseErrorTruncation(t *testing.T) {
	long := strings.Repeat("x", MaxErrBytes+500)
	b, err := EncodeResponse([]serve.Result{{Err: errors.New(long)}})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeResponse(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got[0].Err.Error()) != MaxErrBytes {
		t.Errorf("truncated message is %d bytes, want %d", len(got[0].Err.Error()), MaxErrBytes)
	}
}

func TestRefusalRoundTrip(t *testing.T) {
	for _, code := range []RefuseCode{RefuseOverloaded, RefuseMalformed, RefuseShutdown} {
		b := EncodeRefusal(code, "busy right now")
		_, err := DecodeResponse(b)
		var ref *Refusal
		if !errors.As(err, &ref) {
			t.Fatalf("code %v: decoded to %v, want *Refusal", code, err)
		}
		if ref.Code != code || ref.Msg != "busy right now" {
			t.Errorf("code %v: got %+v", code, ref)
		}
		if re := EncodeRefusal(ref.Code, ref.Msg); !bytes.Equal(re, b) {
			t.Errorf("code %v: re-encode differs", code)
		}
	}
	// Refusal code 0 and codes beyond the known set are malformed, not
	// silently accepted (a future code must bump the protocol version).
	w := coding.NewBitWriter()
	writeEnvelope(w, msgRefuse)
	w.WriteUvarint(0)
	w.WriteUvarint(0)
	if _, err := DecodeResponse(w.Bytes()); err == nil || errors.As(err, new(*Refusal)) {
		t.Errorf("refusal code 0: got %v, want malformed error", err)
	}
}

func TestResponseRejectsZeroDistStretch(t *testing.T) {
	// A stretch reply carrying Dist=0 would decode to a Result that
	// re-encodes under the len tag — an aliasing hole. The decoder must
	// reject it.
	w := coding.NewBitWriter()
	writeEnvelope(w, msgReply)
	w.WriteUvarint(1)
	w.WriteUvarint(tagStretch)
	w.WriteUvarint(5) // len
	w.WriteUvarint(0) // dist = 0: invalid
	if _, err := DecodeResponse(w.Bytes()); err == nil {
		t.Error("stretch reply with zero distance decoded")
	}
}

func TestVersionSkewRejected(t *testing.T) {
	w := coding.NewBitWriter()
	w.WriteBits(MsgMagic, 16)
	w.WriteUvarint(ProtoVersion + 1)
	w.WriteUvarint(msgQuery)
	w.WriteUvarint(1)
	if _, err := DecodeRequest(w.Bytes()); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("got %v, want version error", err)
	}
}

func TestFrameRoundTripAndCaps(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte{1, 2, 3, 4, 5}
	if err := writeFrame(&buf, payload); err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	got, err := readFrame(bufio.NewReader(&buf))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("readFrame: %v %v", got, err)
	}
	// A declared length beyond the cap errors before allocation.
	var huge bytes.Buffer
	huge.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}) // uvarint ~2^41
	if _, err := readFrame(bufio.NewReader(&huge)); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("oversized frame: got %v, want cap error", err)
	}
	var zero bytes.Buffer
	zero.WriteByte(0)
	if _, err := readFrame(bufio.NewReader(&zero)); err == nil {
		t.Error("zero-length frame accepted")
	}
	if err := writeFrame(&bytes.Buffer{}, make([]byte, MaxFrameBytes+1)); err == nil {
		t.Error("oversized frame written")
	}
}

func TestShardMap(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{1, 1}, {5, 2}, {64, 5}, {100, 7}, {7, 7}} {
		m, err := NewShardMap(tc.n, tc.k)
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		// Ranges tile [0, n) exactly, every shard non-empty, and Owner
		// agrees with Range for every router.
		next := 0
		for s := 0; s < tc.k; s++ {
			lo, hi := m.Range(s)
			if int(lo) != next || hi <= lo {
				t.Fatalf("n=%d k=%d shard %d: range [%d,%d) after %d", tc.n, tc.k, s, lo, hi, next)
			}
			for u := lo; u < hi; u++ {
				if m.Owner(u) != s {
					t.Fatalf("n=%d k=%d: Owner(%d) = %d, want %d", tc.n, tc.k, u, m.Owner(u), s)
				}
			}
			next = int(hi)
		}
		if next != tc.n {
			t.Fatalf("n=%d k=%d: ranges end at %d", tc.n, tc.k, next)
		}
	}
	for _, tc := range []struct{ n, k int }{{0, 1}, {4, 0}, {4, -1}, {3, 4}} {
		if _, err := NewShardMap(tc.n, tc.k); err == nil {
			t.Errorf("n=%d k=%d accepted", tc.n, tc.k)
		}
	}
}

func TestRefusalErrorStrings(t *testing.T) {
	r := &Refusal{Code: RefuseOverloaded, Msg: "admission limit reached"}
	if !strings.Contains(r.Error(), "overloaded") {
		t.Errorf("refusal error %q does not name its code", r.Error())
	}
	if s := fmt.Sprint(RefuseCode(9)); !strings.Contains(s, "9") {
		t.Errorf("unknown code prints %q", s)
	}
}
