package netserve

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/coding"
	"repro/internal/serve"
)

// BatchHandler answers one decoded query batch positionally — the
// signature of serve.(*Server).ServeBatch and of
// (*Cluster).ServeBatch, so a shard and an aggregator front are the
// same server with a different handler plugged in.
type BatchHandler func(qs []serve.Query) []serve.Result

// BatchHandlerInto is the allocation-lean handler shape — the
// signature of serve.(*Server).ServeBatchInto and of
// (*Cluster).ServeBatchInto: out's backing array may be reused when it
// is big enough, and every position of the returned slice is
// overwritten. The server hands each connection's previous result
// buffer back in, so a warm connection serves batches without
// allocating results.
type BatchHandlerInto func(qs []serve.Query, out []serve.Result) []serve.Result

// Options configure a Server. Zero values select the defaults noted on
// each field; negative durations are rejected by cliutil before a CLI
// ever builds an Options.
type Options struct {
	// ReadTimeout bounds the wait for the next request frame on a
	// connection; an idle connection past it is closed. Default 30s.
	ReadTimeout time.Duration
	// WriteTimeout bounds writing one response frame. Default 10s.
	WriteTimeout time.Duration
	// MaxInFlight is the admission-control cap: at most this many
	// batches execute concurrently across all connections. A frame
	// arriving with the semaphore full is answered RefuseOverloaded
	// immediately — explicit rejection, never unbounded queueing.
	// Default 64.
	MaxInFlight int
	// DrainTimeout bounds Close's graceful drain: in-flight batches
	// get this long to finish and flush before connections are
	// force-closed. Default 5s.
	DrainTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.ReadTimeout == 0 {
		o.ReadTimeout = 30 * time.Second
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 64
	}
	if o.DrainTimeout == 0 {
		o.DrainTimeout = 5 * time.Second
	}
	return o
}

// Server accepts connections and answers framed query batches through
// its handler. The query path holds no locks: the semaphore gates
// admission, the handler (serve.Server.ServeBatch) is lock-free by the
// read-only-after-decode contract, and each connection is owned by one
// goroutine.
type Server struct {
	h   BatchHandlerInto
	opt Options

	sem chan struct{} // admission: one slot per in-flight batch

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup // connection goroutines
}

// NewServer returns a server answering batches with h. The recycled
// result buffer is dropped on the floor, so plain handlers keep their
// allocate-per-batch behaviour; use NewServerInto to opt in to reuse.
func NewServer(h BatchHandler, opt Options) *Server {
	return NewServerInto(func(qs []serve.Query, _ []serve.Result) []serve.Result { return h(qs) }, opt)
}

// NewServerInto returns a server answering batches with an
// allocation-lean handler: each connection's result buffer cycles
// through h across batches.
func NewServerInto(h BatchHandlerInto, opt Options) *Server {
	opt = opt.withDefaults()
	return &Server{
		h:     h,
		opt:   opt,
		sem:   make(chan struct{}, opt.MaxInFlight),
		conns: make(map[net.Conn]struct{}),
	}
}

// Listen binds addr and serves in a background goroutine, returning
// the bound address (useful with ":0"). Close stops it.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go s.Serve(ln) //nolint:errcheck // surfaced via Close; accept errors after Close are expected
	return ln.Addr(), nil
}

// Serve accepts connections on ln until Close. It returns nil after a
// graceful Close, or the first fatal accept error.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("netserve: server is closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isClosed() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
}

// handleConn runs the per-connection request/reply loop.
//
//repolint:hotpath
func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.dropConn(conn)
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	// Per-connection scratch: the frame buffer, the decoded query slice
	// and the result slice all cycle across this connection's batches,
	// so a warm connection's read-decode-serve-encode loop allocates
	// only what the queries themselves force (route hop slices).
	var frameScratch []byte
	var qsScratch []serve.Query
	var rsScratch []serve.Result
	for {
		if s.isClosed() {
			return // drain: finish the batch in hand (already replied), take no more
		}
		conn.SetReadDeadline(time.Now().Add(s.opt.ReadTimeout))
		payload, err := readFrameInto(br, &frameScratch)
		if err != nil {
			// EOF, idle timeout and the Close wake-up all land here and
			// just drop the connection. A frame that arrived but did not
			// parse (bad length prefix, oversized declaration) gets an
			// explicit refusal first — then the connection must close,
			// because the stream position is unrecoverable.
			if !errors.Is(err, net.ErrClosed) && isFramingError(err) {
				s.reply(conn, bw, EncodeRefusal(RefuseMalformed, err.Error()))
			}
			return
		}
		if s.isClosed() {
			s.reply(conn, bw, EncodeRefusal(RefuseShutdown, "server draining"))
			return
		}
		qs, err := DecodeRequestInto(payload, qsScratch)
		if qs != nil {
			qsScratch = qs
		}
		if err != nil {
			// The frame boundary is intact (length prefix parsed), so the
			// stream stays synchronized: refuse this message, keep serving.
			if !s.reply(conn, bw, EncodeRefusal(RefuseMalformed, err.Error())) {
				return
			}
			continue
		}
		select {
		case s.sem <- struct{}{}:
		default:
			// Admission control: reject now, explicitly. The client sees
			// RefuseOverloaded and decides; nothing queues on the server.
			if !s.reply(conn, bw, EncodeRefusal(RefuseOverloaded, "admission limit reached")) {
				return
			}
			continue
		}
		ok := s.serveBatch(conn, bw, qs, &rsScratch)
		<-s.sem
		if !ok {
			return
		}
	}
}

// serveBatch answers one admitted batch; the semaphore slot is held
// across handler AND response write, so MaxInFlight bounds the whole
// per-batch resource footprint, not just the compute phase. The
// response is encoded into a pooled writer and returned to the pool
// after the frame is flushed; the connection's result buffer recycles
// through rsScratch.
func (s *Server) serveBatch(conn net.Conn, bw *bufio.Writer, qs []serve.Query, rsScratch *[]serve.Result) bool {
	rs := s.h(qs, *rsScratch)
	*rsScratch = rs
	w := bitWriterPool.Get().(*coding.BitWriter)
	defer bitWriterPool.Put(w)
	w.Reset()
	if err := AppendResponse(w, rs); err != nil {
		// Unreachable for results a serve.Server produces on an
		// in-range graph; kept as a refusal so a handler bug surfaces
		// as a protocol answer instead of a dropped connection.
		return s.reply(conn, bw, EncodeRefusal(RefuseMalformed, err.Error()))
	}
	return s.reply(conn, bw, w.Bytes())
}

// reply writes one framed payload under the write deadline. A false
// return means the connection is beyond use.
func (s *Server) reply(conn net.Conn, bw *bufio.Writer, payload []byte) bool {
	conn.SetWriteDeadline(time.Now().Add(s.opt.WriteTimeout))
	if err := writeFrame(bw, payload); err != nil {
		return false
	}
	return bw.Flush() == nil
}

// isFramingError reports whether err came from parsing a frame rather
// than from the connection dying (timeouts, resets, EOF) — only the
// former deserves a refusal message on the way out. A clean EOF at a
// frame boundary and an EOF mid-frame both mean the peer is gone, so
// writing a refusal there would only feed a dead socket.
func isFramingError(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) {
		return false
	}
	return !errors.Is(err, net.ErrClosed) &&
		!errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF)
}

// Close gracefully drains the server: stop accepting, let in-flight
// batches finish and flush their responses (bounded by DrainTimeout),
// then close every connection. Idle connections are woken and closed
// immediately. Safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	// Wake readers blocked waiting for a frame: their read returns a
	// timeout, the loop observes closed and exits. Connections mid-batch
	// are not disturbed — their next read hits the expired deadline only
	// after the response is flushed.
	for conn := range s.conns {
		conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-time.After(s.opt.DrainTimeout):
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-done
		return fmt.Errorf("netserve: drain timed out after %s; connections force-closed", s.opt.DrainTimeout)
	}
}
