package netserve

import (
	"fmt"
	"net"

	"repro/internal/graph"
	"repro/internal/serve"
)

// ShardMap partitions the router ID space [0,n) into k near-equal
// contiguous slices: shard i owns [ceil(i*n/k), ceil((i+1)*n/k)).
// Ownership keys on a query's source router, so a shard answers
// exactly the queries its slice of routers would receive — and with a
// streaming or cached distance backend it holds distance rows only for
// sources it owns, which is the memory story of sharding: k shards at
// O(workers*n) resident rows each, never the n^2 table anywhere.
type ShardMap struct {
	N int // router count
	K int // shard count
}

// NewShardMap validates the partition: at least one shard, and no more
// shards than routers (an empty slice would be a shard that can never
// receive a query — a configuration error, not a degenerate case to
// serve silently).
func NewShardMap(n, k int) (ShardMap, error) {
	if n < 1 {
		return ShardMap{}, fmt.Errorf("netserve: shard map needs n >= 1 routers, got %d", n)
	}
	if k < 1 {
		return ShardMap{}, fmt.Errorf("netserve: shard map needs k >= 1 shards, got %d", k)
	}
	if k > n {
		return ShardMap{}, fmt.Errorf("netserve: %d shards over %d routers leaves empty shards (need k <= n)", k, n)
	}
	return ShardMap{N: n, K: k}, nil
}

// Owner returns the shard owning source router u. The caller
// guarantees u in [0, N); the cluster answers out-of-range sources
// locally before consulting the map.
func (m ShardMap) Owner(u graph.NodeID) int {
	return int(uint64(u) * uint64(m.K) / uint64(m.N))
}

// Range returns shard i's owned slice [lo, hi).
func (m ShardMap) Range(i int) (lo, hi graph.NodeID) {
	lo = graph.NodeID((i*m.N + m.K - 1) / m.K)
	hi = graph.NodeID(((i+1)*m.N + m.K - 1) / m.K)
	return lo, hi
}

// Group runs k shard servers on loopback — the in-process cluster
// bootstrap shared by routeserve -listen -shards k, the loadgen
// harness and the conformance suite. Each shard gets its own Server
// (own admission semaphore, own connections) built over the handler
// the factory returns for its index.
type Group struct {
	servers []*Server
	addrs   []string
}

// ListenGroup starts k servers on 127.0.0.1 ephemeral ports. handler
// is called once per shard index; opt applies to every shard.
func ListenGroup(k int, handler func(shard int) BatchHandler, opt Options) (*Group, error) {
	return ListenGroupInto(k, func(shard int) BatchHandlerInto {
		h := handler(shard)
		return func(qs []serve.Query, _ []serve.Result) []serve.Result { return h(qs) }
	}, opt)
}

// ListenGroupInto is ListenGroup for allocation-lean handlers: each
// shard server recycles its per-connection result buffers through the
// handler (NewServerInto semantics).
func ListenGroupInto(k int, handler func(shard int) BatchHandlerInto, opt Options) (*Group, error) {
	g := &Group{}
	for i := 0; i < k; i++ {
		srv := NewServerInto(handler(i), opt)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			g.Close()
			return nil, fmt.Errorf("netserve: shard %d: %w", i, err)
		}
		g.servers = append(g.servers, srv)
		g.addrs = append(g.addrs, addr.String())
	}
	return g, nil
}

// Addrs returns the shard listen addresses, indexed by shard.
func (g *Group) Addrs() []string { return append([]string(nil), g.addrs...) }

// Server returns shard i's server (tests use it to close one shard).
func (g *Group) Server(i int) *Server { return g.servers[i] }

// Close gracefully drains every shard, returning the first error.
func (g *Group) Close() error {
	var first error
	for _, srv := range g.servers {
		if err := srv.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// probeDial verifies addr accepts a TCP connection (used by DialCluster
// so a misconfigured shard address fails at dial time, not on the
// first batch).
func probeDial(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr)
}
