package netserve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// This file is the stream layer under the message codecs: each message
// payload travels as one frame, a byte-oriented binary uvarint length
// prefix followed by the payload bytes — the same framing discipline
// schemeio uses for its file sections, with the same rule that the
// attacker-controlled length passes its cap before any allocation.
// Frames carry no sequencing state: the protocol is strictly
// request/reply per connection (a client wanting pipelining opens more
// connections, which is what the cluster's per-shard pool does).

// writeFrame appends one length-prefixed frame to w.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameBytes {
		return fmt.Errorf("netserve: frame of %d bytes exceeds limit %d", len(payload), MaxFrameBytes)
	}
	var lenBuf [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(lenBuf[:], uint64(len(payload)))
	if _, err := w.Write(lenBuf[:k]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame consumes one frame. A declared length beyond MaxFrameBytes
// is an error before the buffer is allocated; a zero-length frame is an
// error too (no message encodes to zero bytes, so accepting one would
// only desynchronize the stream later).
func readFrame(r *bufio.Reader) ([]byte, error) {
	var scratch []byte
	return readFrameInto(r, &scratch)
}

// readFrameInto is readFrame with a caller-recycled buffer: the payload
// is read into *scratch when it fits, growing (and retaining) it
// otherwise. Both loop ends — the server's per-connection read loop and
// the client's pooled connections — hold one scratch per stream, so a
// warm connection reads frames with zero buffer allocation. The
// returned slice aliases the scratch and is valid only until the next
// call; every decoder above this layer copies what it keeps.
func readFrameInto(r *bufio.Reader, scratch *[]byte) ([]byte, error) {
	length, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if length == 0 {
		return nil, fmt.Errorf("netserve: zero-length frame")
	}
	if length > MaxFrameBytes {
		return nil, fmt.Errorf("netserve: frame of %d bytes exceeds limit %d", length, MaxFrameBytes)
	}
	buf := *scratch
	if uint64(cap(buf)) < length {
		buf = make([]byte, length)
		*scratch = buf
	}
	buf = buf[:length]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("netserve: frame body: %w", err)
	}
	return buf, nil
}
