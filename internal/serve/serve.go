// Package serve answers routing queries against one loaded scheme — the
// serving-shaped counterpart of internal/evaluate: where the evaluator
// sweeps the whole ordered-pair space once to produce a report, the
// server takes arbitrary batches of caller-chosen queries and answers
// each one, sharding the batch across a worker pool with the same
// claim-from-a-channel decomposition and the same per-worker
// distance-reader discipline (shortest.DistanceSource.NewReader) the
// evaluator uses for its rows.
//
// Results are positional — out[i] answers qs[i] — and every answer is
// computed independently by pure reads of the scheme, the frozen graph
// and a per-worker distance reader, so answers are bit-identical to the
// serial routing package whatever the worker count, and any number of
// goroutines may call ServeBatch on one Server concurrently. That last
// property is the read-only-after-decode contract of internal/schemeio,
// exercised under the race detector by this package's tests: a scheme
// decoded once can serve millions of concurrent queries with no locks
// anywhere on the query path.
package serve

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/shortest"
)

// Op selects what a query computes.
type Op uint8

const (
	// OpLen routes and returns the path length in edges.
	OpLen Op = iota
	// OpRoute routes and additionally materializes the hop sequence.
	OpRoute
	// OpStretch routes and compares with the oracle (exact shortest
	// distance from the server's DistanceSource): Len, Dist and their
	// ratio.
	OpStretch
)

// String names the op as the routeserve query syntax spells it.
func (op Op) String() string {
	switch op {
	case OpLen:
		return "len"
	case OpRoute:
		return "route"
	case OpStretch:
		return "stretch"
	default:
		return fmt.Sprintf("op-%d", uint8(op))
	}
}

// ParseOp maps a query keyword to an Op.
func ParseOp(s string) (Op, error) {
	switch s {
	case "len":
		return OpLen, nil
	case "route":
		return OpRoute, nil
	case "stretch":
		return OpStretch, nil
	default:
		return 0, fmt.Errorf("serve: unknown op %q (want route, len or stretch)", s)
	}
}

// Query is one routing question: route from U to V.
type Query struct {
	Op   Op
	U, V graph.NodeID
}

// Result answers one query. Err is per-query: one malformed or
// undeliverable query never poisons the rest of its batch.
type Result struct {
	Len     int           // routed path length in edges (all ops)
	Dist    int32         // shortest distance (OpStretch)
	Stretch float64       // Len / Dist (OpStretch)
	Hops    []routing.Hop // the walked path, delivery hop included (OpRoute)
	Err     error
}

// Options configure a Server.
type Options struct {
	// Workers is the per-batch pool size; <= 0 selects GOMAXPROCS.
	Workers int
	// MaxHops bounds each simulated route; 0 selects the routing default.
	MaxHops int
}

// Server serves batches of routing queries against one scheme. The
// graph is frozen and the scheme must be read-only (every scheme in
// internal/scheme and everything internal/schemeio decodes qualifies);
// the Server itself holds no mutable state, so it is safe for
// concurrent ServeBatch calls.
type Server struct {
	g   *graph.Graph
	fn  routing.Function
	src shortest.DistanceSource // nil: OpStretch queries error
	opt Options
}

// batchChunk is the unit workers claim from a batch. Chunky enough to
// amortize channel traffic, small enough to balance skewed batches.
const batchChunk = 256

// LazySource defers building a distance backend until the first actual
// row read. A server must be handed its oracle before the ops of its
// query stream are known, but a dense backend costs an n² build — this
// wrapper makes that cost contingent on a stretch query ever arriving
// (routeserve wraps its dense oracle in one, keeping -load + route/len
// streams at load-in-milliseconds). build runs at most once, under
// concurrent NewReader/Row callers from any number of batches.
func LazySource(n int, build func() shortest.DistanceSource) shortest.DistanceSource {
	return &lazySource{n: n, build: build}
}

type lazySource struct {
	n     int
	once  sync.Once
	build func() shortest.DistanceSource
	src   shortest.DistanceSource
	err   error
}

// get resolves the backend exactly once. A build that panics must not
// poison the sync.Once — without the recover, every later Row call
// would nil-deref on the never-assigned src (sync.Once counts a
// panicked f as done). Instead the panic becomes a sticky error every
// subsequent stretch query surfaces per-query.
func (l *lazySource) get() (shortest.DistanceSource, error) {
	l.once.Do(func() {
		defer func() {
			if p := recover(); p != nil {
				l.err = fmt.Errorf("serve: lazy distance source build panicked: %v", p)
			}
		}()
		l.src = l.build()
		if l.src == nil && l.err == nil {
			l.err = fmt.Errorf("serve: lazy distance source build returned nil")
		}
	})
	return l.src, l.err
}

// Order implements shortest.DistanceSource.
func (l *lazySource) Order() int { return l.n }

// NewReader implements shortest.DistanceSource. The reader resolves the
// underlying source on its first Row call, so handing readers to
// workers stays free for batches that never ask for a distance.
func (l *lazySource) NewReader() shortest.RowReader { return &lazyReader{l: l} }

// ResidentRows implements shortest.DistanceSource. It must resolve: the
// bound is a property of the wrapped backend. A failed build has no
// resident rows.
func (l *lazySource) ResidentRows(workers int) int {
	src, err := l.get()
	if err != nil {
		return 0
	}
	return src.ResidentRows(workers)
}

// rowErrReader is the optional error side-channel of a RowReader: a
// reader that can fail to produce rows reports why here after Row
// returned nil. Only the lazy reader implements it today; serveOne
// checks for it only on a nil row, so healthy readers pay nothing.
type rowErrReader interface {
	Err() error
}

type lazyReader struct {
	l   *lazySource
	rd  shortest.RowReader
	err error
}

func (r *lazyReader) Row(src graph.NodeID) []int32 {
	if r.rd == nil {
		if r.err != nil {
			return nil
		}
		s, err := r.l.get()
		if err != nil {
			r.err = err
			return nil
		}
		r.rd = s.NewReader()
	}
	return r.rd.Row(src)
}

// Err implements rowErrReader: the sticky build failure, if any.
func (r *lazyReader) Err() error { return r.err }

// New returns a server for scheme fn on g. src supplies the oracle
// distances of OpStretch queries (shortest.DistanceSource: a dense
// table, a streaming or a cached backend all work — each worker gets
// its own reader); nil disables OpStretch with a per-query error.
func New(g *graph.Graph, fn routing.Function, src shortest.DistanceSource, opt Options) *Server {
	g.Freeze() // serial point: batch workers only read the CSR arcs
	return &Server{g: g, fn: fn, src: src, opt: opt}
}

// WithWorkers returns a server over the same graph, scheme and distance
// source with a different pool size. Servers are immutable, so the
// original keeps serving unchanged — this is how routeserve's -bench
// sweeps its worker ladder over one loaded scheme.
func (sv *Server) WithWorkers(workers int) *Server {
	c := *sv
	c.opt.Workers = workers
	return &c
}

// Workers returns the worker count a batch of the given size runs with.
func (sv *Server) Workers(batch int) int {
	w := sv.opt.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if chunks := (batch + batchChunk - 1) / batchChunk; w > chunks {
		w = chunks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ServeBatch answers every query in qs, positionally. It blocks until
// the whole batch is answered; the answers are independent of the
// worker count, and concurrent ServeBatch calls on one Server are safe.
func (sv *Server) ServeBatch(qs []Query) []Result {
	return sv.ServeBatchInto(qs, nil)
}

// ServeBatchInto is ServeBatch with a caller-recycled result buffer:
// when cap(out) covers the batch it is resliced and reused, otherwise
// a fresh slice is allocated. Every position is overwritten, so stale
// contents never leak between batches. This is the allocation-lean
// entry the network servers drive — one result buffer per connection
// instead of one per batch.
//
//repolint:hotpath
func (sv *Server) ServeBatchInto(qs []Query, out []Result) []Result {
	if cap(out) >= len(qs) {
		out = out[:len(qs)]
	} else {
		out = make([]Result, len(qs))
	}
	if len(qs) == 0 {
		return out
	}
	workers := sv.Workers(len(qs))
	if workers == 1 {
		sv.serveChunk(qs, out, sv.newReader())
		return out
	}
	next := make(chan int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//repolint:alloc-ok one worker goroutine per batch fan-out, amortized over the chunk loop
		go func() {
			defer wg.Done()
			rd := sv.newReader()
			for start := range next {
				end := start + batchChunk
				if end > len(qs) {
					end = len(qs)
				}
				sv.serveChunk(qs[start:end], out[start:end], rd)
			}
		}()
	}
	for start := 0; start < len(qs); start += batchChunk {
		next <- start
	}
	close(next)
	wg.Wait()
	return out
}

func (sv *Server) newReader() shortest.RowReader {
	if sv.src == nil {
		return nil
	}
	return sv.src.NewReader()
}

func (sv *Server) serveChunk(qs []Query, out []Result, rd shortest.RowReader) {
	for i := range qs {
		out[i] = sv.serveOne(qs[i], rd)
	}
}

func (sv *Server) serveOne(q Query, rd shortest.RowReader) Result {
	n := graph.NodeID(sv.g.Order())
	if q.U < 0 || q.U >= n || q.V < 0 || q.V >= n {
		return Result{Err: fmt.Errorf("serve: pair %d->%d outside [0,%d)", q.U, q.V, n)}
	}
	switch q.Op {
	case OpRoute:
		hops, err := routing.Route(sv.g, sv.fn, q.U, q.V, sv.opt.MaxHops)
		if err != nil {
			return Result{Err: err}
		}
		return Result{Len: routing.PathLen(hops), Hops: hops}
	case OpLen:
		l, err := routing.RouteLen(sv.g, sv.fn, q.U, q.V, sv.opt.MaxHops)
		if err != nil {
			return Result{Err: err}
		}
		return Result{Len: l}
	case OpStretch:
		if rd == nil {
			return Result{Err: fmt.Errorf("serve: no distance source configured for stretch queries")}
		}
		if q.U == q.V {
			return Result{Err: fmt.Errorf("serve: stretch of %d->%d undefined (zero distance)", q.U, q.V)}
		}
		l, err := routing.RouteLen(sv.g, sv.fn, q.U, q.V, sv.opt.MaxHops)
		if err != nil {
			return Result{Err: err}
		}
		row := rd.Row(q.U)
		if row == nil {
			err := fmt.Errorf("serve: distance source produced no row for %d", q.U)
			if er, ok := rd.(rowErrReader); ok {
				if e := er.Err(); e != nil {
					err = e
				}
			}
			return Result{Err: err}
		}
		d := row[q.V]
		if d == shortest.Unreachable {
			return Result{Err: fmt.Errorf("serve: pair %d->%d unreachable", q.U, q.V)}
		}
		return Result{Len: l, Dist: d, Stretch: float64(l) / float64(d)}
	default:
		return Result{Err: fmt.Errorf("serve: unknown op %d", q.Op)}
	}
}
