package serve

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/scheme/table"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

// TestLazySourceBuildPanic pins the sticky-error contract: a build
// function that panics must not poison the sync.Once into later
// nil-dereferences — every stretch query surfaces the recovered panic
// as a per-query error, other ops keep working, and ResidentRows
// reports 0 instead of re-entering the failed build.
func TestLazySourceBuildPanic(t *testing.T) {
	g := gen.Cycle(8)
	built, err := table.New(g, nil, table.MinPort)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	src := LazySource(g.Order(), func() shortest.DistanceSource {
		calls++
		panic("backend exploded")
	})
	sv := New(g, loadedScheme(t, g, built), src, Options{Workers: 1})
	qs := []Query{
		{Op: OpStretch, U: 0, V: 3},
		{Op: OpLen, U: 0, V: 3},
		{Op: OpStretch, U: 1, V: 5},
	}
	for round := 0; round < 2; round++ {
		res := sv.ServeBatch(qs)
		for _, i := range []int{0, 2} {
			if res[i].Err == nil {
				t.Fatalf("round %d: stretch query %d after build panic returned no error", round, i)
			}
			if !strings.Contains(res[i].Err.Error(), "backend exploded") {
				t.Fatalf("round %d: error does not surface the panic: %v", round, res[i].Err)
			}
		}
		if res[1].Err != nil {
			t.Fatalf("round %d: len query failed: %v", round, res[1].Err)
		}
	}
	if calls != 1 {
		t.Fatalf("build ran %d times, want exactly 1 (sticky)", calls)
	}
	if r := src.ResidentRows(4); r != 0 {
		t.Fatalf("ResidentRows after failed build = %d, want 0", r)
	}
}

// TestLazySourceNilBuild pins the other degenerate build outcome: a
// build that returns nil becomes a sticky error, not a nil-deref.
func TestLazySourceNilBuild(t *testing.T) {
	g := gen.Cycle(6)
	built, err := table.New(g, nil, table.MinPort)
	if err != nil {
		t.Fatal(err)
	}
	src := LazySource(g.Order(), func() shortest.DistanceSource { return nil })
	sv := New(g, loadedScheme(t, g, built), src, Options{Workers: 1})
	res := sv.ServeBatch([]Query{{Op: OpStretch, U: 0, V: 2}})
	if res[0].Err == nil {
		t.Fatal("stretch against a nil-returning build did not error")
	}
}

// hotGenerations builds the two servers of the drain test: generation 1
// serves the pre-fault scheme on the pre-fault graph, generation 2 the
// incrementally repaired scheme on the faulted graph. The two answer at
// least one query differently (the fault reroutes some pair), which is
// what lets the test detect a torn batch.
func hotGenerations(t testing.TB) (sv1, sv2 *Server, qs []Query, want1, want2 []Result) {
	t.Helper()
	base := gen.RandomConnected(40, 0.12, xrand.New(91))
	apsp := shortest.NewAPSP(base)
	sch, err := table.New(base, apsp, table.MinPort)
	if err != nil {
		t.Fatal(err)
	}
	sv1 = New(base, sch, apsp, Options{Workers: 2})

	plan, err := faults.NewPlan(base, faults.Options{
		Mode: faults.KillEdges, Count: 4, Seed: 0x90e, KeepConnected: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Generation 2 lives on its own clone: build pre-fault (identical to
	// sch — the build is deterministic), inject the plan, repair in place.
	// sv1's graph, scheme and distance rows stay untouched.
	work := base.Clone()
	apspW := shortest.NewAPSP(work)
	repaired, err := table.New(work, apspW, table.MinPort)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range plan.Edges {
		work.RemoveEdge(e[0], e[1])
	}
	work.Freeze()
	dirty := faults.DirtyRoots(apspW, plan.Edges)
	apspW.RefreshRows(work, dirty)
	if _, err := repaired.Repair(apspW, dirty, table.MinPort); err != nil {
		t.Fatal(err)
	}
	sv2 = New(work, repaired, apspW, Options{Workers: 2})

	// Live pairs, still connected post-fault (KeepConnected guarantees all).
	r := xrand.New(7)
	n := base.Order()
	for len(qs) < 300 {
		u, v := graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n))
		if u == v {
			continue
		}
		qs = append(qs, Query{Op: OpLen, U: u, V: v})
	}
	want1 = sv1.ServeBatch(qs)
	want2 = sv2.ServeBatch(qs)
	differ := false
	for i := range want1 {
		if !resultsMatch(want1[i], want2[i]) {
			differ = true
			break
		}
	}
	if !differ {
		t.Fatal("generations answer identically; drain test cannot detect tearing")
	}
	return sv1, sv2, qs, want1, want2
}

// TestHotSwapDrain is the race-tested drain contract of the generation
// swap: worker goroutines hammer ServeBatchInto while the main
// goroutine keeps swapping between two generations whose answers
// differ. Every batch must (a) complete with a full result set — zero
// dropped batches — and (b) answer ENTIRELY on the generation whose
// sequence number it reports: a single answer from the other
// generation is a torn batch. Runs under `go test -race` in CI.
func TestHotSwapDrain(t *testing.T) {
	sv1, sv2, qs, want1, want2 := hotGenerations(t)
	h := NewHot(sv1)
	if h.Generation() != 1 {
		t.Fatalf("initial generation %d, want 1", h.Generation())
	}

	const workers = 6
	var (
		wg      sync.WaitGroup
		stop    atomic.Bool
		batches atomic.Int64
		failed  atomic.Value // first failure message
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var out []Result
			for !stop.Load() {
				var seq uint64
				out, seq = h.ServeBatchInto(qs, out)
				if len(out) != len(qs) {
					failed.CompareAndSwap(nil, "dropped batch: short result set")
					return
				}
				// Odd generations are sv1, even sv2 (Swap alternates below).
				want := want1
				if seq%2 == 0 {
					want = want2
				}
				for i := range out {
					if !resultsMatch(out[i], want[i]) {
						failed.CompareAndSwap(nil, "torn batch: answer from the wrong generation")
						return
					}
				}
				batches.Add(1)
			}
		}()
	}
	// Swap back and forth while the workers drain batches, pacing each
	// swap on batch progress so generations actually get traffic (an
	// unpaced loop finishes all 40 swaps before the first batch lands).
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; i < 40; i++ {
		target := batches.Load() + 1
		for batches.Load() < target && failed.Load() == nil && time.Now().Before(deadline) {
			time.Sleep(100 * time.Microsecond)
		}
		next := sv2
		if h.Generation()%2 == 0 {
			next = sv1
		}
		prev := h.Generation()
		if got := h.Swap(next); got != prev+1 {
			t.Errorf("swap %d: generation %d, want %d", i, got, prev+1)
			break
		}
	}
	stop.Store(true)
	wg.Wait()
	if msg := failed.Load(); msg != nil {
		t.Fatal(msg)
	}
	if h.Generation() != 41 {
		t.Fatalf("final generation %d, want 41", h.Generation())
	}
	if batches.Load() == 0 {
		t.Fatal("no batches completed during the swap storm")
	}
}
