package serve

import (
	"sync/atomic"
)

// generation pairs one immutable Server with its monotonically
// increasing sequence number. The pair is published as a unit: a batch
// that observes seq g routes every one of its queries against the
// matching server, never a mix.
type generation struct {
	seq uint64
	sv  *Server
}

// HotServer serves batches against a swappable scheme generation — the
// dynamic-topology counterpart of the immutable Server. Swap installs a
// new generation atomically; batches already running keep the Server
// pointer they loaded at entry and drain on it (generation g), while
// every batch that starts after the swap routes on g+1. There are no
// locks anywhere: the only synchronization is one atomic pointer load
// per BATCH (not per query), so the hot path of ServeBatchInto is
// unchanged from the immutable Server's.
//
// The drain contract this buys: a fault-repair pipeline can build the
// repaired scheme off to the side, wrap it in a fresh Server, and Swap
// it in while the old generation is still answering — zero dropped or
// torn batches, verified under the race detector by TestHotSwapDrain.
type HotServer struct {
	cur atomic.Pointer[generation]
}

// NewHot returns a hot server whose first generation (seq 1) is sv.
func NewHot(sv *Server) *HotServer {
	h := &HotServer{}
	h.cur.Store(&generation{seq: 1, sv: sv})
	return h
}

// Swap atomically installs sv as the next generation and returns its
// sequence number. In-flight batches finish on the generation they
// started with; new batches observe sv immediately. Concurrent Swap
// calls serialize through the compare-and-swap, so sequence numbers
// never repeat or regress.
func (h *HotServer) Swap(sv *Server) uint64 {
	for {
		old := h.cur.Load()
		next := &generation{seq: old.seq + 1, sv: sv}
		if h.cur.CompareAndSwap(old, next) {
			return next.seq
		}
	}
}

// Generation returns the sequence number of the current generation.
func (h *HotServer) Generation() uint64 {
	return h.cur.Load().seq
}

// Server returns the current generation's server — for callers that
// need batch-independent reads (Workers, option introspection). The
// returned Server is immutable and stays valid after any Swap.
func (h *HotServer) Server() *Server {
	return h.cur.Load().sv
}

// ServeBatch answers every query in qs against one consistent
// generation and reports which one it was.
func (h *HotServer) ServeBatch(qs []Query) ([]Result, uint64) {
	return h.ServeBatchInto(qs, nil)
}

// ServeBatchInto is ServeBatch with a caller-recycled result buffer.
// The generation pointer is loaded exactly once, before the first
// query; a Swap landing mid-batch has no effect on this batch.
//
//repolint:hotpath
func (h *HotServer) ServeBatchInto(qs []Query, out []Result) ([]Result, uint64) {
	gen := h.cur.Load()
	return gen.sv.ServeBatchInto(qs, out), gen.seq
}
