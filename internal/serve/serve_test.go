package serve

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/scheme/landmark"
	"repro/internal/scheme/table"
	"repro/internal/schemeio"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

// loadedScheme builds a scheme, pushes it through the wire codec and
// returns the DECODED instance — the tests exercise the object a real
// server would hold after loading a scheme file, not the builder's.
func loadedScheme(t testing.TB, g *graph.Graph, s routing.Scheme) routing.Scheme {
	t.Helper()
	enc, err := schemeio.Encode(g, s)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := schemeio.Decode(enc.Bytes, g)
	if err != nil {
		t.Fatal(err)
	}
	return dec
}

// testQueries builds a deterministic mixed-op batch covering all three
// ops, in-range and out-of-range pairs, and u == v edge cases.
func testQueries(n int, count int, seed uint64) []Query {
	r := xrand.New(seed)
	qs := make([]Query, count)
	for i := range qs {
		u := graph.NodeID(r.Intn(n))
		v := graph.NodeID(r.Intn(n))
		qs[i] = Query{Op: Op(r.Intn(3)), U: u, V: v}
	}
	qs[0] = Query{Op: OpRoute, U: 0, V: 0}                     // self route: empty path
	qs[1] = Query{Op: OpStretch, U: 1, V: 1}                   // self stretch: per-query error
	qs[2] = Query{Op: OpLen, U: graph.NodeID(n + 5), V: 0}     // out of range
	qs[3] = Query{Op: OpStretch, U: 0, V: graph.NodeID(n - 1)} // regular stretch
	qs[4] = Query{Op: Op(200), U: 0, V: 1}                     // unknown op
	qs[5] = Query{Op: OpRoute, U: graph.NodeID(n - 1), V: 0}   // regular route
	return qs
}

// serialAnswer computes the expected result of one query with the
// serial routing package — the baseline every pooled answer must match
// bit for bit.
func serialAnswer(g *graph.Graph, fn routing.Function, apsp *shortest.APSP, q Query) Result {
	n := graph.NodeID(g.Order())
	if q.U < 0 || q.U >= n || q.V < 0 || q.V >= n {
		return Result{Err: errAny}
	}
	switch q.Op {
	case OpRoute:
		hops, err := routing.Route(g, fn, q.U, q.V, 0)
		if err != nil {
			return Result{Err: errAny}
		}
		return Result{Len: routing.PathLen(hops), Hops: hops}
	case OpLen:
		l, err := routing.RouteLen(g, fn, q.U, q.V, 0)
		if err != nil {
			return Result{Err: errAny}
		}
		return Result{Len: l}
	case OpStretch:
		if q.U == q.V {
			return Result{Err: errAny}
		}
		l, err := routing.RouteLen(g, fn, q.U, q.V, 0)
		if err != nil {
			return Result{Err: errAny}
		}
		d := apsp.Dist(q.U, q.V)
		return Result{Len: l, Dist: d, Stretch: float64(l) / float64(d)}
	default:
		return Result{Err: errAny}
	}
}

// errAny marks "an error is expected here"; resultsMatch only compares
// error presence, not text.
var errAny = &routing.RouteError{Reason: routing.ReasonLoop, Detail: "expected error"}

func resultsMatch(got, want Result) bool {
	if (got.Err != nil) != (want.Err != nil) {
		return false
	}
	if got.Err != nil {
		return true
	}
	return got.Len == want.Len && got.Dist == want.Dist &&
		got.Stretch == want.Stretch && reflect.DeepEqual(got.Hops, want.Hops)
}

// TestServeMatchesSerial pins ServeBatch against the serial baseline
// for every backend and several worker counts.
func TestServeMatchesSerial(t *testing.T) {
	g := gen.RandomConnected(64, 0.1, xrand.New(41))
	apsp := shortest.NewAPSP(g)
	built, err := table.New(g, apsp, table.MinPort)
	if err != nil {
		t.Fatal(err)
	}
	s := loadedScheme(t, g, built)
	qs := testQueries(g.Order(), 2000, 3)
	want := make([]Result, len(qs))
	for i, q := range qs {
		want[i] = serialAnswer(g, s, apsp, q)
	}
	sources := map[string]shortest.DistanceSource{
		"dense":  apsp,
		"stream": shortest.NewStreamSource(g),
		"cache":  shortest.NewCacheSource(g, 7),
	}
	for name, src := range sources {
		for _, workers := range []int{0, 1, 3, 8} {
			sv := New(g, s, src, Options{Workers: workers})
			got := sv.ServeBatch(qs)
			for i := range got {
				if !resultsMatch(got[i], want[i]) {
					t.Fatalf("%s workers=%d: query %d (%+v): got %+v, want %+v",
						name, workers, i, qs[i], got[i], want[i])
				}
			}
		}
	}
}

// TestServeNoDistanceSource pins the per-query error for stretch ops on
// a server without an oracle.
func TestServeNoDistanceSource(t *testing.T) {
	g := gen.RandomTree(15, xrand.New(4))
	built, err := table.New(g, nil, table.MinPort)
	if err != nil {
		t.Fatal(err)
	}
	sv := New(g, loadedScheme(t, g, built), nil, Options{})
	res := sv.ServeBatch([]Query{{Op: OpStretch, U: 0, V: 1}, {Op: OpLen, U: 0, V: 1}})
	if res[0].Err == nil {
		t.Fatal("stretch without a distance source did not error")
	}
	if res[1].Err != nil {
		t.Fatalf("len query failed: %v", res[1].Err)
	}
}

// TestServeEmptyBatch pins the degenerate shapes.
func TestServeEmptyBatch(t *testing.T) {
	g := gen.Petersen()
	built, err := table.New(g, nil, table.MinPort)
	if err != nil {
		t.Fatal(err)
	}
	sv := New(g, loadedScheme(t, g, built), nil, Options{Workers: 4})
	if got := sv.ServeBatch(nil); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
	if w := sv.Workers(1); w != 1 {
		t.Fatalf("1-query batch uses %d workers", w)
	}
}

// TestServeConcurrentRace is the race canary of the serving subsystem:
// many goroutines fire batched queries at ONE loaded (decode-side)
// scheme through ONE server per backend, under `go test -race` in CI.
// Every answer must be bit-identical to the serial routing baseline —
// pinning both the absence of data races (loaded schemes are read-only
// after decode) and the worker-count independence of the answers.
func TestServeConcurrentRace(t *testing.T) {
	g := gen.RandomConnected(48, 0.12, xrand.New(42))
	apsp := shortest.NewAPSP(g)
	builtTables, err := table.New(g, apsp, table.MinPort)
	if err != nil {
		t.Fatal(err)
	}
	builtLm, err := landmark.New(g, apsp, landmark.Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	schemes := map[string]routing.Scheme{
		"tables":   loadedScheme(t, g, builtTables),
		"landmark": loadedScheme(t, g, builtLm),
	}
	for name, s := range schemes {
		for srcName, src := range map[string]shortest.DistanceSource{
			"dense":  apsp,
			"stream": shortest.NewStreamSource(g),
			"cache":  shortest.NewCacheSource(g, 5),
		} {
			sv := New(g, s, src, Options{Workers: 4})
			const goroutines = 8
			const rounds = 5
			var wg sync.WaitGroup
			errs := make(chan string, goroutines)
			for gi := 0; gi < goroutines; gi++ {
				wg.Add(1)
				go func(gi int) {
					defer wg.Done()
					qs := testQueries(g.Order(), 400, uint64(100+gi))
					want := make([]Result, len(qs))
					for i, q := range qs {
						want[i] = serialAnswer(g, s, apsp, q)
					}
					for r := 0; r < rounds; r++ {
						got := sv.ServeBatch(qs)
						for i := range got {
							if !resultsMatch(got[i], want[i]) {
								errs <- name + "/" + srcName + ": concurrent answer diverges from serial"
								return
							}
						}
					}
				}(gi)
			}
			wg.Wait()
			close(errs)
			for e := range errs {
				t.Fatal(e)
			}
		}
	}
}
