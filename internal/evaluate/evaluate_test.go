package evaluate

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/scheme/ecube"
	"repro/internal/scheme/interval"
	"repro/internal/scheme/kcomplete"
	"repro/internal/scheme/landmark"
	"repro/internal/scheme/table"
	"repro/internal/scheme/tree"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

// schemesFor builds every applicable scheme of internal/scheme for g.
func schemesFor(t *testing.T, g *graph.Graph, apsp *shortest.APSP, hypercubeDim int, isTree, isComplete bool) []routing.Scheme {
	t.Helper()
	tb, err := table.New(g, apsp, table.MinPort)
	if err != nil {
		t.Fatal(err)
	}
	iv, err := interval.New(g, apsp, interval.Options{Labels: interval.DFSLabels(g), Policy: interval.RunGreedy})
	if err != nil {
		t.Fatal(err)
	}
	lm, err := landmark.New(g, apsp, landmark.Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	out := []routing.Scheme{tb, iv, lm}
	if hypercubeDim > 0 {
		ec, err := ecube.New(g, hypercubeDim)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, ec)
	}
	if isTree {
		tr, err := tree.New(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, tr)
	}
	if isComplete {
		fr, err := kcomplete.NewFriendly(g)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, fr)
	}
	return out
}

// TestAdversarialCompleteBitIdentical covers kcomplete.Adversarial, which
// scrambles its graph's port labeling in place and therefore needs a
// dedicated instance.
func TestAdversarialCompleteBitIdentical(t *testing.T) {
	g := gen.Complete(16)
	ad, err := kcomplete.Scramble(g, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	apsp := shortest.NewAPSP(g)
	want, err := routing.MeasureStretch(g, ad, apsp)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		rep, err := Stretch(g, ad, apsp, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got := rep.StretchReport(); got != want {
			t.Fatalf("workers=%d: report %+v, serial %+v", workers, got, want)
		}
	}
}

// TestExhaustiveBitIdenticalToSerial checks the headline determinism
// contract: for every scheme on grid and hypercube workloads, the
// parallel exhaustive report equals routing.MeasureStretch and
// routing.MeasureMemory field for field (including the float Mean), and
// is invariant under the worker count.
func TestExhaustiveBitIdenticalToSerial(t *testing.T) {
	type workload struct {
		name       string
		g          *graph.Graph
		dim        int
		isTree     bool
		isComplete bool
	}
	workloads := []workload{
		{name: "grid 5x5", g: gen.Grid2D(5, 5)},
		{name: "hypercube H4", g: gen.Hypercube(4), dim: 4},
		{name: "tree(40)", g: gen.RandomTree(40, xrand.New(3)), isTree: true},
		{name: "K16", g: gen.Complete(16), isComplete: true},
	}
	for _, w := range workloads {
		apsp := shortest.NewAPSP(w.g)
		for _, s := range schemesFor(t, w.g, apsp, w.dim, w.isTree, w.isComplete) {
			want, err := routing.MeasureStretch(w.g, s, apsp)
			if err != nil {
				t.Fatalf("%s/%s: serial: %v", w.name, s.Name(), err)
			}
			var first *Report
			for _, workers := range []int{1, 2, 7} {
				rep, err := Stretch(w.g, s, apsp, Options{Workers: workers})
				if err != nil {
					t.Fatalf("%s/%s: workers=%d: %v", w.name, s.Name(), workers, err)
				}
				if got := rep.StretchReport(); got != want {
					t.Fatalf("%s/%s: workers=%d: report %+v, serial %+v", w.name, s.Name(), workers, got, want)
				}
				if first == nil {
					first = rep
				} else if !reflect.DeepEqual(rep, first) {
					t.Fatalf("%s/%s: workers=%d: full report differs from workers=1", w.name, s.Name(), workers)
				}
			}
			var histTotal int64
			for _, c := range first.Hist.Buckets {
				histTotal += c
			}
			if histTotal != int64(first.Pairs) {
				t.Fatalf("%s/%s: histogram counts %d pairs, report says %d", w.name, s.Name(), histTotal, first.Pairs)
			}
			wantMem := routing.MeasureMemory(w.g, s)
			gotMem := Memory(w.g, s, Options{Workers: 5})
			if !reflect.DeepEqual(gotMem, wantMem) {
				t.Fatalf("%s/%s: memory report %+v, serial %+v", w.name, s.Name(), gotMem, wantMem)
			}
		}
	}
}

// TestWeightedBitIdenticalToSerial checks the weighted engine against
// routing.MeasureWeightedStretch on a weighted torus.
func TestWeightedBitIdenticalToSerial(t *testing.T) {
	g := gen.Torus2D(5, 5)
	w := shortest.UniformWeights(g)
	r := xrand.New(17)
	for u := 0; u < g.Order(); u++ {
		g.ForEachArc(graph.NodeID(u), func(p graph.Port, v graph.NodeID) {
			if graph.NodeID(u) < v {
				c := int32(r.Intn(5) + 1)
				w[u][p-1] = c
				w[v][g.BackPort(graph.NodeID(u), p)-1] = c
			}
		})
	}
	s, err := table.NewWeighted(g, w, nil, table.MinPort)
	if err != nil {
		t.Fatal(err)
	}
	want, err := routing.MeasureWeightedStretch(g, s, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		rep, err := WeightedStretch(g, s, w, nil, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got := rep.StretchReport(); got != want {
			t.Fatalf("workers=%d: report %+v, serial %+v", workers, got, want)
		}
	}
}

// TestWeightedLargeCosts pins the weighted path against the dense
// denominator index: weighted path costs are NOT bounded by the
// diameter, so huge (valid, symmetric) arc weights must route through
// the accumulator's sparse fallback — same numbers as the serial
// reference, no cost-sized allocations.
func TestWeightedLargeCosts(t *testing.T) {
	g := gen.Torus2D(4, 4)
	w := shortest.UniformWeights(g)
	const big = int32(1) << 24
	r := xrand.New(23)
	for u := 0; u < g.Order(); u++ {
		backs := g.BackPorts(graph.NodeID(u))
		for i, v := range g.Arcs(graph.NodeID(u)) {
			if graph.NodeID(u) < v {
				c := big + int32(r.Intn(1000))
				w[u][i] = c
				w[v][backs[i]-1] = c
			}
		}
	}
	s, err := table.NewWeighted(g, w, nil, table.MinPort)
	if err != nil {
		t.Fatal(err)
	}
	want, err := routing.MeasureWeightedStretch(g, s, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		rep, err := WeightedStretch(g, s, w, nil, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got := rep.StretchReport(); got != want {
			t.Fatalf("workers=%d: report %+v, serial %+v", workers, got, want)
		}
	}
}

// TestWeightedStretchBackendParity pins the tentpole contract at the
// package level: WeightedStretch under stream and cache modes never sees
// the dense weighted table yet reports bit-identically to it.
func TestWeightedStretchBackendParity(t *testing.T) {
	g := gen.Torus2D(5, 5)
	w := shortest.RandomWeights(g, 5, xrand.New(17))
	s, err := table.NewWeighted(g, w, nil, table.MinPort)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := WeightedStretch(g, s, w, nil, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []DistMode{DistStream, DistCache} {
		for _, workers := range []int{1, 4} {
			rep, err := WeightedStretch(g, s, w, nil, Options{Workers: workers, DistMode: mode, CacheRows: 3})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", mode, workers, err)
			}
			if !reflect.DeepEqual(rep, dense) {
				t.Fatalf("%s workers=%d: weighted report diverges from dense", mode, workers)
			}
		}
	}
	// Malformed weights surface as an error from backend resolution, in
	// every mode — the replacement for the old silent dense fallback.
	bad := shortest.UniformWeights(g)
	bad[0] = bad[0][:0]
	for _, mode := range []DistMode{DistAuto, DistStream, DistCache} {
		if _, err := WeightedStretch(g, s, bad, nil, Options{DistMode: mode}); err == nil {
			t.Fatalf("%s: malformed weights evaluated without error", mode)
		}
	}
	// Same when the caller supplies the rows itself — explicit Distances
	// or a precomputed dense table skip the resolver's constructors, so
	// WeightedStretch must validate before the cost numerator indexes w
	// inside a worker.
	good, err := shortest.NewWeightedAPSP(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WeightedStretch(g, s, bad, nil, Options{Distances: good}); err == nil {
		t.Fatal("explicit Distances: malformed weights evaluated without error")
	}
	if _, err := WeightedStretch(g, s, bad, good, Options{}); err == nil {
		t.Fatal("caller-supplied dense table: malformed weights evaluated without error")
	}
}

// TestSamplingDeterministic checks that the sampled evaluator is a pure
// function of (n, seed, sample) — independent of workers — and actually
// evaluates the requested number of pairs.
func TestSamplingDeterministic(t *testing.T) {
	g := gen.Grid2D(8, 8)
	apsp := shortest.NewAPSP(g)
	s, err := table.New(g, apsp, table.MinPort)
	if err != nil {
		t.Fatal(err)
	}
	const sample = 500
	var first *Report
	for _, workers := range []int{1, 3, 8} {
		rep, err := Stretch(g, s, apsp, Options{Workers: workers, Sample: sample, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Sampled {
			t.Fatal("report not marked sampled")
		}
		if rep.Pairs != sample {
			t.Fatalf("sampled %d pairs, want %d", rep.Pairs, sample)
		}
		if first == nil {
			first = rep
		} else if !reflect.DeepEqual(rep, first) {
			t.Fatalf("workers=%d: sampled report differs from workers=1", workers)
		}
	}
	other, err := Stretch(g, s, apsp, Options{Sample: sample, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(other, first) {
		t.Fatal("different seeds produced identical sampled reports")
	}
	// A sample of every pair must agree with the exhaustive run on the
	// exactly-merged statistics.
	full, err := Stretch(g, s, apsp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	all, err := Stretch(g, s, apsp, Options{Sample: g.Order() * (g.Order() - 1), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if all.Pairs != full.Pairs || all.Max != full.Max || all.Mean != full.Mean ||
		all.TotalHops != full.TotalHops || all.Hist != full.Hist {
		t.Fatalf("full-coverage sample %+v disagrees with exhaustive %+v", all, full)
	}
}

// TestSampleBudgetCoversAllPairs checks the fallback that lets one
// harness-wide sample budget span workloads of mixed size: a budget at or
// above n(n-1) runs exhaustively instead of failing on small graphs.
func TestSampleBudgetCoversAllPairs(t *testing.T) {
	g := gen.Path(4)
	s, err := table.New(g, nil, table.MinPort)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Stretch(g, s, nil, Options{Sample: 999})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sampled {
		t.Fatal("full-coverage budget still marked sampled")
	}
	if rep.Pairs != 12 {
		t.Fatalf("measured %d pairs, want 12", rep.Pairs)
	}
}

// TestFirstErrorDeterministic checks that the engine reports the error of
// the smallest failing pair in row-major order, whatever the worker
// count.
func TestFirstErrorDeterministic(t *testing.T) {
	n := 20
	f := func(u, v graph.NodeID) (int32, int32, int, error) {
		if u >= 5 && v%3 == 0 {
			return 0, 0, 0, fmt.Errorf("pair %d->%d failed", u, v)
		}
		return 1, 1, 1, nil
	}
	want := "pair 5->0 failed"
	for _, workers := range []int{1, 2, 6} {
		_, err := Pairs(n, f, Options{Workers: workers})
		if err == nil || err.Error() != want {
			t.Fatalf("workers=%d: error %v, want %q", workers, err, want)
		}
	}
}

func TestTrivialOrders(t *testing.T) {
	for n := 0; n <= 1; n++ {
		rep, err := Pairs(n, func(u, v graph.NodeID) (int32, int32, int, error) {
			t.Fatalf("pair func called for n=%d", n)
			return 0, 0, 0, nil
		}, Options{})
		if err != nil || rep.Pairs != 0 {
			t.Fatalf("n=%d: rep=%+v err=%v", n, rep, err)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.add(1.0)  // bucket 0
	h.add(1.24) // bucket 0
	h.add(1.25) // bucket 1
	h.add(3.99) // bucket 11
	h.add(4.0)  // overflow
	h.add(97)   // overflow
	if h.Buckets[0] != 2 || h.Buckets[1] != 1 || h.Buckets[11] != 1 || h.Buckets[12] != 2 {
		t.Fatalf("bucket counts %v", h.Buckets)
	}
	if lo, hi := BucketBounds(0); lo != 1 || hi != 1.25 {
		t.Fatalf("bucket 0 bounds [%v, %v)", lo, hi)
	}
	if lo, hi := BucketBounds(HistBuckets - 1); lo != 4 || hi != -1 {
		t.Fatalf("overflow bucket bounds [%v, %v)", lo, hi)
	}
}

// TestParseDistMode pins the flag spellings the CLIs accept.
func TestParseDistMode(t *testing.T) {
	for s, want := range map[string]DistMode{
		"": DistAuto, "auto": DistAuto, "dense": DistDense,
		"stream": DistStream, "cache": DistCache,
	} {
		got, err := ParseDistMode(s)
		if err != nil || got != want {
			t.Fatalf("ParseDistMode(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseDistMode("turbo"); err == nil {
		t.Fatal("ParseDistMode accepted junk")
	}
}

// TestOptionsSourcePrecedence pins the backend resolution order:
// explicit Distances beats DistMode beats the apsp argument beats a
// fresh dense build.
func TestOptionsSourcePrecedence(t *testing.T) {
	g := gen.Grid2D(3, 3)
	apsp := shortest.NewAPSP(g)
	explicit := shortest.NewStreamSource(g)
	mustSource := func(src shortest.DistanceSource, err error) shortest.DistanceSource {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	if src := mustSource((Options{Distances: explicit, DistMode: DistDense}).Source(g, apsp)); src != shortest.DistanceSource(explicit) {
		t.Fatal("explicit Distances did not win")
	}
	if _, ok := mustSource((Options{DistMode: DistStream}).Source(g, apsp)).(*shortest.StreamSource); !ok {
		t.Fatal("DistStream did not override the apsp argument")
	}
	if _, ok := mustSource((Options{DistMode: DistCache, CacheRows: 5}).Source(g, apsp)).(*shortest.CacheSource); !ok {
		t.Fatal("DistCache did not override the apsp argument")
	}
	if src := mustSource((Options{}).Source(g, apsp)); src != shortest.DistanceSource(apsp) {
		t.Fatal("auto mode ignored the provided dense table")
	}
	if src := mustSource((Options{}).Source(g, nil)); src.Order() != g.Order() {
		t.Fatal("auto mode with nil apsp did not build a dense table")
	}
	if _, err := (Options{DistMode: DistMode(99)}).Source(g, apsp); err == nil {
		t.Fatal("unknown mode silently resolved a backend instead of erroring")
	}
}

// TestSourceForWeighted pins the weighted resolution: every mode yields a
// Dijkstra-backed source, and an unservable mode is an explicit error —
// never a silent dense fallback.
func TestSourceForWeighted(t *testing.T) {
	g := gen.Grid2D(3, 3)
	w := shortest.UniformWeights(g)
	if src, err := (Options{DistMode: DistStream}).SourceFor(g, w, nil); err != nil {
		t.Fatal(err)
	} else if _, ok := src.(*shortest.StreamSource); !ok {
		t.Fatalf("weighted stream mode resolved %T", src)
	}
	if src, err := (Options{DistMode: DistCache, CacheRows: 3}).SourceFor(g, w, nil); err != nil {
		t.Fatal(err)
	} else if _, ok := src.(*shortest.CacheSource); !ok {
		t.Fatalf("weighted cache mode resolved %T", src)
	}
	if src, err := (Options{}).SourceFor(g, w, nil); err != nil {
		t.Fatal(err)
	} else if _, ok := src.(*shortest.APSP); !ok {
		t.Fatalf("weighted auto mode resolved %T", src)
	}
	if _, err := (Options{DistMode: DistMode(99)}).SourceFor(g, w, nil); err == nil {
		t.Fatal("unknown weighted mode resolved a backend instead of erroring")
	}
	bad := shortest.Weights{{1}} // wrong shape: must surface, not fall back dense
	if _, err := (Options{DistMode: DistStream}).SourceFor(g, bad, nil); err == nil {
		t.Fatal("malformed weights resolved a streaming backend")
	}
}

// TestSourceForKernel pins the kernel resolution policy: batch serves
// the hop metric only, through backends that can hold a 64-row block —
// everything else is an explicit error, never a silent scalar fallback.
func TestSourceForKernel(t *testing.T) {
	g := gen.Grid2D(3, 3)
	w := shortest.UniformWeights(g)
	if src, err := (Options{DistMode: DistStream, Kernel: shortest.KernelBatch}).SourceFor(g, nil, nil); err != nil {
		t.Fatal(err)
	} else if rb, ok := src.(shortest.RowBatcher); !ok || rb.RowBatch() != shortest.MSBFSWidth {
		t.Fatalf("batched stream source does not advertise the %d-row block (%T)", shortest.MSBFSWidth, src)
	}
	if src, err := (Options{DistMode: DistDense, Kernel: shortest.KernelBatch}).SourceFor(g, nil, nil); err != nil {
		t.Fatal(err)
	} else if _, ok := src.(*shortest.APSP); !ok {
		t.Fatalf("batched dense mode resolved %T", src)
	}
	if _, err := (Options{DistMode: DistStream, Kernel: shortest.KernelBatch}).SourceFor(g, w, nil); err == nil {
		t.Fatal("weighted metric accepted the batch kernel (no Dijkstra batch exists)")
	}
	if _, err := (Options{DistMode: DistCache, Kernel: shortest.KernelBatch}).SourceFor(g, nil, nil); err == nil {
		t.Fatal("cache mode accepted the batch kernel (rows are cached one at a time)")
	}
	if _, err := (Options{Kernel: shortest.Kernel(99)}).SourceFor(g, nil, nil); err == nil {
		t.Fatal("unknown kernel resolved a backend instead of erroring")
	}
	// The scalar kernel keeps the historical single-row stream claims.
	if src, err := (Options{DistMode: DistStream, Kernel: shortest.KernelScalar}).SourceFor(g, nil, nil); err != nil {
		t.Fatal(err)
	} else if rb, ok := src.(shortest.RowBatcher); !ok || rb.RowBatch() != 1 {
		t.Fatalf("scalar stream source claims %v rows, want 1", src)
	}
}

// TestStretchBatchedStream pins the end-to-end evaluator property on a
// graph bigger than one batch: the batched stream backend's report is
// bit-identical to the serial dense reference at several worker counts.
func TestStretchBatchedStream(t *testing.T) {
	g := gen.RandomConnected(150, 0.05, xrand.New(11))
	apsp := shortest.NewAPSP(g)
	s, err := table.New(g, apsp, table.MinPort)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Stretch(g, s, apsp, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		rep, err := Stretch(g, s, apsp, Options{Workers: workers, DistMode: DistStream, Kernel: shortest.KernelBatch})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if *rep != *ref {
			t.Fatalf("workers=%d: batched stream report differs from dense serial:\n%+v\nvs\n%+v", workers, rep, ref)
		}
	}
}

// TestStretchStreamDisconnected checks the streaming path reports the
// same deterministic error as dense on a disconnected instance.
func TestStretchStreamDisconnected(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	// Real schemes reject forests at construction, so use a toy function
	// that delivers within each component; the cross-component pairs must
	// then fail on the Unreachable distance, on every backend.
	loop := funcScheme{}
	for _, mode := range []DistMode{DistDense, DistStream, DistCache} {
		_, errM := Stretch(g, loop, nil, Options{DistMode: mode, Workers: 2})
		if errM == nil {
			t.Fatalf("%v: disconnected pair did not error", mode)
		}
	}
}

// funcScheme delivers only within a component pair (0,1)/(2,3) by port 1.
type funcScheme struct{}

func (funcScheme) Init(src, dst graph.NodeID) routing.Header { return dst }
func (funcScheme) Port(x graph.NodeID, h routing.Header) graph.Port {
	if x == h.(graph.NodeID) {
		return graph.NoPort
	}
	return 1
}
func (funcScheme) Next(x graph.NodeID, h routing.Header) routing.Header { return h }
