// Package evaluate is the concurrent all-pairs evaluation engine behind
// the experiment harness: it measures the quantities the paper defines
// over every ordered (source, destination) pair — the stretch factor
// s(R, G) of Section 1 and the memory requirement MEM(G,R,x) aggregated
// over routers — by sharding the n² pair space across a worker pool, the
// same row-parallel decomposition that internal/shortest uses for its
// all-pairs BFS (shortest.NewAPSPParallel).
//
// Determinism is a hard requirement here: EXPERIMENTS.md records exact
// numbers, so a report must not depend on the worker count or on
// goroutine scheduling. The engine guarantees this by construction:
//
//   - pairs are sharded by source row, and each row is accumulated
//     serially by whichever worker claims it;
//   - per-row accumulators hold only exactly-mergeable state — integer
//     counters, integer numerator sums keyed by denominator, and
//     argmax/maximum fields — and are merged in increasing row order
//     after all workers finish;
//   - the mean is derived from the merged integer sums in increasing
//     denominator order, so the floating-point evaluation sequence is
//     fixed no matter how rows were interleaved at runtime.
//
// The result is bit-identical for every worker count, and bit-identical
// to the serial reference implementations in internal/routing
// (MeasureStretch, MeasureWeightedStretch, MeasureMemory), which
// accumulate the same integer state pair-by-pair.
//
// A deterministic sampling mode (Options.Sample, seeded through
// internal/xrand) evaluates a uniform subset of the ordered pairs so that
// graphs far beyond exhaustive n² reach remain measurable; the sampled
// pair set depends only on (n, seed, sample size), never on the worker
// count. This follows the bounded-delay spirit of enumeration-complexity
// evaluators: results stream into fixed-size accumulators, and no
// per-pair state survives the measurement.
//
// Callers must pass schemes whose Init/Port/Next/LocalBits are safe for
// concurrent readers. Every scheme in internal/scheme qualifies: they
// precompute their state at construction and only read it afterwards.
package evaluate

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

// DistMode selects how Stretch and WeightedStretch obtain distance rows
// when the caller did not hand them an explicit DistanceSource. Every
// mode yields bit-identical reports — BFS and Dijkstra rows are
// deterministic functions of (graph, metric, source) — so the mode only
// moves the memory/time tradeoff, never the numbers, in either metric.
type DistMode int

const (
	// DistAuto uses the apsp argument when given and otherwise computes
	// a dense table with the run's worker budget — the historical
	// behavior and the default.
	DistAuto DistMode = iota
	// DistDense behaves like DistAuto; it exists so CLIs can spell the
	// default explicitly.
	DistDense
	// DistStream recomputes each claimed source row with a per-worker
	// BFS: O(workers·n) resident distance memory instead of O(n²), the
	// beyond-RAM mode.
	DistStream
	// DistCache streams through a bounded LRU of rows (CacheRows), for
	// sampled runs that revisit rows.
	DistCache
)

// String names the mode as the CLIs spell it.
func (m DistMode) String() string {
	switch m {
	case DistDense:
		return "dense"
	case DistStream:
		return "stream"
	case DistCache:
		return "cache"
	default:
		return "auto"
	}
}

// ParseDistMode maps a -distmode flag value to a DistMode.
func ParseDistMode(s string) (DistMode, error) {
	switch s {
	case "", "auto":
		return DistAuto, nil
	case "dense":
		return DistDense, nil
	case "stream":
		return DistStream, nil
	case "cache":
		return DistCache, nil
	default:
		return DistAuto, fmt.Errorf("evaluate: unknown distance mode %q (want dense, stream or cache)", s)
	}
}

// Options configures one evaluation run.
type Options struct {
	// Workers is the size of the worker pool; <= 0 selects GOMAXPROCS.
	Workers int
	// Sample, when positive, evaluates that many ordered pairs drawn
	// uniformly (without replacement) from the n(n-1) ordered pairs using
	// Seed. Zero means exhaustive; a budget covering every pair also
	// falls back to exhaustive, so one Sample value works across
	// workloads of mixed size.
	Sample int
	// Seed drives the sampling draw; ignored in exhaustive mode.
	Seed uint64
	// MaxHops bounds each simulated route; 0 selects the routing default.
	MaxHops int
	// Distances, when non-nil, is the distance backend for Stretch and
	// takes precedence over DistMode and the apsp argument.
	Distances shortest.DistanceSource
	// DistMode selects the backend built when Distances is nil. Stream
	// and cache win over a non-nil apsp argument, so a harness-wide
	// -distmode flag takes effect even in runners that precomputed a
	// dense table for scheme construction.
	DistMode DistMode
	// CacheRows is the LRU capacity for DistCache; <= 0 selects
	// shortest.DefaultCacheRows.
	CacheRows int
	// Kernel selects the hop-metric row kernel behind the backend this
	// resolver builds: scalar one-BFS-per-row, or the word-parallel
	// 64-source batch kernel (shortest.MSBFSInto). Rows are
	// bit-identical either way, so the kernel moves time and resident
	// rows, never the report. KernelBatch applies only where a batch
	// kernel exists: the weighted metric and the cache backend reject
	// it explicitly — same no-silent-fallback policy as DistMode.
	Kernel shortest.Kernel

	// rowClaim is internal plumbing set by stretchPairs: the number of
	// consecutive source rows one worker claim covers, so claims line
	// up with a RowBatcher source's aligned prefetch blocks. Zero means
	// single-row claims.
	rowClaim int
}

// Source resolves the distance backend a hop-metric Stretch run reads
// from, given the optional dense table the caller may already hold.
// Exposed so harnesses can meter a run's resident-row bound
// (DistanceSource.ResidentRows) without duplicating the precedence
// rules. It is SourceFor with a nil weight assignment.
func (o Options) Source(g *graph.Graph, apsp *shortest.APSP) (shortest.DistanceSource, error) {
	return o.SourceFor(g, nil, apsp)
}

// SourceFor resolves the distance backend for either metric: w == nil
// selects the hop metric (BFS rows), a non-nil w the weighted metric
// (Dijkstra rows under w). Precedence is unchanged from the historical
// hop-only resolver: an explicit Distances wins outright (the caller
// vouches it matches the metric — that is what memreq does after
// resolving once and metering the same source it evaluates against);
// then stream/cache modes, which never materialize the n² table in
// either metric; then the caller's dense table; then a fresh dense build
// with the run's worker budget. A (metric, mode) combination this
// resolver cannot serve is an explicit error — never a silent
// substitution of a dense table, which is what the weighted path used to
// do for -distmode stream|cache.
func (o Options) SourceFor(g *graph.Graph, w shortest.Weights, apsp *shortest.APSP) (shortest.DistanceSource, error) {
	if o.Distances != nil {
		return o.Distances, nil
	}
	switch o.Kernel {
	case shortest.KernelAuto, shortest.KernelScalar, shortest.KernelBatch:
	default:
		return nil, fmt.Errorf("evaluate: unknown distance kernel %d", int(o.Kernel))
	}
	if w != nil && o.Kernel == shortest.KernelBatch {
		return nil, fmt.Errorf("evaluate: the batch (MS-BFS) kernel serves only the hop metric; use kernel auto or scalar for weighted runs")
	}
	switch o.DistMode {
	case DistAuto, DistDense:
		if apsp != nil {
			return apsp, nil
		}
		if w == nil {
			return shortest.NewAPSPWith(g, shortest.APSPOptions{Workers: o.Workers, Kernel: o.Kernel}), nil
		}
		return shortest.NewWeightedAPSPParallel(g, w, o.Workers)
	case DistStream:
		if w == nil {
			return shortest.NewStreamSourceKernel(g, o.Kernel)
		}
		return shortest.NewWeightedStreamSource(g, w)
	case DistCache:
		if o.Kernel == shortest.KernelBatch {
			return nil, fmt.Errorf("evaluate: the batch kernel cannot serve the cache backend (rows are cached one at a time); use kernel auto or scalar")
		}
		if w == nil {
			return shortest.NewCacheSource(g, o.CacheRows), nil
		}
		return shortest.NewWeightedCacheSource(g, w, o.CacheRows)
	}
	metric := "hop"
	if w != nil {
		metric = "weighted"
	}
	return nil, fmt.Errorf("evaluate: distance mode %d cannot serve the %s metric", int(o.DistMode), metric)
}

func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// HistBuckets is the number of stretch histogram buckets: 12 quarter-wide
// buckets covering [1, 4) plus one overflow bucket for stretch >= 4.
const HistBuckets = 13

// Histogram counts pairs by realized stretch. Bucket i < 12 counts
// stretch values in [1 + i/4, 1 + (i+1)/4); bucket 12 counts >= 4.
// Values below 1 (impossible for true stretch) clamp into bucket 0.
type Histogram struct {
	Buckets [HistBuckets]int64
}

// add files one stretch observation.
func (h *Histogram) add(s float64) {
	i := int((s - 1) * 4)
	if i < 0 {
		i = 0
	}
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	h.Buckets[i]++
}

// BucketBounds returns the half-open range [lo, hi) of bucket i; the last
// bucket's hi is +Inf in spirit and reported as -1.
func BucketBounds(i int) (lo, hi float64) {
	lo = 1 + float64(i)/4
	if i == HistBuckets-1 {
		return lo, -1
	}
	return lo, 1 + float64(i+1)/4
}

// Report aggregates one evaluation run. In exhaustive mode (Sampled
// false) it carries exactly the information of routing.StretchReport plus
// the streaming extras (histogram, hop totals).
type Report struct {
	Pairs     int     // ordered pairs measured
	Max       float64 // max ratio (the paper's stretch factor in routing runs)
	Mean      float64 // mean ratio over measured pairs
	WorstU    graph.NodeID
	WorstV    graph.NodeID
	MaxHops   int   // longest walk seen
	TotalHops int64 // total hops over all measured pairs
	Hist      Histogram
	Sampled   bool // true when Options.Sample was in effect
}

// StretchReport converts to the routing package's serial report type. In
// exhaustive mode the fields are bit-identical to what
// routing.MeasureStretch returns for the same inputs.
func (r *Report) StretchReport() routing.StretchReport {
	return routing.StretchReport{
		Max:     r.Max,
		Mean:    r.Mean,
		Pairs:   r.Pairs,
		WorstU:  r.WorstU,
		WorstV:  r.WorstV,
		MaxHops: r.MaxHops,
	}
}

// PairFunc measures one ordered pair (u, v), u != v: it returns the
// measured ratio num/den (e.g. routing path length over distance), and
// the number of hops walked to measure it (0 when not applicable). An
// error marks the pair failed; the engine reports the error of the
// smallest failing (u, v) in row-major order.
type PairFunc func(u, v graph.NodeID) (num, den int32, hops int, err error)

// denseDenLimit bounds the flat denominator index: hop distances on the
// families the suite sweeps are small integers (diameters in the tens),
// while weighted path costs (WeightedStretch denominators) can be any
// positive int32 and high-diameter graphs can reach hop distances in
// the thousands — denominators at or past the limit overflow into a
// small map instead. The limit also caps per-row accumulator memory at
// 8·denseDenLimit bytes across all n live rows (2 KB × n worst case),
// so no denominator distribution can blow the merge up.
const denseDenLimit = 1 << 8

// rowAcc is the per-source-row accumulator. All fields merge exactly:
// integers add, maxima compare, and the numerator sums are keyed by
// denominator so the mean can be recovered in a fixed order later. The
// denominator index is a flat slice for denominators below
// denseDenLimit — the per-pair accumulation costs an array add instead
// of a map probe on every hop-metric run — with a map fallback for the
// sparse large denominators of weighted runs.
type rowAcc struct {
	pairs     int
	max       float64
	worstV    graph.NodeID
	maxHops   int
	totalHops int64
	hist      Histogram
	numByDen  []int64         // numByDen[den] = Σ num over pairs with that den; 0 = absent
	bigDens   map[int32]int64 // denominators >= denseDenLimit (weighted costs)
	err       error           // first error within the row, in destination order
}

// addNum accumulates one pair's numerator under its denominator, growing
// the dense index to cover den when needed.
func (acc *rowAcc) addNum(den int32, num int64) {
	if den >= denseDenLimit {
		if acc.bigDens == nil {
			acc.bigDens = make(map[int32]int64, 4)
		}
		acc.bigDens[den] += num
		return
	}
	if need := int(den) + 1; need > len(acc.numByDen) {
		if half := 2 * len(acc.numByDen); need < half {
			need = half
		}
		grown := make([]int64, need)
		copy(grown, acc.numByDen)
		acc.numByDen = grown
	}
	acc.numByDen[den] += num
}

// Pairs runs f over the ordered pair space of an n-vertex instance —
// exhaustively or over a deterministic sample — and merges the per-row
// accumulators in row order. The report is independent of Workers; the
// first error in row-major pair order aborts with a nil report.
func Pairs(n int, f PairFunc, opt Options) (*Report, error) {
	return PairsFrom(n, func() PairFunc { return f }, opt)
}

// PairsFrom is Pairs with a per-worker PairFunc factory: newF is called
// once inside each worker goroutine, so the returned function may own
// mutable per-worker state — a streaming distance reader with its BFS
// scratch is the motivating case. Determinism is untouched: rows are
// still claimed per source and folded in fixed order, and every
// per-worker PairFunc must compute identical values for identical pairs.
func PairsFrom(n int, newF func() PairFunc, opt Options) (*Report, error) {
	rep := &Report{}
	if n <= 1 {
		return rep, nil
	}
	sampled, err := samplePlan(n, opt)
	if err != nil {
		return nil, err
	}
	rep.Sampled = sampled != nil

	rows := make([]rowAcc, n)
	workers := opt.workers(n)
	// One claim covers rowClaim consecutive rows, aligned at multiples of
	// rowClaim, so a batched distance reader's prefetch block is consumed
	// entirely by the worker that computed it. Row accumulation, merge
	// order and the first-error rule are all per ROW, so the claim width
	// — like the worker count — cannot change a report.
	claim := opt.rowClaim
	if claim < 1 {
		claim = 1
	}
	src := make(chan int, workers)
	// Early abort: once some row fails, rows after the lowest failed row
	// can never contribute (the merge below stops at that row's error),
	// so workers skip them. Rows before it must still run — they might
	// hold an even earlier error — which keeps the reported first error
	// deterministic.
	failedRow := int64(n)
	var failedMu sync.Mutex
	loadFailed := func() int64 {
		failedMu.Lock()
		defer failedMu.Unlock()
		return failedRow
	}
	storeFailed := func(u int64) {
		failedMu.Lock()
		if u < failedRow {
			failedRow = u
		}
		failedMu.Unlock()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f := newF()
			for start := range src {
				end := start + claim
				if end > n {
					end = n
				}
				for u := start; u < end; u++ {
					if int64(u) > loadFailed() {
						continue
					}
					if sampled != nil {
						evalRow(&rows[u], graph.NodeID(u), sampled[u], f)
					} else {
						evalRowAll(&rows[u], graph.NodeID(u), n, f)
					}
					if rows[u].err != nil {
						storeFailed(int64(u))
					}
				}
			}
		}()
	}
	for u := 0; u < n; u += claim {
		src <- u
	}
	close(src)
	wg.Wait()

	// Deterministic merge in increasing row order.
	var numByDen []int64
	var bigDens map[int32]int64
	for u := range rows {
		r := &rows[u]
		if r.err != nil {
			return nil, r.err
		}
		rep.Pairs += r.pairs
		rep.TotalHops += r.totalHops
		if r.maxHops > rep.MaxHops {
			rep.MaxHops = r.maxHops
		}
		if r.max > rep.Max {
			rep.Max = r.max
			rep.WorstU, rep.WorstV = graph.NodeID(u), r.worstV
		}
		for i, c := range r.hist.Buckets {
			rep.Hist.Buckets[i] += c
		}
		if len(r.numByDen) > len(numByDen) {
			grown := make([]int64, len(r.numByDen))
			copy(grown, numByDen)
			numByDen = grown
		}
		for den, num := range r.numByDen {
			numByDen[den] += num
		}
		for den, num := range r.bigDens {
			if bigDens == nil {
				bigDens = make(map[int32]int64, len(r.bigDens))
			}
			bigDens[den] += num
		}
	}
	// Fold through the one shared routine (see routing.MeanFromSums: the
	// exact float evaluation order is the serial/parallel contract). The
	// map is tiny — one entry per distinct denominator.
	sums := bigDens
	if sums == nil {
		sums = make(map[int32]int64, len(numByDen))
	}
	for den, num := range numByDen {
		if num != 0 {
			sums[int32(den)] = num
		}
	}
	rep.Mean = routing.MeanFromSums(sums, rep.Pairs)
	return rep, nil
}

func evalRowAll(acc *rowAcc, u graph.NodeID, n int, f PairFunc) {
	for v := 0; v < n; v++ {
		if graph.NodeID(v) == u {
			continue
		}
		evalPair(acc, u, graph.NodeID(v), f)
		if acc.err != nil {
			return
		}
	}
}

func evalRow(acc *rowAcc, u graph.NodeID, dsts []graph.NodeID, f PairFunc) {
	for _, v := range dsts {
		evalPair(acc, u, v, f)
		if acc.err != nil {
			return
		}
	}
}

func evalPair(acc *rowAcc, u, v graph.NodeID, f PairFunc) {
	num, den, hops, err := f(u, v)
	if err != nil {
		acc.err = err
		return
	}
	if den <= 0 {
		acc.err = fmt.Errorf("evaluate: non-positive denominator %d for pair %d->%d", den, u, v)
		return
	}
	s := float64(num) / float64(den)
	acc.pairs++
	acc.totalHops += int64(hops)
	if hops > acc.maxHops {
		acc.maxHops = hops
	}
	if s > acc.max {
		acc.max = s
		acc.worstV = v
	}
	acc.hist.add(s)
	acc.addNum(den, int64(num))
}

// samplePlan draws opt.Sample ordered pairs without replacement and
// groups them into per-source destination lists, sorted so each row is
// evaluated in a fixed order. It returns nil in exhaustive mode — which
// includes a sample budget covering every pair, so one harness-wide
// -sample value evaluates small graphs exhaustively instead of failing
// on them. The plan depends only on (n, opt.Seed, opt.Sample).
func samplePlan(n int, opt Options) ([][]graph.NodeID, error) {
	if opt.Sample <= 0 {
		return nil, nil
	}
	total := n * (n - 1)
	if opt.Sample >= total {
		return nil, nil
	}
	r := xrand.New(opt.Seed)
	idxs := r.Sample(total, opt.Sample)
	// Exact-size rows carved from one buffer (no append growth), sorted
	// with the radix-friendly slices.Sort — same plan as the historical
	// append+sort.Slice build, built with O(1) large allocations.
	counts := make([]int32, n)
	for _, idx := range idxs {
		counts[idx/(n-1)]++
	}
	buf := make([]graph.NodeID, 0, len(idxs))
	plan := make([][]graph.NodeID, n)
	for u := range plan {
		start := len(buf)
		end := start + int(counts[u])
		plan[u] = buf[start:start:end]
		buf = buf[:end]
	}
	for _, idx := range idxs {
		u := idx / (n - 1)
		v := idx % (n - 1)
		if v >= u {
			v++
		}
		plan[u] = append(plan[u], graph.NodeID(v))
	}
	for u := range plan {
		slices.Sort(plan[u])
	}
	return plan, nil
}

// Stretch measures the stretch factor of routing function r on g over the
// ordered pair space: the parallel, streaming replacement for
// routing.MeasureStretch. Distances come from Options.Source(g, apsp):
// pass a precomputed dense table, or nil apsp with Options.Distances /
// Options.DistMode selecting a streaming or cached backend. Every
// backend and worker count yields the bit-identical report; in
// exhaustive mode the embedded StretchReport fields are bit-identical to
// the serial baseline.
func Stretch(g *graph.Graph, r routing.Function, apsp *shortest.APSP, opt Options) (*Report, error) {
	g.Freeze() // serial point: workers only read the CSR arcs after this
	src, err := opt.Source(g, apsp)
	if err != nil {
		return nil, err
	}
	return stretchPairs(g, r, src, nil, opt)
}

// WeightedStretch measures cost stretch under arc weights w — the
// parallel replacement for routing.MeasureWeightedStretch. apsp must be
// the weighted distance table for w, or nil to resolve a backend via
// Options.SourceFor: dense builds the weighted table with the run's
// worker budget, stream/cache recompute rows by per-reader Dijkstra
// under w with the same O(workers·n) / LRU residency contracts as the
// hop metric — full -distmode parity. Every backend and worker count
// yields the bit-identical report; in exhaustive mode the embedded
// StretchReport fields are bit-identical to the serial
// routing.MeasureWeightedStretch.
func WeightedStretch(g *graph.Graph, r routing.Function, w shortest.Weights, apsp *shortest.APSP, opt Options) (*Report, error) {
	g.Freeze()
	// Every backend the resolver BUILDS validates w itself; when the
	// caller supplies the rows (explicit Distances, or a dense table in
	// dense/auto mode) nothing downstream would, and the cost numerator
	// indexes w inside pool workers — validate here so malformed weights
	// are an error, never a worker panic.
	if opt.Distances != nil || (apsp != nil && (opt.DistMode == DistAuto || opt.DistMode == DistDense)) {
		if err := w.Validate(g); err != nil {
			return nil, err
		}
	}
	src, err := opt.SourceFor(g, w, apsp)
	if err != nil {
		return nil, err
	}
	return stretchPairs(g, r, src, w, opt)
}

// stretchPairs is the one pair-evaluation path under both metrics: route
// each ordered pair, read the exact distance from the resolved backend,
// and fold through the deterministic engine. The metric only changes the
// numerator (hop count vs summed arc cost) and the rows behind the
// reader (BFS vs Dijkstra); the sharding, accumulators and merge are
// shared, so the two metrics cannot drift apart in determinism behavior.
func stretchPairs(g *graph.Graph, r routing.Function, src shortest.DistanceSource, w shortest.Weights, opt Options) (*Report, error) {
	// Batch-aware row consumption: when the backend's readers prefetch an
	// aligned block of rows per claim, claim whole blocks so the worker
	// that pays for a block is the one that evaluates all of its rows.
	if rb, ok := src.(shortest.RowBatcher); ok {
		opt.rowClaim = rb.RowBatch()
	}
	newF := func() PairFunc {
		rd := src.NewReader()
		if w == nil {
			return func(u, v graph.NodeID) (int32, int32, int, error) {
				l, err := routing.RouteLen(g, r, u, v, opt.MaxHops)
				if err != nil {
					return 0, 0, 0, err
				}
				d := rd.Row(u)[v]
				if d == shortest.Unreachable {
					return 0, 0, 0, fmt.Errorf("routing: graph disconnected at pair %d->%d", u, v)
				}
				return int32(l), d, l, nil
			}
		}
		return func(u, v graph.NodeID) (int32, int32, int, error) {
			var cost int64 // int32 arc weights on a long route can exceed int32
			l := -1
			err := routing.RouteVisit(g, r, u, v, opt.MaxHops, func(h routing.Hop) {
				l++
				if h.Port != graph.NoPort {
					cost += int64(w[h.Node][h.Port-1])
				}
			})
			if err != nil {
				return 0, 0, 0, err
			}
			if cost > math.MaxInt32 {
				return 0, 0, 0, fmt.Errorf("evaluate: path cost %d for pair %d->%d overflows int32", cost, u, v)
			}
			d := rd.Row(u)[v]
			if d == shortest.Unreachable {
				return 0, 0, 0, fmt.Errorf("routing: pair %d->%d unreachable", u, v)
			}
			return int32(cost), d, l, nil
		}
	}
	return PairsFrom(g.Order(), newF, opt)
}

// Memory meters LocalBits for every router with a worker pool — the
// parallel replacement for routing.MeasureMemory, bit-identical to it
// (the per-router values are integers and the fold runs serially in
// router order). Sampling does not apply: MEM_local is a maximum over
// routers and must see every one.
func Memory(g *graph.Graph, s routing.LocalCoder, opt Options) routing.MemoryReport {
	n := g.Order()
	rep := routing.MemoryReport{PerNode: make([]int, n)}
	if n == 0 {
		return rep
	}
	workers := opt.workers(n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for x := w; x < n; x += workers {
				rep.PerNode[x] = s.LocalBits(graph.NodeID(x))
			}
		}(w)
	}
	wg.Wait()
	for x, b := range rep.PerNode {
		rep.GlobalBits += b
		if b > rep.LocalBits {
			rep.LocalBits = b
			rep.ArgMax = graph.NodeID(x)
		}
	}
	rep.MeanBits = float64(rep.GlobalBits) / float64(n)
	return rep
}
