package routing

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/shortest"
)

// MeasureWeightedStretch routes every ordered pair and compares the COST
// of the routing path (sum of arc weights) with the weighted distance —
// the stretch notion used when arcs carry non-uniform costs. apsp must be
// the weighted table for w.
func MeasureWeightedStretch(g *graph.Graph, r Function, w shortest.Weights, apsp *shortest.APSP) (StretchReport, error) {
	if apsp == nil {
		var err error
		apsp, err = shortest.NewWeightedAPSP(g, w)
		if err != nil {
			return StretchReport{}, err
		}
	}
	n := g.Order()
	rep := StretchReport{}
	var sum float64
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			hops, err := Route(g, r, graph.NodeID(u), graph.NodeID(v), 0)
			if err != nil {
				return rep, err
			}
			var cost int32
			for _, h := range hops {
				if h.Port != graph.NoPort {
					cost += w[h.Node][h.Port-1]
				}
			}
			d := apsp.Dist(graph.NodeID(u), graph.NodeID(v))
			if d == shortest.Unreachable {
				return rep, fmt.Errorf("routing: pair %d->%d unreachable", u, v)
			}
			s := float64(cost) / float64(d)
			sum += s
			rep.Pairs++
			if l := PathLen(hops); l > rep.MaxHops {
				rep.MaxHops = l
			}
			if s > rep.Max {
				rep.Max = s
				rep.WorstU, rep.WorstV = graph.NodeID(u), graph.NodeID(v)
			}
		}
	}
	if rep.Pairs > 0 {
		rep.Mean = sum / float64(rep.Pairs)
	}
	return rep, nil
}
