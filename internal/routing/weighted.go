package routing

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/shortest"
)

// MeasureWeightedStretch routes every ordered pair and compares the COST
// of the routing path (sum of arc weights) with the weighted distance —
// the stretch notion used when arcs carry non-uniform costs. apsp must be
// the weighted table for w.
//
// Like MeasureStretch, this is the serial reference for the worker-pool
// engine in internal/evaluate (WeightedStretch there): the mean is
// accumulated as exact integer cost sums keyed by weighted distance so
// the two paths stay bit-identical.
func MeasureWeightedStretch(g *graph.Graph, r Function, w shortest.Weights, apsp *shortest.APSP) (StretchReport, error) {
	if apsp == nil {
		var err error
		apsp, err = shortest.NewWeightedAPSP(g, w)
		if err != nil {
			return StretchReport{}, err
		}
	}
	n := g.Order()
	rep := StretchReport{}
	costByDist := map[int32]int64{}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			hops, err := Route(g, r, graph.NodeID(u), graph.NodeID(v), 0)
			if err != nil {
				return rep, err
			}
			var cost int64 // int32 arc weights on a long route can exceed int32
			for _, h := range hops {
				if h.Port != graph.NoPort {
					cost += int64(w[h.Node][h.Port-1])
				}
			}
			if cost > math.MaxInt32 {
				return rep, fmt.Errorf("routing: path cost %d for pair %d->%d overflows int32", cost, u, v)
			}
			d := apsp.Dist(graph.NodeID(u), graph.NodeID(v))
			if d == shortest.Unreachable {
				return rep, fmt.Errorf("routing: pair %d->%d unreachable", u, v)
			}
			s := float64(cost) / float64(d)
			costByDist[d] += cost
			rep.Pairs++
			if l := PathLen(hops); l > rep.MaxHops {
				rep.MaxHops = l
			}
			if s > rep.Max {
				rep.Max = s
				rep.WorstU, rep.WorstV = graph.NodeID(u), graph.NodeID(v)
			}
		}
	}
	rep.Mean = MeanFromSums(costByDist, rep.Pairs)
	return rep, nil
}
