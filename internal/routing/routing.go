// Package routing implements the paper's model of distributed routing
// functions and the simulator that exercises them.
//
// A routing function R is a triple (I, H, P) of initialization, header and
// port functions (Peleg–Upfal model, as restated in Section 1 of the
// paper). For distinct u, v it produces a path u = u_1, u_2, ..., u_k = v
// and headers h_1 = I(u, v), h_{i+1} = H(u_i, h_i), where u_{i+1} is the
// endpoint of the arc leaving u_i through port P(u_i, h_i), and
// P(u_k, h_k) = 0 signals delivery. Headers may be of unbounded size —
// the paper's memory requirement deliberately excludes them — so Header is
// an opaque interface value here and only router-resident state is
// metered.
package routing

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/shortest"
)

// Header is the message header h_i carried between routers. Its concrete
// type is private to each scheme.
type Header any

// Function is the routing function triple R = (I, H, P).
type Function interface {
	// Init computes the initial header I(src, dst) attached at the source.
	Init(src, dst graph.NodeID) Header
	// Port computes P(x, h): the output port to forward through, or
	// graph.NoPort when the message is delivered at x.
	Port(x graph.NodeID, h Header) graph.Port
	// Next computes H(x, h): the header forwarded with the message. It is
	// consulted only when Port(x, h) != NoPort.
	Next(x graph.NodeID, h Header) Header
}

// LocalCoder is implemented by schemes that expose the local code of each
// router under the repository's fixed coding strategy (see package
// coding). LocalBits(x) is the stand-in for MEM(G,R,x).
type LocalCoder interface {
	LocalBits(x graph.NodeID) int
}

// Scheme bundles a routing function with its memory accounting; every
// concrete scheme in internal/scheme implements it.
type Scheme interface {
	Function
	LocalCoder
	// Name identifies the scheme in reports.
	Name() string
}

// Hop records one step of a simulated route.
type Hop struct {
	Node graph.NodeID
	Port graph.Port // port taken at Node (NoPort on the final hop)
}

// Reason classifies a routing failure structurally. The fault-injection
// harness (internal/faults) and tests branch on these constants instead
// of matching Error() strings, which stay free to carry per-failure
// detail.
type Reason uint8

const (
	// ReasonLoop: the default hop allowance (4n+4, ample for any
	// bounded-stretch delivery on a connected graph) ran out — the walk
	// is cycling, not progressing.
	ReasonLoop Reason = iota + 1
	// ReasonInvalidPort: the port function returned a port outside
	// 1..deg(x) at some router.
	ReasonInvalidPort
	// ReasonHopBudget: a caller-imposed maxHops bound was exhausted
	// before delivery (the walk might still have delivered with more
	// budget — distinguish from ReasonLoop).
	ReasonHopBudget
	// ReasonNonDelivery: the scheme signaled delivery (NoPort) at a
	// router other than the destination.
	ReasonNonDelivery
	// ReasonDeadPort: the walk selected a port whose edge has been
	// removed (graph.DeadEnd slot) — the scheme's knowledge predates a
	// fault. This is how disconnection and not-yet-repaired state
	// surface during fault injection.
	ReasonDeadPort
)

// String names the reason as the fault harness reports spell it.
func (r Reason) String() string {
	switch r {
	case ReasonLoop:
		return "loop"
	case ReasonInvalidPort:
		return "invalid-port"
	case ReasonHopBudget:
		return "hop-budget"
	case ReasonNonDelivery:
		return "non-delivery"
	case ReasonDeadPort:
		return "dead-port"
	default:
		return fmt.Sprintf("reason-%d", uint8(r))
	}
}

// RouteError describes a failed simulation: a loop, an invalid port, a
// hop budget overrun, a wrong-node delivery, or a walk into a removed
// edge. Reason is the structural classification; Detail preserves the
// free-form text Error() has always rendered, so recorded outputs are
// stable across the typed-reason migration.
type RouteError struct {
	Src, Dst graph.NodeID
	Hops     int
	Reason   Reason
	Detail   string
}

func (e *RouteError) Error() string {
	d := e.Detail
	if d == "" {
		d = e.Reason.String()
	}
	return fmt.Sprintf("routing: %d->%d failed after %d hops: %s", e.Src, e.Dst, e.Hops, d)
}

// Route simulates R on g from src to dst, returning the hop sequence
// (ending with the delivery hop at dst). maxHops bounds the walk; pass 0
// for the default 4n+4 (any scheme of bounded stretch on a connected graph
// fits comfortably; runaway schemes are reported as errors instead of
// hanging).
func Route(g *graph.Graph, r Function, src, dst graph.NodeID, maxHops int) ([]Hop, error) {
	hops := make([]Hop, 0, 8)
	err := RouteVisit(g, r, src, dst, maxHops, func(h Hop) {
		hops = append(hops, h)
	})
	return hops, err
}

// RouteVisit simulates R like Route but streams each hop to visit instead
// of materializing a slice — the allocation-free form the all-pairs
// evaluator in internal/evaluate runs millions of times. The final
// delivery hop (Port == NoPort) is visited too; on error the hops walked
// so far have been visited.
//
//repolint:hotpath
func RouteVisit(g *graph.Graph, r Function, src, dst graph.NodeID, maxHops int, visit func(Hop)) error {
	budgetReason := ReasonHopBudget
	if maxHops <= 0 {
		maxHops = 4*g.Order() + 4
		budgetReason = ReasonLoop
	}
	x := src
	h := r.Init(src, dst)
	for step := 0; ; step++ {
		p := r.Port(x, h)
		if p == graph.NoPort {
			visit(Hop{Node: x})
			if x != dst {
				return &RouteError{Src: src, Dst: dst, Hops: step, Reason: ReasonNonDelivery,
					Detail: fmt.Sprintf("delivered at wrong node %d", x)}
			}
			return nil
		}
		arcs := g.Arcs(x)
		if p < 1 || int(p) > len(arcs) {
			return &RouteError{Src: src, Dst: dst, Hops: step, Reason: ReasonInvalidPort,
				Detail: fmt.Sprintf("invalid port %d at node %d (degree %d)", p, x, len(arcs))}
		}
		if arcs[p-1] == graph.DeadEnd {
			return &RouteError{Src: src, Dst: dst, Hops: step, Reason: ReasonDeadPort,
				Detail: fmt.Sprintf("dead port %d at node %d (edge removed)", p, x)}
		}
		if step >= maxHops {
			return &RouteError{Src: src, Dst: dst, Hops: step, Reason: budgetReason,
				Detail: "hop budget exhausted (loop?)"}
		}
		visit(Hop{Node: x, Port: p})
		h = r.Next(x, h)
		x = arcs[p-1]
	}
}

// RouteLen simulates R like RouteVisit but only returns the length of the
// routing path in edges — no hop materialization, no per-hop callback.
// It is the inner loop of the all-pairs stretch evaluator, which runs it
// n(n-1) times per report; keeping the walk free of closure calls is
// worth the small duplication with RouteVisit. The walk, the error cases
// and the hop accounting are identical to RouteVisit's.
//
//repolint:hotpath
func RouteLen(g *graph.Graph, r Function, src, dst graph.NodeID, maxHops int) (int, error) {
	budgetReason := ReasonHopBudget
	if maxHops <= 0 {
		maxHops = 4*g.Order() + 4
		budgetReason = ReasonLoop
	}
	x := src
	h := r.Init(src, dst)
	for step := 0; ; step++ {
		p := r.Port(x, h)
		if p == graph.NoPort {
			if x != dst {
				return step, &RouteError{Src: src, Dst: dst, Hops: step, Reason: ReasonNonDelivery,
					Detail: fmt.Sprintf("delivered at wrong node %d", x)}
			}
			return step, nil
		}
		arcs := g.Arcs(x)
		if p < 1 || int(p) > len(arcs) {
			return step, &RouteError{Src: src, Dst: dst, Hops: step, Reason: ReasonInvalidPort,
				Detail: fmt.Sprintf("invalid port %d at node %d (degree %d)", p, x, len(arcs))}
		}
		if arcs[p-1] == graph.DeadEnd {
			return step, &RouteError{Src: src, Dst: dst, Hops: step, Reason: ReasonDeadPort,
				Detail: fmt.Sprintf("dead port %d at node %d (edge removed)", p, x)}
		}
		if step >= maxHops {
			return step, &RouteError{Src: src, Dst: dst, Hops: step, Reason: budgetReason,
				Detail: "hop budget exhausted (loop?)"}
		}
		h = r.Next(x, h)
		x = arcs[p-1]
	}
}

// PathLen returns the number of edges traversed by a hop sequence.
func PathLen(hops []Hop) int {
	if len(hops) == 0 {
		return 0
	}
	return len(hops) - 1
}

// Validate checks that R delivers every ordered pair of distinct vertices
// of g, returning the first failure. It is the universality check: a
// routing function must exist and terminate for ALL pairs.
func Validate(g *graph.Graph, r Function) error {
	n := g.Order()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			if _, err := Route(g, r, graph.NodeID(u), graph.NodeID(v), 0); err != nil {
				return err
			}
		}
	}
	return nil
}

// StretchReport summarizes path quality over all ordered pairs.
type StretchReport struct {
	Max     float64 // the paper's stretch factor s(R, G)
	Mean    float64 // average over ordered pairs
	Pairs   int     // ordered pairs measured
	WorstU  graph.NodeID
	WorstV  graph.NodeID
	MaxHops int // longest routing path seen
}

// MeasureStretch routes every ordered pair and compares with shortest
// distances. dists is any distance backend — a dense *shortest.APSP (the
// default and the historical argument), a streaming or cached source —
// or nil, in which case a dense table is computed. Backends return
// bit-identical rows, so the choice never changes the report.
//
// This is the serial reference implementation; the worker-pool engine in
// internal/evaluate produces bit-identical reports (and histograms, hop
// totals and a sampling mode on top) and is what the experiment harness
// uses. To keep the two paths bit-identical, the mean is accumulated as
// exact integer path-length sums keyed by distance and folded in a fixed
// order — see MeanFromSums.
func MeasureStretch(g *graph.Graph, r Function, dists shortest.DistanceSource) (StretchReport, error) {
	if dists == nil {
		dists = shortest.NewAPSP(g)
	}
	rd := dists.NewReader()
	n := g.Order()
	rep := StretchReport{}
	lenByDist := map[int32]int64{}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			hops, err := Route(g, r, graph.NodeID(u), graph.NodeID(v), 0)
			if err != nil {
				return rep, err
			}
			l := PathLen(hops)
			d := rd.Row(graph.NodeID(u))[v]
			if d == shortest.Unreachable {
				return rep, fmt.Errorf("routing: graph disconnected at pair %d->%d", u, v)
			}
			s := float64(l) / float64(d)
			lenByDist[d] += int64(l)
			rep.Pairs++
			if l > rep.MaxHops {
				rep.MaxHops = l
			}
			if s > rep.Max {
				rep.Max = s
				rep.WorstU, rep.WorstV = graph.NodeID(u), graph.NodeID(v)
			}
		}
	}
	rep.Mean = MeanFromSums(lenByDist, rep.Pairs)
	return rep, nil
}

// MeanFromSums evaluates Σ_d num(d)/d in increasing denominator order and
// divides by the pair count. Accumulating integer numerators per
// denominator and folding them in a fixed order makes the mean
// independent of pair evaluation order, which is the invariant that lets
// internal/evaluate shard pairs across workers and still match the
// serial measurement paths bit-for-bit — both sides MUST use this one
// fold (the exact float evaluation order is the contract).
func MeanFromSums(numByDen map[int32]int64, pairs int) float64 {
	if pairs == 0 {
		return 0
	}
	dens := make([]int32, 0, len(numByDen))
	for den := range numByDen {
		dens = append(dens, den)
	}
	sort.Slice(dens, func(i, j int) bool { return dens[i] < dens[j] })
	var sum float64
	for _, den := range dens {
		sum += float64(numByDen[den]) / float64(den)
	}
	return sum / float64(pairs)
}

// MemoryReport summarizes the router-resident state of a scheme under the
// fixed coding strategy: the paper's MEM_local (max) and MEM_global (sum).
type MemoryReport struct {
	LocalBits  int     // MEM_local(G, R) = max_x MEM(G,R,x)
	GlobalBits int     // MEM_global(G, R) = sum_x MEM(G,R,x)
	MeanBits   float64 // average per router
	ArgMax     graph.NodeID
	PerNode    []int
}

// MeasureMemory queries LocalBits for every router. It is the serial
// reference for evaluate.Memory, which meters routers with a worker pool
// and returns a bit-identical report.
func MeasureMemory(g *graph.Graph, s LocalCoder) MemoryReport {
	n := g.Order()
	rep := MemoryReport{PerNode: make([]int, n)}
	for x := 0; x < n; x++ {
		b := s.LocalBits(graph.NodeID(x))
		rep.PerNode[x] = b
		rep.GlobalBits += b
		if b > rep.LocalBits {
			rep.LocalBits = b
			rep.ArgMax = graph.NodeID(x)
		}
	}
	if n > 0 {
		rep.MeanBits = float64(rep.GlobalBits) / float64(n)
	}
	return rep
}

// MaxBitsOver returns the maximum of LocalBits over a subset of routers —
// used to report the memory of the constrained set A in Theorem 1 runs.
func MaxBitsOver(s LocalCoder, nodes []graph.NodeID) int {
	m := 0
	for _, x := range nodes {
		if b := s.LocalBits(x); b > m {
			m = b
		}
	}
	return m
}

// SumBitsOver returns Σ LocalBits over a subset of routers.
func SumBitsOver(s LocalCoder, nodes []graph.NodeID) int {
	t := 0
	for _, x := range nodes {
		t += s.LocalBits(x)
	}
	return t
}
