package routing

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/shortest"
)

// greedyScheme routes by always stepping to a neighbor closer to the
// destination — a minimal shortest-path routing function for tests.
type greedyScheme struct {
	g    *graph.Graph
	apsp *shortest.APSP
}

func newGreedy(g *graph.Graph) *greedyScheme {
	return &greedyScheme{g: g, apsp: shortest.NewAPSP(g)}
}

func (s *greedyScheme) Name() string                         { return "greedy" }
func (s *greedyScheme) Init(src, dst graph.NodeID) Header    { return dst }
func (s *greedyScheme) Next(x graph.NodeID, h Header) Header { return h }
func (s *greedyScheme) LocalBits(x graph.NodeID) int         { return s.g.Order() } // arbitrary
func (s *greedyScheme) Port(x graph.NodeID, h Header) graph.Port {
	dst := h.(graph.NodeID)
	if x == dst {
		return graph.NoPort
	}
	d := s.apsp.Dist(x, dst)
	var chosen graph.Port
	s.g.ForEachArc(x, func(p graph.Port, w graph.NodeID) {
		if chosen == graph.NoPort && s.apsp.Dist(w, dst)+1 == d {
			chosen = p
		}
	})
	return chosen
}

// loopScheme always forwards on port 1 and never delivers: exercises the
// hop-budget failure path.
type loopScheme struct{}

func (loopScheme) Init(src, dst graph.NodeID) Header        { return dst }
func (loopScheme) Port(x graph.NodeID, h Header) graph.Port { return 1 }
func (loopScheme) Next(x graph.NodeID, h Header) Header     { return h }

// wrongScheme delivers immediately wherever it is.
type wrongScheme struct{}

func (wrongScheme) Init(src, dst graph.NodeID) Header        { return dst }
func (wrongScheme) Port(x graph.NodeID, h Header) graph.Port { return graph.NoPort }
func (wrongScheme) Next(x graph.NodeID, h Header) Header     { return h }

// badPortScheme answers a port beyond the degree.
type badPortScheme struct{}

func (badPortScheme) Init(src, dst graph.NodeID) Header        { return dst }
func (badPortScheme) Port(x graph.NodeID, h Header) graph.Port { return 99 }
func (badPortScheme) Next(x graph.NodeID, h Header) Header     { return h }

func TestRouteDeliversShortest(t *testing.T) {
	g := gen.Grid2D(4, 4)
	s := newGreedy(g)
	hops, err := Route(g, s, 0, 15, 0)
	if err != nil {
		t.Fatal(err)
	}
	if PathLen(hops) != 6 {
		t.Fatalf("corner-to-corner path length %d, want 6", PathLen(hops))
	}
	if hops[len(hops)-1].Node != 15 || hops[len(hops)-1].Port != graph.NoPort {
		t.Fatal("route does not end with delivery at destination")
	}
}

func TestRouteSelfPair(t *testing.T) {
	g := gen.Cycle(5)
	s := newGreedy(g)
	hops, err := Route(g, s, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if PathLen(hops) != 0 {
		t.Fatal("self route should have length 0")
	}
}

func TestRouteLoopDetected(t *testing.T) {
	g := gen.Cycle(4)
	_, err := Route(g, loopScheme{}, 0, 2, 0)
	if err == nil {
		t.Fatal("loop not detected")
	}
	if !strings.Contains(err.Error(), "hop budget") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestRouteWrongDelivery(t *testing.T) {
	g := gen.Cycle(4)
	_, err := Route(g, wrongScheme{}, 0, 2, 0)
	if err == nil || !strings.Contains(err.Error(), "wrong node") {
		t.Fatalf("mis-delivery not reported: %v", err)
	}
}

func TestRouteInvalidPort(t *testing.T) {
	g := gen.Cycle(4)
	_, err := Route(g, badPortScheme{}, 0, 2, 0)
	if err == nil || !strings.Contains(err.Error(), "invalid port") {
		t.Fatalf("invalid port not reported: %v", err)
	}
}

func TestValidateAcceptsGreedy(t *testing.T) {
	g := gen.Petersen()
	if err := Validate(g, newGreedy(g)); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsLoop(t *testing.T) {
	g := gen.Cycle(4)
	if err := Validate(g, loopScheme{}); err == nil {
		t.Fatal("validate accepted a looping scheme")
	}
}

func TestMeasureStretchShortest(t *testing.T) {
	g := gen.Hypercube(4)
	rep, err := MeasureStretch(g, newGreedy(g), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Max != 1.0 {
		t.Fatalf("greedy shortest routing has stretch %v, want 1", rep.Max)
	}
	if rep.Pairs != 16*15 {
		t.Fatalf("measured %d pairs, want 240", rep.Pairs)
	}
	if rep.Mean != 1.0 {
		t.Fatalf("mean stretch %v, want 1", rep.Mean)
	}
}

func TestMeasureMemory(t *testing.T) {
	g := gen.Cycle(6)
	s := newGreedy(g)
	rep := MeasureMemory(g, s)
	if rep.LocalBits != 6 || rep.GlobalBits != 36 {
		t.Fatalf("memory report (%d,%d), want (6,36)", rep.LocalBits, rep.GlobalBits)
	}
	if rep.MeanBits != 6 {
		t.Fatalf("mean %v, want 6", rep.MeanBits)
	}
}

func TestBitsOverSubset(t *testing.T) {
	g := gen.Cycle(6)
	s := newGreedy(g)
	sub := []graph.NodeID{1, 3}
	if MaxBitsOver(s, sub) != 6 || SumBitsOver(s, sub) != 12 {
		t.Fatal("subset accounting wrong")
	}
}

func TestRouteErrorMessage(t *testing.T) {
	e := &RouteError{Src: 1, Dst: 2, Hops: 3, Reason: ReasonLoop, Detail: "boom"}
	if !strings.Contains(e.Error(), "1->2") || !strings.Contains(e.Error(), "boom") {
		t.Fatalf("unhelpful error: %v", e)
	}
	// Without a detail the typed reason names itself.
	e = &RouteError{Src: 1, Dst: 2, Hops: 3, Reason: ReasonDeadPort}
	if !strings.Contains(e.Error(), "dead-port") {
		t.Fatalf("reason not rendered: %v", e)
	}
}

// TestRouteErrorReasons pins the structural classification the fault
// harness branches on: each failure mode carries its typed Reason while
// Error() keeps the historical text.
func TestRouteErrorReasons(t *testing.T) {
	g := gen.Cycle(6)
	// A function that always forwards on port 1 loops forever for most
	// pairs; with a caller budget the same walk is a hop-budget failure.
	always1 := funcStub{
		port: func(x graph.NodeID, h Header) graph.Port { return 1 },
	}
	assertReason := func(err error, want Reason, wantText string) {
		t.Helper()
		re := &RouteError{}
		if !errors.As(err, &re) {
			t.Fatalf("got %v, want a *RouteError", err)
		}
		if re.Reason != want {
			t.Fatalf("reason %v, want %v (err: %v)", re.Reason, want, err)
		}
		if wantText != "" && !strings.Contains(err.Error(), wantText) {
			t.Fatalf("error text %q lost %q", err.Error(), wantText)
		}
	}
	_, err := RouteLen(g, always1, 0, 3, 0)
	assertReason(err, ReasonLoop, "hop budget exhausted (loop?)")
	_, err = RouteLen(g, always1, 0, 3, 1)
	assertReason(err, ReasonHopBudget, "hop budget exhausted (loop?)")

	badPort := funcStub{
		port: func(x graph.NodeID, h Header) graph.Port { return 99 },
	}
	_, err = RouteLen(g, badPort, 0, 3, 0)
	assertReason(err, ReasonInvalidPort, "invalid port 99")

	wrongNode := funcStub{
		port: func(x graph.NodeID, h Header) graph.Port { return graph.NoPort },
	}
	_, err = RouteLen(g, wrongNode, 0, 3, 0)
	assertReason(err, ReasonNonDelivery, "delivered at wrong node")

	// Remove the edge the walk wants: port 1 at vertex 0 goes dead.
	killed := gen.Cycle(6)
	v := killed.Neighbor(0, 1)
	killed.RemoveEdge(0, v)
	_, err = RouteLen(killed, always1, 0, 3, 0)
	assertReason(err, ReasonDeadPort, "dead port 1 at node 0")
	err = RouteVisit(killed, always1, 0, 3, 0, func(Hop) {})
	assertReason(err, ReasonDeadPort, "dead port 1 at node 0")
}

// funcStub adapts a port closure into a Function for failure-mode tests.
type funcStub struct {
	port func(x graph.NodeID, h Header) graph.Port
}

func (f funcStub) Init(src, dst graph.NodeID) Header        { return nil }
func (f funcStub) Port(x graph.NodeID, h Header) graph.Port { return f.port(x, h) }
func (f funcStub) Next(x graph.NodeID, h Header) Header     { return h }
