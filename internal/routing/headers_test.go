package routing

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// sizedGreedy wraps greedyScheme with header pricing for the tests.
type sizedGreedy struct{ *greedyScheme }

func (s sizedGreedy) HeaderBits(h Header) int { return 8 }

func TestMeasureHeadersCountsEveryHop(t *testing.T) {
	g := gen.Path(5)
	rep, err := MeasureHeaders(g, sizedGreedy{newGreedy(g)})
	if err != nil {
		t.Fatal(err)
	}
	// Ordered pairs on P_5: sum over pairs of (distance+1) headers.
	want := 0
	for u := 0; u < 5; u++ {
		for v := 0; v < 5; v++ {
			if u != v {
				d := v - u
				if d < 0 {
					d = -d
				}
				want += d + 1
			}
		}
	}
	if rep.Headers != want {
		t.Fatalf("priced %d headers, want %d", rep.Headers, want)
	}
	if rep.MaxBits != 8 || rep.MeanBits != 8 {
		t.Fatalf("constant-size headers misreported: max %d mean %v", rep.MaxBits, rep.MeanBits)
	}
}

func TestMeasureHeadersRejectsUnsized(t *testing.T) {
	g := gen.Cycle(4)
	if _, err := MeasureHeaders(g, newGreedy(g)); err == nil {
		t.Fatal("scheme without HeaderSizer accepted")
	}
}

func TestMeasureHeadersDetectsNontermination(t *testing.T) {
	g := gen.Cycle(4)
	s := struct {
		loopScheme
		nameSized
	}{}
	_, err := MeasureHeaders(g, schemeShim{s.loopScheme})
	if err == nil {
		t.Fatal("looping scheme not reported")
	}
}

// nameSized and schemeShim adapt the test doubles to the Scheme interface.
type nameSized struct{}

func (nameSized) Name() string                 { return "shim" }
func (nameSized) LocalBits(x graph.NodeID) int { return 0 }
func (nameSized) HeaderBits(h Header) int      { return 1 }

type schemeShim struct{ loopScheme }

func (schemeShim) Name() string                 { return "shim" }
func (schemeShim) LocalBits(x graph.NodeID) int { return 0 }
func (schemeShim) HeaderBits(h Header) int      { return 1 }
