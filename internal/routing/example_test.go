package routing_test

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/routing"
	"repro/internal/scheme/table"
)

// Route a message with shortest-path tables and inspect the hop sequence
// — the R = (I, H, P) model of the paper, simulated.
func ExampleRoute() {
	g := gen.Grid2D(3, 3)
	s, err := table.New(g, nil, table.MinPort)
	if err != nil {
		panic(err)
	}
	hops, err := routing.Route(g, s, 0, 8, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println("hops:", routing.PathLen(hops))
	for _, h := range hops {
		fmt.Print(h.Node, " ")
	}
	fmt.Println()
	// Output:
	// hops: 4
	// 0 1 2 5 8
}

// Measure the paper's two memory aggregates for a scheme.
func ExampleMeasureMemory() {
	g := gen.Cycle(16)
	s, err := table.New(g, nil, table.MinPort)
	if err != nil {
		panic(err)
	}
	rep := routing.MeasureMemory(g, s)
	fmt.Println("MEM_local == max per-router bits:", rep.LocalBits == rep.PerNode[rep.ArgMax])
	fmt.Println("MEM_global bounded by n * MEM_local:", rep.GlobalBits <= 16*rep.LocalBits)
	// Output:
	// MEM_local == max per-router bits: true
	// MEM_global bounded by n * MEM_local: true
}

// Verify a scheme's stretch factor over all ordered pairs.
func ExampleMeasureStretch() {
	g := gen.Petersen()
	s, err := table.New(g, nil, table.MinPort)
	if err != nil {
		panic(err)
	}
	rep, err := routing.MeasureStretch(g, s, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("stretch %.1f over %d pairs\n", rep.Max, rep.Pairs)
	// Output:
	// stretch 1.0 over 90 pairs
}
