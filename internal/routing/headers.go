package routing

import (
	"fmt"

	"repro/internal/graph"
)

// HeaderSizer is implemented by schemes that can price their headers in
// bits. The paper's memory requirement deliberately EXCLUDES header size
// ("to be as general as possible, we allow headers to be of unbounded
// size"); this interface lets experiments report what that generosity
// costs in practice for each scheme — tables and interval routing carry
// Θ(log n) headers, while address-based schemes like landmark routing
// carry the destination's full address.
type HeaderSizer interface {
	// HeaderBits prices one header value.
	HeaderBits(h Header) int
}

// HeaderReport aggregates header sizes over routes.
type HeaderReport struct {
	MaxBits   int     // largest header observed
	MeanBits  float64 // mean over all headers of all routes
	Headers   int     // number of headers priced
	MaxAtHops int     // path position of the largest header
}

// MeasureHeaders routes every ordered pair and prices every header seen
// along the way. The scheme must implement HeaderSizer.
func MeasureHeaders(g *graph.Graph, s Scheme) (HeaderReport, error) {
	hs, ok := s.(HeaderSizer)
	if !ok {
		return HeaderReport{}, fmt.Errorf("routing: scheme %s does not price headers", s.Name())
	}
	n := g.Order()
	rep := HeaderReport{}
	var sum float64
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			x := graph.NodeID(u)
			h := s.Init(graph.NodeID(u), graph.NodeID(v))
			for hop := 0; ; hop++ {
				bits := hs.HeaderBits(h)
				sum += float64(bits)
				rep.Headers++
				if bits > rep.MaxBits {
					rep.MaxBits = bits
					rep.MaxAtHops = hop
				}
				p := s.Port(x, h)
				if p == graph.NoPort {
					break
				}
				if hop > 4*n {
					return rep, fmt.Errorf("routing: header walk did not terminate for %d->%d", u, v)
				}
				h = s.Next(x, h)
				x = g.Neighbor(x, p)
			}
		}
	}
	if rep.Headers > 0 {
		rep.MeanBits = sum / float64(rep.Headers)
	}
	return rep, nil
}
