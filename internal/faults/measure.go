package faults

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/shortest"
)

// Outcome summarizes one Measure sweep: every ordered pair of distinct
// live vertices, classified structurally. Failure counts key off the
// typed routing.Reason constants — the harness never inspects error
// text.
type Outcome struct {
	Pairs        int // ordered live pairs swept
	Connected    int // pairs with a finite post-fault distance
	Disconnected int // pairs the fault separated
	Delivered    int // connected pairs the scheme delivered

	// DetectedDisconnect counts disconnected pairs whose route failed —
	// the correct behaviour, whatever the typed reason. FalseDeliver
	// counts disconnected pairs the scheme claimed to deliver, which is
	// impossible on a correctly simulated graph and pins the simulator's
	// honesty.
	DetectedDisconnect int
	FalseDeliver       int

	// Failures classifies every failed route (connected or not) by its
	// typed reason.
	Failures map[routing.Reason]int

	// MeanStretch is the exact fixed-fold mean of routedLen/dist over
	// delivered connected pairs (routing.MeanFromSums), and MaxStretch
	// the worst such ratio.
	MeanStretch float64
	MaxStretch  float64
}

// DeliveryRate returns Delivered / Connected (1 for an empty sweep).
func (o Outcome) DeliveryRate() float64 {
	if o.Connected == 0 {
		return 1
	}
	return float64(o.Delivered) / float64(o.Connected)
}

// DetectionRate returns DetectedDisconnect / Disconnected (1 when the
// fault disconnected nothing).
func (o Outcome) DetectionRate() float64 {
	if o.Disconnected == 0 {
		return 1
	}
	return float64(o.DetectedDisconnect) / float64(o.Disconnected)
}

// Inflation returns the stretch-inflation ratio of a post-fault sweep
// against its pre-fault baseline: MeanStretch(post) / MeanStretch(pre).
// 1.0 means the surviving pairs route as tightly as before the fault.
func Inflation(pre, post Outcome) float64 {
	if pre.MeanStretch == 0 {
		return 0
	}
	return post.MeanStretch / pre.MeanStretch
}

// Measure routes every ordered pair of distinct live vertices of g with
// fn and classifies each outcome against dist (an APSP of g's CURRENT
// topology — post-fault distances for a post-fault sweep). maxHops
// bounds each walk; 0 selects the routing default. Removed vertices are
// excluded from the pair space: no operator queries a decommissioned
// router.
func Measure(g *graph.Graph, fn routing.Function, dist *shortest.APSP, maxHops int) (Outcome, error) {
	n := g.Order()
	if dist.Order() != n {
		return Outcome{}, fmt.Errorf("faults: measure order mismatch: apsp %d, graph %d", dist.Order(), n)
	}
	o := Outcome{Failures: make(map[routing.Reason]int)}
	lenByDist := map[int32]int64{}
	for u := 0; u < n; u++ {
		ui := graph.NodeID(u)
		if g.Removed(ui) {
			continue
		}
		row := dist.Row(ui)
		for v := 0; v < n; v++ {
			vi := graph.NodeID(v)
			if u == v || g.Removed(vi) {
				continue
			}
			o.Pairs++
			l, err := routing.RouteLen(g, fn, ui, vi, maxHops)
			d := row[v]
			if d == shortest.Unreachable {
				o.Disconnected++
				if err != nil {
					o.DetectedDisconnect++
					if reason, ok := reasonOf(err); ok {
						o.Failures[reason]++
					}
				} else {
					o.FalseDeliver++
				}
				continue
			}
			o.Connected++
			if err != nil {
				reason, ok := reasonOf(err)
				if !ok {
					return o, fmt.Errorf("faults: untyped routing failure %d->%d: %w", u, v, err)
				}
				o.Failures[reason]++
				continue
			}
			o.Delivered++
			lenByDist[d] += int64(l)
			if s := float64(l) / float64(d); s > o.MaxStretch {
				o.MaxStretch = s
			}
		}
	}
	o.MeanStretch = routing.MeanFromSums(lenByDist, o.Delivered)
	return o, nil
}

// reasonOf extracts the typed reason from a routing failure.
func reasonOf(err error) (routing.Reason, bool) {
	re := &routing.RouteError{}
	if errors.As(err, &re) {
		return re.Reason, true
	}
	return 0, false
}
