package faults

import (
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

func TestPlanDeterministic(t *testing.T) {
	g := gen.RandomConnected(48, 0.12, xrand.New(7))
	opt := Options{Mode: KillEdges, Count: 6, Seed: 99, KeepConnected: true}
	p1, err := NewPlan(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPlan(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Fatalf("same (graph, options) produced different plans:\n%v\n%v", p1, p2)
	}
	if len(p1.Edges) != 6 || len(p1.Vertices) != 0 {
		t.Fatalf("plan shape wrong: %+v", p1)
	}
	seen := map[[2]graph.NodeID]bool{}
	for _, e := range p1.Edges {
		if e[0] >= e[1] {
			t.Fatalf("edge %v not canonical (u < v)", e)
		}
		if seen[e] {
			t.Fatalf("duplicate victim %v", e)
		}
		seen[e] = true
		if !g.HasEdge(e[0], e[1]) {
			t.Fatalf("victim %v not an edge of g", e)
		}
	}
}

func TestPlanKeepsConnected(t *testing.T) {
	g := gen.RandomConnected(40, 0.1, xrand.New(3))
	p, err := NewPlan(g, Options{Mode: KillEdges, Count: 8, Seed: 1, KeepConnected: true})
	if err != nil {
		t.Fatal(err)
	}
	h := g.Clone()
	p.Apply(h)
	if !h.Connected() {
		t.Fatal("KeepConnected plan disconnected the graph")
	}
	if h.Size() != g.Size()-8 {
		t.Fatalf("edge count %d, want %d", h.Size(), g.Size()-8)
	}
}

func TestPlanTreeRejectsEdgeKills(t *testing.T) {
	g := gen.RandomTree(31, xrand.New(5))
	if _, err := NewPlan(g, Options{Mode: KillEdges, Count: 1, Seed: 1, KeepConnected: true}); err == nil {
		t.Fatal("every tree edge is a bridge; plan should be unsatisfiable")
	}
}

func TestPlanVertexKills(t *testing.T) {
	g := gen.Complete(12)
	p, err := NewPlan(g, Options{Mode: KillVertices, Count: 3, Seed: 4, KeepConnected: true})
	if err != nil {
		t.Fatal(err)
	}
	h := g.Clone()
	p.Apply(h)
	if h.LiveOrder() != 9 || !h.Connected() {
		t.Fatalf("live order %d (want 9), connected %v", h.LiveOrder(), h.Connected())
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestByDegreePrefersHubs(t *testing.T) {
	// A star plus a long path: the hub has degree 10, path vertices 1-2.
	// Degree weighting must pick hub-incident victims far more often than
	// uniform would across seeds.
	g := graph.New(21)
	for i := 1; i <= 10; i++ {
		g.AddEdge(0, graph.NodeID(i))
	}
	for i := 10; i < 20; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	hub := 0
	for seed := uint64(0); seed < 40; seed++ {
		p, err := NewPlan(g, Options{Mode: KillEdges, Count: 1, Seed: seed, Weighting: ByDegree})
		if err != nil {
			t.Fatal(err)
		}
		if p.Edges[0][0] == 0 {
			hub++
		}
	}
	// Hub edges carry weight 10+1=11 (or 11+2), path edges ~3-4: expected
	// hub share is ~75%; demand a clear majority.
	if hub < 25 {
		t.Fatalf("ByDegree picked hub edges only %d/40 times", hub)
	}
}

// TestDirtyRootsSound pins the dirty-set criterion against brute force:
// every root whose refreshed row differs from the pre-fault row must be
// in DirtyRoots' superset.
func TestDirtyRootsSound(t *testing.T) {
	g := gen.RandomConnected(56, 0.09, xrand.New(11))
	pre := shortest.NewAPSP(g)
	p, err := NewPlan(g, Options{Mode: KillEdges, Count: 5, Seed: 23, KeepConnected: true})
	if err != nil {
		t.Fatal(err)
	}
	dirtySet := map[graph.NodeID]bool{}
	for _, v := range DirtyRoots(pre, p.Edges) {
		dirtySet[v] = true
	}
	h := g.Clone()
	p.Apply(h)
	post := shortest.NewAPSP(h)
	for v := 0; v < g.Order(); v++ {
		vi := graph.NodeID(v)
		if !reflect.DeepEqual(pre.Row(vi), post.Row(vi)) && !dirtySet[vi] {
			t.Fatalf("root %d changed but is not in the dirty set", v)
		}
	}
}

// TestRefreshRowsMatchesRebuild pins the in-place refresh: refreshing
// the dirty rows of the pre-fault table yields the post-fault table.
func TestRefreshRowsMatchesRebuild(t *testing.T) {
	g := gen.Torus2D(6, 6)
	pre := shortest.NewAPSP(g)
	p, err := NewPlan(g, Options{Mode: KillEdges, Count: 4, Seed: 9, KeepConnected: true})
	if err != nil {
		t.Fatal(err)
	}
	dirty := DirtyRoots(pre, p.Edges)
	h := g.Clone()
	p.Apply(h)
	pre.RefreshRows(h, dirty)
	post := shortest.NewAPSP(h)
	for v := 0; v < h.Order(); v++ {
		vi := graph.NodeID(v)
		if !reflect.DeepEqual(pre.Row(vi), post.Row(vi)) {
			t.Fatalf("refreshed row %d differs from rebuild", v)
		}
	}
}
