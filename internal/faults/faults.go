// Package faults injects seeded topology faults into port-labeled
// graphs and measures how routing schemes degrade and recover — the
// dynamic-topology harness of ROADMAP item 4.
//
// A Plan is a deterministic victim list (edges or vertices, sampled
// uniformly or degree-weighted from a seeded xrand stream) that Apply
// executes through the graph package's port-stable removal API: the
// surviving ports keep their labels, so a scheme built before the fault
// still addresses the same wiring after it. DirtyRoots then bounds which
// distance rows the fault can have touched — the input to the
// incremental repair paths in internal/scheme/table and
// internal/scheme/landmark — and Measure sweeps the ordered pair space
// classifying every outcome by the typed routing.Reason constants
// instead of matching error strings.
package faults

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

// Mode selects what a plan removes.
type Mode int

const (
	// KillEdges removes k edges, leaving dead port slots at both ends.
	KillEdges Mode = iota
	// KillVertices removes k vertices and every incident edge.
	KillVertices
)

// String names the mode as CLI flags spell it.
func (m Mode) String() string {
	switch m {
	case KillEdges:
		return "edges"
	case KillVertices:
		return "vertices"
	default:
		return fmt.Sprintf("mode-%d", int(m))
	}
}

// Weighting selects how victims are drawn.
type Weighting int

const (
	// Uniform draws victims uniformly at random.
	Uniform Weighting = iota
	// ByDegree draws victims proportionally to degree (edges: the sum of
	// their endpoint degrees) — the "hubs fail first" adversary.
	ByDegree
)

// String names the weighting as CLI flags spell it.
func (w Weighting) String() string {
	switch w {
	case Uniform:
		return "uniform"
	case ByDegree:
		return "bydegree"
	default:
		return fmt.Sprintf("weighting-%d", int(w))
	}
}

// Options configure NewPlan.
type Options struct {
	Mode      Mode
	Count     int // victims to select
	Weighting Weighting
	Seed      uint64
	// KeepConnected skips victims whose removal would disconnect the
	// surviving vertices, selecting the next candidate instead. The
	// repairable-fault experiments require it (no scheme exists on a
	// disconnected graph); disconnection-detection sweeps turn it off.
	KeepConnected bool
}

// Plan is a deterministic victim list. Identical (graph, Options) yield
// identical plans.
type Plan struct {
	Edges    [][2]graph.NodeID // removed edges, in kill order (u < v per pair)
	Vertices []graph.NodeID    // removed vertices, in kill order
}

// NewPlan samples a victim list from g under opt. It fails when fewer
// than opt.Count victims are selectable (too few candidates, or
// KeepConnected filtered the remainder away).
func NewPlan(g *graph.Graph, opt Options) (*Plan, error) {
	if opt.Count < 0 {
		return nil, fmt.Errorf("faults: negative count %d", opt.Count)
	}
	r := xrand.New(opt.Seed)
	p := &Plan{}
	switch opt.Mode {
	case KillEdges:
		return p, planEdges(g, opt, r, p)
	case KillVertices:
		return p, planVertices(g, opt, r, p)
	default:
		return nil, fmt.Errorf("faults: unknown mode %d", int(opt.Mode))
	}
}

func planEdges(g *graph.Graph, opt Options, r *xrand.Rand, p *Plan) error {
	cand := g.Edges()
	weights := make([]int64, len(cand))
	for i, e := range cand {
		if opt.Weighting == ByDegree {
			weights[i] = int64(g.Degree(e[0]) + g.Degree(e[1]))
		} else {
			weights[i] = 1
		}
	}
	deadE := make(map[[2]graph.NodeID]bool, opt.Count)
	for len(p.Edges) < opt.Count {
		i, ok := draw(r, weights)
		if !ok {
			return fmt.Errorf("faults: only %d of %d requested edge kills selectable", len(p.Edges), opt.Count)
		}
		weights[i] = 0 // consumed (or rejected) either way
		e := cand[i]
		if opt.KeepConnected {
			deadE[e] = true
			if !connectedWithout(g, deadE, nil) {
				delete(deadE, e)
				continue
			}
		}
		p.Edges = append(p.Edges, e)
	}
	return nil
}

func planVertices(g *graph.Graph, opt Options, r *xrand.Rand, p *Plan) error {
	n := g.Order()
	weights := make([]int64, n)
	for v := 0; v < n; v++ {
		if opt.Weighting == ByDegree {
			weights[v] = int64(g.Degree(graph.NodeID(v)))
		} else {
			weights[v] = 1
		}
	}
	deadV := make([]bool, n)
	for len(p.Vertices) < opt.Count {
		i, ok := draw(r, weights)
		if !ok {
			return fmt.Errorf("faults: only %d of %d requested vertex kills selectable", len(p.Vertices), opt.Count)
		}
		weights[i] = 0
		v := graph.NodeID(i)
		if opt.KeepConnected {
			deadV[v] = true
			if !connectedWithout(g, nil, deadV) {
				deadV[v] = false
				continue
			}
		}
		p.Vertices = append(p.Vertices, v)
	}
	return nil
}

// draw samples one index proportionally to weights (zero-weight entries
// are exhausted) from the seeded stream; ok is false when every weight
// is zero. Weighted selection by a single Intn over the running total
// keeps the plan a pure function of (graph, Options).
func draw(r *xrand.Rand, weights []int64) (int, bool) {
	var total int64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return 0, false
	}
	t := int64(r.Intn(int(total)))
	for i, w := range weights {
		if w == 0 {
			continue
		}
		t -= w
		if t < 0 {
			return i, true
		}
	}
	return 0, false // unreachable: t < total
}

// connectedWithout reports whether the graph stays connected after
// hypothetically removing the given edges and vertices — a read-only
// check, so rejected candidates cost no graph mutation.
func connectedWithout(g *graph.Graph, deadE map[[2]graph.NodeID]bool, deadV []bool) bool {
	n := g.Order()
	alive := 0
	start := graph.NodeID(-1)
	for v := 0; v < n; v++ {
		vi := graph.NodeID(v)
		if g.Removed(vi) || (deadV != nil && deadV[v]) {
			continue
		}
		alive++
		if start < 0 {
			start = vi
		}
	}
	if alive <= 1 {
		return true
	}
	visited := make([]bool, n)
	stack := []graph.NodeID{start}
	visited[start] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.Arcs(u) {
			if v == graph.DeadEnd || visited[v] {
				continue
			}
			if deadV != nil && deadV[v] {
				continue
			}
			if deadE != nil {
				key := [2]graph.NodeID{u, v}
				if u > v {
					key = [2]graph.NodeID{v, u}
				}
				if deadE[key] {
					continue
				}
			}
			visited[v] = true
			count++
			stack = append(stack, v)
		}
	}
	return count == alive
}

// Apply executes the plan on g, in kill order, and re-freezes the CSR
// layout. The graph is mutated in place; clone first to keep the
// pre-fault topology (the repair bit-identity tests do).
func (p *Plan) Apply(g *graph.Graph) {
	for _, e := range p.Edges {
		g.RemoveEdge(e[0], e[1])
	}
	for _, v := range p.Vertices {
		g.RemoveVertex(v)
	}
	g.Freeze()
}

// DirtyRoots returns a sound superset of the APSP roots whose distance
// rows can change when the given edges are removed, computed from the
// PRE-fault table: the row of v moves only if some removed edge {a,b}
// was tight from v, i.e. |d(v,a) - d(v,b)| == 1 — otherwise no shortest
// path from v crosses {a,b}, and since removals only lengthen distances
// the criterion stays sound for simultaneous multi-edge removal. The
// result is ascending and duplicate-free; it is the dirty set handed to
// shortest.RefreshRows and the scheme Repair methods.
func DirtyRoots(pre *shortest.APSP, removed [][2]graph.NodeID) []graph.NodeID {
	n := pre.Order()
	dirty := make([]bool, n)
	for _, e := range removed {
		rowA := pre.Row(e[0])
		rowB := pre.Row(e[1])
		for v := 0; v < n; v++ {
			d := rowA[v] - rowB[v]
			if d == 1 || d == -1 {
				dirty[v] = true
			}
		}
	}
	var out []graph.NodeID
	for v := 0; v < n; v++ {
		if dirty[v] {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}
