package core

import (
	"math/big"
	"sort"

	"repro/internal/combinat"
)

// CountViaBurnside computes |dMpq| exactly without enumerating matrices,
// by orbit counting. It is an independent cross-check of Enumerate (and
// reaches shapes whose p-tuple enumeration would be too large).
//
// Derivation: after quotienting by the per-row value permutations of
// Definition 2, a row IS a set partition of the q columns into at most d
// blocks; a matrix class is then an orbit of p-MULTISETS of partitions
// (row permutations make rows unordered) under the diagonal action of
// S_q on the columns. Burnside's lemma over S_q gives
//
//	|dMpq| = (1/q!) Σ_{π ∈ S_q} #{p-multisets over X fixed by π}
//
// where X is the set of partitions. A multiset is fixed by π iff it is a
// union of π-orbits of X with uniform multiplicities, so the fixed count
// is the coefficient of x^p in Π_orbits 1/(1 - x^len(orbit)). The sum
// collapses to conjugacy classes (cycle types) of S_q.
func CountViaBurnside(d, p, q int) *big.Int {
	// X: all partitions of [q] into <= d blocks, in RGS form.
	var rows [][]uint8
	combinat.EachRGS(q, d, func(r []uint8) bool {
		rows = append(rows, append([]uint8(nil), r...))
		return true
	})
	index := make(map[string]int, len(rows))
	for i, r := range rows {
		index[string(r)] = i
	}

	total := new(big.Int)
	classCount := new(big.Int)
	eachCycleType(q, func(cycles []int, classSize *big.Int) {
		// Build one permutation with this cycle type.
		perm := permFromCycleType(q, cycles)
		// Induced action on X and its orbit lengths.
		orbitLens := orbitLengths(rows, index, perm)
		// Coefficient of x^p in Π 1/(1-x^L).
		fixed := multisetFixedCount(orbitLens, p)
		classCount.Mul(classSize, fixed)
		total.Add(total, classCount)
	})
	return total.Div(total, combinat.Factorial(q))
}

// eachCycleType enumerates the integer partitions of q (cycle types of
// S_q) with the size of each conjugacy class: q! / Π(λ_i · m_j!) where
// m_j are multiplicities of each part size.
func eachCycleType(q int, fn func(cycles []int, classSize *big.Int)) {
	var parts []int
	var rec func(remaining, maxPart int)
	rec = func(remaining, maxPart int) {
		if remaining == 0 {
			fn(parts, conjClassSize(q, parts))
			return
		}
		for sz := min(remaining, maxPart); sz >= 1; sz-- {
			parts = append(parts, sz)
			rec(remaining-sz, sz)
			parts = parts[:len(parts)-1]
		}
	}
	rec(q, q)
}

func conjClassSize(q int, parts []int) *big.Int {
	den := big.NewInt(1)
	mult := map[int]int{}
	for _, sz := range parts {
		den.Mul(den, big.NewInt(int64(sz)))
		mult[sz]++
	}
	for _, m := range mult {
		den.Mul(den, combinat.Factorial(m))
	}
	return new(big.Int).Div(combinat.Factorial(q), den)
}

// permFromCycleType lays the cycles out consecutively over [0, q).
func permFromCycleType(q int, cycles []int) []int {
	perm := make([]int, q)
	pos := 0
	for _, sz := range cycles {
		for i := 0; i < sz; i++ {
			perm[pos+i] = pos + (i+1)%sz
		}
		pos += sz
	}
	return perm
}

// orbitLengths computes the cycle lengths of the permutation induced on
// the partition set X by the column permutation perm.
func orbitLengths(rows [][]uint8, index map[string]int, perm []int) []int {
	apply := func(r []uint8) []uint8 {
		// Permute positions: out[j] = r[perm^{-1}(j)]... direction does not
		// matter for cycle structure; use out[perm[j]] = r[j], then
		// normalize to RGS (first-occurrence renaming restores the
		// canonical partition representative).
		out := make([]uint8, len(r))
		for j, v := range r {
			out[perm[j]] = v
		}
		var rename [256]int16
		for i := range rename[:256] {
			rename[i] = -1
		}
		next := uint8(0)
		for j, v := range out {
			if rename[v] < 0 {
				rename[v] = int16(next)
				next++
			}
			out[j] = uint8(rename[v])
		}
		return out
	}
	next := make([]int, len(rows))
	for i, r := range rows {
		j, ok := index[string(apply(r))]
		if !ok {
			panic("core: column action left the partition set")
		}
		next[i] = j
	}
	seen := make([]bool, len(rows))
	var lens []int
	for i := range rows {
		if seen[i] {
			continue
		}
		l := 0
		for j := i; !seen[j]; j = next[j] {
			seen[j] = true
			l++
		}
		lens = append(lens, l)
	}
	sort.Ints(lens)
	return lens
}

// multisetFixedCount returns the coefficient of x^p in Π 1/(1-x^L) over
// the orbit lengths L — the number of p-multisets invariant under the
// induced permutation.
func multisetFixedCount(orbitLens []int, p int) *big.Int {
	coef := make([]*big.Int, p+1)
	for i := range coef {
		coef[i] = big.NewInt(0)
	}
	coef[0].SetInt64(1)
	for _, l := range orbitLens {
		if l > p {
			continue
		}
		// Multiply by 1/(1-x^l): prefix-sum with stride l.
		for i := l; i <= p; i++ {
			coef[i].Add(coef[i], coef[i-l])
		}
	}
	return coef[p]
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
