package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/routing"
	"repro/internal/scheme/table"
)

func TestChooseParamsValid(t *testing.T) {
	// n = 64 cannot host eps = 0.75 (p(d+1) alone would exceed n); the
	// theorem is asymptotic, so the sweep starts where all eps fit.
	for _, n := range []int{256, 1024, 4096} {
		for _, eps := range []float64{0.25, 0.5, 0.75} {
			pr, err := ChooseParams(n, eps)
			if err != nil {
				t.Fatalf("n=%d eps=%v: %v", n, eps, err)
			}
			if pr.P*(pr.D+1)+pr.Q > n {
				t.Fatalf("n=%d eps=%v: p(d+1)+q = %d exceeds n", n, eps, pr.P*(pr.D+1)+pr.Q)
			}
			if pr.P < 1 || pr.D < 2 || pr.Q < 1 {
				t.Fatalf("n=%d eps=%v: degenerate params %+v", n, eps, pr)
			}
			// p tracks n^eps.
			if want := math.Pow(float64(n), eps); math.Abs(float64(pr.P)-want) > want {
				t.Fatalf("p = %d far from n^eps = %v", pr.P, want)
			}
		}
	}
}

func TestChooseParamsRejectsBadInput(t *testing.T) {
	if _, err := ChooseParams(100, 0); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := ChooseParams(100, 1); err == nil {
		t.Fatal("eps=1 accepted")
	}
	if _, err := ChooseParams(4, 0.5); err == nil {
		t.Fatal("tiny n accepted")
	}
	// eps so large that d collapses below 2.
	if _, err := ChooseParams(64, 0.99); err == nil {
		t.Fatal("degenerate alphabet accepted")
	}
}

func TestBuildInstanceOrderExact(t *testing.T) {
	pr, err := ChooseParams(200, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := BuildInstance(pr, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ins.CG.G.Order() != 200 {
		t.Fatalf("instance order %d, want 200", ins.CG.G.Order())
	}
	if !ins.CG.G.Connected() {
		t.Fatal("instance disconnected")
	}
}

func TestInstanceConstraintsHold(t *testing.T) {
	pr, err := ChooseParams(120, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := BuildInstance(pr, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ins.CG.ForcedMatrix(1.99)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ins.M) {
		t.Fatal("instance constraints do not match its matrix")
	}
}

func TestLowerBoundPositiveAndBelowUpper(t *testing.T) {
	// For the regimes the theorem addresses, the per-router lower bound is
	// positive and below the routing-table upper bound (both Θ(n log n)).
	for _, n := range []int{512, 2048, 8192} {
		for _, eps := range []float64{0.3, 0.5, 0.7} {
			pr, err := ChooseParams(n, eps)
			if err != nil {
				t.Fatalf("n=%d eps=%v: %v", n, eps, err)
			}
			b := LowerBound(pr)
			if b.PerRouter <= 0 {
				t.Fatalf("n=%d eps=%v: nonpositive per-router bound %v", n, eps, b.PerRouter)
			}
			if b.PerRouter > b.UpperPerNode {
				t.Fatalf("n=%d eps=%v: lower bound %v exceeds upper %v", n, eps, b.PerRouter, b.UpperPerNode)
			}
		}
	}
}

func TestLowerBoundScalesLikeNLogN(t *testing.T) {
	// Doubling n should roughly double the per-router bound (up to the
	// log factor): check the ratio lies in (1.5, 3).
	eps := 0.5
	pr1, _ := ChooseParams(2048, eps)
	pr2, _ := ChooseParams(4096, eps)
	b1, b2 := LowerBound(pr1), LowerBound(pr2)
	ratio := b2.PerRouter / b1.PerRouter
	if ratio < 1.5 || ratio > 3 {
		t.Fatalf("per-router bound ratio %v for n doubling, want ~2", ratio)
	}
}

func TestLowerBoundFractionOfUpper(t *testing.T) {
	// Asymptotic optimality: the bound should be a constant fraction of
	// (n-1) ceil(log2 d) already at moderate n (the fraction grows with n).
	pr, _ := ChooseParams(8192, 0.5)
	b := LowerBound(pr)
	if b.PerRouter < 0.2*b.UpperPerNode {
		t.Fatalf("bound %v below 20%% of upper %v at n=8192", b.PerRouter, b.UpperPerNode)
	}
}

func TestRebuildFromTables(t *testing.T) {
	pr, err := ChooseParams(150, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := BuildInstance(pr, 11)
	if err != nil {
		t.Fatal(err)
	}
	s, err := table.New(ins.CG.G, nil, table.MinPort)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ins.VerifyRebuild(s)
	if err != nil {
		t.Fatal(err)
	}
	// Exact canonicalization is q!-exponential and therefore reserved for
	// worked-example sizes; at instance scale the raw comparison performed
	// by VerifyRebuild is the meaningful check. Class equality for big
	// matrices is certified by equality itself (same matrix, same class).
	if !got.Equal(ins.M) {
		t.Fatal("rebuilt matrix differs")
	}
}

func TestRebuildDetectsForeignFunction(t *testing.T) {
	// A routing function for a DIFFERENT matrix must be flagged.
	pr := Params{N: 60, Eps: 0.5, P: 3, Q: 20, D: 4}
	ins1, err := BuildInstance(pr, 1)
	if err != nil {
		t.Fatal(err)
	}
	ins2, err := BuildInstance(pr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ins1.M.Equal(ins2.M) {
		t.Skip("random matrices collided; adjust seeds")
	}
	s2, err := table.New(ins2.CG.G, nil, table.MinPort)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ins1.VerifyRebuild(s2); err == nil {
		t.Fatal("rebuild accepted a routing function for another instance")
	}
}

func TestMeasuredTableBitsDominateLowerBound(t *testing.T) {
	// The punchline of the reproduction: on a Theorem 1 instance, the
	// measured per-router table size at the constrained vertices must lie
	// between the theoretical per-router lower bound and the raw upper
	// bound.
	pr, err := ChooseParams(400, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := BuildInstance(pr, 5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := table.New(ins.CG.G, nil, table.MinPort)
	if err != nil {
		t.Fatal(err)
	}
	b := LowerBound(pr)
	meanMeasured := float64(routing.SumBitsOver(s, ins.CG.A)) / float64(pr.P)
	if meanMeasured < b.PerRouter {
		t.Fatalf("measured %v below the information-theoretic bound %v — the coder is broken",
			meanMeasured, b.PerRouter)
	}
	// Generous upper sanity: raw row cost + flag + slack.
	if meanMeasured > b.UpperPerNode+64 {
		t.Fatalf("measured %v far above the raw upper bound %v", meanMeasured, b.UpperPerNode)
	}
}

func TestRandomMatrixProperty(t *testing.T) {
	check := func(seed uint64) bool {
		pr := Params{N: 80, Eps: 0.5, P: 4, Q: 25, D: 5}
		ins, err := BuildInstance(pr, seed)
		if err != nil {
			return false
		}
		return ins.CG.G.Order() == 80 && ins.M.IsRGSForm()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
