package core

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/xrand"
)

// These tests inject structural faults and verify the checkers catch
// them — the verifiers are only worth trusting if they can fail.

func TestVerifyLemma2CatchesExtraEdge(t *testing.T) {
	m := MustMatrix(2, 3, 3, []uint8{0, 1, 2, 0, 0, 1})
	cg, err := BuildConstraintGraph(m)
	if err != nil {
		t.Fatal(err)
	}
	// Short-circuit a_1 directly to b_1: now a length-1 path exists, so
	// d(a_1, b_1) != 2.
	cg.G.AddEdge(cg.A[0], cg.B[0])
	if err := cg.VerifyLemma2(); err == nil {
		t.Fatal("verifier missed an injected shortcut edge")
	}
}

func TestVerifyLemma2CatchesMergedMiddle(t *testing.T) {
	m := MustMatrix(1, 2, 2, []uint8{0, 1})
	cg, err := BuildConstraintGraph(m)
	if err != nil {
		t.Fatal(err)
	}
	// Connect the two middle vertices: creates an alternative a_1 -> c_11
	// -> c_12 -> b_2 path of length 3 < 4, breaking forcedness at s just
	// below 2.
	cg.G.AddEdge(cg.C[0][0], cg.C[0][1])
	if err := cg.VerifyLemma2(); err == nil {
		t.Fatal("verifier missed a middle-level shortcut")
	}
}

func TestForcedMatrixCatchesPortScramble(t *testing.T) {
	m := MustMatrix(2, 4, 3, []uint8{0, 1, 2, 0, 0, 1, 0, 1})
	cg, err := BuildConstraintGraph(m)
	if err != nil {
		t.Fatal(err)
	}
	// The adversary scrambles a constrained vertex's ports AFTER the
	// matrix was fixed: the forced matrix changes (it is still forced,
	// but no longer equal to M) — exactly why Definition 1 pins labels.
	cg.G.PermutePorts(cg.A[0], []int{2, 0, 1})
	got, err := cg.ForcedMatrix(1.9)
	if err != nil {
		t.Fatal(err)
	}
	if got.Equal(m) {
		t.Fatal("port scramble left the forced matrix unchanged")
	}
	// But the equivalence CLASS is invariant: relabeling ports is a
	// per-row value permutation.
	a, b := got.Clone(), m.Clone()
	a.NormalizeRows()
	b.NormalizeRows()
	if !a.Canonicalize().Equal(b.Canonicalize()) {
		t.Fatal("port scramble changed the equivalence class")
	}
}

func TestRebuildCatchesBrokenRouter(t *testing.T) {
	pr := Params{N: 40, Eps: 0.5, P: 2, Q: 16, D: 3}
	ins, err := BuildInstance(pr, 4)
	if err != nil {
		t.Fatal(err)
	}
	broken := &misroutingFunction{cg: ins.CG}
	if _, err := ins.VerifyRebuild(broken); err == nil {
		t.Fatal("rebuild accepted a router that lies about one pair")
	}
}

// misroutingFunction answers the constraint matrix except for the very
// first pair, where it reports a wrong (but valid) port.
type misroutingFunction struct {
	cg *ConstraintGraph
}

type mfHeader struct{ a, b graph.NodeID }

func (f *misroutingFunction) Init(src, dst graph.NodeID) routing.Header {
	return mfHeader{a: src, b: dst}
}

func (f *misroutingFunction) Port(x graph.NodeID, h routing.Header) graph.Port {
	hd := h.(mfHeader)
	for i, a := range f.cg.A {
		if a != hd.a {
			continue
		}
		for j, b := range f.cg.B {
			if b != hd.b {
				continue
			}
			want := graph.Port(f.cg.M.At(i, j) + 1)
			if i == 0 && j == 0 {
				// Lie: report a different port of a_1.
				if want == 1 {
					return 2
				}
				return 1
			}
			return want
		}
	}
	return graph.NoPort
}

func (f *misroutingFunction) Next(x graph.NodeID, h routing.Header) routing.Header { return h }

func TestCanonicalizeGuardsLargeQ(t *testing.T) {
	m := RandomMatrix(2, 11, 3, xrand.New(1))
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("canonicalize of q=11 did not panic")
		}
		if !strings.Contains(r.(string), "q!-exponential") {
			t.Fatalf("unhelpful panic: %v", r)
		}
	}()
	m.Canonicalize()
}

func TestConstraintDOTOutput(t *testing.T) {
	m := MustMatrix(2, 3, 3, []uint8{0, 1, 2, 0, 0, 1})
	cg, err := BuildConstraintGraph(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := cg.PadToOrder(cg.Order() + 2); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := cg.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{"a1", "b3", "c11", "taillabel", "shape=box"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("constraint DOT missing %q", frag)
		}
	}
}
