package core

import (
	"fmt"
	"io"

	"repro/internal/graph"
)

// WriteDOT renders the constraint graph with the paper's Figure/Equation
// conventions: constrained vertices a_i as filled boxes, targets b_j as
// circles, middle vertices c_ik as small points, and the port labels of
// the constrained vertices on the edge ends (they ARE the matrix).
func (cg *ConstraintGraph) WriteDOT(w io.Writer) error {
	role := make(map[graph.NodeID]string, cg.G.Order())
	for i, a := range cg.A {
		role[a] = fmt.Sprintf("a%d", i+1)
	}
	for j, b := range cg.B {
		role[b] = fmt.Sprintf("b%d", j+1)
	}
	for i, row := range cg.C {
		for k, c := range row {
			if c >= 0 {
				role[c] = fmt.Sprintf("c%d%d", i+1, k+1)
			}
		}
	}
	return cg.G.WriteDOT(w, graph.DOTOptions{
		Name: "constraints",
		NodeLabel: func(u graph.NodeID) string {
			if r, ok := role[u]; ok {
				return r
			}
			return fmt.Sprintf("p%d", u) // padding-path vertex
		},
		NodeAttr: func(u graph.NodeID) string {
			r := role[u]
			switch {
			case len(r) > 0 && r[0] == 'a':
				return "shape=box, style=filled, fillcolor=lightgray"
			case len(r) > 0 && r[0] == 'c':
				return "shape=point, width=0.12"
			case r == "":
				return "shape=point, width=0.06"
			}
			return ""
		},
		ShowPorts: true,
	})
}
