// Package core implements the contribution of Fraigniaud & Gavoille
// (1996): generalized matrices of constraints (Section 2), generalized
// graphs of constraints (Section 3), and the incompressibility machinery
// behind Theorem 1 (Section 4).
//
// A generalized matrix of constraints of a graph G at stretch s is a p×q
// integer matrix M = (m_ij), the entries of row i lying in {1..k_i} with
// k_i the number of distinct values of row i, such that for suitable
// vertex sets A (constrained) and B (target) every routing function of
// stretch at most s must send a_i -> b_j through the arc locally labeled
// m_ij. Matrices are considered up to the equivalence of Definition 2:
// permutations of rows, of columns, and of the entry VALUES of each row
// independently (a relabeling of ports). dMpq denotes the canonical
// representatives of the p×q matrices over {1..d}.
//
// The package represents matrices 0-based internally: entries in
// {0..d-1}, each row in restricted-growth (first-occurrence) form after
// normalization. Display adds 1 to match the paper.
package core

import (
	"bytes"
	"fmt"
	"math"
	"math/big"

	"repro/internal/combinat"
)

// Matrix is a p×q matrix of constraints candidate with entries in
// {0..d-1} (0-based; the paper's {1..d}).
type Matrix struct {
	P, Q, D int
	// cells holds row-major entries; len = P*Q.
	cells []uint8
}

// NewMatrix builds a matrix from row-major 0-based entries. It validates
// shape and range.
func NewMatrix(p, q, d int, cells []uint8) (*Matrix, error) {
	if p < 1 || q < 1 || d < 1 {
		return nil, fmt.Errorf("core: invalid shape p=%d q=%d d=%d", p, q, d)
	}
	if d > 255 {
		return nil, fmt.Errorf("core: alphabet size %d too large", d)
	}
	if len(cells) != p*q {
		return nil, fmt.Errorf("core: got %d cells, want %d", len(cells), p*q)
	}
	for i, v := range cells {
		if int(v) >= d {
			return nil, fmt.Errorf("core: cell %d has value %d >= d=%d", i, v, d)
		}
	}
	m := &Matrix{P: p, Q: q, D: d, cells: append([]uint8(nil), cells...)}
	return m, nil
}

// MustMatrix is NewMatrix that panics on error; for tests and literals.
func MustMatrix(p, q, d int, cells []uint8) *Matrix {
	m, err := NewMatrix(p, q, d, cells)
	if err != nil {
		panic(err)
	}
	return m
}

// At returns m_ij (0-based value) for 0-based row i, column j.
func (m *Matrix) At(i, j int) uint8 { return m.cells[i*m.Q+j] }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []uint8 {
	return append([]uint8(nil), m.cells[i*m.Q:(i+1)*m.Q]...)
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{P: m.P, Q: m.Q, D: m.D, cells: append([]uint8(nil), m.cells...)}
}

// Equal reports cell-wise equality (same shape and entries).
func (m *Matrix) Equal(o *Matrix) bool {
	return m.P == o.P && m.Q == o.Q && m.D == o.D && bytes.Equal(m.cells, o.cells)
}

// RowValues returns k_i: the number of distinct values in row i.
func (m *Matrix) RowValues(i int) int {
	var seen [256]bool
	k := 0
	for j := 0; j < m.Q; j++ {
		v := m.At(i, j)
		if !seen[v] {
			seen[v] = true
			k++
		}
	}
	return k
}

// IsRGSForm reports whether every row is in first-occurrence (restricted
// growth) form: the row's first entry is 0 and each entry is at most one
// above the running maximum. Canonical representatives are always in this
// form, and Definition 1 requires rows of a matrix of constraints to use
// the value set {1..k_i} (0-based {0..k_i-1}).
func (m *Matrix) IsRGSForm() bool {
	for i := 0; i < m.P; i++ {
		maxv := -1
		for j := 0; j < m.Q; j++ {
			v := int(m.At(i, j))
			if v > maxv+1 {
				return false
			}
			if v > maxv {
				maxv = v
			}
		}
	}
	return true
}

// NormalizeRows rewrites each row in place into first-occurrence form:
// values are renamed by order of first appearance. This applies the
// per-row entry permutation of Definition 2 that any router relabeling
// realizes, and never changes the equivalence class.
func (m *Matrix) NormalizeRows() {
	var rename [256]int16
	for i := 0; i < m.P; i++ {
		for k := range rename[:m.D] {
			rename[k] = -1
		}
		next := uint8(0)
		for j := 0; j < m.Q; j++ {
			v := m.At(i, j)
			if rename[v] < 0 {
				rename[v] = int16(next)
				next++
			}
			m.cells[i*m.Q+j] = uint8(rename[v])
		}
	}
}

// PermuteRows reorders rows: new row i is old row perm[i].
func (m *Matrix) PermuteRows(perm []int) {
	if len(perm) != m.P {
		panic("core: row permutation length mismatch")
	}
	out := make([]uint8, len(m.cells))
	for i, src := range perm {
		copy(out[i*m.Q:(i+1)*m.Q], m.cells[src*m.Q:(src+1)*m.Q])
	}
	m.cells = out
}

// PermuteCols reorders columns: new column j is old column perm[j].
func (m *Matrix) PermuteCols(perm []int) {
	if len(perm) != m.Q {
		panic("core: column permutation length mismatch")
	}
	out := make([]uint8, len(m.cells))
	for i := 0; i < m.P; i++ {
		for j, src := range perm {
			out[i*m.Q+j] = m.cells[i*m.Q+src]
		}
	}
	m.cells = out
}

// PermuteRowValues applies the entry permutation perm (a permutation of
// {0..d-1}) to row i.
func (m *Matrix) PermuteRowValues(i int, perm []uint8) {
	if len(perm) != m.D {
		panic("core: value permutation length mismatch")
	}
	for j := 0; j < m.Q; j++ {
		m.cells[i*m.Q+j] = perm[m.At(i, j)]
	}
}

// Index returns the paper's canonical index: the row-major entries read
// as digits of an integer in base d (0-based digits), so lexicographic
// comparison of cell slices equals numeric comparison of indices.
func (m *Matrix) Index() *big.Int {
	idx := new(big.Int)
	base := big.NewInt(int64(m.D))
	for _, v := range m.cells {
		idx.Mul(idx, base)
		idx.Add(idx, big.NewInt(int64(v)))
	}
	return idx
}

// Less reports whether m's cells are lexicographically (row-major) below
// o's; both must have the same shape.
func (m *Matrix) Less(o *Matrix) bool {
	return bytes.Compare(m.cells, o.cells) < 0
}

// Key returns the cells as a comparable string, for use as a map key.
func (m *Matrix) Key() string { return string(m.cells) }

// String renders the matrix with the paper's 1-based values.
func (m *Matrix) String() string {
	var b bytes.Buffer
	for i := 0; i < m.P; i++ {
		if i > 0 {
			b.WriteByte('\n')
		}
		for j := 0; j < m.Q; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", m.At(i, j)+1)
		}
	}
	return b.String()
}

// Canonicalize returns the canonical representative of m's equivalence
// class: the matrix with minimum index reachable by row permutations,
// column permutations and per-row value permutations. The search
// normalizes rows after each candidate column order (first-occurrence
// renaming is exactly the value permutation minimizing a single row
// lexicographically, and rows are independent), then minimizes over all
// q! column orders and p! row orders. Exponential in q by nature — the
// paper's Lemma 1 counts classes instead of listing them for exactly this
// reason, and its Theorem 1 only needs the canonicalizer to EXIST as an
// O(log n)-bit program, not to be fast — so this implementation refuses
// shapes beyond the worked-example scale (q > 10) instead of hanging.
func (m *Matrix) Canonicalize() *Matrix {
	if m.Q > 10 {
		panic(fmt.Sprintf("core: exact canonicalization is q!-exponential; q=%d exceeds the supported 10", m.Q))
	}
	best := m.Clone()
	best.NormalizeRows()
	best.sortRows()
	colPerm := make([]int, m.Q)
	for i := range colPerm {
		colPerm[i] = i
	}
	cur := m.Clone()
	permutations(colPerm, func(perm []int) {
		cand := cur.Clone()
		cand.PermuteCols(perm)
		cand.NormalizeRows()
		cand.sortRows()
		if cand.Less(best) {
			best = cand
		}
	})
	return best
}

// sortRows orders rows lexicographically; with rows independently
// value-normalized, sorting rows realizes the optimal row permutation for
// a fixed column order (rows are independent blocks of the index).
func (m *Matrix) sortRows() {
	rows := make([][]uint8, m.P)
	for i := 0; i < m.P; i++ {
		rows[i] = m.cells[i*m.Q : (i+1)*m.Q]
	}
	// Insertion sort: p is small and rows share backing storage, so sort
	// a copy and write back.
	cp := make([][]uint8, m.P)
	for i := range rows {
		cp[i] = append([]uint8(nil), rows[i]...)
	}
	for i := 1; i < len(cp); i++ {
		for k := i; k > 0 && bytes.Compare(cp[k], cp[k-1]) < 0; k-- {
			cp[k], cp[k-1] = cp[k-1], cp[k]
		}
	}
	for i := range cp {
		copy(m.cells[i*m.Q:(i+1)*m.Q], cp[i])
	}
}

// Equivalent reports whether m and o lie in the same class of
// Definition 2's relation.
func (m *Matrix) Equivalent(o *Matrix) bool {
	if m.P != o.P || m.Q != o.Q || m.D != o.D {
		return false
	}
	return m.Canonicalize().Equal(o.Canonicalize())
}

// permutations invokes fn with every permutation of p in place (Heap's
// algorithm); fn must not retain p.
func permutations(p []int, fn func([]int)) {
	n := len(p)
	c := make([]int, n)
	fn(p)
	i := 0
	for i < n {
		if c[i] < i {
			if i%2 == 0 {
				p[0], p[i] = p[i], p[0]
			} else {
				p[c[i]], p[i] = p[i], p[c[i]]
			}
			fn(p)
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
}

// Enumerate lists the canonical representatives of dMpq, i.e. one matrix
// per class of p×q matrices over {1..d} under Definition 2's equivalence.
// It enumerates rows as restricted growth strings (one per per-row value
// class), takes all p-tuples, canonicalizes, and deduplicates. Returned
// matrices are sorted by index. Feasible for the worked-example sizes
// (the paper's ³M₂₃ and neighbors); Count gives the class count and
// Lemma1Bound the scalable lower bound.
func Enumerate(d, p, q int) []*Matrix {
	// All distinct RGS rows of length q over <= d values.
	var rows [][]uint8
	combinat.EachRGS(q, d, func(r []uint8) bool {
		rows = append(rows, append([]uint8(nil), r...))
		return true
	})
	seen := make(map[string]*Matrix)
	idx := make([]int, p)
	var rec func(pos int)
	rec = func(pos int) {
		if pos == p {
			cells := make([]uint8, 0, p*q)
			for _, ri := range idx {
				cells = append(cells, rows[ri]...)
			}
			m := MustMatrix(p, q, d, cells)
			c := m.Canonicalize()
			key := c.Key()
			if _, ok := seen[key]; !ok {
				seen[key] = c
			}
			return
		}
		// Rows of the canonical form are sorted, so enumerating
		// non-decreasing row index tuples covers every class.
		start := 0
		if pos > 0 {
			start = idx[pos-1]
		}
		for ri := start; ri < len(rows); ri++ {
			idx[pos] = ri
			rec(pos + 1)
		}
	}
	rec(0)
	out := make([]*Matrix, 0, len(seen))
	for _, m := range seen {
		out = append(out, m)
	}
	// Sort by index (lexicographic cells).
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k].Less(out[k-1]); k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

// Count returns |dMpq| by exhaustive enumeration. Use only at
// worked-example scale.
func Count(d, p, q int) int { return len(Enumerate(d, p, q)) }

// Lemma1Bound returns the paper's Lemma 1 lower bound on |dMpq| as exact
// big integers: numerator d^(pq), denominator p!·q!·(d!)^p, and the floor
// of their quotient (at least 1 whenever the numerator is positive, since
// dMpq is nonempty for valid shapes).
func Lemma1Bound(d, p, q int) (num, den, bound *big.Int) {
	num = combinat.Pow(d, p*q)
	den = new(big.Int).Mul(combinat.Factorial(p), combinat.Factorial(q))
	dfp := new(big.Int).Exp(combinat.Factorial(d), big.NewInt(int64(p)), nil)
	den.Mul(den, dfp)
	bound = new(big.Int).Div(num, den)
	return num, den, bound
}

// Log2Lemma1Bound returns log2 of the Lemma 1 bound in floating point:
// pq·log2 d − log2 p! − log2 q! − p·log2 d!. This is the form Theorem 1
// consumes and it scales to the n^ε regimes where exact enumeration
// cannot go.
func Log2Lemma1Bound(d, p, q int) float64 {
	return float64(p)*float64(q)*math.Log2(float64(d)) -
		combinat.Log2Factorial(p) - combinat.Log2Factorial(q) -
		float64(p)*combinat.Log2Factorial(d)
}
