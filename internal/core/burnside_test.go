package core

import (
	"math/big"
	"testing"
)

func TestBurnsideMatchesEnumeration(t *testing.T) {
	// Two completely independent counting methods must agree: explicit
	// p-tuple enumeration + canonicalization vs Burnside orbit counting.
	for _, c := range []struct{ d, p, q int }{
		{1, 1, 1}, {2, 1, 2}, {2, 2, 2}, {3, 2, 2}, {2, 2, 3},
		{3, 2, 3}, {3, 3, 3}, {4, 2, 4}, {2, 3, 4}, {3, 2, 5},
		{2, 4, 4}, {5, 2, 5}, {4, 3, 4},
	} {
		exact := int64(Count(c.d, c.p, c.q))
		burn := CountViaBurnside(c.d, c.p, c.q)
		if burn.Cmp(big.NewInt(exact)) != 0 {
			t.Fatalf("d=%d p=%d q=%d: enumeration %d vs Burnside %v", c.d, c.p, c.q, exact, burn)
		}
	}
}

func TestBurnside3M23Is7(t *testing.T) {
	if got := CountViaBurnside(3, 2, 3); got.Cmp(big.NewInt(7)) != 0 {
		t.Fatalf("Burnside |3M23| = %v, want 7", got)
	}
}

func TestBurnsideScalesBeyondEnumeration(t *testing.T) {
	// Shapes whose tuple enumeration would be enormous are fine for
	// Burnside; sanity: count must dominate the Lemma 1 bound.
	for _, c := range []struct{ d, p, q int }{
		{3, 8, 6}, {4, 6, 7}, {2, 12, 8},
	} {
		burn := CountViaBurnside(c.d, c.p, c.q)
		_, _, bound := Lemma1Bound(c.d, c.p, c.q)
		if burn.Cmp(bound) < 0 {
			t.Fatalf("d=%d p=%d q=%d: Burnside %v below Lemma 1 bound %v", c.d, c.p, c.q, burn, bound)
		}
	}
}

func TestBurnsideSingleRow(t *testing.T) {
	// p = 1: classes are just partitions of [q] into <= d blocks.
	for q := 1; q <= 7; q++ {
		for d := 1; d <= 4; d++ {
			burn := CountViaBurnside(d, 1, q)
			// Orbits of single partitions under S_q = number of "partition
			// shapes": integer partitions of q into <= d parts.
			want := int64(integerPartitionsUpTo(q, d))
			if burn.Int64() != want {
				t.Fatalf("d=%d q=%d: Burnside %v, want %d integer partitions", d, q, burn, want)
			}
		}
	}
}

// integerPartitionsUpTo counts integer partitions of q into at most d
// parts (the S_q-orbits of set partitions into <= d blocks).
func integerPartitionsUpTo(q, d int) int {
	var rec func(remaining, maxPart, parts int) int
	rec = func(remaining, maxPart, parts int) int {
		if remaining == 0 {
			return 1
		}
		if parts == d {
			return 0
		}
		total := 0
		for sz := min(remaining, maxPart); sz >= 1; sz-- {
			total += rec(remaining-sz, sz, parts+1)
		}
		return total
	}
	return rec(q, q, 0)
}
