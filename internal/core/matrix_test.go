package core

import (
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/combinat"
	"repro/internal/xrand"
)

func TestNewMatrixValidation(t *testing.T) {
	if _, err := NewMatrix(0, 2, 2, nil); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, err := NewMatrix(2, 2, 2, []uint8{0, 0, 0}); err == nil {
		t.Fatal("wrong cell count accepted")
	}
	if _, err := NewMatrix(1, 2, 2, []uint8{0, 2}); err == nil {
		t.Fatal("out-of-range value accepted")
	}
}

func TestRowValues(t *testing.T) {
	m := MustMatrix(2, 3, 3, []uint8{0, 1, 0, 0, 1, 2})
	if m.RowValues(0) != 2 || m.RowValues(1) != 3 {
		t.Fatal("distinct-value counts wrong")
	}
}

func TestNormalizeRows(t *testing.T) {
	m := MustMatrix(2, 3, 3, []uint8{2, 2, 0, 1, 0, 1})
	m.NormalizeRows()
	want := []uint8{0, 0, 1, 0, 1, 0}
	for i, v := range want {
		if m.cells[i] != v {
			t.Fatalf("normalized cells %v, want %v", m.cells, want)
		}
	}
	if !m.IsRGSForm() {
		t.Fatal("normalized matrix not in RGS form")
	}
}

func TestIndexBaseD(t *testing.T) {
	m := MustMatrix(1, 3, 3, []uint8{1, 0, 2})
	// digits 1,0,2 in base 3 = 9 + 0 + 2 = 11.
	if m.Index().Cmp(big.NewInt(11)) != 0 {
		t.Fatalf("index %v, want 11", m.Index())
	}
}

func TestCanonicalizeIdempotent(t *testing.T) {
	check := func(seed uint64, pp, qq, dd uint8) bool {
		p := int(pp%3) + 1
		q := int(qq%4) + 1
		d := int(dd%3) + 1
		m := RandomMatrix(p, q, d, xrand.New(seed))
		c := m.Canonicalize()
		return c.Canonicalize().Equal(c)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCanonicalizeInvariantUnderGroupAction(t *testing.T) {
	// The central property: applying arbitrary row, column and per-row
	// value permutations never changes the canonical representative.
	check := func(seed uint64, pp, qq, dd uint8) bool {
		p := int(pp%3) + 1
		q := int(qq%4) + 1
		d := int(dd%3) + 1
		r := xrand.New(seed)
		m := RandomMatrix(p, q, d, r)
		c1 := m.Canonicalize()
		// Random group element.
		g := m.Clone()
		g.PermuteRows(r.Perm(p))
		g.PermuteCols(r.Perm(q))
		for i := 0; i < p; i++ {
			vp := r.Perm(d)
			perm := make([]uint8, d)
			for a, b := range vp {
				perm[a] = uint8(b)
			}
			g.PermuteRowValues(i, perm)
		}
		c2 := g.Canonicalize()
		return c1.Equal(c2)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestCanonicalIsMinimalInOrbit(t *testing.T) {
	// For a small matrix, exhaustively verify no group element produces a
	// lexicographically smaller form than Canonicalize's result.
	m := MustMatrix(2, 3, 3, []uint8{2, 0, 1, 1, 1, 0})
	c := m.Canonicalize()
	rowPerms := [][]int{{0, 1}, {1, 0}}
	colPerms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, rp := range rowPerms {
		for _, cp := range colPerms {
			g := m.Clone()
			g.PermuteRows(rp)
			g.PermuteCols(cp)
			g.NormalizeRows() // optimal value permutation per row
			if g.Less(c) {
				t.Fatalf("found smaller form\n%s\nthan canonical\n%s", g, c)
			}
		}
	}
}

func TestEquivalentDetectsClasses(t *testing.T) {
	a := MustMatrix(2, 2, 2, []uint8{0, 0, 0, 1})
	b := MustMatrix(2, 2, 2, []uint8{0, 1, 0, 0}) // row swap of a (after renaming)
	if !a.Equivalent(b) {
		t.Fatal("row-swapped matrices not equivalent")
	}
	c := MustMatrix(2, 2, 2, []uint8{0, 1, 0, 1})
	if a.Equivalent(c) {
		t.Fatal("distinct classes reported equivalent")
	}
}

func TestEnumerate3M23Is7(t *testing.T) {
	// The paper's worked example (Equation 1): |³M₂₃| = 7.
	ms := Enumerate(3, 2, 3)
	if len(ms) != 7 {
		t.Fatalf("|3M23| = %d, want 7", len(ms))
	}
	for _, m := range ms {
		if !m.IsRGSForm() {
			t.Fatalf("canonical representative not in RGS form:\n%s", m)
		}
		if !m.Canonicalize().Equal(m) {
			t.Fatalf("representative not canonical:\n%s", m)
		}
	}
	// The identity-like extremes must be present: all-ones and the
	// double staircase (1 2 3 / 1 2 3).
	first, last := ms[0], ms[len(ms)-1]
	if first.String() != "1 1 1\n1 1 1" {
		t.Fatalf("first canonical matrix is\n%s", first)
	}
	if last.String() != "1 2 3\n1 2 3" {
		t.Fatalf("last canonical matrix is\n%s", last)
	}
}

func TestEnumerateCountsSmall(t *testing.T) {
	// Independently verified class counts (orbits of row-partition
	// tuples under joint column permutation and row swaps).
	cases := []struct{ d, p, q, want int }{
		{1, 1, 1, 1},
		{2, 1, 2, 2},  // rows: 11, 12
		{2, 2, 2, 3},  // (11,11),(11,12),(12,12)
		{3, 2, 2, 3},  // same: k_i <= 2
		{2, 2, 3, 4},  // partitions of [3] into <=2 blocks
		{3, 2, 3, 7},  // the paper's example
		{3, 3, 3, 14}, // multisets with alignment structure
	}
	for _, c := range cases {
		if got := Count(c.d, c.p, c.q); got != c.want {
			t.Fatalf("|%dM%d%d| = %d, want %d", c.d, c.p, c.q, got, c.want)
		}
	}
}

func TestEnumerateCoversAllMatrices(t *testing.T) {
	// Every matrix over {0..d-1} must canonicalize to a listed
	// representative (d=2, p=2, q=2: 16 matrices).
	reps := make(map[string]bool)
	for _, m := range Enumerate(2, 2, 2) {
		reps[m.Key()] = true
	}
	for bits := 0; bits < 16; bits++ {
		cells := []uint8{
			uint8(bits & 1), uint8((bits >> 1) & 1),
			uint8((bits >> 2) & 1), uint8((bits >> 3) & 1),
		}
		m := MustMatrix(2, 2, 2, cells)
		if !reps[m.Canonicalize().Key()] {
			t.Fatalf("matrix %v canonicalizes outside the enumeration", cells)
		}
	}
}

func TestLemma1BoundHolds(t *testing.T) {
	// |dMpq| must dominate the Lemma 1 bound wherever we can enumerate.
	for _, c := range []struct{ d, p, q int }{
		{2, 1, 3}, {2, 2, 3}, {3, 2, 3}, {2, 2, 4}, {3, 2, 4}, {2, 3, 4}, {4, 2, 4},
	} {
		exact := Count(c.d, c.p, c.q)
		_, _, bound := Lemma1Bound(c.d, c.p, c.q)
		if big.NewInt(int64(exact)).Cmp(bound) < 0 {
			t.Fatalf("Lemma 1 violated at d=%d p=%d q=%d: exact %d < bound %v",
				c.d, c.p, c.q, exact, bound)
		}
	}
}

func TestLog2Lemma1BoundMatchesExactFormula(t *testing.T) {
	d, p, q := 5, 7, 11
	got := Log2Lemma1Bound(d, p, q)
	num, den, _ := Lemma1Bound(d, p, q)
	want := combinat.Log2Big(num) - combinat.Log2Big(den)
	if diff := got - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("log bound %v, exact %v", got, want)
	}
}

func TestRandomMatrixShape(t *testing.T) {
	m := RandomMatrix(3, 5, 4, xrand.New(1))
	if m.P != 3 || m.Q != 5 || m.D != 4 {
		t.Fatal("shape wrong")
	}
	if !m.IsRGSForm() {
		t.Fatal("RandomMatrix must normalize rows")
	}
}

func TestStringRendering(t *testing.T) {
	m := MustMatrix(2, 2, 2, []uint8{0, 1, 0, 0})
	if m.String() != "1 2\n1 1" {
		t.Fatalf("rendering %q", m.String())
	}
}
