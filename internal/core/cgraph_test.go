package core

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/scheme/table"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

func TestBuildConstraintGraphRejectsNonPrefixRows(t *testing.T) {
	// Row uses {0,2} but not 1: not a value prefix.
	m := &Matrix{P: 1, Q: 2, D: 3, cells: []uint8{0, 2}}
	if _, err := BuildConstraintGraph(m); err == nil {
		t.Fatal("non-prefix row accepted")
	}
}

func TestConstraintGraphStructure(t *testing.T) {
	m := MustMatrix(2, 3, 3, []uint8{0, 0, 1, 0, 1, 2})
	cg, err := BuildConstraintGraph(m)
	if err != nil {
		t.Fatal(err)
	}
	// Row 1 uses 2 values, row 2 uses 3: |C| = 5, order = 2 + 3 + 5 = 10.
	if cg.Order() != 10 {
		t.Fatalf("order %d, want 10", cg.Order())
	}
	if cg.Order() > cg.OrderBound() {
		t.Fatal("order exceeds Lemma 2 bound")
	}
	// Port k+1 at a_i leads to c_ik.
	for i := 0; i < 2; i++ {
		ki := m.RowValues(i)
		if cg.G.Degree(cg.A[i]) != ki {
			t.Fatalf("deg(a_%d) = %d, want %d", i+1, cg.G.Degree(cg.A[i]), ki)
		}
		for k := 0; k < ki; k++ {
			if cg.G.Neighbor(cg.A[i], graph.Port(k+1)) != cg.C[i][k] {
				t.Fatalf("port %d at a_%d misaligned", k+1, i+1)
			}
		}
	}
	if err := cg.VerifyLemma2(); err != nil {
		t.Fatal(err)
	}
}

func TestAllWorkedExampleGraphsVerify(t *testing.T) {
	// Equation 2 of the paper: the seven graphs of constraints of ³M₂₃.
	ms := Enumerate(3, 2, 3)
	if len(ms) != 7 {
		t.Fatalf("expected 7 matrices, got %d", len(ms))
	}
	for i, m := range ms {
		cg, err := BuildConstraintGraph(m)
		if err != nil {
			t.Fatalf("matrix #%d: %v", i+1, err)
		}
		if err := cg.VerifyLemma2(); err != nil {
			t.Fatalf("matrix #%d: %v", i+1, err)
		}
	}
}

func TestConstraintGraphPropertyRandom(t *testing.T) {
	check := func(seed uint64, pp, qq, dd uint8) bool {
		p := int(pp%4) + 1
		q := int(qq%5) + 1
		d := int(dd%4) + 1
		m := RandomMatrix(p, q, d, xrand.New(seed))
		cg, err := BuildConstraintGraph(m)
		if err != nil {
			return false
		}
		return cg.VerifyLemma2() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestForcedMatrixRecoversM(t *testing.T) {
	check := func(seed uint64, pp, qq, dd uint8) bool {
		p := int(pp%3) + 1
		q := int(qq%4) + 1
		d := int(dd%3) + 2
		m := RandomMatrix(p, q, d, xrand.New(seed))
		cg, err := BuildConstraintGraph(m)
		if err != nil {
			return false
		}
		for _, s := range []float64{1.0, 1.5, 1.99} {
			got, err := cg.ForcedMatrix(s)
			if err != nil || !got.Equal(m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestForcednessBreaksAtStretch2(t *testing.T) {
	// At s = 2 the budget is 4 and the alternative length-4 paths become
	// admissible, so pairs with alternatives are no longer forced — the
	// reason Theorem 1 stops strictly below stretch 2.
	m := MustMatrix(2, 3, 3, []uint8{0, 1, 2, 0, 1, 2})
	cg, err := BuildConstraintGraph(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cg.ForcedMatrix(2.0); err == nil {
		t.Fatal("constraints survived stretch 2; they must not")
	}
}

func TestPadToOrder(t *testing.T) {
	m := MustMatrix(2, 2, 2, []uint8{0, 1, 0, 0})
	cg, err := BuildConstraintGraph(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := cg.PadToOrder(25); err != nil {
		t.Fatal(err)
	}
	if cg.G.Order() != 25 {
		t.Fatalf("padded order %d, want 25", cg.G.Order())
	}
	if !cg.G.Connected() {
		t.Fatal("padding broke connectivity")
	}
	// Constraints must survive padding.
	got, err := cg.ForcedMatrix(1.9)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("padding changed the forced matrix")
	}
}

func TestPadToOrderRejectsShrink(t *testing.T) {
	m := MustMatrix(2, 3, 3, []uint8{0, 1, 2, 0, 0, 1})
	cg, _ := BuildConstraintGraph(m)
	if err := cg.PadToOrder(3); err == nil {
		t.Fatal("shrinking pad accepted")
	}
}

func TestPadToOrderNoop(t *testing.T) {
	m := MustMatrix(1, 2, 2, []uint8{0, 1})
	cg, _ := BuildConstraintGraph(m)
	n := cg.G.Order()
	if err := cg.PadToOrder(n); err != nil {
		t.Fatal(err)
	}
	if cg.G.Order() != n {
		t.Fatal("noop pad changed order")
	}
}

func TestRoutingTablesObeyConstraints(t *testing.T) {
	// End-to-end: shortest-path routing tables on a padded constraint
	// graph must answer exactly the matrix entries at the constrained
	// routers — the executable version of Definition 1.
	m := RandomMatrix(3, 6, 4, xrand.New(21))
	cg, err := BuildConstraintGraph(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := cg.PadToOrder(cg.Order() + 9); err != nil {
		t.Fatal(err)
	}
	s, err := table.New(cg.G, nil, table.MinPort)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := routing.MeasureStretch(cg.G, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Max != 1.0 {
		t.Fatalf("tables stretch %v", rep.Max)
	}
	got, err := Rebuild(s, cg.A, cg.B, m.D)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatalf("rebuilt matrix differs:\n%s\nvs\n%s", got, m)
	}
}

func TestMiddleVertexDegrees(t *testing.T) {
	// c_ik is adjacent to a_i plus the b_j with m_ij = k.
	m := MustMatrix(1, 4, 2, []uint8{0, 1, 0, 1})
	cg, err := BuildConstraintGraph(m)
	if err != nil {
		t.Fatal(err)
	}
	apsp := shortest.NewAPSP(cg.G)
	_ = apsp
	if cg.G.Degree(cg.C[0][0]) != 3 { // a_1, b_1, b_3
		t.Fatalf("deg(c_11) = %d, want 3", cg.G.Degree(cg.C[0][0]))
	}
	if cg.G.Degree(cg.C[0][1]) != 3 { // a_1, b_2, b_4
		t.Fatalf("deg(c_12) = %d, want 3", cg.G.Degree(cg.C[0][1]))
	}
}
