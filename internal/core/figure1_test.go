package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

func TestPetersenUniqueShortestPaths(t *testing.T) {
	g := gen.Petersen()
	if !UniqueShortestPaths(g, nil) {
		t.Fatal("Petersen graph should have unique shortest paths (strong regularity)")
	}
}

func TestPetersenAllPairsForced(t *testing.T) {
	g := gen.Petersen()
	if !AllPairsForced(g, nil, 1.0) {
		t.Fatal("every Petersen pair should have a forced first arc at s=1")
	}
}

func TestFigure1Matrix(t *testing.T) {
	// The paper's Figure 1: a 5×5 shortest-path matrix of constraints on
	// the Petersen graph with A and B of size 5. The specific labels are
	// immaterial (any disjoint choice works by strong regularity); we use
	// the outer cycle as A and the inner pentagram as B.
	g := gen.Petersen()
	A := []graph.NodeID{0, 1, 2, 3, 4}
	B := []graph.NodeID{5, 6, 7, 8, 9}
	m, err := ConstraintMatrixOf(g, nil, A, B, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if m.P != 5 || m.Q != 5 {
		t.Fatal("matrix shape wrong")
	}
	// Every row must reference at most deg = 3 distinct ports.
	for i := 0; i < 5; i++ {
		if m.RowValues(i) > 3 {
			t.Fatalf("row %d uses %d ports, Petersen degree is 3", i, m.RowValues(i))
		}
	}
	// Cross-check each entry against an explicit shortest path.
	apsp := shortest.NewAPSP(g)
	for i, a := range A {
		for j, b := range B {
			port := graph.Port(m.At(i, j) + 1)
			w := g.Neighbor(a, port)
			if apsp.Dist(w, b)+1 != apsp.Dist(a, b) {
				t.Fatalf("entry (%d,%d): port %d does not start a shortest path", i, j, port)
			}
		}
	}
}

func TestConstraintMatrixRejectsOverlap(t *testing.T) {
	g := gen.Petersen()
	if _, err := ConstraintMatrixOf(g, nil, []graph.NodeID{0}, []graph.NodeID{0}, 1.0); err == nil {
		t.Fatal("overlapping A and B accepted")
	}
}

func TestConstraintMatrixFailsOnAmbiguousGraph(t *testing.T) {
	// On an even cycle, antipodal pairs have two shortest first arcs, so
	// no matrix of constraints exists for A, B containing such a pair.
	g := gen.Cycle(6)
	if _, err := ConstraintMatrixOf(g, nil, []graph.NodeID{0}, []graph.NodeID{3}, 1.0); err == nil {
		t.Fatal("ambiguous pair accepted")
	}
}

func TestAllPairsForcedFailsOnGrid(t *testing.T) {
	if AllPairsForced(gen.Grid2D(3, 3), nil, 1.0) {
		t.Fatal("grids have many shortest paths; forcing must fail")
	}
}

func TestUniqueShortestPathsOddCycle(t *testing.T) {
	if !UniqueShortestPaths(gen.Cycle(7), nil) {
		t.Fatal("odd cycles have unique shortest paths")
	}
	if UniqueShortestPaths(gen.Cycle(8), nil) {
		t.Fatal("even cycles have antipodal ties")
	}
}

func TestFigure1PortLabelingInvariance(t *testing.T) {
	// Scrambling ports changes the matrix entries but never the
	// EXISTENCE of the constraint matrix, and the scrambled matrix is the
	// old one up to per-row value permutation (same equivalence class
	// after padding rows — here rows are full permutation images, so we
	// check class equality via Canonicalize on normalized copies).
	g := gen.Petersen()
	A := []graph.NodeID{0, 1, 2, 3, 4}
	B := []graph.NodeID{5, 6, 7, 8, 9}
	m1, err := ConstraintMatrixOf(g, nil, A, B, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(13)
	for _, a := range A {
		g.PermutePorts(a, r.Perm(g.Degree(a)))
	}
	m2, err := ConstraintMatrixOf(g, nil, A, B, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := m1.Clone(), m2.Clone()
	c1.NormalizeRows()
	c2.NormalizeRows()
	if !c1.Canonicalize().Equal(c2.Canonicalize()) {
		t.Fatal("port scrambling moved the matrix to a different class")
	}
}
