package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// The paper's worked example: enumerate the canonical matrices of
// constraints 3M23 (Equation 1 displays these seven).
func ExampleEnumerate() {
	for i, m := range core.Enumerate(3, 2, 3) {
		fmt.Printf("#%d: %v | %v\n", i+1, m.Row(0), m.Row(1))
	}
	// Output:
	// #1: [0 0 0] | [0 0 0]
	// #2: [0 0 0] | [0 0 1]
	// #3: [0 0 0] | [0 1 2]
	// #4: [0 0 1] | [0 0 1]
	// #5: [0 0 1] | [0 1 0]
	// #6: [0 0 1] | [0 1 2]
	// #7: [0 1 2] | [0 1 2]
}

// Lemma 2: build the graph of constraints of a matrix and verify that the
// matrix is forced for every stretch below 2.
func ExampleBuildConstraintGraph() {
	m := core.MustMatrix(2, 3, 3, []uint8{0, 0, 1, 0, 1, 2})
	cg, err := core.BuildConstraintGraph(m)
	if err != nil {
		panic(err)
	}
	fmt.Println("order:", cg.Order(), "<= bound:", cg.OrderBound())
	fmt.Println("Lemma 2 verified:", cg.VerifyLemma2() == nil)
	forced, _ := cg.ForcedMatrix(1.99)
	fmt.Println("forced matrix equals M:", forced.Equal(m))
	// Output:
	// order: 10 <= bound: 11
	// Lemma 2 verified: true
	// forced matrix equals M: true
}

// Lemma 1: the counting bound on the number of equivalence classes.
func ExampleLemma1Bound() {
	num, den, bound := core.Lemma1Bound(3, 2, 3)
	fmt.Printf("d^pq = %v, p!q!(d!)^p = %v, floor = %v, exact = %d\n",
		num, den, bound, core.Count(3, 2, 3))
	// Output:
	// d^pq = 729, p!q!(d!)^p = 432, floor = 1, exact = 7
}

// Figure 1: every pair of Petersen vertices has a forced first arc under
// shortest-path routing, so any A, B of size 5 yields a matrix of
// constraints.
func ExampleConstraintMatrixOf() {
	g := gen.Petersen()
	A := []graph.NodeID{0, 1, 2, 3, 4}
	B := []graph.NodeID{5, 6, 7, 8, 9}
	m, err := core.ConstraintMatrixOf(g, nil, A, B, 1.0)
	if err != nil {
		panic(err)
	}
	fmt.Println("shape:", m.P, "x", m.Q)
	fmt.Println("all pairs forced:", core.AllPairsForced(g, nil, 1.0))
	// Output:
	// shape: 5 x 5
	// all pairs forced: true
}

// Theorem 1: choose parameters, build the n-vertex instance, evaluate the
// per-router lower bound.
func ExampleChooseParams() {
	pr, err := core.ChooseParams(512, 0.5)
	if err != nil {
		panic(err)
	}
	ins, err := core.BuildInstance(pr, 1)
	if err != nil {
		panic(err)
	}
	b := core.LowerBound(pr)
	fmt.Println("order:", ins.CG.G.Order())
	fmt.Println("constrained routers:", pr.P)
	fmt.Println("per-router bound positive:", b.PerRouter > 0)
	fmt.Println("below the table upper bound:", b.PerRouter < b.UpperPerNode)
	// Output:
	// order: 512
	// constrained routers: 22
	// per-router bound positive: true
	// below the table upper bound: true
}
