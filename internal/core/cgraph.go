package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/shortest"
)

// ConstraintGraph is the output of Lemma 2's construction: a three-level
// graph realizing a given matrix as a matrix of constraints for every
// stretch factor below 2.
type ConstraintGraph struct {
	G *graph.Graph
	M *Matrix
	// A[i] is the i-th constrained vertex a_{i+1}; B[j] the j-th target
	// vertex b_{j+1}; C[i][k] the middle vertex c_{i+1,k+1} or -1 when row
	// i never uses value k.
	A []graph.NodeID
	B []graph.NodeID
	C [][]graph.NodeID
}

// BuildConstraintGraph constructs the generalized graph of constraints of
// M (Lemma 2): vertices A ∪ B ∪ C with
//
//	{a_i, c_ik} ∈ E  iff  ∃j: m_ij = k,
//	{b_j, c_ik} ∈ E  iff  m_ij = k,
//
// and the port of a_i toward c_ik labeled k. Vertices c_ik that would be
// isolated are never created, so the order is |A| + |B| + |C| ≤ p(d+1)+q.
// The graph is connected (every b_j touches a row-1 middle vertex, every
// middle vertex touches its a_i).
//
// Construction order matters for the port labels: at a_i, the arcs to
// c_i1, c_i2, ... are inserted in increasing k, and because row i uses the
// value set {1..k_i} exactly (first-occurrence form is NOT required, but
// the values present must be a prefix {1..k_i} for the ports to line up;
// NormalizeRows guarantees it), the arc toward c_ik lands on port k.
func BuildConstraintGraph(m *Matrix) (*ConstraintGraph, error) {
	if !m.IsRGSFormLoose() {
		return nil, fmt.Errorf("core: matrix rows must use value prefixes {1..k_i}; call NormalizeRows first")
	}
	p, q := m.P, m.Q
	g := graph.New(p + q)
	cg := &ConstraintGraph{
		G: g,
		M: m.Clone(),
		A: make([]graph.NodeID, p),
		B: make([]graph.NodeID, q),
		C: make([][]graph.NodeID, p),
	}
	for i := 0; i < p; i++ {
		cg.A[i] = graph.NodeID(i)
	}
	for j := 0; j < q; j++ {
		cg.B[j] = graph.NodeID(p + j)
	}
	// Create middle vertices row by row, arcs at a_i in increasing value
	// order so that port k at a_i reaches c_ik.
	for i := 0; i < p; i++ {
		ki := m.RowValues(i)
		cg.C[i] = make([]graph.NodeID, m.D)
		for k := range cg.C[i] {
			cg.C[i][k] = -1
		}
		for k := 0; k < ki; k++ {
			c := g.AddNode()
			cg.C[i][k] = c
			pu, _ := g.AddEdge(cg.A[i], c)
			if int(pu) != k+1 {
				return nil, fmt.Errorf("core: internal port misalignment at a_%d value %d: got %d", i+1, k+1, pu)
			}
		}
		for j := 0; j < q; j++ {
			k := int(m.At(i, j))
			g.AddEdge(cg.B[j], cg.C[i][k])
		}
	}
	return cg, nil
}

// IsRGSFormLoose reports whether each row's value set is exactly
// {0..k_i-1} (a prefix), without requiring first-occurrence ORDER. This
// is Definition 1's condition on the entries; BuildConstraintGraph needs
// it so that ports align with values.
func (m *Matrix) IsRGSFormLoose() bool {
	for i := 0; i < m.P; i++ {
		var seen [256]bool
		maxv := -1
		for j := 0; j < m.Q; j++ {
			v := int(m.At(i, j))
			seen[v] = true
			if v > maxv {
				maxv = v
			}
		}
		for v := 0; v <= maxv; v++ {
			if !seen[v] {
				return false
			}
		}
	}
	return true
}

// Order returns the number of vertices of the built graph.
func (cg *ConstraintGraph) Order() int { return cg.G.Order() }

// OrderBound returns Lemma 2's bound p(d+1) + q on the order.
func (cg *ConstraintGraph) OrderBound() int { return cg.M.P*(cg.M.D+1) + cg.M.Q }

// VerifyLemma2 checks the structural claims of Lemma 2 exhaustively:
//
//  1. the graph is connected, simple and of order ≤ p(d+1)+q;
//  2. for every (i, j) there is exactly one a_i→b_j path of length 2 and
//     it starts with port m_ij at a_i;
//  3. every other a_i→b_j path has length ≥ 4, i.e. for every stretch
//     s < 2 the port m_ij is forced (checked via ForcedPort, the exact
//     Definition 1 test).
func (cg *ConstraintGraph) VerifyLemma2() error {
	g := cg.G
	if err := g.Validate(); err != nil {
		return fmt.Errorf("core: invalid graph: %w", err)
	}
	if !g.Connected() {
		return fmt.Errorf("core: constraint graph disconnected")
	}
	if g.Order() > cg.OrderBound() {
		return fmt.Errorf("core: order %d exceeds Lemma 2 bound %d", g.Order(), cg.OrderBound())
	}
	apsp := shortest.NewAPSP(g)
	for i := 0; i < cg.M.P; i++ {
		for j := 0; j < cg.M.Q; j++ {
			a, b := cg.A[i], cg.B[j]
			want := graph.Port(cg.M.At(i, j) + 1)
			if d := apsp.Dist(a, b); d != 2 {
				return fmt.Errorf("core: d(a_%d, b_%d) = %d, want 2", i+1, j+1, d)
			}
			if c := shortest.CountShortestPaths(g, apsp, a, b, 10); c != 1 {
				return fmt.Errorf("core: %d shortest a_%d→b_%d paths, want 1", c, i+1, j+1)
			}
			// Exact forced-port test at stretch just below 2: budget 3.
			arcs := shortest.FeasibleFirstArcs(g, apsp, a, b, 3)
			if len(arcs) != 1 || arcs[0] != want {
				return fmt.Errorf("core: a_%d→b_%d: feasible first arcs %v, want exactly port %d",
					i+1, j+1, arcs, want)
			}
		}
	}
	return nil
}

// PadToOrder attaches a pendant path to a middle vertex (never a
// constrained or target vertex) until the graph reaches order n, as in
// the proof of Theorem 1. It fails if the graph is already larger than n.
func (cg *ConstraintGraph) PadToOrder(n int) error {
	cur := cg.G.Order()
	if cur > n {
		return fmt.Errorf("core: order %d already exceeds requested %d", cur, n)
	}
	if cur == n {
		return nil
	}
	// First middle vertex of row 1 always exists (q >= 1 forces k_1 >= 1).
	anchor := cg.C[0][0]
	if anchor < 0 {
		return fmt.Errorf("core: no middle vertex to anchor the padding path")
	}
	prev := anchor
	for cg.G.Order() < n {
		v := cg.G.AddNode()
		cg.G.AddEdge(prev, v)
		prev = v
	}
	return nil
}

// ForcedMatrix recomputes, from the graph alone, the matrix forced on the
// constrained vertices at the given stretch budget: entry (i, j) is the
// unique feasible first arc of a_i→b_j, or an error if any pair is not
// forced. For a freshly built (possibly padded) constraint graph at any
// s < 2 this returns exactly M — the executable content of Definition 1.
func (cg *ConstraintGraph) ForcedMatrix(s float64) (*Matrix, error) {
	apsp := shortest.NewAPSP(cg.G)
	cells := make([]uint8, 0, cg.M.P*cg.M.Q)
	for i := 0; i < cg.M.P; i++ {
		for j := 0; j < cg.M.Q; j++ {
			port, ok := shortest.ForcedPort(cg.G, apsp, cg.A[i], cg.B[j], s)
			if !ok {
				return nil, fmt.Errorf("core: pair a_%d→b_%d not forced at stretch %g", i+1, j+1, s)
			}
			cells = append(cells, uint8(port-1))
		}
	}
	return NewMatrix(cg.M.P, cg.M.Q, cg.M.D, cells)
}
