package core

import (
	"fmt"
	"math"

	"repro/internal/combinat"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/xrand"
)

// Params holds the instance parameters of Theorem 1's proof: an n-vertex
// graph of constraints with p = ⌊n^ε⌋ constrained vertices, q = Θ(n)
// target vertices and per-row alphabet d = Θ(n^(1-ε)), chosen so that
// p(d+1) + q ≤ n (the remainder is the pendant padding path).
type Params struct {
	N   int
	Eps float64
	P   int
	Q   int
	D   int
}

// ChooseParams reproduces the parameter choice in the proof of Theorem 1.
// q takes half the vertices, the constrained stars p(d+1) take the rest
// (minus at least one padding vertex so the construction is never tight).
func ChooseParams(n int, eps float64) (Params, error) {
	if eps <= 0 || eps >= 1 {
		return Params{}, fmt.Errorf("core: eps must lie strictly between 0 and 1")
	}
	if n < 16 {
		return Params{}, fmt.Errorf("core: n=%d too small for a meaningful instance", n)
	}
	p := int(math.Floor(math.Pow(float64(n), eps)))
	if p < 1 {
		p = 1
	}
	// q = Θ(n): start at n/2 and halve (down to n/8) when n is too small
	// for the alphabet to fit next to p stars — the constant in front of
	// q does not affect the asymptotics of the bound.
	for _, div := range []int{2, 4, 8} {
		q := n / div
		d := (n-q)/p - 1
		if d > q {
			d = q // rows cannot use more than q distinct values
		}
		if d < 2 {
			continue
		}
		if p*(d+1)+q > n {
			return Params{}, fmt.Errorf("core: internal parameter overflow: p(d+1)+q = %d > n = %d", p*(d+1)+q, n)
		}
		return Params{N: n, Eps: eps, P: p, Q: q, D: d}, nil
	}
	return Params{}, fmt.Errorf("core: n=%d eps=%g leaves no room for an alphabet d >= 2; increase n or decrease eps", n, eps)
}

// RandomMatrix draws a uniform p×q matrix over {0..d-1} and normalizes
// its rows. A uniform matrix is incompressible with overwhelming
// probability, so it plays the role of the worst-case M whose class needs
// log2|dMpq| bits in the counting argument.
func RandomMatrix(p, q, d int, r *xrand.Rand) *Matrix {
	cells := make([]uint8, p*q)
	for i := range cells {
		cells[i] = uint8(r.Intn(d))
	}
	m := MustMatrix(p, q, d, cells)
	m.NormalizeRows()
	return m
}

// Instance is a fully built Theorem 1 instance: the padded n-vertex graph
// of constraints of a (random) matrix, plus the bound bookkeeping.
type Instance struct {
	Params Params
	M      *Matrix
	CG     *ConstraintGraph
}

// BuildInstance constructs the n-vertex network G_n of Theorem 1 for the
// given parameters and seed.
func BuildInstance(pr Params, seed uint64) (*Instance, error) {
	r := xrand.New(seed)
	m := RandomMatrix(pr.P, pr.Q, pr.D, r)
	cg, err := BuildConstraintGraph(m)
	if err != nil {
		return nil, err
	}
	if err := cg.PadToOrder(pr.N); err != nil {
		return nil, err
	}
	return &Instance{Params: pr, M: m, CG: cg}, nil
}

// Bound collects the terms of the Theorem 1 lower bound
//
//	Σ_{a∈A} MEM(G,R,a) ≥ log2|dMpq| − MB − MC − O(log n)
//
// with log2|dMpq| replaced by Lemma 1's bound, MB = log2 C(n,q) + O(log
// n) (the list of target labels) and MC = O(log n) (the canonicalization
// program). The O(log n) slop terms are charged explicitly as
// OverheadLogTerms * log2 n.
type Bound struct {
	Log2Classes  float64 // Lemma 1: pq·log2 d − log2 p! − log2 q! − p·log2 d!
	MB           float64 // log2 C(n, q) + OverheadLogTerms·log2 n
	MC           float64 // OverheadLogTerms·log2 n
	TotalBits    float64 // Log2Classes − MB − MC (clamped at 0)
	PerRouter    float64 // TotalBits / p
	UpperPerNode float64 // routing-table cost at a constrained vertex: (n-1)·ceil(log2 d)
}

// OverheadLogTerms is the number of log2 n units charged for each O(log n)
// overhead in the proof (lengths, the integers p, q, d, n, the decoder
// dispatch). Eight machine words is generous; the asymptotics do not
// depend on it.
const OverheadLogTerms = 8

// LowerBound evaluates the bound for the given parameters.
func LowerBound(pr Params) Bound {
	logn := math.Log2(float64(pr.N))
	b := Bound{
		Log2Classes: Log2Lemma1Bound(pr.D, pr.P, pr.Q),
		MB:          combinat.Log2Binomial(pr.N, pr.Q) + OverheadLogTerms*logn,
		MC:          OverheadLogTerms * logn,
	}
	b.TotalBits = b.Log2Classes - b.MB - b.MC
	if b.TotalBits < 0 {
		b.TotalBits = 0
	}
	b.PerRouter = b.TotalBits / float64(pr.P)
	w := math.Ceil(math.Log2(float64(pr.D)))
	b.UpperPerNode = float64(pr.N-1) * w
	return b
}

// Rebuild reconstructs the matrix of constraints from a routing function,
// implementing the decoding step of the Kolmogorov argument ("to rebuild
// M it is sufficient to test all routers of the vertices in A on all the
// labels of the target vertices"): entry (i,j) is the port P(a_i,
// I(a_i, b_j)) that R uses to leave a_i toward b_j. If R has stretch < 2
// on a graph of constraints, the result equals M entry for entry; its
// canonical form identifies the class that the counting bound charges.
func Rebuild(r routing.Function, A, B []graph.NodeID, d int) (*Matrix, error) {
	p, q := len(A), len(B)
	cells := make([]uint8, 0, p*q)
	for _, a := range A {
		for _, b := range B {
			h := r.Init(a, b)
			port := r.Port(a, h)
			if port < 1 || int(port) > d {
				return nil, fmt.Errorf("core: router %d answers port %d for target %d (alphabet %d)", a, port, b, d)
			}
			cells = append(cells, uint8(port-1))
		}
	}
	return NewMatrix(p, q, d, cells)
}

// VerifyRebuild checks the end-to-end incompressibility pipeline for one
// instance and one routing function of stretch < 2: the rebuilt matrix
// must match the instance's matrix exactly, and its canonical form must
// match the canonical form of M. Returns the rebuilt matrix.
func (ins *Instance) VerifyRebuild(r routing.Function) (*Matrix, error) {
	got, err := Rebuild(r, ins.CG.A, ins.CG.B, ins.Params.D)
	if err != nil {
		return nil, err
	}
	if !got.Equal(ins.M) {
		return got, fmt.Errorf("core: rebuilt matrix differs from instance matrix")
	}
	return got, nil
}
