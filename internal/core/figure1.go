package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/shortest"
)

// ConstraintMatrixOf computes the matrix of constraints that the vertex
// sets A and B induce on an arbitrary graph g at stretch s, following
// Definition 1 directly: entry (i, j) is the unique first arc compatible
// with every stretch-s route a_i→b_j. It fails if some pair admits more
// than one first arc (then (A, B) does not certify a matrix of
// constraints at this stretch).
//
// This is the generalization behind Figure 1 of the paper, which exhibits
// such a matrix for shortest-path routing (s = 1) on the Petersen graph.
func ConstraintMatrixOf(g *graph.Graph, apsp *shortest.APSP, A, B []graph.NodeID, s float64) (*Matrix, error) {
	if apsp == nil {
		apsp = shortest.NewAPSP(g)
	}
	d := 0
	for _, a := range A {
		if deg := g.Degree(a); deg > d {
			d = deg
		}
	}
	cells := make([]uint8, 0, len(A)*len(B))
	for _, a := range A {
		for _, b := range B {
			if a == b {
				return nil, fmt.Errorf("core: constrained vertex %d is also a target", a)
			}
			port, ok := shortest.ForcedPort(g, apsp, a, b, s)
			if !ok {
				return nil, fmt.Errorf("core: pair %d→%d admits several stretch-%g first arcs", a, b, s)
			}
			cells = append(cells, uint8(port-1))
		}
	}
	return NewMatrix(len(A), len(B), d, cells)
}

// AllPairsForced reports whether EVERY ordered pair of distinct vertices
// of g has a unique stretch-s first arc. On the Petersen graph this holds
// at s = 1 because the graph is strongly regular (10,3,0,1): adjacent
// vertices share no common neighbor and non-adjacent ones share exactly
// one, so shortest paths are unique.
func AllPairsForced(g *graph.Graph, apsp *shortest.APSP, s float64) bool {
	if apsp == nil {
		apsp = shortest.NewAPSP(g)
	}
	n := g.Order()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			if _, ok := shortest.ForcedPort(g, apsp, graph.NodeID(u), graph.NodeID(v), s); !ok {
				return false
			}
		}
	}
	return true
}

// UniqueShortestPaths reports whether every pair of distinct vertices is
// joined by exactly one shortest path — a sufficient condition for
// AllPairsForced at s = 1 (and slightly stronger: forcedness only needs a
// unique FIRST arc).
func UniqueShortestPaths(g *graph.Graph, apsp *shortest.APSP) bool {
	if apsp == nil {
		apsp = shortest.NewAPSP(g)
	}
	n := g.Order()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			if shortest.CountShortestPaths(g, apsp, graph.NodeID(u), graph.NodeID(v), 4) != 1 {
				return false
			}
		}
	}
	return true
}
