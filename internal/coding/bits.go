// Package coding implements the fixed, self-delimiting coding strategy
// under which the repository measures memory requirements.
//
// The paper defines MEM(G,R,x) as the Kolmogorov complexity of the local
// computation of R at x "for a fixed coding strategy". Kolmogorov
// complexity is uncomputable, so experiments need a concrete stand-in that
// is (a) fixed in advance, (b) self-delimiting, and (c) reasonably tight
// on the structures that appear in routing tables. This package is that
// strategy: a bit-granular writer/reader plus a toolbox of classical codes
// — unary, Elias gamma/delta, Golomb–Rice, fixed width, permutation
// (Lehmer/factoradic) codes, combination ranking and restricted-growth
// strings. Measured sizes are honest upper bounds on Kolmogorov complexity
// up to an additive constant (the decoder program).
package coding

import "fmt"

// BitWriter accumulates bits most-significant-first into a byte slice.
type BitWriter struct {
	buf  []byte
	nbit int // total bits written
}

// NewBitWriter returns an empty writer.
func NewBitWriter() *BitWriter { return &BitWriter{} }

// Reset rewinds the writer to empty while keeping its buffer capacity,
// so pooled writers (netserve's per-connection scratch) stop allocating
// once warm. The slice returned by an earlier Bytes() is overwritten by
// subsequent writes — callers must copy or consume it before resetting.
func (w *BitWriter) Reset() {
	w.buf = w.buf[:0]
	w.nbit = 0
}

// Len returns the number of bits written so far.
func (w *BitWriter) Len() int { return w.nbit }

// Bytes returns the written bits padded with zeros to a byte boundary.
func (w *BitWriter) Bytes() []byte { return w.buf }

// WriteBit appends a single bit (any non-zero b writes 1).
func (w *BitWriter) WriteBit(b uint) {
	if w.nbit%8 == 0 {
		w.buf = append(w.buf, 0)
	}
	if b != 0 {
		w.buf[w.nbit/8] |= 1 << (7 - uint(w.nbit%8))
	}
	w.nbit++
}

// WriteBits appends the width lowest bits of v, most significant first.
// width may be 0 (writes nothing) up to 64.
func (w *BitWriter) WriteBits(v uint64, width int) {
	if width < 0 || width > 64 {
		panic("coding: width out of range")
	}
	for i := width - 1; i >= 0; i-- {
		w.WriteBit(uint((v >> uint(i)) & 1))
	}
}

// BitReader consumes bits most-significant-first from a byte slice.
type BitReader struct {
	buf  []byte
	pos  int // next bit index
	nbit int // total readable bits
}

// NewBitReader reads from buf, exposing nbit bits (pass len(buf)*8 to read
// everything).
func NewBitReader(buf []byte, nbit int) *BitReader {
	if nbit > len(buf)*8 {
		panic("coding: nbit exceeds buffer")
	}
	return &BitReader{buf: buf, nbit: nbit}
}

// NewBitReaderAt reads from buf like NewBitReader but starts at bit
// offset off — the random-access entry the mapped scheme container uses
// to decode one router's payload span without scanning everything
// before it. off must lie inside [0, nbit].
func NewBitReaderAt(buf []byte, off, nbit int) *BitReader {
	if nbit > len(buf)*8 {
		panic("coding: nbit exceeds buffer")
	}
	if off < 0 || off > nbit {
		panic("coding: start offset outside buffer")
	}
	return &BitReader{buf: buf, pos: off, nbit: nbit}
}

// Reset repoints the reader at buf (exposing nbit bits from the start),
// reusing the struct — the reader-side twin of BitWriter.Reset for
// pooled decode scratch.
func (r *BitReader) Reset(buf []byte, nbit int) {
	if nbit > len(buf)*8 {
		panic("coding: nbit exceeds buffer")
	}
	r.buf, r.pos, r.nbit = buf, 0, nbit
}

// Pos returns the number of bits consumed so far.
func (r *BitReader) Pos() int { return r.pos }

// Remaining returns the number of unread bits.
func (r *BitReader) Remaining() int { return r.nbit - r.pos }

// ReadBit consumes and returns one bit.
func (r *BitReader) ReadBit() (uint, error) {
	if r.pos >= r.nbit {
		return 0, fmt.Errorf("coding: read past end at bit %d", r.pos)
	}
	b := (r.buf[r.pos/8] >> (7 - uint(r.pos%8))) & 1
	r.pos++
	return uint(b), nil
}

// ReadBits consumes width bits and returns them as the low bits of a
// uint64, most significant first.
func (r *BitReader) ReadBits(width int) (uint64, error) {
	if width < 0 || width > 64 {
		return 0, fmt.Errorf("coding: read width %d out of range [0,64]", width)
	}
	var v uint64
	for i := 0; i < width; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// BitsFor returns the minimum width in bits needed to store values in
// [0, n), i.e. ceil(log2 n), with BitsFor(0) = BitsFor(1) = 0.
func BitsFor(n uint64) int {
	if n <= 1 {
		return 0
	}
	w := 0
	for v := n - 1; v > 0; v >>= 1 {
		w++
	}
	return w
}
