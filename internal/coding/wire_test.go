package coding

import (
	"strings"
	"testing"
)

func TestUvarintRoundTrip(t *testing.T) {
	vals := []uint64{0, 1, 127, 128, 129, 16383, 16384, 1 << 20, 1<<32 - 1, 1 << 62, ^uint64(0)}
	w := NewBitWriter()
	for _, v := range vals {
		w.WriteUvarint(v)
	}
	r := NewBitReader(w.Bytes(), w.Len())
	for _, v := range vals {
		got, err := r.ReadUvarint()
		if err != nil {
			t.Fatalf("read %d: %v", v, err)
		}
		if got != v {
			t.Fatalf("round trip %d -> %d", v, got)
		}
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d bits left over", r.Remaining())
	}
}

func TestUvarintRejectsOverlong(t *testing.T) {
	// Eleven continuation groups can never be a valid 64-bit varint.
	w := NewBitWriter()
	for i := 0; i < 11; i++ {
		w.WriteBits(0xff, 8)
	}
	r := NewBitReader(w.Bytes(), w.Len())
	if _, err := r.ReadUvarint(); err == nil {
		t.Fatal("overlong uvarint accepted")
	}
	// Ten groups whose top group overflows bit 63.
	w = NewBitWriter()
	for i := 0; i < 9; i++ {
		w.WriteBits(0x80, 8)
	}
	w.WriteBits(0x02, 8)
	r = NewBitReader(w.Bytes(), w.Len())
	if _, err := r.ReadUvarint(); err == nil || !strings.Contains(err.Error(), "overflows") {
		t.Fatalf("overflowing uvarint: got err %v", err)
	}
}

func TestUvarintRejectsNonCanonical(t *testing.T) {
	// 0x80 0x00 spells 0 in two groups; only the one-byte 0x00 is
	// canonical, so acceptance would break decode-accepted ==
	// re-encodes-byte-identically for blobs.
	w := NewBitWriter()
	w.WriteBits(0x80, 8)
	w.WriteBits(0x00, 8)
	r := NewBitReader(w.Bytes(), w.Len())
	if _, err := r.ReadUvarint(); err == nil || !strings.Contains(err.Error(), "non-canonical") {
		t.Fatalf("overlong zero group: got err %v", err)
	}
}

func TestWireHeaderRoundTrip(t *testing.T) {
	w := NewBitWriter()
	w.WriteWireHeader(4, 12345)
	r := NewBitReader(w.Bytes(), w.Len())
	h, err := r.ReadWireHeader()
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != WireVersion || h.Kind != 4 || h.Order != 12345 {
		t.Fatalf("header %+v", h)
	}
}

func TestWireHeaderRejects(t *testing.T) {
	// Bad magic.
	w := NewBitWriter()
	w.WriteBits(0xdeadbeef, 32)
	w.WriteUvarint(WireVersion)
	r := NewBitReader(w.Bytes(), w.Len())
	if _, err := r.ReadWireHeader(); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: got err %v", err)
	}
	// Version skew.
	w = NewBitWriter()
	w.WriteBits(WireMagic, 32)
	w.WriteUvarint(WireVersion + 1)
	w.WriteUvarint(1)
	w.WriteUvarint(8)
	r = NewBitReader(w.Bytes(), w.Len())
	if _, err := r.ReadWireHeader(); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version skew: got err %v", err)
	}
	// Absurd order.
	w = NewBitWriter()
	w.WriteBits(WireMagic, 32)
	w.WriteUvarint(WireVersion)
	w.WriteUvarint(1)
	w.WriteUvarint(MaxWireOrder + 1)
	r = NewBitReader(w.Bytes(), w.Len())
	if _, err := r.ReadWireHeader(); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized order: got err %v", err)
	}
	// Truncation at every prefix of a valid header.
	w = NewBitWriter()
	w.WriteWireHeader(3, 99)
	for nbits := 0; nbits < w.Len(); nbits += 8 {
		r := NewBitReader(w.Bytes(), nbits)
		if _, err := r.ReadWireHeader(); err == nil {
			t.Fatalf("truncated header (%d bits) accepted", nbits)
		}
	}
}
