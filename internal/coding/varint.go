package coding

import "fmt"

// WriteUnary appends the unary code of v >= 0: v ones then a zero. Used
// as the prefix of gamma codes and for tiny counters.
func (w *BitWriter) WriteUnary(v uint64) {
	for i := uint64(0); i < v; i++ {
		w.WriteBit(1)
	}
	w.WriteBit(0)
}

// ReadUnary consumes a unary code.
func (r *BitReader) ReadUnary() (uint64, error) {
	var v uint64
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 0 {
			return v, nil
		}
		v++
	}
}

// WriteGamma appends the Elias gamma code of v >= 1: unary length prefix
// followed by the remaining bits. Gamma codes v in 2*floor(log2 v)+1 bits.
func (w *BitWriter) WriteGamma(v uint64) {
	if v == 0 {
		panic("coding: gamma undefined for 0")
	}
	nbits := 0
	for t := v; t > 1; t >>= 1 {
		nbits++
	}
	w.WriteUnary(uint64(nbits))
	w.WriteBits(v&((1<<uint(nbits))-1), nbits)
}

// ReadGamma consumes an Elias gamma code.
func (r *BitReader) ReadGamma() (uint64, error) {
	nbits, err := r.ReadUnary()
	if err != nil {
		return 0, err
	}
	if nbits > 63 {
		return 0, fmt.Errorf("coding: gamma length %d too large", nbits)
	}
	rest, err := r.ReadBits(int(nbits))
	if err != nil {
		return 0, err
	}
	return 1<<nbits | rest, nil
}

// WriteGamma0 appends gamma(v+1), extending gamma to v >= 0.
func (w *BitWriter) WriteGamma0(v uint64) { w.WriteGamma(v + 1) }

// ReadGamma0 consumes a gamma0 code.
func (r *BitReader) ReadGamma0() (uint64, error) {
	v, err := r.ReadGamma()
	if err != nil {
		return 0, err
	}
	return v - 1, nil
}

// WriteDelta appends the Elias delta code of v >= 1: gamma-coded length
// followed by the value bits; asymptotically log2 v + 2 log2 log2 v bits.
func (w *BitWriter) WriteDelta(v uint64) {
	if v == 0 {
		panic("coding: delta undefined for 0")
	}
	nbits := 0
	for t := v; t > 1; t >>= 1 {
		nbits++
	}
	w.WriteGamma(uint64(nbits) + 1)
	w.WriteBits(v&((1<<uint(nbits))-1), nbits)
}

// ReadDelta consumes an Elias delta code.
func (r *BitReader) ReadDelta() (uint64, error) {
	l, err := r.ReadGamma()
	if err != nil {
		return 0, err
	}
	nbits := l - 1
	if nbits > 63 {
		return 0, fmt.Errorf("coding: delta length %d too large", nbits)
	}
	rest, err := r.ReadBits(int(nbits))
	if err != nil {
		return 0, err
	}
	return 1<<nbits | rest, nil
}

// WriteRice appends the Golomb–Rice code of v >= 0 with parameter k:
// quotient v>>k in unary, remainder in k fixed bits. Near-optimal for
// geometrically distributed gaps, which is what interval routing tables
// produce.
func (w *BitWriter) WriteRice(v uint64, k int) {
	if k < 0 || k > 63 {
		panic("coding: rice parameter out of range")
	}
	w.WriteUnary(v >> uint(k))
	w.WriteBits(v&((1<<uint(k))-1), k)
}

// ReadRice consumes a Rice code with parameter k.
func (r *BitReader) ReadRice(k int) (uint64, error) {
	if k < 0 || k > 63 {
		return 0, fmt.Errorf("coding: rice parameter %d out of range [0,63]", k)
	}
	q, err := r.ReadUnary()
	if err != nil {
		return 0, err
	}
	rem, err := r.ReadBits(k)
	if err != nil {
		return 0, err
	}
	return q<<uint(k) | rem, nil
}

// GammaLen returns the bit length of the gamma code of v >= 1 without
// writing it.
func GammaLen(v uint64) int {
	nbits := 0
	for t := v; t > 1; t >>= 1 {
		nbits++
	}
	return 2*nbits + 1
}
