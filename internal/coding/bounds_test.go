package coding

import (
	"strings"
	"testing"
)

// TestReadBitsWidthError pins the wiresafe fix: an out-of-range width
// is an error return, not a panic. Decode paths hand attacker-derived
// widths to ReadBits (e.g. BitsFor of a wire-read order), so a panic
// here is a remote crash.
func TestReadBitsWidthError(t *testing.T) {
	r := NewBitReader([]byte{0xff, 0xff}, 16)
	for _, width := range []int{-1, 65, 1 << 20} {
		if _, err := r.ReadBits(width); err == nil {
			t.Errorf("ReadBits(%d) = nil error, want out-of-range error", width)
		} else if !strings.Contains(err.Error(), "out of range") {
			t.Errorf("ReadBits(%d) error = %q, want out-of-range", width, err)
		}
	}
	// The reader must still be usable after a rejected width.
	v, err := r.ReadBits(8)
	if err != nil || v != 0xff {
		t.Fatalf("ReadBits(8) after rejected widths = %#x, %v; want 0xff, nil", v, err)
	}
}

// TestReadRiceParamError pins the same contract for the Rice parameter.
func TestReadRiceParamError(t *testing.T) {
	r := NewBitReader([]byte{0x00}, 8)
	for _, k := range []int{-1, 64, 1 << 20} {
		if _, err := r.ReadRice(k); err == nil {
			t.Errorf("ReadRice(%d) = nil error, want out-of-range error", k)
		} else if !strings.Contains(err.Error(), "out of range") {
			t.Errorf("ReadRice(%d) error = %q, want out-of-range", k, err)
		}
	}
	// 0x00 = unary 0 (immediate stop bit) then k=0 remainder: value 0.
	v, err := r.ReadRice(0)
	if err != nil || v != 0 {
		t.Fatalf("ReadRice(0) after rejected params = %d, %v; want 0, nil", v, err)
	}
}
