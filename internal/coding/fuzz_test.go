package coding

import (
	"testing"
)

// Fuzz targets exercise the decoders on adversarial bitstreams: every
// parse must either round-trip or fail with an error — never panic, never
// loop. `go test` runs the seed corpus; `go test -fuzz=Fuzz...` explores.

func FuzzReadGamma(f *testing.F) {
	f.Add([]byte{0xff, 0x00})
	f.Add([]byte{0x00})
	f.Add([]byte{0b10101010, 0b01010101})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewBitReader(data, len(data)*8)
		for r.Remaining() > 0 {
			if _, err := r.ReadGamma(); err != nil {
				return
			}
		}
	})
}

func FuzzReadDelta(f *testing.F) {
	f.Add([]byte{0xff, 0xff, 0x00})
	f.Add([]byte{0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewBitReader(data, len(data)*8)
		for r.Remaining() > 0 {
			if _, err := r.ReadDelta(); err != nil {
				return
			}
		}
	})
}

func FuzzReadRice(f *testing.F) {
	f.Add([]byte{0xf0, 0x0f}, 3)
	f.Add([]byte{0x00}, 0)
	f.Fuzz(func(t *testing.T, data []byte, k int) {
		if k < 0 || k > 16 {
			return
		}
		r := NewBitReader(data, len(data)*8)
		for r.Remaining() > 0 {
			if _, err := r.ReadRice(k); err != nil {
				return
			}
		}
	})
}

func FuzzReadRGS(f *testing.F) {
	f.Add([]byte{0b00011011}, 8, 3)
	f.Add([]byte{0xff, 0xff}, 5, 4)
	f.Fuzz(func(t *testing.T, data []byte, q, d int) {
		if q < 1 || q > 64 || d < 1 || d > 8 {
			return
		}
		r := NewBitReader(data, len(data)*8)
		rgs, err := r.ReadRGS(q, d)
		if err != nil {
			return
		}
		// Any successful parse must be a VALID restricted growth string.
		maxv := -1
		for _, v := range rgs {
			if int(v) > maxv+1 || int(v) >= d {
				t.Fatalf("decoder produced invalid RGS %v", rgs)
			}
			if int(v) > maxv {
				maxv = int(v)
			}
		}
		// And re-encoding must reproduce the consumed bits' semantics.
		w := NewBitWriter()
		w.WriteRGS(rgs, d)
		r2 := NewBitReader(w.Bytes(), w.Len())
		back, err := r2.ReadRGS(q, d)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		for i := range rgs {
			if back[i] != rgs[i] {
				t.Fatal("RGS re-encode round trip failed")
			}
		}
	})
}

func FuzzReadPermutation(f *testing.F) {
	f.Add([]byte{0x12, 0x34, 0x56}, 4)
	f.Fuzz(func(t *testing.T, data []byte, n int) {
		if n < 1 || n > 12 {
			return
		}
		r := NewBitReader(data, len(data)*8)
		perm, err := r.ReadPermutation(n)
		if err != nil {
			return
		}
		seen := make([]bool, n)
		for _, v := range perm {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("decoder produced non-permutation %v", perm)
			}
			seen[v] = true
		}
	})
}
