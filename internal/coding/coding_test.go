package coding

import (
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/combinat"
	"repro/internal/xrand"
)

func TestBitWriterReaderRoundTrip(t *testing.T) {
	w := NewBitWriter()
	w.WriteBit(1)
	w.WriteBits(0b1011, 4)
	w.WriteBit(0)
	w.WriteBits(0xdead, 16)
	r := NewBitReader(w.Bytes(), w.Len())
	if b, _ := r.ReadBit(); b != 1 {
		t.Fatal("bit 1")
	}
	if v, _ := r.ReadBits(4); v != 0b1011 {
		t.Fatal("nibble")
	}
	if b, _ := r.ReadBit(); b != 0 {
		t.Fatal("bit 0")
	}
	if v, _ := r.ReadBits(16); v != 0xdead {
		t.Fatal("word")
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining %d, want 0", r.Remaining())
	}
}

func TestReadPastEnd(t *testing.T) {
	r := NewBitReader([]byte{0xff}, 3)
	if _, err := r.ReadBits(3); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err == nil {
		t.Fatal("read past declared end succeeded")
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[uint64]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1 << 20: 20, 1<<20 + 1: 21}
	for n, want := range cases {
		if got := BitsFor(n); got != want {
			t.Fatalf("BitsFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestUnaryRoundTrip(t *testing.T) {
	w := NewBitWriter()
	vals := []uint64{0, 1, 2, 7, 13}
	for _, v := range vals {
		w.WriteUnary(v)
	}
	r := NewBitReader(w.Bytes(), w.Len())
	for _, v := range vals {
		got, err := r.ReadUnary()
		if err != nil || got != v {
			t.Fatalf("unary round trip: got %d (%v), want %d", got, err, v)
		}
	}
}

func TestGammaRoundTripProperty(t *testing.T) {
	check := func(raw []uint32) bool {
		w := NewBitWriter()
		vals := make([]uint64, 0, len(raw))
		for _, x := range raw {
			v := uint64(x) + 1 // gamma needs >= 1
			vals = append(vals, v)
			w.WriteGamma(v)
		}
		r := NewBitReader(w.Bytes(), w.Len())
		for _, v := range vals {
			got, err := r.ReadGamma()
			if err != nil || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGammaLenMatchesWriter(t *testing.T) {
	for _, v := range []uint64{1, 2, 3, 4, 7, 8, 100, 12345, 1 << 40} {
		w := NewBitWriter()
		w.WriteGamma(v)
		if w.Len() != GammaLen(v) {
			t.Fatalf("GammaLen(%d) = %d, writer used %d", v, GammaLen(v), w.Len())
		}
	}
}

func TestGamma0RoundTrip(t *testing.T) {
	w := NewBitWriter()
	for v := uint64(0); v < 50; v++ {
		w.WriteGamma0(v)
	}
	r := NewBitReader(w.Bytes(), w.Len())
	for v := uint64(0); v < 50; v++ {
		got, err := r.ReadGamma0()
		if err != nil || got != v {
			t.Fatalf("gamma0(%d) -> %d (%v)", v, got, err)
		}
	}
}

func TestDeltaRoundTripProperty(t *testing.T) {
	check := func(raw []uint32) bool {
		w := NewBitWriter()
		vals := make([]uint64, 0, len(raw))
		for _, x := range raw {
			v := uint64(x) + 1
			vals = append(vals, v)
			w.WriteDelta(v)
		}
		r := NewBitReader(w.Bytes(), w.Len())
		for _, v := range vals {
			got, err := r.ReadDelta()
			if err != nil || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRiceRoundTrip(t *testing.T) {
	for k := 0; k <= 8; k++ {
		w := NewBitWriter()
		vals := []uint64{0, 1, 5, 63, 64, 1000}
		for _, v := range vals {
			w.WriteRice(v, k)
		}
		r := NewBitReader(w.Bytes(), w.Len())
		for _, v := range vals {
			got, err := r.ReadRice(k)
			if err != nil || got != v {
				t.Fatalf("rice k=%d v=%d: got %d (%v)", k, v, got, err)
			}
		}
	}
}

func TestPermutationRankUnrank(t *testing.T) {
	check := func(seed uint64, nn uint8) bool {
		n := int(nn%8) + 1
		perm := xrand.New(seed).Perm(n)
		rank := RankPermutation(perm)
		back, err := UnrankPermutation(rank, n)
		if err != nil {
			return false
		}
		for i := range perm {
			if perm[i] != back[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermutationRankExtremes(t *testing.T) {
	id := []int{0, 1, 2, 3}
	if RankPermutation(id).Sign() != 0 {
		t.Fatal("identity should rank 0")
	}
	rev := []int{3, 2, 1, 0}
	want := new(big.Int).Sub(combinat.Factorial(4), big.NewInt(1))
	if RankPermutation(rev).Cmp(want) != 0 {
		t.Fatalf("reverse should rank n!-1, got %v", RankPermutation(rev))
	}
}

func TestPermutationRanksAreBijective(t *testing.T) {
	seen := make(map[string]bool)
	n := 5
	total := combinat.Factorial(n).Int64()
	for r := int64(0); r < total; r++ {
		p, err := UnrankPermutation(big.NewInt(r), n)
		if err != nil {
			t.Fatal(err)
		}
		k := ""
		for _, v := range p {
			k += string(rune('a' + v))
		}
		if seen[k] {
			t.Fatalf("rank %d collides", r)
		}
		seen[k] = true
		if RankPermutation(p).Int64() != r {
			t.Fatalf("rank(unrank(%d)) = %v", r, RankPermutation(p))
		}
	}
	if int64(len(seen)) != total {
		t.Fatal("not all permutations produced")
	}
}

func TestWriteReadPermutation(t *testing.T) {
	r := xrand.New(2)
	for n := 1; n <= 30; n += 3 {
		perm := r.Perm(n)
		w := NewBitWriter()
		w.WritePermutation(perm)
		if w.Len() != PermutationBits(n) {
			t.Fatalf("n=%d: wrote %d bits, PermutationBits says %d", n, w.Len(), PermutationBits(n))
		}
		rd := NewBitReader(w.Bytes(), w.Len())
		got, err := rd.ReadPermutation(n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range perm {
			if got[i] != perm[i] {
				t.Fatalf("n=%d: permutation round trip failed", n)
			}
		}
	}
}

func TestPermutationBitsGrowth(t *testing.T) {
	// ceil(log2 n!) must be within 1 bit of log2(n!) and Θ(n log n).
	for n := 2; n <= 64; n *= 2 {
		exact := combinat.Log2Factorial(n)
		got := float64(PermutationBits(n))
		if got < exact || got > exact+1 {
			t.Fatalf("PermutationBits(%d) = %v, log2 n! = %v", n, got, exact)
		}
	}
}

func TestCombinationRankUnrank(t *testing.T) {
	check := func(seed uint64, nn, kk uint8) bool {
		n := int(nn%20) + 1
		k := int(kk) % (n + 1)
		elems := xrand.New(seed).Sample(n, k)
		rank := RankCombination(elems, n)
		back, err := UnrankCombination(rank, n, k)
		if err != nil {
			return false
		}
		// back is sorted; compare as sets.
		seen := make(map[int]bool, k)
		for _, v := range elems {
			seen[v] = true
		}
		for _, v := range back {
			if !seen[v] {
				return false
			}
		}
		return len(back) == k
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCombinationBitsMatchesBinomial(t *testing.T) {
	b := CombinationBits(10, 4) // C(10,4) = 210, ceil(log2) = 8
	if b != 8 {
		t.Fatalf("CombinationBits(10,4) = %d, want 8", b)
	}
	if CombinationBits(5, 0) != 0 {
		t.Fatal("empty set should cost 0 bits")
	}
}

func TestWriteReadCombination(t *testing.T) {
	r := xrand.New(7)
	for trial := 0; trial < 50; trial++ {
		n := r.Intn(25) + 1
		k := r.Intn(n + 1)
		elems := r.Sample(n, k)
		w := NewBitWriter()
		w.WriteCombination(elems, n)
		rd := NewBitReader(w.Bytes(), w.Len())
		got, err := rd.ReadCombination(n, k)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[int]bool)
		for _, v := range elems {
			seen[v] = true
		}
		for _, v := range got {
			if !seen[v] {
				t.Fatalf("decoded stray element %d", v)
			}
		}
	}
}

func TestRGSRoundTrip(t *testing.T) {
	check := func(seed uint64, qq, dd uint8) bool {
		q := int(qq%30) + 1
		d := int(dd%6) + 1
		r := xrand.New(seed)
		// Generate a valid RGS.
		rgs := make([]uint8, q)
		maxv := -1
		for i := range rgs {
			limit := maxv + 1
			if limit > d-1 {
				limit = d - 1
			}
			rgs[i] = uint8(r.Intn(limit + 1))
			if int(rgs[i]) > maxv {
				maxv = int(rgs[i])
			}
		}
		w := NewBitWriter()
		w.WriteRGS(rgs, d)
		rd := NewBitReader(w.Bytes(), w.Len())
		got, err := rd.ReadRGS(q, d)
		if err != nil {
			return false
		}
		for i := range rgs {
			if got[i] != rgs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRGSBitsIsUpperBound(t *testing.T) {
	// Worst-case cost bound must dominate any actual encoding.
	r := xrand.New(4)
	for trial := 0; trial < 100; trial++ {
		q := r.Intn(20) + 1
		d := r.Intn(5) + 1
		rgs := make([]uint8, q)
		maxv := -1
		for i := range rgs {
			limit := maxv + 1
			if limit > d-1 {
				limit = d - 1
			}
			rgs[i] = uint8(r.Intn(limit + 1))
			if int(rgs[i]) > maxv {
				maxv = int(rgs[i])
			}
		}
		w := NewBitWriter()
		w.WriteRGS(rgs, d)
		if w.Len() > RGSBits(q, d) {
			t.Fatalf("actual RGS cost %d exceeds bound %d (q=%d d=%d)", w.Len(), RGSBits(q, d), q, d)
		}
	}
}

func TestWriteRGSRejectsInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid RGS accepted")
		}
	}()
	w := NewBitWriter()
	w.WriteRGS([]uint8{0, 2}, 3) // 2 > running max 0 + 1
}

func TestBitWriterReset(t *testing.T) {
	w := NewBitWriter()
	w.WriteBits(0xdeadbeef, 32)
	w.WriteBit(1)
	w.Reset()
	if w.Len() != 0 || len(w.Bytes()) != 0 {
		t.Fatalf("reset writer not empty: %d bits, %d bytes", w.Len(), len(w.Bytes()))
	}
	w.WriteBits(0xab, 8)
	if got := w.Bytes(); len(got) != 1 || got[0] != 0xab {
		t.Fatalf("post-reset write corrupted: % x", got)
	}
	// A reset must also clear stale padding bits left in the recycled
	// backing array, or a shorter second message would inherit them.
	w.Reset()
	w.WriteBit(0)
	if got := w.Bytes(); got[0] != 0 {
		t.Fatalf("stale bits survived reset: %08b", got[0])
	}
}

func TestNewBitReaderAt(t *testing.T) {
	w := NewBitWriter()
	w.WriteBits(0b101, 3)
	w.WriteGamma(9)
	w.WriteBits(0x5a, 8)
	buf, total := w.Bytes(), w.Len()
	// Find the bit offset of the last field by replaying the prefix.
	pre := NewBitWriter()
	pre.WriteBits(0b101, 3)
	pre.WriteGamma(9)
	r := NewBitReaderAt(buf, pre.Len(), total)
	got, err := r.ReadBits(8)
	if err != nil || got != 0x5a {
		t.Fatalf("ReadBits at offset %d = %#x, %v; want 0x5a", pre.Len(), got, err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d bits remain past the last field", r.Remaining())
	}
	if _, err := r.ReadBit(); err == nil {
		t.Fatal("read past nbit accepted")
	}
}

func TestNewBitReaderAtRejectsBadOffset(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("offset past nbit accepted")
		}
	}()
	NewBitReaderAt([]byte{0xff}, 9, 8)
}

func TestBitReaderReset(t *testing.T) {
	r := NewBitReader([]byte{0xf0}, 8)
	if v, _ := r.ReadBits(4); v != 0xf {
		t.Fatalf("first read = %#x", v)
	}
	r.Reset([]byte{0x0f}, 8)
	if r.Pos() != 0 || r.Remaining() != 8 {
		t.Fatalf("reset reader at pos %d with %d remaining", r.Pos(), r.Remaining())
	}
	if v, _ := r.ReadBits(8); v != 0x0f {
		t.Fatalf("post-reset read = %#x", v)
	}
}
