package coding

import (
	"fmt"
	"math/big"

	"repro/internal/combinat"
)

// RankPermutation returns the Lehmer (factoradic) rank of perm among all
// permutations of its length, as a big integer in [0, n!). The rank is an
// information-theoretically optimal code: ceil(log2 n!) bits suffice,
// which is the Θ(n log n) cost the paper's complete-graph adversary
// forces a router to pay.
func RankPermutation(perm []int) *big.Int {
	n := len(perm)
	seen := make([]bool, n)
	for _, v := range perm {
		if v < 0 || v >= n || seen[v] {
			panic("coding: not a permutation")
		}
		seen[v] = true
	}
	rank := big.NewInt(0)
	// Fenwick tree counting remaining smaller elements gives O(n log n).
	fen := newFenwick(n)
	for i := 0; i < n; i++ {
		fen.add(i, 1)
	}
	for i, v := range perm {
		smaller := fen.sum(v) // remaining elements < v
		f := combinat.Factorial(n - 1 - i)
		term := new(big.Int).Mul(big.NewInt(int64(smaller)), f)
		rank.Add(rank, term)
		fen.add(v, -1)
	}
	return rank
}

// UnrankPermutation inverts RankPermutation: it returns the permutation of
// [0, n) with the given Lehmer rank.
func UnrankPermutation(rank *big.Int, n int) ([]int, error) {
	if rank.Sign() < 0 || rank.Cmp(combinat.Factorial(n)) >= 0 {
		return nil, fmt.Errorf("coding: rank out of [0, %d!) range", n)
	}
	r := new(big.Int).Set(rank)
	perm := make([]int, n)
	avail := make([]int, n)
	for i := range avail {
		avail[i] = i
	}
	for i := 0; i < n; i++ {
		f := combinat.Factorial(n - 1 - i)
		idx := new(big.Int)
		idx.DivMod(r, f, r)
		j := int(idx.Int64())
		perm[i] = avail[j]
		avail = append(avail[:j], avail[j+1:]...)
	}
	return perm, nil
}

// WritePermutation appends an optimal-length code of perm: its Lehmer rank
// in exactly ceil(log2 n!) bits (n is NOT encoded; the decoder must know
// it — appropriate for routing tables where the degree is part of the
// fixed local structure).
func (w *BitWriter) WritePermutation(perm []int) {
	n := len(perm)
	width := combinat.Factorial(n).BitLen() - 1
	if combinat.Factorial(n).Cmp(combinat.Pow(2, width)) > 0 {
		width++ // ceil(log2 n!)
	}
	rank := RankPermutation(perm)
	writeBigBits(w, rank, width)
}

// ReadPermutation consumes a permutation of [0, n) written by
// WritePermutation.
func (r *BitReader) ReadPermutation(n int) ([]int, error) {
	f := combinat.Factorial(n)
	width := f.BitLen() - 1
	if f.Cmp(combinat.Pow(2, width)) > 0 {
		width++
	}
	rank, err := readBigBits(r, width)
	if err != nil {
		return nil, err
	}
	return UnrankPermutation(rank, n)
}

// PermutationBits returns ceil(log2 n!), the exact cost of
// WritePermutation for length n.
func PermutationBits(n int) int {
	f := combinat.Factorial(n)
	width := f.BitLen() - 1
	if f.Cmp(combinat.Pow(2, width)) > 0 {
		width++
	}
	return width
}

func writeBigBits(w *BitWriter, v *big.Int, width int) {
	for i := width - 1; i >= 0; i-- {
		w.WriteBit(uint(v.Bit(i)))
	}
}

func readBigBits(r *BitReader, width int) (*big.Int, error) {
	v := new(big.Int)
	for i := width - 1; i >= 0; i-- {
		b, err := r.ReadBit()
		if err != nil {
			return nil, err
		}
		if b == 1 {
			v.SetBit(v, i, 1)
		}
	}
	return v, nil
}

// fenwick is a small binary indexed tree over [0, n) used for O(n log n)
// permutation ranking.
type fenwick struct {
	tree []int
}

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int, n+1)} }

func (f *fenwick) add(i, delta int) {
	for i++; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// sum returns the prefix sum over [0, i).
func (f *fenwick) sum(i int) int {
	s := 0
	for ; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}
