package coding

import (
	"fmt"
	"math/big"
	"sort"

	"repro/internal/combinat"
)

// RankCombination returns the colexicographic rank of the k-subset elems
// of [0, n) among all C(n, k) subsets. elems need not be sorted. This is
// the MB term of the paper's Theorem 1 proof: the list of labels of the
// target set B is describable in log2 C(n, q) + O(log n) bits.
func RankCombination(elems []int, n int) *big.Int {
	s := append([]int(nil), elems...)
	sort.Ints(s)
	for i, v := range s {
		if v < 0 || v >= n || (i > 0 && s[i-1] == v) {
			panic("coding: not a subset of [0,n)")
		}
	}
	rank := big.NewInt(0)
	for i, v := range s {
		rank.Add(rank, combinat.Binomial(v, i+1))
	}
	return rank
}

// UnrankCombination inverts RankCombination, returning the sorted k-subset
// of [0, n) with the given colex rank.
func UnrankCombination(rank *big.Int, n, k int) ([]int, error) {
	if rank.Sign() < 0 || rank.Cmp(combinat.Binomial(n, k)) >= 0 {
		return nil, fmt.Errorf("coding: combination rank out of range")
	}
	r := new(big.Int).Set(rank)
	out := make([]int, k)
	for i := k; i >= 1; i-- {
		// Largest v with C(v, i) <= r.
		v := i - 1
		for combinat.Binomial(v+1, i).Cmp(r) <= 0 {
			v++
		}
		out[i-1] = v
		r.Sub(r, combinat.Binomial(v, i))
	}
	return out, nil
}

// CombinationBits returns ceil(log2 C(n, k)), the optimal subset code
// length.
func CombinationBits(n, k int) int {
	c := combinat.Binomial(n, k)
	if c.Sign() == 0 {
		return 0
	}
	width := c.BitLen() - 1
	if c.Cmp(combinat.Pow(2, width)) > 0 {
		width++
	}
	return width
}

// WriteCombination appends the colex rank of the subset in exactly
// CombinationBits(n, len(elems)) bits. n and k are not encoded.
func (w *BitWriter) WriteCombination(elems []int, n int) {
	width := CombinationBits(n, len(elems))
	writeBigBits(w, RankCombination(elems, n), width)
}

// ReadCombination consumes a subset written by WriteCombination.
func (r *BitReader) ReadCombination(n, k int) ([]int, error) {
	width := CombinationBits(n, k)
	rank, err := readBigBits(r, width)
	if err != nil {
		return nil, err
	}
	return UnrankCombination(rank, n, k)
}

// WriteRGS appends a restricted growth string (first-occurrence-normalized
// row of a matrix of constraints) using per-position minimal widths: the
// i-th symbol lies in [0, min(i, d-1)+1), so it costs BitsFor(min(i,d-1)+1)
// bits. Total ≈ q·log2 d bits for a length-q row over ≤ d values — the
// quantity pq·log2 d at the heart of Lemma 1.
func (w *BitWriter) WriteRGS(rgs []uint8, d int) {
	m := -1 // running max
	for i, v := range rgs {
		limit := m + 1
		if limit > d-1 {
			limit = d - 1
		}
		if int(v) > limit {
			panic(fmt.Sprintf("coding: invalid RGS symbol %d at %d (limit %d)", v, i, limit))
		}
		w.WriteBits(uint64(v), BitsFor(uint64(limit)+1))
		if int(v) > m {
			m = int(v)
		}
	}
}

// ReadRGS consumes a restricted growth string of length q over at most d
// values.
func (r *BitReader) ReadRGS(q, d int) ([]uint8, error) {
	rgs := make([]uint8, q)
	m := -1
	for i := 0; i < q; i++ {
		limit := m + 1
		if limit > d-1 {
			limit = d - 1
		}
		v, err := r.ReadBits(BitsFor(uint64(limit) + 1))
		if err != nil {
			return nil, err
		}
		if int(v) > limit {
			return nil, fmt.Errorf("coding: corrupt RGS symbol %d at %d", v, i)
		}
		rgs[i] = uint8(v)
		if int(v) > m {
			m = int(v)
		}
	}
	return rgs, nil
}

// RGSBits returns the exact bit cost WriteRGS pays for a length-q string
// over at most d values, assuming the running max grows as fast as
// possible (worst case; the actual cost can only be smaller or equal).
func RGSBits(q, d int) int {
	total := 0
	for i := 0; i < q; i++ {
		limit := i
		if limit > d-1 {
			limit = d - 1
		}
		total += BitsFor(uint64(limit) + 1)
	}
	return total
}
