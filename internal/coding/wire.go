package coding

import "fmt"

// This file defines the shared envelope of the scheme persistence wire
// format: a byte-oriented LEB128 varint on top of the bit-granular
// writer/reader, and the self-describing header every serialized scheme
// starts with. The per-scheme payloads live in the scheme packages
// (internal/scheme/*/codec.go) and the kind registry in
// internal/schemeio; this layer only fixes what every codec shares, so a
// decoder can always tell magic, format version, scheme kind and graph
// order apart before committing to any payload parse — and reject
// version skew or absurd sizes without allocating.

// WireMagic is the 32-bit magic number opening every serialized scheme
// ("RSW1": Routing Scheme Wire, format family 1).
const WireMagic uint64 = 0x52535731

// WireVersion is the current wire-format version. Decoders reject any
// other value: the format is versioned so a future layout change bumps
// this constant instead of silently misparsing old blobs.
const WireVersion = 1

// MaxWireOrder bounds the vertex count a wire header may declare,
// mirroring graph.MaxSerializedOrder: the header carries an
// attacker-controlled order, and every payload decoder sizes O(n)
// buffers from it, so the cap is what keeps "order = 10^18" from
// committing memory before the first real parse error.
const MaxWireOrder = 1 << 22

// WireHeader is the decoded self-describing prefix of a serialized
// scheme.
type WireHeader struct {
	Version uint64 // format version (== WireVersion after a successful read)
	Kind    uint64 // scheme kind, registered in internal/schemeio
	Order   int    // vertex count of the graph the scheme was built on
}

// WriteUvarint appends v in LEB128: 7-bit groups, least significant
// first, each prefixed (as bit 7) with a continuation flag. Groups are
// byte-shaped but the stream stays bit-granular, so varints compose
// freely with the fixed-width and gamma codes around them.
func (w *BitWriter) WriteUvarint(v uint64) {
	for v >= 0x80 {
		w.WriteBits(0x80|(v&0x7f), 8)
		v >>= 7
	}
	w.WriteBits(v, 8)
}

// ReadUvarint consumes a LEB128 varint. Overflowing encodings (more
// than ten groups, or ten groups past 64 bits) and non-canonical ones
// (a zero final group after a continuation — a longer spelling of a
// shorter value) are errors: acceptance implies the bytes are exactly
// what WriteUvarint emits, which is what keeps "decodes successfully"
// equivalent to "re-encodes byte-identically" for whole blobs.
func (r *BitReader) ReadUvarint() (uint64, error) {
	var v uint64
	for shift := 0; shift < 64; shift += 7 {
		g, err := r.ReadBits(8)
		if err != nil {
			return 0, err
		}
		if shift == 63 && g > 1 {
			return 0, fmt.Errorf("coding: uvarint overflows 64 bits")
		}
		v |= (g & 0x7f) << shift
		if g&0x80 == 0 {
			if g == 0 && shift > 0 {
				return 0, fmt.Errorf("coding: non-canonical uvarint (overlong encoding)")
			}
			return v, nil
		}
	}
	return 0, fmt.Errorf("coding: uvarint longer than 10 groups")
}

// WriteWireHeader appends the scheme wire header: 32 magic bits, then
// version, kind and graph order as varints.
func (w *BitWriter) WriteWireHeader(kind uint64, order int) {
	w.WriteBits(WireMagic, 32)
	w.WriteUvarint(WireVersion)
	w.WriteUvarint(kind)
	w.WriteUvarint(uint64(order))
}

// ReadWireHeader consumes and validates a scheme wire header. Bad magic,
// a version other than WireVersion (version skew must fail loudly, not
// misparse) and orders beyond MaxWireOrder are errors.
func (r *BitReader) ReadWireHeader() (WireHeader, error) {
	m, err := r.ReadBits(32)
	if err != nil {
		return WireHeader{}, fmt.Errorf("coding: wire header truncated: %w", err)
	}
	if m != WireMagic {
		return WireHeader{}, fmt.Errorf("coding: bad wire magic %#x (want %#x)", m, WireMagic)
	}
	var h WireHeader
	if h.Version, err = r.ReadUvarint(); err != nil {
		return WireHeader{}, fmt.Errorf("coding: wire version: %w", err)
	}
	if h.Version != WireVersion {
		return WireHeader{}, fmt.Errorf("coding: unsupported wire version %d (this decoder reads %d)", h.Version, WireVersion)
	}
	if h.Kind, err = r.ReadUvarint(); err != nil {
		return WireHeader{}, fmt.Errorf("coding: wire kind: %w", err)
	}
	order, err := r.ReadUvarint()
	if err != nil {
		return WireHeader{}, fmt.Errorf("coding: wire order: %w", err)
	}
	if order > MaxWireOrder {
		return WireHeader{}, fmt.Errorf("coding: wire order %d exceeds limit %d", order, MaxWireOrder)
	}
	h.Order = int(order)
	return h, nil
}
