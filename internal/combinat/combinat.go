// Package combinat supplies the exact and asymptotic combinatorial
// quantities used by the paper's counting arguments: factorials, binomial
// coefficients, Stirling partition numbers, their base-2 logarithms, and
// enumeration of set partitions as restricted growth strings.
//
// Lemma 1 of the paper bounds |dMpq| >= d^(pq) / (p!·q!·(d!)^p); Theorem 1
// consumes this as log2|dMpq| >= pq·log2 d − log2 p! − log2 q! − p·log2 d!,
// and the MB term of the proof is log2 C(n, q). All of those are computed
// here, exactly (math/big) for verification at small sizes and in floating
// point for the large-n sweeps.
package combinat

import (
	"math"
	"math/big"
)

// Factorial returns n! exactly.
func Factorial(n int) *big.Int {
	if n < 0 {
		panic("combinat: negative factorial")
	}
	return new(big.Int).MulRange(1, int64(max(n, 1)))
}

// Binomial returns C(n, k) exactly (0 when k < 0 or k > n).
func Binomial(n, k int) *big.Int {
	if k < 0 || k > n {
		return big.NewInt(0)
	}
	return new(big.Int).Binomial(int64(n), int64(k))
}

// Log2Factorial returns log2(n!) as a float64, exact to double precision
// via the log-gamma function.
func Log2Factorial(n int) float64 {
	if n < 0 {
		panic("combinat: negative factorial")
	}
	if n < 2 {
		return 0
	}
	lg, _ := math.Lgamma(float64(n) + 1)
	return lg / math.Ln2
}

// Log2Binomial returns log2 C(n, k) (−Inf when the coefficient is 0).
func Log2Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	return Log2Factorial(n) - Log2Factorial(k) - Log2Factorial(n-k)
}

// Log2Big returns log2 of a positive big integer as a float64 with
// ~53 bits of precision (bit length plus normalized mantissa).
func Log2Big(x *big.Int) float64 {
	if x.Sign() <= 0 {
		panic("combinat: Log2Big of non-positive value")
	}
	bits := x.BitLen()
	// Extract the top 53 bits as a float in [1, 2).
	shift := bits - 53
	if shift < 0 {
		shift = 0
	}
	top := new(big.Int).Rsh(x, uint(shift))
	f, _ := new(big.Float).SetInt(top).Float64()
	return math.Log2(f) + float64(shift)
}

// Pow returns base^exp exactly for exp >= 0.
func Pow(base, exp int) *big.Int {
	if exp < 0 {
		panic("combinat: negative exponent")
	}
	return new(big.Int).Exp(big.NewInt(int64(base)), big.NewInt(int64(exp)), nil)
}

// StirlingSecond returns the Stirling number of the second kind S(n, k):
// the number of partitions of an n-set into exactly k non-empty blocks.
func StirlingSecond(n, k int) *big.Int {
	if n < 0 || k < 0 {
		panic("combinat: negative Stirling arguments")
	}
	if k > n {
		return big.NewInt(0)
	}
	if n == 0 {
		return big.NewInt(1) // S(0,0) = 1
	}
	if k == 0 {
		return big.NewInt(0)
	}
	// Row-by-row DP: S(n,k) = k*S(n-1,k) + S(n-1,k-1).
	prev := make([]*big.Int, n+1)
	cur := make([]*big.Int, n+1)
	for i := range prev {
		prev[i] = big.NewInt(0)
		cur[i] = big.NewInt(0)
	}
	prev[0].SetInt64(1)
	for row := 1; row <= n; row++ {
		cur[0].SetInt64(0)
		for j := 1; j <= row && j <= k; j++ {
			cur[j].Mul(big.NewInt(int64(j)), prev[j])
			cur[j].Add(cur[j], prev[j-1])
		}
		for j := row + 1; j <= k; j++ {
			cur[j].SetInt64(0)
		}
		prev, cur = cur, prev
	}
	return new(big.Int).Set(prev[k])
}

// PartitionsUpTo returns Σ_{k=1..d} S(n, k): the number of partitions of
// an n-set into at most d blocks — the number of distinct rows (up to
// value relabeling) of a length-n matrix row over an alphabet of size d.
func PartitionsUpTo(n, d int) *big.Int {
	total := big.NewInt(0)
	for k := 1; k <= d && k <= n; k++ {
		total.Add(total, StirlingSecond(n, k))
	}
	if n == 0 {
		total.SetInt64(1)
	}
	return total
}

// EachRGS enumerates the restricted growth strings of length n with at
// most d distinct values: sequences r with r[0] = 0 and
// r[i] <= max(r[0..i-1]) + 1, values < d. Each RGS encodes one set
// partition of {0..n-1} into at most d blocks, with blocks numbered in
// first-occurrence order — exactly the canonical form of a matrix row
// under the paper's per-row entry permutation. fn receives a reused
// buffer; it must copy if it retains. Enumeration stops early if fn
// returns false.
func EachRGS(n, d int, fn func(rgs []uint8) bool) {
	if n == 0 || d <= 0 {
		return
	}
	if d > 255 {
		panic("combinat: RGS alphabet too large")
	}
	rgs := make([]uint8, n)
	maxes := make([]uint8, n) // maxes[i] = max(rgs[0..i])
	// Iterative odometer over valid strings.
	pos := n - 1
	for {
		// Emit current string.
		if !fn(rgs) {
			return
		}
		// Increment from the last position.
		pos = n - 1
		for pos > 0 {
			limit := maxes[pos-1] + 1 // may go one above the running max
			if int(limit) > d-1 {
				limit = uint8(d - 1)
			}
			if rgs[pos] < limit {
				rgs[pos]++
				break
			}
			rgs[pos] = 0
			pos--
		}
		if pos == 0 {
			return // rgs[0] must stay 0; overflow ends enumeration
		}
		// Recompute running maxima from pos onward (suffix was reset).
		for i := pos; i < n; i++ {
			m := maxes[i-1]
			if rgs[i] > m {
				m = rgs[i]
			}
			maxes[i] = m
		}
	}
}

// CountRGS returns the number of strings EachRGS(n, d) emits, i.e.
// PartitionsUpTo(n, d), but by direct DP on (position, current max); used
// to cross-check the enumerator in tests.
func CountRGS(n, d int) *big.Int {
	if n == 0 || d <= 0 {
		return big.NewInt(0)
	}
	// state: number of strings with running max = m after i symbols.
	counts := make([]*big.Int, d)
	for i := range counts {
		counts[i] = big.NewInt(0)
	}
	counts[0].SetInt64(1)
	for i := 1; i < n; i++ {
		next := make([]*big.Int, d)
		for m := range next {
			next[m] = big.NewInt(0)
		}
		for m := 0; m < d; m++ {
			if counts[m].Sign() == 0 {
				continue
			}
			// Reuse one of the m+1 existing values.
			tmp := new(big.Int).Mul(counts[m], big.NewInt(int64(m+1)))
			next[m].Add(next[m], tmp)
			// Introduce value m+1.
			if m+1 < d {
				next[m+1].Add(next[m+1], counts[m])
			}
		}
		counts = next
	}
	total := big.NewInt(0)
	for _, c := range counts {
		total.Add(total, c)
	}
	return total
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
