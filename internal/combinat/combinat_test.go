package combinat

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestFactorialSmall(t *testing.T) {
	want := []int64{1, 1, 2, 6, 24, 120, 720, 5040}
	for n, w := range want {
		if Factorial(n).Int64() != w {
			t.Fatalf("%d! = %v, want %d", n, Factorial(n), w)
		}
	}
}

func TestBinomialPascal(t *testing.T) {
	for n := 0; n <= 20; n++ {
		for k := 0; k <= n; k++ {
			lhs := Binomial(n+1, k+1)
			rhs := new(big.Int).Add(Binomial(n, k), Binomial(n, k+1))
			if lhs.Cmp(rhs) != 0 {
				t.Fatalf("Pascal identity fails at (%d,%d)", n, k)
			}
		}
	}
}

func TestBinomialEdges(t *testing.T) {
	if Binomial(5, -1).Sign() != 0 || Binomial(5, 6).Sign() != 0 {
		t.Fatal("out-of-range binomial should be 0")
	}
	if Binomial(0, 0).Int64() != 1 {
		t.Fatal("C(0,0) != 1")
	}
}

func TestLog2FactorialMatchesExact(t *testing.T) {
	for n := 0; n <= 300; n += 7 {
		exact := 0.0
		if n >= 2 {
			exact = Log2Big(Factorial(n))
		}
		approx := Log2Factorial(n)
		if math.Abs(exact-approx) > 1e-9*(1+exact) {
			t.Fatalf("log2 %d! : exact %v vs lgamma %v", n, exact, approx)
		}
	}
}

func TestLog2BinomialMatchesExact(t *testing.T) {
	for _, tc := range [][2]int{{10, 3}, {50, 25}, {100, 7}, {200, 199}} {
		exact := Log2Big(Binomial(tc[0], tc[1]))
		approx := Log2Binomial(tc[0], tc[1])
		if math.Abs(exact-approx) > 1e-9*(1+exact) {
			t.Fatalf("log2 C(%d,%d): exact %v vs approx %v", tc[0], tc[1], exact, approx)
		}
	}
}

func TestLog2BigPowersOfTwo(t *testing.T) {
	for k := 0; k <= 200; k += 13 {
		x := new(big.Int).Lsh(big.NewInt(1), uint(k))
		if got := Log2Big(x); math.Abs(got-float64(k)) > 1e-9 {
			t.Fatalf("log2 2^%d = %v", k, got)
		}
	}
}

func TestPow(t *testing.T) {
	if Pow(3, 4).Int64() != 81 {
		t.Fatal("3^4 != 81")
	}
	if Pow(7, 0).Int64() != 1 {
		t.Fatal("7^0 != 1")
	}
}

func TestStirlingKnownValues(t *testing.T) {
	// Rows of S(n,k) from the standard table.
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {1, 1, 1}, {3, 2, 3}, {4, 2, 7}, {5, 3, 25},
		{6, 3, 90}, {7, 4, 350}, {5, 5, 1}, {5, 0, 0}, {3, 4, 0},
	}
	for _, c := range cases {
		if got := StirlingSecond(c.n, c.k).Int64(); got != c.want {
			t.Fatalf("S(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestStirlingRowSumsAreBell(t *testing.T) {
	bell := []int64{1, 1, 2, 5, 15, 52, 203, 877, 4140}
	for n := 0; n < len(bell); n++ {
		if got := PartitionsUpTo(n, n).Int64(); n > 0 && got != bell[n] {
			t.Fatalf("Bell(%d) = %d, want %d", n, got, bell[n])
		}
	}
}

func TestPartitionsUpToTruncates(t *testing.T) {
	// Partitions of a 4-set into at most 2 blocks: S(4,1)+S(4,2) = 1+7.
	if got := PartitionsUpTo(4, 2).Int64(); got != 8 {
		t.Fatalf("PartitionsUpTo(4,2) = %d, want 8", got)
	}
}

func TestEachRGSCountMatchesDP(t *testing.T) {
	for n := 1; n <= 7; n++ {
		for d := 1; d <= 5; d++ {
			count := 0
			EachRGS(n, d, func(r []uint8) bool { count++; return true })
			if want := CountRGS(n, d).Int64(); int64(count) != want {
				t.Fatalf("EachRGS(%d,%d) emitted %d, DP says %d", n, d, count, want)
			}
		}
	}
}

func TestCountRGSMatchesStirling(t *testing.T) {
	for n := 1; n <= 8; n++ {
		for d := 1; d <= 8; d++ {
			if CountRGS(n, d).Cmp(PartitionsUpTo(n, d)) != 0 {
				t.Fatalf("CountRGS(%d,%d) != sum of Stirling numbers", n, d)
			}
		}
	}
}

func TestEachRGSValidity(t *testing.T) {
	EachRGS(6, 3, func(r []uint8) bool {
		maxv := -1
		for i, v := range r {
			if int(v) > maxv+1 || int(v) >= 3 {
				t.Fatalf("invalid RGS %v at position %d", r, i)
			}
			if int(v) > maxv {
				maxv = int(v)
			}
		}
		return true
	})
}

func TestEachRGSDistinct(t *testing.T) {
	seen := make(map[string]bool)
	EachRGS(5, 4, func(r []uint8) bool {
		k := string(r)
		if seen[k] {
			t.Fatalf("duplicate RGS %v", r)
		}
		seen[k] = true
		return true
	})
}

func TestEachRGSEarlyStop(t *testing.T) {
	count := 0
	EachRGS(6, 3, func(r []uint8) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop ignored: %d emissions", count)
	}
}

func TestLog2MonotoneProperty(t *testing.T) {
	check := func(a uint8) bool {
		n := int(a%100) + 2
		return Log2Factorial(n) > Log2Factorial(n-1)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
