// Package oracle implements a Thorup–Zwick-style approximate distance
// oracle: the space/stretch tradeoff mechanism behind the hierarchical
// routing schemes of the paper's Table 1 (Peleg–Upfal [13], Awerbuch–
// Peleg [2] trade a factor-s stretch for n^(1+O(1/s)) space; Thorup &
// Zwick later crystallized the construction this package follows).
//
// With k levels the oracle stores O(k·n^(1+1/k)) words in total —
// distributed as per-vertex "bunches" of expected size O(k·n^(1/k)) —
// and answers distance queries within a multiplicative stretch of 2k-1.
// The k = 2 instance is exactly the ball/landmark structure of
// internal/scheme/landmark; larger k continues the Table 1 curve: more
// stretch, less memory per vertex.
package oracle

import (
	"fmt"
	"math"

	"repro/internal/coding"
	"repro/internal/graph"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

// Oracle is a k-level approximate distance oracle over one graph.
type Oracle struct {
	k int
	n int
	// pivot[i][v] = p_i(v): the vertex of level-i set A_i nearest to v
	// (level 0 is V, so pivot[0][v] = v). pivotDist carries d(v, p_i(v)).
	pivot     [][]graph.NodeID
	pivotDist [][]int32
	// bunch[v] maps w -> d(v, w) for every w in v's bunch.
	bunch []map[graph.NodeID]int32
}

// Options configure construction.
type Options struct {
	// K >= 2 is the number of levels; stretch is at most 2K-1.
	K    int
	Seed uint64
}

// New builds the oracle. The construction uses exact BFS distances
// (unweighted graphs), so expected preprocessing is O(k·n·m / n^(1/k))
// in the worst case and the oracle sizes concentrate as in the analysis.
func New(g *graph.Graph, apsp *shortest.APSP, opt Options) (*Oracle, error) {
	if opt.K < 2 {
		return nil, fmt.Errorf("oracle: K must be >= 2, got %d", opt.K)
	}
	if apsp == nil {
		apsp = shortest.NewAPSP(g)
	}
	if !apsp.Connected() {
		return nil, graph.ErrNotConnected
	}
	n := g.Order()
	k := opt.K
	o := &Oracle{k: k, n: n}
	r := xrand.New(opt.Seed ^ 0x7a5c3)

	// Sample the level hierarchy A_0 = V ⊇ A_1 ⊇ ... ⊇ A_{k-1} ≠ ∅,
	// A_k = ∅, each level keeping a vertex with probability n^(-1/k).
	levels := make([][]bool, k)
	levels[0] = make([]bool, n)
	for v := range levels[0] {
		levels[0][v] = true
	}
	prob := math.Pow(float64(n), -1.0/float64(k))
	for i := 1; i < k; i++ {
		levels[i] = make([]bool, n)
		nonEmpty := false
		for v := 0; v < n; v++ {
			if levels[i-1][v] && r.Float64() < prob {
				levels[i][v] = true
				nonEmpty = true
			}
		}
		if !nonEmpty {
			// Resample failure: promote one random member of the previous
			// level so the hierarchy never collapses (standard fix).
			var cand []int
			for v := 0; v < n; v++ {
				if levels[i-1][v] {
					cand = append(cand, v)
				}
			}
			levels[i][cand[r.Intn(len(cand))]] = true
		}
	}

	// Pivots: nearest level-i vertex (ties to smallest id via scan order).
	o.pivot = make([][]graph.NodeID, k)
	o.pivotDist = make([][]int32, k)
	for i := 0; i < k; i++ {
		o.pivot[i] = make([]graph.NodeID, n)
		o.pivotDist[i] = make([]int32, n)
		for v := 0; v < n; v++ {
			rowV := apsp.Row(graph.NodeID(v))
			best, bd := graph.NodeID(-1), shortest.Unreachable
			for w := 0; w < n; w++ {
				if levels[i][w] {
					if d := rowV[w]; d < bd {
						best, bd = graph.NodeID(w), d
					}
				}
			}
			o.pivot[i][v] = best
			o.pivotDist[i][v] = bd
		}
	}

	// Bunches: w ∈ A_i \ A_{i+1} joins B(v) iff d(v,w) < d(v, A_{i+1});
	// the top level joins unconditionally.
	o.bunch = make([]map[graph.NodeID]int32, n)
	for v := 0; v < n; v++ {
		rowV := apsp.Row(graph.NodeID(v))
		b := make(map[graph.NodeID]int32)
		for w := 0; w < n; w++ {
			lvl := 0
			for i := k - 1; i >= 0; i-- {
				if levels[i][w] {
					lvl = i
					break
				}
			}
			d := rowV[w]
			if lvl == k-1 || d < o.pivotDist[lvl+1][v] {
				b[graph.NodeID(w)] = d
			}
		}
		o.bunch[v] = b
	}
	return o, nil
}

// K returns the level count.
func (o *Oracle) K() int { return o.k }

// Query returns an estimate of d(u, v) within stretch 2K-1, by the
// classical pivot-swapping walk: raise the level until the current pivot
// lands in the other endpoint's bunch.
func (o *Oracle) Query(u, v graph.NodeID) int32 {
	w := u
	i := 0
	for {
		if d, ok := o.bunch[v][w]; ok {
			return o.dist(u, w, i) + d
		}
		i++
		u, v = v, u
		w = o.pivot[i][u]
	}
}

// dist returns d(u, w) where w = p_i(u) (stored with the pivot tables).
func (o *Oracle) dist(u, w graph.NodeID, i int) int32 {
	if o.pivot[i][u] != w {
		// w must be p_i(u) by construction of the query walk.
		panic("oracle: query invariant violated")
	}
	return o.pivotDist[i][u]
}

// BunchSize returns |B(v)| — the per-vertex space driver.
func (o *Oracle) BunchSize(v graph.NodeID) int { return len(o.bunch[v]) }

// MaxBunch returns the largest bunch.
func (o *Oracle) MaxBunch() int {
	m := 0
	for _, b := range o.bunch {
		if len(b) > m {
			m = len(b)
		}
	}
	return m
}

// TotalEntries returns Σ_v |B(v)|: total oracle size in entries.
func (o *Oracle) TotalEntries() int {
	t := 0
	for _, b := range o.bunch {
		t += len(b)
	}
	return t
}

// LocalBits returns the encoded size of v's share of the oracle under
// the fixed coding strategy: pivots (k entries of id+distance) plus the
// bunch (id+distance per member).
func (o *Oracle) LocalBits(v graph.NodeID) int {
	wn := coding.BitsFor(uint64(o.n))
	wd := coding.BitsFor(uint64(o.n)) // distances < n in connected graphs
	bits := o.k * (wn + wd)
	bits += coding.GammaLen(uint64(len(o.bunch[v]) + 1))
	bits += len(o.bunch[v]) * (wn + wd)
	return bits
}
