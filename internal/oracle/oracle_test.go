package oracle

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

func TestOracleStretchBoundProperty(t *testing.T) {
	check := func(seed uint64, nn uint8, kk uint8) bool {
		n := int(nn%40) + 5
		k := int(kk%3) + 2 // 2..4
		g := gen.RandomConnected(n, 0.15, xrand.New(seed))
		apsp := shortest.NewAPSP(g)
		o, err := New(g, apsp, Options{K: k, Seed: seed})
		if err != nil {
			return false
		}
		maxStretch := int32(2*k - 1)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u == v {
					continue
				}
				est := o.Query(graph.NodeID(u), graph.NodeID(v))
				d := apsp.Dist(graph.NodeID(u), graph.NodeID(v))
				if est < d || est > maxStretch*d {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestOracleExactOnSelfPivots(t *testing.T) {
	g := gen.Cycle(12)
	o, err := New(g, nil, Options{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Query(u, u) is not defined by the API (distance 0 pairs are
	// trivial); adjacent pairs must come back >= 1.
	if est := o.Query(0, 1); est < 1 || est > 3 {
		t.Fatalf("adjacent estimate %d out of [1,3]", est)
	}
}

func TestOracleSymmetricEstimates(t *testing.T) {
	// The query walk is symmetric in expectation but not per-pair; both
	// directions must nevertheless satisfy the stretch bound.
	g := gen.RandomConnected(40, 0.12, xrand.New(3))
	apsp := shortest.NewAPSP(g)
	o, err := New(g, apsp, Options{K: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 40; u++ {
		for v := u + 1; v < 40; v++ {
			d := apsp.Dist(graph.NodeID(u), graph.NodeID(v))
			for _, est := range []int32{o.Query(graph.NodeID(u), graph.NodeID(v)), o.Query(graph.NodeID(v), graph.NodeID(u))} {
				if est < d || est > 5*d {
					t.Fatalf("estimate %d for distance %d violates 2k-1 = 5", est, d)
				}
			}
		}
	}
}

func TestOracleSizeShrinksWithK(t *testing.T) {
	// The Table 1 mechanism: more levels => smaller bunches. Compare the
	// max per-vertex state for k = 2 vs k = 4 on a graph large enough for
	// sampling to bite; allow slack since the guarantee is in expectation.
	g := gen.RandomConnected(300, 0.03, xrand.New(5))
	apsp := shortest.NewAPSP(g)
	o2, err := New(g, apsp, Options{K: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	o4, err := New(g, apsp, Options{K: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if o4.TotalEntries() >= o2.TotalEntries() {
		t.Fatalf("k=4 oracle (%d entries) not smaller than k=2 (%d)", o4.TotalEntries(), o2.TotalEntries())
	}
}

func TestOracleRejectsBadK(t *testing.T) {
	g := gen.Cycle(10)
	if _, err := New(g, nil, Options{K: 1, Seed: 1}); err == nil {
		t.Fatal("K=1 accepted")
	}
}

func TestOracleRejectsDisconnected(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if _, err := New(g, nil, Options{K: 2, Seed: 1}); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestOracleBunchAccounting(t *testing.T) {
	g := gen.RandomConnected(60, 0.1, xrand.New(7))
	o, err := New(g, nil, Options{K: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	maxB := 0
	for v := 0; v < 60; v++ {
		s := o.BunchSize(graph.NodeID(v))
		total += s
		if s > maxB {
			maxB = s
		}
		if s < 1 {
			t.Fatalf("vertex %d has an empty bunch", v)
		}
		if o.LocalBits(graph.NodeID(v)) <= 0 {
			t.Fatalf("vertex %d has nonpositive local bits", v)
		}
	}
	if total != o.TotalEntries() || maxB != o.MaxBunch() {
		t.Fatal("aggregate accessors disagree with per-vertex sums")
	}
}

func TestOracleDeterministic(t *testing.T) {
	g1 := gen.RandomConnected(50, 0.1, xrand.New(9))
	g2 := gen.RandomConnected(50, 0.1, xrand.New(9))
	o1, _ := New(g1, nil, Options{K: 3, Seed: 10})
	o2, _ := New(g2, nil, Options{K: 3, Seed: 10})
	if o1.TotalEntries() != o2.TotalEntries() || o1.MaxBunch() != o2.MaxBunch() {
		t.Fatal("oracle construction not deterministic under fixed seed")
	}
}
