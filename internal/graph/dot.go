package graph

import (
	"fmt"
	"io"
	"strings"
)

// DOTOptions configure WriteDOT.
type DOTOptions struct {
	// Name is the graph name in the DOT header (default "G").
	Name string
	// NodeLabel, when set, overrides the displayed label of a vertex.
	NodeLabel func(NodeID) string
	// NodeAttr, when set, returns extra DOT attributes for a vertex
	// (e.g. `shape=box, style=filled`).
	NodeAttr func(NodeID) string
	// ShowPorts annotates each edge end with its local port label
	// (taillabel/headlabel), which is how the paper draws Figure 1.
	ShowPorts bool
}

// WriteDOT renders the graph in Graphviz DOT format. Port labels — the
// object the paper's lower bound is about — can be drawn on the edge
// ends with ShowPorts.
func (g *Graph) WriteDOT(w io.Writer, opt DOTOptions) error {
	name := opt.Name
	if name == "" {
		name = "G"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s {\n", name)
	b.WriteString("  node [shape=circle];\n")
	for u := 0; u < g.Order(); u++ {
		label := fmt.Sprintf("%d", u)
		if opt.NodeLabel != nil {
			label = opt.NodeLabel(NodeID(u))
		}
		attr := ""
		if opt.NodeAttr != nil {
			if a := opt.NodeAttr(NodeID(u)); a != "" {
				attr = ", " + a
			}
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\"%s];\n", u, label, attr)
	}
	for u := 0; u < g.Order(); u++ {
		g.ForEachArc(NodeID(u), func(p Port, v NodeID) {
			if NodeID(u) > v {
				return // each edge once
			}
			if opt.ShowPorts {
				fmt.Fprintf(&b, "  n%d -- n%d [taillabel=\"%d\", headlabel=\"%d\"];\n",
					u, v, p, g.BackPort(NodeID(u), p))
			} else {
				fmt.Fprintf(&b, "  n%d -- n%d;\n", u, v)
			}
		})
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
