package graph

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func triangle() *Graph {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	return g
}

func TestEmptyGraph(t *testing.T) {
	g := New(0)
	if g.Order() != 0 || g.Size() != 0 {
		t.Fatal("empty graph has wrong order/size")
	}
	if !g.Connected() {
		t.Fatal("empty graph should count as connected")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgePorts(t *testing.T) {
	g := New(3)
	pu, pv := g.AddEdge(0, 1)
	if pu != 1 || pv != 1 {
		t.Fatalf("first edge ports = (%d,%d), want (1,1)", pu, pv)
	}
	pu, pv = g.AddEdge(0, 2)
	if pu != 2 || pv != 1 {
		t.Fatalf("second edge ports = (%d,%d), want (2,1)", pu, pv)
	}
	if g.Size() != 2 {
		t.Fatalf("size = %d, want 2", g.Size())
	}
	if g.Degree(0) != 2 || g.Degree(1) != 1 || g.Degree(2) != 1 {
		t.Fatal("degrees wrong")
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop did not panic")
		}
	}()
	New(2).AddEdge(1, 1)
}

func TestDuplicateEdgePanics(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate edge did not panic")
		}
	}()
	g.AddEdge(1, 0)
}

func TestNeighborAndBackPort(t *testing.T) {
	g := triangle()
	for u := NodeID(0); u < 3; u++ {
		for p := Port(1); int(p) <= g.Degree(u); p++ {
			v := g.Neighbor(u, p)
			bp := g.BackPort(u, p)
			if g.Neighbor(v, bp) != u {
				t.Fatalf("back port of (%d, port %d) broken", u, p)
			}
		}
	}
}

func TestPortTo(t *testing.T) {
	g := triangle()
	if p := g.PortTo(0, 1); g.Neighbor(0, p) != 1 {
		t.Fatal("PortTo(0,1) wrong")
	}
	g2 := New(3)
	g2.AddEdge(0, 1)
	if g2.PortTo(0, 2) != NoPort {
		t.Fatal("PortTo for non-adjacent pair should be NoPort")
	}
}

func TestHasEdgeSymmetric(t *testing.T) {
	g := triangle()
	for u := NodeID(0); u < 3; u++ {
		for v := NodeID(0); v < 3; v++ {
			if u != v && g.HasEdge(u, v) != g.HasEdge(v, u) {
				t.Fatalf("HasEdge asymmetric on (%d,%d)", u, v)
			}
		}
	}
}

func TestPermutePorts(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1) // port 1 at 0
	g.AddEdge(0, 2) // port 2 at 0
	g.AddEdge(0, 3) // port 3 at 0
	// Rotate: old port k moves to position perm[k-1]+1.
	g.PermutePorts(0, []int{2, 0, 1})
	if g.Neighbor(0, 3) != 1 || g.Neighbor(0, 1) != 2 || g.Neighbor(0, 2) != 3 {
		t.Fatalf("permuted neighbors wrong: %v %v %v",
			g.Neighbor(0, 1), g.Neighbor(0, 2), g.Neighbor(0, 3))
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("validate after permute: %v", err)
	}
}

func TestPermutePortsRejectsBadPerm(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("bad permutation did not panic")
		}
	}()
	g.PermutePorts(0, []int{0, 0})
}

func TestSortPortsByNeighbor(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.SortPortsByNeighbor()
	for p := Port(1); p <= 3; p++ {
		if g.Neighbor(0, p) != NodeID(p) {
			t.Fatalf("port %d -> %d, want %d", p, g.Neighbor(0, p), p)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := triangle()
	h := g.Clone()
	h.AddNode()
	h.AddEdge(0, 3)
	if g.Order() != 3 || g.Size() != 3 {
		t.Fatal("clone mutation leaked into original")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if g.Connected() {
		t.Fatal("two components reported connected")
	}
	g.AddEdge(1, 2)
	if !g.Connected() {
		t.Fatal("path reported disconnected")
	}
}

func TestEdgesSorted(t *testing.T) {
	g := triangle()
	es := g.Edges()
	if len(es) != 3 {
		t.Fatalf("got %d edges, want 3", len(es))
	}
	for i := 1; i < len(es); i++ {
		if es[i-1][0] > es[i][0] || (es[i-1][0] == es[i][0] && es[i-1][1] >= es[i][1]) {
			t.Fatal("edges not sorted")
		}
	}
}

func randomGraph(seed uint64, n int, prob float64) *Graph {
	r := xrand.New(seed)
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < prob {
				g.AddEdge(NodeID(u), NodeID(v))
			}
		}
	}
	return g
}

func TestValidateProperty(t *testing.T) {
	check := func(seed uint64, nn uint8) bool {
		n := int(nn%20) + 2
		g := randomGraph(seed, n, 0.4)
		return g.Validate() == nil
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermutePortsPreservesValidity(t *testing.T) {
	check := func(seed uint64, nn uint8) bool {
		n := int(nn%15) + 3
		r := xrand.New(seed)
		g := randomGraph(seed+1, n, 0.5)
		for u := 0; u < n; u++ {
			if d := g.Degree(NodeID(u)); d > 0 {
				g.PermutePorts(NodeID(u), r.Perm(d))
			}
		}
		return g.Validate() == nil
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	g := randomGraph(77, 12, 0.4)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Order() != g.Order() || h.Size() != g.Size() {
		t.Fatalf("round trip changed shape: (%d,%d) -> (%d,%d)", g.Order(), g.Size(), h.Order(), h.Size())
	}
	ge, he := g.Edges(), h.Edges()
	for i := range ge {
		if ge[i] != he[i] {
			t.Fatalf("edge %d changed: %v -> %v", i, ge[i], he[i])
		}
	}
}

func TestPortedSerializeRoundTrip(t *testing.T) {
	r := xrand.New(5)
	g := randomGraph(42, 10, 0.5)
	for u := 0; u < g.Order(); u++ {
		if d := g.Degree(NodeID(u)); d > 1 {
			g.PermutePorts(NodeID(u), r.Perm(d))
		}
	}
	var buf bytes.Buffer
	if err := g.WritePorted(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := ReadPorted(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.Order(); u++ {
		for p := Port(1); int(p) <= g.Degree(NodeID(u)); p++ {
			if g.Neighbor(NodeID(u), p) != h.Neighbor(NodeID(u), p) {
				t.Fatalf("port labeling changed at (%d, %d)", u, p)
			}
		}
	}
}

func TestMaxDegree(t *testing.T) {
	g := New(5)
	if g.MaxDegree() != 0 {
		t.Fatal("max degree of edgeless graph should be 0")
	}
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	if g.MaxDegree() != 3 {
		t.Fatalf("max degree = %d, want 3", g.MaxDegree())
	}
}
