// Package graph implements the network model of Fraigniaud & Gavoille
// (1996): finite connected symmetric digraphs with locally port-labeled
// arcs.
//
// Vertices are labeled 0..n-1 (the paper uses 1..n; we keep 0-based ids
// internally and render 1-based labels only for display). Each edge {u,v}
// corresponds to two symmetric arcs (u,v) and (v,u). The output ports of a
// vertex x are labeled 1..deg(x); the port labeling is local — renumbering
// the ports of one vertex does not affect any other vertex. Port labelings
// are first-class here because the paper's lower bound is precisely about
// the adversary's freedom to choose them.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a vertex, in [0, Order()).
type NodeID = int32

// Port identifies an outgoing arc locally at a vertex. Valid ports are
// 1..deg(x); 0 is reserved as "no port" (used by routing functions to mean
// "deliver locally").
type Port = int32

// NoPort is the reserved null port value.
const NoPort Port = 0

// DeadEnd is the neighbor id stored in a port slot whose edge has been
// removed. Removal keeps surviving port labels stable — the slot stays,
// its endpoint becomes DeadEnd and its back port NoPort — so schemes
// built before a fault keep addressing the same ports after it, which is
// what makes incremental repair (and the dead-port routing error)
// well-defined. Arcs/Neighbor report the sentinel as-is; kernels skip
// negative endpoints.
const DeadEnd NodeID = -1

// Graph is a mutable symmetric digraph with local port labels.
//
// The representation stores, for every vertex u, the slice adj[u] of
// neighbor ids indexed by port-1: adj[u][k-1] is the endpoint of the arc
// leaving u through port k. The inverse map ports[u] gives, for the i-th
// neighbor in adj[u], the port used by that neighbor to come back
// (backPort), enabling O(1) arc reversal.
//
// Freeze compacts the per-vertex rows into one contiguous CSR arena (a
// flat neighbor array plus a flat back-port array, rows in vertex order)
// that the same adj/backPort slice headers then view, so hot kernels
// iterating with Arcs/BackPorts walk contiguous memory with no pointer
// chasing. Mutations stay legal after Freeze — rows are capacity-clamped
// views, so AddEdge's append reallocates just the touched row — they only
// clear the frozen flag until the next Freeze re-compacts.
type Graph struct {
	adj      [][]NodeID // adj[u][k-1] = v for arc (u,v) on port k
	backPort [][]Port   // backPort[u][k-1] = port of v leading back to u
	edges    int
	frozen   bool   // true while every row views one contiguous CSR arena
	removed  []bool // removed[u]: vertex killed by RemoveVertex (nil: none)
	nRemoved int
}

// New returns an empty graph with n isolated vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative order")
	}
	return &Graph{
		adj:      make([][]NodeID, n),
		backPort: make([][]Port, n),
	}
}

// Order returns the number of vertices n.
func (g *Graph) Order() int { return len(g.adj) }

// Size returns the number of edges (each counted once, not per arc).
func (g *Graph) Size() int { return g.edges }

// Degree returns deg(u), the number of port slots of u. On a graph that
// has never lost an edge this is the number of incident edges; after
// RemoveEdge/RemoveVertex it still counts dead slots, because the port
// label space 1..deg(u) — and with it every port-width in an encoded
// scheme — is stable across faults by contract. Use LiveDegree for the
// count of surviving edges.
func (g *Graph) Degree(u NodeID) int { return len(g.adj[u]) }

// LiveDegree returns the number of live incident edges of u — Degree(u)
// minus the dead port slots left by removals.
func (g *Graph) LiveDegree(u NodeID) int {
	d := 0
	for _, v := range g.adj[u] {
		if v != DeadEnd {
			d++
		}
	}
	return d
}

// Removed reports whether u was killed by RemoveVertex. Removed vertices
// keep their id (Order never shrinks) but have no live arcs.
func (g *Graph) Removed(u NodeID) bool {
	return g.removed != nil && g.removed[u]
}

// LiveOrder returns the number of vertices not killed by RemoveVertex.
func (g *Graph) LiveOrder() int { return len(g.adj) - g.nRemoved }

// MaxDegree returns the maximum degree over all vertices (0 for an empty
// graph).
func (g *Graph) MaxDegree() int {
	d := 0
	for u := range g.adj {
		if len(g.adj[u]) > d {
			d = len(g.adj[u])
		}
	}
	return d
}

// AddNode appends a fresh isolated vertex and returns its id.
func (g *Graph) AddNode() NodeID {
	g.adj = append(g.adj, nil)
	g.backPort = append(g.backPort, nil)
	if g.removed != nil {
		g.removed = append(g.removed, false)
	}
	g.frozen = false
	return NodeID(len(g.adj) - 1)
}

// AddEdge inserts the edge {u, v}, assigning the next free port at each
// endpoint, and returns the two new port labels (pu at u, pv at v). It
// panics on self-loops and duplicate edges: the model is a simple graph.
func (g *Graph) AddEdge(u, v NodeID) (pu, pv Port) {
	if u == v {
		panic("graph: self-loop")
	}
	g.checkNode(u)
	g.checkNode(v)
	if g.HasEdge(u, v) {
		panic(fmt.Sprintf("graph: duplicate edge {%d,%d}", u, v))
	}
	if g.Removed(u) || g.Removed(v) {
		panic(fmt.Sprintf("graph: edge {%d,%d} touches a removed vertex", u, v))
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	pu = Port(len(g.adj[u]))
	pv = Port(len(g.adj[v]))
	g.backPort[u] = append(g.backPort[u], pv)
	g.backPort[v] = append(g.backPort[v], pu)
	g.edges++
	g.frozen = false
	return pu, pv
}

// HasEdge reports whether the edge {u, v} is present. O(min deg).
func (g *Graph) HasEdge(u, v NodeID) bool {
	a, b := u, v
	if len(g.adj[a]) > len(g.adj[b]) {
		a, b = b, a
	}
	for _, w := range g.adj[a] {
		if w == b {
			return true
		}
	}
	return false
}

// RemoveEdge deletes the edge {u, v} under the port-stability contract:
// every surviving port of u and v keeps its label, and the two slots the
// edge occupied become holes — Arcs/Neighbor report DeadEnd there and
// the matching back ports become NoPort. Degree (the port-slot count)
// is unchanged; LiveDegree drops by one at each endpoint. It panics if
// the edge is absent, mirroring AddEdge's duplicate panic.
func (g *Graph) RemoveEdge(u, v NodeID) {
	g.checkNode(u)
	g.checkNode(v)
	pu := g.PortTo(u, v)
	if pu == NoPort {
		panic(fmt.Sprintf("graph: no edge {%d,%d} to remove", u, v))
	}
	pv := g.backPort[u][pu-1]
	g.adj[u][pu-1] = DeadEnd
	g.backPort[u][pu-1] = NoPort
	g.adj[v][pv-1] = DeadEnd
	g.backPort[v][pv-1] = NoPort
	g.edges--
	g.frozen = false
}

// RemoveVertex kills v: every incident edge is removed (leaving holes at
// the surviving endpoints, per the RemoveEdge contract) and the vertex
// is flagged removed. Ids are stable — Order does not shrink, v simply
// has no live arcs and Removed(v) reports true. Re-adding edges at a
// removed vertex panics.
func (g *Graph) RemoveVertex(v NodeID) {
	g.checkNode(v)
	if g.Removed(v) {
		panic(fmt.Sprintf("graph: vertex %d already removed", v))
	}
	for k, w := range g.adj[v] {
		if w == DeadEnd {
			continue
		}
		bp := g.backPort[v][k]
		g.adj[w][bp-1] = DeadEnd
		g.backPort[w][bp-1] = NoPort
		g.adj[v][k] = DeadEnd
		g.backPort[v][k] = NoPort
		g.edges--
	}
	if g.removed == nil {
		g.removed = make([]bool, len(g.adj))
	}
	g.removed[v] = true
	g.nRemoved++
	g.frozen = false
}

// Neighbor returns the endpoint of the arc leaving u through port p, or
// DeadEnd when the edge that occupied the slot has been removed.
// It panics if p is not a valid port of u.
func (g *Graph) Neighbor(u NodeID, p Port) NodeID {
	if p < 1 || int(p) > len(g.adj[u]) {
		panic(fmt.Sprintf("graph: invalid port %d at vertex %d (degree %d)", p, u, len(g.adj[u])))
	}
	return g.adj[u][p-1]
}

// BackPort returns the port that Neighbor(u,p) uses for the reverse arc.
func (g *Graph) BackPort(u NodeID, p Port) Port {
	if p < 1 || int(p) > len(g.backPort[u]) {
		panic(fmt.Sprintf("graph: invalid port %d at vertex %d", p, u))
	}
	return g.backPort[u][p-1]
}

// PortTo returns the port of u whose arc leads to v, or NoPort if u and v
// are not adjacent.
func (g *Graph) PortTo(u, v NodeID) Port {
	for i, w := range g.adj[u] {
		if w == v {
			return Port(i + 1)
		}
	}
	return NoPort
}

// Neighbors appends the neighbors of u (in port order) to dst and returns
// the extended slice. Passing a reused buffer avoids allocation in hot
// loops.
func (g *Graph) Neighbors(u NodeID, dst []NodeID) []NodeID {
	return append(dst, g.adj[u]...)
}

// Arcs returns the neighbors of u indexed by port-1: Arcs(u)[k-1] is the
// endpoint of the arc leaving u through port k. This is the hot-loop arc
// accessor — iterate with a plain `for i, v := range g.Arcs(u)` (the port
// is i+1) instead of paying a closure call per arc through ForEachArc.
// After Freeze the returned slice is a view into one contiguous CSR
// arena shared by all vertices. The caller must not modify it.
func (g *Graph) Arcs(u NodeID) []NodeID { return g.adj[u] }

// BackPorts returns, indexed by port-1, the port each neighbor of u uses
// for its reverse arc: BackPorts(u)[k-1] is the port of Arcs(u)[k-1]
// leading back to u. Same layout and ownership rules as Arcs.
func (g *Graph) BackPorts(u NodeID) []Port { return g.backPort[u] }

// ForEachArc calls fn(port, neighbor) for every outgoing arc of u in port
// order. It is a thin compatibility shim over Arcs for cold callers;
// hot loops should range over Arcs/BackPorts directly.
func (g *Graph) ForEachArc(u NodeID, fn func(p Port, v NodeID)) {
	for i, v := range g.adj[u] {
		fn(Port(i+1), v)
	}
}

// Freeze compacts the adjacency into a frozen CSR core: one contiguous
// neighbor array and one contiguous back-port array, rows laid out in
// vertex order, which every adj/backPort row then views. Arc iteration
// order is unchanged — port order, exactly as before — Freeze only moves
// where the rows live, so every observable result is bit-identical.
// It is idempotent and O(n + m); construction-time callers (APSP,
// distance sources, scheme builders) invoke it before fanning out
// workers, so the hot kernels always see the flat layout.
//
// Freeze is a structural mutation: like AddEdge it must not run
// concurrently with readers. Call it from the serial phase that owns the
// graph (all in-repo entry points do).
func (g *Graph) Freeze() {
	if g.frozen {
		return
	}
	compactRows(g.adj, g.backPort, g.adj, g.backPort)
	g.frozen = true
}

// compactRows copies the src rows into one fresh contiguous arena per
// array and stores capacity-clamped views of it into dstAdj/dstBack —
// the clamp (off : off+d : off+d) is what keeps a later append on one
// row from bleeding into the next vertex's arcs. src and dst may alias
// (Freeze compacts in place; Clone targets a fresh graph).
func compactRows(srcAdj [][]NodeID, srcBack [][]Port, dstAdj [][]NodeID, dstBack [][]Port) {
	arcs := 0
	for u := range srcAdj {
		arcs += len(srcAdj[u])
	}
	dst := make([]NodeID, arcs)
	back := make([]Port, arcs)
	off := 0
	for u := range srcAdj {
		d := len(srcAdj[u])
		copy(dst[off:off+d], srcAdj[u])
		copy(back[off:off+d], srcBack[u])
		dstAdj[u] = dst[off : off+d : off+d]
		dstBack[u] = back[off : off+d : off+d]
		off += d
	}
}

// Frozen reports whether the adjacency currently views one contiguous
// CSR arena (true between a Freeze and the next mutation).
func (g *Graph) Frozen() bool { return g.frozen }

// PermutePorts relabels the ports of vertex u according to perm, where
// perm is a permutation of [0, deg(u)): the arc currently on port k+1
// moves to port perm[k]+1. Other vertices' labelings are untouched; back
// pointers on the neighbors are updated. This is the adversary's move in
// the paper's complete-graph example and in Definition 1's freedom to fix
// the labels of the arcs incident to constrained vertices.
func (g *Graph) PermutePorts(u NodeID, perm []int) {
	d := len(g.adj[u])
	if len(perm) != d {
		panic("graph: permutation length must equal degree")
	}
	seen := make([]bool, d)
	for _, p := range perm {
		if p < 0 || p >= d || seen[p] {
			panic("graph: not a permutation")
		}
		seen[p] = true
	}
	newAdj := make([]NodeID, d)
	newBack := make([]Port, d)
	for k, v := range g.adj[u] {
		newAdj[perm[k]] = v
		newBack[perm[k]] = g.backPort[u][k]
	}
	g.adj[u] = newAdj
	g.backPort[u] = newBack
	g.frozen = false
	// Fix neighbors' back pointers: the arc v->u that used to answer port
	// k+1 must now answer perm[k]+1. Holes have no reverse arc to fix.
	for k, v := range newAdj {
		if v == DeadEnd {
			continue
		}
		p := newBack[k] // port at v leading to u
		g.backPort[v][p-1] = Port(k + 1)
	}
}

// SortPortsByNeighbor relabels every vertex's ports so that neighbors
// appear in increasing id order. This produces the "natural" labeling used
// as the non-adversarial baseline in experiments.
func (g *Graph) SortPortsByNeighbor() {
	for u := range g.adj {
		d := len(g.adj[u])
		idx := make([]int, d)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return g.adj[u][idx[a]] < g.adj[u][idx[b]] })
		perm := make([]int, d)
		for newPos, old := range idx {
			perm[old] = newPos
		}
		g.PermutePorts(NodeID(u), perm)
	}
}

// Clone returns a deep copy of g. The copy is built directly into a
// contiguous CSR arena (two bulk allocations instead of 2n row
// allocations) and is therefore frozen regardless of g's state.
func (g *Graph) Clone() *Graph {
	h := &Graph{
		adj:      make([][]NodeID, len(g.adj)),
		backPort: make([][]Port, len(g.backPort)),
		edges:    g.edges,
		nRemoved: g.nRemoved,
	}
	if g.removed != nil {
		h.removed = make([]bool, len(g.removed))
		copy(h.removed, g.removed)
	}
	compactRows(g.adj, g.backPort, h.adj, h.backPort)
	h.frozen = true
	return h
}

// Validate checks the structural invariants: back pointers are mutually
// consistent, there are no self-loops or duplicate edges, holes are
// symmetric (a DeadEnd slot carries NoPort, removed vertices have no
// live arcs and no live arc targets one), and the edge count matches.
// It returns a descriptive error for the first violation.
func (g *Graph) Validate() error {
	arcs := 0
	for u := range g.adj {
		if len(g.adj[u]) != len(g.backPort[u]) {
			return fmt.Errorf("vertex %d: adj/backPort length mismatch", u)
		}
		seen := make(map[NodeID]bool, len(g.adj[u]))
		for k, v := range g.adj[u] {
			if v == DeadEnd {
				if g.backPort[u][k] != NoPort {
					return fmt.Errorf("vertex %d: dead port %d keeps back port %d", u, k+1, g.backPort[u][k])
				}
				continue
			}
			if g.Removed(NodeID(u)) {
				return fmt.Errorf("removed vertex %d: live arc on port %d", u, k+1)
			}
			if int(v) >= 0 && int(v) < len(g.adj) && g.Removed(v) {
				return fmt.Errorf("vertex %d: port %d points at removed vertex %d", u, k+1, v)
			}
			if v == NodeID(u) {
				return fmt.Errorf("vertex %d: self-loop on port %d", u, k+1)
			}
			if int(v) < 0 || int(v) >= len(g.adj) {
				return fmt.Errorf("vertex %d: port %d points outside the graph", u, k+1)
			}
			if seen[v] {
				return fmt.Errorf("vertex %d: duplicate edge to %d", u, v)
			}
			seen[v] = true
			bp := g.backPort[u][k]
			if bp < 1 || int(bp) > len(g.adj[v]) {
				return fmt.Errorf("vertex %d port %d: back port %d out of range at %d", u, k+1, bp, v)
			}
			if g.adj[v][bp-1] != NodeID(u) {
				return fmt.Errorf("vertex %d port %d: back port %d at %d leads to %d, not back",
					u, k+1, bp, v, g.adj[v][bp-1])
			}
			arcs++
		}
	}
	if arcs != 2*g.edges {
		return fmt.Errorf("edge count %d inconsistent with %d arcs", g.edges, arcs)
	}
	return nil
}

// Connected reports whether the live graph is connected (the paper's
// model assumes connectivity; generators guarantee it, padders preserve
// it). Removed vertices are excluded: the question after a fault is
// whether the survivors still form one component. The empty graph and
// the single vertex are connected.
func (g *Graph) Connected() bool {
	n := g.Order()
	if n-g.nRemoved <= 1 {
		return true
	}
	start := NodeID(-1)
	for u := 0; u < n; u++ {
		if !g.Removed(NodeID(u)) {
			start = NodeID(u)
			break
		}
	}
	visited := make([]bool, n)
	stack := []NodeID{start}
	visited[start] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.adj[u] {
			if v != DeadEnd && !visited[v] {
				visited[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == n-g.nRemoved
}

// Edges returns all edges as pairs (u, v) with u < v, sorted
// lexicographically. Intended for tests and serialization.
func (g *Graph) Edges() [][2]NodeID {
	out := make([][2]NodeID, 0, g.edges)
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if NodeID(u) < v {
				out = append(out, [2]NodeID{NodeID(u), v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// String renders a compact multi-line description, one vertex per line:
// "u: p1->v1 p2->v2 ...".
func (g *Graph) String() string {
	s := fmt.Sprintf("graph(n=%d, m=%d)\n", g.Order(), g.Size())
	for u := range g.adj {
		s += fmt.Sprintf("  %d:", u)
		for k, v := range g.adj[u] {
			if v == DeadEnd {
				s += fmt.Sprintf(" %d->dead", k+1)
				continue
			}
			s += fmt.Sprintf(" %d->%d", k+1, v)
		}
		s += "\n"
	}
	return s
}

func (g *Graph) checkNode(u NodeID) {
	if int(u) < 0 || int(u) >= len(g.adj) {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", u, len(g.adj)))
	}
}

// ErrNotConnected is returned by helpers that require connectivity.
var ErrNotConnected = errors.New("graph: not connected")
