package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteTo serializes g in a small line-oriented text format:
//
//	n m
//	u v        (one line per edge, in insertion-independent sorted order)
//
// Port labelings are NOT serialized by WriteTo/ReadFrom; the reader
// reconstructs ports by insertion order of the sorted edge list. Use
// WritePorted/ReadPorted when the port labeling itself is the payload
// (e.g. adversarially labeled instances).
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	if err := g.checkSerializable(); err != nil {
		return 0, err
	}
	bw := bufio.NewWriter(w)
	var n int64
	k, err := fmt.Fprintf(bw, "%d %d\n", g.Order(), g.Size())
	n += int64(k)
	if err != nil {
		return n, err
	}
	for _, e := range g.Edges() {
		k, err = fmt.Fprintf(bw, "%d %d\n", e[0], e[1])
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// checkSerializable rejects graphs carrying fault holes or removed
// vertices: neither text format has a representation for a dead port
// slot, and silently compacting the holes would change every surviving
// port label. Faulted topologies travel as a base graph plus a delta
// record (internal/schemeio), never as a re-serialized graph.
func (g *Graph) checkSerializable() error {
	if g.nRemoved > 0 {
		return fmt.Errorf("graph: cannot serialize: %d removed vertices (serialize the base graph and a fault delta instead)", g.nRemoved)
	}
	for u := range g.adj {
		for k, v := range g.adj[u] {
			if v == DeadEnd {
				return fmt.Errorf("graph: cannot serialize: dead port %d at vertex %d (serialize the base graph and a fault delta instead)", k+1, u)
			}
		}
	}
	return nil
}

// MaxSerializedOrder bounds the vertex count the readers accept. Both
// formats carry attacker-controlled sizes in their headers; without a
// cap, "1000000000 0" would commit gigabytes before the first real parse
// error. 2^22 vertices is far beyond every workload in this repository
// while keeping the worst-case header allocation around 200 MB.
const MaxSerializedOrder = 1 << 22

// checkOrder validates a deserialized vertex count. The readers must
// never panic or over-allocate on malformed bytes — they are the
// repository's only parsing boundary and are fuzzed as such.
func checkOrder(n int) error {
	if n < 0 {
		return fmt.Errorf("graph: negative order %d", n)
	}
	if n > MaxSerializedOrder {
		return fmt.Errorf("graph: order %d exceeds limit %d", n, MaxSerializedOrder)
	}
	return nil
}

// ReadFrom parses the format produced by WriteTo and returns the graph.
// Malformed input — bad counts, out-of-range endpoints, self-loops,
// duplicate edges — returns an error; it never panics.
func ReadFrom(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var n, m int
	if _, err := fmt.Fscan(br, &n, &m); err != nil {
		return nil, fmt.Errorf("graph: bad header: %w", err)
	}
	if err := checkOrder(n); err != nil {
		return nil, err
	}
	if m < 0 || int64(m) > int64(n)*int64(n-1)/2 {
		return nil, fmt.Errorf("graph: edge count %d impossible for order %d", m, n)
	}
	g := New(n)
	for i := 0; i < m; i++ {
		var u, v int
		if _, err := fmt.Fscan(br, &u, &v); err != nil {
			return nil, fmt.Errorf("graph: bad edge %d: %w", i, err)
		}
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("graph: edge %d endpoint out of range: {%d,%d}", i, u, v)
		}
		if u == v {
			return nil, fmt.Errorf("graph: edge %d is a self-loop at %d", i, u)
		}
		if g.HasEdge(NodeID(u), NodeID(v)) {
			return nil, fmt.Errorf("graph: duplicate edge %d: {%d,%d}", i, u, v)
		}
		g.AddEdge(NodeID(u), NodeID(v))
	}
	g.Freeze()
	return g, nil
}

// WritePorted serializes g including the exact port labeling:
//
//	n
//	deg v1 v2 ... vdeg      (one line per vertex; vk = Neighbor(u, k))
func (g *Graph) WritePorted(w io.Writer) error {
	if err := g.checkSerializable(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d\n", g.Order()); err != nil {
		return err
	}
	for u := 0; u < g.Order(); u++ {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%d", g.Degree(NodeID(u)))
		g.ForEachArc(NodeID(u), func(p Port, v NodeID) {
			fmt.Fprintf(&sb, " %d", v)
		})
		sb.WriteByte('\n')
		if _, err := bw.WriteString(sb.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPorted parses the format produced by WritePorted, reconstructing the
// identical port labeling. It validates ranges while parsing and full
// port symmetry before returning; malformed bytes error, never panic.
func ReadPorted(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var n int
	if _, err := fmt.Fscan(br, &n); err != nil {
		return nil, fmt.Errorf("graph: bad header: %w", err)
	}
	if err := checkOrder(n); err != nil {
		return nil, err
	}
	g := New(n)
	g.adj = make([][]NodeID, n)
	g.backPort = make([][]Port, n)
	for u := 0; u < n; u++ {
		var d int
		if _, err := fmt.Fscan(br, &d); err != nil {
			return nil, fmt.Errorf("graph: bad degree for %d: %w", u, err)
		}
		if d < 0 || d >= n {
			return nil, fmt.Errorf("graph: degree %d of vertex %d impossible for order %d", d, u, n)
		}
		g.adj[u] = make([]NodeID, d)
		g.backPort[u] = make([]Port, d)
		for k := 0; k < d; k++ {
			var v int
			if _, err := fmt.Fscan(br, &v); err != nil {
				return nil, fmt.Errorf("graph: bad neighbor %d of %d: %w", k, u, err)
			}
			if v < 0 || v >= n {
				return nil, fmt.Errorf("graph: neighbor %d of %d out of range: %d", k, u, v)
			}
			if v == u {
				return nil, fmt.Errorf("graph: self-loop at vertex %d", u)
			}
			g.adj[u][k] = NodeID(v)
		}
	}
	// Reconstruct back ports and the edge count.
	edges := 0
	for u := 0; u < n; u++ {
		for k, v := range g.adj[u] {
			p := NoPort
			for j, w := range g.adj[v] {
				if w == NodeID(u) {
					p = Port(j + 1)
					break
				}
			}
			if p == NoPort {
				return nil, fmt.Errorf("graph: arc (%d,%d) has no reverse arc", u, v)
			}
			g.backPort[u][k] = p
			if NodeID(u) < v {
				edges++
			}
		}
	}
	g.edges = edges
	if err := g.Validate(); err != nil {
		return nil, err
	}
	g.Freeze()
	return g, nil
}
