package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteTo serializes g in a small line-oriented text format:
//
//	n m
//	u v        (one line per edge, in insertion-independent sorted order)
//
// Port labelings are NOT serialized by WriteTo/ReadFrom; the reader
// reconstructs ports by insertion order of the sorted edge list. Use
// WritePorted/ReadPorted when the port labeling itself is the payload
// (e.g. adversarially labeled instances).
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	k, err := fmt.Fprintf(bw, "%d %d\n", g.Order(), g.Size())
	n += int64(k)
	if err != nil {
		return n, err
	}
	for _, e := range g.Edges() {
		k, err = fmt.Fprintf(bw, "%d %d\n", e[0], e[1])
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadFrom parses the format produced by WriteTo and returns the graph.
func ReadFrom(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var n, m int
	if _, err := fmt.Fscan(br, &n, &m); err != nil {
		return nil, fmt.Errorf("graph: bad header: %w", err)
	}
	g := New(n)
	for i := 0; i < m; i++ {
		var u, v int
		if _, err := fmt.Fscan(br, &u, &v); err != nil {
			return nil, fmt.Errorf("graph: bad edge %d: %w", i, err)
		}
		g.AddEdge(NodeID(u), NodeID(v))
	}
	return g, nil
}

// WritePorted serializes g including the exact port labeling:
//
//	n
//	deg v1 v2 ... vdeg      (one line per vertex; vk = Neighbor(u, k))
func (g *Graph) WritePorted(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d\n", g.Order()); err != nil {
		return err
	}
	for u := 0; u < g.Order(); u++ {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%d", g.Degree(NodeID(u)))
		g.ForEachArc(NodeID(u), func(p Port, v NodeID) {
			fmt.Fprintf(&sb, " %d", v)
		})
		sb.WriteByte('\n')
		if _, err := bw.WriteString(sb.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPorted parses the format produced by WritePorted, reconstructing the
// identical port labeling. It validates symmetry before returning.
func ReadPorted(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var n int
	if _, err := fmt.Fscan(br, &n); err != nil {
		return nil, fmt.Errorf("graph: bad header: %w", err)
	}
	g := New(n)
	g.adj = make([][]NodeID, n)
	g.backPort = make([][]Port, n)
	for u := 0; u < n; u++ {
		var d int
		if _, err := fmt.Fscan(br, &d); err != nil {
			return nil, fmt.Errorf("graph: bad degree for %d: %w", u, err)
		}
		g.adj[u] = make([]NodeID, d)
		g.backPort[u] = make([]Port, d)
		for k := 0; k < d; k++ {
			var v int
			if _, err := fmt.Fscan(br, &v); err != nil {
				return nil, fmt.Errorf("graph: bad neighbor %d of %d: %w", k, u, err)
			}
			g.adj[u][k] = NodeID(v)
		}
	}
	// Reconstruct back ports and the edge count.
	edges := 0
	for u := 0; u < n; u++ {
		for k, v := range g.adj[u] {
			p := NoPort
			for j, w := range g.adj[v] {
				if w == NodeID(u) {
					p = Port(j + 1)
					break
				}
			}
			if p == NoPort {
				return nil, fmt.Errorf("graph: arc (%d,%d) has no reverse arc", u, v)
			}
			g.backPort[u][k] = p
			if NodeID(u) < v {
				edges++
			}
		}
	}
	g.edges = edges
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
