// Fuzzing for the serialization boundary: ReadFrom and ReadPorted are
// the only places this repository parses attacker-controllable bytes, so
// the contract is absolute — malformed input errors, never panics or
// over-allocates, and anything that parses is a Validate-clean graph
// whose re-serialization round-trips stably. The seed corpus mixes valid
// outputs of WriteTo/WritePorted with the malformed shapes the readers
// must reject (truncation, range violations, self-loops, duplicate
// edges, absurd counts).
package graph

import (
	"bytes"
	"reflect"
	"testing"
)

// fuzzSeedGraphs builds a few small graphs covering the corpus shapes:
// a path, a triangle with a pendant, and a star.
func fuzzSeedGraphs() []*Graph {
	path := New(4)
	path.AddEdge(0, 1)
	path.AddEdge(1, 2)
	path.AddEdge(2, 3)
	tri := New(4)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(2, 0)
	tri.AddEdge(2, 3)
	star := New(5)
	for v := NodeID(1); v < 5; v++ {
		star.AddEdge(0, v)
	}
	return []*Graph{New(0), New(1), path, tri, star}
}

func FuzzReadFrom(f *testing.F) {
	for _, g := range fuzzSeedGraphs() {
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	for _, bad := range []string{
		"",
		"1",
		"-1 0\n",
		"2 -1\n",
		"2 9\n",
		"1000000000 0\n",
		"2 1\n0 0\n",
		"2 1\n0 5\n",
		"3 2\n0 1\n0 1\n",
		"3 3\n0 1\n1 2\n",
		"4 2\n0 1\nx y\n",
	} {
		f.Add([]byte(bad))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadFrom(bytes.NewReader(data))
		if err != nil {
			return // rejection is the expected outcome for junk
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails Validate: %v", err)
		}
		// Round-trip stability: WriteTo output must parse back to the
		// same edge set, and re-serialize to identical bytes.
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		first := buf.String()
		g2, err := ReadFrom(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of serialized graph: %v", err)
		}
		if g2.Order() != g.Order() || g2.Size() != g.Size() || !reflect.DeepEqual(g2.Edges(), g.Edges()) {
			t.Fatal("round trip changed the graph")
		}
		var buf2 bytes.Buffer
		if _, err := g2.WriteTo(&buf2); err != nil {
			t.Fatalf("second WriteTo: %v", err)
		}
		if buf2.String() != first {
			t.Fatalf("serialization unstable:\n%q\nvs\n%q", first, buf2.String())
		}
	})
}

func FuzzReadPorted(f *testing.F) {
	for _, g := range fuzzSeedGraphs() {
		var buf bytes.Buffer
		if err := g.WritePorted(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	for _, bad := range []string{
		"",
		"-3\n",
		"1000000000\n",
		"2\n1 1\n1 0\n",   // self-loop
		"2\n5 0\n1 0\n",   // impossible degree
		"2\n1 7\n1 0\n",   // neighbor out of range
		"2\n1 1\n0\n",     // asymmetric: 0->1 with no reverse arc
		"3\n2 1 1\n1 0\n", // duplicate neighbor
		"2\n1 1\n",        // truncated
	} {
		f.Add([]byte(bad))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadPorted(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails Validate: %v", err)
		}
		// Ported round trip must preserve the exact port labeling, so the
		// bytes themselves must be stable after one normalization pass.
		var buf bytes.Buffer
		if err := g.WritePorted(&buf); err != nil {
			t.Fatalf("WritePorted: %v", err)
		}
		first := buf.String()
		g2, err := ReadPorted(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of serialized graph: %v", err)
		}
		var buf2 bytes.Buffer
		if err := g2.WritePorted(&buf2); err != nil {
			t.Fatalf("second WritePorted: %v", err)
		}
		if buf2.String() != first {
			t.Fatalf("ported serialization unstable:\n%q\nvs\n%q", first, buf2.String())
		}
	})
}
