package graph_test

import (
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

// The mutation-after-freeze regression suite: every mutating operation
// (AddEdge, PermutePorts, RemoveEdge, RemoveVertex) applied AFTER a
// Freeze, followed by a re-Freeze, must leave the graph observably
// identical — arc for arc, back-port for back-port, BFS row for BFS
// row — to a twin that took the same mutations without ever freezing.
// Freeze compacts rows into a flat CSR arena with capacity-clamped
// sub-slices; the hazard pinned here is a mutation writing through a
// stale arena view or a re-Freeze re-compacting rows in a way that
// drops or reorders port slots.

// mutation is one scripted step applied identically to both twins.
type mutation func(g *graph.Graph)

// applyScript runs the script against a frozen graph (freezing again
// after every step) and a never-frozen twin, comparing after each step.
func applyScript(t *testing.T, name string, base *graph.Graph, script []mutation) {
	t.Helper()
	frozen := base.Clone()
	plain := base.Clone()
	frozen.Freeze()
	for i, m := range script {
		m(frozen)
		frozen.Freeze() // re-freeze: the arena must rebuild correctly
		m(plain)
		assertTwins(t, name, i, frozen, plain)
	}
}

// assertTwins compares every observable the routing stack reads.
func assertTwins(t *testing.T, name string, step int, frozen, plain *graph.Graph) {
	t.Helper()
	if err := frozen.Validate(); err != nil {
		t.Fatalf("%s step %d: frozen twin invalid: %v", name, step, err)
	}
	if err := plain.Validate(); err != nil {
		t.Fatalf("%s step %d: plain twin invalid: %v", name, step, err)
	}
	if frozen.Order() != plain.Order() || frozen.Size() != plain.Size() {
		t.Fatalf("%s step %d: shape diverged: (%d,%d) vs (%d,%d)",
			name, step, frozen.Order(), frozen.Size(), plain.Order(), plain.Size())
	}
	n := frozen.Order()
	for u := 0; u < n; u++ {
		ui := graph.NodeID(u)
		if !reflect.DeepEqual(frozen.Arcs(ui), plain.Arcs(ui)) {
			t.Fatalf("%s step %d: arcs of %d diverged:\nfrozen: %v\nplain:  %v",
				name, step, u, frozen.Arcs(ui), plain.Arcs(ui))
		}
		if !reflect.DeepEqual(frozen.BackPorts(ui), plain.BackPorts(ui)) {
			t.Fatalf("%s step %d: back-ports of %d diverged:\nfrozen: %v\nplain:  %v",
				name, step, u, frozen.BackPorts(ui), plain.BackPorts(ui))
		}
		if frozen.Removed(ui) != plain.Removed(ui) {
			t.Fatalf("%s step %d: removed flag of %d diverged", name, step, u)
		}
	}
	// BFS reads the graph through the same arc iteration the routing
	// simulator uses; one row per live vertex pins reachability + order.
	for u := 0; u < n; u++ {
		ui := graph.NodeID(u)
		if frozen.Removed(ui) {
			continue
		}
		df, _ := shortest.BFSInto(frozen, ui, nil, nil)
		dp, _ := shortest.BFSInto(plain, ui, nil, nil)
		if !reflect.DeepEqual(df, dp) {
			t.Fatalf("%s step %d: BFS from %d diverged", name, step, u)
		}
	}
}

// swapFirstTwo returns a permutation of 0..deg-1 swapping the first
// two positions.
func swapFirstTwo(deg int) []int {
	perm := make([]int, deg)
	for i := range perm {
		perm[i] = i
	}
	if deg >= 2 {
		perm[0], perm[1] = perm[1], perm[0]
	}
	return perm
}

func TestMutateAfterFreezeMatchesNeverFrozen(t *testing.T) {
	base := gen.RandomConnected(40, 0.12, xrand.New(31))

	// Pick script victims deterministically from the base topology.
	var e1, e2 [2]graph.NodeID
	edges := base.Edges()
	e1 = edges[len(edges)/3]
	e2 = edges[2*len(edges)/3]
	var hub graph.NodeID
	for v := 0; v < base.Order(); v++ {
		if base.Degree(graph.NodeID(v)) > base.Degree(hub) {
			hub = graph.NodeID(v)
		}
	}

	script := []mutation{
		func(g *graph.Graph) { g.RemoveEdge(e1[0], e1[1]) },
		func(g *graph.Graph) { g.PermutePorts(hub, swapFirstTwo(g.Degree(hub))) },
		func(g *graph.Graph) { g.AddEdge(e1[0], e1[1]) }, // re-add: fills a new port slot, not the hole
		func(g *graph.Graph) { g.RemoveEdge(e2[0], e2[1]) },
		func(g *graph.Graph) {
			v := g.AddNode()
			g.AddEdge(hub, v)
		},
		func(g *graph.Graph) { g.RemoveVertex(e2[0]) },
	}
	applyScript(t, "mixed", base, script)
}

// TestRemoveEdgePortStability pins the port-stability contract on its
// own: removing an edge must not renumber any surviving port, before or
// after a re-Freeze.
func TestRemoveEdgePortStability(t *testing.T) {
	g := gen.Torus2D(5, 5)
	g.Freeze()
	type arcLabel struct {
		u graph.NodeID
		p graph.Port
		v graph.NodeID
	}
	var before []arcLabel
	victim := [2]graph.NodeID{0, g.Neighbor(0, 1)}
	for u := 0; u < g.Order(); u++ {
		ui := graph.NodeID(u)
		for i, w := range g.Arcs(ui) {
			if (ui == victim[0] && w == victim[1]) || (ui == victim[1] && w == victim[0]) {
				continue
			}
			before = append(before, arcLabel{ui, graph.Port(i + 1), w})
		}
	}
	g.RemoveEdge(victim[0], victim[1])
	g.Freeze()
	for _, a := range before {
		if got := g.Neighbor(a.u, a.p); got != a.v {
			t.Fatalf("port %d of %d moved: was ->%d, now ->%d", a.p, a.u, a.v, got)
		}
	}
	if g.Neighbor(victim[0], 1) != graph.DeadEnd {
		t.Fatalf("removed slot of %d is not a dead end", victim[0])
	}
	if g.LiveDegree(victim[0]) != g.Degree(victim[0])-1 {
		t.Fatalf("live degree %d, want %d", g.LiveDegree(victim[0]), g.Degree(victim[0])-1)
	}
}
