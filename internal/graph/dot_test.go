package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOTBasics(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, DOTOptions{Name: "demo", ShowPorts: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"graph demo {", "n0 -- n1", "taillabel", "}"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("DOT output missing %q:\n%s", frag, out)
		}
	}
	// Each edge appears exactly once.
	if strings.Count(out, " -- ") != 2 {
		t.Fatalf("expected 2 edges in DOT, got %d", strings.Count(out, " -- "))
	}
}

func TestWriteDOTCustomLabels(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	var buf bytes.Buffer
	err := g.WriteDOT(&buf, DOTOptions{
		NodeLabel: func(u NodeID) string { return "v" },
		NodeAttr:  func(u NodeID) string { return "shape=box" },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `label="v", shape=box`) {
		t.Fatalf("custom label/attr not rendered:\n%s", buf.String())
	}
}
