package shortest

import (
	"fmt"
	"math/bits"

	"repro/internal/graph"
)

// MSBFSWidth is the number of BFS sources one multi-source pass carries:
// one bit lane per source in a uint64 frontier/visited word.
const MSBFSWidth = 64

// Kernel selects HOW unweighted (hop-metric) distance rows are computed
// by the constructors that take one — never WHAT they contain: every
// kernel produces rows bit-identical to BFSInto, so the choice moves
// wall-clock time and per-reader residency, not a single number. The
// weighted metric has no batch kernel (Dijkstra rows are priority-queue
// driven and do not share scans), so weighted constructors reject
// KernelBatch explicitly instead of silently falling back.
type Kernel int

const (
	// KernelAuto picks the fastest kernel that preserves the
	// constructor's historical observable contract: batch for dense
	// all-pairs builds (a finished table's residency is n rows either
	// way), scalar for streaming readers (whose one-row-per-reader
	// residency contract is part of recorded experiment output; the
	// 64-row prefetch is opt-in via KernelBatch).
	KernelAuto Kernel = iota
	// KernelScalar computes one BFS row per source — the PR 3 kernel.
	KernelScalar
	// KernelBatch runs up to MSBFSWidth sources per pass through
	// MSBFSInto, sharing every arc scan across all active lanes.
	KernelBatch
)

// String names the kernel as the CLIs spell it.
func (k Kernel) String() string {
	switch k {
	case KernelScalar:
		return "scalar"
	case KernelBatch:
		return "batch"
	default:
		return "auto"
	}
}

// ParseKernel maps a -kernel flag value to a Kernel. Unknown values are
// an explicit error, never a silent fallback.
func ParseKernel(s string) (Kernel, error) {
	switch s {
	case "", "auto":
		return KernelAuto, nil
	case "scalar":
		return KernelScalar, nil
	case "batch":
		return KernelBatch, nil
	default:
		return KernelAuto, fmt.Errorf("shortest: unknown distance kernel %q (want auto, scalar or batch)", s)
	}
}

// validKernel reports whether k is one of the defined kernels; resolvers
// that receive a Kernel from outside ParseKernel check it so an
// out-of-range value becomes an error, not a panic deep in a worker.
func validKernel(k Kernel) bool {
	return k == KernelAuto || k == KernelScalar || k == KernelBatch
}

// MSBFSScratch is the caller-owned scratch of MSBFSInto: the per-vertex
// visited/frontier words and the frontier vertex lists, reused across
// batches so a worker claiming batch after batch runs with zero
// steady-state allocation (the same contract BFSInto gives its queue).
// The zero value is ready to use; it is NOT safe for concurrent use —
// one scratch per goroutine, like a BFS queue.
type MSBFSScratch struct {
	visited []uint64 // visited[v] bit i: lane i has reached v
	front   []uint64 // front[v] bit i: v is on lane i's current level
	next    []uint64 // next[v]: lanes discovering v this level
	// frontier/spill are the current and next level's vertex lists; a
	// vertex appears at most once per level (it is appended only when
	// its next word transitions 0 -> nonzero).
	frontier []graph.NodeID
	spill    []graph.NodeID
}

// reset grows the word arrays to cover n vertices and zeroes them.
func (s *MSBFSScratch) reset(n int) {
	if cap(s.visited) < n {
		s.visited = make([]uint64, n)
		s.front = make([]uint64, n)
		s.next = make([]uint64, n)
	}
	s.visited = s.visited[:n]
	s.front = s.front[:n]
	s.next = s.next[:n]
	for i := range s.visited {
		s.visited[i] = 0
		s.front[i] = 0
		s.next[i] = 0
	}
}

// MSBFSInto runs one BFS per source simultaneously, MSBFSWidth sources
// per pass: each vertex carries one uint64 frontier word and one visited
// word, bit i belonging to sources[off+i] of the current chunk, so a
// single scan of Arcs(u) advances every lane whose frontier holds u at
// once — the word-parallel simulation idiom (64 patterns per machine
// word) applied to the frozen CSR arc scan. Batches wider than
// MSBFSWidth are processed in chunks of MSBFSWidth; sources may repeat
// (duplicate lanes compute identical rows) and may be empty.
//
// The result is one contiguous block of per-source distance rows: row i
// occupies dist[i*n : (i+1)*n] and is bit-identical to
// BFSInto(g, sources[i]) element for element — Unreachable included.
// The bit-identity is by construction, not by tie-break luck: the
// traversal is level-synchronized, so lane i labels v with the first
// level at which any lane-i frontier vertex reaches v, which is
// d_G(sources[i], v) — a property of the graph, independent of the order
// arcs are scanned or lanes are popped from a word. (BFSInto's
// direction-optimizing switch cannot be observed in its distance vector
// for the same reason.)
//
// dist and scr follow the BFSInto scratch contract: reused when large
// enough, reallocated otherwise (scr may be nil), and both are returned
// so batch-claiming workers run allocation-free in steady state. Callers
// freeze the graph before fanning out, as with BFSInto.
//
//repolint:hotpath
func MSBFSInto(g *graph.Graph, sources []graph.NodeID, dist []int32, scr *MSBFSScratch) ([]int32, *MSBFSScratch) {
	n := g.Order()
	if scr == nil {
		scr = &MSBFSScratch{}
	}
	total := len(sources) * n
	if cap(dist) < total {
		dist = make([]int32, total)
	}
	dist = dist[:total]
	for i := range dist {
		dist[i] = Unreachable
	}
	for off := 0; off < len(sources); off += MSBFSWidth {
		width := len(sources) - off
		if width > MSBFSWidth {
			width = MSBFSWidth
		}
		msbfsChunk(g, sources[off:off+width], dist[off*n:(off+width)*n], scr)
	}
	return dist, scr
}

// msbfsChunk advances up to MSBFSWidth lanes over g, writing lane i's
// row into dist[i*n : (i+1)*n] (rows arrive pre-filled with Unreachable
// except for nothing — the 0 at each source is set here).
func msbfsChunk(g *graph.Graph, sources []graph.NodeID, dist []int32, scr *MSBFSScratch) {
	n := g.Order()
	scr.reset(n)
	visited, front, next := scr.visited, scr.front, scr.next
	frontier, spill := scr.frontier[:0], scr.spill[:0]
	for i, s := range sources {
		dist[i*n+int(s)] = 0
		bit := uint64(1) << uint(i)
		if front[s] == 0 {
			frontier = append(frontier, s)
		}
		front[s] |= bit
		visited[s] |= bit
	}
	for level := int32(1); len(frontier) > 0; level++ {
		spill = spill[:0]
		for _, u := range frontier {
			fu := front[u]
			for _, v := range g.Arcs(u) {
				if v < 0 {
					continue // dead slot left by a removed edge
				}
				d := fu &^ visited[v]
				if d == 0 {
					continue
				}
				visited[v] |= d
				if next[v] == 0 {
					spill = append(spill, v)
				}
				next[v] |= d
				for d != 0 {
					lane := bits.TrailingZeros64(d)
					d &= d - 1
					dist[lane*n+int(v)] = level
				}
			}
		}
		// Commit the level: clear the consumed frontier words first (a
		// vertex can sit on the current level for one lane and the next
		// level for another), then promote the newly discovered words.
		for _, u := range frontier {
			front[u] = 0
		}
		for _, v := range spill {
			front[v] = next[v]
			next[v] = 0
		}
		frontier, spill = spill, frontier
	}
	scr.frontier, scr.spill = frontier, spill // keep grown capacity
}
