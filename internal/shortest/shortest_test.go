package shortest

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/xrand"
)

func TestBFSPath(t *testing.T) {
	g := gen.Path(6)
	d := BFS(g, 0)
	for v := 0; v < 6; v++ {
		if d[v] != int32(v) {
			t.Fatalf("d(0,%d) = %d, want %d", v, d[v], v)
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	d := BFS(g, 0)
	if d[2] != Unreachable {
		t.Fatal("unreachable vertex got a finite distance")
	}
}

func TestBFSTreeParentPorts(t *testing.T) {
	g := gen.RandomConnected(40, 0.1, xrand.New(4))
	dist, parent := BFSTree(g, 0)
	for v := 1; v < g.Order(); v++ {
		// Following the parent port must decrease the distance by 1.
		u := g.Neighbor(graph.NodeID(v), parent[v])
		if dist[u] != dist[v]-1 {
			t.Fatalf("parent port at %d leads to distance %d, want %d", v, dist[u], dist[v]-1)
		}
	}
}

func TestAPSPSymmetryAndTriangle(t *testing.T) {
	check := func(seed uint64, nn uint8) bool {
		n := int(nn%30) + 2
		g := gen.RandomConnected(n, 0.15, xrand.New(seed))
		a := NewAPSP(g)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if a.Dist(graph.NodeID(u), graph.NodeID(v)) != a.Dist(graph.NodeID(v), graph.NodeID(u)) {
					return false
				}
				for w := 0; w < n; w++ {
					if a.Dist(graph.NodeID(u), graph.NodeID(v)) >
						a.Dist(graph.NodeID(u), graph.NodeID(w))+a.Dist(graph.NodeID(w), graph.NodeID(v)) {
						return false
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestAPSPAdjacency(t *testing.T) {
	g := gen.Petersen()
	a := NewAPSP(g)
	for u := 0; u < 10; u++ {
		for v := 0; v < 10; v++ {
			d := a.Dist(graph.NodeID(u), graph.NodeID(v))
			switch {
			case u == v && d != 0:
				t.Fatalf("d(%d,%d) = %d", u, v, d)
			case u != v && g.HasEdge(graph.NodeID(u), graph.NodeID(v)) && d != 1:
				t.Fatalf("adjacent pair at distance %d", d)
			case u != v && !g.HasEdge(graph.NodeID(u), graph.NodeID(v)) && d != 2:
				t.Fatalf("non-adjacent Petersen pair at distance %d", d)
			}
		}
	}
}

func TestDiameterAndEccentricity(t *testing.T) {
	g := gen.Path(7)
	a := NewAPSP(g)
	if a.Diameter() != 6 {
		t.Fatalf("path diameter %d, want 6", a.Diameter())
	}
	if a.Eccentricity(3) != 3 {
		t.Fatalf("middle eccentricity %d, want 3", a.Eccentricity(3))
	}
	if a.Eccentricity(0) != 6 {
		t.Fatalf("end eccentricity %d, want 6", a.Eccentricity(0))
	}
}

func TestConnectedFlag(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if NewAPSP(g).Connected() {
		t.Fatal("disconnected graph reported connected")
	}
}

func TestFirstArcsOnCycle(t *testing.T) {
	g := gen.Cycle(6)
	a := NewAPSP(g)
	// Antipodal pair: both directions are shortest.
	arcs := FirstArcs(g, a, 0, 3)
	if len(arcs) != 2 {
		t.Fatalf("antipodal pair has %d first arcs, want 2", len(arcs))
	}
	// Adjacent pair: unique.
	arcs = FirstArcs(g, a, 0, 1)
	if len(arcs) != 1 {
		t.Fatalf("adjacent pair has %d first arcs, want 1", len(arcs))
	}
}

func TestFeasibleFirstArcsWidens(t *testing.T) {
	g := gen.Cycle(8)
	a := NewAPSP(g)
	// 0 -> 2: shortest = 2, only one direction. With budget 6 the long way
	// round (length 6) also qualifies.
	tight := FeasibleFirstArcs(g, a, 0, 2, 2)
	loose := FeasibleFirstArcs(g, a, 0, 2, 6)
	if len(tight) != 1 {
		t.Fatalf("tight budget: %d arcs, want 1", len(tight))
	}
	if len(loose) != 2 {
		t.Fatalf("loose budget: %d arcs, want 2", len(loose))
	}
}

func TestForcedPortPetersenShortest(t *testing.T) {
	g := gen.Petersen()
	a := NewAPSP(g)
	for u := 0; u < 10; u++ {
		for v := 0; v < 10; v++ {
			if u == v {
				continue
			}
			p, ok := ForcedPort(g, a, graph.NodeID(u), graph.NodeID(v), 1.0)
			if !ok {
				t.Fatalf("Petersen pair (%d,%d) not forced at s=1", u, v)
			}
			w := g.Neighbor(graph.NodeID(u), p)
			if a.Dist(w, graph.NodeID(v))+1 != a.Dist(graph.NodeID(u), graph.NodeID(v)) {
				t.Fatalf("forced port does not shorten distance")
			}
		}
	}
}

func TestForcedPortVanishesAtHighStretch(t *testing.T) {
	g := gen.Petersen()
	a := NewAPSP(g)
	// At s = 3 every neighbor is within budget (diameter 2, budget >= 3 -
	// wait: budget = 3*d; for adjacent pairs budget 3, any neighbor is at
	// distance <= 3 of anything), so nothing is forced.
	forced := 0
	for u := 0; u < 10; u++ {
		for v := 0; v < 10; v++ {
			if u == v {
				continue
			}
			if _, ok := ForcedPort(g, a, graph.NodeID(u), graph.NodeID(v), 3.0); ok {
				forced++
			}
		}
	}
	if forced != 0 {
		t.Fatalf("%d pairs still forced at stretch 3 on Petersen", forced)
	}
}

func TestCountShortestPathsGrid(t *testing.T) {
	g := gen.Grid2D(3, 3)
	a := NewAPSP(g)
	// Corner to corner of a 3x3 grid: C(4,2) = 6 lattice paths.
	if c := CountShortestPaths(g, a, 0, 8, 1000); c != 6 {
		t.Fatalf("3x3 grid corner-to-corner shortest paths = %d, want 6", c)
	}
	if c := CountShortestPaths(g, a, 0, 0, 1000); c != 1 {
		t.Fatalf("trivial pair count = %d, want 1", c)
	}
}

func TestCountShortestPathsCap(t *testing.T) {
	g := gen.Grid2D(5, 5)
	a := NewAPSP(g)
	if c := CountShortestPaths(g, a, 0, 24, 3); c != 3 {
		t.Fatalf("cap not applied: got %d", c)
	}
}

// TestCountShortestPathsPetersen pins the Petersen path counts the
// Figure 1 experiment (E2) depends on: the Petersen graph is strongly
// regular srg(10,3,0,1) — adjacent vertices share no common neighbor,
// non-adjacent vertices share exactly one — so EVERY ordered pair has
// exactly one shortest path. This is the regression guard for the
// slice-memo rewrite of CountShortestPaths.
func TestCountShortestPathsPetersen(t *testing.T) {
	g := gen.Petersen()
	a := NewAPSP(g)
	for u := 0; u < 10; u++ {
		for v := 0; v < 10; v++ {
			got := CountShortestPaths(g, a, graph.NodeID(u), graph.NodeID(v), 1<<20)
			want := int64(1)
			if got != want {
				t.Fatalf("Petersen: %d shortest paths %d->%d, want %d", got, u, v, want)
			}
		}
	}
	// Contrast pin: C6 has exactly two shortest paths between antipodal
	// vertices, exercising the memo's accumulation across branches.
	c := gen.Cycle(6)
	ca := NewAPSP(c)
	if got := CountShortestPaths(c, ca, 0, 3, 1<<20); got != 2 {
		t.Fatalf("C6: %d shortest paths 0->3, want 2", got)
	}
}

// TestBFSTreeIntoMatchesBFSTree pins the wrapper contract: BFSTree and
// BFSTreeInto (with and without reused scratch) produce identical
// vectors, and the parent ports follow the canonical lowest-port
// tie-break of FirstArcs.
func TestBFSTreeIntoMatchesBFSTree(t *testing.T) {
	g := gen.RandomConnected(60, 0.1, xrand.New(7))
	a := NewAPSP(g)
	var dist []int32
	var parent []graph.Port
	var queue []graph.NodeID
	for src := 0; src < g.Order(); src += 7 {
		wd, wp := BFSTree(g, graph.NodeID(src))
		dist, parent, queue = BFSTreeInto(g, graph.NodeID(src), dist, parent, queue)
		for v := 0; v < g.Order(); v++ {
			if dist[v] != wd[v] || parent[v] != wp[v] {
				t.Fatalf("src %d vertex %d: Into (%d,%d) vs BFSTree (%d,%d)",
					src, v, dist[v], parent[v], wd[v], wp[v])
			}
			if v == src {
				if parent[v] != graph.NoPort {
					t.Fatalf("src %d: root has parent port %d", src, parent[v])
				}
				continue
			}
			arcs := FirstArcs(g, a, graph.NodeID(v), graph.NodeID(src))
			if len(arcs) == 0 || parent[v] != arcs[0] {
				t.Fatalf("src %d vertex %d: parent %d is not the lowest first arc %v",
					src, v, parent[v], arcs)
			}
		}
	}
}

func TestShortestPathValid(t *testing.T) {
	check := func(seed uint64, nn uint8) bool {
		n := int(nn%25) + 2
		g := gen.RandomConnected(n, 0.2, xrand.New(seed))
		a := NewAPSP(g)
		r := xrand.New(seed + 1)
		u := graph.NodeID(r.Intn(n))
		v := graph.NodeID(r.Intn(n))
		path := ShortestPath(g, a, u, v)
		if len(path) == 0 || path[0] != u || path[len(path)-1] != v {
			return false
		}
		if int32(len(path)-1) != a.Dist(u, v) {
			return false
		}
		for i := 0; i+1 < len(path); i++ {
			if !g.HasEdge(path[i], path[i+1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBFSMatchesAPSP(t *testing.T) {
	g := gen.Hypercube(5)
	a := NewAPSP(g)
	for u := 0; u < g.Order(); u++ {
		d := BFS(g, graph.NodeID(u))
		for v := 0; v < g.Order(); v++ {
			if d[v] != a.Dist(graph.NodeID(u), graph.NodeID(v)) {
				t.Fatalf("BFS/APSP mismatch at (%d,%d)", u, v)
			}
		}
	}
}

func TestHypercubeDistanceIsHamming(t *testing.T) {
	g := gen.Hypercube(4)
	a := NewAPSP(g)
	for u := 0; u < 16; u++ {
		for v := 0; v < 16; v++ {
			ham := int32(0)
			for x := u ^ v; x > 0; x &= x - 1 {
				ham++
			}
			if a.Dist(graph.NodeID(u), graph.NodeID(v)) != ham {
				t.Fatalf("hypercube distance (%d,%d) != Hamming", u, v)
			}
		}
	}
}
