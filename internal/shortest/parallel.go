package shortest

import (
	"runtime"
	"sync"

	"repro/internal/graph"
)

// NewAPSPParallel computes the all-pairs table with a pool of workers,
// one BFS per source. Rows are independent, so the computation is
// embarrassingly parallel; on the multi-thousand-vertex Theorem 1
// instances this is the dominant preprocessing cost and scales close to
// linearly with cores. workers <= 0 selects GOMAXPROCS.
//
// The result is bit-identical to NewAPSP (BFS is deterministic per
// source and rows do not interact). The row-sharded decomposition here is
// the template for the all-pairs routing evaluator in internal/evaluate,
// which extends it with mergeable accumulators for quantities that are
// not per-row independent (means, maxima, histograms).
func NewAPSPParallel(g *graph.Graph, workers int) *APSP {
	n := g.Order()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	a := &APSP{n: n, dist: make([][]int32, n)}
	if n == 0 {
		return a
	}
	src := make(chan int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range src {
				a.dist[u] = BFS(g, graph.NodeID(u))
			}
		}()
	}
	for u := 0; u < n; u++ {
		src <- u
	}
	close(src)
	wg.Wait()
	return a
}
