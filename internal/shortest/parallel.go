package shortest

import (
	"runtime"
	"sync"

	"repro/internal/graph"
)

// NewAPSPParallel computes the all-pairs table with a pool of workers,
// one BFS per source. Rows are independent, so the computation is
// embarrassingly parallel; on the multi-thousand-vertex Theorem 1
// instances this is the dominant preprocessing cost and scales close to
// linearly with cores. workers <= 0 selects GOMAXPROCS.
//
// The graph is frozen to its CSR layout before the pool fans out, every
// row is carved out of one contiguous n×n block (so the finished table
// is row-major contiguous, like the rows the streaming backends hand
// out), and each worker reuses its BFS queue across the rows it claims.
//
// The result is bit-identical to NewAPSP (BFS is deterministic per
// source and rows do not interact). The row-sharded decomposition here is
// the template for the all-pairs routing evaluator in internal/evaluate,
// which extends it with mergeable accumulators for quantities that are
// not per-row independent (means, maxima, histograms).
func NewAPSPParallel(g *graph.Graph, workers int) *APSP {
	g.Freeze()
	n := g.Order()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	a := &APSP{n: n, dist: make([][]int32, n)}
	if n == 0 {
		return a
	}
	block := make([]int32, n*n)
	src := make(chan int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var queue []graph.NodeID
			for u := range src {
				row := block[u*n : (u+1)*n : (u+1)*n]
				a.dist[u], queue = BFSInto(g, graph.NodeID(u), row, queue)
			}
		}()
	}
	for u := 0; u < n; u++ {
		src <- u
	}
	close(src)
	wg.Wait()
	return a
}
