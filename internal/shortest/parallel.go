package shortest

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/graph"
)

// APSPOptions configures an all-pairs table build.
type APSPOptions struct {
	// Workers sizes the worker pool; <= 0 selects GOMAXPROCS.
	Workers int
	// Kernel selects the row kernel: KernelScalar runs one BFS per
	// source, KernelBatch claims MSBFSWidth-source batches through the
	// word-parallel MSBFSInto, and KernelAuto resolves to batch (a
	// finished table is kernel-blind: rows are bit-identical either
	// way, so auto takes the shared-arc-scan win).
	Kernel Kernel
}

// NewAPSPParallel computes the all-pairs table with a pool of workers.
// Rows are independent, so the computation is embarrassingly parallel;
// on the multi-thousand-vertex Theorem 1 instances this is the dominant
// preprocessing cost. workers <= 0 selects GOMAXPROCS. It is
// NewAPSPWith with the auto kernel: workers claim MSBFSWidth-source
// batches and advance all lanes of a batch through one shared scan of
// each frontier vertex's arcs, instead of one BFS per claimed row.
//
// The result is bit-identical to NewAPSP (each row is the BFS distance
// vector of its source and rows do not interact — see MSBFSInto for why
// the batched rows cannot differ). The row-sharded decomposition here is
// the template for the all-pairs routing evaluator in internal/evaluate,
// which extends it with mergeable accumulators for quantities that are
// not per-row independent (means, maxima, histograms).
func NewAPSPParallel(g *graph.Graph, workers int) *APSP {
	return NewAPSPWith(g, APSPOptions{Workers: workers})
}

// NewAPSPWith computes the all-pairs table with an explicit worker
// budget and row kernel, so the scalar and batched paths coexist and
// stay individually testable. The graph is frozen to its CSR layout
// before the pool fans out, every row is carved out of one contiguous
// n×n block (so the finished table is row-major contiguous, like the
// rows the streaming backends hand out), and each worker reuses its
// traversal scratch — BFS queue or MS-BFS word arrays — across the
// claims it wins. Whatever the kernel and worker count, the finished
// table is bit-identical to NewAPSP's. An out-of-range kernel panics:
// flag strings are gated by ParseKernel, so a bad value here is a
// programming error, like an invalid port on Graph.Neighbor.
func NewAPSPWith(g *graph.Graph, opt APSPOptions) *APSP {
	if !validKernel(opt.Kernel) {
		panic(fmt.Sprintf("shortest: unknown kernel %d", int(opt.Kernel)))
	}
	g.Freeze()
	n := g.Order()
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	a := &APSP{n: n, dist: make([][]int32, n)}
	if n == 0 {
		return a
	}
	block := make([]int32, n*n)
	for u := 0; u < n; u++ {
		a.dist[u] = block[u*n : (u+1)*n : (u+1)*n]
	}
	claim := 1
	if opt.Kernel != KernelScalar {
		claim = MSBFSWidth
	}
	claims := (n + claim - 1) / claim
	if workers > claims {
		workers = claims
	}
	src := make(chan int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if claim == 1 {
				var queue []graph.NodeID
				for u := range src {
					// The row slice is large enough, so BFSInto fills
					// it in place; the returns are the same headers.
					_, queue = BFSInto(g, graph.NodeID(u), a.dist[u], queue)
				}
				return
			}
			scr := &MSBFSScratch{}
			srcs := make([]graph.NodeID, 0, claim)
			for start := range src {
				end := start + claim
				if end > n {
					end = n
				}
				srcs = srcs[:0]
				for u := start; u < end; u++ {
					srcs = append(srcs, graph.NodeID(u))
				}
				MSBFSInto(g, srcs, block[start*n:end*n:end*n], scr)
			}
		}()
	}
	for u := 0; u < n; u += claim {
		src <- u
	}
	close(src)
	wg.Wait()
	return a
}
