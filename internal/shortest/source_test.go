package shortest

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/graph"
)

// sourceTestGraph is a small connected graph with a nontrivial distance
// profile: a 3x3 grid with one chord.
func sourceTestGraph() *graph.Graph {
	g := graph.New(9)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			v := graph.NodeID(3*r + c)
			if c < 2 {
				g.AddEdge(v, v+1)
			}
			if r < 2 {
				g.AddEdge(v, v+3)
			}
		}
	}
	g.AddEdge(0, 8)
	return g
}

// TestSourcesAgreeWithBFS pins the backend contract: every source's
// every row equals the plain BFS row, for repeated and interleaved
// requests.
func TestSourcesAgreeWithBFS(t *testing.T) {
	g := sourceTestGraph()
	n := g.Order()
	want := make([][]int32, n)
	for v := 0; v < n; v++ {
		want[v] = BFS(g, graph.NodeID(v))
	}
	sources := map[string]DistanceSource{
		"dense":   NewAPSP(g),
		"stream":  NewStreamSource(g),
		"cache":   NewCacheSource(g, 3), // smaller than n: forces evictions
		"cache-1": NewCacheSource(g, 1),
	}
	for name, src := range sources {
		if src.Order() != n {
			t.Fatalf("%s: order %d, want %d", name, src.Order(), n)
		}
		rd := src.NewReader()
		// Interleave rows so stream scratch reuse and cache eviction both
		// exercise; ask some rows twice in a row (the memoized path).
		for _, v := range []int{0, 5, 5, 8, 0, 3, 3, 1, 7, 0} {
			got := rd.Row(graph.NodeID(v))
			if !reflect.DeepEqual(got, want[v]) {
				t.Fatalf("%s: row %d = %v, want %v", name, v, got, want[v])
			}
		}
	}
}

// TestWeightedSourcesAgreeWithDijkstra pins the weighted backend
// contract: every weighted source's every row equals the plain Dijkstra
// row under the same weights, for repeated and interleaved requests —
// the weighted mirror of TestSourcesAgreeWithBFS.
func TestWeightedSourcesAgreeWithDijkstra(t *testing.T) {
	g := sourceTestGraph()
	n := g.Order()
	w := UniformWeights(g)
	// Perturb a few edges so weighted rows genuinely differ from BFS rows.
	for _, e := range [][2]graph.NodeID{{0, 1}, {4, 5}, {0, 8}} {
		p := g.PortTo(e[0], e[1])
		w[e[0]][p-1] = 7
		w[e[1]][g.BackPort(e[0], p)-1] = 7
	}
	want := make([][]int32, n)
	for v := 0; v < n; v++ {
		want[v] = Dijkstra(g, w, graph.NodeID(v))
	}
	dense, err := NewWeightedAPSP(g, w)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := NewWeightedStreamSource(g, w)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := NewWeightedCacheSource(g, w, 3) // smaller than n: forces evictions
	if err != nil {
		t.Fatal(err)
	}
	sources := map[string]DistanceSource{"dense": dense, "stream": stream, "cache": cache}
	for name, src := range sources {
		if src.Order() != n {
			t.Fatalf("%s: order %d, want %d", name, src.Order(), n)
		}
		rd := src.NewReader()
		for _, v := range []int{0, 5, 5, 8, 0, 3, 3, 1, 7, 0} {
			got := rd.Row(graph.NodeID(v))
			if !reflect.DeepEqual(got, want[v]) {
				t.Fatalf("%s: row %d = %v, want %v", name, v, got, want[v])
			}
		}
	}
	// Residency hints follow the same contracts as the unweighted sources.
	if got := stream.ResidentRows(4); got != 4 {
		t.Fatalf("weighted stream hint %d, want 4", got)
	}
	if got := cache.ResidentRows(2); got != 5 {
		t.Fatalf("weighted cache hint %d, want cap+workers=5", got)
	}
}

// TestWeightedSourcesRejectMalformedWeights checks validation happens at
// construction — before any reader can trip over a bad assignment.
func TestWeightedSourcesRejectMalformedWeights(t *testing.T) {
	g := sourceTestGraph()
	bad := UniformWeights(g)
	bad[2] = bad[2][:1]
	if _, err := NewWeightedStreamSource(g, bad); err == nil {
		t.Fatal("stream source accepted malformed weights")
	}
	if _, err := NewWeightedCacheSource(g, bad, 4); err == nil {
		t.Fatal("cache source accepted malformed weights")
	}
}

// TestCacheEvicts checks the LRU actually bounds resident rows.
func TestCacheEvicts(t *testing.T) {
	g := sourceTestGraph()
	c := NewCacheSource(g, 2)
	rd := c.NewReader()
	for v := 0; v < g.Order(); v++ {
		rd.Row(graph.NodeID(v))
	}
	c.mu.Lock()
	resident := len(c.rows)
	listLen := c.lru.Len()
	c.mu.Unlock()
	if resident != 2 || listLen != 2 {
		t.Fatalf("cache holds %d rows (list %d), capacity 2", resident, listLen)
	}
	if c.Capacity() != 2 {
		t.Fatalf("Capacity() = %d", c.Capacity())
	}
}

// TestCacheDefaultCapacity checks the <= 0 fallback.
func TestCacheDefaultCapacity(t *testing.T) {
	if got := NewCacheSource(sourceTestGraph(), 0).Capacity(); got != DefaultCacheRows {
		t.Fatalf("default capacity %d, want %d", got, DefaultCacheRows)
	}
}

// TestCacheConcurrentReaders hammers one shared cache from many
// goroutines (run under -race by CI) and checks every returned row.
func TestCacheConcurrentReaders(t *testing.T) {
	g := sourceTestGraph()
	n := g.Order()
	want := make([][]int32, n)
	for v := 0; v < n; v++ {
		want[v] = BFS(g, graph.NodeID(v))
	}
	c := NewCacheSource(g, 2)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rd := c.NewReader()
			for i := 0; i < 200; i++ {
				v := (i*7 + w) % n
				if !reflect.DeepEqual(rd.Row(graph.NodeID(v)), want[v]) {
					errs <- "row mismatch under concurrency"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestResidentRowsHints pins the bulk memory hints each backend reports.
func TestResidentRowsHints(t *testing.T) {
	g := sourceTestGraph() // n = 9
	if got := NewAPSP(g).ResidentRows(4); got != 9 {
		t.Fatalf("dense hint %d, want n=9", got)
	}
	if got := NewStreamSource(g).ResidentRows(4); got != 4 {
		t.Fatalf("stream hint %d, want workers=4", got)
	}
	if got := NewStreamSource(g).ResidentRows(64); got != 9 {
		t.Fatalf("stream hint %d, want clamp to n=9", got)
	}
	if got := NewCacheSource(g, 3).ResidentRows(2); got != 5 {
		t.Fatalf("cache hint %d, want cap+workers=5", got)
	}
	if got := NewCacheSource(g, 100).ResidentRows(4); got != 9 {
		t.Fatalf("cache hint %d, want clamp to n=9", got)
	}
	// The explicit scalar kernel is the same source as NewStreamSource —
	// same hints, and RowBatch advertises single-row claims.
	scalar, err := NewStreamSourceKernel(g, KernelScalar)
	if err != nil {
		t.Fatal(err)
	}
	if got := scalar.ResidentRows(4); got != 4 {
		t.Fatalf("scalar-kernel stream hint %d, want workers=4", got)
	}
	if scalar.RowBatch() != 1 {
		t.Fatalf("scalar stream RowBatch() = %d, want 1", scalar.RowBatch())
	}
}

// TestBatchedStreamResidentRows pins the batched kernel's resident-row
// accounting: each reader holds one 64-row prefetch block, so the hint
// is workers×64, capped by the number of blocks that exist and by n —
// this is what keeps memreq's beyond-RAM claims honest when -kernel
// batch multiplies per-reader residency.
func TestBatchedStreamResidentRows(t *testing.T) {
	big := graph.New(200) // 4 blocks: 64+64+64+8
	for v := 0; v < 199; v++ {
		big.AddEdge(graph.NodeID(v), graph.NodeID(v+1))
	}
	src, err := NewStreamSourceKernel(big, KernelBatch)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ workers, want int }{
		{1, 64},   // one reader, one block
		{2, 128},  // two blocks
		{3, 192},  // three blocks
		{4, 200},  // 4*64 = 256 capped at n
		{64, 200}, // more workers than blocks: every row could be resident
	} {
		if got := src.ResidentRows(tc.workers); got != tc.want {
			t.Fatalf("batched stream ResidentRows(%d) = %d, want %d", tc.workers, got, tc.want)
		}
	}
	// Small graphs: a single ragged block, never more than n.
	small, err := NewStreamSourceKernel(sourceTestGraph(), KernelBatch) // n = 9
	if err != nil {
		t.Fatal(err)
	}
	if got := small.ResidentRows(4); got != 9 {
		t.Fatalf("batched stream ResidentRows(4) on n=9 = %d, want 9", got)
	}
	if got := small.ResidentRows(1); got != 9 {
		t.Fatalf("batched stream ResidentRows(1) on n=9 = %d, want 9", got)
	}
}

// TestBFSIntoReusesScratch checks the zero-allocation steady state the
// streaming reader depends on: buffers big enough are reused in place.
func TestBFSIntoReusesScratch(t *testing.T) {
	g := sourceTestGraph()
	dist, queue := BFSInto(g, 0, nil, nil)
	d2, q2 := BFSInto(g, 4, dist, queue)
	if &d2[0] != &dist[0] || &q2[0] != &queue[:1][0] {
		t.Fatal("BFSInto reallocated buffers that were large enough")
	}
	if !reflect.DeepEqual(d2, BFS(g, 4)) {
		t.Fatal("reused-scratch row differs from fresh BFS")
	}
}
