package shortest

import (
	"container/list"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/graph"
)

// DistanceSource abstracts WHERE exact distance rows come from — a dense
// precomputed table, per-row recomputation, or a bounded row cache —
// without changing WHAT a measurement sees: every backend returns
// bit-identical rows (a row is a pure function of graph, metric and
// source — BFS for the hop metric, Dijkstra under a weight assignment
// for the weighted one), so any report built on one backend is
// bit-identical to the same report built on any other. This is what lets
// the all-pairs evaluator in internal/evaluate trade the O(n²) table for
// O(workers·n) resident rows on graphs past RAM while keeping the
// EXPERIMENTS.md determinism contract intact, in both metrics.
type DistanceSource interface {
	// Order is the number of vertices covered by the source.
	Order() int
	// NewReader returns a row handle for one goroutine. Readers are NOT
	// safe for concurrent use — a worker pool takes one reader per
	// worker — but NewReader itself and the source behind the readers
	// are.
	NewReader() RowReader
	// ResidentRows is the bulk memory hint: an upper bound on how many
	// n-entry int32 rows the source keeps resident when read by the
	// given number of concurrent readers (workers <= 0 selects
	// GOMAXPROCS). Dense tables answer n regardless of workers;
	// streaming answers one row per worker; caches answer their
	// capacity plus in-flight rows.
	ResidentRows(workers int) int
}

// RowReader yields distance rows for one goroutine.
type RowReader interface {
	// Row returns the distance vector from src: row[v] = d_G(src, v),
	// Unreachable for vertices in other components. The slice is
	// read-only and only valid until the next Row call on the same
	// reader. Consecutive calls with the same src are cheap on every
	// backend, which is the access pattern of row-major pair evaluation.
	Row(src graph.NodeID) []int32
}

// RowBatcher is optionally implemented by sources whose readers compute
// an ALIGNED block of consecutive rows per claim: a Row(src) miss
// materializes rows [src - src%RowBatch(), …) in one pass, and further
// Row calls inside that block are free. Row-claiming loops (the
// evaluator's worker pool) check for it and claim RowBatch-aligned
// row chunks instead of single rows, so one worker's claims line up
// with its reader's prefetch blocks and no block is computed twice.
// RowBatch is 1 for pure per-row sources.
type RowBatcher interface {
	RowBatch() int
}

func normWorkers(workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// --- dense backend: the precomputed APSP table ---

// NewReader implements DistanceSource: the table itself already satisfies
// RowReader (Row is an index into the dense table), and concurrent reads
// of an immutable table are safe, so every reader is the table.
func (a *APSP) NewReader() RowReader { return a }

// ResidentRows implements DistanceSource: a dense table keeps all n rows
// resident whatever the worker count.
func (a *APSP) ResidentRows(workers int) int { return a.n }

var _ DistanceSource = (*APSP)(nil)
var _ RowReader = (*APSP)(nil)

// --- row kernels: the metric behind a streaming or cached source ---

// RowFunc computes the distance row from src into dist — reusing dist
// when it is large enough, allocating a fresh row otherwise (dist may be
// nil) — and returns the row. A RowFunc owns whatever traversal scratch
// it carries across calls, so it is NOT safe for concurrent use; sources
// create one per reader via a rowKernel factory.
type RowFunc func(src graph.NodeID, dist []int32) []int32

// rowKernel is what parameterizes the generic streaming/caching sources
// by metric: the unweighted kernel recomputes rows by BFS, the weighted
// one by Dijkstra under a validated weight assignment. Both are pure
// per-row functions of (graph[, weights], source), which is exactly the
// property the backend bit-identity contract rests on.
type rowKernel func() RowFunc

// bfsKernel returns a factory of BFS row functions over g, each owning
// its queue scratch.
func bfsKernel(g *graph.Graph) rowKernel {
	return func() RowFunc {
		var queue []graph.NodeID
		return func(src graph.NodeID, dist []int32) []int32 {
			dist, queue = BFSInto(g, src, dist, queue)
			return dist
		}
	}
}

// dijkstraKernel returns a factory of Dijkstra row functions over (g, w),
// each owning its heap scratch.
func dijkstraKernel(g *graph.Graph, w Weights) rowKernel {
	return func() RowFunc {
		var pq DijkstraHeap
		return func(src graph.NodeID, dist []int32) []int32 {
			dist, pq = DijkstraInto(g, w, src, dist, pq)
			return dist
		}
	}
}

// --- streaming backend: per-reader on-demand row recomputation ---

// StreamSource recomputes each requested row into per-reader scratch
// buffers: distance memory is one row per reader — O(workers·n) under a
// worker pool — instead of O(n²), at the cost of one traversal per
// (reader, row) visit. Exhaustive and sampled row-major evaluation visit
// each row once per claiming worker, so the total traversal work is the
// same n rows a dense table pays up front. The kernel is BFS under
// NewStreamSource and Dijkstra under NewWeightedStreamSource; everything
// else — residency, reader discipline, determinism — is metric-blind.
type StreamSource struct {
	n      int
	batch  int          // rows a reader computes per aligned claim (1 = scalar)
	kernel rowKernel    // per-row path (batch == 1)
	g      *graph.Graph // batch path (batch > 1): MSBFSInto reads the CSR directly
}

// NewStreamSource returns a streaming source of BFS (hop metric) rows
// over g, one row per claim — the scalar kernel, whose one resident row
// per reader contract is part of recorded experiment output. The graph
// is frozen to its CSR layout here — the last serial point before
// readers fan out across workers — so every per-row traversal walks
// contiguous arcs. NewStreamSourceKernel opts into the batched kernel.
func NewStreamSource(g *graph.Graph) *StreamSource {
	g.Freeze()
	return &StreamSource{n: g.Order(), batch: 1, kernel: bfsKernel(g)}
}

// NewStreamSourceKernel is NewStreamSource with an explicit row kernel.
// KernelBatch readers prefetch one MSBFSWidth-aligned block of rows per
// claimed source — Row(src) computes rows [src-src%64, …) in one
// word-parallel pass and serves the rest of the block for free — which
// multiplies per-reader residency by the block width (see ResidentRows)
// in exchange for amortizing every arc scan across up to 64 rows.
// KernelAuto and KernelScalar select the per-row source unchanged; an
// unknown kernel is an explicit error, never a silent fallback.
func NewStreamSourceKernel(g *graph.Graph, k Kernel) (*StreamSource, error) {
	switch k {
	case KernelAuto, KernelScalar:
		return NewStreamSource(g), nil
	case KernelBatch:
		g.Freeze()
		return &StreamSource{n: g.Order(), batch: MSBFSWidth, g: g}, nil
	default:
		return nil, fmt.Errorf("shortest: unknown kernel %d", int(k))
	}
}

// NewWeightedStreamSource returns a streaming source of Dijkstra rows
// under w — the weighted metric with the same O(workers·n) residency
// contract as NewStreamSource. Weights are validated here, the one
// serial point, so readers never see a malformed assignment.
func NewWeightedStreamSource(g *graph.Graph, w Weights) (*StreamSource, error) {
	if err := w.Validate(g); err != nil {
		return nil, err
	}
	g.Freeze()
	return &StreamSource{n: g.Order(), batch: 1, kernel: dijkstraKernel(g, w)}, nil
}

// Order implements DistanceSource.
func (s *StreamSource) Order() int { return s.n }

// RowBatch implements RowBatcher: the number of consecutive rows a
// reader materializes per aligned claim — MSBFSWidth for the batched
// kernel, 1 for the scalar and weighted kernels.
func (s *StreamSource) RowBatch() int { return s.batch }

// NewReader implements DistanceSource.
func (s *StreamSource) NewReader() RowReader {
	if s.batch > 1 {
		return &msbfsReader{g: s.g, n: s.n, batch: s.batch, start: -1}
	}
	return &streamReader{compute: s.kernel()}
}

// ResidentRows implements DistanceSource: each reader keeps one aligned
// block of RowBatch rows resident (one row under the scalar kernels), so
// the bound is workers × RowBatch, capped by the number of blocks that
// exist and by n. For batch == 1 this reduces to the historical
// one-row-per-worker bound exactly; the batched kernel's honest answer
// is 64 rows per worker — memreq's beyond-RAM accounting reports what a
// run will actually hold resident.
func (s *StreamSource) ResidentRows(workers int) int {
	w := normWorkers(workers)
	blocks := 0
	if s.batch > 0 {
		blocks = (s.n + s.batch - 1) / s.batch
	}
	if w > blocks {
		w = blocks
	}
	r := w * s.batch
	if r > s.n {
		r = s.n
	}
	return r
}

// msbfsReader is the batched streaming reader: one MSBFSWidth-aligned
// block of rows resident at a time, computed by a single word-parallel
// pass and carved from one contiguous block buffer. Rows of the resident
// block stay valid until a Row call outside it — a superset of the
// RowReader validity contract.
type msbfsReader struct {
	g     *graph.Graph
	n     int
	batch int
	start int // first row of the resident block; -1 = none
	width int // rows in the resident block
	block []int32
	scr   *MSBFSScratch
	srcs  []graph.NodeID
}

func (r *msbfsReader) Row(src graph.NodeID) []int32 {
	s := int(src)
	if r.start >= 0 && s >= r.start && s < r.start+r.width {
		i := s - r.start
		return r.block[i*r.n : (i+1)*r.n]
	}
	start := s - s%r.batch
	width := r.batch
	if start+width > r.n {
		width = r.n - start
	}
	r.srcs = r.srcs[:0]
	for u := start; u < start+width; u++ {
		r.srcs = append(r.srcs, graph.NodeID(u))
	}
	r.block, r.scr = MSBFSInto(r.g, r.srcs, r.block, r.scr)
	r.start, r.width = start, width
	i := s - start
	return r.block[i*r.n : (i+1)*r.n]
}

type streamReader struct {
	compute RowFunc
	src     graph.NodeID
	valid   bool
	dist    []int32
}

func (r *streamReader) Row(src graph.NodeID) []int32 {
	if r.valid && r.src == src {
		return r.dist
	}
	r.dist = r.compute(src, r.dist)
	r.src, r.valid = src, true
	return r.dist
}

var _ DistanceSource = (*StreamSource)(nil)

// --- cached backend: a bounded LRU of rows ---

// CacheSource keeps the most recently used distance rows in a bounded
// LRU shared by all readers. It targets sampled evaluation and workloads
// that revisit rows (repeated measurements, locality-heavy pair sets):
// resident distance memory is min(capacity, n) rows plus the rows being
// computed, and — like every backend — the rows it returns are
// bit-identical to a dense table's, so cache hits and evictions can never
// change a report, only its speed. Like StreamSource, the row kernel is
// BFS under NewCacheSource and Dijkstra under NewWeightedCacheSource.
type CacheSource struct {
	n      int
	cap    int
	kernel rowKernel

	mu   sync.Mutex
	rows map[graph.NodeID]*list.Element
	lru  *list.List // front = most recently used
}

type cacheRow struct {
	src graph.NodeID
	row []int32
}

// DefaultCacheRows is the row capacity NewCacheSource uses when the
// caller passes capacity <= 0.
const DefaultCacheRows = 64

// NewCacheSource returns a cached source of BFS (hop metric) rows over g
// holding at most capacity rows (capacity <= 0 selects DefaultCacheRows).
func NewCacheSource(g *graph.Graph, capacity int) *CacheSource {
	g.Freeze()
	return newCacheSource(g.Order(), capacity, bfsKernel(g))
}

// NewWeightedCacheSource returns a cached source of Dijkstra rows under
// w, with the same LRU residency contract as NewCacheSource. Weights are
// validated here, before any reader exists.
func NewWeightedCacheSource(g *graph.Graph, w Weights, capacity int) (*CacheSource, error) {
	if err := w.Validate(g); err != nil {
		return nil, err
	}
	g.Freeze()
	return newCacheSource(g.Order(), capacity, dijkstraKernel(g, w)), nil
}

func newCacheSource(n, capacity int, k rowKernel) *CacheSource {
	if capacity <= 0 {
		capacity = DefaultCacheRows
	}
	return &CacheSource{
		n:      n,
		cap:    capacity,
		kernel: k,
		rows:   make(map[graph.NodeID]*list.Element, capacity),
		lru:    list.New(),
	}
}

// Order implements DistanceSource.
func (c *CacheSource) Order() int { return c.n }

// Capacity returns the row capacity.
func (c *CacheSource) Capacity() int { return c.cap }

// NewReader implements DistanceSource. Readers share the cache; each
// keeps a reference to its current row, so a row evicted while still in
// use stays alive for that reader (rows are immutable once computed).
// Each reader also owns its compute kernel, so misses recompute with
// per-reader scratch and never contend on anything but the LRU lock.
func (c *CacheSource) NewReader() RowReader { return &cacheReader{c: c, compute: c.kernel()} }

// ResidentRows implements DistanceSource: the capacity plus up to one
// in-flight row per reader, never more than n.
func (c *CacheSource) ResidentRows(workers int) int {
	r := c.cap + normWorkers(workers)
	if r > c.n {
		r = c.n
	}
	return r
}

// row returns the cached row for src, computing it with the calling
// reader's kernel and inserting it on a miss. The traversal runs outside
// the lock so misses on different rows proceed in parallel; when two
// readers miss the same row concurrently, the second insert wins and the
// first row lives on with its reader — both slices hold identical values.
func (c *CacheSource) row(src graph.NodeID, compute RowFunc) []int32 {
	c.mu.Lock()
	if e, ok := c.rows[src]; ok {
		c.lru.MoveToFront(e)
		row := e.Value.(*cacheRow).row
		c.mu.Unlock()
		return row
	}
	c.mu.Unlock()

	// nil dist: cached rows are retained and immutable, so each miss must
	// materialize a fresh row (the kernel's internal scratch still reuses).
	row := compute(src, nil)

	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.rows[src]; ok { // lost the race: adopt the winner
		c.lru.MoveToFront(e)
		return e.Value.(*cacheRow).row
	}
	for c.lru.Len() >= c.cap {
		old := c.lru.Back()
		c.lru.Remove(old)
		delete(c.rows, old.Value.(*cacheRow).src)
	}
	c.rows[src] = c.lru.PushFront(&cacheRow{src: src, row: row})
	return row
}

type cacheReader struct {
	c       *CacheSource
	compute RowFunc
	src     graph.NodeID
	valid   bool
	row     []int32
}

func (r *cacheReader) Row(src graph.NodeID) []int32 {
	if r.valid && r.src == src {
		return r.row
	}
	r.row = r.c.row(src, r.compute)
	r.src, r.valid = src, true
	return r.row
}

var _ DistanceSource = (*CacheSource)(nil)
