package shortest

import (
	"container/list"
	"runtime"
	"sync"

	"repro/internal/graph"
)

// DistanceSource abstracts WHERE exact distance rows come from — a dense
// precomputed table, per-row BFS recomputation, or a bounded row cache —
// without changing WHAT a measurement sees: every backend returns
// bit-identical rows (BFS is deterministic), so any report built on one
// backend is bit-identical to the same report built on any other. This is
// what lets the all-pairs evaluator in internal/evaluate trade the O(n²)
// table for O(workers·n) resident rows on graphs past RAM while keeping
// the EXPERIMENTS.md determinism contract intact.
type DistanceSource interface {
	// Order is the number of vertices covered by the source.
	Order() int
	// NewReader returns a row handle for one goroutine. Readers are NOT
	// safe for concurrent use — a worker pool takes one reader per
	// worker — but NewReader itself and the source behind the readers
	// are.
	NewReader() RowReader
	// ResidentRows is the bulk memory hint: an upper bound on how many
	// n-entry int32 rows the source keeps resident when read by the
	// given number of concurrent readers (workers <= 0 selects
	// GOMAXPROCS). Dense tables answer n regardless of workers;
	// streaming answers one row per worker; caches answer their
	// capacity plus in-flight rows.
	ResidentRows(workers int) int
}

// RowReader yields distance rows for one goroutine.
type RowReader interface {
	// Row returns the distance vector from src: row[v] = d_G(src, v),
	// Unreachable for vertices in other components. The slice is
	// read-only and only valid until the next Row call on the same
	// reader. Consecutive calls with the same src are cheap on every
	// backend, which is the access pattern of row-major pair evaluation.
	Row(src graph.NodeID) []int32
}

func normWorkers(workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// --- dense backend: the precomputed APSP table ---

// NewReader implements DistanceSource: the table itself already satisfies
// RowReader (Row is an index into the dense table), and concurrent reads
// of an immutable table are safe, so every reader is the table.
func (a *APSP) NewReader() RowReader { return a }

// ResidentRows implements DistanceSource: a dense table keeps all n rows
// resident whatever the worker count.
func (a *APSP) ResidentRows(workers int) int { return a.n }

var _ DistanceSource = (*APSP)(nil)
var _ RowReader = (*APSP)(nil)

// --- streaming backend: per-reader on-demand BFS ---

// StreamSource recomputes each requested row with a BFS into per-reader
// scratch buffers: distance memory is one row per reader — O(workers·n)
// under a worker pool — instead of O(n²), at the cost of one BFS per
// (reader, row) visit. Exhaustive and sampled row-major evaluation visit
// each row once per claiming worker, so the total BFS work is the same
// n traversals a dense table pays up front.
type StreamSource struct {
	g *graph.Graph
}

// NewStreamSource returns a streaming source over g. The graph is frozen
// to its CSR layout here — the last serial point before readers fan out
// across workers — so every per-row BFS walks contiguous arcs.
func NewStreamSource(g *graph.Graph) *StreamSource {
	g.Freeze()
	return &StreamSource{g: g}
}

// Order implements DistanceSource.
func (s *StreamSource) Order() int { return s.g.Order() }

// NewReader implements DistanceSource.
func (s *StreamSource) NewReader() RowReader { return &bfsReader{g: s.g} }

// ResidentRows implements DistanceSource.
func (s *StreamSource) ResidentRows(workers int) int {
	w := normWorkers(workers)
	if n := s.g.Order(); w > n {
		w = n
	}
	return w
}

type bfsReader struct {
	g     *graph.Graph
	src   graph.NodeID
	valid bool
	dist  []int32
	queue []graph.NodeID
}

func (r *bfsReader) Row(src graph.NodeID) []int32 {
	if r.valid && r.src == src {
		return r.dist
	}
	r.dist, r.queue = BFSInto(r.g, src, r.dist, r.queue)
	r.src, r.valid = src, true
	return r.dist
}

var _ DistanceSource = (*StreamSource)(nil)

// --- cached backend: a bounded LRU of rows ---

// CacheSource keeps the most recently used distance rows in a bounded
// LRU shared by all readers. It targets sampled evaluation and workloads
// that revisit rows (repeated measurements, locality-heavy pair sets):
// resident distance memory is min(capacity, n) rows plus the rows being
// computed, and — like every backend — the rows it returns are
// bit-identical to a dense table's, so cache hits and evictions can never
// change a report, only its speed.
type CacheSource struct {
	g   *graph.Graph
	cap int

	mu   sync.Mutex
	rows map[graph.NodeID]*list.Element
	lru  *list.List // front = most recently used
}

type cacheRow struct {
	src graph.NodeID
	row []int32
}

// DefaultCacheRows is the row capacity NewCacheSource uses when the
// caller passes capacity <= 0.
const DefaultCacheRows = 64

// NewCacheSource returns a cached source over g holding at most capacity
// rows (capacity <= 0 selects DefaultCacheRows).
func NewCacheSource(g *graph.Graph, capacity int) *CacheSource {
	if capacity <= 0 {
		capacity = DefaultCacheRows
	}
	g.Freeze()
	return &CacheSource{
		g:    g,
		cap:  capacity,
		rows: make(map[graph.NodeID]*list.Element, capacity),
		lru:  list.New(),
	}
}

// Order implements DistanceSource.
func (c *CacheSource) Order() int { return c.g.Order() }

// Capacity returns the row capacity.
func (c *CacheSource) Capacity() int { return c.cap }

// NewReader implements DistanceSource. Readers share the cache; each
// keeps a reference to its current row, so a row evicted while still in
// use stays alive for that reader (rows are immutable once computed).
func (c *CacheSource) NewReader() RowReader { return &cacheReader{c: c} }

// ResidentRows implements DistanceSource: the capacity plus up to one
// in-flight row per reader, never more than n.
func (c *CacheSource) ResidentRows(workers int) int {
	r := c.cap + normWorkers(workers)
	if n := c.g.Order(); r > n {
		r = n
	}
	return r
}

// row returns the cached row for src, computing and inserting it on a
// miss. The BFS runs outside the lock so misses on different rows
// proceed in parallel; when two readers miss the same row concurrently,
// the second insert wins and the first row lives on with its reader —
// both slices hold identical values.
func (c *CacheSource) row(src graph.NodeID) []int32 {
	c.mu.Lock()
	if e, ok := c.rows[src]; ok {
		c.lru.MoveToFront(e)
		row := e.Value.(*cacheRow).row
		c.mu.Unlock()
		return row
	}
	c.mu.Unlock()

	row, _ := BFSInto(c.g, src, nil, nil)

	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.rows[src]; ok { // lost the race: adopt the winner
		c.lru.MoveToFront(e)
		return e.Value.(*cacheRow).row
	}
	for c.lru.Len() >= c.cap {
		old := c.lru.Back()
		c.lru.Remove(old)
		delete(c.rows, old.Value.(*cacheRow).src)
	}
	c.rows[src] = c.lru.PushFront(&cacheRow{src: src, row: row})
	return row
}

type cacheReader struct {
	c     *CacheSource
	src   graph.NodeID
	valid bool
	row   []int32
}

func (r *cacheReader) Row(src graph.NodeID) []int32 {
	if r.valid && r.src == src {
		return r.row
	}
	r.row = r.c.row(src)
	r.src, r.valid = src, true
	return r.row
}

var _ DistanceSource = (*CacheSource)(nil)
