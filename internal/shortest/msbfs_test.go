package shortest

import (
	"reflect"
	"testing"

	"repro/internal/graph"
)

// msbfsRows runs MSBFSInto and slices the flat block into per-source
// rows for comparison.
func msbfsRows(t *testing.T, g *graph.Graph, sources []graph.NodeID, dist []int32, scr *MSBFSScratch) ([][]int32, []int32, *MSBFSScratch) {
	t.Helper()
	n := g.Order()
	dist, scr = MSBFSInto(g, sources, dist, scr)
	if len(dist) != len(sources)*n {
		t.Fatalf("MSBFSInto block length %d, want %d*%d", len(dist), len(sources), n)
	}
	rows := make([][]int32, len(sources))
	for i := range sources {
		rows[i] = dist[i*n : (i+1)*n]
	}
	return rows, dist, scr
}

// disconnectedGraph is two path components: 0-1-2 and 3-4-5.
func disconnectedGraph() *graph.Graph {
	g := graph.New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	return g
}

// pathGraph is the n-vertex path 0-1-…-(n-1): maximal diameter, the
// worst case for level-synchronized batching.
func pathGraph(n int) *graph.Graph {
	g := graph.New(n)
	for v := 0; v < n-1; v++ {
		g.AddEdge(graph.NodeID(v), graph.NodeID(v+1))
	}
	return g
}

// starGraph is the n-vertex star with center 0.
func starGraph(n int) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(0, graph.NodeID(v))
	}
	return g
}

// TestMSBFSIntoEdgeCases is the table-driven edge-case suite: every case
// asserts each lane's row equals the scalar BFSInto row element for
// element — including lanes that must stay Unreachable everywhere they
// cannot reach.
func TestMSBFSIntoEdgeCases(t *testing.T) {
	wide := make([]graph.NodeID, 65) // > one word: exercises chunking
	for i := range wide {
		wide[i] = graph.NodeID(i % 9)
	}
	cases := []struct {
		name    string
		g       *graph.Graph
		sources []graph.NodeID
	}{
		{"empty batch", sourceTestGraph(), nil},
		{"batch of 1", sourceTestGraph(), []graph.NodeID{4}},
		{"duplicate sources", sourceTestGraph(), []graph.NodeID{3, 3, 5, 3}},
		{"disconnected components", disconnectedGraph(), []graph.NodeID{0, 2, 3, 5}},
		{"disconnected full batch", disconnectedGraph(), []graph.NodeID{0, 1, 2, 3, 4, 5}},
		{"n < 64 full batch", sourceTestGraph(), []graph.NodeID{0, 1, 2, 3, 4, 5, 6, 7, 8}},
		{"single vertex", graph.New(1), []graph.NodeID{0}},
		{"path", pathGraph(30), []graph.NodeID{0, 29, 15}},
		{"star", starGraph(40), []graph.NodeID{0, 1, 39}},
		{"wider than one word", sourceTestGraph(), wide},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rows, _, _ := msbfsRows(t, tc.g, tc.sources, nil, nil)
			for i, s := range tc.sources {
				want := BFS(tc.g, s)
				if !reflect.DeepEqual(rows[i], want) {
					t.Fatalf("lane %d (source %d): row %v, want %v", i, s, rows[i], want)
				}
			}
		})
	}
}

// TestMSBFSIntoUnreachableStaysInEveryLane pins the disconnected
// contract explicitly: for sources in one component, every vertex of the
// other component reports Unreachable in every lane.
func TestMSBFSIntoUnreachableStaysInEveryLane(t *testing.T) {
	g := disconnectedGraph()
	sources := []graph.NodeID{0, 1, 2}
	rows, _, _ := msbfsRows(t, g, sources, nil, nil)
	for i := range sources {
		for _, v := range []graph.NodeID{3, 4, 5} {
			if rows[i][v] != Unreachable {
				t.Fatalf("lane %d: vertex %d got distance %d, want Unreachable", i, v, rows[i][v])
			}
		}
	}
}

// TestMSBFSIntoReusesScratch checks the zero-allocation steady state the
// batch-claiming workers depend on: buffers big enough are reused in
// place across batches, and the reused-scratch rows still match BFS.
func TestMSBFSIntoReusesScratch(t *testing.T) {
	g := sourceTestGraph()
	first := []graph.NodeID{0, 1, 2, 3}
	dist, scr := MSBFSInto(g, first, nil, nil)
	second := []graph.NodeID{5, 6, 7, 8}
	d2, s2 := MSBFSInto(g, second, dist, scr)
	if &d2[0] != &dist[0] {
		t.Fatal("MSBFSInto reallocated a dist block that was large enough")
	}
	if s2 != scr {
		t.Fatal("MSBFSInto replaced the scratch it was given")
	}
	n := g.Order()
	for i, s := range second {
		if !reflect.DeepEqual(d2[i*n:(i+1)*n], BFS(g, s)) {
			t.Fatalf("reused-scratch lane %d (source %d) differs from fresh BFS", i, s)
		}
	}
	// A smaller batch into the same scratch must also stay exact (stale
	// words from the wider batch must not leak).
	d3, _ := MSBFSInto(g, []graph.NodeID{4}, d2, s2)
	if !reflect.DeepEqual(d3[:n], BFS(g, 4)) {
		t.Fatal("narrow batch after wide batch differs from fresh BFS")
	}
}

// TestNewAPSPWithKernels pins the constructor knob: scalar and batch
// builds are bit-identical to the serial reference at several worker
// counts, for a graph whose order is not a multiple of the batch width.
func TestNewAPSPWithKernels(t *testing.T) {
	g := pathGraph(67) // 67 % 64 != 0: last batch is ragged
	ref := NewAPSP(g)
	for _, k := range []Kernel{KernelAuto, KernelScalar, KernelBatch} {
		for _, workers := range []int{1, 3, 8} {
			a := NewAPSPWith(g, APSPOptions{Workers: workers, Kernel: k})
			for u := 0; u < g.Order(); u++ {
				if !reflect.DeepEqual(a.Row(graph.NodeID(u)), ref.Row(graph.NodeID(u))) {
					t.Fatalf("kernel=%s workers=%d: row %d differs from NewAPSP", k, workers, u)
				}
			}
		}
	}
}

// TestKernelParse pins the flag spelling round-trip and the unknown-value
// error.
func TestKernelParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kernel
	}{{"", KernelAuto}, {"auto", KernelAuto}, {"scalar", KernelScalar}, {"batch", KernelBatch}} {
		got, err := ParseKernel(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseKernel(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseKernel("simd"); err == nil {
		t.Fatal("ParseKernel accepted an unknown kernel name")
	}
	if KernelBatch.String() != "batch" || KernelScalar.String() != "scalar" || KernelAuto.String() != "auto" {
		t.Fatal("Kernel.String does not round-trip the flag spellings")
	}
}

// TestBatchedStreamSource pins the batched reader: rows equal BFS for
// in-block, cross-block and repeated requests; RowBatch and ResidentRows
// reflect the 64-row prefetch block.
func TestBatchedStreamSource(t *testing.T) {
	g := pathGraph(130) // three blocks: 64 + 64 + 2
	src, err := NewStreamSourceKernel(g, KernelBatch)
	if err != nil {
		t.Fatal(err)
	}
	if src.RowBatch() != MSBFSWidth {
		t.Fatalf("RowBatch() = %d, want %d", src.RowBatch(), MSBFSWidth)
	}
	rd := src.NewReader()
	// Walk forward, jump back across blocks, and hit the ragged tail.
	for _, v := range []int{0, 63, 64, 1, 129, 128, 65, 127, 0, 129} {
		if got, want := rd.Row(graph.NodeID(v)), BFS(g, graph.NodeID(v)); !reflect.DeepEqual(got, want) {
			t.Fatalf("row %d = %v…, want %v…", v, got[:4], want[:4])
		}
	}
}
