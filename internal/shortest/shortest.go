// Package shortest computes distances, shortest-path structures and
// first-arc sets on unweighted graphs.
//
// The paper's definitions all reduce to distance queries: the stretch
// factor compares routing-path lengths with d_G, and a matrix of
// constraints exists exactly when, for each (a_i, b_j), a single outgoing
// arc of a_i is compatible with every route of length <= s*d_G(a_i, b_j).
// This package provides BFS, all-pairs tables, shortest-path DAGs, path
// counting, and the FirstArcs/ForcedPort primitives that the constraint
// machinery in internal/core builds on.
package shortest

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// Unreachable is the distance reported for disconnected pairs.
const Unreachable = int32(math.MaxInt32)

// BFS returns the distance vector from src: dist[v] = d_G(src, v), with
// Unreachable for vertices in other components.
func BFS(g *graph.Graph, src graph.NodeID) []int32 {
	dist, _ := BFSInto(g, src, nil, nil)
	return dist
}

// BFSInto is BFS with caller-owned scratch: dist and queue are reused
// when large enough and reallocated otherwise, and both are returned so
// a streaming reader can run one BFS per requested row with zero
// steady-state allocation. The computed row is bit-identical to BFS.
//
// The traversal is level-synchronized and direction-optimizing (Beamer
// et al.): a level whose outgoing arcs outnumber the scan cost of the
// remaining unvisited vertices is expanded bottom-up — each unvisited
// vertex probes its own arcs for a parent in the current level and stops
// at the first hit — instead of top-down. On the small-diameter graphs
// the suite sweeps, one or two bulk levels carry most of the arcs, and
// the switch removes the bulk of the failed-relaxation traffic. The
// distance vector cannot observe the direction: BFS levels are the sets
// {v : d(src,v) = k}, a property of the graph, not of discovery order.
// (The returned queue is visited vertices in level order; order WITHIN a
// level depends on the direction taken and is not part of the contract —
// no caller reads it, they reuse the queue as scratch capacity.)
func BFSInto(g *graph.Graph, src graph.NodeID, dist []int32, queue []graph.NodeID) ([]int32, []graph.NodeID) {
	n := g.Order()
	if cap(dist) < n {
		dist = make([]int32, n)
	}
	dist = dist[:n]
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	if cap(queue) < n {
		queue = make([]graph.NodeID, 0, n)
	}
	queue = queue[:0]
	queue = append(queue, src)
	unvisited := n - 1
	frontierArcs := len(g.Arcs(src))
	unvisitedArcs := 2*g.Size() - frontierArcs
	levelStart := 0
	for level := int32(0); levelStart < len(queue); level++ {
		frontier := queue[levelStart:]
		levelStart = len(queue)
		next := level + 1
		nextArcs := 0
		if unvisited > 0 && frontierArcs > n+unvisitedArcs/2 {
			// Bottom-up: cost ≈ n flag loads + early-exit parent probes.
			// Dead slots (w < 0, removed edges) are skipped; the arc-count
			// heuristic above may count them, which only shifts the
			// direction switch, never a distance.
			for v := 0; v < n; v++ {
				if dist[v] != Unreachable {
					continue
				}
				for _, w := range g.Arcs(graph.NodeID(v)) {
					if w < 0 {
						continue
					}
					if dist[w] == level {
						dist[v] = next
						queue = append(queue, graph.NodeID(v))
						d := len(g.Arcs(graph.NodeID(v)))
						nextArcs += d
						unvisitedArcs -= d
						unvisited--
						break
					}
				}
			}
		} else {
			// Top-down: classic frontier relaxation.
			for _, u := range frontier {
				for _, v := range g.Arcs(u) {
					if v < 0 {
						continue
					}
					if dist[v] == Unreachable {
						dist[v] = next
						queue = append(queue, v)
						d := len(g.Arcs(v))
						nextArcs += d
						unvisitedArcs -= d
						unvisited--
					}
				}
			}
		}
		frontierArcs = nextArcs
	}
	return dist, queue
}

// BFSTree returns, along with the distance vector, a parent-port vector:
// parent[v] is the port AT v leading one step closer to src (NoPort at src
// and unreachable vertices). Following parent ports from any v walks a
// shortest path to src; routing tables and tree schemes are built from it.
//
// The parent port is canonical: the LOWEST port of v whose endpoint is one
// step closer to src — the same tie-break as FirstArcs — so the tree
// depends only on the graph, never on traversal order. BFSTree is a
// convenience wrapper over BFSTreeInto.
func BFSTree(g *graph.Graph, src graph.NodeID) (dist []int32, parentPort []graph.Port) {
	dist, parentPort, _ = BFSTreeInto(g, src, nil, nil, nil)
	return dist, parentPort
}

// BFSTreeInto is BFSTree with caller-owned scratch: dist, parent and
// queue are reused when large enough and reallocated otherwise, and all
// three are returned, so constructors building one tree per root (the
// landmark scheme, streaming evaluations) run with zero steady-state
// allocation. The computed vectors are bit-identical to BFSTree's.
//
// The tree rides the direction-optimized BFSInto and then resolves each
// visited vertex's parent with an early-exit scan of its own arcs
// against the finished distance vector — the canonical lowest-port rule
// reads only dist, so it is indifferent to the traversal direction, and
// the first matching arc (typically within a probe or two) ends the
// scan.
func BFSTreeInto(g *graph.Graph, src graph.NodeID, dist []int32, parent []graph.Port, queue []graph.NodeID) ([]int32, []graph.Port, []graph.NodeID) {
	n := g.Order()
	dist, queue = BFSInto(g, src, dist, queue)
	if cap(parent) < n {
		parent = make([]graph.Port, n)
	}
	parent = parent[:n]
	for i := range parent {
		parent[i] = graph.NoPort
	}
	// Vertex order, not queue order: after a Freeze this walks the CSR
	// arena sequentially, and the probes into dist stay L1-resident.
	for u := 0; u < n; u++ {
		du := dist[u]
		if du == 0 || du == Unreachable {
			continue // src and unreachable vertices keep NoPort
		}
		closer := du - 1
		for i, w := range g.Arcs(graph.NodeID(u)) {
			if w < 0 {
				continue
			}
			if dist[w] == closer {
				parent[u] = graph.Port(i + 1)
				break
			}
		}
	}
	return dist, parent, queue
}

// APSP holds an all-pairs distance table. For the graph orders used here
// (up to a few thousand) the n^2 table is the right tool; it is computed
// by n BFS traversals.
type APSP struct {
	n    int
	dist [][]int32
}

// NewAPSP computes all-pairs shortest path distances. The graph is
// frozen to its CSR layout first, rows are carved out of one contiguous
// n×n block, and the BFS queue is reused across sources, so the build is
// n closure-free traversals with O(1) allocations.
func NewAPSP(g *graph.Graph) *APSP {
	g.Freeze()
	n := g.Order()
	a := &APSP{n: n, dist: make([][]int32, n)}
	block := make([]int32, n*n)
	var queue []graph.NodeID
	for u := 0; u < n; u++ {
		row := block[u*n : (u+1)*n : (u+1)*n]
		a.dist[u], queue = BFSInto(g, graph.NodeID(u), row, queue)
	}
	return a
}

// RefreshRows recomputes the distance rows of the given roots in place
// against the current state of g — the incremental-repair counterpart of
// NewAPSP. After a fault (RemoveEdge/RemoveVertex) only the rows whose
// BFS cone touched a removed arc can change; callers compute that dirty
// set (internal/faults.DirtyRoots) and refresh exactly those rows, so
// an r-row refresh costs r BFS traversals instead of n. Each refreshed
// row is bit-identical to the matching row of NewAPSP on the mutated
// graph (BFSInto is the single kernel behind both). g must have the
// same order the table was built with.
func (a *APSP) RefreshRows(g *graph.Graph, roots []graph.NodeID) {
	if g.Order() != a.n {
		panic(fmt.Sprintf("shortest: RefreshRows order mismatch: graph %d, table %d", g.Order(), a.n))
	}
	g.Freeze()
	var queue []graph.NodeID
	for _, u := range roots {
		// Rows were carved with capacity n, so BFSInto reuses them in place.
		a.dist[u], queue = BFSInto(g, u, a.dist[u], queue)
	}
}

// Dist returns d_G(u, v).
func (a *APSP) Dist(u, v graph.NodeID) int32 { return a.dist[u][v] }

// Row returns the distance vector from u. The caller must not modify it.
func (a *APSP) Row(u graph.NodeID) []int32 { return a.dist[u] }

// Order returns the number of vertices covered by the table.
func (a *APSP) Order() int { return a.n }

// Connected reports whether every pair is reachable.
func (a *APSP) Connected() bool {
	for _, row := range a.dist {
		for _, d := range row {
			if d == Unreachable {
				return false
			}
		}
	}
	return true
}

// Diameter returns max_{u,v} d_G(u,v), or Unreachable if disconnected.
func (a *APSP) Diameter() int32 {
	var diam int32
	for _, row := range a.dist {
		for _, d := range row {
			if d == Unreachable {
				return Unreachable
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// Eccentricity returns max_v d_G(u, v).
func (a *APSP) Eccentricity(u graph.NodeID) int32 {
	var e int32
	for _, d := range a.dist[u] {
		if d > e {
			e = d
		}
	}
	return e
}

// FirstArcs returns the ports p of u that begin some shortest path from u
// to v: Neighbor(u,p) is one step closer to v. For u == v it returns nil.
// The scan reads the destination row a.Row(v) — equal to the d(·,v)
// column by symmetry — so neighbor lookups stay within one contiguous
// row.
func FirstArcs(g *graph.Graph, a *APSP, u, v graph.NodeID) []graph.Port {
	if u == v {
		return nil
	}
	var out []graph.Port
	rowV := a.Row(v)
	duv := rowV[u]
	for i, w := range g.Arcs(u) {
		if w < 0 {
			continue
		}
		if rowV[w]+1 == duv {
			out = append(out, graph.Port(i+1))
		}
	}
	return out
}

// FeasibleFirstArcs returns the ports of u through which SOME routing path
// of length <= maxLen from u to v can start: port p qualifies iff
// 1 + d(Neighbor(u,p), v) <= maxLen. (A route may be longer than the
// shortest continuation, but never shorter, so this is exactly the set of
// first arcs compatible with the length bound.)
func FeasibleFirstArcs(g *graph.Graph, a *APSP, u, v graph.NodeID, maxLen int32) []graph.Port {
	if u == v {
		return nil
	}
	var out []graph.Port
	rowV := a.Row(v)
	for i, w := range g.Arcs(u) {
		if w < 0 {
			continue
		}
		if dw := rowV[w]; dw != Unreachable && dw+1 <= maxLen {
			out = append(out, graph.Port(i+1))
		}
	}
	return out
}

// ForcedPort returns (p, true) when EVERY route from u to v of stretch at
// most s must leave u through the single port p, and (NoPort, false)
// otherwise. The length budget is floor(s * d(u,v)) since path lengths are
// integers. This is Definition 1's condition, decided exactly.
func ForcedPort(g *graph.Graph, a *APSP, u, v graph.NodeID, s float64) (graph.Port, bool) {
	if u == v {
		return graph.NoPort, false
	}
	d := a.Dist(u, v)
	if d == Unreachable {
		return graph.NoPort, false
	}
	budget := int32(s * float64(d))
	arcs := FeasibleFirstArcs(g, a, u, v, budget)
	if len(arcs) == 1 {
		return arcs[0], true
	}
	return graph.NoPort, false
}

// CountShortestPaths returns the number of distinct shortest u→v paths,
// capped at cap to avoid overflow on dense graphs (the Petersen experiment
// only needs "is it exactly 1"). Counting proceeds by dynamic programming
// over the shortest-path DAG from u.
func CountShortestPaths(g *graph.Graph, a *APSP, u, v graph.NodeID, cap int64) int64 {
	if u == v {
		return 1
	}
	if a.Dist(u, v) == Unreachable {
		return 0
	}
	// Slice memo over vertex ids (-1 = unvisited): the DAG DP touches a
	// dense id range, so a flat array replaces the map's hashing on the
	// hot path while computing the identical counts.
	memo := make([]int64, g.Order())
	for i := range memo {
		memo[i] = -1
	}
	rowV := a.Row(v)
	var count func(x graph.NodeID) int64
	count = func(x graph.NodeID) int64 {
		if x == v {
			return 1
		}
		if c := memo[x]; c >= 0 {
			return c
		}
		var total int64
		dxv := rowV[x]
		for _, w := range g.Arcs(x) {
			if w < 0 {
				continue
			}
			if rowV[w]+1 == dxv {
				total += count(w)
				if total > cap {
					total = cap
				}
			}
		}
		memo[x] = total
		return total
	}
	return count(u)
}

// ShortestPath returns one shortest u→v path as a vertex sequence
// (inclusive of both ends), or nil if unreachable. Ties break toward the
// lowest port, making the result deterministic.
func ShortestPath(g *graph.Graph, a *APSP, u, v graph.NodeID) []graph.NodeID {
	if a.Dist(u, v) == Unreachable {
		return nil
	}
	path := []graph.NodeID{u}
	rowV := a.Row(v)
	x := u
	for x != v {
		dxv := rowV[x]
		next := graph.NodeID(-1)
		for _, w := range g.Arcs(x) {
			if w < 0 {
				continue
			}
			if rowV[w]+1 == dxv {
				next = w
				break
			}
		}
		x = next
		path = append(path, x)
	}
	return path
}
