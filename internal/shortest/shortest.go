// Package shortest computes distances, shortest-path structures and
// first-arc sets on unweighted graphs.
//
// The paper's definitions all reduce to distance queries: the stretch
// factor compares routing-path lengths with d_G, and a matrix of
// constraints exists exactly when, for each (a_i, b_j), a single outgoing
// arc of a_i is compatible with every route of length <= s*d_G(a_i, b_j).
// This package provides BFS, all-pairs tables, shortest-path DAGs, path
// counting, and the FirstArcs/ForcedPort primitives that the constraint
// machinery in internal/core builds on.
package shortest

import (
	"math"

	"repro/internal/graph"
)

// Unreachable is the distance reported for disconnected pairs.
const Unreachable = int32(math.MaxInt32)

// BFS returns the distance vector from src: dist[v] = d_G(src, v), with
// Unreachable for vertices in other components.
func BFS(g *graph.Graph, src graph.NodeID) []int32 {
	dist, _ := BFSInto(g, src, nil, nil)
	return dist
}

// BFSInto is BFS with caller-owned scratch: dist and queue are reused
// when large enough and reallocated otherwise, and both are returned so
// a streaming reader can run one BFS per requested row with zero
// steady-state allocation. The computed row is bit-identical to BFS.
func BFSInto(g *graph.Graph, src graph.NodeID, dist []int32, queue []graph.NodeID) ([]int32, []graph.NodeID) {
	n := g.Order()
	if cap(dist) < n {
		dist = make([]int32, n)
	}
	dist = dist[:n]
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	if cap(queue) < n {
		queue = make([]graph.NodeID, 0, n)
	}
	queue = queue[:0]
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		g.ForEachArc(u, func(_ graph.Port, v graph.NodeID) {
			if dist[v] == Unreachable {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		})
	}
	return dist, queue
}

// BFSTree returns, along with the distance vector, a parent-port vector:
// parent[v] is the port AT v leading one step closer to src (NoPort at src
// and unreachable vertices). Following parent ports from any v walks a
// shortest path to src; routing tables and tree schemes are built from it.
func BFSTree(g *graph.Graph, src graph.NodeID) (dist []int32, parentPort []graph.Port) {
	n := g.Order()
	dist = make([]int32, n)
	parentPort = make([]graph.Port, n)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	queue := make([]graph.NodeID, 0, n)
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		g.ForEachArc(u, func(p graph.Port, v graph.NodeID) {
			if dist[v] == Unreachable {
				dist[v] = du + 1
				parentPort[v] = g.BackPort(u, p)
				queue = append(queue, v)
			}
		})
	}
	return dist, parentPort
}

// APSP holds an all-pairs distance table. For the graph orders used here
// (up to a few thousand) the n^2 table is the right tool; it is computed
// by n BFS traversals.
type APSP struct {
	n    int
	dist [][]int32
}

// NewAPSP computes all-pairs shortest path distances.
func NewAPSP(g *graph.Graph) *APSP {
	n := g.Order()
	a := &APSP{n: n, dist: make([][]int32, n)}
	for u := 0; u < n; u++ {
		a.dist[u] = BFS(g, graph.NodeID(u))
	}
	return a
}

// Dist returns d_G(u, v).
func (a *APSP) Dist(u, v graph.NodeID) int32 { return a.dist[u][v] }

// Row returns the distance vector from u. The caller must not modify it.
func (a *APSP) Row(u graph.NodeID) []int32 { return a.dist[u] }

// Order returns the number of vertices covered by the table.
func (a *APSP) Order() int { return a.n }

// Connected reports whether every pair is reachable.
func (a *APSP) Connected() bool {
	for _, row := range a.dist {
		for _, d := range row {
			if d == Unreachable {
				return false
			}
		}
	}
	return true
}

// Diameter returns max_{u,v} d_G(u,v), or Unreachable if disconnected.
func (a *APSP) Diameter() int32 {
	var diam int32
	for _, row := range a.dist {
		for _, d := range row {
			if d == Unreachable {
				return Unreachable
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// Eccentricity returns max_v d_G(u, v).
func (a *APSP) Eccentricity(u graph.NodeID) int32 {
	var e int32
	for _, d := range a.dist[u] {
		if d > e {
			e = d
		}
	}
	return e
}

// FirstArcs returns the ports p of u that begin some shortest path from u
// to v: Neighbor(u,p) is one step closer to v. For u == v it returns nil.
func FirstArcs(g *graph.Graph, a *APSP, u, v graph.NodeID) []graph.Port {
	if u == v {
		return nil
	}
	var out []graph.Port
	duv := a.Dist(u, v)
	g.ForEachArc(u, func(p graph.Port, w graph.NodeID) {
		if a.Dist(w, v)+1 == duv {
			out = append(out, p)
		}
	})
	return out
}

// FeasibleFirstArcs returns the ports of u through which SOME routing path
// of length <= maxLen from u to v can start: port p qualifies iff
// 1 + d(Neighbor(u,p), v) <= maxLen. (A route may be longer than the
// shortest continuation, but never shorter, so this is exactly the set of
// first arcs compatible with the length bound.)
func FeasibleFirstArcs(g *graph.Graph, a *APSP, u, v graph.NodeID, maxLen int32) []graph.Port {
	if u == v {
		return nil
	}
	var out []graph.Port
	g.ForEachArc(u, func(p graph.Port, w graph.NodeID) {
		if dw := a.Dist(w, v); dw != Unreachable && dw+1 <= maxLen {
			out = append(out, p)
		}
	})
	return out
}

// ForcedPort returns (p, true) when EVERY route from u to v of stretch at
// most s must leave u through the single port p, and (NoPort, false)
// otherwise. The length budget is floor(s * d(u,v)) since path lengths are
// integers. This is Definition 1's condition, decided exactly.
func ForcedPort(g *graph.Graph, a *APSP, u, v graph.NodeID, s float64) (graph.Port, bool) {
	if u == v {
		return graph.NoPort, false
	}
	d := a.Dist(u, v)
	if d == Unreachable {
		return graph.NoPort, false
	}
	budget := int32(s * float64(d))
	arcs := FeasibleFirstArcs(g, a, u, v, budget)
	if len(arcs) == 1 {
		return arcs[0], true
	}
	return graph.NoPort, false
}

// CountShortestPaths returns the number of distinct shortest u→v paths,
// capped at cap to avoid overflow on dense graphs (the Petersen experiment
// only needs "is it exactly 1"). Counting proceeds by dynamic programming
// over the shortest-path DAG from u.
func CountShortestPaths(g *graph.Graph, a *APSP, u, v graph.NodeID, cap int64) int64 {
	if u == v {
		return 1
	}
	if a.Dist(u, v) == Unreachable {
		return 0
	}
	memo := make(map[graph.NodeID]int64)
	var count func(x graph.NodeID) int64
	count = func(x graph.NodeID) int64 {
		if x == v {
			return 1
		}
		if c, ok := memo[x]; ok {
			return c
		}
		var total int64
		dxv := a.Dist(x, v)
		g.ForEachArc(x, func(_ graph.Port, w graph.NodeID) {
			if a.Dist(w, v)+1 == dxv {
				total += count(w)
				if total > cap {
					total = cap
				}
			}
		})
		memo[x] = total
		return total
	}
	return count(u)
}

// ShortestPath returns one shortest u→v path as a vertex sequence
// (inclusive of both ends), or nil if unreachable. Ties break toward the
// lowest port, making the result deterministic.
func ShortestPath(g *graph.Graph, a *APSP, u, v graph.NodeID) []graph.NodeID {
	if a.Dist(u, v) == Unreachable {
		return nil
	}
	path := []graph.NodeID{u}
	x := u
	for x != v {
		dxv := a.Dist(x, v)
		next := graph.NodeID(-1)
		g.ForEachArc(x, func(_ graph.Port, w graph.NodeID) {
			if next == -1 && a.Dist(w, v)+1 == dxv {
				next = w
			}
		})
		x = next
		path = append(path, x)
	}
	return path
}
