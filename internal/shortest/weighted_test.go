package shortest

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/xrand"
)

func randomWeights(g *graph.Graph, r *xrand.Rand, maxW int) Weights {
	return RandomWeights(g, maxW, r)
}

func TestUniformWeightsMatchBFS(t *testing.T) {
	check := func(seed uint64, nn uint8) bool {
		n := int(nn%30) + 2
		g := gen.RandomConnected(n, 0.2, xrand.New(seed))
		w := UniformWeights(g)
		a, err := NewWeightedAPSP(g, w)
		if err != nil {
			return false
		}
		b := NewAPSP(g)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if a.Dist(graph.NodeID(u), graph.NodeID(v)) != b.Dist(graph.NodeID(u), graph.NodeID(v)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDijkstraTriangleAndSymmetry(t *testing.T) {
	check := func(seed uint64, nn uint8) bool {
		n := int(nn%25) + 3
		r := xrand.New(seed)
		g := gen.RandomConnected(n, 0.25, r)
		w := randomWeights(g, r, 9)
		a, err := NewWeightedAPSP(g, w)
		if err != nil {
			return false
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if a.Dist(graph.NodeID(u), graph.NodeID(v)) != a.Dist(graph.NodeID(v), graph.NodeID(u)) {
					return false
				}
				for x := 0; x < n; x++ {
					if a.Dist(graph.NodeID(u), graph.NodeID(v)) >
						a.Dist(graph.NodeID(u), graph.NodeID(x))+a.Dist(graph.NodeID(x), graph.NodeID(v)) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDijkstraKnownValues(t *testing.T) {
	// Path 0-1-2 with weights 5 and 2: d(0,2) = 7, not hop count 2.
	g := gen.Path(3)
	w := UniformWeights(g)
	w[0][0] = 5
	w[1][g.BackPort(0, 1)-1] = 5
	p12 := g.PortTo(1, 2)
	w[1][p12-1] = 2
	w[2][g.BackPort(1, p12)-1] = 2
	a, err := NewWeightedAPSP(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if d := a.Dist(0, 2); d != 7 {
		t.Fatalf("d(0,2) = %d, want 7", d)
	}
}

func TestWeightsValidateCatchesAsymmetry(t *testing.T) {
	g := gen.Cycle(4)
	w := UniformWeights(g)
	w[0][0] = 3 // reverse arc still 1
	if err := w.Validate(g); err == nil {
		t.Fatal("asymmetric weights accepted")
	}
}

func TestWeightsValidateCatchesNonPositive(t *testing.T) {
	g := gen.Cycle(4)
	w := UniformWeights(g)
	w[1][0] = 0
	if err := w.Validate(g); err == nil {
		t.Fatal("zero weight accepted")
	}
}

func TestWeightedFirstArcs(t *testing.T) {
	// Square 0-1-2-3-0 with one heavy edge: first arcs route around it.
	g := gen.Cycle(4)
	r := xrand.New(1)
	_ = r
	w := UniformWeights(g)
	// Make edge {0,1} cost 10.
	p01 := g.PortTo(0, 1)
	w[0][p01-1] = 10
	w[1][g.BackPort(0, p01)-1] = 10
	a, err := NewWeightedAPSP(g, w)
	if err != nil {
		t.Fatal(err)
	}
	// d(0,1) should be 3 via 0-3-2-1.
	if d := a.Dist(0, 1); d != 3 {
		t.Fatalf("d(0,1) = %d, want 3", d)
	}
	arcs := WeightedFirstArcs(g, a, w, 0, 1)
	if len(arcs) != 1 || g.Neighbor(0, arcs[0]) != 3 {
		t.Fatalf("weighted first arcs %v should route via vertex 3", arcs)
	}
}

// TestDijkstraSaturatesNearMaxInt32 is the overflow regression: with arc
// costs near MaxInt32 the old int32 relaxation wrapped negative and
// corrupted every distance downstream of the wrap. Distances must stay
// non-negative and monotone along the path, with costs at or past the
// Unreachable sentinel saturating to it.
func TestDijkstraSaturatesNearMaxInt32(t *testing.T) {
	g := gen.Path(4)
	w := UniformWeights(g)
	const big = math.MaxInt32/2 - 1
	for u := 0; u < 3; u++ {
		p := g.PortTo(graph.NodeID(u), graph.NodeID(u+1))
		w[u][p-1] = big
		w[u+1][g.BackPort(graph.NodeID(u), p)-1] = big
	}
	a, err := NewWeightedAPSP(g, w)
	if err != nil {
		t.Fatal(err)
	}
	prev := int32(0)
	for v := 0; v < 4; v++ {
		d := a.Dist(0, graph.NodeID(v))
		if d < 0 {
			t.Fatalf("d(0,%d) = %d went negative: int32 relaxation wrapped", v, d)
		}
		if d < prev {
			t.Fatalf("d(0,%d) = %d < d(0,%d) = %d: distances not monotone along the path", v, d, v-1, prev)
		}
		prev = d
	}
	if d := a.Dist(0, 1); d != big {
		t.Fatalf("d(0,1) = %d, want %d", d, int32(big))
	}
	if d := a.Dist(0, 2); d != 2*big {
		t.Fatalf("d(0,2) = %d, want %d", d, int32(2*big))
	}
	if d := a.Dist(0, 3); d != Unreachable {
		t.Fatalf("d(0,3) = %d, want saturation at Unreachable (true cost 3*%d overflows int32)", d, int64(big))
	}
	// The parallel build saturates identically.
	par, err := NewWeightedAPSPParallel(g, w, 3)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		if par.Dist(0, graph.NodeID(v)) != a.Dist(0, graph.NodeID(v)) {
			t.Fatalf("parallel saturation diverges at vertex %d", v)
		}
	}
}

// TestWeightedFirstArcsNearMaxWeights pins the int64 membership test at
// the top of the representable range: the minimum-cost first arc is
// still found when d(x,v) + w(u,x) sits one below Unreachable.
func TestWeightedFirstArcsNearMaxWeights(t *testing.T) {
	g := gen.Path(3)
	w := UniformWeights(g)
	p01 := g.PortTo(0, 1)
	w[0][p01-1] = math.MaxInt32 - 2
	w[1][g.BackPort(0, p01)-1] = math.MaxInt32 - 2
	a, err := NewWeightedAPSP(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if d := a.Dist(0, 2); d != math.MaxInt32-1 {
		t.Fatalf("d(0,2) = %d, want MaxInt32-1", d)
	}
	arcs := WeightedFirstArcs(g, a, w, 0, 2)
	if len(arcs) != 1 || g.Neighbor(0, arcs[0]) != 1 {
		t.Fatalf("first arcs %v, want the single port toward vertex 1", arcs)
	}
}

// TestWeightsValidateMalformedRowErrors is the shape regression: a row
// shorter than its vertex's degree used to panic inside the symmetry
// probe of an EARLIER vertex (w[v][back-1] read before v's own length
// was checked); it must be a plain error.
func TestWeightsValidateMalformedRowErrors(t *testing.T) {
	g := gen.Cycle(4)
	w := UniformWeights(g)
	w[3] = w[3][:0] // vertex 0's symmetry probe into w[3] would be out of range
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Validate panicked on malformed weights: %v", r)
		}
	}()
	if err := w.Validate(g); err == nil {
		t.Fatal("short row accepted")
	}
	if _, err := NewWeightedAPSP(g, w); err == nil {
		t.Fatal("NewWeightedAPSP accepted malformed weights")
	}
	if _, err := NewWeightedAPSPParallel(g, w, 2); err == nil {
		t.Fatal("NewWeightedAPSPParallel accepted malformed weights")
	}
}

// TestDijkstraIntoReusesScratch checks the zero-allocation steady state
// the weighted streaming reader depends on, mirroring the BFSInto test.
func TestDijkstraIntoReusesScratch(t *testing.T) {
	g := gen.RandomConnected(32, 0.2, xrand.New(7))
	w := randomWeights(g, xrand.New(8), 9)
	dist, pq := DijkstraInto(g, w, 0, nil, nil)
	d2, q2 := DijkstraInto(g, w, 4, dist, pq)
	if &d2[0] != &dist[0] || &q2[:1][0] != &pq[:1][0] {
		t.Fatal("DijkstraInto reallocated buffers that were large enough")
	}
	want := Dijkstra(g, w, 4)
	for v := range want {
		if d2[v] != want[v] {
			t.Fatalf("reused-scratch row differs from fresh Dijkstra at %d", v)
		}
	}
}

func TestParallelAPSPMatchesSerial(t *testing.T) {
	g := gen.RandomConnected(200, 0.05, xrand.New(3))
	serial := NewAPSP(g)
	for _, workers := range []int{0, 1, 4, 13} {
		par := NewAPSPParallel(g, workers)
		for u := 0; u < 200; u++ {
			for v := 0; v < 200; v++ {
				if serial.Dist(graph.NodeID(u), graph.NodeID(v)) != par.Dist(graph.NodeID(u), graph.NodeID(v)) {
					t.Fatalf("workers=%d: mismatch at (%d,%d)", workers, u, v)
				}
			}
		}
	}
}

func TestParallelAPSPEmpty(t *testing.T) {
	g := graph.New(0)
	a := NewAPSPParallel(g, 4)
	if a.Order() != 0 {
		t.Fatal("empty parallel APSP wrong")
	}
}
