package shortest

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/xrand"
)

func randomWeights(g *graph.Graph, r *xrand.Rand, maxW int) Weights {
	w := UniformWeights(g)
	for u := 0; u < g.Order(); u++ {
		g.ForEachArc(graph.NodeID(u), func(p graph.Port, v graph.NodeID) {
			if graph.NodeID(u) < v {
				c := int32(r.Intn(maxW) + 1)
				w[u][p-1] = c
				w[v][g.BackPort(graph.NodeID(u), p)-1] = c
			}
		})
	}
	return w
}

func TestUniformWeightsMatchBFS(t *testing.T) {
	check := func(seed uint64, nn uint8) bool {
		n := int(nn%30) + 2
		g := gen.RandomConnected(n, 0.2, xrand.New(seed))
		w := UniformWeights(g)
		a, err := NewWeightedAPSP(g, w)
		if err != nil {
			return false
		}
		b := NewAPSP(g)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if a.Dist(graph.NodeID(u), graph.NodeID(v)) != b.Dist(graph.NodeID(u), graph.NodeID(v)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDijkstraTriangleAndSymmetry(t *testing.T) {
	check := func(seed uint64, nn uint8) bool {
		n := int(nn%25) + 3
		r := xrand.New(seed)
		g := gen.RandomConnected(n, 0.25, r)
		w := randomWeights(g, r, 9)
		a, err := NewWeightedAPSP(g, w)
		if err != nil {
			return false
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if a.Dist(graph.NodeID(u), graph.NodeID(v)) != a.Dist(graph.NodeID(v), graph.NodeID(u)) {
					return false
				}
				for x := 0; x < n; x++ {
					if a.Dist(graph.NodeID(u), graph.NodeID(v)) >
						a.Dist(graph.NodeID(u), graph.NodeID(x))+a.Dist(graph.NodeID(x), graph.NodeID(v)) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDijkstraKnownValues(t *testing.T) {
	// Path 0-1-2 with weights 5 and 2: d(0,2) = 7, not hop count 2.
	g := gen.Path(3)
	w := UniformWeights(g)
	w[0][0] = 5
	w[1][g.BackPort(0, 1)-1] = 5
	p12 := g.PortTo(1, 2)
	w[1][p12-1] = 2
	w[2][g.BackPort(1, p12)-1] = 2
	a, err := NewWeightedAPSP(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if d := a.Dist(0, 2); d != 7 {
		t.Fatalf("d(0,2) = %d, want 7", d)
	}
}

func TestWeightsValidateCatchesAsymmetry(t *testing.T) {
	g := gen.Cycle(4)
	w := UniformWeights(g)
	w[0][0] = 3 // reverse arc still 1
	if err := w.Validate(g); err == nil {
		t.Fatal("asymmetric weights accepted")
	}
}

func TestWeightsValidateCatchesNonPositive(t *testing.T) {
	g := gen.Cycle(4)
	w := UniformWeights(g)
	w[1][0] = 0
	if err := w.Validate(g); err == nil {
		t.Fatal("zero weight accepted")
	}
}

func TestWeightedFirstArcs(t *testing.T) {
	// Square 0-1-2-3-0 with one heavy edge: first arcs route around it.
	g := gen.Cycle(4)
	r := xrand.New(1)
	_ = r
	w := UniformWeights(g)
	// Make edge {0,1} cost 10.
	p01 := g.PortTo(0, 1)
	w[0][p01-1] = 10
	w[1][g.BackPort(0, p01)-1] = 10
	a, err := NewWeightedAPSP(g, w)
	if err != nil {
		t.Fatal(err)
	}
	// d(0,1) should be 3 via 0-3-2-1.
	if d := a.Dist(0, 1); d != 3 {
		t.Fatalf("d(0,1) = %d, want 3", d)
	}
	arcs := WeightedFirstArcs(g, a, w, 0, 1)
	if len(arcs) != 1 || g.Neighbor(0, arcs[0]) != 3 {
		t.Fatalf("weighted first arcs %v should route via vertex 3", arcs)
	}
}

func TestParallelAPSPMatchesSerial(t *testing.T) {
	g := gen.RandomConnected(200, 0.05, xrand.New(3))
	serial := NewAPSP(g)
	for _, workers := range []int{0, 1, 4, 13} {
		par := NewAPSPParallel(g, workers)
		for u := 0; u < 200; u++ {
			for v := 0; v < 200; v++ {
				if serial.Dist(graph.NodeID(u), graph.NodeID(v)) != par.Dist(graph.NodeID(u), graph.NodeID(v)) {
					t.Fatalf("workers=%d: mismatch at (%d,%d)", workers, u, v)
				}
			}
		}
	}
}

func TestParallelAPSPEmpty(t *testing.T) {
	g := graph.New(0)
	a := NewAPSPParallel(g, 4)
	if a.Order() != 0 {
		t.Fatal("empty parallel APSP wrong")
	}
}
