package shortest

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// Weights assigns a positive cost to every arc: Weights[u][k] is the cost
// of the arc leaving u through port k+1. The referenced schemes of the
// paper's Table 1 comments ([1], [2]) support non-uniform arc costs; this
// file supplies the weighted substrate so the repository's schemes can be
// exercised in that regime too.
type Weights [][]int32

// UniformWeights returns the all-ones cost assignment (reduces weighted
// computations to the hop metric).
func UniformWeights(g *graph.Graph) Weights {
	w := make(Weights, g.Order())
	for u := range w {
		w[u] = make([]int32, g.Degree(graph.NodeID(u)))
		for k := range w[u] {
			w[u][k] = 1
		}
	}
	return w
}

// RandomWeights returns a symmetric assignment with every edge cost drawn
// uniformly from [1, maxW] off r. The draw order is fixed (vertices in
// increasing id, arcs in port order, one draw per edge at its lower
// endpoint), so a (graph, maxW, seed) triple names one weight assignment
// everywhere — experiments, CLIs and tests share this generator. Costs
// are int32 with MaxInt32 reserved for Unreachable, so maxW clamps to
// MaxInt32-1: the generator can never emit a wrapped or sentinel cost
// (CLIs reject larger -maxweight values up front, see cliutil).
func RandomWeights(g *graph.Graph, maxW int, r *xrand.Rand) Weights {
	w := UniformWeights(g)
	if maxW <= 1 {
		return w
	}
	if maxW > math.MaxInt32-1 {
		maxW = math.MaxInt32 - 1
	}
	for u := 0; u < g.Order(); u++ {
		backs := g.BackPorts(graph.NodeID(u))
		for i, v := range g.Arcs(graph.NodeID(u)) {
			if graph.NodeID(u) < v {
				c := int32(r.Intn(maxW) + 1)
				w[u][i] = c
				w[v][backs[i]-1] = c
			}
		}
	}
	return w
}

// Validate checks shape, positivity and symmetry (the cost of an edge
// must be the same in both directions, matching the symmetric-digraph
// model). Shape is checked for EVERY vertex before any symmetry probe
// dereferences a neighbor's row, so malformed weights — a row shorter
// than its vertex's degree — are reported as errors instead of panicking
// partway through the scan.
func (w Weights) Validate(g *graph.Graph) error {
	if len(w) != g.Order() {
		return fmt.Errorf("shortest: weights cover %d vertices, graph has %d", len(w), g.Order())
	}
	for u := range w {
		if len(w[u]) != g.Degree(graph.NodeID(u)) {
			return fmt.Errorf("shortest: vertex %d has %d weights for degree %d", u, len(w[u]), g.Degree(graph.NodeID(u)))
		}
	}
	for u := range w {
		for k, c := range w[u] {
			if c <= 0 {
				return fmt.Errorf("shortest: non-positive weight %d on arc (%d, port %d)", c, u, k+1)
			}
			v := g.Neighbor(graph.NodeID(u), graph.Port(k+1))
			back := g.BackPort(graph.NodeID(u), graph.Port(k+1))
			if w[v][back-1] != c {
				return fmt.Errorf("shortest: asymmetric weight on edge {%d,%d}: %d vs %d", u, v, c, w[v][back-1])
			}
		}
	}
	return nil
}

// Dijkstra returns weighted distances from src under w.
func Dijkstra(g *graph.Graph, w Weights, src graph.NodeID) []int32 {
	dist, _ := DijkstraInto(g, w, src, nil, nil)
	return dist
}

// DijkstraInto is Dijkstra with caller-owned scratch: dist and the heap
// buffer are reused when large enough and reallocated otherwise, and both
// are returned so a streaming reader can run one traversal per requested
// row with zero steady-state allocation — the weighted analogue of
// BFSInto. The heap is an index-based binary heap over the slice itself
// (manual sift up/down, lazy deletion of stale entries), so pushes and
// pops never box through the container/heap interface.
//
// Relaxation is evaluated in int64 and saturates at Unreachable: since
// weights can be as large as MaxInt32-1 and Unreachable is the MaxInt32
// sentinel, the int32 sum d(u) + w(u,v) of the naive relaxation can wrap
// negative and corrupt the whole row. Any path cost reaching Unreachable
// or beyond is reported as Unreachable — distances stay non-negative and
// the row stays a deterministic function of (graph, weights, source),
// whatever the heap's tie order.
//
//repolint:hotpath
func DijkstraInto(g *graph.Graph, w Weights, src graph.NodeID, dist []int32, pq DijkstraHeap) ([]int32, DijkstraHeap) {
	n := g.Order()
	if cap(dist) < n {
		dist = make([]int32, n)
	}
	dist = dist[:n]
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	if cap(pq) < 1 {
		pq = make([]heapItem, 0, 64)
	}
	pq = pq[:0]
	pq = append(pq, heapItem{node: src, dist: 0})
	for len(pq) > 0 {
		it := pq[0]
		last := len(pq) - 1
		pq[0] = pq[last]
		pq = pq[:last]
		siftDown(pq, 0)
		if it.dist > dist[it.node] {
			continue // stale entry
		}
		u := it.node
		du := int64(it.dist)
		wu := w[u]
		for i, v := range g.Arcs(u) {
			if v < 0 {
				continue // dead slot left by a removed edge
			}
			// int64 arithmetic: du < Unreachable and wu[i] <= MaxInt32, so
			// the sum is exact; a sum at or past Unreachable can never beat
			// dist[v] <= Unreachable, so overflowing paths saturate away.
			if nd := du + int64(wu[i]); nd < int64(dist[v]) {
				dist[v] = int32(nd)
				pq = append(pq, heapItem{node: v, dist: int32(nd)})
				siftUp(pq, len(pq)-1)
			}
		}
	}
	return dist, pq
}

// NewWeightedAPSP computes the weighted all-pairs table by n Dijkstra
// runs. The APSP type is shared with the unweighted path, so all
// downstream consumers (tables, forced arcs, stretch measurement against
// weighted distance) work unchanged. Rows are carved out of one
// contiguous n×n block and the heap scratch is reused across sources,
// mirroring NewAPSP.
func NewWeightedAPSP(g *graph.Graph, w Weights) (*APSP, error) {
	if err := w.Validate(g); err != nil {
		return nil, err
	}
	g.Freeze()
	n := g.Order()
	a := &APSP{n: n, dist: make([][]int32, n)}
	block := make([]int32, n*n)
	var pq DijkstraHeap
	for u := 0; u < n; u++ {
		row := block[u*n : (u+1)*n : (u+1)*n]
		a.dist[u], pq = DijkstraInto(g, w, graph.NodeID(u), row, pq)
	}
	return a, nil
}

// NewWeightedAPSPParallel computes the weighted all-pairs table with a
// pool of workers, one Dijkstra per source — the weighted mirror of
// NewAPSPParallel. Rows are independent and each row is a deterministic
// function of (graph, weights, source), so the table is bit-identical to
// NewWeightedAPSP at every worker count. workers <= 0 selects GOMAXPROCS.
func NewWeightedAPSPParallel(g *graph.Graph, w Weights, workers int) (*APSP, error) {
	if err := w.Validate(g); err != nil {
		return nil, err
	}
	g.Freeze()
	n := g.Order()
	workers = normWorkers(workers)
	if workers > n {
		workers = n
	}
	a := &APSP{n: n, dist: make([][]int32, n)}
	if n == 0 {
		return a, nil
	}
	block := make([]int32, n*n)
	src := make(chan int, workers)
	var wg sync.WaitGroup
	for x := 0; x < workers; x++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var pq DijkstraHeap
			for u := range src {
				row := block[u*n : (u+1)*n : (u+1)*n]
				a.dist[u], pq = DijkstraInto(g, w, graph.NodeID(u), row, pq)
			}
		}()
	}
	for u := 0; u < n; u++ {
		src <- u
	}
	close(src)
	wg.Wait()
	return a, nil
}

// WeightedFirstArcs returns the ports of u that begin some minimum-cost
// path toward v under w — the weighted analogue of FirstArcs. The
// membership test runs in int64 so near-MaxInt32 costs cannot wrap the
// d(x,v) + w(u,x) sum negative and admit (or hide) arcs.
func WeightedFirstArcs(g *graph.Graph, a *APSP, w Weights, u, v graph.NodeID) []graph.Port {
	if u == v {
		return nil
	}
	var out []graph.Port
	duv := int64(a.Dist(u, v))
	wu := w[u]
	for i, x := range g.Arcs(u) {
		if x < 0 {
			continue
		}
		if dx := a.Dist(x, v); dx != Unreachable && int64(dx)+int64(wu[i]) == duv {
			out = append(out, graph.Port(i+1))
		}
	}
	return out
}

// heapItem is one entry of the index-based binary heap DijkstraInto
// maintains over a plain slice.
type heapItem struct {
	node graph.NodeID
	dist int32
}

// DijkstraHeap is the reusable priority-queue buffer of DijkstraInto —
// opaque to callers, who only hold it between calls the way streaming
// readers hold their BFS queue.
type DijkstraHeap []heapItem

// siftUp restores the heap order after appending at index i.
func siftUp(h []heapItem, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].dist <= h[i].dist {
			return
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

// siftDown restores the heap order after replacing the root at index i.
func siftDown(h []heapItem, i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		least := l
		if r := l + 1; r < n && h[r].dist < h[l].dist {
			least = r
		}
		if h[i].dist <= h[least].dist {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}
