package shortest

import (
	"container/heap"
	"fmt"

	"repro/internal/graph"
)

// Weights assigns a positive cost to every arc: Weights[u][k] is the cost
// of the arc leaving u through port k+1. The referenced schemes of the
// paper's Table 1 comments ([1], [2]) support non-uniform arc costs; this
// file supplies the weighted substrate so the repository's schemes can be
// exercised in that regime too.
type Weights [][]int32

// UniformWeights returns the all-ones cost assignment (reduces weighted
// computations to the hop metric).
func UniformWeights(g *graph.Graph) Weights {
	w := make(Weights, g.Order())
	for u := range w {
		w[u] = make([]int32, g.Degree(graph.NodeID(u)))
		for k := range w[u] {
			w[u][k] = 1
		}
	}
	return w
}

// Validate checks shape, positivity and symmetry (the cost of an edge
// must be the same in both directions, matching the symmetric-digraph
// model).
func (w Weights) Validate(g *graph.Graph) error {
	if len(w) != g.Order() {
		return fmt.Errorf("shortest: weights cover %d vertices, graph has %d", len(w), g.Order())
	}
	for u := range w {
		if len(w[u]) != g.Degree(graph.NodeID(u)) {
			return fmt.Errorf("shortest: vertex %d has %d weights for degree %d", u, len(w[u]), g.Degree(graph.NodeID(u)))
		}
		for k, c := range w[u] {
			if c <= 0 {
				return fmt.Errorf("shortest: non-positive weight %d on arc (%d, port %d)", c, u, k+1)
			}
			v := g.Neighbor(graph.NodeID(u), graph.Port(k+1))
			back := g.BackPort(graph.NodeID(u), graph.Port(k+1))
			if w[v][back-1] != c {
				return fmt.Errorf("shortest: asymmetric weight on edge {%d,%d}: %d vs %d", u, v, c, w[v][back-1])
			}
		}
	}
	return nil
}

// Dijkstra returns weighted distances from src under w.
func Dijkstra(g *graph.Graph, w Weights, src graph.NodeID) []int32 {
	n := g.Order()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	pq := &nodeHeap{{node: src, dist: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(heapItem)
		if it.dist > dist[it.node] {
			continue // stale entry
		}
		u := it.node
		du := dist[u]
		wu := w[u]
		for i, v := range g.Arcs(u) {
			nd := du + wu[i]
			if nd < dist[v] {
				dist[v] = nd
				heap.Push(pq, heapItem{node: v, dist: nd})
			}
		}
	}
	return dist
}

// NewWeightedAPSP computes the weighted all-pairs table by n Dijkstra
// runs. The APSP type is shared with the unweighted path, so all
// downstream consumers (tables, forced arcs, stretch measurement against
// weighted distance) work unchanged.
func NewWeightedAPSP(g *graph.Graph, w Weights) (*APSP, error) {
	if err := w.Validate(g); err != nil {
		return nil, err
	}
	g.Freeze()
	n := g.Order()
	a := &APSP{n: n, dist: make([][]int32, n)}
	for u := 0; u < n; u++ {
		a.dist[u] = Dijkstra(g, w, graph.NodeID(u))
	}
	return a, nil
}

// WeightedFirstArcs returns the ports of u that begin some minimum-cost
// path toward v under w — the weighted analogue of FirstArcs.
func WeightedFirstArcs(g *graph.Graph, a *APSP, w Weights, u, v graph.NodeID) []graph.Port {
	if u == v {
		return nil
	}
	var out []graph.Port
	duv := a.Dist(u, v)
	wu := w[u]
	for i, x := range g.Arcs(u) {
		if dx := a.Dist(x, v); dx != Unreachable && dx+wu[i] == duv {
			out = append(out, graph.Port(i+1))
		}
	}
	return out
}

type heapItem struct {
	node graph.NodeID
	dist int32
}

type nodeHeap []heapItem

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
