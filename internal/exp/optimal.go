package exp

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/scheme/interval"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

func init() {
	Register(Experiment{ID: "E16", Title: "optimal interval routing (reference [5]) — exhaustive labelings on small graphs", Run: runE16})
}

// runE16 compares the exhaustively optimal vertex labeling against the
// identity and DFS heuristics on small graphs — the exact-compactness
// question of Fraigniaud & Gavoille's companion paper "Optimal interval
// routing" (reference [5]). k = 1 rows certify 1-IRS membership; rows
// with identical optimal and heuristic k show where the cheap labelings
// are already optimal.
func runE16() ([]*Table, error) {
	t := &Table{
		ID:      "E16",
		Title:   "max intervals per arc: identity vs DFS vs optimal labeling",
		Columns: []string{"graph", "n", "k identity", "k DFS", "k optimal", "1-IRS certified"},
	}
	r := xrand.New(51)
	workloads := []struct {
		name string
		g    *graph.Graph
	}{
		{"path P7", gen.Path(7)},
		{"cycle C8", gen.Cycle(8)},
		{"star K1,7", gen.Star(8)},
		{"tree(8)", gen.RandomTree(8, r.Split())},
		{"grid 3x3", gen.Grid2D(3, 3)},
		{"K3,3", gen.CompleteBipartite(3, 3)},
		{"cube H3", gen.Hypercube(3)},
		{"K7", gen.Complete(7)},
		{"random(8,.4)", gen.RandomConnected(8, 0.4, r.Split())},
		{"random(9,.3)", gen.RandomConnected(9, 0.3, r.Split())},
	}
	for _, w := range workloads {
		apsp := shortest.NewAPSPParallel(w.g, evalOpt.Workers)
		ident, err := interval.New(w.g, apsp, interval.Options{Policy: interval.RunGreedy})
		if err != nil {
			return nil, err
		}
		dfs, err := interval.New(w.g, apsp, interval.Options{Labels: interval.DFSLabels(w.g), Policy: interval.RunGreedy})
		if err != nil {
			return nil, err
		}
		_, kOpt, err := interval.OptimalLabels(w.g, apsp)
		if err != nil {
			return nil, err
		}
		certified := "no"
		if kOpt == 1 {
			certified = "yes"
		}
		t.AddRow(
			w.name, fmt.Sprintf("%d", w.g.Order()),
			fmt.Sprintf("%d", ident.MaxIntervalsPerArc()),
			fmt.Sprintf("%d", dfs.MaxIntervalsPerArc()),
			fmt.Sprintf("%d", kOpt),
			certified,
		)
	}
	return []*Table{t}, nil
}
