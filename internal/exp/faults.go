package exp

import (
	"bytes"
	"fmt"

	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/scheme/landmark"
	"repro/internal/scheme/table"
	"repro/internal/schemeio"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

func init() {
	Register(Experiment{ID: "E23", Title: "dynamic topology — seeded faults, degraded service, incremental repair", Run: runE23})
}

// faultWorkloads are the E23 graph families: one per structural regime
// the paper's Table 1 distinguishes (sparse random, bounded-degree
// torus, hypercube). Rebuilt per call — fault injection mutates them.
func faultWorkloads() []struct {
	name string
	g    *graph.Graph
} {
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"random(96,.08)", gen.RandomConnected(96, 0.08, xrand.New(20250807))},
		{"torus 8x8", gen.Torus2D(8, 8)},
		{"hypercube H6", gen.Hypercube(6)},
	}
}

// runE23 measures the two halves of the dynamic-topology story. Table
// E23a is degraded service: a scheme built on the intact graph keeps
// routing after seeded edge kills (connectivity NOT preserved), and the
// harness classifies every ordered live pair — delivered, detected
// disconnection, or a typed failure (dead-port dominates: stale tables
// fail exactly by walking into a hole; false deliveries must be zero).
// Table E23b is incremental repair on connectivity-preserving kills:
// dirty-set size, rows actually changed, bit-identity of the repaired
// scheme against a from-scratch rebuild, restored delivery, and — for
// the table scheme — the size of the generation patch (schemeio delta)
// against a full re-encode. Everything is seeded and deterministic.
func runE23() ([]*Table, error) {
	ta := &Table{
		ID:    "E23a",
		Title: "degraded service — unrepaired scheme on the faulted topology",
		Note: "kills are free to disconnect; false deliveries are impossible by\n" +
			"construction (the simulator walks the real faulted graph).",
		Columns: []string{"graph", "scheme", "kills", "pairs", "disc", "delivery", "detect", "inflation", "dead-port", "other-fail"},
	}
	tb := &Table{
		ID:    "E23b",
		Title: "incremental repair vs from-scratch rebuild (connectivity-preserving kills)",
		Note: "identical = wire bytes of repaired scheme equal the rebuild's;\n" +
			"patch = schemeio generation delta (tables only), full = complete re-encode.",
		Columns: []string{"graph", "scheme", "kills", "dirty", "changed", "identical", "delivery", "stretch(mean)", "patch B", "full B"},
	}

	type schemeCase struct {
		name  string
		build func(g *graph.Graph, apsp *shortest.APSP) (routing.Scheme, error)
	}
	cases := []schemeCase{
		{"tables", func(g *graph.Graph, apsp *shortest.APSP) (routing.Scheme, error) {
			return table.New(g, apsp, table.MinPort)
		}},
		{"landmark", func(g *graph.Graph, apsp *shortest.APSP) (routing.Scheme, error) {
			return landmark.New(g, apsp, landmark.Options{Seed: 7})
		}},
	}

	// E23a — degraded service under unconstrained kills.
	for _, w := range faultWorkloads() {
		for _, sc := range cases {
			for _, kills := range []int{2, 6} {
				g := w.g.Clone()
				apsp := shortest.NewAPSPParallel(g, evalOpt.Workers)
				s, err := sc.build(g, apsp)
				if err != nil {
					return nil, fmt.Errorf("E23a %s/%s: %w", w.name, sc.name, err)
				}
				pre, err := faults.Measure(g, s, apsp, 0)
				if err != nil {
					return nil, fmt.Errorf("E23a %s/%s pre: %w", w.name, sc.name, err)
				}
				plan, err := faults.NewPlan(g, faults.Options{
					Mode: faults.KillEdges, Count: kills, Seed: 0xe23a, KeepConnected: false,
				})
				if err != nil {
					return nil, fmt.Errorf("E23a %s/%s plan: %w", w.name, sc.name, err)
				}
				for _, e := range plan.Edges {
					g.RemoveEdge(e[0], e[1])
				}
				g.Freeze()
				post, err := faults.Measure(g, s, shortest.NewAPSPParallel(g, evalOpt.Workers), 0)
				if err != nil {
					return nil, fmt.Errorf("E23a %s/%s post: %w", w.name, sc.name, err)
				}
				if post.FalseDeliver != 0 {
					return nil, fmt.Errorf("E23a %s/%s: %d false deliveries", w.name, sc.name, post.FalseDeliver)
				}
				other := 0
				for r, c := range post.Failures {
					if r != routing.ReasonDeadPort {
						other += c
					}
				}
				ta.AddRow(
					w.name, sc.name, fmt.Sprintf("%d", len(plan.Edges)),
					fmt.Sprintf("%d", post.Pairs), fmt.Sprintf("%d", post.Disconnected),
					fmt.Sprintf("%.4f", post.DeliveryRate()), fmt.Sprintf("%.2f", post.DetectionRate()),
					fmt.Sprintf("%.4f", faults.Inflation(pre, post)),
					fmt.Sprintf("%d", post.Failures[routing.ReasonDeadPort]), fmt.Sprintf("%d", other),
				)
			}
		}
	}

	// E23b — incremental repair, bit-identity, and the patch economy.
	for _, w := range faultWorkloads() {
		for _, sc := range cases {
			for _, kills := range []int{2, 6} {
				work := w.g.Clone()
				apsp := shortest.NewAPSPParallel(work, evalOpt.Workers)
				s, err := sc.build(work, apsp)
				if err != nil {
					return nil, fmt.Errorf("E23b %s/%s: %w", w.name, sc.name, err)
				}
				plan, err := faults.NewPlan(work, faults.Options{
					Mode: faults.KillEdges, Count: kills, Seed: 0xe23b, KeepConnected: true,
				})
				if err != nil {
					return nil, fmt.Errorf("E23b %s/%s plan: %w", w.name, sc.name, err)
				}
				for _, e := range plan.Edges {
					work.RemoveEdge(e[0], e[1])
				}
				work.Freeze()
				dirty := faults.DirtyRoots(apsp, plan.Edges)
				apsp.RefreshRows(work, dirty)

				changed := "-"
				patchB := "-"
				switch v := s.(type) {
				case *table.Scheme:
					ch, err := v.Repair(apsp, dirty, table.MinPort)
					if err != nil {
						return nil, fmt.Errorf("E23b %s/%s repair: %w", w.name, sc.name, err)
					}
					changed = fmt.Sprintf("%d", len(ch))
					d, err := schemeio.NewDelta(1, plan.Edges, v, ch)
					if err != nil {
						return nil, fmt.Errorf("E23b %s/%s delta: %w", w.name, sc.name, err)
					}
					blob, err := schemeio.EncodeDelta(work, d)
					if err != nil {
						return nil, fmt.Errorf("E23b %s/%s delta encode: %w", w.name, sc.name, err)
					}
					patchB = fmt.Sprintf("%d", len(blob))
				case *landmark.Scheme:
					if err := v.Repair(apsp, dirty); err != nil {
						return nil, fmt.Errorf("E23b %s/%s repair: %w", w.name, sc.name, err)
					}
				}

				// Rebuild from scratch on an identically faulted clone and
				// compare wire bytes — the bit-identity acceptance bar.
				faulted := w.g.Clone()
				plan.Apply(faulted)
				fresh, err := sc.build(faulted, shortest.NewAPSPParallel(faulted, evalOpt.Workers))
				if err != nil {
					return nil, fmt.Errorf("E23b %s/%s rebuild: %w", w.name, sc.name, err)
				}
				encR, err := schemeio.Encode(work, s)
				if err != nil {
					return nil, err
				}
				encF, err := schemeio.Encode(faulted, fresh)
				if err != nil {
					return nil, err
				}
				identical := "yes"
				if !bytes.Equal(encR.Bytes, encF.Bytes) {
					identical = "NO"
				}
				post, err := faults.Measure(work, s, apsp, 0)
				if err != nil {
					return nil, fmt.Errorf("E23b %s/%s post: %w", w.name, sc.name, err)
				}
				tb.AddRow(
					w.name, sc.name, fmt.Sprintf("%d", len(plan.Edges)),
					fmt.Sprintf("%d", len(dirty)), changed, identical,
					fmt.Sprintf("%.4f", post.DeliveryRate()), fmt.Sprintf("%.4f", post.MeanStretch),
					patchB, fmt.Sprintf("%d", len(encR.Bytes)),
				)
			}
		}
	}
	return []*Table{ta, tb}, nil
}
