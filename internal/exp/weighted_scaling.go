package exp

import (
	"fmt"
	"time"

	"repro/internal/evaluate"
	"repro/internal/gen"
	"repro/internal/routing"
	"repro/internal/scheme/landmark"
	"repro/internal/scheme/table"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

func init() {
	Register(Experiment{ID: "E19", Title: "weighted distance backends — beyond-RAM scaling under non-uniform arc costs", Run: runE19})
}

// runE19 is the weighted mirror of E18: it sweeps the evaluator's three
// distance backends — dense weighted table, per-worker streaming
// Dijkstra, bounded row cache — over growing random instances under
// symmetric arc costs, for the two scheme regimes E18 contrasts
// (minimum-cost tables: cost stretch 1; landmark: hop guarantee 3, cost
// stretch recorded as measured). Every backend must report identical
// cost stretch — Dijkstra rows are deterministic functions of (graph,
// weights, source), the equality the weighted conformance matrix pins —
// so the interesting columns are again the resident distance rows/bytes
// and wall time. Before this experiment the weighted path silently
// materialized the dense n² table whatever -distmode said; E19 exists to
// record that the weighted metric now scales through the same streaming
// pipeline as the hop metric.
func runE19() ([]*Table, error) {
	t := &Table{
		ID:    "E19",
		Title: "weighted backend scaling sweep (sampled cost stretch, per-backend memory/time)",
		Note: "weighted mirror of E18: denominators are Dijkstra rows under symmetric costs\n" +
			"uniform on [1, maxW]; backends agree bit-for-bit (weighted conformance matrix).\n" +
			"rows(1w)/distMiB as in E18 — resident distance rows at ONE worker. ms is wall\n" +
			"time (machine-dependent; every other column is deterministic).",
		Columns: []string{"graph", "n", "maxW", "scheme", "backend", "pairs", "stretch(max)", "stretch(mean)", "MEM_local", "rows(1w)", "distMiB", "ms"},
	}
	for _, n := range []int{512, 1536} {
		g := gen.RandomConnected(n, 6.0/float64(n), xrand.New(uint64(n)*13))
		w := shortest.RandomWeights(g, 16, xrand.New(uint64(n)*29))
		apsp, err := shortest.NewWeightedAPSPParallel(g, w, evalOpt.Workers)
		if err != nil {
			return nil, fmt.Errorf("E19 n=%d: %w", n, err)
		}
		hop := shortest.NewAPSPParallel(g, evalOpt.Workers)
		for _, schemeName := range []string{"tables", "landmark"} {
			var s routing.Scheme
			switch schemeName {
			case "tables":
				s, err = table.NewWeighted(g, w, apsp, table.MinPort)
			case "landmark":
				s, err = landmark.New(g, hop, landmark.Options{Seed: uint64(n)})
			}
			if err != nil {
				return nil, fmt.Errorf("E19 n=%d/%s: %w", n, schemeName, err)
			}
			mem := evaluate.Memory(g, s, evalOpt)
			for _, mode := range []evaluate.DistMode{evaluate.DistDense, evaluate.DistStream, evaluate.DistCache} {
				opts := evalOpt
				opts.DistMode = mode
				opts.Sample = 20000
				opts.Seed = 1
				opts.Distances = nil
				var denseArg *shortest.APSP
				if mode == evaluate.DistDense {
					denseArg = apsp
				}
				src, err := opts.SourceFor(g, w, denseArg)
				if err != nil {
					return nil, fmt.Errorf("E19 n=%d/%s/%s: %w", n, schemeName, mode, err)
				}
				opts.Distances = src
				start := time.Now()
				rep, err := evaluate.WeightedStretch(g, s, w, denseArg, opts)
				if err != nil {
					return nil, fmt.Errorf("E19 n=%d/%s/%s: %w", n, schemeName, mode, err)
				}
				elapsed := time.Since(start)
				// Pinned to one worker, like E18: the report must not
				// depend on -workers.
				rows := src.ResidentRows(1)
				t.AddRow(
					"random", fmt.Sprintf("%d", n), "16", s.Name(), mode.String(),
					fmt.Sprintf("%d", rep.Pairs),
					fmt.Sprintf("%.3f", rep.Max), fmt.Sprintf("%.3f", rep.Mean),
					fmt.Sprintf("%d", mem.LocalBits),
					fmt.Sprintf("%d", rows),
					fmt.Sprintf("%.1f", float64(rows)*float64(n)*4/(1<<20)),
					fmt.Sprintf("%d", elapsed.Milliseconds()),
				)
			}
		}
	}
	return []*Table{t}, nil
}
