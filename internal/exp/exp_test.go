package exp

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// DESIGN.md promises experiments E1..E11 for the paper artifacts plus
	// extensions E12..E20 and E23 (E21/E22 are recorded outside routelab).
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20", "E23"}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Fatalf("experiment %s not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(All()), len(want))
	}
}

func TestAllSortedNumerically(t *testing.T) {
	ids := []string{}
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	want := "E1 E2 E3 E4 E5 E6 E7 E8 E9 E10 E11 E12 E13 E14 E15 E16 E17 E18 E19 E20 E23"
	if got := strings.Join(ids, " "); got != want {
		t.Fatalf("order %q, want %q", got, want)
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{
		ID:      "T",
		Title:   "demo",
		Note:    "a note",
		Columns: []string{"x", "long-column"},
	}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	for _, frag := range []string{"== T: demo ==", "a note", "long-column", "333"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("rendered table missing %q:\n%s", frag, out)
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(Experiment{ID: "E1", Title: "dup"})
}

func TestE2Figure1Deterministic(t *testing.T) {
	e, _ := Get("E2")
	t1, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	for _, x := range t1 {
		x.Render(&a)
	}
	for _, x := range t2 {
		x.Render(&b)
	}
	if a.String() != b.String() {
		t.Fatal("E2 not deterministic")
	}
}

func TestE3Produces7Classes(t *testing.T) {
	e, _ := Get("E3")
	tables, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("E3 returned %d tables, want 2", len(tables))
	}
	if got := len(tables[0].Rows); got != 7 {
		t.Fatalf("E3 listed %d canonical matrices, want 7", got)
	}
}

func TestE4AllVerified(t *testing.T) {
	e, _ := Get("E4")
	tables, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		if row[4] != "true" {
			t.Fatalf("a graph of constraints failed Lemma 2: %v", row)
		}
		if row[5] != "yes" || row[6] != "yes" {
			t.Fatalf("forcedness below stretch 2 broken: %v", row)
		}
	}
}

func TestE6BoundAlwaysHolds(t *testing.T) {
	e, _ := Get("E6")
	tables, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		if row[len(row)-1] != "true" {
			t.Fatalf("Lemma 1 bound violated in row %v", row)
		}
	}
}

func TestEveryExperimentRuns(t *testing.T) {
	// The whole registry must execute cleanly and produce non-empty,
	// well-shaped tables — the same code path the benchmarks and the
	// routelab CLI drive. E5 is covered separately below (it builds
	// 1024-vertex instances).
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	for _, e := range All() {
		if e.ID == "E5" {
			continue
		}
		tables, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if len(tables) == 0 {
			t.Fatalf("%s produced no tables", e.ID)
		}
		for _, tb := range tables {
			if len(tb.Rows) == 0 {
				t.Fatalf("%s produced an empty table %q", e.ID, tb.Title)
			}
			for _, row := range tb.Rows {
				if len(row) != len(tb.Columns) {
					t.Fatalf("%s: row width %d != %d columns", e.ID, len(row), len(tb.Columns))
				}
			}
		}
	}
}

func TestE5RebuildAlwaysOk(t *testing.T) {
	if testing.Short() {
		t.Skip("E5 builds 1024-vertex instances")
	}
	e, _ := Get("E5")
	tables, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		if row[len(row)-1] != "ok" {
			t.Fatalf("rebuild failed in row %v", row)
		}
	}
}
