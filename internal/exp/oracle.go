package exp

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

func init() {
	Register(Experiment{ID: "E14", Title: "k-level hierarchy (Table 1 middle rows) — stretch 2k-1 vs per-vertex state", Run: runE14})
}

// runE14 sweeps the level count k of the Thorup–Zwick-style oracle and
// records measured stretch against per-vertex state: the generalization
// of the landmark scheme (k = 2) that fills in the paper's Table 1
// middle rows, where each extra unit of tolerated stretch buys roughly
// an n^(1/k) factor of memory.
func runE14() ([]*Table, error) {
	t := &Table{
		ID:    "E14",
		Title: "distance-oracle hierarchy: stretch bound vs measured vs state",
		Note: "k = 2 is the landmark/ball structure of the stretch-3 routing scheme;\n" +
			"growing k continues Table 1's curve: guaranteed stretch 2k-1, per-vertex\n" +
			"state ~ k*n^(1/k) entries.",
		Columns: []string{"n", "k", "stretch bound", "measured max", "measured mean", "max bunch", "total entries", "max LocalBits"},
	}
	for _, n := range []int{128, 256} {
		g := gen.RandomConnected(n, 6.0/float64(n), xrand.New(uint64(n)*3))
		apsp := shortest.NewAPSP(g)
		for _, k := range []int{2, 3, 4, 5} {
			o, err := oracle.New(g, apsp, oracle.Options{K: k, Seed: uint64(k)})
			if err != nil {
				return nil, err
			}
			worst, sum, pairs := 0.0, 0.0, 0
			maxBits := 0
			for u := 0; u < n; u++ {
				if b := o.LocalBits(graph.NodeID(u)); b > maxBits {
					maxBits = b
				}
				for v := 0; v < n; v++ {
					if u == v {
						continue
					}
					est := o.Query(graph.NodeID(u), graph.NodeID(v))
					d := apsp.Dist(graph.NodeID(u), graph.NodeID(v))
					s := float64(est) / float64(d)
					if s > worst {
						worst = s
					}
					sum += s
					pairs++
				}
			}
			t.AddRow(
				fmt.Sprintf("%d", n), fmt.Sprintf("%d", k),
				fmt.Sprintf("%d", 2*k-1),
				fmt.Sprintf("%.2f", worst),
				fmt.Sprintf("%.2f", sum/float64(pairs)),
				fmt.Sprintf("%d", o.MaxBunch()),
				fmt.Sprintf("%d", o.TotalEntries()),
				fmt.Sprintf("%d", maxBits),
			)
		}
	}
	return []*Table{t}, nil
}
