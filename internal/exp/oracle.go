package exp

import (
	"fmt"

	"repro/internal/evaluate"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

func init() {
	Register(Experiment{ID: "E14", Title: "k-level hierarchy (Table 1 middle rows) — stretch 2k-1 vs per-vertex state", Run: runE14})
}

// runE14 sweeps the level count k of the Thorup–Zwick-style oracle and
// records measured stretch against per-vertex state: the generalization
// of the landmark scheme (k = 2) that fills in the paper's Table 1
// middle rows, where each extra unit of tolerated stretch buys roughly
// an n^(1/k) factor of memory.
func runE14() ([]*Table, error) {
	t := &Table{
		ID:    "E14",
		Title: "distance-oracle hierarchy: stretch bound vs measured vs state",
		Note: "k = 2 is the landmark/ball structure of the stretch-3 routing scheme;\n" +
			"growing k continues Table 1's curve: guaranteed stretch 2k-1, per-vertex\n" +
			"state ~ k*n^(1/k) entries.",
		Columns: []string{"n", "k", "stretch bound", "measured max", "measured mean", "max bunch", "total entries", "max LocalBits"},
	}
	for _, n := range []int{128, 256} {
		g := gen.RandomConnected(n, 6.0/float64(n), xrand.New(uint64(n)*3))
		apsp := shortest.NewAPSPParallel(g, evalOpt.Workers)
		for _, k := range []int{2, 3, 4, 5} {
			o, err := oracle.New(g, apsp, oracle.Options{K: k, Seed: uint64(k)})
			if err != nil {
				return nil, err
			}
			// The oracle estimate over the true distance is a ratio of
			// ints, so the pair engine measures it like routing stretch.
			rep, err := evaluate.Pairs(n, func(u, v graph.NodeID) (int32, int32, int, error) {
				return o.Query(u, v), apsp.Dist(u, v), 0, nil
			}, evalOpt)
			if err != nil {
				return nil, err
			}
			maxBits := evaluate.Memory(g, o, evalOpt).LocalBits
			t.AddRow(
				fmt.Sprintf("%d", n), fmt.Sprintf("%d", k),
				fmt.Sprintf("%d", 2*k-1),
				fmt.Sprintf("%.2f", rep.Max),
				fmt.Sprintf("%.2f", rep.Mean),
				fmt.Sprintf("%d", o.MaxBunch()),
				fmt.Sprintf("%d", o.TotalEntries()),
				fmt.Sprintf("%d", maxBits),
			)
		}
	}
	return []*Table{t}, nil
}
