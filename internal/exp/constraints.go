package exp

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

func init() {
	Register(Experiment{ID: "E2", Title: "Figure 1 — matrix of constraints on the Petersen graph", Run: runE2})
	Register(Experiment{ID: "E3", Title: "Equation 1 — canonical matrices dMpq (the set 3M23)", Run: runE3})
	Register(Experiment{ID: "E4", Title: "Equation 2 — the graphs of constraints of 3M23 (Lemma 2)", Run: runE4})
	Register(Experiment{ID: "E6", Title: "Lemma 1 — exact |dMpq| vs the counting bound", Run: runE6})
}

// runE2 regenerates Figure 1: a 5×5 shortest-path matrix of constraints
// on the Petersen graph, with the outer cycle as constrained vertices and
// the inner pentagram as targets, plus the exhaustive verification that
// every entry is forced.
func runE2() ([]*Table, error) {
	g := gen.Petersen()
	A := []graph.NodeID{0, 1, 2, 3, 4}
	B := []graph.NodeID{5, 6, 7, 8, 9}
	m, err := core.ConstraintMatrixOf(g, nil, A, B, 1.0)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "E2",
		Title: "5x5 shortest-path matrix of constraints on the Petersen graph",
		Note: "A = outer cycle {a1..a5}, B = pentagram {b1..b5}; entry (i,j) is the port\n" +
			"a_i MUST use toward b_j under ANY shortest-path routing function.\n" +
			fmt.Sprintf("unique shortest paths: %v; all %d ordered pairs forced at s=1: %v",
				core.UniqueShortestPaths(g, nil), g.Order()*(g.Order()-1), core.AllPairsForced(g, nil, 1.0)),
		Columns: []string{"", "b1", "b2", "b3", "b4", "b5"},
	}
	for i := 0; i < m.P; i++ {
		row := []string{fmt.Sprintf("a%d", i+1)}
		for j := 0; j < m.Q; j++ {
			row = append(row, fmt.Sprintf("%d", m.At(i, j)+1))
		}
		t.AddRow(row...)
	}
	return []*Table{t}, nil
}

// runE3 regenerates the worked example of Section 2: the seven canonical
// representatives of 3M23, alongside class counts for neighboring shapes.
func runE3() ([]*Table, error) {
	ms := core.Enumerate(3, 2, 3)
	listing := &Table{
		ID:      "E3",
		Title:   "canonical representatives of 3M23 (paper displays 7 matrices)",
		Columns: []string{"#", "index", "matrix (rows ; separated)"},
	}
	for i, m := range ms {
		listing.AddRow(
			fmt.Sprintf("%d", i+1),
			m.Index().String(),
			strings.ReplaceAll(m.String(), "\n", " ; "),
		)
	}
	counts := &Table{
		ID:      "E3",
		Title:   "|dMpq| for small shapes",
		Columns: []string{"d", "p", "q", "|dMpq| exact", "Lemma1 floor(d^pq/(p!q!(d!)^p))"},
	}
	for _, c := range [][3]int{{2, 2, 2}, {2, 2, 3}, {3, 2, 2}, {3, 2, 3}, {3, 3, 3}, {4, 2, 4}, {3, 2, 5}} {
		d, p, q := c[0], c[1], c[2]
		_, _, bound := core.Lemma1Bound(d, p, q)
		counts.AddRow(
			fmt.Sprintf("%d", d), fmt.Sprintf("%d", p), fmt.Sprintf("%d", q),
			fmt.Sprintf("%d", core.Count(d, p, q)), bound.String(),
		)
	}
	return []*Table{listing, counts}, nil
}

// runE4 regenerates Equation 2: builds the graph of constraints of each
// matrix of 3M23 and verifies every claim of Lemma 2 plus the forced-port
// property for stretch factors approaching 2.
func runE4() ([]*Table, error) {
	ms := core.Enumerate(3, 2, 3)
	t := &Table{
		ID:    "E4",
		Title: "graphs of constraints of 3M23",
		Note: "order <= p(d+1)+q = 11; every a_i->b_j has a unique length-2 path, all\n" +
			"alternatives have length >= 4, so the matrix is forced for every s < 2.",
		Columns: []string{"#", "matrix", "order", "bound", "Lemma2 verified", "forced@s=1", "forced@s=1.99", "forced@s=2"},
	}
	for i, m := range ms {
		cg, err := core.BuildConstraintGraph(m)
		if err != nil {
			return nil, err
		}
		verr := cg.VerifyLemma2()
		okAt := func(s float64) string {
			got, err := cg.ForcedMatrix(s)
			if err != nil {
				return "no"
			}
			if got.Equal(m) {
				return "yes"
			}
			return "differs"
		}
		t.AddRow(
			fmt.Sprintf("%d", i+1),
			strings.ReplaceAll(m.String(), "\n", " ; "),
			fmt.Sprintf("%d", cg.Order()),
			fmt.Sprintf("%d", cg.OrderBound()),
			fmt.Sprintf("%v", verr == nil),
			okAt(1.0), okAt(1.99), okAt(2.0),
		)
	}
	return []*Table{t}, nil
}

// runE6 checks Lemma 1 numerically: the exact class count always
// dominates d^pq / (p! q! (d!)^p).
func runE6() ([]*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "Lemma 1 counting bound vs exact enumeration",
		Columns: []string{"d", "p", "q", "exact", "bound", "log2 exact", "log2 bound form", "holds"},
	}
	for _, c := range [][3]int{
		{2, 1, 4}, {2, 2, 4}, {2, 3, 4}, {3, 2, 4}, {3, 3, 3}, {4, 2, 4}, {3, 2, 6}, {5, 2, 5},
	} {
		d, p, q := c[0], c[1], c[2]
		exact := core.Count(d, p, q)
		_, _, bound := core.Lemma1Bound(d, p, q)
		lg := core.Log2Lemma1Bound(d, p, q)
		holds := int64(exact) >= bound.Int64()
		t.AddRow(
			fmt.Sprintf("%d", d), fmt.Sprintf("%d", p), fmt.Sprintf("%d", q),
			fmt.Sprintf("%d", exact), bound.String(),
			fmt.Sprintf("%.2f", math.Log2(float64(exact))),
			fmt.Sprintf("%.2f", lg),
			fmt.Sprintf("%v", holds),
		)
	}
	return []*Table{t}, nil
}
