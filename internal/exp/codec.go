package exp

import (
	"fmt"
	"reflect"

	"repro/internal/evaluate"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/scheme/ecube"
	"repro/internal/scheme/interval"
	"repro/internal/scheme/kcomplete"
	"repro/internal/scheme/landmark"
	"repro/internal/scheme/table"
	"repro/internal/scheme/tree"
	"repro/internal/schemeio"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

func init() {
	Register(Experiment{ID: "E20", Title: "scheme persistence codec — serialized bits vs MEM under the fixed coding strategy", Run: runE20})
}

// runE20 cross-checks the paper's central quantity — the bits a router
// must store — against an encoding that actually exists: every scheme
// is serialized by the schemeio wire codec, decoded back, verified to
// route bit-identically (evaluation reports must match exactly; any
// divergence fails the experiment), and the serialized sizes are
// tabulated next to the coding-strategy stand-in (MEM_local/MEM_global
// from LocalBits) and Table 1's asymptotic row for the scheme. wire(x)
// is the per-router payload; the remainder of the blob is shared
// sections (header, label permutations, landmark sets, address paths —
// header material the paper's model leaves free).
func runE20() ([]*Table, error) {
	t := &Table{
		ID:    "E20",
		Title: "serialized scheme bits vs LocalBits (wire codec cross-check)",
		Note: "roundtrip=ok certifies the decoded scheme's evaluation report is bit-identical\n" +
			"to the built scheme's. max wire(x) / MEM_local compare per-router serialized bits\n" +
			"with the coding-strategy meter; total includes shared sections and the header.",
		Columns: []string{"graph", "n", "scheme", "stretch(max)", "MEM_local", "max wire(x)", "MEM_global", "wire total(b)", "bytes", "asymptotic", "roundtrip"},
	}
	type cell struct {
		scheme routing.Scheme
		g      *graph.Graph
		asym   string
		w      shortest.Weights // non-nil: verify under the weighted metric
	}
	families := []struct {
		name  string
		build func() *graph.Graph
	}{
		{"random(64,.1)", func() *graph.Graph { return gen.RandomConnected(64, 0.1, xrand.New(41)) }},
		{"tree(63)", func() *graph.Graph { return gen.RandomTree(63, xrand.New(42)) }},
		{"torus 8x8", func() *graph.Graph { return gen.Torus2D(8, 8) }},
		{"hypercube H6", func() *graph.Graph { return gen.Hypercube(6) }},
		{"K24", func() *graph.Graph { return gen.Complete(24) }},
		{"outerplanar(60)", func() *graph.Graph { return gen.MaximalOuterplanar(60, xrand.New(43)) }},
		{"petersen", func() *graph.Graph { return gen.Petersen() }},
	}
	for _, fam := range families {
		g := fam.build()
		apsp := shortest.NewAPSP(g)
		var cells []cell
		tb, err := table.New(g, apsp, table.MinPort)
		if err != nil {
			return nil, fmt.Errorf("E20 %s: %w", fam.name, err)
		}
		cells = append(cells, cell{tb, g, "O(n log n), s=1", nil})
		iv, err := interval.New(g, apsp, interval.Options{Labels: interval.DFSLabels(g), Policy: interval.RunGreedy})
		if err != nil {
			return nil, fmt.Errorf("E20 %s: %w", fam.name, err)
		}
		cells = append(cells, cell{iv, g, "O(d log n)..O(n log n), s=1", nil})
		lm, err := landmark.New(g, apsp, landmark.Options{Seed: 17})
		if err != nil {
			return nil, fmt.Errorf("E20 %s: %w", fam.name, err)
		}
		cells = append(cells, cell{lm, g, "o(n) polylog, s<=3", nil})
		switch fam.name {
		case "random(64,.1)":
			// The weighted-table variant rides the same wire kind: the
			// codec stores ports, whatever metric chose them.
			w := shortest.RandomWeights(g, 9, xrand.New(91))
			wtb, err := table.NewWeighted(g, w, nil, table.MinPort)
			if err != nil {
				return nil, fmt.Errorf("E20 %s: %w", fam.name, err)
			}
			cells = append(cells, cell{wtb, g, "O(n log n), s=1 (cost)", w})
		case "tree(63)":
			tr, err := tree.New(g, 0)
			if err != nil {
				return nil, fmt.Errorf("E20 %s: %w", fam.name, err)
			}
			cells = append(cells, cell{tr, g, "O(d log n), s=1", nil})
		case "hypercube H6":
			ec, err := ecube.New(g, 6)
			if err != nil {
				return nil, fmt.Errorf("E20 %s: %w", fam.name, err)
			}
			cells = append(cells, cell{ec, g, "Theta(log n), s=1", nil})
		case "K24":
			fr, err := kcomplete.NewFriendly(g)
			if err != nil {
				return nil, fmt.Errorf("E20 %s: %w", fam.name, err)
			}
			cells = append(cells, cell{fr, g, "O(log n), s=1", nil})
			// The adversary's move mutates port labelings; scramble a
			// clone so the friendly rows above stay untouched.
			ga := g.Clone()
			adv, err := kcomplete.Scramble(ga, xrand.New(8))
			if err != nil {
				return nil, fmt.Errorf("E20 %s: %w", fam.name, err)
			}
			cells = append(cells, cell{adv, ga, "Theta(n log n), s=1", nil})
		}
		for _, c := range cells {
			enc, err := schemeio.Encode(c.g, c.scheme)
			if err != nil {
				return nil, fmt.Errorf("E20 %s/%s: %w", fam.name, c.scheme.Name(), err)
			}
			dec, err := schemeio.Decode(enc.Bytes, c.g)
			if err != nil {
				return nil, fmt.Errorf("E20 %s/%s: decode: %w", fam.name, c.scheme.Name(), err)
			}
			want, got, err := evalPair(c.g, c.scheme, dec, c.w)
			if err != nil {
				return nil, fmt.Errorf("E20 %s/%s: %w", fam.name, c.scheme.Name(), err)
			}
			if !reflect.DeepEqual(got, want) {
				return nil, fmt.Errorf("E20 %s/%s: decoded scheme's report diverges from the built scheme's", fam.name, c.scheme.Name())
			}
			mem := evaluate.Memory(c.g, c.scheme, evalOpt)
			name := c.scheme.Name()
			if c.w != nil {
				name += " (weighted)"
			}
			t.AddRow(
				fam.name, fmt.Sprintf("%d", c.g.Order()), name,
				fmt.Sprintf("%.3f", want.Max),
				fmt.Sprintf("%d", mem.LocalBits),
				fmt.Sprintf("%d", enc.MaxRouterBits()),
				fmt.Sprintf("%d", mem.GlobalBits),
				fmt.Sprintf("%d", enc.TotalBits()),
				fmt.Sprintf("%d", len(enc.Bytes)),
				c.asym,
				"ok",
			)
		}
	}
	return []*Table{t}, nil
}

// evalPair evaluates the built and the decoded scheme under the cell's
// metric with the harness-wide options, returning both reports.
func evalPair(g *graph.Graph, built, dec routing.Scheme, w shortest.Weights) (*evaluate.Report, *evaluate.Report, error) {
	if w == nil {
		want, err := evaluate.Stretch(g, built, nil, evalOpt)
		if err != nil {
			return nil, nil, err
		}
		got, err := evaluate.Stretch(g, dec, nil, evalOpt)
		return want, got, err
	}
	want, err := evaluate.WeightedStretch(g, built, w, nil, evalOpt)
	if err != nil {
		return nil, nil, err
	}
	got, err := evaluate.WeightedStretch(g, dec, w, nil, evalOpt)
	return want, got, err
}
