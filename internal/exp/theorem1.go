package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/scheme/table"
)

func init() {
	Register(Experiment{ID: "E5", Title: "Theorem 1 — n^eps routers need Theta(n log n) bits for any stretch < 2", Run: runE5})
	Register(Experiment{ID: "E11", Title: "shortest-path variant (s = 1 row of Table 1, Gavoille–Perennes regime)", Run: runE11})
}

// Theorem1Sizes are the default sweep sizes; the benchmark harness reuses
// them so EXPERIMENTS.md and bench output agree.
var Theorem1Sizes = []int{256, 512, 1024}

// Theorem1Eps is the sweep of the constant ε of Theorem 1.
var Theorem1Eps = []float64{0.3, 0.5, 0.7}

// runE5 is the headline experiment. For each (n, ε) it:
//
//  1. draws a random (incompressible) matrix M and builds the padded
//     n-vertex graph of constraints G_n;
//  2. evaluates the proof's lower bound on the mean number of bits a
//     constrained router must keep, for ANY routing function of stretch
//     < 2 (Lemma 1 count minus the MB/MC overheads, divided by p);
//  3. builds actual shortest-path routing tables under the repository's
//     fixed coding strategy and measures the mean bits at the constrained
//     routers;
//  4. re-derives M from the routing function (the "rebuild" step of the
//     Kolmogorov argument) and reports whether it matches.
//
// The paper's claim is reproduced when measured ≥ lower bound, both grow
// like n log n, and the measured/upper ratio stays near 1 (tables cannot
// be compressed much at the constrained routers).
func runE5() ([]*Table, error) {
	t := &Table{
		ID:    "E5",
		Title: "Theorem 1 lower bound vs measured routing-table bits at constrained routers",
		Note: "LB/router = (log2|dMpq| - MB - MC)/p with Lemma 1 standing in for log2|dMpq|;\n" +
			"measured = mean encoded table row at the p constrained routers (fixed coding);\n" +
			"upper = (n-1)ceil(log2 d) raw table row. Paper shape: LB, measured, upper all Theta(n log n).",
		Columns: []string{"n", "eps", "p", "q", "d", "LB bits/router", "measured", "upper", "measured/LB", "rebuild"},
	}
	for _, n := range Theorem1Sizes {
		for _, eps := range Theorem1Eps {
			pr, err := core.ChooseParams(n, eps)
			if err != nil {
				return nil, err
			}
			ins, err := core.BuildInstance(pr, uint64(n)*1000+uint64(eps*100))
			if err != nil {
				return nil, err
			}
			b := core.LowerBound(pr)
			sch, err := table.New(ins.CG.G, nil, table.MinPort)
			if err != nil {
				return nil, err
			}
			measured, err := meanBitsOver(sch, ins.CG.A)
			if err != nil {
				return nil, err
			}
			rebuild := "ok"
			if _, err := ins.VerifyRebuild(sch); err != nil {
				rebuild = "FAIL"
			}
			ratio := 0.0
			if b.PerRouter > 0 {
				ratio = measured / b.PerRouter
			}
			t.AddRow(
				fmt.Sprintf("%d", n), fmt.Sprintf("%.2f", eps),
				fmt.Sprintf("%d", pr.P), fmt.Sprintf("%d", pr.Q), fmt.Sprintf("%d", pr.D),
				fmt.Sprintf("%.0f", b.PerRouter),
				fmt.Sprintf("%.0f", measured),
				fmt.Sprintf("%.0f", b.UpperPerNode),
				fmt.Sprintf("%.2f", ratio),
				rebuild,
			)
		}
	}
	return []*Table{t}, nil
}

// runE11 exercises the same machinery in the shortest-path regime the
// paper attributes to Gavoille & Perennes [9]: a FIXED small alphabet d
// lets p grow to Θ(n), so Θ(n) routers each need Ω(q log d) = Ω(n) bits
// at stretch 1 (the reference's full Θ(n log n) per router for Θ(n)
// routers uses a different construction; this experiment reproduces the
// many-routers end of the tradeoff our construction supports).
func runE11() ([]*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: "stretch-1 regime: many constrained routers (fixed alphabet d)",
		Note: "p = n/(2(d+1)) constrained routers (Theta(n)); forcedness holds at s = 1\n" +
			"a fortiori (s=1 < 2). LB and measured grow linearly in n per router, with\n" +
			"Theta(n) routers constrained simultaneously.",
		Columns: []string{"n", "d", "p", "q", "LB bits/router", "measured", "upper", "forced@s=1"},
	}
	for _, n := range []int{256, 512, 1024} {
		d := 8
		q := n / 2
		p := (n - q - 8) / (d + 1) // leave a few padding vertices
		pr := core.Params{N: n, Eps: 0, P: p, Q: q, D: d}
		ins, err := core.BuildInstance(pr, uint64(n))
		if err != nil {
			return nil, err
		}
		forced := "yes"
		if got, err := ins.CG.ForcedMatrix(1.0); err != nil || !got.Equal(ins.M) {
			forced = "NO"
		}
		b := core.LowerBound(pr)
		sch, err := table.New(ins.CG.G, nil, table.MinPort)
		if err != nil {
			return nil, err
		}
		measured, err := meanBitsOver(sch, ins.CG.A)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%d", n), fmt.Sprintf("%d", d),
			fmt.Sprintf("%d", p), fmt.Sprintf("%d", q),
			fmt.Sprintf("%.0f", b.PerRouter),
			fmt.Sprintf("%.0f", measured),
			fmt.Sprintf("%.0f", b.UpperPerNode),
			forced,
		)
	}
	return []*Table{t}, nil
}

func meanBitsOver(s *table.Scheme, nodes []int32) (float64, error) {
	if len(nodes) == 0 {
		return 0, fmt.Errorf("exp: empty router set")
	}
	sum := 0
	for _, x := range nodes {
		sum += s.LocalBits(x)
	}
	return float64(sum) / float64(len(nodes)), nil
}
