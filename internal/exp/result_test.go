package exp

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/evaluate"
)

func demoResults() []*Result {
	t := &Table{
		ID:      "E0",
		Title:   "demo table",
		Note:    "a note",
		Columns: []string{"n", "bits"},
	}
	t.AddRow("8", "24")
	t.AddRow("16", "64")
	return []*Result{{ID: "E0", Title: "demo experiment", Tables: []*Table{t}}}
}

func TestParseFormat(t *testing.T) {
	for s, want := range map[string]Format{"": Text, "text": Text, "json": JSON, "csv": CSV} {
		got, err := ParseFormat(s)
		if err != nil || got != want {
			t.Fatalf("ParseFormat(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestRenderText(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderResults(&buf, demoResults(), Text); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"### E0 — demo experiment", "== E0: demo table ==", "a note", "64"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("text output missing %q:\n%s", frag, out)
		}
	}
}

func TestRenderJSONRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderResults(&buf, demoResults(), JSON); err != nil {
		t.Fatal(err)
	}
	var back []*Result
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(back) != 1 || back[0].ID != "E0" || len(back[0].Tables) != 1 {
		t.Fatalf("round trip lost structure: %+v", back)
	}
	tb := back[0].Tables[0]
	if tb.Columns[1] != "bits" || tb.Rows[1][1] != "64" {
		t.Fatalf("round trip lost cells: %+v", tb)
	}
}

func TestRenderCSVParses(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderResults(&buf, demoResults(), CSV); err != nil {
		t.Fatal(err)
	}
	r := csv.NewReader(&buf)
	r.FieldsPerRecord = -1
	records, err := r.ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v", err)
	}
	if len(records) != 4 { // header, columns, two data rows
		t.Fatalf("got %d records: %v", len(records), records)
	}
	if records[0][0] != "experiment" || records[0][1] != "E0" {
		t.Fatalf("header record %v", records[0])
	}
	if records[3][1] != "64" {
		t.Fatalf("data record %v", records[3])
	}
}

func TestRunResultWrapsRun(t *testing.T) {
	e, ok := Get("E2")
	if !ok {
		t.Fatal("E2 not registered")
	}
	r, err := e.RunResult()
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "E2" || len(r.Tables) == 0 {
		t.Fatalf("result %+v", r)
	}
}

// TestEvalOptionsDoNotChangeExhaustiveResults pins the determinism
// contract at the harness level: an experiment's tables are identical
// whatever the worker count, because exhaustive evaluation is
// bit-identical by construction.
func TestEvalOptionsDoNotChangeExhaustiveResults(t *testing.T) {
	defer SetEvalOptions(EvalOptions())
	e, ok := Get("E13")
	if !ok {
		t.Fatal("E13 not registered")
	}
	SetEvalOptions(evaluate.Options{Workers: 1})
	serial, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	SetEvalOptions(evaluate.Options{Workers: 6})
	parallel, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	for _, tb := range serial {
		tb.Render(&a)
	}
	for _, tb := range parallel {
		tb.Render(&b)
	}
	if a.String() != b.String() {
		t.Fatalf("E13 output depends on worker count:\n--- workers=1\n%s\n--- workers=6\n%s", a.String(), b.String())
	}
}
