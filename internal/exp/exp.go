// Package exp is the experiment harness: it regenerates every table and
// figure of the paper (and the quantitative claims made in its prose) as
// plain-text tables, one experiment per paper artifact.
//
// Experiments are registered under stable identifiers E1..E20 (see
// DESIGN.md for the mapping to tables/figures); the routelab CLI and the
// repository-level benchmarks both drive this registry, so the numbers in
// EXPERIMENTS.md are reproducible with a single command.
//
// All-pairs measurements flow through the worker-pool engine of
// internal/evaluate (configured via SetEvalOptions); results are
// structured Result values renderable as text, JSON or CSV (result.go).
package exp

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Table is one structured experiment table: named columns plus rows of
// formatted cells. Render writes the plain-text form; the JSON and CSV
// renderers in result.go serialize the same data machine-readably.
type Table struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Note    string     `json:"note,omitempty"` // free-form commentary displayed under the title
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table in aligned plain text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		for _, line := range strings.Split(t.Note, "\n") {
			fmt.Fprintf(w, "   %s\n", line)
		}
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Columns)
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	ID    string
	Title string
	// Run produces one or more result tables. Implementations must be
	// deterministic: all randomness flows from fixed seeds.
	Run func() ([]*Table, error)
}

var registry = map[string]Experiment{}

// Register adds an experiment; duplicate ids panic (registration happens
// in package init, so this is a programming error).
func Register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("exp: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every registered experiment sorted by id (E1, E2, ...,
// numerically aware).
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return lessID(out[i].ID, out[j].ID) })
	return out
}

func lessID(a, b string) bool {
	var na, nb int
	fmt.Sscanf(a, "E%d", &na)
	fmt.Sscanf(b, "E%d", &nb)
	if na != nb {
		return na < nb
	}
	return a < b
}

// RunAll executes every experiment in order, rendering to w; the first
// error aborts.
func RunAll(w io.Writer) error {
	for _, e := range All() {
		tables, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		for _, t := range tables {
			t.Render(w)
		}
	}
	return nil
}
