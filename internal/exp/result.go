package exp

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/evaluate"
)

// Result is the structured output of one experiment run: the experiment's
// identity plus its tables as data (columns and rows), not pre-rendered
// text. Renderers below serialize the same Result to aligned text, JSON
// or CSV, so downstream tooling never has to re-parse a report.
type Result struct {
	ID     string   `json:"id"`
	Title  string   `json:"title"`
	Note   string   `json:"note,omitempty"` // run-level caveat, e.g. sampled evaluation
	Tables []*Table `json:"tables"`
}

// RunResult executes the experiment and wraps its tables in a Result.
// When the harness runs in sampling mode the Result carries a note, so
// approximate numbers can never be mistaken for the recorded exhaustive
// EXPERIMENTS.md output.
func (e Experiment) RunResult() (*Result, error) {
	tables, err := e.Run()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", e.ID, err)
	}
	r := &Result{ID: e.ID, Title: e.Title, Tables: tables}
	if evalOpt.Sample > 0 {
		r.Note = fmt.Sprintf("sampled evaluation (-sample %d, seed %d): all-pairs measurements are approximate",
			evalOpt.Sample, evalOpt.Seed)
	}
	return r, nil
}

// Format selects a Result serialization.
type Format int

const (
	// Text renders aligned plain-text tables (the routelab default).
	Text Format = iota
	// JSON renders one JSON array of Result objects.
	JSON
	// CSV renders each table as a CSV block: an experiment/table header
	// record, the column record, then the data records.
	CSV
)

// ParseFormat maps a -format flag value to a Format.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "", "text":
		return Text, nil
	case "json":
		return JSON, nil
	case "csv":
		return CSV, nil
	default:
		return Text, fmt.Errorf("exp: unknown format %q (want text, json or csv)", s)
	}
}

// RenderResults serializes results to w in the chosen format.
func RenderResults(w io.Writer, results []*Result, f Format) error {
	switch f {
	case Text:
		for _, r := range results {
			fmt.Fprintf(w, "### %s — %s\n", r.ID, r.Title)
			if r.Note != "" {
				fmt.Fprintf(w, "    [%s]\n", r.Note)
			}
			fmt.Fprintln(w)
			for _, t := range r.Tables {
				t.Render(w)
			}
		}
		return nil
	case JSON:
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	case CSV:
		cw := csv.NewWriter(w)
		for _, r := range results {
			for _, t := range r.Tables {
				if err := cw.Write([]string{"experiment", r.ID, t.Title, r.Note}); err != nil {
					return err
				}
				if err := cw.Write(t.Columns); err != nil {
					return err
				}
				if err := cw.WriteAll(t.Rows); err != nil {
					return err
				}
			}
		}
		cw.Flush()
		return cw.Error()
	default:
		return fmt.Errorf("exp: unknown format %d", f)
	}
}

// evalOpt is the evaluation configuration shared by every runner that
// measures all-pairs quantities (stretch, memory, forcedness, oracle
// error). The zero value — all cores, exhaustive — reproduces the
// recorded EXPERIMENTS.md numbers: exhaustive parallel reports are
// bit-identical to the serial baseline whatever the worker count.
// Sampling trades exactness for reach on large graphs and is off by
// default.
var evalOpt evaluate.Options

// SetEvalOptions installs the evaluation configuration used by all
// experiment runners (routelab's -workers/-sample/-seed flags end up
// here). It is not safe to call concurrently with running experiments.
func SetEvalOptions(o evaluate.Options) { evalOpt = o }

// EvalOptions returns the current evaluation configuration.
func EvalOptions() evaluate.Options { return evalOpt }
