package exp

import (
	"fmt"

	"repro/internal/combinat"
	"repro/internal/evaluate"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/scheme/ecube"
	"repro/internal/scheme/interval"
	"repro/internal/scheme/kcomplete"
	"repro/internal/scheme/landmark"
	"repro/internal/scheme/table"
	"repro/internal/scheme/tree"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

func init() {
	Register(Experiment{ID: "E1", Title: "Table 1 — memory requirement vs stretch factor (empirical analogue)", Run: runE1})
	Register(Experiment{ID: "E7", Title: "Section 1 — e-cube on hypercubes: MEM_local(H,1) = Theta(log n)", Run: runE7})
	Register(Experiment{ID: "E8", Title: "Section 1 — complete graph: adversarial vs friendly port labeling", Run: runE8})
	Register(Experiment{ID: "E9", Title: "Section 1 — interval routing on trees/outerplanar/unit circular-arc", Run: runE9})
	Register(Experiment{ID: "E10", Title: "Table 1 (s >= 3 rows) — landmark scheme memory/stretch tradeoff", Run: runE10})
}

// measureScheme routes all pairs and meters all routers for one scheme
// through the concurrent evaluation engine (exhaustive unless routelab
// asked for sampling).
func measureScheme(g *graph.Graph, s routing.Scheme, apsp *shortest.APSP) (routing.StretchReport, routing.MemoryReport, error) {
	rep, err := evaluate.Stretch(g, s, apsp, evalOpt)
	if err != nil {
		return routing.StretchReport{}, routing.MemoryReport{}, err
	}
	return rep.StretchReport(), evaluate.Memory(g, s, evalOpt), nil
}

// runE1 is the empirical analogue of the paper's Table 1: for one
// workload graph per structural family, it runs every applicable
// universal scheme, measures the realized stretch and the local/global
// memory under the fixed coding strategy, and prints them side by side
// with the table's asymptotic rows. The paper's qualitative shape —
// Θ(n log n) local bits for any s < 2 (tables; Theorem 1 says this is
// unavoidable) collapsing to o(n) once s >= 3 (landmark row) — is what
// the numbers reproduce.
func runE1() ([]*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "memory vs stretch across schemes and graph families",
		Note: "theory column: the corresponding Table 1 row of the paper.\n" +
			"s<2 local: Theta(n log n) [Thm 1]; s=1 structured families: O(d log n);\n" +
			"s<=3 landmark: o(n) per router.",
		Columns: []string{"graph", "n", "scheme", "stretch(max)", "stretch(mean)", "MEM_local", "MEM_global", "theory"},
	}
	type wl struct {
		name string
		g    *graph.Graph
	}
	r := xrand.New(20240612)
	workloads := []wl{
		{"random(n=96,p=.08)", gen.RandomConnected(96, 0.08, r.Split())},
		{"torus 8x8", gen.Torus2D(8, 8)},
		{"hypercube H6", gen.Hypercube(6)},
		{"tree(n=96)", gen.RandomTree(96, r.Split())},
		{"outerplanar(n=96)", gen.MaximalOuterplanar(96, r.Split())},
		{"K32", gen.Complete(32)},
	}
	for _, w := range workloads {
		apsp := shortest.NewAPSPParallel(w.g, evalOpt.Workers)
		n := w.g.Order()
		add := func(s routing.Scheme, theory string) error {
			sr, mr, err := measureScheme(w.g, s, apsp)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", w.name, s.Name(), err)
			}
			t.AddRow(w.name, fmt.Sprintf("%d", n), s.Name(),
				fmt.Sprintf("%.2f", sr.Max), fmt.Sprintf("%.2f", sr.Mean),
				fmt.Sprintf("%d", mr.LocalBits), fmt.Sprintf("%d", mr.GlobalBits), theory)
			return nil
		}
		tb, err := table.New(w.g, apsp, table.MinPort)
		if err != nil {
			return nil, err
		}
		if err := add(tb, "s=1: Theta(n log n) local"); err != nil {
			return nil, err
		}
		iv, err := interval.New(w.g, apsp, interval.Options{Labels: interval.DFSLabels(w.g), Policy: interval.RunGreedy})
		if err != nil {
			return nil, err
		}
		if err := add(iv, "s=1: k-IRS, O(k d log n) local"); err != nil {
			return nil, err
		}
		lm, err := landmark.New(w.g, apsp, landmark.Options{Seed: 7})
		if err != nil {
			return nil, err
		}
		if err := add(lm, "s<=3: o(n) local"); err != nil {
			return nil, err
		}
		switch w.name {
		case "hypercube H6":
			ec, err := ecube.New(w.g, 6)
			if err != nil {
				return nil, err
			}
			if err := add(ec, "s=1: Theta(log n) local"); err != nil {
				return nil, err
			}
		case "K32":
			fr, err := kcomplete.NewFriendly(w.g)
			if err != nil {
				return nil, err
			}
			if err := add(fr, "s=1: O(log n) local (good labels)"); err != nil {
				return nil, err
			}
		case "tree(n=96)":
			tr, err := tree.New(w.g, 0)
			if err != nil {
				return nil, err
			}
			if err := add(tr, "s=1: O(d log n) local (1-IRS)"); err != nil {
				return nil, err
			}
		}
	}
	return []*Table{t}, nil
}

// runE7 reproduces the hypercube claim of Section 1: e-cube needs exactly
// log2 n bits per router while full tables pay Θ(n log log n)-ish raw rows
// (n-1 entries of ceil(log2 d) bits); the gap is exponential.
func runE7() ([]*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "e-cube vs 1-IRS vs routing tables on hypercubes",
		Columns: []string{"dim", "n", "ecube MEM_local", "log2 n", "1-IRS MEM_local", "tables MEM_local", "tables/ecube"},
	}
	for d := 4; d <= 9; d++ {
		g := gen.Hypercube(d)
		ec, err := ecube.New(g, d)
		if err != nil {
			return nil, err
		}
		irs, err := interval.NewHypercube1IRS(g, d)
		if err != nil {
			return nil, err
		}
		if k := irs.MaxIntervalsPerArc(); k != 1 {
			return nil, fmt.Errorf("E7: hypercube 1-IRS produced %d intervals per arc", k)
		}
		tb, err := table.New(g, nil, table.MinPort)
		if err != nil {
			return nil, err
		}
		em := evaluate.Memory(g, ec, evalOpt)
		im := evaluate.Memory(g, irs, evalOpt)
		tm := evaluate.Memory(g, tb, evalOpt)
		t.AddRow(
			fmt.Sprintf("%d", d), fmt.Sprintf("%d", g.Order()),
			fmt.Sprintf("%d", em.LocalBits), fmt.Sprintf("%d", d),
			fmt.Sprintf("%d", im.LocalBits),
			fmt.Sprintf("%d", tm.LocalBits),
			fmt.Sprintf("%.1f", float64(tm.LocalBits)/float64(em.LocalBits)),
		)
	}
	return []*Table{t}, nil
}

// runE8 reproduces the complete-graph example of Section 1: under an
// adversarial port labeling a router of K_n must store a permutation of
// its n-1 ports — ceil(log2 (n-1)!) = Θ(n log n) bits — while a friendly
// labeling costs O(log n).
func runE8() ([]*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "K_n local memory under friendly vs adversarial port labelings",
		Columns: []string{"n", "friendly bits", "adversarial bits", "log2((n-1)!)", "ratio adv/frnd"},
	}
	for _, n := range []int{16, 32, 64, 128, 256} {
		gf := gen.Complete(n)
		fr, err := kcomplete.NewFriendly(gf)
		if err != nil {
			return nil, err
		}
		ga := gen.Complete(n)
		ad, err := kcomplete.Scramble(ga, xrand.New(uint64(n)))
		if err != nil {
			return nil, err
		}
		fb := evaluate.Memory(gf, fr, evalOpt).LocalBits
		ab := evaluate.Memory(ga, ad, evalOpt).LocalBits
		t.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", fb),
			fmt.Sprintf("%d", ab),
			fmt.Sprintf("%.0f", combinat.Log2Factorial(n-1)),
			fmt.Sprintf("%.1f", float64(ab)/float64(fb)),
		)
	}
	return []*Table{t}, nil
}

// runE9 reproduces the interval-routing claims of Section 1: on trees,
// outerplanar and unit circular-arc graphs the scheme stays compact
// (small k, O(k d log n) bits), while random graphs drift toward many
// intervals.
func runE9() ([]*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "interval routing compactness by family",
		Columns: []string{"graph", "n", "maxdeg", "k (max ivals/arc)", "total ivals", "IRS MEM_local", "tables MEM_local"},
	}
	r := xrand.New(99)
	type wl struct {
		name   string
		g      *graph.Graph
		labels []int32
	}
	mk := func(name string, g *graph.Graph, useDFS bool) wl {
		var l []int32
		if useDFS {
			l = interval.DFSLabels(g)
		}
		return wl{name, g, l}
	}
	workloads := []wl{
		mk("path(128)", gen.Path(128), true),
		mk("tree(128)", gen.RandomTree(128, r.Split()), true),
		mk("caterpillar(64+64)", gen.Caterpillar(64, 64), true),
		mk("outerplanar(96)", gen.MaximalOuterplanar(96, r.Split()), false),
		mk("unit-interval(96)", gen.UnitInterval(96, 0.7, r.Split()), false),
		mk("unit-circ-arc(96)", gen.UnitCircularArc(96, 0.05, r.Split()), false),
		mk("chordal 2-tree(96)", gen.KTree(96, 2, r.Split()), false),
		mk("random(96,.08)", gen.RandomConnected(96, 0.08, r.Split()), false),
	}
	for _, w := range workloads {
		apsp := shortest.NewAPSPParallel(w.g, evalOpt.Workers)
		iv, err := interval.New(w.g, apsp, interval.Options{Labels: w.labels, Policy: interval.RunGreedy})
		if err != nil {
			return nil, err
		}
		tb, err := table.New(w.g, apsp, table.MinPort)
		if err != nil {
			return nil, err
		}
		im := evaluate.Memory(w.g, iv, evalOpt)
		tm := evaluate.Memory(w.g, tb, evalOpt)
		t.AddRow(
			w.name, fmt.Sprintf("%d", w.g.Order()), fmt.Sprintf("%d", w.g.MaxDegree()),
			fmt.Sprintf("%d", iv.MaxIntervalsPerArc()),
			fmt.Sprintf("%d", iv.TotalIntervals()),
			fmt.Sprintf("%d", im.LocalBits),
			fmt.Sprintf("%d", tm.LocalBits),
		)
	}
	return []*Table{t}, nil
}

// runE10 reproduces the large-stretch rows of Table 1: once stretch 3 is
// tolerated, per-router memory drops to o(n) — the landmark scheme's
// cluster+landmark tables — while tables stay Θ(n log n).
func runE10() ([]*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   "landmark scheme (s <= 3) vs routing tables (s = 1)",
		Columns: []string{"n", "|L|", "max cluster", "landmark stretch", "landmark MEM_local", "tables MEM_local", "local ratio"},
	}
	for _, n := range []int{100, 200, 400} {
		g := gen.RandomConnected(n, 6.0/float64(n), xrand.New(uint64(n)*7))
		apsp := shortest.NewAPSPParallel(g, evalOpt.Workers)
		lm, err := landmark.New(g, apsp, landmark.Options{Seed: uint64(n)})
		if err != nil {
			return nil, err
		}
		tb, err := table.New(g, apsp, table.MinPort)
		if err != nil {
			return nil, err
		}
		srep, err := evaluate.Stretch(g, lm, apsp, evalOpt)
		if err != nil {
			return nil, err
		}
		sr := srep.StretchReport()
		lmem := evaluate.Memory(g, lm, evalOpt)
		tmem := evaluate.Memory(g, tb, evalOpt)
		t.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", lm.NumLandmarks()),
			fmt.Sprintf("%d", lm.MaxCluster()),
			fmt.Sprintf("%.2f", sr.Max),
			fmt.Sprintf("%d", lmem.LocalBits),
			fmt.Sprintf("%d", tmem.LocalBits),
			fmt.Sprintf("%.2f", float64(lmem.LocalBits)/float64(tmem.LocalBits)),
		)
	}
	return []*Table{t}, nil
}
