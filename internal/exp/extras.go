package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/evaluate"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/shortest"
	"repro/internal/spanner"
	"repro/internal/xrand"
)

func init() {
	Register(Experiment{ID: "E12", Title: "spanner substrate (reference [11]) — size vs stretch", Run: runE12})
	Register(Experiment{ID: "E13", Title: "forcedness census — how special graphs of constraints are", Run: runE13})
}

// runE12 measures the greedy t-spanner tradeoff that the large-stretch
// upper bounds of Table 1 (Peleg–Schäffer [11], Awerbuch–Peleg [2]) are
// built on: larger tolerated stretch => sparser spanner => less routing
// state in spanner-based schemes.
func runE12() ([]*Table, error) {
	t := &Table{
		ID:    "E12",
		Title: "greedy t-spanner size vs stretch",
		Note: "routing state in the cited large-stretch schemes scales with spanner\n" +
			"size; the edge count collapsing as t grows is Table 1's mechanism.",
		Columns: []string{"graph", "n", "edges", "t", "spanner edges", "kept %", "measured stretch"},
	}
	r := xrand.New(31)
	workloads := []struct {
		name string
		g    *graph.Graph
	}{
		{"K48", gen.Complete(48)},
		{"random(96,.25)", gen.RandomConnected(96, 0.25, r.Split())},
		{"hypercube H6", gen.Hypercube(6)},
	}
	for _, w := range workloads {
		for _, tt := range []int{1, 3, 5, 7} {
			h := spanner.Greedy(w.g, tt)
			ratio, err := spanner.Verify(w.g, h, tt)
			if err != nil {
				return nil, err
			}
			t.AddRow(
				w.name, fmt.Sprintf("%d", w.g.Order()), fmt.Sprintf("%d", w.g.Size()),
				fmt.Sprintf("%d", tt), fmt.Sprintf("%d", h.Size()),
				fmt.Sprintf("%.0f%%", 100*float64(h.Size())/float64(w.g.Size())),
				fmt.Sprintf("%.2f", ratio),
			)
		}
	}
	return []*Table{t}, nil
}

// runE13 asks how special the paper's constraint graphs are: on ordinary
// networks, what fraction of ordered pairs have a FORCED first arc at a
// given stretch? Constraint graphs are engineered so that the A×B block
// is 100% forced below stretch 2; natural graphs lose forcedness fast as
// the stretch budget grows, which is why the lower bound needs the
// construction.
func runE13() ([]*Table, error) {
	t := &Table{
		ID:      "E13",
		Title:   "fraction of ordered pairs with a forced first arc",
		Columns: []string{"graph", "n", "s=1", "s=1.5", "s=2", "s=3"},
	}
	r := xrand.New(77)
	workloads := []struct {
		name string
		g    *graph.Graph
	}{
		{"petersen", gen.Petersen()},
		{"cycle C32", gen.Cycle(32)},
		{"grid 6x6", gen.Grid2D(6, 6)},
		{"tree(48)", gen.RandomTree(48, r.Split())},
		{"random(48,.15)", gen.RandomConnected(48, 0.15, r.Split())},
		{"constraint graph", constraintGraph48()},
	}
	for _, w := range workloads {
		apsp := shortest.NewAPSPParallel(w.g, evalOpt.Workers)
		row := []string{w.name, fmt.Sprintf("%d", w.g.Order())}
		for _, s := range []float64{1.0, 1.5, 2.0, 3.0} {
			// Forcedness is a 0/1 ratio per pair, so the mean reported by
			// the pair engine is exactly the forced fraction.
			rep, err := evaluate.Pairs(w.g.Order(), func(u, v graph.NodeID) (int32, int32, int, error) {
				if _, ok := shortest.ForcedPort(w.g, apsp, u, v, s); ok {
					return 1, 1, 0, nil
				}
				return 0, 1, 0, nil
			}, evalOpt)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.0f%%", 100*rep.Mean))
		}
		t.AddRow(row...)
	}
	return []*Table{t}, nil
}

func constraintGraph48() *graph.Graph {
	m := core.RandomMatrix(4, 24, 4, xrand.New(8))
	cg, err := core.BuildConstraintGraph(m)
	if err != nil {
		panic(err)
	}
	if err := cg.PadToOrder(48); err != nil {
		panic(err)
	}
	return cg.G
}
