package exp

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/evaluate"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/scheme/landmark"
	"repro/internal/scheme/table"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

func init() {
	Register(Experiment{ID: "E18", Title: "distance backends — beyond-RAM scaling of the all-pairs evaluator", Run: runE18})
}

// scalingLarge extends E18 to the large-n ladder (n up to 32768). Off by
// default so `routelab` and the test suite stay fast; routelab -e18large
// turns it on for the recorded sweep.
var scalingLarge bool

// SetScalingLarge toggles E18's large-n ladder (routelab's -e18large flag
// ends up here). Not safe to call concurrently with running experiments.
func SetScalingLarge(v bool) { scalingLarge = v }

// denseCutoff is the order above which E18 refuses to materialize the
// dense n² table: 16384² int32 entries are already 1 GiB.
const denseCutoff = 16384

// runE18 sweeps the evaluator's three distance backends (dense table,
// per-worker streaming BFS, bounded row cache) over growing instances of
// the random and theorem1 families, for the two scheme regimes the paper
// contrasts (tables: s=1, Θ(n log n) local bits; landmark: s<=3, o(n)).
// Every backend must report identical stretch — that equality IS the
// correctness claim, pinned exhaustively by the conformance matrix — so
// the interesting columns are the resident distance rows and bytes
// (deterministic, from DistanceSource.ResidentRows) and the wall time
// (the single machine-dependent column of the suite; every other cell is
// byte-reproducible). Above the dense cutoff the dense backend is
// skipped and the landmark scheme itself is built from streamed BFS rows
// (landmark.NewStreamed), so the whole pipeline — construction,
// evaluation, metering — never allocates an n² object: the Theorem 1
// regime of large n stays reachable on bounded RAM.
func runE18() ([]*Table, error) {
	t := &Table{
		ID:    "E18",
		Title: "distance-backend scaling sweep (sampled stretch, per-backend memory/time)",
		Note: "backends agree bit-for-bit on every report (conformance matrix);\n" +
			"rows(1w)/distMiB: resident distance rows and their size at ONE worker — n for dense,\n" +
			"1 for stream, cache capacity + 1 for cache; stream and cache add one row per extra\n" +
			"worker. Pinned to one worker so the table is -workers-independent like every other\n" +
			"report. ms is wall time (machine-dependent; all other columns are deterministic).\n" +
			"n > " + fmt.Sprint(denseCutoff) + " skips dense and builds landmark via NewStreamed.",
		Columns: []string{"graph", "n", "scheme", "backend", "pairs", "stretch(max)", "stretch(mean)", "MEM_local", "rows(1w)", "distMiB", "ms"},
	}
	type wl struct {
		name    string
		build   func() (*graph.Graph, error)
		sample  int
		schemes []string
	}
	workloads := []wl{
		{"random", func() (*graph.Graph, error) {
			return gen.RandomConnected(512, 6.0/512, xrand.New(512*13)), nil
		}, 20000, []string{"tables", "landmark"}},
		{"random", func() (*graph.Graph, error) {
			return gen.RandomConnected(1536, 6.0/1536, xrand.New(1536*13)), nil
		}, 20000, []string{"tables", "landmark"}},
		{"theorem1", func() (*graph.Graph, error) {
			pr, err := core.ChooseParams(1024, 0.5)
			if err != nil {
				return nil, err
			}
			ins, err := core.BuildInstance(pr, 9)
			if err != nil {
				return nil, err
			}
			return ins.CG.G, nil
		}, 20000, []string{"tables", "landmark"}},
	}
	if scalingLarge {
		for _, n := range []int{8192, 20000, 32768} {
			n := n
			schemes := []string{"tables", "landmark"}
			if n > denseCutoff {
				schemes = []string{"landmark"} // tables' own state is Θ(n²)
			}
			workloads = append(workloads, wl{"random", func() (*graph.Graph, error) {
				return gen.RandomConnected(n, 6.0/float64(n), xrand.New(uint64(n)*13)), nil
			}, 200000, schemes})
		}
	}

	for _, w := range workloads {
		g, err := w.build()
		if err != nil {
			return nil, fmt.Errorf("E18 %s: %w", w.name, err)
		}
		n := g.Order()
		denseOK := n <= denseCutoff
		var apsp *shortest.APSP
		if denseOK {
			apsp = shortest.NewAPSPParallel(g, evalOpt.Workers)
		}
		for _, schemeName := range w.schemes {
			var s routing.Scheme
			switch schemeName {
			case "tables":
				if !denseOK {
					continue
				}
				s, err = table.New(g, apsp, table.MinPort)
			case "landmark":
				if denseOK {
					s, err = landmark.New(g, apsp, landmark.Options{Seed: uint64(n)})
				} else {
					s, err = landmark.NewStreamed(g, landmark.Options{Seed: uint64(n)}, evalOpt.Workers)
				}
			}
			if err != nil {
				return nil, fmt.Errorf("E18 %s/%s: %w", w.name, schemeName, err)
			}
			mem := evaluate.Memory(g, s, evalOpt)
			for _, mode := range []evaluate.DistMode{evaluate.DistDense, evaluate.DistStream, evaluate.DistCache} {
				if mode == evaluate.DistDense && !denseOK {
					continue
				}
				opts := evalOpt
				opts.DistMode = mode
				opts.Sample = w.sample
				opts.Seed = 1
				opts.Distances = nil
				if mode == evaluate.DistCache {
					// The cache backend caches rows one at a time, so it
					// cannot serve the 64-row batch kernel (SourceFor rejects
					// the combination). The sweep's cache column is defined
					// as the scalar path; -kernel batch applies to the dense
					// and stream columns.
					opts.Kernel = shortest.KernelAuto
				}
				var denseArg *shortest.APSP
				if mode == evaluate.DistDense {
					denseArg = apsp
				}
				src, err := opts.Source(g, denseArg)
				if err != nil {
					return nil, fmt.Errorf("E18 %s/%s/%s: %w", w.name, schemeName, mode, err)
				}
				opts.Distances = src
				start := time.Now()
				rep, err := evaluate.Stretch(g, s, denseArg, opts)
				if err != nil {
					return nil, fmt.Errorf("E18 %s/%s/%s: %w", w.name, schemeName, mode, err)
				}
				elapsed := time.Since(start)
				// Pinned to one worker: ResidentRows(actual workers) would
				// make this report depend on -workers, which no routelab
				// table may do. The note explains the per-worker scaling.
				rows := src.ResidentRows(1)
				t.AddRow(
					w.name, fmt.Sprintf("%d", n), s.Name(), mode.String(),
					fmt.Sprintf("%d", rep.Pairs),
					fmt.Sprintf("%.3f", rep.Max), fmt.Sprintf("%.3f", rep.Mean),
					fmt.Sprintf("%d", mem.LocalBits),
					fmt.Sprintf("%d", rows),
					fmt.Sprintf("%.1f", float64(rows)*float64(n)*4/(1<<20)),
					fmt.Sprintf("%d", elapsed.Milliseconds()),
				)
			}
		}
	}
	return []*Table{t}, nil
}
