package exp

import (
	"fmt"

	"repro/internal/evaluate"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/scheme/table"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

func init() {
	Register(Experiment{ID: "E17", Title: "non-uniform arc costs (Table 1 comments, refs [1,2]) — weighted tables", Run: runE17})
}

// runE17 exercises the weighted regime the paper's Table 1 comments
// mention ("the routing scheme allows non uniform cost on the arcs"):
// minimum-cost routing tables achieve weighted stretch 1 with the same
// memory layout, while their HOP stretch exceeds 1 exactly where heavy
// edges are bypassed — showing the two metrics genuinely differ and the
// lower bound (stated for hops) applies to the weighted tables unchanged.
func runE17() ([]*Table, error) {
	t := &Table{
		ID:      "E17",
		Title:   "weighted routing tables: cost stretch vs hop stretch vs memory",
		Columns: []string{"graph", "n", "max weight", "cost stretch", "hop stretch(max)", "MEM_local", "MEM_local (unweighted)"},
	}
	r := xrand.New(404)
	workloads := []struct {
		name string
		g    *graph.Graph
	}{
		{"random(64,.1)", gen.RandomConnected(64, 0.1, r.Split())},
		{"torus 8x8", gen.Torus2D(8, 8)},
		{"outerplanar(64)", gen.MaximalOuterplanar(64, r.Split())},
	}
	for _, wl := range workloads {
		for _, maxW := range []int{1, 4, 16} {
			w := shortest.RandomWeights(wl.g, maxW, r.Split())
			s, err := table.NewWeighted(wl.g, w, nil, table.MinPort)
			if err != nil {
				return nil, err
			}
			costRep, err := evaluate.WeightedStretch(wl.g, s, w, nil, evalOpt)
			if err != nil {
				return nil, err
			}
			hopRep, err := evaluate.Stretch(wl.g, s, nil, evalOpt)
			if err != nil {
				return nil, err
			}
			unw, err := table.New(wl.g, nil, table.MinPort)
			if err != nil {
				return nil, err
			}
			t.AddRow(
				wl.name, fmt.Sprintf("%d", wl.g.Order()), fmt.Sprintf("%d", maxW),
				fmt.Sprintf("%.2f", costRep.Max),
				fmt.Sprintf("%.2f", hopRep.Max),
				fmt.Sprintf("%d", evaluate.Memory(wl.g, s, evalOpt).LocalBits),
				fmt.Sprintf("%d", evaluate.Memory(wl.g, unw, evalOpt).LocalBits),
			)
		}
	}
	return []*Table{t}, nil
}
