package exp

import (
	"fmt"

	"repro/internal/evaluate"
	"repro/internal/gen"
	"repro/internal/routing"
	"repro/internal/scheme/interval"
	"repro/internal/scheme/landmark"
	"repro/internal/scheme/table"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

func init() {
	Register(Experiment{ID: "E15", Title: "header sizes — what the model's 'unbounded headers' cost in practice", Run: runE15})
}

// runE15 prices the headers of each scheme over all routes. The paper's
// MEM definition excludes headers ("we allow headers to be of unbounded
// size"); this experiment shows the exclusion is benign for table and
// interval routing (Θ(log n) headers) but does real work for the
// landmark scheme, whose address-carrying headers embed a source route —
// memory the routers would otherwise hold.
func runE15() ([]*Table, error) {
	t := &Table{
		ID:      "E15",
		Title:   "header bits per scheme (all pairs, every hop)",
		Columns: []string{"n", "scheme", "max header bits", "mean header bits", "MEM_local (router bits)"},
	}
	for _, n := range []int{64, 128} {
		g := gen.RandomConnected(n, 6.0/float64(n), xrand.New(uint64(n)))
		apsp := shortest.NewAPSPParallel(g, evalOpt.Workers)
		tb, err := table.New(g, apsp, table.MinPort)
		if err != nil {
			return nil, err
		}
		iv, err := interval.New(g, apsp, interval.Options{Labels: interval.DFSLabels(g), Policy: interval.RunGreedy})
		if err != nil {
			return nil, err
		}
		lm, err := landmark.New(g, apsp, landmark.Options{Seed: uint64(n) + 1})
		if err != nil {
			return nil, err
		}
		for _, s := range []routing.Scheme{tb, iv, lm} {
			hr, err := routing.MeasureHeaders(g, s)
			if err != nil {
				return nil, err
			}
			mr := evaluate.Memory(g, s, evalOpt)
			t.AddRow(
				fmt.Sprintf("%d", n), s.Name(),
				fmt.Sprintf("%d", hr.MaxBits),
				fmt.Sprintf("%.1f", hr.MeanBits),
				fmt.Sprintf("%d", mr.LocalBits),
			)
		}
	}
	return []*Table{t}, nil
}
