package spanner

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/xrand"
)

func TestGreedySpannerProperty(t *testing.T) {
	check := func(seed uint64, nn uint8, tt uint8) bool {
		n := int(nn%40) + 5
		tStretch := []int{1, 3, 5}[tt%3]
		g := gen.RandomConnected(n, 0.25, xrand.New(seed))
		h := Greedy(g, tStretch)
		_, err := Verify(g, h, tStretch)
		return err == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSpanner1IsWholeGraph(t *testing.T) {
	g := gen.RandomConnected(30, 0.3, xrand.New(1))
	h := Greedy(g, 1)
	if h.Size() != g.Size() {
		t.Fatalf("1-spanner dropped edges: %d vs %d", h.Size(), g.Size())
	}
}

func TestSpannerSparsifiesDenseGraphs(t *testing.T) {
	// Greedy 3-spanner of K_n has O(n^1.5) edges; far below C(n,2).
	g := gen.Complete(40)
	h := Greedy(g, 3)
	if h.Size() >= g.Size()/2 {
		t.Fatalf("3-spanner of K_40 kept %d of %d edges", h.Size(), g.Size())
	}
	if _, err := Verify(g, h, 3); err != nil {
		t.Fatal(err)
	}
}

func TestSpannerGirth(t *testing.T) {
	// A greedy t-spanner has girth > t+1: any cycle of length <= t+1
	// would mean its last-added edge was redundant at insertion time.
	// For t = 3 this means no triangles and no 4-cycles.
	g := gen.RandomConnected(35, 0.4, xrand.New(5))
	h := Greedy(g, 3)
	n := h.Order()
	for u := 0; u < n; u++ {
		nb := h.Neighbors(int32(u), nil)
		for i := 0; i < len(nb); i++ {
			for j := i + 1; j < len(nb); j++ {
				if h.HasEdge(nb[i], nb[j]) {
					t.Fatalf("triangle %d-%d-%d in 3-spanner", u, nb[i], nb[j])
				}
			}
		}
	}
	// No 4-cycles: two vertices cannot share two common neighbors.
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			common := 0
			for w := 0; w < n; w++ {
				if w != u && w != v && h.HasEdge(int32(u), int32(w)) && h.HasEdge(int32(v), int32(w)) {
					common++
				}
			}
			if common >= 2 {
				t.Fatalf("4-cycle through %d and %d in 3-spanner", u, v)
			}
		}
	}
}

func TestSpannerOnTreeIsIdentity(t *testing.T) {
	g := gen.RandomTree(40, xrand.New(2))
	h := Greedy(g, 5)
	// A tree has no redundant edges at any stretch.
	if h.Size() != g.Size() {
		t.Fatalf("spanner of a tree changed size: %d vs %d", h.Size(), g.Size())
	}
}

func TestVerifyDetectsViolation(t *testing.T) {
	g := gen.Cycle(10)
	// A path is NOT a 2-spanner of the cycle (antipodal pairs stretch ~2x
	// but the removed edge's endpoints stretch 9x).
	h := gen.Path(10)
	if _, err := Verify(g, h, 2); err == nil {
		t.Fatal("verify accepted a stretch violation")
	}
}

func TestVerifyDetectsForeignEdges(t *testing.T) {
	g := gen.Path(5)
	h := gen.Cycle(5) // has the edge {4,0} absent from the path
	if _, err := Verify(g, h, 3); err == nil {
		t.Fatal("verify accepted a non-subgraph")
	}
}

func TestVerifyRatioWithinT(t *testing.T) {
	g := gen.RandomConnected(30, 0.3, xrand.New(9))
	h := Greedy(g, 5)
	ratio, err := Verify(g, h, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ratio > 5.0 || ratio < 1.0 {
		t.Fatalf("measured ratio %v outside [1, 5]", ratio)
	}
}
