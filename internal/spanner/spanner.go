// Package spanner implements multiplicative graph spanners (Peleg &
// Schäffer, reference [11] of the paper). Spanners are the substrate
// behind the large-stretch upper bounds of the paper's Table 1: routing
// on a sparse t-spanner instead of the full graph trades stretch t for
// routing state proportional to the spanner's size.
//
// The construction is the classical greedy spanner (Althöfer et al.):
// scan edges in a fixed order and keep an edge only if the current
// spanner's distance between its endpoints exceeds t. The result is a
// t-spanner; for t = 2k-1 its size is O(n^(1+1/k)) (girth argument),
// which the tests check empirically.
package spanner

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/shortest"
)

// Greedy returns a t-spanner of g (t >= 1): a spanning subgraph H with
// d_H(u,v) <= t * d_G(u,v) for all u, v. Edges are scanned in sorted
// (u, v) order, so the output is deterministic. The returned graph has
// the same vertex set; ports are assigned in insertion order.
func Greedy(g *graph.Graph, t int) *graph.Graph {
	if t < 1 {
		panic("spanner: stretch must be >= 1")
	}
	n := g.Order()
	h := graph.New(n)
	// Distance check per candidate edge: bounded BFS in h from u up to
	// depth t, looking for v. The greedy invariant needs exact distances
	// in the PARTIAL spanner, which bounded BFS provides.
	dist := make([]int32, n)
	queue := make([]graph.NodeID, 0, n)
	withinT := func(u, v graph.NodeID) bool {
		for i := range dist {
			dist[i] = -1
		}
		dist[u] = 0
		queue = queue[:0]
		queue = append(queue, u)
		for head := 0; head < len(queue); head++ {
			x := queue[head]
			if dist[x] >= int32(t) {
				break // deeper vertices cannot certify <= t
			}
			dx1 := dist[x] + 1
			found := false
			for _, w := range h.Arcs(x) {
				if dist[w] == -1 {
					dist[w] = dx1
					if w == v {
						found = true
					}
					queue = append(queue, w)
				}
			}
			if found {
				return true
			}
		}
		return dist[v] != -1 && dist[v] <= int32(t)
	}
	for _, e := range g.Edges() {
		if !withinT(e[0], e[1]) {
			h.AddEdge(e[0], e[1])
		}
	}
	h.Freeze()
	return h
}

// Verify checks that h is a t-spanner of g by comparing all-pairs
// distances. It returns the measured maximum ratio and an error when the
// guarantee is violated (or h is not a subgraph of g on the same vertex
// set).
func Verify(g, h *graph.Graph, t int) (float64, error) {
	if g.Order() != h.Order() {
		return 0, fmt.Errorf("spanner: vertex sets differ (%d vs %d)", g.Order(), h.Order())
	}
	for _, e := range h.Edges() {
		if !g.HasEdge(e[0], e[1]) {
			return 0, fmt.Errorf("spanner: edge {%d,%d} not in the base graph", e[0], e[1])
		}
	}
	ag := shortest.NewAPSP(g)
	ah := shortest.NewAPSP(h)
	worst := 0.0
	for u := 0; u < g.Order(); u++ {
		for v := u + 1; v < g.Order(); v++ {
			dg := ag.Dist(graph.NodeID(u), graph.NodeID(v))
			dh := ah.Dist(graph.NodeID(u), graph.NodeID(v))
			if dg == shortest.Unreachable {
				continue
			}
			if dh == shortest.Unreachable {
				return 0, fmt.Errorf("spanner: pair (%d,%d) disconnected in the spanner", u, v)
			}
			r := float64(dh) / float64(dg)
			if r > worst {
				worst = r
			}
			if dh > int32(t)*dg {
				return worst, fmt.Errorf("spanner: pair (%d,%d): %d > %d*%d", u, v, dh, t, dg)
			}
		}
	}
	return worst, nil
}
