// Package canongate makes the scheme-registry contract structural.
// The repository's wire format is kept honest by one invariant chain:
// every scheme kind round-trips through a canonical encoding, and
// decode re-encodes and byte-compares before handing a scheme back.
// canongate checks the three links of that chain:
//
//   - pairing: every exported Decode<X>Payload function returns a type
//     that exports EncodePayload, and every type with an EncodePayload
//     method is reachable from some Decode*Payload — no write-only or
//     read-only codecs.
//
//   - registry: every Kind* constant appears both in a dispatch switch
//     case and as a WriteWireHeader argument (a kind you can write but
//     not read, or read but not write, is a wire-format fork waiting to
//     happen), and any switch that dispatches to Decode*Payload carries
//     a default arm so unknown kinds fail loudly.
//
//   - gate: any function that invokes a Decode*Payload must also invoke
//     the canonical re-encode (an Encode* call) and bytes.Equal — the
//     decode-side proof that the bytes it accepted are the canonical
//     encoding of the scheme it returns.
//
// The rules key on declaration shapes (Decode*Payload names, Kind*
// constants), so they self-select: packages without codecs or kind
// registries are untouched.
package canongate

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the canongate check.
var Analyzer = &framework.Analyzer{
	Name: "canongate",
	Doc:  "scheme codecs must pair Encode/Decode, register every kind in both directions, and gate decode behind the canonical re-encode comparison",
	Run:  run,
}

func run(pass *framework.Pass) error {
	var decodeFuncs []*ast.FuncDecl
	encodeMethods := make(map[*types.TypeName]*ast.FuncDecl)
	var kindConsts []*ast.Ident

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil {
					if isDecodePayloadName(d.Name.Name) && d.Name.IsExported() {
						decodeFuncs = append(decodeFuncs, d)
					}
				} else if d.Name.Name == "EncodePayload" {
					if tn := receiverTypeName(pass, d); tn != nil {
						encodeMethods[tn] = d
					}
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						if strings.HasPrefix(name.Name, "Kind") && isConst(pass, name) {
							kindConsts = append(kindConsts, name)
						}
					}
				}
			}
		}
	}

	checkPairing(pass, decodeFuncs, encodeMethods)
	checkRegistry(pass, kindConsts)
	checkGate(pass)
	return nil
}

func isDecodePayloadName(name string) bool {
	return strings.HasPrefix(name, "Decode") && strings.HasSuffix(name, "Payload")
}

// checkPairing enforces the two directions of codec pairing.
func checkPairing(pass *framework.Pass, decodeFuncs []*ast.FuncDecl, encodeMethods map[*types.TypeName]*ast.FuncDecl) {
	decoded := make(map[*types.TypeName]bool)
	for _, fn := range decodeFuncs {
		tn := firstResultTypeName(pass, fn)
		if tn == nil {
			pass.Reportf(fn.Name.Pos(), "%s must return a scheme type as its first result (got none resolvable)", fn.Name.Name)
			continue
		}
		decoded[tn] = true
		if !hasMethod(tn, "EncodePayload") {
			pass.Reportf(fn.Name.Pos(), "%s returns %s, which has no EncodePayload method: decode without a re-encodable codec breaks the canonical round-trip", fn.Name.Name, tn.Name())
		}
	}
	for tn, decl := range encodeMethods {
		if tn.Pkg() != pass.Pkg {
			continue
		}
		if !decoded[tn] {
			pass.Reportf(decl.Name.Pos(), "type %s has EncodePayload but no exported Decode*Payload returns it: write-only codecs cannot be round-trip verified", tn.Name())
		}
	}
}

// checkRegistry enforces that each Kind* constant is dispatched and
// written, and that decode-dispatch switches fail loudly on unknowns.
func checkRegistry(pass *framework.Pass, kindConsts []*ast.Ident) {
	if len(kindConsts) == 0 {
		return
	}
	objs := make(map[types.Object]*ast.Ident, len(kindConsts))
	for _, id := range kindConsts {
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			objs[obj] = id
		}
	}
	inCase := make(map[types.Object]bool)
	inHeader := make(map[types.Object]bool)
	mark := func(e ast.Expr, into map[types.Object]bool) {
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil {
					if _, tracked := objs[obj]; tracked {
						into[obj] = true
					}
				}
			}
			return true
		})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CaseClause:
				for _, e := range n.List {
					mark(e, inCase)
				}
			case *ast.CallExpr:
				if calleeName(n) == "WriteWireHeader" {
					for _, arg := range n.Args {
						mark(arg, inHeader)
					}
				}
			case *ast.SwitchStmt:
				checkDispatchDefault(pass, n)
			}
			return true
		})
	}
	for obj, id := range objs {
		if !inCase[obj] {
			pass.Reportf(id.Pos(), "kind constant %s is never dispatched in a switch case: readers cannot decode this kind", id.Name)
		}
		if !inHeader[obj] {
			pass.Reportf(id.Pos(), "kind constant %s is never passed to WriteWireHeader: writers cannot produce this kind", id.Name)
		}
	}
}

// checkDispatchDefault requires a default arm on switches that dispatch
// to Decode*Payload.
func checkDispatchDefault(pass *framework.Pass, sw *ast.SwitchStmt) {
	dispatches, hasDefault := false, false
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, s := range cc.Body {
			ast.Inspect(s, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && isDecodePayloadName(calleeName(call)) {
					dispatches = true
				}
				return true
			})
		}
	}
	if dispatches && !hasDefault {
		pass.Reportf(sw.Pos(), "switch dispatches to Decode*Payload without a default arm: unknown kinds must be an explicit error, not a fallthrough")
	}
}

// checkGate requires the canonical re-encode comparison in every
// function that calls a Decode*Payload.
func checkGate(pass *framework.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || isDecodePayloadName(fn.Name.Name) {
				continue
			}
			callsDecode, callsEncode, callsEqual := false, false, false
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name := calleeName(call)
				switch {
				case isDecodePayloadName(name):
					callsDecode = true
				case strings.HasPrefix(name, "Encode"):
					callsEncode = true
				case name == "Equal":
					if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
						if pn, ok := pass.TypesInfo.Uses[qualifier(sel)].(*types.PkgName); ok && pn.Imported().Path() == "bytes" {
							callsEqual = true
						}
					}
				}
				return true
			})
			if callsDecode && (!callsEncode || !callsEqual) {
				pass.Reportf(fn.Name.Pos(), "%s calls Decode*Payload without the canonical re-encode comparison (needs an Encode* call and bytes.Equal before returning the scheme)", fn.Name.Name)
			}
		}
	}
}

// receiverTypeName resolves a method's receiver to its type name.
func receiverTypeName(pass *framework.Pass, fn *ast.FuncDecl) *types.TypeName {
	if len(fn.Recv.List) != 1 {
		return nil
	}
	tv, ok := pass.TypesInfo.Types[fn.Recv.List[0].Type]
	if !ok {
		// Receiver idents are Defs, not expression types; fall back to
		// the declared object.
		if len(fn.Recv.List[0].Names) == 1 {
			if v, ok := pass.TypesInfo.Defs[fn.Recv.List[0].Names[0]].(*types.Var); ok {
				return namedTypeName(v.Type())
			}
		}
		return nil
	}
	return namedTypeName(tv.Type)
}

// firstResultTypeName resolves fn's first result to a named type.
func firstResultTypeName(pass *framework.Pass, fn *ast.FuncDecl) *types.TypeName {
	obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig := obj.Type().(*types.Signature)
	if sig.Results().Len() == 0 {
		return nil
	}
	return namedTypeName(sig.Results().At(0).Type())
}

// namedTypeName unwraps pointers to the underlying named type's name.
func namedTypeName(t types.Type) *types.TypeName {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// hasMethod reports whether the named type declares a method (value or
// pointer receiver).
func hasMethod(tn *types.TypeName, name string) bool {
	n, ok := tn.Type().(*types.Named)
	if !ok {
		return false
	}
	for i := 0; i < n.NumMethods(); i++ {
		if n.Method(i).Name() == name {
			return true
		}
	}
	return false
}

// calleeName extracts the bare name a call dials, for name-keyed rules.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// qualifier returns the leftmost ident of a selector (the package
// qualifier candidate).
func qualifier(sel *ast.SelectorExpr) *ast.Ident {
	if id, ok := sel.X.(*ast.Ident); ok {
		return id
	}
	return &ast.Ident{}
}

// isConst reports whether the declared name is a constant.
func isConst(pass *framework.Pass, id *ast.Ident) bool {
	_, ok := pass.TypesInfo.Defs[id].(*types.Const)
	return ok
}
