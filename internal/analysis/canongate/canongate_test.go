package canongate

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestCanongate(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), Analyzer, "b")
}
