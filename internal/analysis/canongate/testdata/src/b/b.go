// Package b seeds canongate violations and conforming shapes: a paired
// codec with a gated dispatch (clean), a write-only type, a read-only
// decoder, an unregistered kind, and an ungated caller.
package b

import (
	"bytes"
	"errors"
)

type writer struct{ buf []byte }

func (w *writer) WriteWireHeader(kind uint64, order int) {}

type reader struct{ buf []byte }

// Scheme is the fully conforming codec pair.
type Scheme struct{ n int }

func (s *Scheme) EncodePayload(w *writer) {}

// DecodeSchemePayload pairs with Scheme.EncodePayload.
func DecodeSchemePayload(r *reader) (*Scheme, error) { return &Scheme{}, nil }

// Orphan can be written but never decoded.
type Orphan struct{}

func (o *Orphan) EncodePayload(w *writer) {} // want `type Orphan has EncodePayload but no exported Decode\*Payload returns it`

// Bare has no EncodePayload, so its decoder is read-only.
type Bare struct{}

// DecodeBarePayload returns a type with no encode side.
func DecodeBarePayload(r *reader) (*Bare, error) { return &Bare{}, nil } // want `DecodeBarePayload returns Bare, which has no EncodePayload method`

const (
	KindScheme = 1
	KindBare   = 2
	KindGhost  = 3 // want `kind constant KindGhost is never dispatched in a switch case` `kind constant KindGhost is never passed to WriteWireHeader`
)

// Encode writes every reachable kind through the wire header.
func Encode(s *Scheme, b *Bare) *writer {
	w := &writer{}
	if s != nil {
		w.WriteWireHeader(KindScheme, s.n)
		s.EncodePayload(w)
	} else {
		w.WriteWireHeader(KindBare, 0)
	}
	return w
}

// DecodeGated is the conforming dispatcher: loud default, re-encode,
// byte comparison.
func DecodeGated(kind uint64, r *reader, data []byte) (*Scheme, error) {
	var s *Scheme
	var err error
	switch kind {
	case KindScheme:
		s, err = DecodeSchemePayload(r)
	case KindBare:
		_, err = DecodeBarePayload(r)
	default:
		return nil, errors.New("unknown kind")
	}
	if err != nil {
		return nil, err
	}
	re := Encode(s, nil)
	if !bytes.Equal(re.buf, data) {
		return nil, errors.New("non-canonical encoding")
	}
	return s, nil
}

// decodeUngated hands back a scheme without proving the bytes were
// canonical.
func decodeUngated(r *reader) (*Scheme, error) { // want `decodeUngated calls Decode\*Payload without the canonical re-encode comparison`
	return DecodeSchemePayload(r)
}

// decodeSilentFallthrough dispatches without a default arm and without
// the gate.
func decodeSilentFallthrough(kind uint64, r *reader, data []byte) (*Scheme, error) { // want `decodeSilentFallthrough calls Decode\*Payload without the canonical re-encode comparison`
	switch kind { // want `switch dispatches to Decode\*Payload without a default arm`
	case KindScheme:
		return DecodeSchemePayload(r)
	}
	return nil, nil
}
