package framework

import (
	"go/ast"
	"go/token"
	"strings"
)

// This file implements the //repolint:* directive comments the
// analyzers honor. Directives are deliberately few and loud:
//
//	//repolint:hotpath            (on a func) opt the function into the
//	                              hotpath allocation discipline
//	//repolint:alloc-ok <why>     (on a line) acknowledge one deliberate
//	                              allocation inside a hotpath function
//	//repolint:exhaustive-ok <why> (on a line) mark a string switch as a
//	                              policy switch, not enum dispatch
//	//repolint:deadline-external  (on a func) the net.Conn arrives with
//	                              its deadline already armed by the caller
//
// Every waiver wants a justification after the directive word; the
// analyzers do not parse it, reviewers do.

// FuncDirective reports whether fn's doc comment carries the directive
// //repolint:<name>.
func FuncDirective(fn *ast.FuncDecl, name string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if directiveName(c.Text) == name {
			return true
		}
	}
	return false
}

// DirectiveLines collects, per file, the set of lines carrying
// //repolint:<name>, including end-of-line comments. A waiver on line L
// covers statements starting on L or L+1, so both of these work:
//
//	//repolint:alloc-ok per-shard fan-out is amortized over the batch
//	go func() { ... }
//
//	next := make(chan int) //repolint:alloc-ok one channel per batch
func DirectiveLines(fset *token.FileSet, file *ast.File, name string) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if directiveName(c.Text) == name {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// WaivedAt reports whether a node starting at pos is covered by a
// directive line set: the directive sits on the node's own line or the
// line directly above.
func WaivedAt(fset *token.FileSet, lines map[int]bool, pos token.Pos) bool {
	l := fset.Position(pos).Line
	return lines[l] || lines[l-1]
}

// directiveName extracts the word of a //repolint:word directive, or ""
// when the comment is not one.
func directiveName(text string) string {
	rest, ok := strings.CutPrefix(text, "//repolint:")
	if !ok {
		return ""
	}
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	return rest
}
