package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	DepOnly    bool
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists patterns (relative to dir, like the go tool would resolve
// them) and returns each matched root package type-checked from source.
// Dependencies — standard library and intra-module both — are imported
// from the export data `go list -deps -export` materializes in the
// build cache, so Load works offline on any tree that compiles and
// never re-checks a dependency's source.
//
// Packages that fail to list or type-check make Load fail: the
// analyzers' findings are only trustworthy on a tree whose types
// resolved, the same rule `go vet` applies.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var roots []*listedPackage
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("framework: list %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			roots = append(roots, lp)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })

	fset := token.NewFileSet()
	imp := newCacheImporter(fset, exports)
	var pkgs []*Package
	for _, lp := range roots {
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("framework: %s uses cgo, which the source loader does not support", lp.ImportPath)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := checkPackage(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goList shells out to `go list -e -deps -export -json`, decoding the
// concatenated JSON objects it streams.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = os.Environ()
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("framework: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var listed []*listedPackage
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("framework: decoding go list output: %v", err)
		}
		listed = append(listed, lp)
	}
	return listed, nil
}

// checkPackage parses lp's sources and type-checks them against the
// export-data importer.
func checkPackage(fset *token.FileSet, imp types.Importer, lp *listedPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("framework: parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("framework: typecheck %s: %v", lp.ImportPath, firstErr)
	}
	if err != nil {
		return nil, fmt.Errorf("framework: typecheck %s: %v", lp.ImportPath, err)
	}
	return &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// newCacheImporter returns a types.Importer resolving every path
// through the gc export data recorded in exports. The gc importer
// caches packages internally, so shared dependencies are materialized
// once per Load.
func newCacheImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("framework: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// parseSource parses one in-memory file — the test hook for directive
// helpers that need an AST without a fixture on disk.
func parseSource(fset *token.FileSet, src string) (*ast.File, error) {
	return parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
}
