package framework

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// TestLoadFixture loads the hello fixture and checks the parts every
// analyzer depends on: source ASTs with comments, resolved types for
// both stdlib and intra-module imports, and a working Pass report path.
func TestLoadFixture(t *testing.T) {
	pkgs, err := Load("testdata", "./src/hello")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if !strings.HasSuffix(pkg.ImportPath, "framework/testdata/src/hello") {
		t.Errorf("import path %q", pkg.ImportPath)
	}
	if len(pkg.Files) != 1 || pkg.Files[0].Doc == nil {
		t.Fatalf("fixture AST missing doc comment (comments not parsed?)")
	}
	// The fmt.Sprintf call must have a resolved *types.Func through the
	// export-data importer, and coding.NewBitWriter a resolved
	// intra-module object.
	found := map[string]bool{}
	ast.Inspect(pkg.Files[0], func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if obj, ok := pkg.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
			found[obj.Pkg().Path()+"."+obj.Name()] = true
		}
		return true
	})
	for _, want := range []string{"fmt.Sprintf", "repro/internal/coding.NewBitWriter"} {
		if !found[want] {
			t.Errorf("no resolved use of %s (found %v)", want, found)
		}
	}

	var got []Diagnostic
	a := &Analyzer{Name: "smoke", Doc: "test", Run: func(p *Pass) error {
		p.Reportf(p.Files[0].Package, "package %s", p.Pkg.Name())
		return nil
	}}
	if err := a.Run(NewPass(a, pkg, func(d Diagnostic) { got = append(got, d) })); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Message != "package hello" {
		t.Fatalf("report path broken: %+v", got)
	}
}

// TestLoadErrors pins the failure contract: unknown patterns are load
// errors, not silent empty results.
func TestLoadErrors(t *testing.T) {
	if _, err := Load("testdata", "./src/definitely-missing"); err == nil {
		t.Fatal("missing fixture loaded without error")
	}
}

func TestDirectives(t *testing.T) {
	fset := token.NewFileSet()
	const src = `package p

//repolint:hotpath serving inner loop
func Hot() {}

func Cold() {
	_ = 1 //repolint:alloc-ok deliberate
	//repolint:alloc-ok next line covered
	_ = 2
	_ = 3
}
`
	f := mustParse(t, fset, src)
	var fns []*ast.FuncDecl
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok {
			fns = append(fns, fn)
		}
	}
	if !FuncDirective(fns[0], "hotpath") {
		t.Error("hotpath directive not detected")
	}
	if FuncDirective(fns[1], "hotpath") {
		t.Error("hotpath directive detected on unmarked func")
	}
	lines := DirectiveLines(fset, f, "alloc-ok")
	if len(lines) != 2 {
		t.Fatalf("directive lines %v, want 2 entries", lines)
	}
	stmts := fns[1].Body.List
	if !WaivedAt(fset, lines, stmts[0].Pos()) {
		t.Error("same-line waiver not honored")
	}
	if !WaivedAt(fset, lines, stmts[1].Pos()) {
		t.Error("line-above waiver not honored")
	}
	if WaivedAt(fset, lines, stmts[2].Pos()) {
		t.Error("unwaived statement reported as waived")
	}
}

func mustParse(t *testing.T, fset *token.FileSet, src string) *ast.File {
	t.Helper()
	f, err := parseSource(fset, src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}
