// Package hello is the loader smoke fixture: it imports both the
// standard library and an intra-module package, so a successful load
// proves export-data imports resolve for each kind.
package hello

import (
	"fmt"

	"repro/internal/coding"
)

// Greet exercises a stdlib call and an intra-module type.
func Greet(name string) string {
	w := coding.NewBitWriter()
	w.WriteBit(1)
	return fmt.Sprintf("hello %s (%d bits)", name, w.Len())
}
