// Package framework is the repository's own miniature go/analysis: an
// Analyzer/Pass/Diagnostic vocabulary plus a package loader, built
// entirely on the standard library (go/parser, go/types, and the build
// cache's export data via `go list -export`). The repo vendors no
// third-party modules, so golang.org/x/tools is off the table; the API
// deliberately mirrors the x/tools shapes so the analyzers in the
// sibling packages (and their tests) would port to the real framework
// with mechanical edits if the dependency ever lands.
//
// The loader's contract: Load type-checks each *root* package from
// source (full ASTs with comments — analyzers need doc comments and
// line directives like //repolint:hotpath) while every dependency,
// standard library and intra-module alike, is imported from the gc
// export data `go list -deps -export` leaves in the build cache. That
// is the same shape `go vet` uses, it needs no network and no module
// downloads, and it means a tree that builds is a tree repolint can
// analyze.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named check. Run inspects a single type-checked
// package through its Pass and reports findings; it must be stateless
// across packages (the driver runs analyzers over packages in
// unspecified order).
type Analyzer struct {
	// Name identifies the analyzer in reports (lowercase, no spaces).
	Name string
	// Doc is the one-paragraph contract: the invariant enforced and the
	// bug class it prevents.
	Doc string
	// Run performs the check. Diagnostics go through pass.Report; the
	// error return is for analysis failure (malformed input), not for
	// findings.
	Run func(pass *Pass) error
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer

	// Path is the package's import path (module-qualified, e.g.
	// "repro/internal/coding"; testdata packages keep their on-disk
	// suffix, which is how analyzers recognize fixture mode).
	Path string
	// Fset positions every AST node and diagnostic.
	Fset *token.FileSet
	// Files are the package's non-test source files, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo records types, definitions and uses for every
	// expression and identifier in Files.
	TypesInfo *types.Info

	// Report delivers one finding. The driver and the analysistest
	// harness install their own sinks.
	Report func(Diagnostic)
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Package is one loaded, type-checked root package, ready to be handed
// to analyzers as a Pass.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// NewPass binds a to pkg with the given report sink.
func NewPass(a *Analyzer, pkg *Package, report func(Diagnostic)) *Pass {
	return &Pass{
		Analyzer:  a,
		Path:      pkg.ImportPath,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Report:    report,
	}
}
