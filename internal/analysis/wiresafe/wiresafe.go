// Package wiresafe enforces the two load-bearing rules of every decode
// path in this repository — the rules the schemeio/netserve fuzzers
// probe dynamically, made structural:
//
//  1. decode-never-panics: functions that consume wire bytes (Read*,
//     Decode*, parse*, open*, finish*, unmarshal* in the decode
//     packages) must return errors, never panic or log.Fatal. A panic
//     reachable from attacker bytes is a remote crash.
//
//  2. cap-before-alloc, compared unsigned: any count or length read
//     from the wire (BitReader.ReadUvarint/ReadBits/ReadGamma/...,
//     binary.Uvarint/ReadUvarint) must flow through a comparison
//     performed on its unsigned form before it reaches make, slice
//     indexing/slicing, or io sizing (io.CopyN, Discard). Converting
//     to int first and comparing the signed value is exactly the bug
//     PR 5 review caught: a 2^63 uvarint wraps negative, passes every
//     signed bound, and panics inside make.
//
// Scope: repro/internal/coding, repro/internal/schemeio, the wire/frame
// layer of repro/internal/netserve, and every scheme/*/codec.go.
// Fixture packages (import paths containing /testdata/) are fully in
// scope so the analysistest suite can seed violations.
package wiresafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the wiresafe check.
var Analyzer = &framework.Analyzer{
	Name: "wiresafe",
	Doc:  "decode paths must return errors (never panic) and bounds-check wire-read counts in uint64 before sizing allocations",
	Run:  run,
}

// sourceMethods are the bit-reader methods whose results are
// wire-controlled integers. ReadBit is excluded: a single bit cannot
// size anything.
var sourceMethods = map[string]bool{
	"ReadUvarint": true, "ReadBits": true, "ReadGamma": true,
	"ReadGamma0": true, "ReadDelta": true, "ReadRice": true,
	"ReadUnary": true, "Uvarint": true, "Varint": true,
}

// decodePrefixes name the functions that consume wire bytes.
var decodePrefixes = []string{"read", "decode", "parse", "open", "finish", "unmarshal"}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		if !inScopeFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isDecodeFunc(fn.Name.Name) {
				continue
			}
			checkNoPanic(pass, fn)
			checkGuardedCounts(pass, fn)
		}
	}
	return nil
}

// inScopeFile applies the package/file scope of the analyzer.
func inScopeFile(pass *framework.Pass, f *ast.File) bool {
	path := pass.Path
	if strings.Contains(path, "/testdata/") {
		return true
	}
	switch path {
	case "repro/internal/coding", "repro/internal/schemeio":
		return true
	case "repro/internal/netserve":
		base := filepath.Base(pass.Fset.Position(f.Package).Filename)
		return base == "wire.go" || base == "frame.go"
	}
	if strings.HasPrefix(path, "repro/internal/scheme/") {
		base := filepath.Base(pass.Fset.Position(f.Package).Filename)
		return base == "codec.go"
	}
	return false
}

// isDecodeFunc reports whether name marks a wire-consuming function.
// Constructors (New*) and encoders keep their caller-contract panics;
// the decode rule is for bytes an attacker controls.
func isDecodeFunc(name string) bool {
	lower := strings.ToLower(name)
	for _, p := range decodePrefixes {
		if strings.HasPrefix(lower, p) {
			return true
		}
	}
	return false
}

// checkNoPanic flags panic and log.Fatal*/log.Panic* anywhere in a
// decode function, nested closures included.
func checkNoPanic(pass *framework.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "panic" && isBuiltin(pass, fun) {
				pass.Reportf(call.Pos(), "decode path %s must not panic: return an error (malformed wire bytes are not a program bug)", fn.Name.Name)
			}
		case *ast.SelectorExpr:
			if pkg := packageOf(pass, fun.X); pkg == "log" || pkg == "os" {
				name := fun.Sel.Name
				if strings.HasPrefix(name, "Fatal") || strings.HasPrefix(name, "Panic") || (pkg == "os" && name == "Exit") {
					pass.Reportf(call.Pos(), "decode path %s must not call %s.%s: return an error", fn.Name.Name, pkg, name)
				}
			}
		}
		return true
	})
}

// event is one change of a variable's taint state, ordered by source
// position (the analysis is a source-order approximation of dominance:
// a guard textually before a sink in the same function counts).
type event struct {
	pos   token.Pos
	clear bool
}

// checkGuardedCounts runs the per-function taint pass: wire-read
// integers must see an unsigned comparison before any sizing sink.
func checkGuardedCounts(pass *framework.Pass, fn *ast.FuncDecl) {
	events := make(map[types.Object][]event)
	add := func(obj types.Object, pos token.Pos, clear bool) {
		if obj != nil {
			events[obj] = append(events[obj], event{pos: pos, clear: clear})
		}
	}
	tainted := func(e ast.Expr, at token.Pos) types.Object {
		obj := identObj(pass, unwrap(e))
		if obj == nil {
			return nil
		}
		evs := events[obj]
		i := sort.Search(len(evs), func(i int) bool { return evs[i].pos >= at })
		if i == 0 {
			return nil
		}
		if evs[i-1].clear {
			return nil
		}
		return obj
	}

	// Pass 1 (source order): record taints, propagations and clears.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 {
				rhs := n.Rhs[0]
				switch {
				case isSourceCall(pass, rhs):
					// v[, err] := r.ReadUvarint() — the first value is the
					// wire-controlled integer.
					add(assignObj(pass, n.Lhs[0]), n.Pos(), false)
					for _, lhs := range n.Lhs[1:] {
						add(taintedReassign(pass, events, lhs), n.Pos(), true)
					}
				case tainted(rhs, n.Pos()) != nil:
					// y := x or y := int(x): the signed copy inherits taint.
					for _, lhs := range n.Lhs {
						add(assignObj(pass, lhs), n.Pos(), false)
					}
				default:
					// Reassignment from a clean value clears old taint.
					for _, lhs := range n.Lhs {
						add(taintedReassign(pass, events, lhs), n.Pos(), true)
					}
				}
			} else {
				for _, lhs := range n.Lhs {
					add(taintedReassign(pass, events, lhs), n.Pos(), true)
				}
			}
		case *ast.BinaryExpr:
			switch n.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
				// A comparison whose operand is unsigned-typed clears every
				// tainted variable inside that operand: `n > max`,
				// `uint64(m) > max`, and arithmetic guards like
				// `cnt-1 > uint64(n)` all count as bounds checks performed
				// in uint64. Signed operands (`int(n) > max`) never clear —
				// that is the wrap bug this analyzer exists to catch.
				for _, side := range []ast.Expr{n.X, n.Y} {
					if !isUnsignedExpr(pass, side) {
						continue
					}
					ast.Inspect(side, func(m ast.Node) bool {
						if id, ok := m.(*ast.Ident); ok {
							if obj := identObj(pass, id); obj != nil && len(events[obj]) > 0 {
								add(obj, n.Pos(), true)
							}
						}
						return true
					})
				}
			}
		}
		return true
	})
	for _, evs := range events {
		sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
	}

	// Pass 2: flag sinks reached by a tainted, unguarded value.
	report := func(e ast.Expr, sink string) {
		if obj := tainted(e, e.Pos()); obj != nil {
			pass.Reportf(e.Pos(), "wire-read count %q reaches %s without a uint64 bounds comparison (signed-wrap allocation bug class)", obj.Name(), sink)
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fun, ok := n.Fun.(*ast.Ident); ok && fun.Name == "make" && isBuiltin(pass, fun) {
				for _, arg := range n.Args[1:] {
					report(arg, "make")
				}
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if name := sel.Sel.Name; name == "CopyN" || name == "Discard" {
					for _, arg := range n.Args {
						report(arg, sel.Sel.Name)
					}
				}
			}
		case *ast.IndexExpr:
			report(n.Index, "slice indexing")
		case *ast.SliceExpr:
			for _, b := range []ast.Expr{n.Low, n.High, n.Max} {
				if b != nil {
					report(b, "slicing")
				}
			}
		}
		return true
	})
}

// isSourceCall recognizes a wire-integer producer: a call (possibly
// inside a conversion) to a bit-reader method or binary varint reader.
func isSourceCall(pass *framework.Pass, e ast.Expr) bool {
	e = unwrapParens(e)
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	// Conversion like uint64(r.ReadBits(8)) cannot appear (multi-value),
	// but int(x) over a single-value source can: unwrap one level.
	if isConversion(pass, call) && len(call.Args) == 1 {
		return isSourceCall(pass, call.Args[0])
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if !sourceMethods[sel.Sel.Name] {
		return false
	}
	// binary.Uvarint / binary.Varint / binary.ReadUvarint are package
	// calls; everything else must be a method (any receiver whose method
	// is named like a bit-reader read — name-keyed so fixtures need not
	// import internal/coding).
	if pkg := packageOf(pass, sel.X); pkg != "" {
		return pkg == "binary"
	}
	return strings.HasPrefix(sel.Sel.Name, "Read")
}

// taintedReassign returns lhs's object if it currently carries taint
// events (so a reassignment records a clear), else nil.
func taintedReassign(pass *framework.Pass, events map[types.Object][]event, lhs ast.Expr) types.Object {
	obj := identObj(pass, unwrap(lhs))
	if obj == nil || len(events[obj]) == 0 {
		return nil
	}
	return obj
}

// assignObj resolves the object an assignment target binds.
func assignObj(pass *framework.Pass, lhs ast.Expr) types.Object {
	id, ok := unwrap(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// identObj resolves e to a variable object when e is a plain
// identifier.
func identObj(pass *framework.Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if _, ok := obj.(*types.Var); !ok {
		return nil
	}
	return obj
}

// unwrap strips parens and conversions: int(x), uint64((x)) → x.
func unwrap(e ast.Expr) ast.Expr {
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.CallExpr:
			if len(t.Args) == 1 {
				if _, ok := t.Args[0].(ast.Expr); ok {
					// Only strip if this is a type conversion shape: a
					// lone argument under an identifier-ish fun. Checked
					// loosely here; isConversion gates the typed case.
					if id, ok := t.Fun.(*ast.Ident); ok && isTypeName(id) {
						e = t.Args[0]
						continue
					}
				}
			}
			return e
		default:
			return e
		}
	}
}

func unwrapParens(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// isTypeName is a syntactic check for conversion-looking calls used by
// unwrap before type information is consulted.
func isTypeName(id *ast.Ident) bool {
	switch id.Name {
	case "int", "int8", "int16", "int32", "int64",
		"uint", "uint8", "uint16", "uint32", "uint64", "uintptr", "byte", "rune":
		return true
	}
	return false
}

// isConversion reports whether call is a type conversion per the type
// checker.
func isConversion(pass *framework.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	return ok && tv.IsType()
}

// isUnsignedExpr reports whether e's static type is an unsigned
// integer — the "comparison performed in uint64" requirement.
func isUnsignedExpr(pass *framework.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsUnsigned != 0
}

// isBuiltin reports whether id resolves to the universe-scope builtin
// of the same name (so a local func named panic or make is not
// confused for it).
func isBuiltin(pass *framework.Pass, id *ast.Ident) bool {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return true // unresolved: assume builtin
	}
	_, ok := obj.(*types.Builtin)
	return ok
}

// packageOf resolves e to an imported package name when e is a package
// qualifier identifier.
func packageOf(pass *framework.Pass, e ast.Expr) string {
	id, ok := unwrapParens(e).(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Name()
	}
	return ""
}
