// Package a seeds wiresafe violations and conforming shapes. Every
// function here is decode-named (read/decode/parse) so the analyzer
// treats it as a wire-consuming path.
package a

import (
	"encoding/binary"
	"errors"
	"io"
	"log"
)

// reader mimics coding.BitReader's read surface; wiresafe keys on the
// method names, not the concrete type.
type reader struct{ buf []byte }

func (r *reader) ReadUvarint() (uint64, error) { return 0, nil }
func (r *reader) ReadBits(w int) (uint64, error) {
	if w < 0 || w > 64 {
		return 0, errors.New("width")
	}
	return 0, nil
}

const maxCount = 1 << 20

// decodeUnguardedMake sizes an allocation straight off the wire.
func decodeUnguardedMake(r *reader) ([]byte, error) {
	n, err := r.ReadUvarint()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, n) // want `wire-read count "n" reaches make`
	return buf, nil
}

// decodeSignedGuard is the PR-5 bug shape: the count is converted to
// int first, so the bound check compares a signed value a 2^63 input
// wraps right past.
func decodeSignedGuard(r *reader) ([]byte, error) {
	n, err := r.ReadUvarint()
	if err != nil {
		return nil, err
	}
	m := int(n)
	if m > maxCount {
		return nil, errors.New("too big")
	}
	buf := make([]byte, m) // want `wire-read count "m" reaches make`
	return buf, nil
}

// decodeGuardedMake compares the unsigned value before allocating.
func decodeGuardedMake(r *reader) ([]byte, error) {
	n, err := r.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if n > maxCount {
		return nil, errors.New("too big")
	}
	return make([]byte, n), nil
}

// decodeGuardedConversion guards the signed copy by lifting it back to
// uint64 for the comparison — the accepted idiom when an int is needed
// downstream.
func decodeGuardedConversion(r *reader) ([]byte, error) {
	n, err := r.ReadUvarint()
	if err != nil {
		return nil, err
	}
	m := int(n)
	if uint64(m) > maxCount {
		return nil, errors.New("too big")
	}
	return make([]byte, m), nil
}

// decodeUnguardedIndex indexes with a wire integer.
func decodeUnguardedIndex(r *reader, table []int) (int, error) {
	i, err := r.ReadBits(16)
	if err != nil {
		return 0, err
	}
	return table[i], nil // want `wire-read count "i" reaches slice indexing`
}

// decodeUnguardedSlice slices with a wire integer.
func decodeUnguardedSlice(r *reader, data []byte) ([]byte, error) {
	end, err := r.ReadUvarint()
	if err != nil {
		return nil, err
	}
	return data[:end], nil // want `wire-read count "end" reaches slicing`
}

// parseVarintCopy drives io sizing from binary.Uvarint output.
func parseVarintCopy(w io.Writer, src io.Reader, data []byte) error {
	n, size := binary.Uvarint(data)
	if size <= 0 {
		return errors.New("short varint")
	}
	_, err := io.CopyN(w, src, int64(n)) // want `wire-read count "n" reaches CopyN`
	return err
}

// parseVarintGuarded is the conforming io shape.
func parseVarintGuarded(w io.Writer, src io.Reader, data []byte) error {
	n, size := binary.Uvarint(data)
	if size <= 0 {
		return errors.New("short varint")
	}
	if n > maxCount {
		return errors.New("too big")
	}
	_, err := io.CopyN(w, src, int64(n))
	return err
}

// decodePanics panics on malformed input instead of returning an error.
func decodePanics(r *reader) ([]byte, error) {
	n, err := r.ReadUvarint()
	if err != nil {
		panic("short read") // want `decode path decodePanics must not panic`
	}
	if n > maxCount {
		return nil, errors.New("too big")
	}
	return make([]byte, n), nil
}

// readFatal aborts the process from a decode path.
func readFatal(r *reader) uint64 {
	n, err := r.ReadUvarint()
	if err != nil {
		log.Fatal(err) // want `decode path readFatal must not call log.Fatal`
	}
	return n
}

// NewReader is a constructor, not a decode path: caller-contract panics
// stay legal outside the decode-named set.
func NewReader(buf []byte, nbit int) *reader {
	if nbit < 0 {
		panic("a: negative bit count")
	}
	return &reader{buf: buf}
}

// decodeArithGuard bounds the count through unsigned arithmetic
// (`cnt-1 > limit` style), which still counts as a uint64 comparison.
func decodeArithGuard(r *reader) ([]byte, error) {
	cnt, err := r.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if cnt-1 > maxCount {
		return nil, errors.New("too big")
	}
	return make([]byte, cnt), nil
}

// decodeReassigned shows taint clearing on reassignment: once the
// variable holds a non-wire value, sizing with it is fine.
func decodeReassigned(r *reader) ([]byte, error) {
	n, err := r.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if n > maxCount {
		return nil, errors.New("too big")
	}
	k := int(n)
	k = 8
	return make([]byte, k), nil
}

// decodeDeltaEdgesUnguarded is the generation-patch decode shape gone
// wrong: the edge count sizes the slice before any unsigned bound, so a
// 2^63 count from the wire reaches the allocator.
func decodeDeltaEdgesUnguarded(r *reader, n int) ([][2]uint64, error) {
	ne, err := r.ReadUvarint()
	if err != nil {
		return nil, err
	}
	edges := make([][2]uint64, 0, ne) // want `wire-read count "ne" reaches make`
	for i := uint64(0); i < ne; i++ {
		u, err := r.ReadUvarint()
		if err != nil {
			return nil, err
		}
		v, err := r.ReadUvarint()
		if err != nil {
			return nil, err
		}
		edges = append(edges, [2]uint64{u, v})
	}
	return edges, nil
}

// decodeDeltaEdgesGuarded is the conforming generation-patch decoder:
// the count is bounded unsigned before it sizes anything, and every
// edge endpoint is range- and order-checked unsigned before narrowing
// (the strictly-increasing walk schemeio.DecodeDelta enforces).
func decodeDeltaEdgesGuarded(r *reader, n int) ([][2]uint64, error) {
	ne, err := r.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if ne > uint64(n)*uint64(n) {
		return nil, errors.New("edge count exceeds order squared")
	}
	edges := make([][2]uint64, 0, ne)
	var prevU, prevV uint64
	for i := uint64(0); i < ne; i++ {
		u, err := r.ReadUvarint()
		if err != nil {
			return nil, err
		}
		v, err := r.ReadUvarint()
		if err != nil {
			return nil, err
		}
		if u >= v || v >= uint64(n) {
			return nil, errors.New("edge not canonical")
		}
		if i > 0 && (u < prevU || (u == prevU && v <= prevV)) {
			return nil, errors.New("edges not strictly increasing")
		}
		prevU, prevV = u, v
		edges = append(edges, [2]uint64{u, v})
	}
	return edges, nil
}
