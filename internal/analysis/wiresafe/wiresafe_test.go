package wiresafe

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestWiresafe(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), Analyzer, "a")
}
