// Package analysistest runs one framework.Analyzer over seeded fixture
// packages and checks its diagnostics against `// want` expectations in
// the fixture source — the golden-test harness every analyzer in
// internal/analysis is pinned by, mirroring the x/tools package of the
// same name.
//
// Fixtures live under <analyzer>/testdata/src/<pkg>/. They are real,
// compiling Go packages (the testdata directory hides them from ./...
// wildcards, but the loader lists them by explicit path), which keeps
// the seeded violations honest: every fixture type-checks exactly like
// production code would.
//
// Expectations are end-of-line comments:
//
//	n := make([]byte, c) // want `reaches make`
//
// Each quoted string (double or back quotes) is a regular expression
// that must match the message of a diagnostic reported on that line;
// diagnostics with no matching expectation and expectations with no
// matching diagnostic both fail the test.
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis/framework"
)

// TestData returns the analyzer package's testdata directory (the
// conventional fixture root), resolved from the test's working
// directory.
func TestData() string {
	dir, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	return filepath.Join(dir, "testdata")
}

// Run loads each pattern as the fixture package testdata/src/<pattern>,
// runs a over it, and reports mismatches between diagnostics and
// `// want` expectations through t.
func Run(t *testing.T, testdata string, a *framework.Analyzer, patterns ...string) {
	t.Helper()
	if len(patterns) == 0 {
		t.Fatal("analysistest: no fixture patterns")
	}
	rel := make([]string, len(patterns))
	for i, p := range patterns {
		rel[i] = "./" + filepath.ToSlash(filepath.Join("src", p))
	}
	pkgs, err := framework.Load(testdata, rel...)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	if len(pkgs) != len(patterns) {
		t.Fatalf("analysistest: loaded %d packages for %d patterns", len(pkgs), len(patterns))
	}
	for _, pkg := range pkgs {
		runOne(t, a, pkg)
	}
}

// expectation is one `// want` regexp awaiting a diagnostic.
type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	raw     string
	matched bool
}

func runOne(t *testing.T, a *framework.Analyzer, pkg *framework.Package) {
	t.Helper()
	expects := collectExpectations(t, pkg)
	var diags []framework.Diagnostic
	pass := framework.NewPass(a, pkg, func(d framework.Diagnostic) { diags = append(diags, d) })
	if err := a.Run(pass); err != nil {
		t.Fatalf("analysistest: %s on %s: %v", a.Name, pkg.ImportPath, err)
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !claim(expects, pos, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.raw)
		}
	}
}

// claim marks the first unmatched expectation on the diagnostic's line
// whose regexp matches.
func claim(expects []*expectation, pos token.Position, msg string) bool {
	for _, e := range expects {
		if e.matched || e.file != pos.Filename || e.line != pos.Line {
			continue
		}
		if e.rx.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

// wantArg captures one quoted expectation string: double-quoted (with
// escapes) or back-quoted.
var wantArg = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

func collectExpectations(t *testing.T, pkg *framework.Package) []*expectation {
	t.Helper()
	var expects []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				args := wantArg.FindAllString(text, -1)
				if len(args) == 0 {
					t.Fatalf("%s: malformed want comment %q", pos, c.Text)
				}
				for _, arg := range args {
					pat, err := unquote(arg)
					if err != nil {
						t.Fatalf("%s: want argument %s: %v", pos, arg, err)
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: want regexp %q: %v", pos, pat, err)
					}
					expects = append(expects, &expectation{file: pos.Filename, line: pos.Line, rx: rx, raw: pat})
				}
			}
		}
	}
	return expects
}

func unquote(s string) (string, error) {
	if strings.HasPrefix(s, "`") {
		return strings.Trim(s, "`"), nil
	}
	var out strings.Builder
	body := s[1 : len(s)-1]
	for i := 0; i < len(body); i++ {
		if body[i] == '\\' {
			i++
			if i >= len(body) {
				return "", fmt.Errorf("trailing backslash")
			}
		}
		out.WriteByte(body[i])
	}
	return out.String(), nil
}
