package nodefaultfallback

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestNoDefaultFallback(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), Analyzer, "e")
}
