// Package nodefaultfallback enforces loud CLI dispatch: a switch over
// an enum-like string (scheme names, output formats, workload kinds)
// must reject unknown values with an explicit error, never fall through
// to a silent default. The bug class is real for this repo: a typo'd
// -scheme flag that silently picks some default arm produces a valid-
// looking benchmark trajectory measured on the wrong scheme.
//
// A switch is in scope when its tag is string-typed and every case
// value is a constant string (that is what an enum dispatch looks
// like). It must then have a default arm that is "loud": it returns a
// non-nil error, or calls one of fmt.Errorf, errors.New, os.Exit,
// log.Fatal*, log.Panic*, or panic.
//
// Policy switches where the fallback is the point (a feature toggle
// keyed on a subset of schemes) are waived with
// //repolint:exhaustive-ok <why> on the switch line or the line above.
package nodefaultfallback

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the nodefaultfallback check.
var Analyzer = &framework.Analyzer{
	Name: "nodefaultfallback",
	Doc:  "string-enum dispatch switches in CLI code must have a loud default arm (explicit error on unknown values), or carry //repolint:exhaustive-ok",
	Run:  run,
}

func run(pass *framework.Pass) error {
	if !inScope(pass.Path) {
		return nil
	}
	errType := types.Universe.Lookup("error").Type()
	for _, f := range pass.Files {
		waivers := framework.DirectiveLines(pass.Fset, f, "exhaustive-ok")
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok {
				return true
			}
			if !isStringEnumSwitch(pass, sw) {
				return true
			}
			if framework.WaivedAt(pass.Fset, waivers, sw.Pos()) {
				return true
			}
			def := defaultClause(sw)
			switch {
			case def == nil:
				pass.Reportf(sw.Pos(), "string-enum switch has no default arm: unknown values fall through silently (add an explicit-error default or waive with exhaustive-ok)")
			case !isLoud(pass, def, errType):
				pass.Reportf(def.Pos(), "string-enum switch has a silent default arm: unknown values must produce an explicit error (or waive with exhaustive-ok)")
			}
			return true
		})
	}
	return nil
}

// inScope limits the analyzer to flag/CLI dispatch code (and fixtures).
func inScope(path string) bool {
	return path == "repro/internal/cliutil" ||
		strings.HasPrefix(path, "repro/cmd/") ||
		strings.Contains(path, "/testdata/")
}

// isStringEnumSwitch reports whether sw dispatches a string tag over
// ≥ 2 constant-string case values — the enum shape.
func isStringEnumSwitch(pass *framework.Pass, sw *ast.SwitchStmt) bool {
	if sw.Tag == nil {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sw.Tag]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsString == 0 {
		return false
	}
	values := 0
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			etv, ok := pass.TypesInfo.Types[e]
			if !ok || etv.Value == nil {
				return false // non-constant case: not an enum dispatch
			}
			eb, ok := etv.Type.Underlying().(*types.Basic)
			if !ok || eb.Info()&types.IsString == 0 {
				return false
			}
			values++
		}
	}
	return values >= 2
}

// defaultClause returns sw's default arm, or nil.
func defaultClause(sw *ast.SwitchStmt) *ast.CaseClause {
	for _, stmt := range sw.Body.List {
		if cc, ok := stmt.(*ast.CaseClause); ok && cc.List == nil {
			return cc
		}
	}
	return nil
}

// isLoud reports whether the default arm rejects: returns a non-nil
// error or calls an aborting/error-constructing function.
func isLoud(pass *framework.Pass, cc *ast.CaseClause, errType types.Type) bool {
	loud := false
	for _, stmt := range cc.Body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isLoudCall(pass, n) {
					loud = true
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					if isNilIdent(res) {
						continue
					}
					if tv, ok := pass.TypesInfo.Types[res]; ok && tv.Type != nil && types.AssignableTo(tv.Type, errType) {
						loud = true
					}
				}
			}
			return !loud
		})
		if loud {
			return true
		}
	}
	return false
}

// isLoudCall matches the error-raising call set.
func isLoudCall(pass *framework.Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			return true
		}
	case *ast.SelectorExpr:
		id, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
		if !ok {
			return false
		}
		name := fun.Sel.Name
		switch pn.Imported().Path() {
		case "fmt":
			return name == "Errorf"
		case "errors":
			return name == "New"
		case "os":
			return name == "Exit"
		case "log":
			return strings.HasPrefix(name, "Fatal") || strings.HasPrefix(name, "Panic")
		}
	}
	return false
}

// isNilIdent reports whether e is the untyped nil literal.
func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
