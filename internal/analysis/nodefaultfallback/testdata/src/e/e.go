// Package e seeds nodefaultfallback violations: a missing default arm,
// a silent default arm, and the conforming/waived/out-of-scope shapes.
package e

import (
	"errors"
	"fmt"
)

const (
	modeFast = "fast"
	modeSafe = "safe"
)

// dispatchGood rejects unknown enum strings explicitly.
func dispatchGood(mode string) (int, error) {
	switch mode {
	case modeFast:
		return 1, nil
	case modeSafe:
		return 2, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", mode)
	}
}

// dispatchErrVar returns a prebuilt error: still loud.
var errUnknown = errors.New("unknown mode")

func dispatchErrVar(mode string) (int, error) {
	switch mode {
	case modeFast:
		return 1, nil
	case modeSafe:
		return 2, nil
	default:
		return 0, errUnknown
	}
}

// dispatchNoDefault lets unknown strings fall through silently.
func dispatchNoDefault(mode string) int {
	n := 0
	switch mode { // want `string-enum switch has no default arm`
	case modeFast:
		n = 1
	case modeSafe:
		n = 2
	}
	return n
}

// dispatchSilent has a default, but it silently substitutes a value.
func dispatchSilent(mode string) int {
	switch mode {
	case modeFast:
		return 1
	case modeSafe:
		return 2
	default: // want `string-enum switch has a silent default arm`
		return 1
	}
}

// dispatchWaived is a policy switch: the fallback IS the behavior.
func dispatchWaived(scheme string) bool {
	needHop := true
	//repolint:exhaustive-ok hop estimation only applies to these schemes
	switch scheme {
	case "landmark", "interval":
	default:
		needHop = false
	}
	return needHop
}

// dispatchInt is not a string enum: ints are out of scope.
func dispatchInt(n int) int {
	switch n {
	case 1:
		return 10
	case 2:
		return 20
	}
	return 0
}

// dispatchOneCase is not an enum dispatch: a single value is a guard,
// not a vocabulary.
func dispatchOneCase(mode string) int {
	switch mode {
	case modeFast:
		return 1
	}
	return 0
}

// dispatchNonConst compares computed strings: out of scope.
func dispatchNonConst(mode, other string) int {
	switch mode {
	case other, modeFast:
		return 1
	}
	return 0
}
