package hotpath

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestHotpath(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), Analyzer, "c")
}
