// Package hotpath enforces the allocation discipline of functions
// marked //repolint:hotpath. The serving stack's latency budget
// (ROADMAP tier: allocation-lean hot path, PR 8) depends on a handful
// of functions staying allocation-free per call; this analyzer turns
// that benchmark-enforced property into a structural one that fails at
// review time instead of in a trajectory regression.
//
// In a marked function, four allocation shapes are flagged:
//
//   - closures capturing outer variables: a capturing func literal
//     forces a heap-allocated closure (and usually heap-promotes the
//     captured variables) on every call.
//
//   - fmt.* calls: fmt boxes every operand and allocates the result.
//     Calls inside a return statement are exempt — error construction
//     on the way out is the cold path by definition.
//
//   - map allocation: map literals and make(map[...]...) at hot-path
//     call frequency are a GC treadmill.
//
//   - interface boxing: passing a concrete basic/struct/array/slice/
//     string value to an interface-typed parameter allocates unless
//     escape analysis rescues it; on the hot path we don't gamble.
//     Again exempt inside return statements.
//
// Deliberate allocations (a per-connection scratch grown once, a
// startup-time map) are waived line-by-line with
// //repolint:alloc-ok <why> on the same line or the line above.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer is the hotpath check.
var Analyzer = &framework.Analyzer{
	Name: "hotpath",
	Doc:  "functions marked //repolint:hotpath must not allocate via capturing closures, fmt, map literals, or interface boxing (waive deliberate cases with //repolint:alloc-ok)",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		waivers := framework.DirectiveLines(pass.Fset, f, "alloc-ok")
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !framework.FuncDirective(fn, "hotpath") {
				continue
			}
			checkFunc(pass, fn, waivers)
		}
	}
	return nil
}

func checkFunc(pass *framework.Pass, fn *ast.FuncDecl, waivers map[int]bool) {
	report := func(pos token.Pos, format string, args ...any) {
		if framework.WaivedAt(pass.Fset, waivers, pos) {
			return
		}
		pass.Reportf(pos, format, args...)
	}

	// returnSpans records the source ranges of return statements; fmt
	// and boxing inside them are cold-path error construction.
	var returnSpans [][2]token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			returnSpans = append(returnSpans, [2]token.Pos{r.Pos(), r.End()})
		}
		return true
	})
	inReturn := func(pos token.Pos) bool {
		for _, span := range returnSpans {
			if pos >= span[0] && pos < span[1] {
				return true
			}
		}
		return false
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if captured := capturedVars(pass, n); len(captured) > 0 {
				report(n.Pos(), "hot path %s: closure captures %s, forcing a per-call heap allocation", fn.Name.Name, captured[0])
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if pkg := packagePath(pass, sel); pkg == "fmt" && !inReturn(n.Pos()) {
					report(n.Pos(), "hot path %s: fmt.%s allocates per call (move to the error return or waive with alloc-ok)", fn.Name.Name, sel.Sel.Name)
				}
			}
			if fun, ok := n.Fun.(*ast.Ident); ok && fun.Name == "make" && len(n.Args) > 0 {
				if tv, ok := pass.TypesInfo.Types[n.Args[0]]; ok && tv.IsType() {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						report(n.Pos(), "hot path %s: make(map) allocates; hoist to setup or waive with alloc-ok", fn.Name.Name)
					}
				}
			}
			if !inReturn(n.Pos()) {
				checkBoxing(pass, fn, n, report)
			}
		case *ast.CompositeLit:
			if tv, ok := pass.TypesInfo.Types[n]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					report(n.Pos(), "hot path %s: map literal allocates; hoist to setup or waive with alloc-ok", fn.Name.Name)
				}
			}
		}
		return true
	})
}

// capturedVars lists variables a func literal references but does not
// declare — the closure's capture set. Package-level objects are free
// to reference; only local captures force a closure allocation.
func capturedVars(pass *framework.Pass, lit *ast.FuncLit) []string {
	declared := make(map[types.Object]bool)
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				declared[obj] = true
			}
		}
		return true
	})
	var captured []string
	seen := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || declared[obj] || seen[obj] {
			return true
		}
		// Package-level variables are not captures.
		if obj.Parent() == pass.Pkg.Scope() || obj.Parent() == types.Universe {
			return true
		}
		// Struct fields reached through a selector resolve to *types.Var
		// too; only flag objects declared outside the literal but inside
		// some function (Parent non-nil distinguishes locals from fields).
		if obj.Parent() == nil {
			return true
		}
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			seen[obj] = true
			captured = append(captured, obj.Name())
		}
		return true
	})
	return captured
}

// checkBoxing flags concrete values passed to interface-typed
// parameters. Pointer, chan, func, map and interface arguments are
// pointer-shaped already — boxing them is a word copy, not an
// allocation.
func checkBoxing(pass *framework.Pass, fn *ast.FuncDecl, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	sig := callSignature(pass, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, ok := pt.Underlying().(*types.Interface); !ok {
			continue
		}
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || tv.Type == nil {
			continue
		}
		switch tv.Type.Underlying().(type) {
		case *types.Basic, *types.Struct, *types.Array, *types.Slice:
			if b, isBasic := tv.Type.Underlying().(*types.Basic); isBasic && b.Kind() == types.UntypedNil {
				continue
			}
			report(arg.Pos(), "hot path %s: passing %s to an interface parameter boxes it onto the heap", fn.Name.Name, types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
		}
	}
}

// packagePath resolves a selector's qualifier to an imported package
// path, or "" when the selector is a field/method access.
func packagePath(pass *framework.Pass, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// callSignature resolves the called function's signature, returning nil
// for type conversions and builtins.
func callSignature(pass *framework.Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}
