// Package c seeds hotpath violations: capturing closures, mid-body
// fmt, map allocation, and interface boxing inside a marked function,
// plus the exemptions (return-statement error paths, alloc-ok waivers,
// unmarked functions).
package c

import (
	"errors"
	"fmt"
)

var errTooBig = errors.New("too big")

var global int

func sink(v any) {}

func sinkPtr(p *int) {}

//repolint:hotpath
func Hot(xs []int) (int, error) {
	total := 0
	for _, x := range xs {
		total += x
	}
	bump := func() { total++ } // want `closure captures total`
	bump()
	clean := func(a int) int { return a + global }
	total = clean(total)
	_ = fmt.Sprint(total)  // want `fmt\.Sprint allocates` `passing int to an interface parameter`
	m := make(map[int]int) // want `make\(map\) allocates`
	_ = m
	lit := map[string]int{} // want `map literal allocates`
	_ = lit
	sink(total) // want `passing int to an interface parameter`
	sinkPtr(&total)
	//repolint:alloc-ok startup-sized scratch, grown once
	waived := make(map[int]int)
	_ = waived
	if total > 1<<30 {
		return 0, fmt.Errorf("hot: %w at %d", errTooBig, total)
	}
	return total, nil
}

// Cold does all the same things unmarked: no diagnostics.
func Cold(xs []int) (int, error) {
	total := 0
	bump := func() { total++ }
	bump()
	_ = fmt.Sprint(total)
	m := make(map[int]int)
	_ = m
	sink(total)
	return total, nil
}

//repolint:hotpath
func HotReturnPath(n int) error {
	if n < 0 {
		return fmt.Errorf("negative %d", n)
	}
	return nil
}
