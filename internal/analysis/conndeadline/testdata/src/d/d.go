// Package d seeds conndeadline violations: conn I/O with no deadline,
// I/O before the deadline is armed, and the exemptions (deadline-first,
// deadline-external directive, frame helpers without a conn in scope).
package d

import (
	"bufio"
	"net"
	"time"
)

// fakeConn duck-types the net.Conn deadline surface.
type fakeConn struct{}

func (c *fakeConn) Read(p []byte) (int, error)         { return 0, nil }
func (c *fakeConn) Write(p []byte) (int, error)        { return len(p), nil }
func (c *fakeConn) SetDeadline(t time.Time) error      { return nil }
func (c *fakeConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *fakeConn) SetWriteDeadline(t time.Time) error { return nil }

// readFrameInto is the frame helper shape: no conn in scope, exempt.
func readFrameInto(br *bufio.Reader, buf []byte) ([]byte, error) {
	n, err := br.Read(buf)
	return buf[:n], err
}

// handleGood arms the read deadline before touching the conn.
func handleGood(c *fakeConn, buf []byte) error {
	if err := c.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
		return err
	}
	_, err := c.Read(buf)
	return err
}

// handleNoDeadline reads with no deadline armed anywhere.
func handleNoDeadline(c *fakeConn, buf []byte) error {
	_, err := c.Read(buf) // want `performs conn I/O \(conn\.Read\) with no deadline`
	return err
}

// handleLate arms the deadline after the first write.
func handleLate(c *fakeConn, buf []byte) error {
	if _, err := c.Write(buf); err != nil { // want `performs conn I/O \(conn\.Write\) before the deadline is armed`
		return err
	}
	return c.SetWriteDeadline(time.Now().Add(time.Second))
}

// handleHelper reaches the conn through a frame helper, still with no
// deadline.
func handleHelper(c *fakeConn, br *bufio.Reader, buf []byte) error {
	_, err := readFrameInto(br, buf) // want `performs conn I/O \(readFrameInto\) with no deadline`
	_ = c
	return err
}

// handleNetConn pins the real net.Conn interface match.
func handleNetConn(c net.Conn, buf []byte) error {
	_, err := c.Read(buf) // want `performs conn I/O \(conn\.Read\) with no deadline`
	return err
}

// handleExternal's conn arrives deadline-armed by its caller.
//
//repolint:deadline-external caller arms the deadline per frame
func handleExternal(c *fakeConn, buf []byte) error {
	_, err := c.Read(buf)
	return err
}

// closeOnly touches the conn without I/O: nothing to arm.
func closeOnly(c net.Conn) error {
	return c.Close()
}
