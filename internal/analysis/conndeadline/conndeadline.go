// Package conndeadline enforces the no-hung-connection invariant of
// internal/netserve: every function that performs I/O on a net.Conn
// must arm a deadline first. A read or write on a conn with no deadline
// blocks forever when the peer stalls, and one stalled peer must never
// pin a server goroutine (the open-loop latency harness of PR 7 counts
// on this).
//
// The rule is source-order dominance within one function: before the
// first conn I/O there must be a SetDeadline / SetReadDeadline /
// SetWriteDeadline call. Conn I/O is a .Read/.Write on a net.Conn-typed
// value or a call to the frame helpers (readFrame, readFrameInto,
// writeFrame) with a net.Conn in scope; the helpers themselves see only
// bufio.Reader/io.Writer and are exempt.
//
// Functions whose conn arrives already armed (the caller set the
// deadline) opt out with //repolint:deadline-external in their doc
// comment.
package conndeadline

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the conndeadline check.
var Analyzer = &framework.Analyzer{
	Name: "conndeadline",
	Doc:  "net.Conn reads/writes must be preceded by a Set{Read,Write,}Deadline in the same function (or the function carries //repolint:deadline-external)",
	Run:  run,
}

// ioHelpers are the frame-layer functions that perform conn I/O one
// level down; calling them counts as touching the conn.
var ioHelpers = map[string]bool{
	"readFrame": true, "readFrameInto": true, "writeFrame": true,
}

func run(pass *framework.Pass) error {
	if !inScope(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if framework.FuncDirective(fn, "deadline-external") {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

// inScope limits the analyzer to the network-serving layer (and the
// analysistest fixtures).
func inScope(path string) bool {
	return path == "repro/internal/netserve" || strings.Contains(path, "/testdata/")
}

func checkFunc(pass *framework.Pass, fn *ast.FuncDecl) {
	if !hasConnValue(pass, fn) {
		return
	}
	var firstIO token.Pos
	var firstIOName string
	var deadlinePos token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if ioHelpers[fun.Name] && (firstIO == token.NoPos || call.Pos() < firstIO) {
				firstIO, firstIOName = call.Pos(), fun.Name
			}
		case *ast.SelectorExpr:
			name := fun.Sel.Name
			switch name {
			case "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
				if isConnExpr(pass, fun.X) && (deadlinePos == token.NoPos || call.Pos() < deadlinePos) {
					deadlinePos = call.Pos()
				}
			case "Read", "Write":
				if isConnExpr(pass, fun.X) && (firstIO == token.NoPos || call.Pos() < firstIO) {
					firstIO, firstIOName = call.Pos(), "conn."+name
				}
			default:
				if ioHelpers[name] && (firstIO == token.NoPos || call.Pos() < firstIO) {
					firstIO, firstIOName = call.Pos(), name
				}
			}
		}
		return true
	})
	if firstIO == token.NoPos {
		return
	}
	if deadlinePos == token.NoPos {
		pass.Reportf(firstIO, "%s performs conn I/O (%s) with no deadline set in %s: a stalled peer pins this goroutine forever (set one, or mark //repolint:deadline-external)", fn.Name.Name, firstIOName, fn.Name.Name)
		return
	}
	if deadlinePos > firstIO {
		pass.Reportf(firstIO, "%s performs conn I/O (%s) before the deadline is armed at %s", fn.Name.Name, firstIOName, pass.Fset.Position(deadlinePos))
	}
}

// hasConnValue reports whether any parameter, receiver field access, or
// local in fn has type net.Conn (or an interface embedding it, matched
// by name). Frame helpers that only see bufio/io types return false and
// are exempt.
func hasConnValue(pass *framework.Pass, fn *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if tv, ok := pass.TypesInfo.Types[e]; ok && isConnType(tv.Type) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isConnExpr reports whether e's static type is net.Conn-ish.
func isConnExpr(pass *framework.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && isConnType(tv.Type)
}

// isConnType matches net.Conn itself, named interfaces embedding it
// (e.g. *net.TCPConn), and fixture stand-ins named Conn with the
// deadline trio — the analyzer keys on the interface identity when it
// can, the shape when it cannot.
func isConnType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "net" && (obj.Name() == "Conn" || strings.HasSuffix(obj.Name(), "Conn")) {
			return true
		}
	}
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return hasDeadlineMethods(t)
	}
	need := map[string]bool{"Read": false, "Write": false, "SetReadDeadline": false, "SetWriteDeadline": false}
	for i := 0; i < iface.NumMethods(); i++ {
		if _, tracked := need[iface.Method(i).Name()]; tracked {
			need[iface.Method(i).Name()] = true
		}
	}
	for _, ok := range need {
		if !ok {
			return false
		}
	}
	return true
}

// hasDeadlineMethods duck-types concrete conn implementations (fixture
// fakes, wrapped conns) by their deadline surface.
func hasDeadlineMethods(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	need := map[string]bool{"Read": false, "Write": false, "SetReadDeadline": false, "SetWriteDeadline": false}
	for i := 0; i < named.NumMethods(); i++ {
		if _, tracked := need[named.Method(i).Name()]; tracked {
			need[named.Method(i).Name()] = true
		}
	}
	for _, ok := range need {
		if !ok {
			return false
		}
	}
	return true
}
