package conndeadline

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestConndeadline(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), Analyzer, "d")
}
