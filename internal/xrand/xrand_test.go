package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestKnownStream(t *testing.T) {
	// SplitMix64 reference values for seed 0 (from the public-domain
	// reference implementation by Sebastiano Vigna).
	r := New(0)
	want := []uint64{
		0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f,
		0xf88bb8a8724c81ec, 0x1b39896a51a8749b,
	}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("step %d: got %#x, want %#x", i, got, w)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	if New(1).Uint64() == New(2).Uint64() {
		t.Fatal("different seeds produced identical first values")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for n := 1; n <= 40; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(99)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	for v, c := range counts {
		// Expected 10000; allow 10% slack (well beyond 5 sigma).
		if c < 9000 || c > 11000 {
			t.Fatalf("value %d drawn %d times out of %d, suspiciously non-uniform", v, c, trials)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		r := New(seed)
		p := r.Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(5)
	const n, trials = 6, 60000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Perm(n)[0]]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("first element %d appeared %d/%d times", v, c, trials)
		}
	}
}

func TestSampleDistinct(t *testing.T) {
	check := func(seed uint64, a, b uint8) bool {
		n := int(a%50) + 1
		k := int(b) % (n + 1)
		r := New(seed)
		s := r.Sample(n, k)
		if len(s) != k {
			return false
		}
		seen := make(map[int]bool)
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleFull(t *testing.T) {
	r := New(11)
	s := r.Sample(10, 10)
	seen := make([]bool, 10)
	for _, v := range s {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("Sample(10,10) missing element %d", i)
		}
	}
}

func TestSamplePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(3,4) did not panic")
		}
	}()
	New(1).Sample(3, 4)
}

func TestSplitIndependence(t *testing.T) {
	r := New(123)
	s := r.Split()
	// The split stream must differ from the parent's continuation.
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == s.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split stream collided with parent %d/100 times", same)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(9)
	xs := []int{1, 1, 2, 3, 5, 8, 13}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum2 := 0
	for _, x := range xs {
		sum2 += x
	}
	if sum != sum2 {
		t.Fatalf("shuffle changed contents: sum %d -> %d", sum, sum2)
	}
}
