// Package xrand provides a small, deterministic pseudo-random number
// generator used throughout the repository.
//
// Experiments in this project must be reproducible bit-for-bit across Go
// releases and platforms. The standard library's math/rand does not
// guarantee a stable stream across major versions, so we implement
// SplitMix64 (Steele, Lea, Flood — "Fast splittable pseudorandom number
// generators", OOPSLA 2014) which is tiny, fast, and has a fully specified
// output sequence. It is emphatically not cryptographic; it seeds graph
// generators and workload shufflers only.
package xrand

// Rand is a deterministic SplitMix64 generator. The zero value is a valid
// generator seeded with 0; prefer New to make the seed explicit.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed. Two generators with the same
// seed produce identical streams forever.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *Rand) Uint32() uint32 {
	return uint32(r.Uint64() >> 32)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Rejection sampling removes modulo bias, so the distribution is exactly
// uniform for every n.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	un := uint64(n)
	// Largest multiple of n that fits in a uint64.
	limit := (^uint64(0)) - (^uint64(0))%un
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % un)
		}
	}
}

// Int63 returns a uniform non-negative int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a uniformly random permutation of [0, n) as a slice,
// produced by a Fisher–Yates shuffle.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function (Fisher–Yates, back to front).
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct integers drawn uniformly from [0, n) in
// selection order. It panics if k > n or k < 0. For k close to n it
// shuffles; for small k it uses a partial Fisher–Yates over a sparse map
// so the cost is O(k) regardless of n.
func (r *Rand) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("xrand: Sample called with k out of range")
	}
	// Partial Fisher–Yates with a sparse view of the identity array.
	moved := make(map[int]int, 2*k)
	get := func(i int) int {
		if v, ok := moved[i]; ok {
			return v
		}
		return i
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		out[i] = get(j)
		moved[j] = get(i)
	}
	return out
}

// Split returns a new generator whose stream is statistically independent
// of r's future output. It is used to hand sub-generators to parallel
// workers deterministically.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0x517cc1b727220a95)
}
