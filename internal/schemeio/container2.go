package schemeio

// Container format v2 ("RSF2"): the mmap-friendly layout of the scheme
// file container. Where v1 is a stream (uvarint-length-prefixed
// sections, readable only front to back), v2 is a random-access
// structure: a fixed-width section directory up front, every section
// starting on an 8-byte boundary, and a fixed-width per-router payload
// offset index — so a reader can map the file, validate the directory
// and index in O(index) work, and locate any router's serialized span
// without decoding anything before it.
//
//	offset 0   magic "RSF2" (4 bytes)
//	offset 4   u32 section count (always 3)
//	offset 8   3 x 24-byte directory entries, in file order:
//	             u64 offset, u64 length, u32 type, u32 crc32c(section)
//	offset 80  u32 crc32c of bytes [0, 80), u32 zero
//	offset 88  sections: GRAPH, SCHEME, INDEX — each starting at the
//	           next 8-byte boundary after its predecessor, gaps zero,
//	           file ending exactly at the last section's end
//
// GRAPH is the ported graph serialization (graph.WritePorted), SCHEME
// the v1 scheme blob (Encode — wire header + payload, byte-padded),
// and INDEX the random-access metadata: u64 router count n, u64 exact
// payload bit length, then n+1 u64 absolute bit offsets — router x's
// serialized span is bits [offs[x], offs[x+1]) of the SCHEME section
// (Encoded.RouterOffs, persisted).
//
// The layout is canonical: section order, alignment padding and index
// contents are all forced, so for every (graph, scheme) pair there is
// exactly one valid v2 byte string and every accepted file re-encodes
// byte-identically — the same no-aliasing discipline Decode enforces
// on scheme blobs. Integers are fixed-width little-endian; checksums
// are CRC32-Castagnoli.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/coding"
	"repro/internal/graph"
	"repro/internal/routing"
)

// Section types of the v2 directory. Part of the persisted format:
// never renumber, only append.
const (
	secGraph  = 1
	secScheme = 2
	secIndex  = 3
)

// v2Magic opens a v2 container file.
var v2Magic = [4]byte{'R', 'S', 'F', '2'}

// v2DirSize is the byte length of the fixed header + directory: magic,
// section count, three 24-byte entries, directory CRC + zero pad. The
// first section starts here, which is 8-byte aligned by construction.
const v2DirSize = 4 + 4 + 3*24 + 8

// maxV2FileSize bounds a whole v2 container: three cap-checked sections
// plus directory and alignment slack. Like MaxFileSection it exists so
// a crafted header cannot demand an absurd allocation from the
// streaming reader before the first parse error.
const maxV2FileSize = v2DirSize + 3*(MaxFileSection+8)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// align8 rounds up to the next multiple of 8.
func align8(off int64) int64 { return (off + 7) &^ 7 }

// v2Layout is the validated section directory of one container.
type v2Layout struct {
	graphOff, schemeOff, indexOff int64
	graphLen, schemeLen, indexLen int64
	graphCRC, schemeCRC, indexCRC uint32
}

// buildIndexSection serializes the INDEX section for one encoded
// scheme: router count, exact payload bit length, and the n+1 span
// offsets.
func buildIndexSection(enc *Encoded) []byte {
	n := len(enc.RouterBits)
	b := make([]byte, 8*(n+3))
	binary.LittleEndian.PutUint64(b[0:], uint64(n))
	binary.LittleEndian.PutUint64(b[8:], uint64(enc.PayloadBits))
	for i, off := range enc.RouterOffs {
		binary.LittleEndian.PutUint64(b[16+8*i:], uint64(off))
	}
	return b
}

// parseIndexSection validates and decodes an INDEX section against the
// byte length of the SCHEME section it indexes into. Every constraint a
// later lazy reader relies on is enforced here: the declared router
// count respects the wire cap, the payload bit length matches the
// scheme section's padded byte length exactly, and the offsets are
// monotone inside the payload.
func parseIndexSection(b []byte, schemeLen int64) (offs []uint64, payloadBits int, err error) {
	if len(b) < 24 || len(b)%8 != 0 {
		return nil, 0, fmt.Errorf("schemeio: index section of %d bytes is malformed", len(b))
	}
	n := binary.LittleEndian.Uint64(b[0:])
	if n > coding.MaxWireOrder {
		return nil, 0, fmt.Errorf("schemeio: index declares %d routers, exceeding limit %d", n, coding.MaxWireOrder)
	}
	if int64(len(b)) != 8*(int64(n)+3) {
		return nil, 0, fmt.Errorf("schemeio: index section is %d bytes, want %d for %d routers", len(b), 8*(int64(n)+3), n)
	}
	pb := binary.LittleEndian.Uint64(b[8:])
	// The scheme section is the payload zero-padded to a byte boundary,
	// so the bit length pins the byte length exactly — a looser bound
	// would let two files alias one scheme.
	if schemeLen < 1 || pb > uint64(schemeLen)*8 || pb <= uint64(schemeLen-1)*8 {
		return nil, 0, fmt.Errorf("schemeio: payload of %d bits does not fill a %d-byte scheme section", pb, schemeLen)
	}
	offs = make([]uint64, n+1)
	prev := uint64(0)
	for i := range offs {
		offs[i] = binary.LittleEndian.Uint64(b[16+8*i:])
		if offs[i] < prev {
			return nil, 0, fmt.Errorf("schemeio: index offset %d decreases (%d after %d)", i, offs[i], prev)
		}
		prev = offs[i]
	}
	if prev > pb {
		return nil, 0, fmt.Errorf("schemeio: index offset %d lies past payload end %d", prev, pb)
	}
	return offs, int(pb), nil
}

// parseV2Directory validates the fixed header + directory (the first
// v2DirSize bytes) against the total file size. Offsets, order and
// alignment are all forced to the single canonical layout.
func parseV2Directory(hdr []byte, fileSize int64) (v2Layout, error) {
	var l v2Layout
	if len(hdr) < v2DirSize {
		return l, fmt.Errorf("schemeio: v2 container of %d bytes is shorter than its %d-byte directory", len(hdr), v2DirSize)
	}
	if [4]byte(hdr[:4]) != v2Magic {
		return l, fmt.Errorf("schemeio: bad v2 magic %q", hdr[:4])
	}
	if count := binary.LittleEndian.Uint32(hdr[4:]); count != 3 {
		return l, fmt.Errorf("schemeio: v2 directory declares %d sections, want 3", count)
	}
	if got, want := binary.LittleEndian.Uint32(hdr[80:84]), crc32.Checksum(hdr[:80], castagnoli); got != want {
		return l, fmt.Errorf("schemeio: v2 directory checksum %#x, computed %#x", got, want)
	}
	if pad := binary.LittleEndian.Uint32(hdr[84:88]); pad != 0 {
		return l, fmt.Errorf("schemeio: nonzero directory padding %#x", pad)
	}
	type entry struct {
		off, length int64
		typ         uint32
		crc         uint32
	}
	var es [3]entry
	for i := range es {
		e := hdr[8+24*i:]
		off := binary.LittleEndian.Uint64(e[0:])
		length := binary.LittleEndian.Uint64(e[8:])
		if length > MaxFileSection {
			return l, fmt.Errorf("schemeio: section %d of %d bytes exceeds limit %d", i, length, MaxFileSection)
		}
		if off > uint64(maxV2FileSize) {
			return l, fmt.Errorf("schemeio: section %d offset %d is absurd", i, off)
		}
		es[i] = entry{off: int64(off), length: int64(length), typ: binary.LittleEndian.Uint32(e[16:]), crc: binary.LittleEndian.Uint32(e[20:])}
	}
	if es[0].typ != secGraph || es[1].typ != secScheme || es[2].typ != secIndex {
		return l, fmt.Errorf("schemeio: v2 section types %d,%d,%d, want graph,scheme,index", es[0].typ, es[1].typ, es[2].typ)
	}
	// Canonical placement: each section at the first aligned offset
	// after its predecessor, file ending exactly at the last byte.
	if es[0].off != v2DirSize {
		return l, fmt.Errorf("schemeio: graph section at %d, want %d", es[0].off, v2DirSize)
	}
	if want := align8(es[0].off + es[0].length); es[1].off != want {
		return l, fmt.Errorf("schemeio: scheme section at %d, want aligned %d", es[1].off, want)
	}
	if want := align8(es[1].off + es[1].length); es[2].off != want {
		return l, fmt.Errorf("schemeio: index section at %d, want aligned %d", es[2].off, want)
	}
	if end := es[2].off + es[2].length; end != fileSize {
		return l, fmt.Errorf("schemeio: file is %d bytes, sections end at %d", fileSize, end)
	}
	l.graphOff, l.graphLen, l.graphCRC = es[0].off, es[0].length, es[0].crc
	l.schemeOff, l.schemeLen, l.schemeCRC = es[1].off, es[1].length, es[1].crc
	l.indexOff, l.indexLen, l.indexCRC = es[2].off, es[2].length, es[2].crc
	return l, nil
}

// appendV2 assembles the canonical v2 container for one encoded scheme.
func appendV2(gb, sb, ib []byte) ([]byte, error) {
	for what, b := range map[string][]byte{"graph": gb, "scheme": sb, "index": ib} {
		if int64(len(b)) > MaxFileSection {
			return nil, fmt.Errorf("schemeio: %s section of %d bytes exceeds limit %d", what, len(b), MaxFileSection)
		}
	}
	graphOff := int64(v2DirSize)
	schemeOff := align8(graphOff + int64(len(gb)))
	indexOff := align8(schemeOff + int64(len(sb)))
	total := indexOff + int64(len(ib))
	out := make([]byte, total)
	copy(out[:4], v2Magic[:])
	binary.LittleEndian.PutUint32(out[4:], 3)
	writeEntry := func(i int, off int64, b []byte, typ uint32) {
		e := out[8+24*i:]
		binary.LittleEndian.PutUint64(e[0:], uint64(off))
		binary.LittleEndian.PutUint64(e[8:], uint64(len(b)))
		binary.LittleEndian.PutUint32(e[16:], typ)
		binary.LittleEndian.PutUint32(e[20:], crc32.Checksum(b, castagnoli))
		copy(out[off:], b)
	}
	writeEntry(0, graphOff, gb, secGraph)
	writeEntry(1, schemeOff, sb, secScheme)
	writeEntry(2, indexOff, ib, secIndex)
	binary.LittleEndian.PutUint32(out[80:], crc32.Checksum(out[:80], castagnoli))
	return out, nil
}

// WriteFileV2 frames g and s into one v2 container stream — the
// mmap-friendly counterpart of WriteFile.
func WriteFileV2(w io.Writer, g *graph.Graph, s routing.Scheme) error {
	enc, err := Encode(g, s)
	if err != nil {
		return err
	}
	return WriteFileV2Encoded(w, g, enc)
}

// WriteFileV2Encoded is WriteFileV2 for a caller already holding the
// encoded blob, so the scheme is never serialized twice.
func WriteFileV2Encoded(w io.Writer, g *graph.Graph, enc *Encoded) error {
	var gb bytes.Buffer
	if err := g.WritePorted(&gb); err != nil {
		return err
	}
	out, err := appendV2(gb.Bytes(), enc.Bytes, buildIndexSection(enc))
	if err != nil {
		return err
	}
	_, err = w.Write(out)
	return err
}

// decodeContainerV2 is the heap (fully materializing) v2 reader: it
// validates the directory, every checksum, the alignment padding and
// the index, decodes graph and scheme, and finally re-derives the index
// from the decoded scheme — so acceptance proves data is the one
// canonical v2 container of its (graph, scheme) pair, exactly as Decode
// proves it for scheme blobs.
func decodeContainerV2(data []byte) (*graph.Graph, routing.Scheme, error) {
	l, err := parseV2Directory(data, int64(len(data)))
	if err != nil {
		return nil, nil, err
	}
	section := func(off, length int64, crc uint32, what string) ([]byte, error) {
		b := data[off : off+length]
		if got := crc32.Checksum(b, castagnoli); got != crc {
			return nil, fmt.Errorf("schemeio: %s section checksum %#x, computed %#x", what, crc, got)
		}
		return b, nil
	}
	for _, gap := range [][2]int64{
		{l.graphOff + l.graphLen, l.schemeOff},
		{l.schemeOff + l.schemeLen, l.indexOff},
	} {
		for _, b := range data[gap[0]:gap[1]] {
			if b != 0 {
				return nil, nil, fmt.Errorf("schemeio: nonzero alignment padding before section")
			}
		}
	}
	gb, err := section(l.graphOff, l.graphLen, l.graphCRC, "graph")
	if err != nil {
		return nil, nil, err
	}
	g, err := graph.ReadPorted(bytes.NewReader(gb))
	if err != nil {
		return nil, nil, err
	}
	ib, err := section(l.indexOff, l.indexLen, l.indexCRC, "index")
	if err != nil {
		return nil, nil, err
	}
	offs, payloadBits, err := parseIndexSection(ib, l.schemeLen)
	if err != nil {
		return nil, nil, err
	}
	if len(offs) != g.Order()+1 {
		return nil, nil, fmt.Errorf("schemeio: index is for %d routers, graph has order %d", len(offs)-1, g.Order())
	}
	sb, err := section(l.schemeOff, l.schemeLen, l.schemeCRC, "scheme")
	if err != nil {
		return nil, nil, err
	}
	s, err := Decode(sb, g)
	if err != nil {
		return nil, nil, err
	}
	// The scheme blob is canonical (Decode's re-encode gate); the index
	// must be the one derived from it, or the container as a whole would
	// alias.
	re, err := Encode(g, s)
	if err != nil {
		return nil, nil, err
	}
	if re.PayloadBits != payloadBits {
		return nil, nil, fmt.Errorf("schemeio: index declares %d payload bits, scheme encodes to %d", payloadBits, re.PayloadBits)
	}
	for i, off := range re.RouterOffs {
		if uint64(off) != offs[i] {
			return nil, nil, fmt.Errorf("schemeio: index offset %d is %d, scheme encodes router span at %d", i, offs[i], off)
		}
	}
	return g, s, nil
}

// readFileV2 slurps and decodes a v2 container from a stream whose
// magic has been peeked (not consumed).
func readFileV2(br *bufio.Reader) (*graph.Graph, routing.Scheme, error) {
	data, err := io.ReadAll(io.LimitReader(br, maxV2FileSize+1))
	if err != nil {
		return nil, nil, fmt.Errorf("schemeio: v2 container: %w", err)
	}
	if int64(len(data)) > maxV2FileSize {
		return nil, nil, fmt.Errorf("schemeio: v2 container exceeds %d bytes", maxV2FileSize)
	}
	return decodeContainerV2(data)
}
