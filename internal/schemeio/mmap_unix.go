//go:build unix

package schemeio

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only, returning the region and an
// unmap function. A zero-length file maps to an empty slice with a
// no-op unmap (mmap(2) rejects length 0).
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
