package schemeio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/coding"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/scheme/ecube"
	"repro/internal/scheme/interval"
	"repro/internal/scheme/kcomplete"
	"repro/internal/scheme/landmark"
	"repro/internal/scheme/table"
	"repro/internal/scheme/tree"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

// testScheme is one (graph, scheme) instance of the codec suite.
type testScheme struct {
	name string
	g    *graph.Graph
	s    routing.Scheme
	kind uint64
}

func testSchemes(t *testing.T) []testScheme {
	t.Helper()
	out := []testScheme{}
	rnd := gen.RandomConnected(40, 0.15, xrand.New(7))
	apsp := shortest.NewAPSP(rnd)
	tb, err := table.New(rnd, apsp, table.MinPort)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, testScheme{"tables", rnd, tb, KindTable})
	w := shortest.RandomWeights(rnd, 9, xrand.New(8))
	wtb, err := table.NewWeighted(rnd, w, nil, table.MinPort)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, testScheme{"tables-weighted", rnd, wtb, KindTable})
	iv, err := interval.New(rnd, apsp, interval.Options{Labels: interval.DFSLabels(rnd), Policy: interval.RunGreedy})
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, testScheme{"interval", rnd, iv, KindInterval})
	lm, err := landmark.New(rnd, apsp, landmark.Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, testScheme{"landmark", rnd, lm, KindLandmark})

	tg := gen.RandomTree(31, xrand.New(9))
	tr, err := tree.New(tg, 0)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, testScheme{"tree", tg, tr, KindTree})

	kg := gen.Complete(9)
	fr, err := kcomplete.NewFriendly(kg)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, testScheme{"kn-friendly", kg, fr, KindKnFriendly})
	ag := gen.Complete(9)
	adv, err := kcomplete.Scramble(ag, xrand.New(10))
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, testScheme{"kn-adversarial", ag, adv, KindKnAdversarial})

	hg := gen.Hypercube(4)
	ec, err := ecube.New(hg, 4)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, testScheme{"ecube", hg, ec, KindECube})
	return out
}

// TestRoundTripStable pins, for every scheme: decode(encode) succeeds,
// the decoded scheme meters identical LocalBits, routes every ordered
// pair onto the identical hop sequence, and re-encodes to the identical
// bytes (deterministic canonical serialization).
func TestRoundTripStable(t *testing.T) {
	for _, ts := range testSchemes(t) {
		t.Run(ts.name, func(t *testing.T) {
			enc, err := Encode(ts.g, ts.s)
			if err != nil {
				t.Fatal(err)
			}
			if enc.Kind != ts.kind {
				t.Fatalf("kind %d, want %d", enc.Kind, ts.kind)
			}
			n := ts.g.Order()
			if len(enc.RouterBits) != n {
				t.Fatalf("RouterBits has %d entries, want %d", len(enc.RouterBits), n)
			}
			sum := 0
			for _, b := range enc.RouterBits {
				if b < 0 {
					t.Fatalf("negative router bits %d", b)
				}
				sum += b
			}
			if sum > enc.PayloadBits || enc.PayloadBits > enc.TotalBits() {
				t.Fatalf("router bits %d > payload %d > total %d", sum, enc.PayloadBits, enc.TotalBits())
			}
			dec, err := Decode(enc.Bytes, ts.g)
			if err != nil {
				t.Fatal(err)
			}
			if dec.Name() != ts.s.Name() {
				t.Fatalf("decoded name %q, want %q", dec.Name(), ts.s.Name())
			}
			for x := 0; x < n; x++ {
				if got, want := dec.LocalBits(graph.NodeID(x)), ts.s.LocalBits(graph.NodeID(x)); got != want {
					t.Fatalf("LocalBits(%d) = %d, want %d", x, got, want)
				}
			}
			for u := 0; u < n; u++ {
				for v := 0; v < n; v++ {
					if u == v {
						continue
					}
					a, err1 := routing.Route(ts.g, ts.s, graph.NodeID(u), graph.NodeID(v), 0)
					b, err2 := routing.Route(ts.g, dec, graph.NodeID(u), graph.NodeID(v), 0)
					if err1 != nil || err2 != nil {
						t.Fatalf("route %d->%d: %v / %v", u, v, err1, err2)
					}
					if len(a) != len(b) {
						t.Fatalf("route %d->%d: %d hops vs %d decoded", u, v, len(a), len(b))
					}
					for i := range a {
						if a[i] != b[i] {
							t.Fatalf("route %d->%d diverges at hop %d", u, v, i)
						}
					}
				}
			}
			re, err := Encode(ts.g, dec)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(re.Bytes, enc.Bytes) {
				t.Fatal("re-encoding the decoded scheme changed the bytes")
			}
		})
	}
}

// TestFileRoundTrip pins the container: WriteFile then ReadFile yields
// a graph with the identical ported serialization and a scheme that
// routes identically (spot-checked; full identity is TestRoundTripStable).
func TestFileRoundTrip(t *testing.T) {
	for _, ts := range testSchemes(t) {
		t.Run(ts.name, func(t *testing.T) {
			var f bytes.Buffer
			if err := WriteFile(&f, ts.g, ts.s); err != nil {
				t.Fatal(err)
			}
			g2, s2, err := ReadFile(bytes.NewReader(f.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			var a, b bytes.Buffer
			if err := ts.g.WritePorted(&a); err != nil {
				t.Fatal(err)
			}
			if err := g2.WritePorted(&b); err != nil {
				t.Fatal(err)
			}
			if a.String() != b.String() {
				t.Fatal("graph did not round-trip through the container")
			}
			n := g2.Order()
			for u := 0; u < n; u++ {
				v := (u + 1) % n
				if u == v {
					continue
				}
				la, err1 := routing.RouteLen(ts.g, ts.s, graph.NodeID(u), graph.NodeID(v), 0)
				lb, err2 := routing.RouteLen(g2, s2, graph.NodeID(u), graph.NodeID(v), 0)
				if err1 != nil || err2 != nil || la != lb {
					t.Fatalf("loaded scheme diverges at %d->%d: %d (%v) vs %d (%v)", u, v, la, err1, lb, err2)
				}
			}
		})
	}
}

// TestDecodeRejects pins the error paths shared by every kind.
func TestDecodeRejects(t *testing.T) {
	ts := testSchemes(t)[0]
	enc, err := Encode(ts.g, ts.s)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong-order graph.
	small := gen.Complete(3)
	if _, err := Decode(enc.Bytes, small); err == nil || !strings.Contains(err.Error(), "order") {
		t.Fatalf("order mismatch: got err %v", err)
	}
	// Unknown kind.
	w := coding.NewBitWriter()
	w.WriteWireHeader(99, ts.g.Order())
	if _, err := Decode(w.Bytes(), ts.g); err == nil || !strings.Contains(err.Error(), "unknown scheme kind") {
		t.Fatalf("unknown kind: got err %v", err)
	}
	// Trailing bytes.
	if _, err := Decode(append(append([]byte{}, enc.Bytes...), 0, 0), ts.g); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing bytes: got err %v", err)
	}
	// Truncation at every byte boundary must error, never panic.
	for cut := 0; cut < len(enc.Bytes); cut++ {
		if _, err := Decode(enc.Bytes[:cut], ts.g); err == nil {
			t.Fatalf("truncated blob (%d bytes) accepted", cut)
		}
	}
	// Nonzero padding bit: a byte-distinct alias of a valid blob must be
	// rejected, keeping "decodes" equivalent to "re-encodes identically".
	if pad := enc.PayloadBits % 8; pad != 0 {
		aliased := append([]byte{}, enc.Bytes...)
		aliased[len(aliased)-1] |= 1 // lowest bit is always padding here
		if _, err := Decode(aliased, ts.g); err == nil || !strings.Contains(err.Error(), "padding") {
			t.Fatalf("nonzero pad bit: got err %v", err)
		}
	} else {
		t.Log("payload is byte-aligned; padding case not exercised by this blob")
	}
	// Version skew.
	skew := coding.NewBitWriter()
	skew.WriteBits(coding.WireMagic, 32)
	skew.WriteUvarint(coding.WireVersion + 1)
	skew.WriteUvarint(KindTable)
	skew.WriteUvarint(uint64(ts.g.Order()))
	if _, err := Decode(skew.Bytes(), ts.g); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version skew: got err %v", err)
	}
}

// TestDecodeRejectsHugeCounts pins the int-wrap hardening: a crafted
// blob whose first payload varint spells 2^63 (negative after a naive
// int() conversion) must be rejected by the count guard, never reach a
// make() panic. The landmark payload opens with its landmark-count
// varint, so splicing the huge varint right after the header hits the
// guard directly.
func TestDecodeRejectsHugeCounts(t *testing.T) {
	var lm testScheme
	for _, ts := range testSchemes(t) {
		if ts.kind == KindLandmark {
			lm = ts
		}
	}
	enc, err := Encode(lm.g, lm.s)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the end of the header (it is byte-aligned: 32 magic bits
	// plus byte-shaped varints).
	r := coding.NewBitReader(enc.Bytes, len(enc.Bytes)*8)
	if _, err := r.ReadWireHeader(); err != nil {
		t.Fatal(err)
	}
	hdrBytes := r.Pos() / 8
	// The original count is a single-byte varint (small landmark sets);
	// replace it with the 10-group varint for 2^63.
	if enc.Bytes[hdrBytes]&0x80 != 0 {
		t.Fatal("test expects a single-byte landmark count")
	}
	huge := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}
	crafted := append(append(append([]byte{}, enc.Bytes[:hdrBytes]...), huge...), enc.Bytes[hdrBytes+1:]...)
	defer func() {
		if rec := recover(); rec != nil {
			t.Fatalf("crafted huge-count blob panicked the decoder: %v", rec)
		}
	}()
	if _, err := Decode(crafted, lm.g); err == nil {
		t.Fatal("crafted huge-count blob was accepted")
	}
}

// TestEncodeUnknownScheme pins the encoder's error for schemes without
// a codec.
func TestEncodeUnknownScheme(t *testing.T) {
	if _, err := Encode(gen.Petersen(), unknownScheme{}); err == nil || !strings.Contains(err.Error(), "no codec") {
		t.Fatalf("got err %v", err)
	}
}

type unknownScheme struct{}

func (unknownScheme) Init(src, dst graph.NodeID) routing.Header            { return nil }
func (unknownScheme) Port(x graph.NodeID, h routing.Header) graph.Port     { return graph.NoPort }
func (unknownScheme) Next(x graph.NodeID, h routing.Header) routing.Header { return h }
func (unknownScheme) LocalBits(x graph.NodeID) int                         { return 0 }
func (unknownScheme) Name() string                                         { return "unknown" }

// TestFileRejects pins the container's hardening: bad magic, oversized
// sections and truncation all error.
func TestFileRejects(t *testing.T) {
	ts := testSchemes(t)[0]
	var f bytes.Buffer
	if err := WriteFile(&f, ts.g, ts.s); err != nil {
		t.Fatal(err)
	}
	data := f.Bytes()
	if _, _, err := ReadFile(bytes.NewReader([]byte("XXXX"))); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: got err %v", err)
	}
	// A section length over the cap must be rejected before allocating.
	huge := append([]byte{}, fileMagic[:]...)
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f) // uvarint far over MaxFileSection
	if _, _, err := ReadFile(bytes.NewReader(huge)); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized section: got err %v", err)
	}
	for cut := 0; cut < len(data); cut += 7 {
		if _, _, err := ReadFile(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncated file (%d bytes) accepted", cut)
		}
	}
}
