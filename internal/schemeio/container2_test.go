package schemeio

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/routing"
)

// writeV2 encodes one test scheme into a v2 container image.
func writeV2(t *testing.T, ts testScheme) []byte {
	t.Helper()
	var f bytes.Buffer
	if err := WriteFileV2(&f, ts.g, ts.s); err != nil {
		t.Fatal(err)
	}
	return f.Bytes()
}

// assertSameRoutes drives both schemes over every ordered pair and
// requires identical hop sequences — route-level bit-identity.
func assertSameRoutes(t *testing.T, g *graph.Graph, want, got routing.Scheme) {
	t.Helper()
	n := g.Order()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			a, err1 := routing.Route(g, want, graph.NodeID(u), graph.NodeID(v), 0)
			b, err2 := routing.Route(g, got, graph.NodeID(u), graph.NodeID(v), 0)
			if err1 != nil || err2 != nil {
				t.Fatalf("route %d->%d: %v / %v", u, v, err1, err2)
			}
			if len(a) != len(b) {
				t.Fatalf("route %d->%d: %d hops vs %d", u, v, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("route %d->%d diverges at hop %d", u, v, i)
				}
			}
		}
	}
}

// TestFileV2RoundTrip pins the heap path of the v2 container for every
// scheme kind: ReadFile dispatches on the magic, returns an
// identically-routing scheme, and re-framing what was loaded
// reproduces the accepted file byte-for-byte (the container-level
// canonicality claim).
func TestFileV2RoundTrip(t *testing.T) {
	for _, ts := range testSchemes(t) {
		t.Run(ts.name, func(t *testing.T) {
			data := writeV2(t, ts)
			g2, s2, err := ReadFile(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			var a, b bytes.Buffer
			if err := ts.g.WritePorted(&a); err != nil {
				t.Fatal(err)
			}
			if err := g2.WritePorted(&b); err != nil {
				t.Fatal(err)
			}
			if a.String() != b.String() {
				t.Fatal("graph did not round-trip through the v2 container")
			}
			assertSameRoutes(t, ts.g, ts.s, s2)
			var re bytes.Buffer
			if err := WriteFileV2(&re, g2, s2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(re.Bytes(), data) {
				t.Fatal("accepted v2 file does not re-encode byte-identically")
			}
		})
	}
}

// TestMappedRoundTrip pins the lazy path: MapBytes verifies, routes
// identically to the source scheme, and meters identical LocalBits —
// for every kind, so both the striped table reader and the
// whole-payload wrapper are covered.
func TestMappedRoundTrip(t *testing.T) {
	for _, ts := range testSchemes(t) {
		t.Run(ts.name, func(t *testing.T) {
			m, err := MapBytes(writeV2(t, ts))
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			if m.Kind() != ts.kind {
				t.Fatalf("kind %d, want %d", m.Kind(), ts.kind)
			}
			if err := m.Verify(); err != nil {
				t.Fatal(err)
			}
			s := m.Scheme()
			if s.Name() != ts.s.Name() {
				t.Fatalf("mapped name %q, want %q", s.Name(), ts.s.Name())
			}
			for x := 0; x < ts.g.Order(); x++ {
				if got, want := s.LocalBits(graph.NodeID(x)), ts.s.LocalBits(graph.NodeID(x)); got != want {
					t.Fatalf("LocalBits(%d) = %d, want %d", x, got, want)
				}
			}
			assertSameRoutes(t, m.Graph(), ts.s, s)
		})
	}
}

// TestOpenMappedBackings pins OpenMapped against a real file, through
// both the mmap backing and the pread fallback, including Close.
func TestOpenMappedBackings(t *testing.T) {
	ts := testSchemes(t)[0]
	path := filepath.Join(t.TempDir(), "scheme.rsf2")
	if err := os.WriteFile(path, writeV2(t, ts), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, opt := range []MapOptions{{}, {DisableMmap: true}} {
		m, err := OpenMappedWith(path, opt)
		if err != nil {
			t.Fatalf("DisableMmap=%v: %v", opt.DisableMmap, err)
		}
		if err := m.Verify(); err != nil {
			t.Fatalf("DisableMmap=%v: %v", opt.DisableMmap, err)
		}
		assertSameRoutes(t, m.Graph(), ts.s, m.Scheme())
		if err := m.Close(); err != nil {
			t.Fatalf("DisableMmap=%v: close: %v", opt.DisableMmap, err)
		}
	}
	// A v1 file must be refused by the mapped opener with a pointed
	// error, not misparsed.
	v1 := filepath.Join(t.TempDir(), "scheme.rsf1")
	var buf bytes.Buffer
	if err := WriteFile(&buf, ts.g, ts.s); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(v1, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMapped(v1); err == nil || !strings.Contains(err.Error(), "memory-mapped") {
		t.Fatalf("v1 via OpenMapped: got err %v", err)
	}
}

// refreshCRCs recomputes every checksum of a v2 image in place —
// section CRCs from the (unvalidated) directory offsets, then the
// directory CRC — so structural corruption tests reach the layout and
// index checks behind the checksums.
func refreshCRCs(data []byte) {
	for i := 0; i < 3; i++ {
		e := data[8+24*i:]
		off := binary.LittleEndian.Uint64(e[0:])
		length := binary.LittleEndian.Uint64(e[8:])
		if off+length <= uint64(len(data)) {
			binary.LittleEndian.PutUint32(e[20:], crc32.Checksum(data[off:off+length], castagnoli))
		}
	}
	binary.LittleEndian.PutUint32(data[80:], crc32.Checksum(data[:80], castagnoli))
}

// TestFileV2Rejects drives the structural error paths: truncation at
// every stride, every single-byte corruption (the checksums make the
// canonical image the unique accepted spelling), and post-checksum
// layout violations — misaligned sections, bad section count, index
// offsets out of bounds or merely non-canonical.
func TestFileV2Rejects(t *testing.T) {
	ts := testSchemes(t)[0]
	data := writeV2(t, ts)

	for cut := 0; cut < len(data); cut += 5 {
		if _, _, err := ReadFile(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncated v2 file (%d bytes) accepted", cut)
		}
	}
	for i := range data {
		bad := append([]byte{}, data...)
		bad[i] ^= 0x41
		if _, _, err := ReadFile(bytes.NewReader(bad)); err == nil {
			t.Fatalf("single-byte corruption at %d accepted by ReadFile", i)
		}
		m, err := MapBytes(bad)
		if err != nil {
			continue
		}
		verr := m.Verify()
		m.Close()
		if verr == nil {
			t.Fatalf("single-byte corruption at %d accepted by the mapped reader", i)
		}
	}

	mutate := func(name, wantErr string, fn func(b []byte)) {
		bad := append([]byte{}, data...)
		fn(bad)
		refreshCRCs(bad)
		if _, _, err := ReadFile(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), wantErr) {
			t.Fatalf("%s: ReadFile err %v, want %q", name, err, wantErr)
		}
		if m, err := MapBytes(bad); err == nil {
			verr := m.Verify()
			m.Close()
			if verr == nil {
				t.Fatalf("%s: accepted by the mapped reader", name)
			}
		}
	}
	mutate("section count", "sections, want 3", func(b []byte) {
		binary.LittleEndian.PutUint32(b[4:], 4)
	})
	mutate("misaligned scheme section", "want aligned", func(b []byte) {
		e := b[8+24:]
		binary.LittleEndian.PutUint64(e[0:], binary.LittleEndian.Uint64(e[0:])+1)
	})
	mutate("graph section displaced", "graph section at", func(b []byte) {
		binary.LittleEndian.PutUint64(b[8:], v2DirSize+8)
	})
	mutate("file length mismatch", "sections end at", func(b []byte) {
		e := b[8+48:]
		binary.LittleEndian.PutUint64(e[8:], binary.LittleEndian.Uint64(e[8:])-8)
	})
	mutate("index offset past payload", "past payload end", func(b []byte) {
		e := b[8+48:]
		ioff := binary.LittleEndian.Uint64(e[0:])
		ilen := binary.LittleEndian.Uint64(e[8:])
		last := ioff + ilen - 8
		binary.LittleEndian.PutUint64(b[last:], binary.LittleEndian.Uint64(b[last:])+1<<40)
	})
	mutate("index offset decreasing", "decreases", func(b []byte) {
		ioff := binary.LittleEndian.Uint64(b[8+48:])
		binary.LittleEndian.PutUint64(b[ioff+16:], ^uint64(0)>>1)
	})
	// A monotone but wrong index must still be rejected: the heap path
	// re-derives the index from the decoded scheme, the mapped path
	// fails the span's exact-consumption/canonicality checks.
	mutate("index offset skewed", "", func(b []byte) {
		ioff := binary.LittleEndian.Uint64(b[8+48:])
		second := b[ioff+24:]
		binary.LittleEndian.PutUint64(second, binary.LittleEndian.Uint64(second)+1)
	})
}
