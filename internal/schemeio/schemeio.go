// Package schemeio is the persistence boundary for routing schemes: it
// binds the versioned wire format of internal/coding (self-describing
// header: magic, version, scheme kind, graph order) to the per-scheme
// payload codecs in internal/scheme/*/codec.go, and frames scheme +
// graph together into a single loadable file.
//
// The contracts every codec upholds (and the fuzz/conformance suites
// pin):
//
//   - round trip: Decode(Encode(g, s).Bytes, g) routes bit-identically
//     to s — identical evaluation reports, identical LocalBits — and
//     re-encodes to the identical bytes. Decode enforces the converse
//     too: it re-encodes what it parsed and rejects any input that is
//     not the canonical encoding of its scheme, so no two byte strings
//     ever alias one scheme;
//   - hardening: malformed, truncated or version-skewed bytes return
//     errors, never panic; every allocation is sized by the graph the
//     caller supplies (plus the coding.MaxWireOrder header cap), never
//     by attacker-controlled counts alone;
//   - read-only after decode: a decoded scheme precomputes all state in
//     Decode and only reads it afterwards, so any number of goroutines
//     may route through it concurrently (the contract internal/serve
//     builds on).
//
// Per-router accounting: Encode reports, next to the blob, the payload
// bits attributable to each router (RouterBits). For the table scheme
// these equal LocalBits exactly; for every scheme they stay within the
// documented factor-2-plus-slack corridor of LocalBits that the
// conformance suite asserts — the cross-check that keeps the
// Kolmogorov stand-in and the real encoding from silently diverging.
package schemeio

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/coding"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/scheme/ecube"
	"repro/internal/scheme/interval"
	"repro/internal/scheme/kcomplete"
	"repro/internal/scheme/landmark"
	"repro/internal/scheme/table"
	"repro/internal/scheme/tree"
)

// Scheme kinds, as carried in the wire header. Values are part of the
// persisted format: never renumber, only append.
const (
	KindTable         = 1 // *table.Scheme (hop or weighted build — the wire stores ports)
	KindInterval      = 2 // *interval.Scheme
	KindTree          = 3 // *tree.Scheme
	KindLandmark      = 4 // *landmark.Scheme
	KindKnFriendly    = 5 // *kcomplete.Friendly
	KindKnAdversarial = 6 // *kcomplete.Adversarial
	KindECube         = 7 // *ecube.Scheme
	KindDelta         = 8 // *Delta — a generation patch, not a standalone scheme (delta.go)
)

// KindName names a kind for reports and errors.
func KindName(kind uint64) string {
	switch kind {
	case KindTable:
		return "table"
	case KindInterval:
		return "interval"
	case KindTree:
		return "tree"
	case KindLandmark:
		return "landmark"
	case KindKnFriendly:
		return "kn-friendly"
	case KindKnAdversarial:
		return "kn-adversarial"
	case KindECube:
		return "ecube"
	case KindDelta:
		return "delta"
	default:
		return fmt.Sprintf("kind-%d", kind)
	}
}

// Encoded is the result of serializing one scheme.
type Encoded struct {
	Bytes []byte // header + payload, zero-padded to a byte boundary
	Kind  uint64
	// RouterBits[x] is the payload bit count attributable to router x
	// (its serialized local state). Shared sections — header, label
	// permutations, landmark sets, address paths — are the remainder
	// TotalBits() - sum(RouterBits).
	RouterBits []int
	// PayloadBits is the exact bit length before byte padding.
	PayloadBits int
	// RouterOffs locates each router's span inside Bytes for random
	// access: router x occupies bits [RouterOffs[x], RouterOffs[x+1])
	// (absolute bit offsets, header included). Every codec writes the
	// per-router sections contiguously in router order, so the n+1
	// offsets are the cumulative sums of RouterBits from the block
	// start. This is what the container v2 index section persists.
	RouterOffs []int
}

// TotalBits returns the full serialized size in bits (8 per byte,
// padding included) — the number E20 reports next to MEM_global.
func (e *Encoded) TotalBits() int { return len(e.Bytes) * 8 }

// MaxRouterBits returns the largest per-router serialized size — the
// wire-side analogue of MEM_local.
func (e *Encoded) MaxRouterBits() int {
	m := 0
	for _, b := range e.RouterBits {
		if b > m {
			m = b
		}
	}
	return m
}

// Encode serializes s, which must be a scheme built on g (the wire
// format stores g's order and the payloads reference its degrees and
// ports; pairing a scheme with a different graph corrupts the blob).
// Schemes without a registered codec return an error.
func Encode(g *graph.Graph, s routing.Scheme) (*Encoded, error) {
	w := coding.NewBitWriter()
	var rb []int
	var routerStart int
	switch t := s.(type) {
	case *table.Scheme:
		w.WriteWireHeader(KindTable, g.Order())
		rb, routerStart = t.EncodePayload(w)
	case *interval.Scheme:
		w.WriteWireHeader(KindInterval, g.Order())
		rb, routerStart = t.EncodePayload(w)
	case *tree.Scheme:
		w.WriteWireHeader(KindTree, g.Order())
		rb, routerStart = t.EncodePayload(w)
	case *landmark.Scheme:
		w.WriteWireHeader(KindLandmark, g.Order())
		rb, routerStart = t.EncodePayload(w)
	case *kcomplete.Friendly:
		w.WriteWireHeader(KindKnFriendly, g.Order())
		rb, routerStart = t.EncodePayload(w)
	case *kcomplete.Adversarial:
		w.WriteWireHeader(KindKnAdversarial, g.Order())
		rb, routerStart = t.EncodePayload(w)
	case *ecube.Scheme:
		w.WriteWireHeader(KindECube, g.Order())
		rb, routerStart = t.EncodePayload(w)
	default:
		return nil, fmt.Errorf("schemeio: no codec for scheme %T (%s)", s, s.Name())
	}
	hdr, err := DecodeHeader(w.Bytes())
	if err != nil {
		return nil, err // unreachable for a just-written header; keep the invariant checked
	}
	offs := make([]int, len(rb)+1)
	offs[0] = routerStart
	for x, b := range rb {
		offs[x+1] = offs[x] + b
	}
	return &Encoded{Bytes: w.Bytes(), Kind: hdr.Kind, RouterBits: rb, PayloadBits: w.Len(), RouterOffs: offs}, nil
}

// DecodeHeader parses just the self-describing header of a serialized
// scheme — what a server consults before committing to a payload parse.
func DecodeHeader(data []byte) (coding.WireHeader, error) {
	return coding.NewBitReader(data, len(data)*8).ReadWireHeader()
}

// Decode parses a serialized scheme against the graph it was built on.
// The header's order must match g; the payload decoder of the header's
// kind validates everything else. The returned scheme routes
// bit-identically to the encoded one and is read-only: safe for any
// number of concurrent readers.
func Decode(data []byte, g *graph.Graph) (routing.Scheme, error) {
	r := coding.NewBitReader(data, len(data)*8)
	hdr, err := r.ReadWireHeader()
	if err != nil {
		return nil, err
	}
	if hdr.Order != g.Order() {
		return nil, fmt.Errorf("schemeio: blob is for order %d, graph has order %d", hdr.Order, g.Order())
	}
	var s routing.Scheme
	switch hdr.Kind {
	case KindTable:
		s, err = table.DecodePayload(r, g)
	case KindInterval:
		s, err = interval.DecodePayload(r, g)
	case KindTree:
		s, err = tree.DecodePayload(r, g)
	case KindLandmark:
		s, err = landmark.DecodePayload(r, g)
	case KindKnFriendly:
		s, err = kcomplete.DecodeFriendlyPayload(r, g)
	case KindKnAdversarial:
		s, err = kcomplete.DecodeAdversarialPayload(r, g)
	case KindECube:
		s, err = ecube.DecodePayload(r, g)
	case KindDelta:
		return nil, fmt.Errorf("schemeio: kind delta is a generation patch, not a standalone scheme (use DecodeDelta)")
	default:
		return nil, fmt.Errorf("schemeio: unknown scheme kind %d", hdr.Kind)
	}
	if err != nil {
		return nil, err
	}
	if r.Remaining() >= 8 {
		return nil, fmt.Errorf("schemeio: %d trailing bytes after payload", r.Remaining()/8)
	}
	// The sub-byte tail must be the encoder's zero padding: accepting a
	// set pad bit would let two distinct byte strings alias one scheme,
	// breaking "decodes successfully == re-encodes byte-identically".
	for r.Remaining() > 0 {
		b, err := r.ReadBit()
		if err != nil {
			return nil, err
		}
		if b != 0 {
			return nil, fmt.Errorf("schemeio: nonzero padding bit after payload")
		}
	}
	// Canonicality gate: re-encode the decoded scheme and require the
	// input bytes back. This closes every alternative-spelling hole at
	// once — a table row flagged raw where RLE is shorter, interval
	// runs split at same-port boundaries, labels left uncovered — so
	// acceptance PROVES the blob is the one canonical encoding of its
	// scheme, instead of each payload decoder chasing spellings
	// individually. Costs one Encode per Decode, trivial for the
	// load-once serve-many lifecycle this package exists for.
	re, err := Encode(g, s)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(re.Bytes, data) {
		return nil, fmt.Errorf("schemeio: blob is not the canonical encoding of its scheme")
	}
	return s, nil
}

// fileMagic opens the scheme-file container: a ported graph dump plus a
// scheme blob, each length-prefixed, so one file round-trips everything
// a server needs (the exact port labeling included — adversarial
// labelings are payload here, not noise).
var fileMagic = [4]byte{'R', 'S', 'F', '1'}

// MaxFileSection caps each length-prefixed section of a scheme file.
// Both lengths are attacker-controlled; without the cap a 16-byte file
// could demand a multi-gigabyte allocation before the first parse error.
const MaxFileSection = 1 << 28

// WriteFile frames g (ported serialization, exact labeling) and s
// (Encode) into one stream.
func WriteFile(w io.Writer, g *graph.Graph, s routing.Scheme) error {
	enc, err := Encode(g, s)
	if err != nil {
		return err
	}
	return WriteFileEncoded(w, g, enc)
}

// WriteFileEncoded is WriteFile for a caller that already holds the
// encoded blob (routeserve encodes once for its size report and saves
// the same bytes), so the scheme is never serialized twice.
func WriteFileEncoded(w io.Writer, g *graph.Graph, enc *Encoded) error {
	var gb bytes.Buffer
	if err := g.WritePorted(&gb); err != nil {
		return err
	}
	if _, err := w.Write(fileMagic[:]); err != nil {
		return err
	}
	var lenBuf [binary.MaxVarintLen64]byte
	for _, section := range [][]byte{gb.Bytes(), enc.Bytes} {
		k := binary.PutUvarint(lenBuf[:], uint64(len(section)))
		if _, err := w.Write(lenBuf[:k]); err != nil {
			return err
		}
		if _, err := w.Write(section); err != nil {
			return err
		}
	}
	return nil
}

// ReadFile parses a stream written by WriteFile or WriteFileV2,
// returning the graph and the decoded scheme bound to it. The container
// version is dispatched explicitly on the magic — "RSF1" takes the v1
// streaming path, "RSF2" the v2 sectioned path, anything else is an
// error (version skew never degrades into a misparse). Malformed files
// error without panicking or allocating beyond the per-section caps.
func ReadFile(r io.Reader) (*graph.Graph, routing.Scheme, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(4)
	if err != nil {
		return nil, nil, fmt.Errorf("schemeio: file magic: %w", err)
	}
	switch {
	case [4]byte(magic) == fileMagic:
		return readFileV1(br)
	case [4]byte(magic) == v2Magic:
		return readFileV2(br)
	default:
		return nil, nil, fmt.Errorf("schemeio: bad file magic %q", magic)
	}
}

// readFileV1 parses the v1 streaming container (magic still unread).
func readFileV1(br *bufio.Reader) (*graph.Graph, routing.Scheme, error) {
	if _, err := br.Discard(4); err != nil {
		return nil, nil, err
	}
	readSection := func(what string) ([]byte, error) {
		length, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("schemeio: %s length: %w", what, err)
		}
		if length > MaxFileSection {
			return nil, fmt.Errorf("schemeio: %s section of %d bytes exceeds limit %d", what, length, MaxFileSection)
		}
		buf := make([]byte, length)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("schemeio: %s section: %w", what, err)
		}
		return buf, nil
	}
	gb, err := readSection("graph")
	if err != nil {
		return nil, nil, err
	}
	g, err := graph.ReadPorted(bytes.NewReader(gb))
	if err != nil {
		return nil, nil, err
	}
	sb, err := readSection("scheme")
	if err != nil {
		return nil, nil, err
	}
	s, err := Decode(sb, g)
	if err != nil {
		return nil, nil, err
	}
	return g, s, nil
}
