//go:build !unix

package schemeio

import (
	"fmt"
	"os"
)

// mmapFile on platforms without a usable mmap always errors, so
// OpenMapped falls through to the pread backing — same interface, same
// validation, just copying views instead of aliasing the page cache.
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	return nil, nil, fmt.Errorf("schemeio: memory mapping unsupported on this platform")
}
