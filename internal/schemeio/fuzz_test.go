// Fuzzing for the scheme persistence boundary — the same absolute
// contract FuzzReadFrom established for graph serialization: malformed,
// truncated or version-skewed bytes must return errors, never panic,
// and never allocate beyond what the fixed target graph (plus the
// coding.MaxWireOrder header cap) justifies. One fuzzer per scheme
// decoder, each seeded with valid encodings of its kind plus mutated
// shapes, and one fuzzer for the self-describing header alone.
//
// Anything that decodes successfully must also be routable without
// panicking (it may misroute — routing.RouteLen reports that as an
// error — but it must never index out of bounds), and must re-encode
// without panicking.
package schemeio

import (
	"bytes"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/scheme/ecube"
	"repro/internal/scheme/interval"
	"repro/internal/scheme/kcomplete"
	"repro/internal/scheme/landmark"
	"repro/internal/scheme/table"
	"repro/internal/scheme/tree"
	"repro/internal/xrand"
)

// fuzzGraph is the fixed decode target of the general-scheme fuzzers: a
// small random connected graph, the same for every run so the corpus
// stays meaningful.
func fuzzGraph() *graph.Graph { return gen.RandomConnected(24, 0.2, xrand.New(5)) }

// addMutations seeds truncations, bit flips and a growing tail of one
// valid encoding — the malformed shapes every decoder must reject
// gracefully.
func addMutations(f *testing.F, valid []byte) {
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte{}, valid...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	f.Add(append(append([]byte{}, valid...), 0xff, 0x01))
}

// checkDecoded drives a successfully decoded scheme through a few
// routes and a re-encode; neither may panic, and the re-encode must
// reproduce the accepted bytes exactly — Decode's canonicality gate
// means acceptance IS a claim of byte-identity, so the fuzzers police
// it on every accepted input.
func checkDecoded(t *testing.T, g *graph.Graph, s routing.Scheme, accepted []byte) {
	t.Helper()
	n := g.Order()
	for u := 0; u < n && u < 4; u++ {
		_, _ = routing.RouteLen(g, s, graph.NodeID(u), graph.NodeID((u+n/2)%n), 2*n)
	}
	re, err := Encode(g, s)
	if err != nil {
		t.Fatalf("decoded scheme does not re-encode: %v", err)
	}
	if !bytes.Equal(re.Bytes, accepted) {
		t.Fatal("accepted blob is not the canonical encoding of its scheme")
	}
}

func fuzzDecode(f *testing.F, g *graph.Graph, valid []byte) {
	addMutations(f, valid)
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data, g)
		if err != nil {
			return // rejection is the expected outcome for junk
		}
		checkDecoded(t, g, s, data)
	})
}

func FuzzDecodeTable(f *testing.F) {
	g := fuzzGraph()
	s, err := table.New(g, nil, table.MinPort)
	if err != nil {
		f.Fatal(err)
	}
	enc, err := Encode(g, s)
	if err != nil {
		f.Fatal(err)
	}
	fuzzDecode(f, g, enc.Bytes)
}

func FuzzDecodeInterval(f *testing.F) {
	g := fuzzGraph()
	s, err := interval.New(g, nil, interval.Options{Labels: interval.DFSLabels(g), Policy: interval.RunGreedy})
	if err != nil {
		f.Fatal(err)
	}
	enc, err := Encode(g, s)
	if err != nil {
		f.Fatal(err)
	}
	fuzzDecode(f, g, enc.Bytes)
}

func FuzzDecodeTree(f *testing.F) {
	g := gen.RandomTree(25, xrand.New(6))
	s, err := tree.New(g, 0)
	if err != nil {
		f.Fatal(err)
	}
	enc, err := Encode(g, s)
	if err != nil {
		f.Fatal(err)
	}
	fuzzDecode(f, g, enc.Bytes)
}

func FuzzDecodeLandmark(f *testing.F) {
	g := fuzzGraph()
	s, err := landmark.New(g, nil, landmark.Options{Seed: 17})
	if err != nil {
		f.Fatal(err)
	}
	enc, err := Encode(g, s)
	if err != nil {
		f.Fatal(err)
	}
	fuzzDecode(f, g, enc.Bytes)
}

func FuzzDecodeKComplete(f *testing.F) {
	g := gen.Complete(8)
	fr, err := kcomplete.NewFriendly(g)
	if err != nil {
		f.Fatal(err)
	}
	encF, err := Encode(g, fr)
	if err != nil {
		f.Fatal(err)
	}
	adv, err := kcomplete.Scramble(g, xrand.New(11))
	if err != nil {
		f.Fatal(err)
	}
	encA, err := Encode(g, adv)
	if err != nil {
		f.Fatal(err)
	}
	addMutations(f, encA.Bytes)
	addMutations(f, encF.Bytes)
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data, g)
		if err != nil {
			return
		}
		checkDecoded(t, g, s, data)
	})
}

func FuzzDecodeECube(f *testing.F) {
	g := gen.Hypercube(3)
	s, err := ecube.New(g, 3)
	if err != nil {
		f.Fatal(err)
	}
	enc, err := Encode(g, s)
	if err != nil {
		f.Fatal(err)
	}
	fuzzDecode(f, g, enc.Bytes)
}

// FuzzDecodeHeader exercises the self-describing header parser alone:
// it must classify arbitrary bytes as a valid header or an error
// without panicking, and an accepted order must respect the cap.
func FuzzDecodeHeader(f *testing.F) {
	g := fuzzGraph()
	s, err := table.New(g, nil, table.MinPort)
	if err != nil {
		f.Fatal(err)
	}
	enc, err := Encode(g, s)
	if err != nil {
		f.Fatal(err)
	}
	addMutations(f, enc.Bytes[:8])
	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, err := DecodeHeader(data)
		if err != nil {
			return
		}
		if hdr.Version != 1 {
			t.Fatalf("accepted header with version %d", hdr.Version)
		}
		if hdr.Order < 0 || hdr.Order > 1<<22 {
			t.Fatalf("accepted header with order %d past the cap", hdr.Order)
		}
	})
}

// FuzzReadFile exercises the file container end to end: junk must be
// rejected, and anything accepted must hold a Validate-clean graph and
// a routable scheme. Every input is also pushed through the v2
// streaming reader's dispatch (a v1 seed corpus keeps the v1 branch
// hot; crossover mutates magics freely).
func FuzzReadFile(f *testing.F) {
	g := fuzzGraph()
	s, err := table.New(g, nil, table.MinPort)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFile(&buf, g, s); err != nil {
		f.Fatal(err)
	}
	addMutations(f, buf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		g2, s2, err := ReadFile(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g2.Validate(); err != nil {
			t.Fatalf("accepted file with invalid graph: %v", err)
		}
		// The container's scheme section passed Decode, so it is the
		// canonical encoding of s2 by construction; re-derive it for the
		// byte-identity assertion.
		enc, err := Encode(g2, s2)
		if err != nil {
			t.Fatalf("loaded scheme does not re-encode: %v", err)
		}
		checkDecoded(t, g2, s2, enc.Bytes)
	})
}

// FuzzReadFileMapped holds the mapped reader to the heap reader's
// verdict on arbitrary bytes: both must agree on accept/reject without
// panicking, an accepted image must re-frame byte-identically through
// WriteFileV2, and the mapped scheme must route exactly like the heap
// one. Seeds cover a valid v2 image, its mutations, and a v1 file
// (which the mapped opener must refuse by version dispatch).
func FuzzReadFileMapped(f *testing.F) {
	g := fuzzGraph()
	s, err := table.New(g, nil, table.MinPort)
	if err != nil {
		f.Fatal(err)
	}
	var v2 bytes.Buffer
	if err := WriteFileV2(&v2, g, s); err != nil {
		f.Fatal(err)
	}
	addMutations(f, v2.Bytes())
	var v1 bytes.Buffer
	if err := WriteFile(&v1, g, s); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		hg, hs, herr := ReadFile(bytes.NewReader(data))
		heapOK := herr == nil && len(data) > 0 && data[0] == 'R' && len(data) > 3 && data[3] == '2'
		m, merr := MapBytes(data)
		if merr == nil {
			if verr := m.Verify(); verr != nil {
				m.Close()
				merr = verr
			}
		}
		if heapOK != (merr == nil) {
			t.Fatalf("heap reader err %v, mapped reader err %v", herr, merr)
		}
		if merr != nil {
			return
		}
		defer m.Close()
		var re bytes.Buffer
		if err := WriteFileV2(&re, hg, hs); err != nil {
			t.Fatalf("accepted image does not re-frame: %v", err)
		}
		if !bytes.Equal(re.Bytes(), data) {
			t.Fatal("accepted v2 image is not the canonical container of its scheme")
		}
		n := hg.Order()
		for u := 0; u < n && u < 4; u++ {
			v := graph.NodeID((u + n/2) % n)
			lh, eh := routing.RouteLen(hg, hs, graph.NodeID(u), v, 0)
			lm, em := routing.RouteLen(m.Graph(), m.Scheme(), graph.NodeID(u), v, 0)
			if eh != nil || em != nil || lh != lm {
				t.Fatalf("route %d->%d: heap %d (%v), mapped %d (%v)", u, v, lh, eh, lm, em)
			}
		}
	})
}
