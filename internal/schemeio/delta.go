package schemeio

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/coding"
	"repro/internal/graph"
	"repro/internal/scheme/table"
)

// Delta is a versioned generation patch on the scheme wire envelope —
// the record a fault-repair pipeline ships to serving shards instead of
// a full re-encoded scheme. It names the generation it applies to
// (BaseGen; applying it yields generation BaseGen+1), the edges the
// fault removed, and the replacement table rows the incremental repair
// produced. The port-stability contract of graph.RemoveEdge is what
// makes the record this small: surviving ports keep their labels, so
// unchanged rows stay valid verbatim and only the repaired rows travel.
//
// Wire layout, after the standard WireHeader(KindDelta, order):
//
//	uvarint baseGen
//	uvarint innerKind        (KindTable — the only patchable kind today)
//	uvarint numEdges, then per edge: uvarint u, uvarint v
//	    with u < v and the pairs strictly increasing lexicographically
//	uvarint numRows, then per row: uvarint router (strictly increasing)
//	    followed by the self-delimiting table row code
//
// DecodeDelta enforces the same canonicality gate as Decode: the bytes
// must re-encode to themselves, so no two byte strings alias one patch.
type Delta struct {
	BaseGen uint64            // generation this patch applies to
	Kind    uint64            // inner scheme kind (KindTable)
	Edges   [][2]graph.NodeID // removed edges, u < v, strictly increasing
	Routers []graph.NodeID    // routers with replacement rows, strictly increasing
	Rows    [][]graph.Port    // Rows[i] replaces Routers[i]'s table row
}

// NewGen returns the generation applying the delta produces.
func (d *Delta) NewGen() uint64 { return d.BaseGen + 1 }

// NewDelta assembles the patch record of one repair: the removed edges
// (any order and orientation; they are canonicalized) and the changed
// routers a table Repair reported, with their rows copied out of the
// repaired scheme.
func NewDelta(baseGen uint64, removed [][2]graph.NodeID, repaired *table.Scheme, changed []graph.NodeID) (*Delta, error) {
	d := &Delta{BaseGen: baseGen, Kind: KindTable}
	d.Edges = make([][2]graph.NodeID, len(removed))
	for i, e := range removed {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		if u == v {
			return nil, fmt.Errorf("schemeio: delta edge %d-%d is a self-loop", e[0], e[1])
		}
		d.Edges[i] = [2]graph.NodeID{u, v}
	}
	sort.Slice(d.Edges, func(i, j int) bool {
		if d.Edges[i][0] != d.Edges[j][0] {
			return d.Edges[i][0] < d.Edges[j][0]
		}
		return d.Edges[i][1] < d.Edges[j][1]
	})
	for i := 1; i < len(d.Edges); i++ {
		if d.Edges[i] == d.Edges[i-1] {
			return nil, fmt.Errorf("schemeio: delta removes edge %d-%d twice", d.Edges[i][0], d.Edges[i][1])
		}
	}
	last := graph.NodeID(-1)
	for _, x := range changed {
		if x <= last {
			return nil, fmt.Errorf("schemeio: delta routers not ascending at %d", x)
		}
		last = x
		d.Routers = append(d.Routers, x)
		d.Rows = append(d.Rows, repaired.RowCopy(x))
	}
	return d, nil
}

// EncodeDelta serializes d against the BASE graph (generation BaseGen's
// topology — degrees are port-slot counts, identical before and after
// the removals, so either generation's graph yields the same bytes).
func EncodeDelta(g *graph.Graph, d *Delta) ([]byte, error) {
	n := g.Order()
	if d.Kind != KindTable {
		return nil, fmt.Errorf("schemeio: delta for kind %s not supported (table only)", KindName(d.Kind))
	}
	if len(d.Routers) != len(d.Rows) {
		return nil, fmt.Errorf("schemeio: delta has %d routers but %d rows", len(d.Routers), len(d.Rows))
	}
	w := coding.NewBitWriter()
	w.WriteWireHeader(KindDelta, n)
	w.WriteUvarint(d.BaseGen)
	w.WriteUvarint(d.Kind)
	w.WriteUvarint(uint64(len(d.Edges)))
	prev := [2]graph.NodeID{-1, -1}
	for _, e := range d.Edges {
		u, v := e[0], e[1]
		if u < 0 || u >= v || int(v) >= n {
			return nil, fmt.Errorf("schemeio: delta edge %d-%d not canonical in order %d", u, v, n)
		}
		if u < prev[0] || (u == prev[0] && v <= prev[1]) {
			return nil, fmt.Errorf("schemeio: delta edges not strictly increasing at %d-%d", u, v)
		}
		prev = e
		w.WriteUvarint(uint64(u))
		w.WriteUvarint(uint64(v))
	}
	w.WriteUvarint(uint64(len(d.Routers)))
	last := graph.NodeID(-1)
	for i, x := range d.Routers {
		if x <= last || int(x) >= n {
			return nil, fmt.Errorf("schemeio: delta router %d out of order or range", x)
		}
		last = x
		row := d.Rows[i]
		if len(row) != n {
			return nil, fmt.Errorf("schemeio: delta row of %d has %d entries, want %d", x, len(row), n)
		}
		deg := g.Degree(x)
		for v, p := range row {
			if graph.NodeID(v) == x {
				if p != graph.NoPort {
					return nil, fmt.Errorf("schemeio: delta row of %d stores port %d at itself", x, p)
				}
				continue
			}
			if p < 1 || int(p) > deg {
				return nil, fmt.Errorf("schemeio: delta row of %d has invalid port %d toward %d", x, p, v)
			}
		}
		w.WriteUvarint(uint64(x))
		table.AppendPortRowCode(w, row, x, deg)
	}
	return w.Bytes(), nil
}

// DecodeDelta parses a generation patch against the base graph it was
// encoded for. Malformed bytes error, never panic; every count is
// bounds-checked unsigned before it sizes anything; and the bytes must
// be the canonical encoding of the patch they describe (re-encode
// gate), mirroring Decode's contract.
func DecodeDelta(data []byte, g *graph.Graph) (*Delta, error) {
	n := g.Order()
	r := coding.NewBitReader(data, len(data)*8)
	hdr, err := r.ReadWireHeader()
	if err != nil {
		return nil, err
	}
	if hdr.Kind != KindDelta {
		return nil, fmt.Errorf("schemeio: blob is kind %s, not a delta", KindName(hdr.Kind))
	}
	if hdr.Order != n {
		return nil, fmt.Errorf("schemeio: delta is for order %d, graph has order %d", hdr.Order, n)
	}
	d := &Delta{}
	d.BaseGen, err = r.ReadUvarint()
	if err != nil {
		return nil, err
	}
	d.Kind, err = r.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if d.Kind != KindTable {
		return nil, fmt.Errorf("schemeio: delta for kind %s not supported (table only)", KindName(d.Kind))
	}
	ne, err := r.ReadUvarint()
	if err != nil {
		return nil, err
	}
	// A simple graph of order n has fewer than n² edges; anything larger
	// is garbage sizing an allocation (checked unsigned: a 2^63 count
	// must not wrap past a signed bound).
	if ne > uint64(n)*uint64(n) {
		return nil, fmt.Errorf("schemeio: delta claims %d removed edges on order %d", ne, n)
	}
	d.Edges = make([][2]graph.NodeID, 0, ne)
	prev := [2]graph.NodeID{-1, -1}
	for i := uint64(0); i < ne; i++ {
		u, err := r.ReadUvarint()
		if err != nil {
			return nil, err
		}
		v, err := r.ReadUvarint()
		if err != nil {
			return nil, err
		}
		if u >= v || v >= uint64(n) {
			return nil, fmt.Errorf("schemeio: delta edge %d-%d not canonical in order %d", u, v, n)
		}
		e := [2]graph.NodeID{graph.NodeID(u), graph.NodeID(v)}
		if e[0] < prev[0] || (e[0] == prev[0] && e[1] <= prev[1]) {
			return nil, fmt.Errorf("schemeio: delta edges not strictly increasing at %d-%d", u, v)
		}
		prev = e
		d.Edges = append(d.Edges, e)
	}
	nr, err := r.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if nr > uint64(n) {
		return nil, fmt.Errorf("schemeio: delta claims %d patched rows on order %d", nr, n)
	}
	d.Routers = make([]graph.NodeID, 0, nr)
	d.Rows = make([][]graph.Port, 0, nr)
	lastRow := graph.NodeID(-1)
	for i := uint64(0); i < nr; i++ {
		x, err := r.ReadUvarint()
		if err != nil {
			return nil, err
		}
		if x >= uint64(n) {
			return nil, fmt.Errorf("schemeio: delta router %d outside order %d", x, n)
		}
		xi := graph.NodeID(x)
		if xi <= lastRow {
			return nil, fmt.Errorf("schemeio: delta routers not strictly increasing at %d", x)
		}
		lastRow = xi
		row, err := table.DecodeRowFrom(r, n, xi, g.Degree(xi))
		if err != nil {
			return nil, err
		}
		d.Routers = append(d.Routers, xi)
		d.Rows = append(d.Rows, row)
	}
	if r.Remaining() >= 8 {
		return nil, fmt.Errorf("schemeio: %d trailing bytes after delta", r.Remaining()/8)
	}
	for r.Remaining() > 0 {
		b, err := r.ReadBit()
		if err != nil {
			return nil, err
		}
		if b != 0 {
			return nil, fmt.Errorf("schemeio: nonzero padding bit after delta")
		}
	}
	// Canonicality gate, same contract as Decode: accepting a
	// non-canonical spelling would let two byte strings alias one patch.
	re, err := EncodeDelta(g, d)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(re, data) {
		return nil, fmt.Errorf("schemeio: blob is not the canonical encoding of its delta")
	}
	return d, nil
}

// ApplyDelta replays d on generation BaseGen's pair (g, sch): it clones
// g, removes the delta's edges, and patches the repaired rows in
// copy-on-write (table.Scheme.WithRows — O(changed) new state, shared
// rows elsewhere). g and sch are untouched, so a serving shard keeps
// answering on the old generation while the new one is assembled, then
// hot-swaps (serve.HotServer.Swap).
func ApplyDelta(g *graph.Graph, sch *table.Scheme, d *Delta) (*graph.Graph, *table.Scheme, error) {
	if d.Kind != KindTable {
		return nil, nil, fmt.Errorf("schemeio: delta for kind %s not supported (table only)", KindName(d.Kind))
	}
	h := g.Clone()
	for _, e := range d.Edges {
		if !h.HasEdge(e[0], e[1]) {
			return nil, nil, fmt.Errorf("schemeio: delta removes %d-%d, not an edge of the base graph", e[0], e[1])
		}
		h.RemoveEdge(e[0], e[1])
	}
	h.Freeze()
	ns, err := sch.WithRows(h, d.Routers, d.Rows)
	if err != nil {
		return nil, nil, err
	}
	return h, ns, nil
}
