package schemeio

// Mapped is the zero-copy v2 container reader. Where ReadFile
// materializes everything before returning, OpenMapped does O(index)
// work up front — directory, checksummed graph and index sections, and
// the scheme wire header — and defers the scheme payload entirely: the
// section's checksum is verified and its routers decoded only when the
// first query touches them. Against an mmap backing the payload bytes
// are never copied at all; the lazy readers decode straight out of the
// mapping (page cache), which is what turns scheme load from O(scheme)
// into O(index).

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"os"
	"sync"

	"repro/internal/coding"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/scheme/table"
)

// backing abstracts where container bytes live: an mmap'd region, an
// opened file read via pread, or an in-memory slice (tests, fuzzers).
type backing interface {
	// view returns length bytes at off. Implementations may return a
	// subslice of a shared region; callers must treat it as read-only.
	view(off, length int64) ([]byte, error)
	close() error
}

// byteBacking serves views straight out of one in-memory (or mapped)
// region — zero-copy.
type byteBacking struct {
	data    []byte
	unmap   func() error // nil for plain byte slices
	unmapMu sync.Mutex
}

func (b *byteBacking) view(off, length int64) ([]byte, error) {
	if off < 0 || length < 0 || off+length > int64(len(b.data)) {
		return nil, fmt.Errorf("schemeio: view [%d,%d) outside %d-byte container", off, off+length, len(b.data))
	}
	return b.data[off : off+length], nil
}

func (b *byteBacking) close() error {
	b.unmapMu.Lock()
	defer b.unmapMu.Unlock()
	if b.unmap == nil {
		return nil
	}
	u := b.unmap
	b.unmap = nil
	return u()
}

// fileBacking serves views by pread — the fallback for platforms or
// filesystems where mapping is unavailable or disabled. Each view is a
// fresh copy, so closing the backing never invalidates issued views.
type fileBacking struct {
	f    *os.File
	size int64
}

func (b *fileBacking) view(off, length int64) ([]byte, error) {
	if off < 0 || length < 0 || off+length > b.size {
		return nil, fmt.Errorf("schemeio: view [%d,%d) outside %d-byte container", off, off+length, b.size)
	}
	buf := make([]byte, length)
	if _, err := b.f.ReadAt(buf, off); err != nil {
		return nil, err
	}
	return buf, nil
}

func (b *fileBacking) close() error { return b.f.Close() }

// MapOptions configure OpenMappedWith.
type MapOptions struct {
	// DisableMmap forces the pread fallback even where mapping would
	// work — the -mmap=false path of routeserve, and how tests cover
	// both backings on one platform.
	DisableMmap bool
}

// Mapped is an opened v2 container: graph decoded, index parsed and
// verified, scheme payload left lazy. Scheme() routes identically to
// the heap reader's scheme; corruption inside the payload surfaces as
// per-route errors after Open, or eagerly via Verify.
//
// Close releases the backing. With an mmap backing the payload memory
// is unmapped, so the Mapped and its scheme must not be used after
// Close.
type Mapped struct {
	b backing
	g *graph.Graph
	s routing.Scheme

	kind        uint64
	schemeOff   int64
	schemeLen   int64
	schemeCRC   uint32
	payloadBits int
	offs        []uint64

	payloadOnce sync.Once
	payload     []byte
	payloadErr  error
}

// OpenMapped opens path as a v2 container, mapping it when the
// platform allows and falling back to pread otherwise.
func OpenMapped(path string) (*Mapped, error) {
	return OpenMappedWith(path, MapOptions{})
}

// OpenMappedWith is OpenMapped with explicit options.
func OpenMappedWith(path string, opt MapOptions) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := st.Size()
	if size > maxV2FileSize {
		f.Close()
		return nil, fmt.Errorf("schemeio: container of %d bytes exceeds %d", size, maxV2FileSize)
	}
	var b backing
	if !opt.DisableMmap {
		if data, unmap, merr := mmapFile(f, size); merr == nil {
			f.Close() // the mapping outlives the descriptor
			b = &byteBacking{data: data, unmap: unmap}
		}
	}
	if b == nil {
		b = &fileBacking{f: f, size: size}
	}
	m, err := openMapped(b, size)
	if err != nil {
		b.close()
		return nil, err
	}
	return m, nil
}

// MapBytes opens an in-memory v2 container image — the backing the
// fuzzer and the conformance tests drive, exercising the exact code
// path of OpenMapped without a filesystem.
func MapBytes(data []byte) (*Mapped, error) {
	return openMapped(&byteBacking{data: data}, int64(len(data)))
}

// openMapped does the eager part of an open: directory, padding,
// graph + index sections (checksummed), scheme wire header sanity.
func openMapped(b backing, size int64) (*Mapped, error) {
	hdr, err := b.view(0, v2DirSize)
	if err != nil {
		return nil, fmt.Errorf("schemeio: v2 directory: %w", err)
	}
	if [4]byte(hdr[:4]) == fileMagic {
		return nil, fmt.Errorf("schemeio: v1 container cannot be memory-mapped; re-save as v2 or load without -mmap")
	}
	l, err := parseV2Directory(hdr, size)
	if err != nil {
		return nil, err
	}
	for _, gap := range [][2]int64{
		{l.graphOff + l.graphLen, l.schemeOff},
		{l.schemeOff + l.schemeLen, l.indexOff},
	} {
		pad, err := b.view(gap[0], gap[1]-gap[0])
		if err != nil {
			return nil, err
		}
		for _, c := range pad {
			if c != 0 {
				return nil, fmt.Errorf("schemeio: nonzero alignment padding before section")
			}
		}
	}
	section := func(off, length int64, crc uint32, what string) ([]byte, error) {
		sb, err := b.view(off, length)
		if err != nil {
			return nil, err
		}
		if got := crc32.Checksum(sb, castagnoli); got != crc {
			return nil, fmt.Errorf("schemeio: %s section checksum %#x, computed %#x", what, crc, got)
		}
		return sb, nil
	}
	gb, err := section(l.graphOff, l.graphLen, l.graphCRC, "graph")
	if err != nil {
		return nil, err
	}
	g, err := graph.ReadPorted(bytes.NewReader(gb))
	if err != nil {
		return nil, err
	}
	ib, err := section(l.indexOff, l.indexLen, l.indexCRC, "index")
	if err != nil {
		return nil, err
	}
	offs, payloadBits, err := parseIndexSection(ib, l.schemeLen)
	if err != nil {
		return nil, err
	}
	if len(offs) != g.Order()+1 {
		return nil, fmt.Errorf("schemeio: index is for %d routers, graph has order %d", len(offs)-1, g.Order())
	}
	// Scheme wire header: read just enough bytes to know kind and order
	// before committing to anything payload-sized.
	hlen := l.schemeLen
	if hlen > 32 {
		hlen = 32
	}
	shb, err := b.view(l.schemeOff, hlen)
	if err != nil {
		return nil, err
	}
	wh, err := coding.NewBitReader(shb, len(shb)*8).ReadWireHeader()
	if err != nil {
		return nil, err
	}
	if wh.Order != g.Order() {
		return nil, fmt.Errorf("schemeio: blob is for order %d, graph has order %d", wh.Order, g.Order())
	}
	m := &Mapped{
		b: b, g: g, kind: wh.Kind,
		schemeOff: l.schemeOff, schemeLen: l.schemeLen, schemeCRC: l.schemeCRC,
		payloadBits: payloadBits, offs: offs,
	}
	switch wh.Kind {
	case KindTable:
		// A table payload is wire header + row spans and nothing else, so
		// the index must account for every bit — checked here, while the
		// header bit position is in hand.
		hdrBits := coding.NewBitReader(shb, len(shb)*8)
		if _, err := hdrBits.ReadWireHeader(); err != nil {
			return nil, err
		}
		if offs[0] != uint64(hdrBits.Pos()) || offs[len(offs)-1] != uint64(payloadBits) {
			return nil, fmt.Errorf("schemeio: table index spans [%d,%d) bits, payload is header %d + %d total",
				offs[0], offs[len(offs)-1], hdrBits.Pos(), payloadBits)
		}
		lz, err := table.NewLazy(g, offs, m.payloadBytes)
		if err != nil {
			return nil, err
		}
		m.s = lz
	case KindInterval, KindTree, KindLandmark, KindKnFriendly, KindKnAdversarial, KindECube:
		// Schemes with shared sections (landmark epilogues, label
		// permutations) cannot be row-sliced; they stay whole-payload
		// lazy: nothing decoded until first touch, then one full Decode
		// with its canonicality gate.
		m.s = &lazyWhole{m: m}
	default:
		return nil, fmt.Errorf("schemeio: unknown scheme kind %d", wh.Kind)
	}
	return m, nil
}

// payloadBytes resolves (once) the scheme section: fetch the view and
// verify its checksum and padding bits. This is the deferred cost an
// open skips.
func (m *Mapped) payloadBytes() ([]byte, error) {
	m.payloadOnce.Do(func() {
		sb, err := m.b.view(m.schemeOff, m.schemeLen)
		if err != nil {
			m.payloadErr = err
			return
		}
		if got := crc32.Checksum(sb, castagnoli); got != m.schemeCRC {
			m.payloadErr = fmt.Errorf("schemeio: scheme section checksum %#x, computed %#x", m.schemeCRC, got)
			return
		}
		// Sub-byte tail must be zero padding, as in Decode: without this
		// a mapped table file could alias a heap-rejected one.
		r := coding.NewBitReaderAt(sb, m.payloadBits, len(sb)*8)
		for r.Remaining() > 0 {
			bit, err := r.ReadBit()
			if err != nil {
				m.payloadErr = err
				return
			}
			if bit != 0 {
				m.payloadErr = fmt.Errorf("schemeio: nonzero padding bit after payload")
				return
			}
		}
		m.payload = sb
	})
	return m.payload, m.payloadErr
}

// Graph returns the decoded graph (always materialized at open).
func (m *Mapped) Graph() *graph.Graph { return m.g }

// Scheme returns the lazily-decoding scheme view. It is read-only and
// safe for concurrent routing, like every decoded scheme.
func (m *Mapped) Scheme() routing.Scheme { return m.s }

// Kind returns the scheme kind from the wire header.
func (m *Mapped) Kind() uint64 { return m.kind }

// Verify forces full payload validation now — everything a heap
// ReadFile would have checked — instead of on first touch. The
// conformance and fuzz suites call it to make lazy errors observable.
func (m *Mapped) Verify() error {
	switch s := m.s.(type) {
	case *table.Lazy:
		return s.Preload()
	case *lazyWhole:
		_, err := s.resolve()
		return err
	}
	_, err := m.payloadBytes()
	return err
}

// Close releases the backing. See the type comment for the aliasing
// caveat with mmap backings.
func (m *Mapped) Close() error { return m.b.close() }

// lazyWhole defers a non-table scheme until first touch: one full
// Decode (canonicality gate included) guarded by a sync.Once. A failed
// decode poisons the scheme — every port answer is NoPort, surfacing
// as per-route errors, never a panic.
type lazyWhole struct {
	m    *Mapped
	once sync.Once
	s    routing.Scheme
	err  error
}

func (l *lazyWhole) resolve() (routing.Scheme, error) {
	l.once.Do(func() {
		blob, err := l.m.payloadBytes()
		if err != nil {
			l.err = err
			return
		}
		l.s, l.err = Decode(blob, l.m.g)
	})
	return l.s, l.err
}

func (l *lazyWhole) Name() string {
	if s, err := l.resolve(); err == nil {
		return s.Name()
	}
	return KindName(l.m.kind)
}

func (l *lazyWhole) Init(src, dst graph.NodeID) routing.Header {
	s, err := l.resolve()
	if err != nil {
		return nil
	}
	return s.Init(src, dst)
}

func (l *lazyWhole) Port(x graph.NodeID, h routing.Header) graph.Port {
	s, err := l.resolve()
	if err != nil || h == nil {
		return graph.NoPort
	}
	return s.Port(x, h)
}

func (l *lazyWhole) Next(x graph.NodeID, h routing.Header) routing.Header {
	s, err := l.resolve()
	if err != nil || h == nil {
		return h
	}
	return s.Next(x, h)
}

func (l *lazyWhole) LocalBits(x graph.NodeID) int {
	s, err := l.resolve()
	if err != nil {
		return 0
	}
	return s.LocalBits(x)
}

func (l *lazyWhole) HeaderBits(h routing.Header) int {
	s, err := l.resolve()
	if err != nil {
		return 0
	}
	if hs, ok := s.(routing.HeaderSizer); ok {
		return hs.HeaderBits(h)
	}
	return 0
}

var (
	_ routing.Scheme      = (*lazyWhole)(nil)
	_ routing.HeaderSizer = (*lazyWhole)(nil)
)
