package schemeio

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/evaluate"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/scheme/table"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

// deltaFixture runs one full repair pipeline: build on the base graph,
// inject a connectivity-preserving fault, repair incrementally, and
// return everything a delta needs plus the from-scratch rebuild to
// compare against.
func deltaFixture(t testing.TB) (base *graph.Graph, sch *table.Scheme, d *Delta, faulted *graph.Graph, fresh *table.Scheme) {
	t.Helper()
	base = gen.RandomConnected(32, 0.15, xrand.New(21))
	apsp := shortest.NewAPSP(base)
	sch, err := table.New(base, apsp, table.MinPort)
	if err != nil {
		t.Fatal(err)
	}

	plan, err := faults.NewPlan(base, faults.Options{
		Mode: faults.KillEdges, Count: 3, Seed: 0xde17a, KeepConnected: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Repair on a private clone so base/sch stay generation-g.
	work := base.Clone()
	apspW := shortest.NewAPSP(work)
	repaired, err := table.New(work, apspW, table.MinPort)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range plan.Edges {
		work.RemoveEdge(e[0], e[1])
	}
	work.Freeze()
	dirty := faults.DirtyRoots(apspW, plan.Edges)
	apspW.RefreshRows(work, dirty)
	changed, err := repaired.Repair(apspW, dirty, table.MinPort)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) == 0 {
		t.Fatal("fixture fault changed no rows; pick a different seed")
	}
	d, err = NewDelta(7, plan.Edges, repaired, changed)
	if err != nil {
		t.Fatal(err)
	}

	faulted = base.Clone()
	plan.Apply(faulted)
	fresh, err = table.New(faulted, shortest.NewAPSP(faulted), table.MinPort)
	if err != nil {
		t.Fatal(err)
	}
	return base, sch, d, faulted, fresh
}

// TestDeltaRoundTrip pins encode → decode → re-encode byte identity and
// the field-level round trip.
func TestDeltaRoundTrip(t *testing.T) {
	base, _, d, _, _ := deltaFixture(t)
	enc, err := EncodeDelta(base, d)
	if err != nil {
		t.Fatal(err)
	}
	hdr, err := DecodeHeader(enc)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Kind != KindDelta || hdr.Order != base.Order() {
		t.Fatalf("header {kind %d, order %d}, want {%d, %d}", hdr.Kind, hdr.Order, KindDelta, base.Order())
	}
	got, err := DecodeDelta(enc, base)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("decoded delta differs:\ngot  %+v\nwant %+v", got, d)
	}
	if got.NewGen() != 8 {
		t.Fatalf("NewGen = %d, want 8", got.NewGen())
	}
	re, err := EncodeDelta(base, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, enc) {
		t.Fatal("decoded delta re-encodes to different bytes")
	}
}

// TestDeltaApplyMatchesRebuild pins the serving-side contract: applying
// the decoded delta to the generation-g pair yields a graph and scheme
// that encode and evaluate identically to a from-scratch rebuild on the
// faulted topology — and leaves generation g untouched.
func TestDeltaApplyMatchesRebuild(t *testing.T) {
	base, sch, d, faulted, fresh := deltaFixture(t)
	preEnc, err := Encode(base, sch)
	if err != nil {
		t.Fatal(err)
	}

	enc, err := EncodeDelta(base, d)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeDelta(enc, base)
	if err != nil {
		t.Fatal(err)
	}
	h, patched, err := ApplyDelta(base, sch, dec)
	if err != nil {
		t.Fatal(err)
	}
	if h.Size() != faulted.Size() {
		t.Fatalf("patched graph has %d edges, rebuild has %d", h.Size(), faulted.Size())
	}
	encP, err := Encode(h, patched)
	if err != nil {
		t.Fatal(err)
	}
	encF, err := Encode(faulted, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encP.Bytes, encF.Bytes) {
		t.Fatal("patched scheme encodes differently than the rebuild")
	}
	repP, err := evaluate.Stretch(h, patched, nil, evaluate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	repF, err := evaluate.Stretch(faulted, fresh, nil, evaluate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(repP, repF) {
		t.Fatalf("patched evaluation differs from rebuild:\n%+v\n%+v", repP, repF)
	}

	// Generation g must still encode byte-identically: Apply is
	// copy-on-write, never in-place.
	postEnc, err := Encode(base, sch)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(preEnc.Bytes, postEnc.Bytes) {
		t.Fatal("ApplyDelta mutated the base generation")
	}
}

// TestDeltaRejections pins the structured failure modes.
func TestDeltaRejections(t *testing.T) {
	base, _, d, _, _ := deltaFixture(t)
	enc, err := EncodeDelta(base, d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(enc, base); err == nil || !strings.Contains(err.Error(), "not a standalone scheme") {
		t.Fatalf("Decode of a delta blob: %v, want the not-a-standalone-scheme error", err)
	}
	if _, err := DecodeDelta(enc[:len(enc)/2], base); err == nil {
		t.Fatal("truncated delta decoded")
	}
	small := gen.Cycle(8)
	if _, err := DecodeDelta(enc, small); err == nil {
		t.Fatal("delta decoded against a graph of the wrong order")
	}
	flipped := append([]byte{}, enc...)
	flipped[len(flipped)-1] ^= 0x01 // disturb the padding / last row bits
	if _, err := DecodeDelta(flipped, base); err == nil {
		t.Fatal("bit-flipped delta decoded")
	}
	sch2, err := table.New(base, nil, table.MinPort)
	if err != nil {
		t.Fatal(err)
	}
	bad := &Delta{BaseGen: 1, Kind: KindTable, Edges: [][2]graph.NodeID{{0, graph.NodeID(base.Order() + 3)}}}
	if _, err := EncodeDelta(base, bad); err == nil {
		t.Fatal("out-of-range delta edge encoded")
	}
	badApply := &Delta{BaseGen: 1, Kind: KindTable, Edges: [][2]graph.NodeID{{0, 1}}}
	if !base.HasEdge(0, 1) {
		if _, _, err := ApplyDelta(base, sch2, badApply); err == nil {
			t.Fatal("delta removing a non-edge applied")
		}
	}
	if _, err := NewDelta(1, [][2]graph.NodeID{{2, 2}}, sch2, nil); err == nil {
		t.Fatal("self-loop delta constructed")
	}
}

// FuzzDecodeDelta hardens the delta decode path like every other
// schemeio decoder: junk must error (never panic), and anything
// accepted must be the canonical encoding of its patch.
func FuzzDecodeDelta(f *testing.F) {
	base, _, d, _, _ := deltaFixture(f)
	valid, err := EncodeDelta(base, d)
	if err != nil {
		f.Fatal(err)
	}
	addMutations(f, valid)
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := DecodeDelta(data, base)
		if err != nil {
			return
		}
		re, err := EncodeDelta(base, dec)
		if err != nil {
			t.Fatalf("accepted delta does not re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatal("accepted blob is not the canonical encoding of its delta")
		}
	})
}
