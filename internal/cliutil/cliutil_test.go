package cliutil

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/evaluate"
	"repro/internal/shortest"
)

func TestValidateEvalFlags(t *testing.T) {
	cases := []struct {
		workers, sample int
		wantErr         string
	}{
		{0, 0, ""},
		{8, 100, ""},
		{-1, 0, "-workers"},
		{0, -5, "-sample"},
		{-2, -2, "-workers"}, // first failure wins
	}
	for _, c := range cases {
		err := ValidateEvalFlags(c.workers, c.sample)
		if c.wantErr == "" {
			if err != nil {
				t.Fatalf("ValidateEvalFlags(%d, %d) = %v, want nil", c.workers, c.sample, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Fatalf("ValidateEvalFlags(%d, %d) = %v, want error mentioning %q", c.workers, c.sample, err, c.wantErr)
		}
	}
}

func TestParseEvalFlags(t *testing.T) {
	cases := []struct {
		workers, sample int
		distmode        string
		cacheRows       int
		want            evaluate.DistMode
		wantErr         string
	}{
		{0, 0, "dense", 0, evaluate.DistDense, ""},
		{4, 1000, "stream", 0, evaluate.DistStream, ""},
		{4, 1000, "cache", 128, evaluate.DistCache, ""},
		{0, 0, "", 0, evaluate.DistAuto, ""},
		{-1, 0, "dense", 0, 0, "-workers"},
		{0, -1, "dense", 0, 0, "-sample"},
		{0, 0, "turbo", 0, 0, "distance mode"},
		{0, 0, "dense", -3, 0, "-cacherows"},
		{0, 0, "stream", 64, 0, "-cacherows only applies"},
	}
	for _, c := range cases {
		mode, err := ParseEvalFlags(c.workers, c.sample, c.distmode, c.cacheRows)
		if c.wantErr == "" {
			if err != nil {
				t.Fatalf("ParseEvalFlags(%d,%d,%q,%d) = %v, want nil", c.workers, c.sample, c.distmode, c.cacheRows, err)
			}
			if mode != c.want {
				t.Fatalf("ParseEvalFlags(%d,%d,%q,%d) mode = %v, want %v", c.workers, c.sample, c.distmode, c.cacheRows, mode, c.want)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Fatalf("ParseEvalFlags(%d,%d,%q,%d) err = %v, want error mentioning %q", c.workers, c.sample, c.distmode, c.cacheRows, err, c.wantErr)
		}
	}
}

func TestValidateServeFlags(t *testing.T) {
	cases := []struct {
		batch, benchQueries int
		wantErr             string
	}{
		{1, 0, ""},
		{1024, 100000, ""},
		{0, 0, "-batch"},
		{-8, 0, "-batch"},
		{1024, -1, "-benchqueries"},
	}
	for _, c := range cases {
		err := ValidateServeFlags(c.batch, c.benchQueries)
		if c.wantErr == "" {
			if err != nil {
				t.Fatalf("ValidateServeFlags(%d,%d) = %v, want nil", c.batch, c.benchQueries, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Fatalf("ValidateServeFlags(%d,%d) err = %v, want error mentioning %q", c.batch, c.benchQueries, err, c.wantErr)
		}
	}
}

func TestValidateWeightFlags(t *testing.T) {
	cases := []struct {
		weighted  bool
		maxWeight int
		wantErr   string
	}{
		{false, 0, ""}, // ignored when the metric is hops
		{false, -5, ""},
		{true, 1, ""},
		{true, 1 << 20, ""},
		{true, math.MaxInt32 - 1, ""},
		{true, 0, "-maxweight"},
		{true, -1, "-maxweight"},
		{true, math.MaxInt32, "-maxweight"}, // would wrap in the int32 weight table
	}
	for _, c := range cases {
		err := ValidateWeightFlags(c.weighted, c.maxWeight)
		if c.wantErr == "" {
			if err != nil {
				t.Fatalf("ValidateWeightFlags(%v,%d) = %v, want nil", c.weighted, c.maxWeight, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Fatalf("ValidateWeightFlags(%v,%d) err = %v, want error mentioning %q", c.weighted, c.maxWeight, err, c.wantErr)
		}
	}
}

func TestParseKernelFlag(t *testing.T) {
	cases := []struct {
		kernel   string
		weighted bool
		want     shortest.Kernel
		wantErr  string
	}{
		{"auto", false, shortest.KernelAuto, ""},
		{"", false, shortest.KernelAuto, ""},
		{"scalar", false, shortest.KernelScalar, ""},
		{"batch", false, shortest.KernelBatch, ""},
		{"scalar", true, shortest.KernelScalar, ""}, // weighted runs keep scalar
		{"auto", true, shortest.KernelAuto, ""},
		{"batch", true, shortest.KernelAuto, "-weighted"}, // no Dijkstra batch kernel
		{"simd", false, shortest.KernelAuto, "kernel"},    // unknown: error, no fallback
		{"BATCH", false, shortest.KernelAuto, "kernel"},   // spellings are exact
	}
	for _, c := range cases {
		k, err := ParseKernelFlag(c.kernel, c.weighted)
		if c.wantErr == "" {
			if err != nil || k != c.want {
				t.Fatalf("ParseKernelFlag(%q, %v) = %v, %v; want %v", c.kernel, c.weighted, k, err, c.want)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Fatalf("ParseKernelFlag(%q, %v) = %v, want error mentioning %q", c.kernel, c.weighted, err, c.wantErr)
		}
	}
}

func TestValidateNetFlags(t *testing.T) {
	cases := []struct {
		listen      string
		shards      int
		deadline    time.Duration
		maxInFlight int
		wantErr     string
	}{
		{":9000", 1, time.Second, 64, ""},
		{"127.0.0.1:0", 5, 50 * time.Millisecond, 1, ""},
		{"[::1]:9000", 2, time.Minute, 256, ""},
		{"", 1, time.Second, 64, "-listen"},
		{"localhost", 1, time.Second, 64, "host:port"},
		{":9000", 0, time.Second, 64, "-shards"},
		{":9000", -3, time.Second, 64, "-shards"},
		{":9000", MaxShards + 1, time.Second, 64, "-shards"},
		{":9000", 1, 0, 64, "-deadline"},
		{":9000", 1, -time.Second, 64, "-deadline"},
		{":9000", 1, time.Second, 0, "-maxinflight"},
		{":9000", 1, time.Second, -1, "-maxinflight"},
	}
	for _, c := range cases {
		err := ValidateNetFlags(c.listen, c.shards, c.deadline, c.maxInFlight)
		if c.wantErr == "" {
			if err != nil {
				t.Fatalf("ValidateNetFlags(%q,%d,%v,%d) = %v, want nil", c.listen, c.shards, c.deadline, c.maxInFlight, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Fatalf("ValidateNetFlags(%q,%d,%v,%d) = %v, want error mentioning %q", c.listen, c.shards, c.deadline, c.maxInFlight, err, c.wantErr)
		}
	}
}

func TestValidateLoadgenFlags(t *testing.T) {
	cases := []struct {
		rate     int
		duration time.Duration
		batch    int
		wantErr  string
	}{
		{1000, 10 * time.Second, 64, ""},
		{1, time.Millisecond, 1, ""},
		{0, time.Second, 64, "-rate"},
		{-100, time.Second, 64, "-rate"},
		{1000, 0, 64, "-duration"},
		{1000, -time.Second, 64, "-duration"},
		{1000, 2 * time.Hour, 64, "-duration"},
		{1000, time.Second, 0, "-batch"},
		{1000, time.Second, -8, "-batch"},
	}
	for _, c := range cases {
		err := ValidateLoadgenFlags(c.rate, c.duration, c.batch)
		if c.wantErr == "" {
			if err != nil {
				t.Fatalf("ValidateLoadgenFlags(%d,%v,%d) = %v, want nil", c.rate, c.duration, c.batch, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Fatalf("ValidateLoadgenFlags(%d,%v,%d) = %v, want error mentioning %q", c.rate, c.duration, c.batch, err, c.wantErr)
		}
	}
}

func TestParseIntList(t *testing.T) {
	got, err := ParseIntList("-shards", "1, 2,8")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 8 {
		t.Fatalf("ParseIntList = %v, %v", got, err)
	}
	for _, bad := range []string{"", "1,,2", "a", "1,-2", "0", "1,2,zero"} {
		if _, err := ParseIntList("-clients", bad); err == nil || !strings.Contains(err.Error(), "-clients") {
			t.Fatalf("ParseIntList(%q) = %v, want -clients error", bad, err)
		}
	}
}
