package cliutil

import (
	"fmt"
	"math/bits"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/scheme/ecube"
	"repro/internal/scheme/interval"
	"repro/internal/scheme/landmark"
	"repro/internal/scheme/table"
	"repro/internal/scheme/tree"
	"repro/internal/shortest"
)

// SchemeNames lists the schemes BuildScheme resolves, in the order the
// CLI help texts spell them.
var SchemeNames = []string{"tables", "interval", "landmark", "ecube", "tree"}

// SchemeConfig carries the knobs of one scheme construction.
type SchemeConfig struct {
	// APSP is an optional precomputed dense hop table; nil lets
	// BuildScheme compute one when (and only when) the scheme needs it.
	APSP *shortest.APSP
	// Weights, when non-nil, upgrades the tables scheme to its
	// minimum-cost variant (the E17 object); the other schemes route by
	// their own hop-metric logic regardless.
	Weights shortest.Weights
	// WeightedAPSP is an optional precomputed weighted table for
	// Weights, saving minimum-cost tables a second n² build.
	WeightedAPSP *shortest.APSP
	// Seed drives landmark sampling.
	Seed uint64
	// Streaming marks a -distmode stream|cache run: the dense table is
	// never materialized — landmark builds from streamed BFS rows
	// (bit-identical to the dense build) and the inherently
	// table-backed schemes are an explicit error, never a silent dense
	// fallback.
	Streaming bool
	// Workers sizes landmark.NewStreamed's pool (<= 0: all cores).
	Workers int
}

// BuildScheme is the scheme dispatch shared by the memreq and
// routeserve CLIs — like gen.ByName for families, one switch so a new
// scheme, a changed option or a reworded error reaches every CLI at
// once. It returns, next to the scheme, the dense hop table it used or
// built (nil for table-free schemes and streaming builds), so callers
// can reuse it instead of paying a second n² build.
func BuildScheme(name string, g *graph.Graph, cfg SchemeConfig) (routing.Scheme, *shortest.APSP, error) {
	hopTable := func() *shortest.APSP {
		if cfg.APSP == nil {
			cfg.APSP = shortest.NewAPSP(g)
		}
		return cfg.APSP
	}
	switch name {
	case "tables":
		if cfg.Streaming {
			return nil, nil, fmt.Errorf("scheme tables stores Theta(n^2) state; use -distmode dense (or pick landmark/tree/ecube)")
		}
		if cfg.Weights != nil {
			s, err := table.NewWeighted(g, cfg.Weights, cfg.WeightedAPSP, table.MinPort)
			return s, cfg.APSP, err
		}
		apsp := hopTable()
		s, err := table.New(g, apsp, table.MinPort)
		return s, apsp, err
	case "interval":
		if cfg.Streaming {
			return nil, nil, fmt.Errorf("scheme interval builds from the dense table; use -distmode dense (or pick landmark/tree/ecube)")
		}
		apsp := hopTable()
		s, err := interval.New(g, apsp, interval.Options{Labels: interval.DFSLabels(g), Policy: interval.RunGreedy})
		return s, apsp, err
	case "landmark":
		if cfg.Streaming {
			s, err := landmark.NewStreamed(g, landmark.Options{Seed: cfg.Seed}, cfg.Workers)
			return s, nil, err
		}
		apsp := hopTable()
		s, err := landmark.New(g, apsp, landmark.Options{Seed: cfg.Seed})
		return s, apsp, err
	case "ecube":
		d := bits.Len(uint(g.Order())) - 1
		s, err := ecube.New(g, d)
		return s, cfg.APSP, err
	case "tree":
		s, err := tree.New(g, 0)
		return s, cfg.APSP, err
	default:
		return nil, nil, fmt.Errorf("unknown scheme %q", name)
	}
}
