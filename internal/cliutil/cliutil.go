// Package cliutil holds the flag validation shared by the routelab and
// memreq CLIs, so both reject nonsense evaluation flags with the same
// clear errors instead of silently misbehaving (a negative -sample used
// to mean "exhaustive", a negative -workers fell through to a pool of
// one — both now fail fast), and so the rules are unit-testable without
// spawning a process.
package cliutil

import (
	"fmt"
	"math"
	"net"
	"strconv"
	"strings"
	"time"

	"repro/internal/evaluate"
	"repro/internal/shortest"
)

// ValidateEvalFlags checks the evaluation flags common to routelab and
// memreq. workers == 0 means "all cores" and sample == 0 means
// "exhaustive"; anything negative is an error, not a silent fallback.
func ValidateEvalFlags(workers, sample int) error {
	if workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (0 = all cores), got %d", workers)
	}
	if sample < 0 {
		return fmt.Errorf("-sample must be >= 0 (0 = exhaustive), got %d", sample)
	}
	return nil
}

// ParseEvalFlags validates the common evaluation flags and resolves the
// -distmode string, returning the mode for evaluate.Options.
func ParseEvalFlags(workers, sample int, distmode string, cacheRows int) (evaluate.DistMode, error) {
	if err := ValidateEvalFlags(workers, sample); err != nil {
		return evaluate.DistAuto, err
	}
	if cacheRows < 0 {
		return evaluate.DistAuto, fmt.Errorf("-cacherows must be >= 0 (0 = default), got %d", cacheRows)
	}
	mode, err := evaluate.ParseDistMode(distmode)
	if err != nil {
		return evaluate.DistAuto, err
	}
	if cacheRows > 0 && mode != evaluate.DistCache {
		return evaluate.DistAuto, fmt.Errorf("-cacherows only applies with -distmode cache (got -distmode %s)", mode)
	}
	return mode, nil
}

// ParseKernelFlag resolves the -kernel string for the hop-metric
// distance kernel (scalar BFS vs 64-source MS-BFS batch). A value
// outside the known set {auto, scalar, batch} is an explicit error,
// never a silent fallback — the same policy ParseEvalFlags applies to
// -distmode. batch is a hop-metric kernel (Dijkstra rows share no
// scans), so combining it with -weighted is rejected here, at flag
// time, instead of failing deep inside a run.
func ParseKernelFlag(kernel string, weighted bool) (shortest.Kernel, error) {
	k, err := shortest.ParseKernel(kernel)
	if err != nil {
		return shortest.KernelAuto, err
	}
	if weighted && k == shortest.KernelBatch {
		return shortest.KernelAuto, fmt.Errorf("-kernel batch serves only the hop metric (MS-BFS shares BFS arc scans); drop -weighted or use -kernel auto|scalar")
	}
	return k, nil
}

// ValidateServeFlags checks routeserve's serving flags: the batch size
// must be positive (a batch of zero queries would spin forever making
// no progress) and the bench query count nonnegative. Workers are
// validated by ValidateEvalFlags alongside the shared flags; this
// covers the serving-only ones, with the same fail-fast contract —
// negative values are errors, never silent fallbacks.
func ValidateServeFlags(batch, benchQueries int) error {
	if batch < 1 {
		return fmt.Errorf("-batch must be >= 1, got %d", batch)
	}
	if benchQueries < 0 {
		return fmt.Errorf("-benchqueries must be >= 0 (0 = default), got %d", benchQueries)
	}
	return nil
}

// MaxShards caps -shards: beyond this a "cluster" is a typo, and the
// per-shard listener/goroutine cost would dwarf any real partition of
// a MaxWireOrder-bounded router space.
const MaxShards = 1 << 10

// ValidateNetFlags checks routeserve's network-serving flags. The
// listen address must be host:port shaped (net.SplitHostPort, so ":0"
// and "[::1]:9000" both pass and "localhost" alone fails fast), the
// shard count must be in [1, MaxShards], the per-connection deadline
// positive and the admission cap at least 1 — zero or negative values
// are errors, never silent defaults, the same contract every other
// Validate*Flags here applies. The shards <= n check lives with the
// shard map (the graph order is unknown at flag time).
func ValidateNetFlags(listen string, shards int, deadline time.Duration, maxInFlight int) error {
	if listen == "" {
		return fmt.Errorf("-listen must not be empty")
	}
	if _, _, err := net.SplitHostPort(listen); err != nil {
		return fmt.Errorf("-listen %q is not a host:port address: %w", listen, err)
	}
	if shards < 1 {
		return fmt.Errorf("-shards must be >= 1, got %d", shards)
	}
	if shards > MaxShards {
		return fmt.Errorf("-shards must be <= %d, got %d", MaxShards, shards)
	}
	if deadline <= 0 {
		return fmt.Errorf("-deadline must be positive, got %v", deadline)
	}
	if maxInFlight < 1 {
		return fmt.Errorf("-maxinflight must be >= 1, got %d", maxInFlight)
	}
	return nil
}

// ValidateLoadgenFlags checks loadgen's open-loop knobs: a positive
// arrival rate, a positive bounded duration and a positive batch size.
// A zero rate would schedule no arrivals and a negative one is
// nonsense; both fail fast instead of producing an empty BENCH file.
func ValidateLoadgenFlags(rate int, duration time.Duration, batch int) error {
	if rate < 1 {
		return fmt.Errorf("-rate must be >= 1 query/s, got %d", rate)
	}
	if duration <= 0 {
		return fmt.Errorf("-duration must be positive, got %v", duration)
	}
	if duration > time.Hour {
		return fmt.Errorf("-duration must be <= 1h (open-loop latencies are recorded in memory), got %v", duration)
	}
	if batch < 1 {
		return fmt.Errorf("-batch must be >= 1, got %d", batch)
	}
	return nil
}

// ParseIntList parses a comma-separated list of positive ints ("1,2,8")
// for loadgen's sweep flags. Empty entries, malformed numbers, zeros
// and negatives are errors naming the offending flag.
func ParseIntList(flagName, s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("%s must not be empty", flagName)
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("%s: bad entry %q: %w", flagName, p, err)
		}
		if v < 1 {
			return nil, fmt.Errorf("%s: entries must be >= 1, got %d", flagName, v)
		}
		out = append(out, v)
	}
	return out, nil
}

// ValidateWeightFlags checks the weighted-metric flags: -maxweight must
// name a usable cost range when -weighted is on (it is ignored
// otherwise, so a script can set both unconditionally). Costs are int32
// and MaxInt32 is the Unreachable sentinel, so the largest admissible
// cost — and therefore -maxweight — is MaxInt32-1; anything larger
// would silently wrap in the int32 weight table.
func ValidateWeightFlags(weighted bool, maxWeight int) error {
	if !weighted {
		return nil
	}
	if maxWeight < 1 {
		return fmt.Errorf("-maxweight must be >= 1 with -weighted, got %d", maxWeight)
	}
	if maxWeight > math.MaxInt32-1 {
		return fmt.Errorf("-maxweight must be <= %d (costs are int32, MaxInt32 is the unreachable sentinel), got %d", math.MaxInt32-1, maxWeight)
	}
	return nil
}
