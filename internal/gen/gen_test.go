package gen

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/shortest"
	"repro/internal/xrand"
)

func mustValid(t *testing.T, g *graph.Graph) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Fatal("generated graph not connected")
	}
}

func TestPath(t *testing.T) {
	g := Path(5)
	mustValid(t, g)
	if g.Size() != 4 {
		t.Fatalf("P_5 has %d edges, want 4", g.Size())
	}
	if g.Degree(0) != 1 || g.Degree(2) != 2 || g.Degree(4) != 1 {
		t.Fatal("path degrees wrong")
	}
}

func TestCycle(t *testing.T) {
	g := Cycle(6)
	mustValid(t, g)
	if g.Size() != 6 {
		t.Fatalf("C_6 has %d edges, want 6", g.Size())
	}
	for u := 0; u < 6; u++ {
		if g.Degree(graph.NodeID(u)) != 2 {
			t.Fatal("cycle is not 2-regular")
		}
	}
}

func TestComplete(t *testing.T) {
	g := Complete(7)
	mustValid(t, g)
	if g.Size() != 21 {
		t.Fatalf("K_7 has %d edges, want 21", g.Size())
	}
	for u := 0; u < 7; u++ {
		if g.Degree(graph.NodeID(u)) != 6 {
			t.Fatal("K_7 is not 6-regular")
		}
	}
}

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite(3, 4)
	mustValid(t, g)
	if g.Size() != 12 {
		t.Fatalf("K_{3,4} has %d edges, want 12", g.Size())
	}
	if g.HasEdge(0, 1) || g.HasEdge(3, 4) {
		t.Fatal("edge inside a part")
	}
}

func TestStar(t *testing.T) {
	g := Star(9)
	mustValid(t, g)
	if g.Degree(0) != 8 {
		t.Fatal("star center degree wrong")
	}
}

func TestGrid2D(t *testing.T) {
	g := Grid2D(3, 4)
	mustValid(t, g)
	if g.Order() != 12 {
		t.Fatal("grid order wrong")
	}
	// Edges: 3*3 horizontal + 2*4 vertical = 17.
	if g.Size() != 17 {
		t.Fatalf("3x4 grid has %d edges, want 17", g.Size())
	}
}

func TestTorus2D(t *testing.T) {
	g := Torus2D(3, 5)
	mustValid(t, g)
	for u := 0; u < g.Order(); u++ {
		if g.Degree(graph.NodeID(u)) != 4 {
			t.Fatal("torus is not 4-regular")
		}
	}
}

func TestHypercubePortAlignment(t *testing.T) {
	for d := 1; d <= 6; d++ {
		g := Hypercube(d)
		mustValid(t, g)
		if g.Order() != 1<<d {
			t.Fatalf("H_%d order %d", d, g.Order())
		}
		for u := 0; u < g.Order(); u++ {
			for bit := 0; bit < d; bit++ {
				want := graph.NodeID(u ^ (1 << bit))
				if got := g.Neighbor(graph.NodeID(u), graph.Port(bit+1)); got != want {
					t.Fatalf("H_%d: port %d at %d -> %d, want %d", d, bit+1, u, got, want)
				}
			}
		}
	}
}

func TestPetersenStructure(t *testing.T) {
	g := Petersen()
	mustValid(t, g)
	if g.Order() != 10 || g.Size() != 15 {
		t.Fatalf("Petersen shape (%d,%d), want (10,15)", g.Order(), g.Size())
	}
	apsp := shortest.NewAPSP(g)
	if apsp.Diameter() != 2 {
		t.Fatalf("Petersen diameter %d, want 2", apsp.Diameter())
	}
	// Strong regularity (10,3,0,1): adjacent pairs share 0 common
	// neighbors, non-adjacent share exactly 1.
	for u := 0; u < 10; u++ {
		for v := u + 1; v < 10; v++ {
			common := 0
			for w := 0; w < 10; w++ {
				if w != u && w != v &&
					g.HasEdge(graph.NodeID(u), graph.NodeID(w)) &&
					g.HasEdge(graph.NodeID(v), graph.NodeID(w)) {
					common++
				}
			}
			adj := g.HasEdge(graph.NodeID(u), graph.NodeID(v))
			if adj && common != 0 {
				t.Fatalf("adjacent pair (%d,%d) has %d common neighbors", u, v, common)
			}
			if !adj && common != 1 {
				t.Fatalf("non-adjacent pair (%d,%d) has %d common neighbors", u, v, common)
			}
		}
	}
}

func TestDeBruijn(t *testing.T) {
	g := DeBruijn(4)
	mustValid(t, g)
	if g.Order() != 16 {
		t.Fatal("de Bruijn order wrong")
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	check := func(seed uint64, nn uint16) bool {
		n := int(nn%200) + 1
		g := RandomTree(n, xrand.New(seed))
		return g.Order() == n && g.Size() == n-1 && g.Connected() && g.Validate() == nil
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandomTreeSmall(t *testing.T) {
	for n := 1; n <= 4; n++ {
		g := RandomTree(n, xrand.New(1))
		if g.Order() != n || g.Size() != n-1 || !g.Connected() {
			t.Fatalf("RandomTree(%d) malformed", n)
		}
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(5, 7)
	mustValid(t, g)
	if g.Order() != 12 || g.Size() != 11 {
		t.Fatal("caterpillar is not a tree of the right size")
	}
}

func TestCompleteBinaryTree(t *testing.T) {
	g := CompleteBinaryTree(15)
	mustValid(t, g)
	if g.Size() != 14 {
		t.Fatal("binary tree edge count wrong")
	}
	if g.Degree(0) != 2 {
		t.Fatal("root degree wrong")
	}
}

func TestMaximalOuterplanar(t *testing.T) {
	check := func(seed uint64, nn uint8) bool {
		n := int(nn%30) + 3
		g := MaximalOuterplanar(n, xrand.New(seed))
		// Maximal outerplanar on n >= 3 vertices has exactly 2n-3 edges.
		return g.Validate() == nil && g.Connected() && g.Size() == 2*n-3
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKTreeChordalSize(t *testing.T) {
	// A k-tree on n vertices has kn - k(k+1)/2 edges.
	for _, tc := range []struct{ n, k int }{{5, 1}, {8, 2}, {10, 3}} {
		g := KTree(tc.n, tc.k, xrand.New(3))
		mustValid(t, g)
		want := tc.k*tc.n - tc.k*(tc.k+1)/2
		if g.Size() != want {
			t.Fatalf("KTree(%d,%d) has %d edges, want %d", tc.n, tc.k, g.Size(), want)
		}
	}
}

func TestUnitInterval(t *testing.T) {
	check := func(seed uint64, nn uint8) bool {
		n := int(nn%40) + 1
		g := UnitInterval(n, 0.7, xrand.New(seed))
		return g.Validate() == nil && g.Connected()
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnitCircularArc(t *testing.T) {
	check := func(seed uint64, nn uint8) bool {
		n := int(nn%40) + 3
		g := UnitCircularArc(n, 0.15, xrand.New(seed))
		return g.Validate() == nil && g.Connected()
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandomConnected(t *testing.T) {
	check := func(seed uint64, nn uint8) bool {
		n := int(nn%50) + 2
		g := RandomConnected(n, 0.1, xrand.New(seed))
		return g.Validate() == nil && g.Connected()
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandomRegular(t *testing.T) {
	g := RandomRegular(20, 3, xrand.New(8))
	mustValid(t, g)
	for u := 0; u < 20; u++ {
		if g.Degree(graph.NodeID(u)) != 3 {
			t.Fatal("not 3-regular")
		}
	}
}

func TestAttachPath(t *testing.T) {
	g := Cycle(4)
	end := AttachPath(g, 0, 5)
	mustValid(t, g)
	if g.Order() != 9 {
		t.Fatalf("order %d after padding, want 9", g.Order())
	}
	if g.Degree(end) != 1 {
		t.Fatal("far end of padding path should be a leaf")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := RandomConnected(30, 0.2, xrand.New(42))
	b := RandomConnected(30, 0.2, xrand.New(42))
	ae, be := a.Edges(), b.Edges()
	if len(ae) != len(be) {
		t.Fatal("same seed, different edge counts")
	}
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatal("same seed, different graphs")
		}
	}
}
