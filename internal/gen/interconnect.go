package gen

import (
	"fmt"

	"repro/internal/graph"
)

// CubeConnectedCycles returns CCC(d): each hypercube vertex is replaced
// by a d-cycle, cycle position i handling dimension i. Vertex (u, i) has
// id u*d + i. Edges: cycle edges (u,i)-(u,i+1 mod d) and cube edges
// (u,i)-(u xor 2^i, i). CCC is the classical bounded-degree (=3)
// hypercube substitute of the parallel-architecture literature the paper
// sits in; with d >= 3 it is 3-regular.
func CubeConnectedCycles(d int) *graph.Graph {
	if d < 3 || d > 16 {
		panic(fmt.Sprintf("gen: CCC dimension %d out of [3,16]", d))
	}
	n := (1 << d) * d
	g := graph.New(n)
	id := func(u, i int) graph.NodeID { return graph.NodeID(u*d + i) }
	for u := 0; u < 1<<d; u++ {
		for i := 0; i < d; i++ {
			// Cycle edge to the next position.
			j := (i + 1) % d
			if id(u, i) < id(u, j) || j == 0 {
				if !g.HasEdge(id(u, i), id(u, j)) {
					g.AddEdge(id(u, i), id(u, j))
				}
			}
			// Cube edge along dimension i.
			v := u ^ (1 << i)
			if u < v {
				g.AddEdge(id(u, i), id(v, i))
			}
		}
	}
	g.Freeze()
	return g
}

// Butterfly returns the wrapped butterfly graph WBF(d) on d*2^d vertices:
// vertex (level, row) with id level*2^d + row, connected to
// (level+1 mod d, row) [straight] and (level+1 mod d, row xor 2^level)
// [cross]. 4-regular for d >= 3 (straight and cross edges coincide never;
// wrap edges double up at d < 3).
func Butterfly(d int) *graph.Graph {
	if d < 3 || d > 16 {
		panic(fmt.Sprintf("gen: butterfly dimension %d out of [3,16]", d))
	}
	rows := 1 << d
	g := graph.New(d * rows)
	id := func(level, row int) graph.NodeID { return graph.NodeID(level*rows + row) }
	for level := 0; level < d; level++ {
		next := (level + 1) % d
		for row := 0; row < rows; row++ {
			straight := id(next, row)
			cross := id(next, row^(1<<level))
			if !g.HasEdge(id(level, row), straight) {
				g.AddEdge(id(level, row), straight)
			}
			if !g.HasEdge(id(level, row), cross) {
				g.AddEdge(id(level, row), cross)
			}
		}
	}
	g.Freeze()
	return g
}

// Pancake returns the pancake graph P_k on k! vertices: permutations of
// {0..k-1}, adjacent when one is a prefix reversal of the other. Degree
// k-1, diameter Θ(k) — a classic Cayley-graph interconnect.
func Pancake(k int) *graph.Graph {
	if k < 2 || k > 7 {
		panic(fmt.Sprintf("gen: pancake order %d out of [2,7]", k))
	}
	perms := allPerms(k)
	index := make(map[string]int, len(perms))
	for i, p := range perms {
		index[permKey(p)] = i
	}
	g := graph.New(len(perms))
	buf := make([]int, k)
	for i, p := range perms {
		for flip := 2; flip <= k; flip++ {
			copy(buf, p)
			for a, b := 0, flip-1; a < b; a, b = a+1, b-1 {
				buf[a], buf[b] = buf[b], buf[a]
			}
			j := index[permKey(buf)]
			if i < j {
				g.AddEdge(graph.NodeID(i), graph.NodeID(j))
			}
		}
	}
	g.Freeze()
	return g
}

func allPerms(k int) [][]int {
	var out [][]int
	cur := make([]int, 0, k)
	used := make([]bool, k)
	var rec func()
	rec = func() {
		if len(cur) == k {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for v := 0; v < k; v++ {
			if !used[v] {
				used[v] = true
				cur = append(cur, v)
				rec()
				cur = cur[:len(cur)-1]
				used[v] = false
			}
		}
	}
	rec()
	return out
}

func permKey(p []int) string {
	b := make([]byte, len(p))
	for i, v := range p {
		b[i] = byte(v)
	}
	return string(b)
}
