package gen

import (
	"fmt"
	"math/bits"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// FamilyNames lists the families ByName resolves, in the order the CLI
// help texts spell them.
var FamilyNames = []string{"random", "tree", "torus", "hypercube", "complete", "outerplanar", "petersen"}

// ByName builds the named graph family at (roughly) order n — the one
// family dispatch the memreq and routeserve CLIs share, so a family
// added or a bound fixed here reaches every CLI at once. n is rounded
// as the family requires (torus to the next square, hypercube down to
// a power of two); out-of-range n is an error, never a generator
// panic. The theorem1 family is NOT here: it needs the constraint
// machinery of internal/core and stays with the callers that use it.
func ByName(family string, n int, r *xrand.Rand) (*graph.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("gen: family %q needs n >= 1, got %d", family, n)
	}
	switch family {
	case "random":
		return RandomConnected(n, 6.0/float64(n), r), nil
	case "tree":
		return RandomTree(n, r), nil
	case "torus":
		side := 3
		for side*side < n {
			side++
		}
		return Torus2D(side, side), nil
	case "hypercube":
		d := bits.Len(uint(n)) - 1
		if d < 1 {
			return nil, fmt.Errorf("gen: hypercube needs n >= 2, got %d", n)
		}
		return Hypercube(d), nil
	case "complete":
		if n < 2 {
			return nil, fmt.Errorf("gen: complete needs n >= 2, got %d", n)
		}
		return Complete(n), nil
	case "outerplanar":
		if n < 3 {
			return nil, fmt.Errorf("gen: outerplanar needs n >= 3, got %d", n)
		}
		return MaximalOuterplanar(n, r), nil
	case "petersen":
		return Petersen(), nil
	default:
		return nil, fmt.Errorf("gen: unknown family %q", family)
	}
}
