package gen

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/shortest"
)

func TestCCCRegular(t *testing.T) {
	for d := 3; d <= 5; d++ {
		g := CubeConnectedCycles(d)
		mustValid(t, g)
		if g.Order() != (1<<d)*d {
			t.Fatalf("CCC(%d) order %d", d, g.Order())
		}
		for u := 0; u < g.Order(); u++ {
			if g.Degree(graph.NodeID(u)) != 3 {
				t.Fatalf("CCC(%d) vertex %d has degree %d, want 3", d, u, g.Degree(graph.NodeID(u)))
			}
		}
	}
}

func TestCCCEdgeCount(t *testing.T) {
	// 3-regular on d*2^d vertices: 3*d*2^d/2 edges.
	d := 4
	g := CubeConnectedCycles(d)
	want := 3 * d * (1 << d) / 2
	if g.Size() != want {
		t.Fatalf("CCC(%d) has %d edges, want %d", d, g.Size(), want)
	}
}

func TestButterflyRegular(t *testing.T) {
	for d := 3; d <= 5; d++ {
		g := Butterfly(d)
		mustValid(t, g)
		if g.Order() != d*(1<<d) {
			t.Fatalf("WBF(%d) order %d", d, g.Order())
		}
		for u := 0; u < g.Order(); u++ {
			if g.Degree(graph.NodeID(u)) != 4 {
				t.Fatalf("WBF(%d) vertex %d degree %d, want 4", d, u, g.Degree(graph.NodeID(u)))
			}
		}
	}
}

func TestButterflyDiameter(t *testing.T) {
	// Wrapped butterfly diameter is Theta(d); for d=3 it is small.
	g := Butterfly(3)
	a := shortest.NewAPSP(g)
	if diam := a.Diameter(); diam < 3 || diam > 6 {
		t.Fatalf("WBF(3) diameter %d outside plausible band", diam)
	}
}

func TestPancakeShape(t *testing.T) {
	for k := 2; k <= 5; k++ {
		g := Pancake(k)
		mustValid(t, g)
		fact := 1
		for i := 2; i <= k; i++ {
			fact *= i
		}
		if g.Order() != fact {
			t.Fatalf("P_%d order %d, want %d", k, g.Order(), fact)
		}
		for u := 0; u < g.Order(); u++ {
			if g.Degree(graph.NodeID(u)) != k-1 {
				t.Fatalf("P_%d vertex degree %d, want %d", k, g.Degree(graph.NodeID(u)), k-1)
			}
		}
	}
}

func TestPancakeDiameterP4(t *testing.T) {
	// Known small values: diameter of the pancake graph P_4 is 4.
	g := Pancake(4)
	a := shortest.NewAPSP(g)
	if a.Diameter() != 4 {
		t.Fatalf("P_4 diameter %d, want 4", a.Diameter())
	}
}
